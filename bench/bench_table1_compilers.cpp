// Reproduces Table 1: per-compiler variable-run counts over the
// 244-compilation x 19-example MFEM study, the best average flags (chosen
// by best average speedup across all examples), and that speedup relative
// to g++ -O2.

#include <cstdio>
#include <map>
#include <string>

#include "mfem_study_common.h"

using namespace flit;

int main() {
  const bench::MfemStudy study = bench::run_mfem_study();

  struct PerCompiler {
    int variable = 0;
    int runs = 0;
  };
  std::map<std::string, PerCompiler> stats;
  // Best average speedup per (compiler, opt+flag) over all examples.
  std::map<std::string, std::map<std::string, double>> speedup_sums;

  for (const core::StudyResult& r : study.results) {
    for (const core::CompilationOutcome& o : r.outcomes) {
      auto& s = stats[o.comp.compiler.name];
      ++s.runs;
      if (!o.bitwise_equal()) ++s.variable;
      std::string cfg = toolchain::to_string(o.comp.opt);
      if (!o.comp.flag.empty()) cfg += " " + o.comp.flag;
      speedup_sums[o.comp.compiler.name][cfg] += o.speedup;
    }
  }

  std::printf(
      "Table 1: compilers of the MFEM study (counts over %zu compilations "
      "x %d examples)\n",
      study.space.size(), mfemini::kNumExamples);
  std::printf("%-12s %-10s %-22s %-38s %s\n", "Compiler", "Released",
              "# Variable Runs", "Best Flags", "Speedup");
  const struct {
    const char* name;
    const char* released;
  } compilers[] = {{"g++", "26 July 2018"},
                   {"clang++", "05 July 2018"},
                   {"icpc", "16 May 2018"}};
  for (const auto& [name, released] : compilers) {
    const PerCompiler& s = stats[name];
    std::string best_cfg;
    double best_avg = -1.0;
    for (const auto& [cfg, sum] : speedup_sums[name]) {
      const double avg = sum / mfemini::kNumExamples;
      if (avg > best_avg) {
        best_avg = avg;
        best_cfg = cfg;
      }
    }
    std::printf("%-12s %-10s %5d of %5d (%4.1f%%)   %-38s %.3f\n", name,
                released, s.variable, s.runs,
                100.0 * s.variable / s.runs, best_cfg.c_str(), best_avg);
  }
  std::printf(
      "\nPaper reference: g++ 78/1288 (6.0%%) [-O2 -funsafe-math-"
      "optimizations, 1.097]\n"
      "                 clang++ 24/1368 (1.8%%) [-O3 -funsafe-math-"
      "optimizations, 1.042]\n"
      "                 icpc 984/1976 (49.8%%) [-O2 -fp-model fast=2, "
      "1.056]\n");
  return 0;
}
