// Reproduces Table 4: Bisect statistics of the Laghos experiment.  The
// compilation under test is xlc++ -O3; each row block uses a different
// trusted baseline (g++ -O2, xlc++ -O2, xlc++ -O3 -qstrict=vectorprecision),
// sweeping the digit restriction of the comparison (2/3/5/all significant
// digits) and the BisectBiggest k (1/2/all).  Reported: number of found
// files, found functions, and program executions.

#include <cstdio>

#include "core/hierarchy.h"
#include "laghos/hydro.h"
#include "toolchain/compiler.h"

using namespace flit;

int main() {
  laghos::LaghosTest test{laghos::HydroOptions{}};

  const struct {
    const char* label;
    toolchain::Compilation comp;
  } baselines[] = {
      {"g++ -O2", toolchain::laghos_trusted_gcc()},
      {"xlc++ -O2", toolchain::laghos_trusted_xlc()},
      {"xlc++ -O3 strict", toolchain::laghos_strict_xlc()},
  };
  const int digit_cases[] = {2, 3, 5, 0};  // 0 = all digits
  const int k_cases[] = {1, 2, 0};         // 0 = all (BisectAll)

  std::printf("Table 4: Bisect statistics of the Laghos experiment "
              "(compilation under test: %s)\n",
              toolchain::laghos_variable_xlc().str().c_str());
  std::printf("%-18s %-7s | %-18s | %-18s | %-18s\n", "baseline", "digits",
              "# files (k=1,2,all)", "# funcs (k=1,2,all)",
              "# runs (k=1,2,all)");

  for (const auto& b : baselines) {
    for (int digits : digit_cases) {
      int files[3] = {0, 0, 0};
      int funcs[3] = {0, 0, 0};
      int runs[3] = {0, 0, 0};
      for (int ki = 0; ki < 3; ++ki) {
        core::BisectConfig cfg;
        cfg.baseline = b.comp;
        cfg.variable = toolchain::laghos_variable_xlc();
        cfg.scope = laghos::laghos_source_files();
        cfg.k = k_cases[ki];
        cfg.digits = digits;
        core::BisectDriver driver(&fpsem::global_code_model(), &test, cfg);
        const auto out = driver.run();
        files[ki] = static_cast<int>(out.findings.size());
        for (const auto& ff : out.findings) {
          funcs[ki] += static_cast<int>(ff.symbols.size());
        }
        runs[ki] = out.executions;
      }
      char dig[8];
      if (digits == 0) {
        std::snprintf(dig, sizeof dig, "all");
      } else {
        std::snprintf(dig, sizeof dig, "%d", digits);
      }
      std::printf("%-18s %-7s | %5d %5d %5d  | %5d %5d %5d  | %5d %5d %5d\n",
                  b.label, dig, files[0], files[1], files[2], funcs[0],
                  funcs[1], funcs[2], runs[0], runs[1], runs[2]);
    }
  }
  std::printf(
      "\nPaper reference: at k=1 every configuration found 1 file / 1 "
      "function in 14-18 runs; k=all used 57-69 runs finding 5-7 "
      "functions over 2-6 files.\n");
  return 0;
}
