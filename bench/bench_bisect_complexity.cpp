// Ablation microbenchmark (google-benchmark): the O(k log N) claim of
// Sec. 2.4.  Compares program-execution counts and wall time of
//   * bisect_all (Algorithm 1),
//   * a linear scan (always O(N)),
//   * a ddmin-style quadratic partition search (O(k^2 log N)),
// over synthetic universes of N elements with k culprits.  The
// "executions" counter is the paper's cost metric: real (memoized-miss)
// Test evaluations.

#include <cmath>
#include <random>
#include <set>

#include <benchmark/benchmark.h>

#include "core/bisect.h"

namespace {

using flit::core::MemoizedTest;
using flit::core::bisect_all;

std::set<int> culprits_for(int n, int k, unsigned seed) {
  std::mt19937 rng(seed);
  std::set<int> c;
  while (static_cast<int>(c.size()) < k) {
    c.insert(static_cast<int>(rng() % static_cast<unsigned>(n)));
  }
  return c;
}

MemoizedTest<int> make_test(const std::set<int>& culprits) {
  return MemoizedTest<int>([culprits](const std::vector<int>& items) {
    double v = 0.0;
    for (int e : items) {
      if (culprits.contains(e)) v += std::ldexp(1.0, e % 50);
    }
    return v;
  });
}

std::vector<int> universe(int n) {
  std::vector<int> u(n);
  for (int i = 0; i < n; ++i) u[i] = i;
  return u;
}

void BM_BisectAll(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const auto culprits = culprits_for(n, k, 42);
  double execs = 0.0;
  for (auto _ : state) {
    auto test = make_test(culprits);
    auto out = bisect_all(test, universe(n));
    benchmark::DoNotOptimize(out.found.data());
    execs = out.executions;
  }
  state.counters["executions"] = execs;
  state.counters["bound_klogn"] =
      (k + 1) * (std::log2(static_cast<double>(n)) + 2.0);
}

void BM_LinearScan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const auto culprits = culprits_for(n, k, 42);
  double execs = 0.0;
  for (auto _ : state) {
    auto test = make_test(culprits);
    std::vector<int> found;
    for (int e : universe(n)) {
      if (test({e}) > 0.0) found.push_back(e);
    }
    benchmark::DoNotOptimize(found.data());
    execs = test.executions();
  }
  state.counters["executions"] = execs;
}

/// ddmin-flavoured search: repeatedly isolate one minimal failing subset
/// by binary partitioning, restarting from the full set after each find
/// (no removal pruning) -- the O(k^2 log N) behaviour Bisect improves on.
void BM_DdminStyle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const auto culprits = culprits_for(n, k, 42);
  double execs = 0.0;
  for (auto _ : state) {
    auto test = make_test(culprits);
    std::vector<int> found;
    std::vector<int> all = universe(n);
    while (true) {
      // find one culprit not yet found by descending from the full set
      std::vector<int> cur;
      for (int e : all) {
        if (std::find(found.begin(), found.end(), e) == found.end()) {
          cur.push_back(e);
        }
      }
      if (cur.empty() || !(test(cur) > 0.0)) break;
      while (cur.size() > 1) {
        const auto mid = static_cast<std::ptrdiff_t>(cur.size() / 2);
        std::vector<int> lo(cur.begin(), cur.begin() + mid);
        std::vector<int> hi(cur.begin() + mid, cur.end());
        if (test(lo) > 0.0) {
          cur = std::move(lo);
        } else if (test(hi) > 0.0) {
          cur = std::move(hi);
        } else {
          break;  // coupled; bail out
        }
      }
      found.push_back(cur.front());
    }
    benchmark::DoNotOptimize(found.data());
    execs = test.executions();
  }
  state.counters["executions"] = execs;
}

void shapes(benchmark::internal::Benchmark* b) {
  for (int n : {64, 256, 1024}) {
    for (int k : {1, 4, 8}) b->Args({n, k});
  }
}

BENCHMARK(BM_BisectAll)->Apply(shapes);
BENCHMARK(BM_LinearScan)->Apply(shapes);
BENCHMARK(BM_DdminStyle)->Apply(shapes);

}  // namespace

BENCHMARK_MAIN();
