// The multi-tenant study service: throughput of one `flit serve` daemon
// running N tenants' full-space studies through the shared bounded
// compilation cache, against the same N studies run sequentially as
// cold-start solo explorations (a fresh explorer and a fresh cache per
// study -- what N separate one-shot CLI invocations would pay).
//
//   bench_serve_throughput [n_requests]
//
// n_requests defaults to 8 (MFEM_ex1..ex8 over the full 244-compilation
// space, one tenant each).  The service runs them on 4 virtual-clock
// lanes with work stealing; the sequential baseline runs them one after
// another.  Both paths are timed, and the per-tenant byte identity the
// service guarantees is asserted, not just claimed: every tenant's
// report CSV must equal its solo run's.
//
// The acceptance bar is the cache, not the clock (host wall time is
// noisy): the shared cache's fleet hit rate must strictly beat the
// sequential cold-start aggregate -- if sharing one cache across tenants
// does not save compilations over per-study caches, the service's
// central design claim is false.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "core/registry.h"
#include "core/report.h"
#include "mfemini/examples.h"
#include "serve/request.h"
#include "serve/service.h"
#include "toolchain/compiler.h"

using namespace flit;

namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const int arg_requests = argc > 1 ? std::atoi(argv[1]) : 0;
  const int n_requests =
      arg_requests > 0 ? std::min(arg_requests, mfemini::kNumExamples)
                       : std::min(8, mfemini::kNumExamples);
  const auto space = toolchain::mfem_study_space();

  auto& reg = core::global_test_registry();
  std::vector<serve::StudyRequest> requests;
  for (int ex = 1; ex <= n_requests; ++ex) {
    const std::string name = "MFEM_ex" + std::to_string(ex);
    if (!reg.contains(name)) {
      reg.add(name, [ex] {
        return std::unique_ptr<core::TestBase>(
            std::make_unique<mfemini::MfemExampleTest>(ex));
      });
    }
    serve::StudyRequest req;
    req.id = "r" + std::to_string(ex);
    req.tenant = "tenant" + std::to_string(ex);
    req.test = name;
    requests.push_back(std::move(req));
  }

  std::printf("serve throughput bench: %d tenants x %zu compilations\n",
              n_requests, space.size());

  // The service: one daemon, one shared cache, 4 lanes with stealing.
  serve::ServeOptions opts;
  opts.shards = 4;
  opts.jobs = 1;  // isolate modeled scheduling on one core
  const auto serve_start = std::chrono::steady_clock::now();
  serve::StudyService service(&fpsem::global_code_model(),
                              toolchain::mfem_baseline(),
                              toolchain::mfem_speed_reference(), space,
                              opts);
  const serve::ServeReport report = service.run(requests);
  const double serve_wall = seconds_since(serve_start);

  // The sequential cold-start baseline: a fresh explorer (and so a fresh
  // cache) per study, run back to back.
  std::vector<std::string> solo_csvs;
  toolchain::CacheStats seq_cache;
  const auto seq_start = std::chrono::steady_clock::now();
  for (const serve::StudyRequest& req : requests) {
    core::SpaceExplorer explorer(&fpsem::global_code_model(),
                                 toolchain::mfem_baseline(),
                                 toolchain::mfem_speed_reference(), 1);
    const core::StudyResult study =
        explorer.explore(*reg.create(req.test), space);
    solo_csvs.push_back(core::study_csv(study));
    seq_cache += explorer.cache().stats();
  }
  const double seq_wall = seconds_since(seq_start);

  // The identity contract: every tenant's served CSV equals its solo run.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (report.requests[i].csv != solo_csvs[i]) {
      std::fprintf(stderr,
                   "FATAL: tenant %s's served study differs from its solo "
                   "run\n",
                   requests[i].tenant.c_str());
      return 1;
    }
  }

  const double serve_hit = report.cache.hit_rate();
  const double seq_hit = seq_cache.hit_rate();
  const double speedup = serve_wall > 0.0 ? seq_wall / serve_wall : 0.0;

  std::printf(
      "  serve:      wall %7.3fs  cache hit %5.1f%%  misses %llu  "
      "fleet clock %.3g cycles\n",
      serve_wall, 100.0 * serve_hit,
      static_cast<unsigned long long>(report.cache.misses),
      report.fleet_cycles);
  std::printf(
      "  sequential: wall %7.3fs  cache hit %5.1f%%  misses %llu\n",
      seq_wall, 100.0 * seq_hit,
      static_cast<unsigned long long>(seq_cache.misses));
  std::printf(
      "BENCH_JSON {\"bench\":\"serve_throughput\",\"requests\":%d,"
      "\"space\":%zu,\"lanes\":4,\"serve_wall_s\":%.6f,"
      "\"seq_wall_s\":%.6f,\"speedup\":%.3f,\"serve_hit_rate\":%.4f,"
      "\"seq_hit_rate\":%.4f,\"serve_misses\":%llu,\"seq_misses\":%llu,"
      "\"fleet_cycles\":%.1f,\"identical\":true}\n",
      n_requests, space.size(), serve_wall, seq_wall, speedup, serve_hit,
      seq_hit, static_cast<unsigned long long>(report.cache.misses),
      static_cast<unsigned long long>(seq_cache.misses),
      report.fleet_cycles);

  // The acceptance bar: sharing one cache across tenants must strictly
  // beat per-study cold caches.
  if (serve_hit <= seq_hit) {
    std::fprintf(stderr,
                 "FATAL: shared-cache hit rate %.2f%% does not beat the "
                 "sequential cold-start rate %.2f%%\n",
                 100.0 * serve_hit, 100.0 * seq_hit);
    return 1;
  }
  return 0;
}
