// Reproduces Table 5: the controlled LULESH injection study.  Pass 1
// enumerates every reachable floating-point instruction site; for each
// site all four OP' operations are injected with eps ~ U(0,1), and FLiT
// Bisect searches for the responsible function.  Reported: exact finds,
// indirect finds (internal function found through its exported host),
// wrong finds, missed finds, not-measurable injections, and the average
// number of program executions per (measurable) search.

#include <cstdio>

#include "core/injection.h"
#include "lulesh/domain.h"
#include "toolchain/compiler.h"

using namespace flit;

int main() {
  lulesh::LuleshOptions opts;
  opts.num_elems = 16;
  opts.stop_cycle = 15;
  lulesh::LuleshTest test(opts);

  core::InjectionCampaign campaign(
      &fpsem::global_code_model(), &test,
      {toolchain::gcc(), toolchain::OptLevel::O2, ""});
  campaign.set_scope(lulesh::lulesh_source_files());

  const auto sites = campaign.enumerate_sites();
  std::fprintf(stderr, "  [table5] %zu static FP sites; running %zu "
               "injection experiments...\n",
               sites.size(), sites.size() * 4);
  const auto reports = campaign.run_all();
  const auto s = core::InjectionCampaign::summarize(reports);

  std::printf("Table 5: success statistics of the LULESH compiler "
              "perturbation injection experiment\n");
  std::printf("%-20s %8d   (paper: 2,690)\n", "exact finds", s.exact);
  std::printf("%-20s %8d   (paper: 984)\n", "indirect finds", s.indirect);
  std::printf("%-20s %8d   (paper: 0)\n", "wrong finds", s.wrong);
  std::printf("%-20s %8d   (paper: 0)\n", "missed finds", s.missed);
  std::printf("%-20s %8d   (paper: 702)\n", "not measurable",
              s.not_measurable);
  std::printf("%-20s %8d   (paper: 4,376)\n", "total", s.total);
  std::printf("\nprecision %.3f, recall %.3f (paper: 1.000 / 1.000)\n",
              s.precision(), s.recall());
  std::printf("average executions per measurable injection: %.1f (paper: "
              "~15)\n",
              s.avg_executions);
  return 0;
}
