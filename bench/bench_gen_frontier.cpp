// The generated-workload frontier: what the synthetic corpus buys over
// the paper's fixed applications, measured on both axes the subsystem
// claims.
//
// Phase A (fleet): a >= 1,024-kernel generated space runs as one suite
// study over the full 244-compilation MFEM space -- solo, sharded
// (4 ranks, work stealing), and through the study service -- and the
// three runs must produce byte-identical study CSVs and converged
// databases.  Reported: wall clock per engine.
//
// Phase B (scoring): the Table-5 injection methodology runs over a
// generated corpus sized to >= 10x the paper's 4,376 experiments, scored
// against the generator's planted ground truth and pooled per mechanism
// -- the breakdown LULESH's hand-seeded sites cannot offer.  The
// paper-reproduction harness (the LULESH campaign at integration-test
// scale) runs alongside as the baseline, and every mechanism pool's
// recall must be at least the LULESH aggregate recall.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "core/injection.h"
#include "core/report.h"
#include "core/resultsdb.h"
#include "dist/coordinator.h"
#include "gen/generator.h"
#include "gen/harness.h"
#include "gen/suite.h"
#include "lulesh/domain.h"
#include "serve/request.h"
#include "serve/service.h"
#include "toolchain/compiler.h"

using namespace flit;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string file_bytes(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main() {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "flit_bench_gen_frontier";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // --- Phase A: a 1,024-kernel space through every engine ---------------
  gen::GenSpec fleet_spec;
  fleet_spec.seed = 2026;
  fleet_spec.count = 1024;
  fpsem::CodeModel model;
  const auto fleet_start = std::chrono::steady_clock::now();
  const auto fleet_kernels = gen::generate(fleet_spec);
  const double gen_wall = seconds_since(fleet_start);
  const auto installed = gen::register_kernels(model, fleet_kernels);
  const gen::GenSuiteTest suite(gen::kSuiteTestName, installed);
  const auto space = toolchain::mfem_study_space();

  const std::filesystem::path solo_db_path = dir / "solo.tsv";
  std::string solo_csv;
  double solo_wall = 0.0;
  {
    core::ResultsDb db(solo_db_path);
    core::SpaceExplorer explorer(&model, toolchain::mfem_baseline(),
                                 toolchain::mfem_speed_reference(), 1);
    core::ExploreOptions eo;
    eo.db = &db;
    const auto start = std::chrono::steady_clock::now();
    const core::StudyResult study = explorer.explore(suite, space, eo);
    solo_wall = seconds_since(start);
    solo_csv = core::study_csv(study);
    std::fprintf(stderr, "  [fleet] solo: %zu outcomes, %zu variable\n",
                 study.outcomes.size(), study.variable_count());
  }

  const std::filesystem::path shard_db_path = dir / "sharded.tsv";
  std::string shard_csv;
  double shard_wall = 0.0;
  {
    core::ResultsDb db(shard_db_path);
    dist::ShardOptions opts;
    opts.shards = 4;
    opts.jobs = 2;
    opts.db = &db;
    dist::ShardCoordinator coord(&model, toolchain::mfem_baseline(),
                                 toolchain::mfem_speed_reference(), opts);
    const auto start = std::chrono::steady_clock::now();
    const dist::ShardedStudy sharded = coord.run(suite, space);
    shard_wall = seconds_since(start);
    shard_csv = core::study_csv(sharded.study);
  }

  // The service resolves tests by name, so the suite installs into the
  // global model and registry for the serve leg.
  const gen::InstalledSuite served = gen::install_suite(
      fleet_spec, fpsem::global_code_model(), &core::global_test_registry());
  (void)served;
  serve::StudyRequest req;
  req.id = "frontier";
  req.tenant = "bench";
  req.test = gen::kSuiteTestName;
  serve::ServeOptions sopts;
  sopts.state_dir = dir / "state";
  sopts.shards = 4;
  sopts.jobs = 2;
  serve::StudyService service(&fpsem::global_code_model(),
                              toolchain::mfem_baseline(),
                              toolchain::mfem_speed_reference(), space,
                              std::move(sopts));
  const std::vector<serve::StudyRequest> reqs = {req};
  const auto serve_start = std::chrono::steady_clock::now();
  const serve::ServeReport sreport = service.run(reqs);
  const double serve_wall = seconds_since(serve_start);

  const bool csv_identical = shard_csv == solo_csv &&
                             sreport.requests.at(0).csv == solo_csv;
  const bool db_identical =
      file_bytes(shard_db_path) == file_bytes(solo_db_path) &&
      file_bytes(dir / "state" / "frontier.tsv") ==
          file_bytes(solo_db_path);
  if (!csv_identical || !db_identical) {
    std::fprintf(stderr,
                 "FATAL: the sharded or served generated-space study is "
                 "not byte-identical to the solo run (csv %d, db %d)\n",
                 csv_identical, db_identical);
    return 1;
  }
  std::printf("generated fleet (%zu kernels, %zu compilations):\n",
              fleet_kernels.size(), space.size());
  std::printf("  solo    %7.3fs\n  4-shard %7.3fs\n  serve   %7.3fs"
              "   (all byte-identical)\n",
              solo_wall, shard_wall, serve_wall);

  // --- Phase B: the scored campaign at >= 10x Table 5's scale -----------
  gen::GenSpec score_spec;
  score_spec.seed = 8;
  score_spec.count = 1536;
  const auto score_kernels = gen::generate(score_spec);
  const toolchain::Compilation build{toolchain::gcc(),
                                     toolchain::OptLevel::O2, ""};
  const auto campaign_start = std::chrono::steady_clock::now();
  const gen::GenCampaignResult res =
      gen::run_injection_campaign(score_kernels, build);
  const double campaign_wall = seconds_since(campaign_start);

  constexpr std::size_t kPaperExperiments = 4376;
  if (res.experiments < 10 * kPaperExperiments) {
    std::fprintf(stderr,
                 "FATAL: %zu experiments is below 10x the paper's %zu\n",
                 res.experiments, kPaperExperiments);
    return 1;
  }

  // The paper-reproduction baseline: the LULESH campaign at the
  // integration-test scale, aggregate-only (LULESH cannot pool by
  // mechanism -- that is the point of the generated corpus).
  lulesh::LuleshOptions lopts;
  lopts.num_elems = 16;
  lopts.stop_cycle = 12;
  lulesh::LuleshTest lulesh_test(lopts);
  core::InjectionCampaign lulesh_campaign(&fpsem::global_code_model(),
                                          &lulesh_test, build);
  lulesh_campaign.set_scope(lulesh::lulesh_source_files());
  const auto lulesh_start = std::chrono::steady_clock::now();
  const auto lulesh_summary =
      core::InjectionCampaign::summarize(lulesh_campaign.run_all());
  const double lulesh_wall = seconds_since(lulesh_start);

  std::printf("\nscored campaign (%zu kernels, %zu sites, %zu experiments"
              " = %.1fx Table 5; %.3fs):\n",
              score_kernels.size(), res.sites, res.experiments,
              static_cast<double>(res.experiments) / kPaperExperiments,
              campaign_wall);
  std::printf("  %-18s %8s %8s %10s %8s\n", "mechanism", "kernels",
              "sites", "precision", "recall");
  for (const gen::MechanismScore& pool : res.per_mechanism) {
    std::printf("  %-18s %8zu %8zu %10.3f %8.3f\n",
                gen::to_string(pool.mechanism), pool.kernels,
                pool.hazard_sites, pool.summary.precision(),
                pool.summary.recall());
  }
  std::printf("  %-18s %8zu %8zu %10.3f %8.3f\n", "total",
              score_kernels.size(), res.sites, res.total.precision(),
              res.total.recall());
  std::printf("  LULESH baseline: precision %.3f recall %.3f "
              "(%d experiments, %.3fs)\n",
              lulesh_summary.precision(), lulesh_summary.recall(),
              lulesh_summary.total, lulesh_wall);

  // Every mechanism pool must score at least as well as the fixed
  // application's aggregate -- the frontier is only a frontier if the
  // synthetic corpus doesn't trade scale for verdict quality.
  for (const gen::MechanismScore& pool : res.per_mechanism) {
    if (pool.summary.recall() < lulesh_summary.recall()) {
      std::fprintf(stderr,
                   "FATAL: mechanism %s recall %.3f is below the LULESH "
                   "baseline %.3f\n",
                   gen::to_string(pool.mechanism), pool.summary.recall(),
                   lulesh_summary.recall());
      return 1;
    }
  }

  std::printf(
      "BENCH_JSON {\"bench\":\"gen_frontier\",\"fleet_kernels\":%zu,"
      "\"space\":%zu,\"solo_wall_s\":%.6f,\"shard_wall_s\":%.6f,"
      "\"serve_wall_s\":%.6f,\"identical\":true,"
      "\"score_kernels\":%zu,\"sites\":%zu,\"experiments\":%zu,"
      "\"paper_experiments\":%zu,\"campaign_wall_s\":%.6f,"
      "\"precision\":%.4f,\"recall\":%.4f,"
      "\"lulesh_precision\":%.4f,\"lulesh_recall\":%.4f}\n",
      fleet_kernels.size(), space.size(), solo_wall, shard_wall,
      serve_wall, score_kernels.size(), res.sites, res.experiments,
      kPaperExperiments, campaign_wall, res.total.precision(),
      res.total.recall(), lulesh_summary.precision(),
      lulesh_summary.recall());
  std::fprintf(stderr, "  [gen] generated %zu+%zu kernels in %.3fs\n",
               fleet_kernels.size(), score_kernels.size(), gen_wall);

  std::filesystem::remove_all(dir);
  return 0;
}
