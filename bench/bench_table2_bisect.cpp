// Reproduces Table 2: FLiT Bisect run on every variability-inducing
// compilation found by the MFEM study, characterized per compiler --
// average test executions, File Bisect success rate and Symbol Bisect
// success rate (a failure means the mixed executable crashed).
//
// Set FLIT_BENCH_MAX_BISECTS to cap the number of (example, compilation)
// searches per compiler for a faster smoke run.

#include <cstdio>
#include <climits>
#include <cstdlib>
#include <map>
#include <string>

#include "core/hierarchy.h"
#include "mfem_study_common.h"

using namespace flit;

int main() {
  const bench::MfemStudy study = bench::run_mfem_study();

  struct PerCompiler {
    long executions = 0;
    int searches = 0;
    int file_attempts = 0;
    int file_successes = 0;
    int symbol_attempts = 0;
    int symbol_successes = 0;
    int nothing_found = 0;  ///< link-step-only variability (Intel libm)
  };
  std::map<std::string, PerCompiler> stats;

  long cap = LONG_MAX;
  if (const char* env = std::getenv("FLIT_BENCH_MAX_BISECTS")) {
    cap = std::atol(env);
  }
  std::map<std::string, long> used;

  const auto scope = mfemini::mfem_source_files();
  for (int ex = 1; ex <= mfemini::kNumExamples; ++ex) {
    const core::StudyResult& r = study.results[static_cast<std::size_t>(ex - 1)];
    mfemini::MfemExampleTest test(ex);
    for (const core::CompilationOutcome& o : r.outcomes) {
      if (o.bitwise_equal()) continue;
      if (used[o.comp.compiler.name]++ >= cap) continue;

      core::BisectConfig cfg;
      cfg.baseline = toolchain::mfem_baseline();
      cfg.variable = o.comp;
      cfg.scope = scope;
      core::BisectDriver driver(&fpsem::global_code_model(), &test, cfg);
      const core::HierarchicalOutcome out = driver.run();

      PerCompiler& s = stats[o.comp.compiler.name];
      ++s.searches;
      s.executions += out.executions;
      ++s.file_attempts;
      if (out.crashed) continue;  // File Bisect failure
      ++s.file_successes;
      if (out.nothing_found()) {
        ++s.nothing_found;
        continue;
      }
      for (const core::FileFinding& ff : out.findings) {
        using Status = core::FileFinding::SymbolStatus;
        if (ff.status == Status::NotSearched) continue;
        ++s.symbol_attempts;
        if (ff.status == Status::Found ||
            ff.status == Status::VanishedUnderFpic) {
          ++s.symbol_successes;  // only a crash counts as failure (paper)
        }
      }
    }
    std::fprintf(stderr, "  [table2] example %d bisected\n", ex);
  }

  std::printf("Table 2: compiler characterization of Bisect with MFEM\n");
  std::printf("%-28s %10s %10s %10s %10s\n", "", "g++", "clang++", "icpc",
              "total");
  const auto row = [&](const char* label, auto getter) {
    std::printf("%-28s", label);
    double total = 0.0;
    for (const char* c : {"g++", "clang++", "icpc"}) {
      const double v = getter(stats[c]);
      total += v;
      std::printf(" %10.0f", v);
    }
    std::printf(" %10.0f\n", total);
  };
  std::printf("%-28s", "average test executions");
  {
    long te = 0;
    int ts = 0;
    for (const char* c : {"g++", "clang++", "icpc"}) {
      const PerCompiler& s = stats[c];
      te += s.executions;
      ts += s.searches;
      std::printf(" %10.0f",
                  s.searches > 0 ? double(s.executions) / s.searches : 0.0);
    }
    std::printf(" %10.0f\n", ts > 0 ? double(te) / ts : 0.0);
  }
  row("File Bisect attempts", [](const PerCompiler& s) {
    return double(s.file_attempts);
  });
  row("File Bisect successes", [](const PerCompiler& s) {
    return double(s.file_successes);
  });
  row("Symbol Bisect attempts", [](const PerCompiler& s) {
    return double(s.symbol_attempts);
  });
  row("Symbol Bisect successes", [](const PerCompiler& s) {
    return double(s.symbol_successes);
  });
  row("link-step-only variability", [](const PerCompiler& s) {
    return double(s.nothing_found);
  });
  std::printf(
      "\nPaper reference: avg executions 64/29/27 (30 overall); File "
      "Bisect 78/78, 24/24, 778/984 (880/1086); Symbol Bisect 51/78, "
      "24/24, 585/778 (660/880)\n");
  return 0;
}
