// Observability overhead: wall-clock cost of running the MFEM exploration
// (the Table 1 workload) with telemetry off, with counters only (the
// always-on default), and with full span tracing enabled, emitted
// human-readably and as one machine-readable BENCH_JSON line per mode.
//
//   bench_obs_overhead [n_examples] [reps]
//
// n_examples defaults to 4, reps to 3.  Modes are interleaved and the
// per-mode minimum over the repetitions is reported, so a background
// hiccup cannot charge one mode with the other's noise.  Correctness is
// asserted, not just claimed: every mode's study must be bitwise-identical
// to the baseline run or the bench aborts -- telemetry is strictly off the
// result path.  The acceptance target is tracing overhead below 5% of the
// untraced wall-clock.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "mfemini/examples.h"
#include "obs/session.h"
#include "toolchain/compiler.h"

using namespace flit;

namespace {

std::vector<core::StudyResult> run_studies(
    int n_examples, const std::vector<toolchain::Compilation>& space) {
  std::vector<core::StudyResult> out;
  out.reserve(static_cast<std::size_t>(n_examples));
  for (int ex = 1; ex <= n_examples; ++ex) {
    mfemini::MfemExampleTest test(ex);
    core::SpaceExplorer explorer(&fpsem::global_code_model(),
                                 toolchain::mfem_baseline(),
                                 toolchain::mfem_speed_reference(), 1);
    out.push_back(explorer.explore(test, space));
  }
  return out;
}

bool identical(const std::vector<core::StudyResult>& a,
               const std::vector<core::StudyResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t r = 0; r < a.size(); ++r) {
    if (a[r].outcomes.size() != b[r].outcomes.size()) return false;
    for (std::size_t i = 0; i < a[r].outcomes.size(); ++i) {
      const auto& x = a[r].outcomes[i];
      const auto& y = b[r].outcomes[i];
      if (!(x.comp == y.comp) || x.variability != y.variability ||
          x.cycles != y.cycles || x.speedup != y.speedup ||
          x.status != y.status || x.reason != y.reason) {
        return false;
      }
    }
  }
  return true;
}

struct Mode {
  const char* name;
  bool tracing;
};

}  // namespace

int main(int argc, char** argv) {
  const int n_examples = argc > 1 ? std::atoi(argv[1]) : 4;
  const int reps = argc > 2 ? std::atoi(argv[2]) : 3;
  const auto space = toolchain::mfem_study_space();

  std::printf("observability overhead bench: %d examples x %zu "
              "compilations, min of %d reps\n",
              n_examples, space.size(), reps);

  // "counters" is the always-on default (atomic adds, no spans);
  // "tracing" additionally records a span per build/link/run/attempt.
  const Mode modes[] = {{"counters", false}, {"tracing", true}};
  constexpr int kModes = 2;

  std::vector<core::StudyResult> reference;
  double best[kModes] = {0.0, 0.0};
  std::vector<std::size_t> traced_events;

  for (int rep = 0; rep < reps; ++rep) {
    for (int m = 0; m < kModes; ++m) {
      obs::metrics().reset();
      obs::tracer().set_enabled(modes[m].tracing);

      const auto t0 = std::chrono::steady_clock::now();
      auto results = run_studies(n_examples, space);
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

      const auto events = obs::tracer().drain_sorted();
      obs::tracer().set_enabled(false);
      if (modes[m].tracing) traced_events.push_back(events.size());

      if (reference.empty()) {
        reference = std::move(results);
      } else if (!identical(results, reference)) {
        std::fprintf(stderr,
                     "FATAL: %s run differs from the reference study -- "
                     "telemetry leaked onto the result path\n",
                     modes[m].name);
        return 1;
      }
      if (best[m] == 0.0 || secs < best[m]) best[m] = secs;
    }
  }

  // Traced runs must also be reproducible against each other.
  for (std::size_t i = 1; i < traced_events.size(); ++i) {
    if (traced_events[i] != traced_events[0]) {
      std::fprintf(stderr, "FATAL: traced event count varies across reps "
                           "(%zu vs %zu)\n",
                   traced_events[i], traced_events[0]);
      return 1;
    }
  }

  const double overhead =
      best[0] > 0.0 ? (best[1] - best[0]) / best[0] : 0.0;
  for (int m = 0; m < kModes; ++m) {
    std::printf("  %-8s min %7.3fs\n", modes[m].name, best[m]);
  }
  std::printf("  tracing overhead %+.2f%% (%zu events; target < 5%%)\n",
              100.0 * overhead,
              traced_events.empty() ? 0 : traced_events[0]);

  std::printf(
      "BENCH_JSON {\"bench\":\"obs_overhead\",\"examples\":%d,"
      "\"space\":%zu,\"reps\":%d,\"counters_s\":%.6f,\"tracing_s\":%.6f,"
      "\"overhead\":%.4f,\"events\":%zu,\"identical\":true}\n",
      n_examples, space.size(), reps, best[0], best[1], overhead,
      traced_events.empty() ? std::size_t{0} : traced_events[0]);

  if (overhead >= 0.05) {
    std::fprintf(stderr,
                 "WARNING: tracing overhead %.2f%% exceeds the 5%% target\n",
                 100.0 * overhead);
    // A noisy CI box can blow a percentage-of-seconds bar without any
    // regression; the hard failures above (identity, determinism) are the
    // correctness gate, so the overhead miss warns instead of failing.
  }
  return 0;
}
