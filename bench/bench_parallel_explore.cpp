// The parallel study engine: serial vs. parallel wall time for the MFEM
// exploration (the Table 1 workload) plus the compilation-cache hit rate,
// emitted both human-readably and as one machine-readable JSON line for
// the BENCH trajectory.
//
//   bench_parallel_explore [n_examples] [jobs]
//
// n_examples defaults to 6 (the first six mini-MFEM examples over the
// full 244-compilation space); jobs defaults to default_jobs()
// (FLIT_JOBS / hardware concurrency).  Determinism is asserted, not just
// claimed: the parallel studies must be bitwise-identical to the serial
// ones or the bench aborts.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/explorer.h"
#include "core/parallel.h"
#include "mfemini/examples.h"
#include "toolchain/compiler.h"

using namespace flit;

namespace {

struct StudyRun {
  std::vector<core::StudyResult> results;
  double seconds = 0.0;
  double cache_hit_rate = 0.0;
};

StudyRun run_study(int n_examples, unsigned jobs,
                   const std::vector<toolchain::Compilation>& space) {
  StudyRun run;
  core::SpaceExplorer explorer(&fpsem::global_code_model(),
                               toolchain::mfem_baseline(),
                               toolchain::mfem_speed_reference(), jobs);
  const auto t0 = std::chrono::steady_clock::now();
  for (int ex = 1; ex <= n_examples; ++ex) {
    mfemini::MfemExampleTest test(ex);
    run.results.push_back(explorer.explore(test, space));
  }
  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  run.cache_hit_rate = explorer.cache().stats().hit_rate();
  return run;
}

bool identical(const std::vector<core::StudyResult>& a,
               const std::vector<core::StudyResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t r = 0; r < a.size(); ++r) {
    if (a[r].outcomes.size() != b[r].outcomes.size()) return false;
    for (std::size_t i = 0; i < a[r].outcomes.size(); ++i) {
      const auto& x = a[r].outcomes[i];
      const auto& y = b[r].outcomes[i];
      if (!(x.comp == y.comp) || x.variability != y.variability ||
          x.cycles != y.cycles || x.speedup != y.speedup) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const int n_examples =
      argc > 1 ? std::atoi(argv[1]) : std::min(6, mfemini::kNumExamples);
  const unsigned jobs = argc > 2
                            ? static_cast<unsigned>(std::atoi(argv[2]))
                            : core::default_jobs();
  const auto space = toolchain::mfem_study_space();

  std::printf("parallel explore bench: %d examples x %zu compilations\n",
              n_examples, space.size());

  const StudyRun serial = run_study(n_examples, 1, space);
  std::printf("  serial    (jobs=1):  %7.3fs  cache hit rate %.1f%%\n",
              serial.seconds, 100.0 * serial.cache_hit_rate);

  const StudyRun parallel = run_study(n_examples, jobs, space);
  std::printf("  parallel  (jobs=%u):  %7.3fs  cache hit rate %.1f%%\n",
              jobs, parallel.seconds, 100.0 * parallel.cache_hit_rate);

  if (!identical(serial.results, parallel.results)) {
    std::fprintf(stderr,
                 "FATAL: parallel study differs from serial study\n");
    return 1;
  }

  const double speedup =
      parallel.seconds > 0.0 ? serial.seconds / parallel.seconds : 0.0;
  std::printf("  speedup: %.2fx on %u lanes (results bitwise-identical)\n",
              speedup, jobs);

  // Machine-readable line for the BENCH trajectory.
  std::printf(
      "BENCH_JSON {\"bench\":\"parallel_explore\",\"examples\":%d,"
      "\"space\":%zu,\"jobs\":%u,\"serial_s\":%.6f,\"parallel_s\":%.6f,"
      "\"speedup\":%.3f,\"cache_hit_rate\":%.4f,\"identical\":true}\n",
      n_examples, space.size(), jobs, serial.seconds, parallel.seconds,
      speedup, parallel.cache_hit_rate);
  return 0;
}
