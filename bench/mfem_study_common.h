#pragma once

// Shared driver for the MFEM-study benches (Table 1, Figures 4-6,
// Table 2): runs the 19 mini-MFEM examples over the 244-compilation space
// exactly once per binary and exposes the per-example StudyResults.

#include <chrono>
#include <cstdio>
#include <vector>

#include "core/explorer.h"
#include "mfemini/examples.h"
#include "toolchain/compiler.h"

namespace flit::bench {

struct MfemStudy {
  std::vector<toolchain::Compilation> space;
  std::vector<core::StudyResult> results;  ///< index 0 = example 1
};

/// Runs every example over the full space (prints progress to stderr).
inline MfemStudy run_mfem_study() {
  MfemStudy study;
  study.space = toolchain::mfem_study_space();
  core::SpaceExplorer explorer(&fpsem::global_code_model(),
                               toolchain::mfem_baseline(),
                               toolchain::mfem_speed_reference());
  const auto t0 = std::chrono::steady_clock::now();
  for (int ex = 1; ex <= mfemini::kNumExamples; ++ex) {
    mfemini::MfemExampleTest test(ex);
    study.results.push_back(explorer.explore(test, study.space));
    std::fprintf(stderr, "  [mfem-study] example %2d/%d done (%.1fs)\n", ex,
                 mfemini::kNumExamples,
                 std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
  }
  return study;
}

}  // namespace flit::bench
