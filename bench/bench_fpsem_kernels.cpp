// Microbenchmark (google-benchmark): throughput of the semantics-
// parameterized reduction kernels across floating-point semantics -- the
// evaluator overhead study backing the deterministic cost model.

#include <vector>

#include <benchmark/benchmark.h>

#include "fpsem/env.h"

namespace {

using namespace flit::fpsem;

FunctionId bench_fn() {
  static const FunctionId id = register_fn({
      .name = "bench::kernel_fn",
      .file = "bench/fpsem_kernels.cpp",
  });
  return id;
}

EvalContext make_ctx(FpSemantics sem) {
  const FunctionId id = bench_fn();
  SemanticsMap map(global_code_model().function_count());
  map.binding(id) = FnBinding{sem, {}};
  return EvalContext(std::move(map));
}

std::vector<double> data(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = 0.37 * static_cast<double>(i % 97) + 1.0 / (i + 2.0);
  }
  return v;
}

FpSemantics semantics_for(int kind) {
  FpSemantics s;
  switch (kind) {
    case 0: break;  // strict
    case 1: s.contract_fma = true; break;
    case 2: s.reassoc_width = 4; break;
    case 3: s.extended_precision = true; break;
    case 4:
      s.contract_fma = true;
      s.reassoc_width = 4;
      s.unsafe_math = true;
      break;
    default: break;
  }
  return s;
}

void BM_Sum(benchmark::State& state) {
  auto ctx = make_ctx(semantics_for(static_cast<int>(state.range(0))));
  const auto v = data(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    FpEnv env = ctx.fn(bench_fn());
    benchmark::DoNotOptimize(env.sum(v));
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}

void BM_Dot(benchmark::State& state) {
  auto ctx = make_ctx(semantics_for(static_cast<int>(state.range(0))));
  const auto a = data(static_cast<std::size_t>(state.range(1)));
  const auto b = data(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    FpEnv env = ctx.fn(bench_fn());
    benchmark::DoNotOptimize(env.dot(a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}

void BM_Axpy(benchmark::State& state) {
  auto ctx = make_ctx(semantics_for(static_cast<int>(state.range(0))));
  const auto x = data(static_cast<std::size_t>(state.range(1)));
  auto y = data(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    FpEnv env = ctx.fn(bench_fn());
    env.axpy(1.0000001, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}

void shapes(benchmark::internal::Benchmark* b) {
  for (int sem = 0; sem <= 4; ++sem) b->Args({sem, 4096});
}

BENCHMARK(BM_Sum)->Apply(shapes);
BENCHMARK(BM_Dot)->Apply(shapes);
BENCHMARK(BM_Axpy)->Apply(shapes);

}  // namespace

BENCHMARK_MAIN();
