// Reproduces Figure 5: for every MFEM example, the fastest bitwise-equal
// compilation per compiler (three bars) and the fastest variable
// compilation overall (fourth bar).  Missing bars mean no results in that
// category -- in particular the Intel bar is absent wherever the Intel
// link step makes every icpc compilation variable.

#include <cstdio>

#include "mfem_study_common.h"

using namespace flit;

int main() {
  const bench::MfemStudy study = bench::run_mfem_study();

  std::printf(
      "Figure 5: fastest bitwise-equal executable per compiler vs fastest "
      "variable, per example\n");
  std::printf("%-4s %-12s %-12s %-12s %-12s %s\n", "ex", "clang++ eq",
              "g++ eq", "icpc eq", "any variable", "winner");

  int equal_wins = 0, variable_wins = 0, no_variable = 0, missing_icpc = 0;
  for (int ex = 1; ex <= mfemini::kNumExamples; ++ex) {
    const core::StudyResult& r = study.results[static_cast<std::size_t>(ex - 1)];
    const auto* c = r.fastest_equal("clang++");
    const auto* g = r.fastest_equal("g++");
    const auto* i = r.fastest_equal("icpc");
    const auto* v = r.fastest_variable();
    const auto cell = [](const core::CompilationOutcome* o) {
      static char buf[4][16];
      static int n = 0;
      char* b = buf[n = (n + 1) % 4];
      if (o == nullptr) {
        std::snprintf(b, 16, "--");
      } else {
        std::snprintf(b, 16, "%.3f", o->speedup);
      }
      return b;
    };
    const double best_eq =
        std::max({c != nullptr ? c->speedup : 0.0,
                  g != nullptr ? g->speedup : 0.0,
                  i != nullptr ? i->speedup : 0.0});
    const char* winner = "equal";
    if (v == nullptr) {
      winner = "no variable compilation";
      ++no_variable;
      ++equal_wins;
    } else if (v->speedup > best_eq) {
      winner = "VARIABLE";
      ++variable_wins;
    } else {
      ++equal_wins;
    }
    if (i == nullptr) ++missing_icpc;
    std::printf("%-4d %-12s %-12s %-12s %-12s %s\n", ex, cell(c), cell(g),
                cell(i), cell(v), winner);
  }
  std::printf(
      "\nfastest-overall is bitwise equal on %d of %d examples (paper: 14 "
      "of 19)\n",
      equal_wins, mfemini::kNumExamples);
  std::printf("examples with no variable compilation: %d (paper: 2 -- "
              "examples 12 and 18)\n",
              no_variable);
  std::printf(
      "examples missing the icpc bitwise-equal bar (Intel link step): %d "
      "(paper: 5 -- examples 4, 5, 9, 10, 15)\n",
      missing_icpc);
  return 0;
}
