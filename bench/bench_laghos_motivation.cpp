// Reproduces the Sec. 1 / Sec. 3.4 Laghos observations:
//  * moving from xlc++ -O2 to -O3 changes the l2 norm of the energy over
//    the mesh macroscopically (the paper saw 129,664.9 -> 144,174.9, an
//    11.2% relative difference),
//  * and simultaneously speeds the run up by ~2.42x,
//  * the public branch's XOR-swap UB bug turns every result into NaN
//    under the UB-exploiting optimizer,
//  * the epsilon-compare fix restores agreement even under -O3.

#include <cmath>
#include <cstdio>

#include "laghos/hydro.h"
#include "toolchain/semantics_rules.h"

using namespace flit;

namespace {

struct RunResult {
  double energy_norm = 0.0;
  double cycles = 0.0;
  bool nan = false;
};

RunResult run(const toolchain::Compilation& c, laghos::HydroOptions opts) {
  auto ctx = fpsem::uniform_context(fpsem::FnBinding{
      toolchain::derive_semantics(c), toolchain::derive_cost(c)});
  const laghos::HydroState s = laghos::simulate(ctx, opts);
  RunResult r;
  r.energy_norm = laghos::energy_norm(ctx, s);
  r.cycles = ctx.counter().cycles();
  r.nan = std::isnan(s.last_dt);
  return r;
}

}  // namespace

int main() {
  const auto o2 = toolchain::laghos_trusted_xlc();
  const auto o3 = toolchain::laghos_variable_xlc();

  std::printf("Laghos motivating observations (Sec. 1 / Sec. 3.4)\n\n");

  laghos::HydroOptions buggy;  // exact ==0.0 compare present (as shipped)
  const RunResult r2 = run(o2, buggy);
  const RunResult r3 = run(o3, buggy);
  std::printf("1) optimization-induced result jump (zero-compare defect "
              "present):\n");
  std::printf("   %-12s energy l2 = %.6f   modeled cycles = %.3e\n",
              o2.str().c_str(), r2.energy_norm, r2.cycles);
  std::printf("   %-12s energy l2 = %.6f   modeled cycles = %.3e\n",
              o3.str().c_str(), r3.energy_norm, r3.cycles);
  std::printf("   relative difference: %.2f%%   (paper: 11.2%% -- 129,664.9 "
              "vs 144,174.9)\n",
              100.0 * std::fabs(r3.energy_norm - r2.energy_norm) /
                  r2.energy_norm);
  std::printf("   speedup O2 -> O3: %.2fx   (paper: 2.42x -- 51.5s vs "
              "21.3s)\n\n",
              r2.cycles / r3.cycles);

  laghos::HydroOptions with_xsw = buggy;
  with_xsw.use_xor_swap_bug = true;
  const RunResult rnan = run(o3, with_xsw);
  std::printf("2) public-branch XOR-swap UB bug under %s: all results NaN: "
              "%s (paper: every result was NaN)\n\n",
              o3.str().c_str(), rnan.nan ? "yes" : "NO (unexpected)");

  laghos::HydroOptions fixed = buggy;
  fixed.epsilon_zero_compare = true;
  const RunResult f2 = run(o2, fixed);
  const RunResult f3 = run(o3, fixed);
  std::printf("3) epsilon-compare fix: relative O2-vs-O3 difference drops "
              "to %.2e (paper: \"results close to the trusted results, even "
              "under xlc++ -O3\")\n",
              std::fabs(f3.energy_norm - f2.energy_norm) / f2.energy_norm);
  return 0;
}
