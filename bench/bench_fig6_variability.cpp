// Reproduces Figure 6: for every MFEM example, the number of
// variability-inducing compilations (out of 244) and the min / median /
// max of the relative l2 errors those compilations induce.

#include <cstdio>

#include "mfem_study_common.h"

using namespace flit;

int main() {
  const bench::MfemStudy study = bench::run_mfem_study();

  std::printf(
      "Figure 6: found variability per example (out of %zu compilations)\n",
      study.space.size());
  std::printf("%-4s %-14s %-12s %-12s %-12s\n", "ex", "# variable",
              "min rel err", "median", "max rel err");
  int omitted = 0;
  std::size_t max_count = 0;
  int max_err_example = 0;
  long double max_err = 0.0L;
  for (int ex = 1; ex <= mfemini::kNumExamples; ++ex) {
    const core::StudyResult& r = study.results[static_cast<std::size_t>(ex - 1)];
    const auto stats = r.variability_stats();
    if (!stats.has_value()) {
      std::printf("%-4d (no found variability -- omitted, as 12/18 in the "
                  "paper)\n",
                  ex);
      ++omitted;
      continue;
    }
    max_count = std::max(max_count, r.variable_count());
    if (stats->max > max_err) {
      max_err = stats->max;
      max_err_example = ex;
    }
    std::printf("%-4d %-14zu %-12.3Le %-12.3Le %-12.3Le\n", ex,
                r.variable_count(), stats->min, stats->median, stats->max);
  }
  std::printf("\nexamples omitted (no variability): %d (paper: 2)\n",
              omitted);
  std::printf("largest relative error: %.3Le on example %d (paper: "
              "183%%-197%% on example 13)\n",
              max_err, max_err_example);
  return 0;
}
