// Ablation study of the design choices DESIGN.md calls out:
//  1. hierarchical File->Symbol Bisect vs a flat search over all exported
//     symbols at once (the Sec. 2.3 argument for the dual-level search),
//  2. Test memoization on vs off (the Sec. 2.4 "1 + k instead of 2 + k"
//     note, which compounds across BisectOne invocations),
//  3. bisect_all vs ddmin vs linear scan execution counts on the real
//     mini-MFEM blame problem (not just synthetic universes).

#include <cmath>
#include <cstdio>
#include <memory>

#include "core/delta_debug.h"
#include "core/hierarchy.h"
#include "mfemini/examples.h"
#include "toolchain/compiler.h"

using namespace flit;

namespace {

/// Builds the File Bisect Test function for (test, baseline, variable) by
/// hand so the search strategies can be swapped.
core::MemoizedTest<std::string> make_file_test(
    const core::TestBase& test, const toolchain::Compilation& baseline,
    const toolchain::Compilation& variable,
    const std::vector<std::string>& scope, int* executions) {
  auto* model = &fpsem::global_code_model();
  auto build = std::make_shared<toolchain::BuildSystem>(model);
  auto linker = std::make_shared<toolchain::Linker>(model);
  auto runner = std::make_shared<core::Runner>(model);

  auto base_objs = std::make_shared<std::vector<toolchain::ObjectFile>>(
      build->compile_all(baseline));
  auto baseline_out = std::make_shared<core::RunOutput>(
      runner->run(test, linker->link(*base_objs, baseline.compiler)));

  return core::MemoizedTest<std::string>(
      [=, &test](const std::vector<std::string>& subset) -> double {
        std::vector<toolchain::ObjectFile> objs;
        for (const auto& o : *base_objs) {
          const bool variable_file =
              std::find(subset.begin(), subset.end(), o.source_file) !=
              subset.end();
          objs.push_back(variable_file
                             ? build->compile(o.source_file, variable)
                             : o);
        }
        ++*executions;
        const auto out =
            runner->run(test, linker->link(objs, baseline.compiler));
        (void)scope;
        return static_cast<double>(
            core::Runner::compare_outputs(test, *baseline_out, out));
      });
}

}  // namespace

int main() {
  mfemini::MfemExampleTest test(8);  // the 9-ish-culprit Finding 1 example
  const auto baseline = toolchain::mfem_baseline();
  const toolchain::Compilation variable{toolchain::gcc(),
                                        toolchain::OptLevel::O2,
                                        "-mavx2 -mfma"};
  const auto scope = mfemini::mfem_source_files();

  std::printf("Ablation 1: hierarchical File->Symbol vs flat search "
              "(MFEM example 8, %s)\n",
              variable.str().c_str());
  {
    core::BisectConfig cfg;
    cfg.baseline = baseline;
    cfg.variable = variable;
    cfg.scope = scope;
    core::BisectDriver driver(&fpsem::global_code_model(), &test, cfg);
    const auto out = driver.run();
    int symbols = 0;
    for (const auto& ff : out.findings) {
      symbols += static_cast<int>(ff.symbols.size());
    }
    std::printf("  hierarchical: %zu files, %d symbols, %d executions\n",
                out.findings.size(), symbols, out.executions);
  }
  {
    // Flat search baseline: bisect over the whole symbol universe,
    // emulated at file granularity by pooling every exported symbol count
    // (a flat symbol search costs O(k log S) with S = all symbols,
    // and cannot prune whole files early).
    std::size_t total_symbols = 0;
    for (const auto& f : scope) {
      total_symbols +=
          fpsem::global_code_model().exported_symbols_of(f).size();
    }
    int execs = 0;
    auto file_test =
        make_file_test(test, baseline, variable, scope, &execs);
    auto out = core::bisect_all(file_test, scope);
    std::printf("  flat symbol universe would span %zu symbols vs %zu "
                "files (log2 factor %.1f vs %.1f per culprit)\n",
                total_symbols, scope.size(),
                std::log2(static_cast<double>(total_symbols)),
                std::log2(static_cast<double>(scope.size())));
  }

  std::printf("\nAblation 2: Test memoization (same file-level search)\n");
  {
    int execs = 0;
    auto file_test =
        make_file_test(test, baseline, variable, scope, &execs);
    const auto out = core::bisect_all(file_test, scope);
    std::printf("  memoized:   %d calls, %d real executions (saved %d)\n",
                out.test_calls, out.executions,
                out.test_calls - out.executions);
  }

  std::printf("\nAblation 3: search strategies on the real blame problem\n");
  {
    int execs = 0;
    auto t1 = make_file_test(test, baseline, variable, scope, &execs);
    const auto bis = core::bisect_all(t1, scope);
    int execs2 = 0;
    auto t2 = make_file_test(test, baseline, variable, scope, &execs2);
    const auto dd = core::ddmin(t2, scope);
    int execs3 = 0;
    auto t3 = make_file_test(test, baseline, variable, scope, &execs3);
    int linear_found = 0;
    for (const auto& f : scope) {
      if (t3({f}) > 0.0) ++linear_found;
    }
    std::printf("  bisect_all:  %2zu culprit files in %2d executions\n",
                bis.found.size(), bis.executions);
    std::printf("  ddmin:       %2zu culprit files in %2d executions\n",
                dd.minimal.size(), dd.executions);
    std::printf("  linear scan: %2d culprit files in %2d executions\n",
                linear_found, t3.executions());
  }
  return 0;
}
