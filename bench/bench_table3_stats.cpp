// Reproduces Table 3: general statistics of the code exercised by the
// MFEM examples -- source files, average functions per file, total
// functions, and source lines of code (counted from the repository when
// FLIT_SOURCE_DIR is available).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "fpsem/code_model.h"
#include "mfemini/examples.h"

namespace fs = std::filesystem;

namespace {

long count_sloc(const fs::path& root) {
  long lines = 0;
  if (!fs::exists(root)) return -1;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext != ".cpp" && ext != ".h") continue;
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      if (line.find_first_not_of(" \t\r") != std::string::npos) ++lines;
    }
  }
  return lines;
}

}  // namespace

int main() {
  using flit::fpsem::global_code_model;
  const auto& model = global_code_model();
  const auto files = flit::mfemini::mfem_source_files();

  std::size_t functions = 0;
  for (const auto& f : files) functions += model.functions_in(f).size();

  std::printf("Table 3: general statistics of the code used by the MFEM "
              "examples\n");
  std::printf("%-28s %10zu   (paper: 97)\n", "source files", files.size());
  std::printf("%-28s %10.1f   (paper: 31)\n", "average functions per file",
              static_cast<double>(functions) / files.size());
  std::printf("%-28s %10zu   (paper: 2,998)\n", "total functions", functions);

#ifdef FLIT_SOURCE_DIR
  const long sloc = count_sloc(fs::path(FLIT_SOURCE_DIR) / "src");
  if (sloc >= 0) {
    std::printf("%-28s %10ld   (paper: 103,205; whole src/ tree)\n",
                "source lines of code", sloc);
  }
#endif
  std::printf(
      "\nThe mini-MFEM model is ~7x smaller than MFEM per dimension "
      "(files, functions); Bisect cost scales with log of these counts.\n");
  return 0;
}
