// Reproduces the Sec. 3.6 MPI study on the deterministic message-passing
// substrate:
//  1) 100 executions under 24 ranks checked for bitwise equality
//     (determinism prerequisite of Fig. 1),
//  2) the effect of parallelization on the results (domain decomposition
//     changes the discretization),
//  3) Bisect under MPI isolating the same files as the sequential search.

#include <algorithm>
#include <cstdio>

#include "core/hierarchy.h"
#include "par/study.h"
#include "toolchain/compiler.h"

using namespace flit;

int main() {
  std::printf("Sec. 3.6 MPI study (deterministic message-passing "
              "substrate)\n\n");

  // --- 1) determinism: 100 bitwise-identical executions ------------------
  par::ParallelPoissonTest t24(24, 4);
  std::string first;
  int identical = 0;
  for (int i = 0; i < 100; ++i) {
    auto ctx = fpsem::strict_context();
    const auto s = std::get<std::string>(t24.run_impl({}, ctx));
    if (i == 0) first = s;
    if (s == first) ++identical;
  }
  std::printf("1) determinism under 24 ranks: %d of 100 executions bitwise "
              "identical (paper: 100/100 on 17 of 19 wrappable tests)\n\n",
              identical);

  // --- 2) parallelism changes the result ---------------------------------
  auto c1 = fpsem::strict_context();
  auto c24 = fpsem::strict_context();
  const auto v1 = par::parallel_poisson(c1, par::DeterministicComm(1), 8);
  const auto v24 = par::parallel_poisson(c24, par::DeterministicComm(24), 8);
  std::printf("2) sequential run: %zu dofs; 24-rank run: %zu dofs -- the "
              "decomposition changes the grid density, so results differ "
              "(as the paper observed on all 17 tests)\n\n",
              v1.size(), v24.size());

  // --- 3) Bisect stability under MPI --------------------------------------
  const auto found_files = [&](int nranks, std::size_t epr) {
    par::ParallelPoissonTest t(nranks, epr);
    core::BisectConfig cfg;
    cfg.baseline = toolchain::mfem_baseline();
    cfg.variable = {toolchain::gcc(), toolchain::OptLevel::O2,
                    "-funsafe-math-optimizations"};
    core::BisectDriver driver(&fpsem::global_code_model(), &t, cfg);
    const auto out = driver.run();
    std::vector<std::string> files;
    for (const auto& ff : out.findings) files.push_back(ff.file);
    std::sort(files.begin(), files.end());
    return std::pair{files, out.executions};
  };
  const auto [seq, seq_runs] = found_files(1, 32);
  const auto [mpi, mpi_runs] = found_files(24, 4);
  std::printf("3) Bisect of g++ -O2 -funsafe-math-optimizations:\n");
  std::printf("   sequential found %zu file(s) in %d runs:", seq.size(),
              seq_runs);
  for (const auto& f : seq) std::printf(" %s", f.c_str());
  std::printf("\n   24 ranks   found %zu file(s) in %d runs:", mpi.size(),
              mpi_runs);
  for (const auto& f : mpi) std::printf(" %s", f.c_str());
  std::printf("\n   identical culprit sets: %s (paper: every sampled test "
              "isolated the same files and functions under MPI)\n",
              seq == mpi ? "yes" : "NO");
  return 0;
}
