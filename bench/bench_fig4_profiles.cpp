// Reproduces Figure 4: speedup-vs-compilation profiles for MFEM examples
// 5 and 9, compilations sorted by speedup, each marked bitwise-equal or
// variable.  Prints the full series (one row per compilation) plus the
// fastest-equal / fastest-variable summary the figure calls out.

#include <algorithm>
#include <cstdio>

#include "mfem_study_common.h"

using namespace flit;

namespace {

void profile(const core::StudyResult& r, int example) {
  std::vector<const core::CompilationOutcome*> sorted;
  for (const auto& o : r.outcomes) sorted.push_back(&o);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->speedup < b->speedup; });

  std::printf("\nFigure 4 profile, MFEM example %d (sorted by speedup)\n",
              example);
  std::printf("%-6s %-10s %-14s %s\n", "rank", "speedup", "variability",
              "compilation");
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    std::printf("%-6zu %-10.4f %-14.3Le %s%s\n", i, sorted[i]->speedup,
                sorted[i]->variability, sorted[i]->comp.str().c_str(),
                sorted[i]->bitwise_equal() ? "" : "   [variable]");
  }

  const auto* fe = r.fastest_equal();
  const auto* fv = r.fastest_variable();
  std::printf("summary example %d:\n", example);
  if (fe != nullptr) {
    std::printf("  fastest bitwise equal: %-40s speedup %.3f\n",
                fe->comp.str().c_str(), fe->speedup);
  }
  if (fv != nullptr) {
    std::printf("  fastest variable:      %-40s speedup %.3f  variability "
                "%.2Le\n",
                fv->comp.str().c_str(), fv->speedup, fv->variability);
  }
  if (fe != nullptr && fv != nullptr) {
    std::printf("  winner: %s\n",
                fe->speedup >= fv->speedup ? "bitwise equal" : "variable");
  }
}

}  // namespace

int main() {
  const bench::MfemStudy study = bench::run_mfem_study();
  profile(study.results[4], 5);  // Fig. 4a: equal wins (paper: 1.128 vs 1.044)
  profile(study.results[8], 9);  // Fig. 4b: variable wins (paper: 1.396 vs 1.094)
  std::printf(
      "\nPaper reference: ex5 fastest equal g++ -O3 (1.128) beats fastest "
      "variable g++ -O3 -mavx2 -mfma (1.044);\n"
      "                 ex9 fastest variable icpc -O3 -fp-model fast=1 "
      "(1.396) beats fastest equal clang++ -O3 (1.094)\n");
  return 0;
}
