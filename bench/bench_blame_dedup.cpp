// The blame-dedup campaign at matrix scale, measured two ways:
//
//  Phase A -- the full Table-1 study (19 mini-MFEM examples x 244
//  compilations): every variability-flagged cell is bisected through one
//  shared probe memo, the clustered report must be bitwise-identical
//  across shards {1,2,4} x jobs {1,4} x steal on/off, and the memoized
//  campaign must execute at least 40% fewer *real* programs than
//  independent per-cell bisects would (the sum of the cells' logical
//  execution counts, which is exactly what memo-less drivers run).
//
//  Phase B -- a 72-kernel generated corpus with planted ground truth:
//  clustering the campaign's blame sites must co-cluster kernels with the
//  same labeled mechanism and separate the rest, at pairwise precision
//  and recall 1.0 (gen/dedup.h).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "blame/campaign.h"
#include "core/explorer.h"
#include "core/registry.h"
#include "gen/dedup.h"
#include "gen/suite.h"
#include "mfemini/examples.h"
#include "toolchain/compiler.h"
#include "toolchain/semantics_rules.h"

using namespace flit;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

blame::BlameOptions options_for(int shards, unsigned jobs, bool steal) {
  blame::BlameOptions opts;
  opts.baseline = toolchain::mfem_baseline();
  opts.k = 0;
  opts.shard.shards = shards;
  opts.shard.jobs = jobs;
  opts.shard.steal = steal;
  return opts;
}

}  // namespace

int main() {
  const std::vector<toolchain::Compilation> space =
      toolchain::mfem_study_space();

  // ---------------------------------------- Phase A: the Table-1 matrix
  core::TestRegistry mfem_registry;
  for (int ex = 1; ex <= mfemini::kNumExamples; ++ex) {
    mfem_registry.add("MFEM_ex" + std::to_string(ex), [ex] {
      return std::unique_ptr<core::TestBase>(
          std::make_unique<mfemini::MfemExampleTest>(ex));
    });
  }

  const core::SpaceExplorer explorer(&fpsem::global_code_model(),
                                     toolchain::mfem_baseline(),
                                     toolchain::mfem_speed_reference(), 8);
  const auto study_start = std::chrono::steady_clock::now();
  blame::CampaignInput input;
  for (int ex = 1; ex <= mfemini::kNumExamples; ++ex) {
    const mfemini::MfemExampleTest test(ex);
    input.merge(blame::input_from_study(explorer.explore(test, space)));
    std::fprintf(stderr, "  [blame-dedup] study %2d/%d done (%.1fs)\n", ex,
                 mfemini::kNumExamples, seconds_since(study_start));
  }

  // The measuring run: serial, memo on.  The campaign's logical execution
  // count is memo-invariant, so the independent-bisect baseline is simply
  // the sum of each cell's own logical count -- exactly what per-cell
  // drivers without a shared memo run for the same findings.  Real
  // executions are memo misses: distinct executables actually run.
  const auto campaign_start = std::chrono::steady_clock::now();
  const blame::BlameReport measured = blame::run_campaign(
      &fpsem::global_code_model(), mfem_registry, input, options_for(1, 1, false));
  const double campaign_wall = seconds_since(campaign_start);

  long long independent = 0;
  long long cell_hits = 0;
  for (const blame::CellOutcome& cell : measured.cells) {
    independent += cell.bisect.executions;
    cell_hits += cell.bisect.memo_hits;
  }
  const long long cells_real = independent - cell_hits;
  const long long total_real = measured.executions - measured.memo_hits;
  const long long pairs_real = total_real - cells_real;
  const double savings =
      independent > 0
          ? 1.0 - static_cast<double>(cells_real) /
                      static_cast<double>(independent)
          : 0.0;

  std::printf("blame-dedup campaign over the Table-1 matrix (%d examples x "
              "%zu compilations):\n",
              mfemini::kNumExamples, space.size());
  std::printf("  cells %zu, clusters %zu, failed searches %zu (%.1fs)\n",
              measured.cells.size(), measured.clusters.size(),
              measured.failed_cells.size(), campaign_wall);
  std::printf("  independent per-cell executions %lld, memoized real "
              "executions %lld (%.1f%% saved)\n",
              independent, cells_real, 100.0 * savings);
  std::printf("  adversarial re-verification: %lld additional real "
              "executions (campaign total %lld, still %.1f%% under the "
              "independent bisects)\n",
              pairs_real, total_real,
              100.0 * (1.0 - static_cast<double>(total_real) /
                                 static_cast<double>(independent)));

  // The dedup claim: the memoized bisect sweep must run >= 40% fewer real
  // programs than independent per-cell bisects for the same findings.
  if (savings < 0.40) {
    std::fprintf(stderr,
                 "FATAL: probe-memo dedup saved only %.1f%% of the "
                 "independent executions (need >= 40%%)\n",
                 100.0 * savings);
    return 1;
  }
  // And the adversarial phase -- work the independent approach does not
  // do at all -- must not eat the whole win: the campaign, pairs
  // included, still runs fewer real programs than the naive sweep.
  if (total_real >= independent) {
    std::fprintf(stderr,
                 "FATAL: campaign real executions %lld exceed the "
                 "independent per-cell bisects %lld\n",
                 total_real, independent);
    return 1;
  }

  // Identity matrix: the deterministic report must not move by a byte
  // under any sharding, lane count, or stealing decision.
  const std::string reference = measured.text();
  int identity_configs = 1;
  const auto identity_start = std::chrono::steady_clock::now();
  for (const int shards : {1, 2, 4}) {
    for (const unsigned jobs : {1u, 4u}) {
      for (const bool steal : {false, true}) {
        if (shards == 1 && jobs == 1 && !steal) continue;  // the reference
        const blame::BlameReport r =
            blame::run_campaign(&fpsem::global_code_model(), mfem_registry,
                                input, options_for(shards, jobs, steal));
        ++identity_configs;
        if (r.text() != reference || r.executions != measured.executions) {
          std::fprintf(stderr,
                       "FATAL: report diverged at shards=%d jobs=%u "
                       "steal=%d\n",
                       shards, jobs, steal);
          return 1;
        }
      }
    }
  }
  std::printf("  report bitwise-identical across %d shardsxjobsxsteal "
              "configurations (%.1fs)\n",
              identity_configs, seconds_since(identity_start));

  // ------------------------------- Phase B: label-scored gen-corpus dedup
  //
  // The ground-truth labels certify response to the *canonical* mechanism
  // toggles (gen/suite.cpp): contraction on, reassociation at width 4,
  // fast transcendentals, subnormal flushing, unsafe rewrites.
  // Compilations that bend other knobs -- x87 extended precision, icpc's
  // width-2 lane split, UB-exploiting vectorizers -- also perturb the
  // kernels, but value-dependently: whether a particular operand stream
  // moves under a width-2 reassociation is luck, not label.  Scoring the
  // clustering against the labels is therefore only meaningful over the
  // mechanism-attributable subspace, and Phase B restricts to it.
  const fpsem::FpSemantics base_sem =
      toolchain::derive_semantics(toolchain::mfem_baseline());
  std::vector<toolchain::Compilation> gen_space;
  for (const toolchain::Compilation& c : space) {
    const fpsem::FpSemantics s = toolchain::derive_semantics(c);
    if (s.extended_precision == base_sem.extended_precision &&
        s.exploits_ub == base_sem.exploits_ub &&
        (s.reassoc_width == base_sem.reassoc_width || s.reassoc_width == 4)) {
      gen_space.push_back(c);
    }
  }

  gen::GenSpec spec;
  spec.seed = 11;
  spec.count = 72;
  fpsem::CodeModel gen_model;
  core::TestRegistry gen_registry;
  const gen::InstalledSuite suite =
      gen::install_suite(spec, gen_model, &gen_registry);

  const core::SpaceExplorer gen_explorer(&gen_model,
                                         toolchain::mfem_baseline(),
                                         toolchain::mfem_speed_reference(), 8);
  const auto gen_start = std::chrono::steady_clock::now();
  const auto gen_test = gen_registry.create(gen::kSuiteTestName);
  const blame::CampaignInput gen_input =
      blame::input_from_study(gen_explorer.explore(*gen_test, gen_space));

  blame::BlameOptions gen_opts = options_for(2, 4, true);
  const blame::BlameReport gen_report = blame::run_campaign(
      &gen_model, gen_registry, gen_input, gen_opts);
  const double gen_wall = seconds_since(gen_start);

  // A kernel's dedup signature is the sorted set of blame sites naming its
  // model file; same-mechanism kernels must share it exactly.
  std::map<std::string, std::vector<std::string>> sites_of_file;
  for (const blame::BlameCluster& cluster : gen_report.clusters) {
    for (const std::string& file : cluster.files) {
      sites_of_file[file].push_back(cluster.id);
    }
  }
  std::vector<gen::GroundTruthLabel> labels;
  labels.reserve(suite.kernels.size());
  for (const gen::InstalledKernel& ik : suite.kernels) {
    labels.push_back(ik.kernel.label());
  }
  const gen::DedupScore score =
      gen::score_dedup(labels, [&](const gen::GroundTruthLabel& l) {
        auto it = sites_of_file.find(l.file);
        if (it == sites_of_file.end()) return std::string("<unclustered>");
        std::vector<std::string> ids = it->second;
        std::sort(ids.begin(), ids.end());
        std::string sig;
        for (const std::string& id : ids) sig += id + ",";
        return sig;
      });

  std::printf("label-scored dedup over a %zu-kernel generated corpus "
              "(%zu mechanism-attributable compilations):\n",
              suite.kernels.size(), gen_space.size());
  std::printf("  cells %zu, clusters %zu, precision %.3f, recall %.3f "
              "(%.1fs)\n",
              gen_report.cells.size(), gen_report.clusters.size(),
              score.precision(), score.recall(), gen_wall);

  if (score.precision() != 1.0 || score.recall() != 1.0) {
    std::fprintf(stderr,
                 "FATAL: gen-corpus dedup scored precision %.3f recall "
                 "%.3f (need 1.0/1.0)\n",
                 score.precision(), score.recall());
    for (const gen::GroundTruthLabel& l : labels) {
      auto it = sites_of_file.find(l.file);
      std::string sig;
      if (it != sites_of_file.end()) {
        std::vector<std::string> ids = it->second;
        std::sort(ids.begin(), ids.end());
        for (const std::string& id : ids) sig += id + ",";
      }
      std::fprintf(stderr, "  %-16s %-32s %s\n", gen::to_string(l.mechanism),
                   l.kernel.c_str(), sig.c_str());
    }
    return 1;
  }

  std::printf(
      "BENCH_JSON {\"bench\":\"blame_dedup\",\"examples\":%d,"
      "\"space\":%zu,\"cells\":%zu,\"clusters\":%zu,"
      "\"independent_executions\":%lld,\"dedup_real_executions\":%lld,"
      "\"savings_pct\":%.2f,\"adversarial_real_executions\":%lld,"
      "\"campaign_real_executions\":%lld,"
      "\"identity_configs\":%d,\"identical\":true,"
      "\"campaign_wall_s\":%.6f}\n",
      mfemini::kNumExamples, space.size(), measured.cells.size(),
      measured.clusters.size(), independent, cells_real, 100.0 * savings,
      pairs_real, total_real, identity_configs, campaign_wall);
  std::printf(
      "BENCH_JSON {\"bench\":\"blame_dedup_gen\",\"kernels\":%zu,"
      "\"space\":%zu,\"cells\":%zu,\"clusters\":%zu,\"precision\":%.4f,"
      "\"recall\":%.4f,\"wall_s\":%.6f}\n",
      suite.kernels.size(), gen_space.size(), gen_report.cells.size(),
      gen_report.clusters.size(), score.precision(), score.recall(),
      gen_wall);
  return 0;
}
