// The sharded distributed study engine: fleet wall-clock scaling of the
// MFEM exploration (the Table 1 workload) at 1/2/4/8 shards, plus the
// per-shard and aggregate compilation-cache hit rates and per-shard
// modeled-cycle skew (min/~median/max), emitted both human-readably and
// as one machine-readable JSON line per shard count for the BENCH
// trajectory.
//
//   bench_shard_scaling [--skew|--faulted] [n_examples]
//
// n_examples defaults to 6 (the first six mini-MFEM examples over the
// full 244-compilation space).  Shards model *independent workers* -- a
// rank owns a slice of the space, its own cache and its own explorer --
// so they execute serially here (the bench host is a single core) and the
// fleet wall-clock is the slowest shard's time: what a real R-worker
// deployment would wait for.  "worker_s" is the summed per-shard compute
// (the fleet's total CPU bill; it grows slightly with R because every
// shard re-runs the two anchors and re-misses its cold cache).
// Determinism is asserted, not just claimed: the merged studies and their
// report CSVs must be bitwise-identical to the 1-shard run or the bench
// aborts.
//
// --skew benches the scheduler instead: a cost-skewed space (three slices
// of baseline copies the explorer answers from the anchor run, one slice
// holding the full study space) is run at 4 shards under four schedules --
// the static partition alone, static + work stealing, and the
// predicted-cost / cache-affinity placements (profiled from the stealing
// run, stealing on to mop up prediction error).  Stealing must cut the
// fleet wall-clock vs. the static split (the bar is 1.5x); affinity
// placement must then beat steal-only on *both* remaining axes: a
// strictly higher fleet cache hit rate (each fingerprint compiled once
// per fleet, not once per shard) at a max-shard modeled wall-clock no
// worse than stealing alone.  The merged studies stay bitwise-identical
// under every schedule.
//
// --faulted benches the fleet supervisor instead: the same workload runs
// through the supervised virtual-clock loop three times -- unfaulted
// (the baseline fleet clock), with the injector's shard site armed (ranks
// die mid-claim and the supervisor restarts them, reassigning the
// orphaned claims), and with a 100% fault rate under a zero restart
// budget in --allow-partial mode (every cell degrades).  The recovered
// study must be bitwise-identical to the unfaulted baseline and the
// recovery overhead -- faulted over unfaulted fleet virtual cycles --
// must stay within 1.25x, or the bench aborts.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/faults.h"
#include "core/report.h"
#include "dist/coordinator.h"
#include "dist/supervisor.h"
#include "mfemini/examples.h"
#include "toolchain/compiler.h"

using namespace flit;

namespace {

struct FleetRun {
  std::vector<core::StudyResult> results;
  double fleet_wall = 0.0;      ///< sum over examples of max shard time
  double worker_seconds = 0.0;  ///< sum over examples and shards
  std::size_t stolen = 0;       ///< items moved by the rebalancer
  std::vector<toolchain::CacheStats> rank_cache;  ///< summed per rank
  toolchain::CacheStats aggregate;
  std::vector<obs::HistogramData> rank_cycles;  ///< summed per rank
  double max_fresh_cycles = 0.0;  ///< sum over examples of slowest shard's
                                  ///< modeled wall-clock (fresh cycles)
  std::size_t avoided_compiles = 0;  ///< redundant group compiles avoided
};

FleetRun run_fleet(
    int n_examples, int shards,
    const std::vector<toolchain::Compilation>& space, bool steal = true,
    dist::PlacementPolicy placement = dist::PlacementPolicy::Static,
    const dist::CostProfile* profile = nullptr) {
  dist::ShardOptions opts;
  opts.shards = shards;
  opts.jobs = 1;
  opts.serial_shards = true;  // isolate per-shard timing on one core
  opts.steal = steal;
  opts.placement = placement;
  if (profile != nullptr) opts.profile = *profile;
  const dist::ShardCoordinator coord(&fpsem::global_code_model(),
                                     toolchain::mfem_baseline(),
                                     toolchain::mfem_speed_reference(),
                                     opts);
  FleetRun run;
  run.rank_cache.resize(static_cast<std::size_t>(shards));
  run.rank_cycles.assign(static_cast<std::size_t>(shards),
                         obs::HistogramData{obs::cycle_buckets()});
  for (int ex = 1; ex <= n_examples; ++ex) {
    mfemini::MfemExampleTest test(ex);
    dist::ShardedStudy sharded = coord.run(test, space);
    run.fleet_wall += sharded.max_shard_seconds();
    run.worker_seconds += sharded.total_shard_seconds();
    run.max_fresh_cycles += sharded.max_shard_fresh_cycles();
    run.avoided_compiles += sharded.placement.avoided_group_compiles();
    for (const dist::ShardReport& rep : sharded.shards) {
      run.rank_cache[static_cast<std::size_t>(rep.rank)] += rep.cache;
      run.rank_cycles[static_cast<std::size_t>(rep.rank)] += rep.cycles;
      run.stolen += rep.stolen;
    }
    run.aggregate += sharded.aggregate_cache();
    run.results.push_back(std::move(sharded.study));
  }
  return run;
}

bool identical(const std::vector<core::StudyResult>& a,
               const std::vector<core::StudyResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t r = 0; r < a.size(); ++r) {
    if (a[r].outcomes.size() != b[r].outcomes.size()) return false;
    for (std::size_t i = 0; i < a[r].outcomes.size(); ++i) {
      const auto& x = a[r].outcomes[i];
      const auto& y = b[r].outcomes[i];
      if (!(x.comp == y.comp) || x.variability != y.variability ||
          x.cycles != y.cycles || x.speedup != y.speedup ||
          x.status != y.status) {
        return false;
      }
    }
    // Bitwise-identical all the way to the report: the CSV is the
    // user-visible artifact the determinism contract promises.
    if (core::study_csv(a[r]) != core::study_csv(b[r])) return false;
  }
  return true;
}

/// The per-shard modeled-cycle skew summary as a JSON array:
/// [{"min":..,"med":..,"max":..}, ...] in rank order (zeros for shards
/// that executed nothing).
std::string shard_cycles_json(const FleetRun& run) {
  std::string out = "[";
  for (std::size_t r = 0; r < run.rank_cycles.size(); ++r) {
    const obs::HistogramData& h = run.rank_cycles[r];
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "%s{\"min\":%.0f,\"med\":%.0f,\"max\":%.0f}",
                  r == 0 ? "" : ",", h.count > 0 ? h.min_value() : 0.0,
                  h.count > 0 ? h.quantile(0.5) : 0.0,
                  h.count > 0 ? h.max_value() : 0.0);
    out += buf;
  }
  out += "]";
  return out;
}

/// The --skew workload: under a 4-way partition the first three slices
/// are baseline copies (answered from the memoized anchor run, so they
/// cost next to nothing) and the last slice is the full study space --
/// every fresh compile the fleet pays sits in one shard's slice.
std::vector<toolchain::Compilation> skewed_space() {
  const auto tail = toolchain::mfem_study_space();
  std::vector<toolchain::Compilation> space(3 * tail.size(),
                                            toolchain::mfem_baseline());
  space.insert(space.end(), tail.begin(), tail.end());
  return space;
}

int run_skew_bench(int n_examples) {
  const auto space = skewed_space();
  std::printf(
      "shard scheduling bench: %d examples x %zu compilations "
      "(cost concentrated in the last of 4 slices)\n",
      n_examples, space.size());

  const FleetRun fixed = run_fleet(n_examples, 4, space, /*steal=*/false);
  const FleetRun stealing = run_fleet(n_examples, 4, space, /*steal=*/true);
  // The placed runs refine the cost model from the stealing run's first
  // study -- the "prior run" of the --cost-profile workflow, in-process.
  const dist::CostProfile profile =
      dist::CostProfile::from_study(stealing.results.front());
  const FleetRun cost = run_fleet(n_examples, 4, space, /*steal=*/true,
                                  dist::PlacementPolicy::Cost, &profile);
  const FleetRun affinity =
      run_fleet(n_examples, 4, space, /*steal=*/true,
                dist::PlacementPolicy::Affinity, &profile);

  for (const auto* run : {&stealing, &cost, &affinity}) {
    if (!identical(run->results, fixed.results)) {
      std::fprintf(stderr,
                   "FATAL: rebalanced/placed study differs from the static "
                   "study\n");
      return 1;
    }
  }
  const double steal_speedup = stealing.fleet_wall > 0.0
                                   ? fixed.fleet_wall / stealing.fleet_wall
                                   : 0.0;

  struct Row {
    const char* label;
    const char* placement;
    const FleetRun* run;
    bool steal;
  };
  for (const Row& row :
       {Row{"static  ", "static", &fixed, false},
        Row{"steal   ", "static", &stealing, true},
        Row{"cost    ", "cost", &cost, true},
        Row{"affinity", "affinity", &affinity, true}}) {
    std::printf(
        "  %s: fleet wall %7.3fs  worker total %7.3fs  stolen %5zu  "
        "fleet cache hit %5.1f%%  max shard cycles %.3g  avoided %zu\n",
        row.label, row.run->fleet_wall, row.run->worker_seconds,
        row.run->stolen, 100.0 * row.run->aggregate.hit_rate(),
        row.run->max_fresh_cycles, row.run->avoided_compiles);
    std::printf(
        "BENCH_JSON {\"bench\":\"shard_scaling_skew\",\"examples\":%d,"
        "\"space\":%zu,\"shards\":4,\"placement\":\"%s\",\"steal\":%s,"
        "\"fleet_wall_s\":%.6f,\"worker_s\":%.6f,\"stolen\":%zu,"
        "\"steal_speedup\":%.3f,\"hit_rate\":%.4f,"
        "\"max_fresh_cycles\":%.1f,\"avoided_compiles\":%zu,"
        "\"shard_cycles\":%s,\"identical\":true}\n",
        n_examples, space.size(), row.placement,
        row.steal ? "true" : "false", row.run->fleet_wall,
        row.run->worker_seconds, row.run->stolen,
        row.steal ? steal_speedup : 1.0, row.run->aggregate.hit_rate(),
        row.run->max_fresh_cycles, row.run->avoided_compiles,
        shard_cycles_json(*row.run).c_str());
  }

  // Acceptance bar 1: on a skewed space the rebalancer must cut the fleet
  // wall-clock, not just shuffle work.
  if (stealing.stolen == 0) {
    std::fprintf(stderr, "FATAL: the rebalancer never stole an item\n");
    return 1;
  }
  if (steal_speedup < 1.5) {
    std::fprintf(stderr,
                 "FATAL: stealing fleet speedup %.2fx is below the 1.5x "
                 "bar\n",
                 steal_speedup);
    return 1;
  }

  // Acceptance bar 2: affinity placement must beat steal-only static on
  // both remaining axes -- strictly fewer redundant compilations (higher
  // fleet hit rate) at a modeled max-shard wall-clock no worse than
  // stealing alone (5% tolerance: the placement is predicted, stealing
  // corrects the residue).
  if (affinity.aggregate.hit_rate() <= stealing.aggregate.hit_rate()) {
    std::fprintf(stderr,
                 "FATAL: affinity fleet hit rate %.2f%% does not beat "
                 "steal-only %.2f%%\n",
                 100.0 * affinity.aggregate.hit_rate(),
                 100.0 * stealing.aggregate.hit_rate());
    return 1;
  }
  if (affinity.max_fresh_cycles > 1.05 * stealing.max_fresh_cycles) {
    std::fprintf(stderr,
                 "FATAL: affinity max shard cycles %.3g exceeds steal-only "
                 "%.3g by more than 5%%\n",
                 affinity.max_fresh_cycles, stealing.max_fresh_cycles);
    return 1;
  }
  if (cost.max_fresh_cycles > 1.05 * stealing.max_fresh_cycles) {
    std::fprintf(stderr,
                 "FATAL: cost max shard cycles %.3g exceeds steal-only "
                 "%.3g by more than 5%%\n",
                 cost.max_fresh_cycles, stealing.max_fresh_cycles);
    return 1;
  }
  return 0;
}

/// One pass of the supervised virtual-clock loop over the first
/// n_examples, with the injector in whatever state the caller armed.
/// Supervisor counters are summed across examples.
struct SupervisedRun {
  std::vector<core::StudyResult> results;
  dist::SupervisorSummary totals;
};

SupervisedRun run_supervised_fleet(
    int n_examples, int shards,
    const std::vector<toolchain::Compilation>& space, int max_restarts,
    bool allow_partial) {
  dist::SupervisorOptions opts;
  opts.shard.shards = shards;
  opts.shard.jobs = 1;
  opts.max_restarts = max_restarts;
  opts.allow_partial = allow_partial;
  opts.force_supervised = true;  // unfaulted baseline takes the same loop
  const dist::FleetSupervisor fleet(&fpsem::global_code_model(),
                                    toolchain::mfem_baseline(),
                                    toolchain::mfem_speed_reference(),
                                    opts);
  SupervisedRun run;
  for (int ex = 1; ex <= n_examples; ++ex) {
    mfemini::MfemExampleTest test(ex);
    dist::ShardedStudy sharded = fleet.run(test, space);
    run.totals.rank_faults += sharded.supervisor.rank_faults;
    run.totals.stalls += sharded.supervisor.stalls;
    run.totals.restarts += sharded.supervisor.restarts;
    run.totals.reassigned_claims += sharded.supervisor.reassigned_claims;
    run.totals.reassigned_items += sharded.supervisor.reassigned_items;
    run.totals.degraded_cells += sharded.supervisor.degraded_cells;
    run.totals.dead_ranks += sharded.supervisor.dead_ranks;
    run.totals.backoff_cycles += sharded.supervisor.backoff_cycles;
    run.totals.fleet_cycles += sharded.supervisor.fleet_cycles;
    run.results.push_back(std::move(sharded.study));
  }
  return run;
}

int run_faulted_bench(int n_examples) {
  const auto space = toolchain::mfem_study_space();
  std::printf(
      "fleet supervisor bench: %d examples x %zu compilations at 2 "
      "shards\n",
      n_examples, space.size());
  auto& injector = core::FaultInjector::global();

  injector.disarm();
  const SupervisedRun baseline =
      run_supervised_fleet(n_examples, 2, space, /*max_restarts=*/2,
                           /*allow_partial=*/false);

  // shard:0.05:3 is seed-picked to fire on this workload (the injector
  // hashes site x seed x rank context x claim key).  A generous restart
  // budget keeps every fault recoverable.
  injector.configure("shard:0.05:3");
  const SupervisedRun recovered =
      run_supervised_fleet(n_examples, 2, space, /*max_restarts=*/8,
                           /*allow_partial=*/false);
  injector.disarm();

  // Every claim roll faults and no restart is allowed: the whole fleet
  // dies and --allow-partial degrades every cell.
  injector.configure("shard:1.0:1");
  const SupervisedRun degraded =
      run_supervised_fleet(n_examples, 2, space, /*max_restarts=*/0,
                           /*allow_partial=*/true);
  injector.disarm();

  const double overhead =
      baseline.totals.fleet_cycles > 0.0
          ? recovered.totals.fleet_cycles / baseline.totals.fleet_cycles
          : 0.0;

  struct Row {
    const char* label;
    const char* mode;
    const SupervisedRun* run;
  };
  for (const Row& row : {Row{"unfaulted", "unfaulted", &baseline},
                         Row{"recovered", "recovered", &recovered},
                         Row{"degraded ", "degraded", &degraded}}) {
    const dist::SupervisorSummary& t = row.run->totals;
    std::printf(
        "  %s: fleet clock %12.0f cycles  faults %3zu  restarts %3zu  "
        "reassigned %3zu claim(s)/%4zu item(s)  degraded %4zu  dead %2zu\n",
        row.label, t.fleet_cycles, t.rank_faults, t.restarts,
        t.reassigned_claims, t.reassigned_items, t.degraded_cells,
        t.dead_ranks);
    std::printf(
        "BENCH_JSON {\"bench\":\"shard_scaling_faulted\",\"examples\":%d,"
        "\"space\":%zu,\"shards\":2,\"mode\":\"%s\","
        "\"fleet_cycles\":%.1f,\"rank_faults\":%zu,\"restarts\":%zu,"
        "\"reassigned_claims\":%zu,\"reassigned_items\":%zu,"
        "\"degraded_cells\":%zu,\"dead_ranks\":%zu,"
        "\"backoff_cycles\":%.1f,\"recovery_overhead\":%.4f}\n",
        n_examples, space.size(), row.mode, t.fleet_cycles, t.rank_faults,
        t.restarts, t.reassigned_claims, t.reassigned_items,
        t.degraded_cells, t.dead_ranks, t.backoff_cycles,
        row.run == &recovered ? overhead : 1.0);
  }

  // Acceptance bar 1: the faulted run must actually have been faulted --
  // a seed that never fires benches nothing.
  if (recovered.totals.rank_faults == 0 ||
      recovered.totals.reassigned_claims == 0) {
    std::fprintf(stderr,
                 "FATAL: the shard fault seed never fired (no recovery "
                 "exercised)\n");
    return 1;
  }
  // Acceptance bar 2: recovery must preserve the study bytes exactly.
  if (!identical(recovered.results, baseline.results)) {
    std::fprintf(stderr,
                 "FATAL: the recovered study differs from the unfaulted "
                 "baseline\n");
    return 1;
  }
  // Acceptance bar 3: restart/backoff and claim reassignment must stay
  // cheap -- within 1.25x of the unfaulted fleet virtual clock.
  if (overhead > 1.25) {
    std::fprintf(stderr,
                 "FATAL: recovery overhead %.3fx exceeds the 1.25x bar\n",
                 overhead);
    return 1;
  }
  // Acceptance bar 4: budget exhaustion under --allow-partial must
  // degrade every cell rather than abort.
  if (degraded.totals.degraded_cells !=
      static_cast<std::size_t>(n_examples) * space.size()) {
    std::fprintf(stderr,
                 "FATAL: expected %zu degraded cells, got %zu\n",
                 static_cast<std::size_t>(n_examples) * space.size(),
                 degraded.totals.degraded_cells);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool skew = false;
  bool faulted = false;
  int arg_examples = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--skew") {
      skew = true;
    } else if (std::string_view(argv[i]) == "--faulted") {
      faulted = true;
    } else {
      arg_examples = std::atoi(argv[i]);
    }
  }
  const int n_examples =
      arg_examples > 0
          ? arg_examples
          : std::min(skew || faulted ? 3 : 6, mfemini::kNumExamples);
  if (skew) return run_skew_bench(n_examples);
  if (faulted) return run_faulted_bench(n_examples);
  const auto space = toolchain::mfem_study_space();

  std::printf("shard scaling bench: %d examples x %zu compilations\n",
              n_examples, space.size());

  const FleetRun reference = run_fleet(n_examples, 1, space);
  double speedup4 = 0.0;

  for (int shards : {1, 2, 4, 8}) {
    const FleetRun run =
        shards == 1 ? reference : run_fleet(n_examples, shards, space);
    if (!identical(run.results, reference.results)) {
      std::fprintf(stderr,
                   "FATAL: %d-shard study differs from the 1-shard study\n",
                   shards);
      return 1;
    }
    const double speedup =
        run.fleet_wall > 0.0 ? reference.fleet_wall / run.fleet_wall : 0.0;
    if (shards == 4) speedup4 = speedup;

    std::printf(
        "  shards=%d: fleet wall %7.3fs  worker total %7.3fs  "
        "speedup %5.2fx  fleet cache hit %.1f%%\n",
        shards, run.fleet_wall, run.worker_seconds, speedup,
        100.0 * run.aggregate.hit_rate());
    std::printf("            per-shard cache hit rates:");
    for (const toolchain::CacheStats& s : run.rank_cache) {
      std::printf(" %.1f%%", 100.0 * s.hit_rate());
    }
    std::printf("\n");

    std::printf(
        "BENCH_JSON {\"bench\":\"shard_scaling\",\"examples\":%d,"
        "\"space\":%zu,\"shards\":%d,\"fleet_wall_s\":%.6f,"
        "\"worker_s\":%.6f,\"speedup\":%.3f,\"cache_hit_rate\":%.4f,"
        "\"shard_cycles\":%s,\"identical\":true}\n",
        n_examples, space.size(), shards, run.fleet_wall,
        run.worker_seconds, speedup, run.aggregate.hit_rate(),
        shard_cycles_json(run).c_str());
  }

  // The acceptance bar: partitioning the space across 4 workers must cut
  // the fleet wall-clock (slowest worker) at least in half.
  if (speedup4 < 2.0) {
    std::fprintf(stderr,
                 "FATAL: 4-shard fleet speedup %.2fx is below the 2x bar\n",
                 speedup4);
    return 1;
  }
  return 0;
}
