// The sharded distributed study engine: fleet wall-clock scaling of the
// MFEM exploration (the Table 1 workload) at 1/2/4/8 shards, plus the
// per-shard and aggregate compilation-cache hit rates, emitted both
// human-readably and as one machine-readable JSON line per shard count
// for the BENCH trajectory.
//
//   bench_shard_scaling [n_examples]
//
// n_examples defaults to 6 (the first six mini-MFEM examples over the
// full 244-compilation space).  Shards model *independent workers* -- a
// rank owns a contiguous slice of the space, its own cache and its own
// explorer -- so they execute serially here (the bench host is a single
// core) and the fleet wall-clock is the slowest shard's time: what a real
// R-worker deployment would wait for.  "worker_s" is the summed per-shard
// compute (the fleet's total CPU bill; it grows slightly with R because
// every shard re-runs the two anchors and re-misses its cold cache).
// Determinism is asserted, not just claimed: the merged studies must be
// bitwise-identical to the 1-shard run or the bench aborts.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "dist/coordinator.h"
#include "mfemini/examples.h"
#include "toolchain/compiler.h"

using namespace flit;

namespace {

struct FleetRun {
  std::vector<core::StudyResult> results;
  double fleet_wall = 0.0;      ///< sum over examples of max shard time
  double worker_seconds = 0.0;  ///< sum over examples and shards
  std::vector<toolchain::CacheStats> rank_cache;  ///< summed per rank
  toolchain::CacheStats aggregate;
};

FleetRun run_fleet(int n_examples, int shards,
                   const std::vector<toolchain::Compilation>& space) {
  dist::ShardOptions opts;
  opts.shards = shards;
  opts.jobs = 1;
  opts.serial_shards = true;  // isolate per-shard timing on one core
  const dist::ShardCoordinator coord(&fpsem::global_code_model(),
                                     toolchain::mfem_baseline(),
                                     toolchain::mfem_speed_reference(),
                                     opts);
  FleetRun run;
  run.rank_cache.resize(static_cast<std::size_t>(shards));
  for (int ex = 1; ex <= n_examples; ++ex) {
    mfemini::MfemExampleTest test(ex);
    dist::ShardedStudy sharded = coord.run(test, space);
    run.fleet_wall += sharded.max_shard_seconds();
    run.worker_seconds += sharded.total_shard_seconds();
    for (const dist::ShardReport& rep : sharded.shards) {
      run.rank_cache[static_cast<std::size_t>(rep.rank)] += rep.cache;
    }
    run.aggregate += sharded.aggregate_cache();
    run.results.push_back(std::move(sharded.study));
  }
  return run;
}

bool identical(const std::vector<core::StudyResult>& a,
               const std::vector<core::StudyResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t r = 0; r < a.size(); ++r) {
    if (a[r].outcomes.size() != b[r].outcomes.size()) return false;
    for (std::size_t i = 0; i < a[r].outcomes.size(); ++i) {
      const auto& x = a[r].outcomes[i];
      const auto& y = b[r].outcomes[i];
      if (!(x.comp == y.comp) || x.variability != y.variability ||
          x.cycles != y.cycles || x.speedup != y.speedup ||
          x.status != y.status) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const int n_examples =
      argc > 1 ? std::atoi(argv[1]) : std::min(6, mfemini::kNumExamples);
  const auto space = toolchain::mfem_study_space();

  std::printf("shard scaling bench: %d examples x %zu compilations\n",
              n_examples, space.size());

  const FleetRun reference = run_fleet(n_examples, 1, space);
  double speedup4 = 0.0;

  for (int shards : {1, 2, 4, 8}) {
    const FleetRun run =
        shards == 1 ? reference : run_fleet(n_examples, shards, space);
    if (!identical(run.results, reference.results)) {
      std::fprintf(stderr,
                   "FATAL: %d-shard study differs from the 1-shard study\n",
                   shards);
      return 1;
    }
    const double speedup =
        run.fleet_wall > 0.0 ? reference.fleet_wall / run.fleet_wall : 0.0;
    if (shards == 4) speedup4 = speedup;

    std::printf(
        "  shards=%d: fleet wall %7.3fs  worker total %7.3fs  "
        "speedup %5.2fx  aggregate cache hit %.1f%%\n",
        shards, run.fleet_wall, run.worker_seconds, speedup,
        100.0 * run.aggregate.hit_rate());
    std::printf("            per-shard cache hit rates:");
    for (const toolchain::CacheStats& s : run.rank_cache) {
      std::printf(" %.1f%%", 100.0 * s.hit_rate());
    }
    std::printf("\n");

    std::printf(
        "BENCH_JSON {\"bench\":\"shard_scaling\",\"examples\":%d,"
        "\"space\":%zu,\"shards\":%d,\"fleet_wall_s\":%.6f,"
        "\"worker_s\":%.6f,\"speedup\":%.3f,\"cache_hit_rate\":%.4f,"
        "\"identical\":true}\n",
        n_examples, space.size(), shards, run.fleet_wall,
        run.worker_seconds, speedup, run.aggregate.hit_rate());
  }

  // The acceptance bar: partitioning the space across 4 workers must cut
  // the fleet wall-clock (slowest worker) at least in half.
  if (speedup4 < 2.0) {
    std::fprintf(stderr,
                 "FATAL: 4-shard fleet speedup %.2fx is below the 2x bar\n",
                 speedup4);
    return 1;
  }
  return 0;
}
