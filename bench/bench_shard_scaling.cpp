// The sharded distributed study engine: fleet wall-clock scaling of the
// MFEM exploration (the Table 1 workload) at 1/2/4/8 shards, plus the
// per-shard and aggregate compilation-cache hit rates, emitted both
// human-readably and as one machine-readable JSON line per shard count
// for the BENCH trajectory.
//
//   bench_shard_scaling [--skew] [n_examples]
//
// n_examples defaults to 6 (the first six mini-MFEM examples over the
// full 244-compilation space).  Shards model *independent workers* -- a
// rank owns a contiguous slice of the space, its own cache and its own
// explorer -- so they execute serially here (the bench host is a single
// core) and the fleet wall-clock is the slowest shard's time: what a real
// R-worker deployment would wait for.  "worker_s" is the summed per-shard
// compute (the fleet's total CPU bill; it grows slightly with R because
// every shard re-runs the two anchors and re-misses its cold cache).
// Determinism is asserted, not just claimed: the merged studies must be
// bitwise-identical to the 1-shard run or the bench aborts.
//
// --skew benches the work-stealing rebalancer instead: a cost-skewed
// space (three slices of baseline copies the explorer answers from the
// anchor run, one slice holding the full study space) is run at 4 shards
// with stealing off and on.  Static partitioning leaves the tail shard as
// the fleet's critical path; stealing must cut the fleet wall-clock (the
// bar is 1.5x) while the merged studies stay bitwise-identical, and the
// worker total is reported too -- thieves compile stolen work against
// cold caches, so stealing trades total CPU for wall-clock.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <utility>
#include <vector>

#include "dist/coordinator.h"
#include "mfemini/examples.h"
#include "toolchain/compiler.h"

using namespace flit;

namespace {

struct FleetRun {
  std::vector<core::StudyResult> results;
  double fleet_wall = 0.0;      ///< sum over examples of max shard time
  double worker_seconds = 0.0;  ///< sum over examples and shards
  std::size_t stolen = 0;       ///< items moved by the rebalancer
  std::vector<toolchain::CacheStats> rank_cache;  ///< summed per rank
  toolchain::CacheStats aggregate;
};

FleetRun run_fleet(int n_examples, int shards,
                   const std::vector<toolchain::Compilation>& space,
                   bool steal = true) {
  dist::ShardOptions opts;
  opts.shards = shards;
  opts.jobs = 1;
  opts.serial_shards = true;  // isolate per-shard timing on one core
  opts.steal = steal;
  const dist::ShardCoordinator coord(&fpsem::global_code_model(),
                                     toolchain::mfem_baseline(),
                                     toolchain::mfem_speed_reference(),
                                     opts);
  FleetRun run;
  run.rank_cache.resize(static_cast<std::size_t>(shards));
  for (int ex = 1; ex <= n_examples; ++ex) {
    mfemini::MfemExampleTest test(ex);
    dist::ShardedStudy sharded = coord.run(test, space);
    run.fleet_wall += sharded.max_shard_seconds();
    run.worker_seconds += sharded.total_shard_seconds();
    for (const dist::ShardReport& rep : sharded.shards) {
      run.rank_cache[static_cast<std::size_t>(rep.rank)] += rep.cache;
      run.stolen += rep.stolen;
    }
    run.aggregate += sharded.aggregate_cache();
    run.results.push_back(std::move(sharded.study));
  }
  return run;
}

bool identical(const std::vector<core::StudyResult>& a,
               const std::vector<core::StudyResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t r = 0; r < a.size(); ++r) {
    if (a[r].outcomes.size() != b[r].outcomes.size()) return false;
    for (std::size_t i = 0; i < a[r].outcomes.size(); ++i) {
      const auto& x = a[r].outcomes[i];
      const auto& y = b[r].outcomes[i];
      if (!(x.comp == y.comp) || x.variability != y.variability ||
          x.cycles != y.cycles || x.speedup != y.speedup ||
          x.status != y.status) {
        return false;
      }
    }
  }
  return true;
}

/// The --skew workload: under a 4-way partition the first three slices
/// are baseline copies (answered from the memoized anchor run, so they
/// cost next to nothing) and the last slice is the full study space --
/// every fresh compile the fleet pays sits in one shard's slice.
std::vector<toolchain::Compilation> skewed_space() {
  const auto tail = toolchain::mfem_study_space();
  std::vector<toolchain::Compilation> space(3 * tail.size(),
                                            toolchain::mfem_baseline());
  space.insert(space.end(), tail.begin(), tail.end());
  return space;
}

int run_skew_bench(int n_examples) {
  const auto space = skewed_space();
  std::printf(
      "shard rebalancing bench: %d examples x %zu compilations "
      "(cost concentrated in the last of 4 slices)\n",
      n_examples, space.size());

  const FleetRun fixed = run_fleet(n_examples, 4, space, /*steal=*/false);
  const FleetRun stealing = run_fleet(n_examples, 4, space, /*steal=*/true);
  if (!identical(stealing.results, fixed.results)) {
    std::fprintf(stderr,
                 "FATAL: stealing study differs from the static study\n");
    return 1;
  }
  const double steal_speedup = stealing.fleet_wall > 0.0
                                   ? fixed.fleet_wall / stealing.fleet_wall
                                   : 0.0;

  struct Row {
    const char* label;
    const FleetRun* run;
    bool steal;
  };
  for (const Row& row : {Row{"static", &fixed, false},
                         Row{"steal ", &stealing, true}}) {
    std::printf(
        "  %s: fleet wall %7.3fs  worker total %7.3fs  stolen %zu\n",
        row.label, row.run->fleet_wall, row.run->worker_seconds,
        row.run->stolen);
    std::printf(
        "BENCH_JSON {\"bench\":\"shard_scaling_skew\",\"examples\":%d,"
        "\"space\":%zu,\"shards\":4,\"steal\":%s,\"fleet_wall_s\":%.6f,"
        "\"worker_s\":%.6f,\"stolen\":%zu,\"steal_speedup\":%.3f,"
        "\"identical\":true}\n",
        n_examples, space.size(), row.steal ? "true" : "false",
        row.run->fleet_wall, row.run->worker_seconds, row.run->stolen,
        row.steal ? steal_speedup : 1.0);
  }

  // The acceptance bar: on a skewed space the rebalancer must cut the
  // fleet wall-clock, not just shuffle work.
  if (stealing.stolen == 0) {
    std::fprintf(stderr, "FATAL: the rebalancer never stole an item\n");
    return 1;
  }
  if (steal_speedup < 1.5) {
    std::fprintf(stderr,
                 "FATAL: stealing fleet speedup %.2fx is below the 1.5x "
                 "bar\n",
                 steal_speedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool skew = false;
  int arg_examples = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--skew") {
      skew = true;
    } else {
      arg_examples = std::atoi(argv[i]);
    }
  }
  const int n_examples =
      arg_examples > 0
          ? arg_examples
          : std::min(skew ? 3 : 6, mfemini::kNumExamples);
  if (skew) return run_skew_bench(n_examples);
  const auto space = toolchain::mfem_study_space();

  std::printf("shard scaling bench: %d examples x %zu compilations\n",
              n_examples, space.size());

  const FleetRun reference = run_fleet(n_examples, 1, space);
  double speedup4 = 0.0;

  for (int shards : {1, 2, 4, 8}) {
    const FleetRun run =
        shards == 1 ? reference : run_fleet(n_examples, shards, space);
    if (!identical(run.results, reference.results)) {
      std::fprintf(stderr,
                   "FATAL: %d-shard study differs from the 1-shard study\n",
                   shards);
      return 1;
    }
    const double speedup =
        run.fleet_wall > 0.0 ? reference.fleet_wall / run.fleet_wall : 0.0;
    if (shards == 4) speedup4 = speedup;

    std::printf(
        "  shards=%d: fleet wall %7.3fs  worker total %7.3fs  "
        "speedup %5.2fx  aggregate cache hit %.1f%%\n",
        shards, run.fleet_wall, run.worker_seconds, speedup,
        100.0 * run.aggregate.hit_rate());
    std::printf("            per-shard cache hit rates:");
    for (const toolchain::CacheStats& s : run.rank_cache) {
      std::printf(" %.1f%%", 100.0 * s.hit_rate());
    }
    std::printf("\n");

    std::printf(
        "BENCH_JSON {\"bench\":\"shard_scaling\",\"examples\":%d,"
        "\"space\":%zu,\"shards\":%d,\"fleet_wall_s\":%.6f,"
        "\"worker_s\":%.6f,\"speedup\":%.3f,\"cache_hit_rate\":%.4f,"
        "\"identical\":true}\n",
        n_examples, space.size(), shards, run.fleet_wall,
        run.worker_seconds, speedup, run.aggregate.hit_rate());
  }

  // The acceptance bar: partitioning the space across 4 workers must cut
  // the fleet wall-clock (slowest worker) at least in half.
  if (speedup4 < 2.0) {
    std::fprintf(stderr,
                 "FATAL: 4-shard fleet speedup %.2fx is below the 2x bar\n",
                 speedup4);
    return 1;
  }
  return 0;
}
