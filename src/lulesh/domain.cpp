// lulesh/domain.cpp -- domain construction, kinematics and volume update.

#include "lulesh/domain.h"

#include "fpsem/code_model.h"
#include "lulesh/internal.h"

namespace flit::lulesh {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kKinematics = register_fn({
    .name = "CalcKinematicsForElems",
    .file = "lulesh/domain.cpp",
});
// Per-element volume from node positions; inlined into kinematics.
const fpsem::FunctionId kElemVolume = register_fn({
    .name = "CalcElemVolume",
    .file = "lulesh/domain.cpp",
    .exported = false,
    .host_symbol = "CalcKinematicsForElems",
});
const fpsem::FunctionId kUpdateVolumes = register_fn({
    .name = "UpdateVolumesForElems",
    .file = "lulesh/domain.cpp",
});
const fpsem::FunctionId kCharLength = register_fn({
    .name = "CalcElemCharacteristicLength",
    .file = "lulesh/domain.cpp",
    .exported = false,
    .host_symbol = "CalcKinematicsForElems",
});

double calc_elem_volume(fpsem::EvalContext& ctx, const Domain& d,
                        std::size_t k) {
  fpsem::FpEnv env = ctx.fn(kElemVolume);
  return env.sub(d.x[k + 1], d.x[k]);
}

double calc_elem_characteristic_length(fpsem::EvalContext& ctx,
                                       const Domain& d, std::size_t k) {
  fpsem::FpEnv env = ctx.fn(kCharLength);
  const double dx = env.sub(d.x[k + 1], d.x[k]);
  return env.sqrt(env.mul(dx, dx));
}

}  // namespace

Domain build_domain(const LuleshOptions& opts) {
  Domain d;
  const std::size_t n = opts.num_elems;
  d.x.resize(n + 1);
  d.xd.assign(n + 1, 0.0);
  d.xdd.assign(n + 1, 0.0);
  d.fx.assign(n + 1, 0.0);
  d.nodal_mass.assign(n + 1, 0.0);
  d.e.assign(n, 0.0);
  d.p.assign(n, 0.0);
  d.q.assign(n, 0.0);
  d.v.assign(n, 1.0);
  d.volo.resize(n);
  d.delv.assign(n, 0.0);
  d.vdov.assign(n, 0.0);
  d.ss.assign(n, 0.0);
  d.elem_mass.resize(n);
  d.arealg.resize(n);
  d.qq.assign(n, 0.0);
  d.ql.assign(n, 0.0);
  const double h = 1.125 / static_cast<double>(n);
  for (std::size_t i = 0; i <= n; ++i) {
    d.x[i] = h * static_cast<double>(i);
  }
  for (std::size_t k = 0; k < n; ++k) {
    d.volo[k] = h;
    d.elem_mass[k] = h;  // unit initial density
    d.arealg[k] = h;
  }
  for (std::size_t k = 0; k < n; ++k) {
    d.nodal_mass[k] += 0.5 * d.elem_mass[k];
    d.nodal_mass[k + 1] += 0.5 * d.elem_mass[k];
  }
  // Sedov-style energy deposition at the origin element.
  d.e[0] = 3.948746e+1 / static_cast<double>(n);
  return d;
}

void calc_kinematics_for_elems(fpsem::EvalContext& ctx, Domain& d) {
  fpsem::FpEnv env = ctx.fn(kKinematics);
  for (std::size_t k = 0; k < d.numElem(); ++k) {
    const double vol = calc_elem_volume(ctx, d, k);
    const double vnew = env.div(vol, d.volo[k]);
    d.delv[k] = env.sub(vnew, d.v[k]);
    d.arealg[k] = calc_elem_characteristic_length(ctx, d, k);
    // vdov = d(vol)/dt / vol
    const double dvel = env.sub(d.xd[k + 1], d.xd[k]);
    d.vdov[k] = env.div(dvel, vol);
    d.v[k] = vnew;  // provisional; clamped in UpdateVolumesForElems
  }
}

void update_volumes_for_elems(fpsem::EvalContext& ctx, Domain& d) {
  fpsem::FpEnv env = ctx.fn(kUpdateVolumes);
  constexpr double v_cut = 1e-10;
  for (std::size_t k = 0; k < d.numElem(); ++k) {
    // Relative volumes within v_cut of 1.0 snap to exactly 1.0 (a classic
    // LULESH cutoff: perturbations can vanish here).
    const double dist = env.sub(d.v[k], 1.0);
    if (env.sqrt(env.mul(dist, dist)) < v_cut) d.v[k] = 1.0;
  }
}

std::vector<std::string> lulesh_source_files() {
  return {"lulesh/domain.cpp", "lulesh/force.cpp", "lulesh/q.cpp",
          "lulesh/eos.cpp", "lulesh/lagrange.cpp"};
}

}  // namespace flit::lulesh
