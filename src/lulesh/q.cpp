// lulesh/q.cpp -- monotonic artificial viscosity (gradients, limiter
// region selection, Q evaluation).

#include <algorithm>

#include "fpsem/code_model.h"
#include "lulesh/internal.h"

namespace flit::lulesh {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kCalcQ = register_fn({
    .name = "CalcQForElems",
    .file = "lulesh/q.cpp",
});
const fpsem::FunctionId kQGradients = register_fn({
    .name = "CalcMonotonicQGradientsForElems",
    .file = "lulesh/q.cpp",
});
const fpsem::FunctionId kQRegion = register_fn({
    .name = "CalcMonotonicQRegionForElems",
    .file = "lulesh/q.cpp",
    .exported = false,
    .host_symbol = "CalcQForElems",
});

void calc_monotonic_q_gradients(fpsem::EvalContext& ctx, const Domain& d,
                                std::vector<double>& delvm,
                                std::vector<double>& delvp) {
  fpsem::FpEnv env = ctx.fn(kQGradients);
  const std::size_t n = d.numElem();
  delvm.assign(n, 0.0);
  delvp.assign(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    const double dv = env.sub(d.xd[k + 1], d.xd[k]);
    delvm[k] = k > 0 ? env.sub(d.xd[k], d.xd[k - 1]) : dv;
    delvp[k] = k + 1 < n ? env.sub(d.xd[k + 2], d.xd[k + 1]) : dv;
  }
}

void calc_monotonic_q_region(fpsem::EvalContext& ctx, Domain& d,
                             const std::vector<double>& delvm,
                             const std::vector<double>& delvp) {
  fpsem::FpEnv env = ctx.fn(kQRegion);
  constexpr double qlc = 0.5;   // linear coefficient
  constexpr double qqc = 2.0;   // quadratic coefficient
  constexpr double monoq_max_slope = 1.0;
  for (std::size_t k = 0; k < d.numElem(); ++k) {
    if (d.vdov[k] >= 0.0) {  // expansion: no viscosity
      d.q[k] = 0.0;
      d.qq[k] = 0.0;
      d.ql[k] = 0.0;
      continue;
    }
    const double dv = env.sub(d.xd[k + 1], d.xd[k]);
    // Monotonic limiter phi: slope ratio clamped to [0, max_slope]; the
    // min/max selections absorb small perturbations of the neighbours.
    double phim = dv != 0.0 ? env.div(delvm[k], dv) : 1.0;
    double phip = dv != 0.0 ? env.div(delvp[k], dv) : 1.0;
    double phi = env.mul(0.5, env.add(phim, phip));
    phi = std::min(phi, monoq_max_slope);
    phi = std::max(phi, 0.0);

    const double rho = env.div(d.elem_mass[k], env.mul(d.volo[k], d.v[k]));
    const double dvq = env.mul(dv, env.sub(1.0, phi));
    const double lin = env.mul(qlc, env.mul(d.ss[k], env.mul(rho, dvq)));
    const double quad = env.mul(qqc, env.mul(rho, env.mul(dvq, dvq)));
    const double mag = env.sqrt(env.mul(lin, lin));
    // The EOS half-step recomputes Q from these terms (real LULESH keeps
    // qq/ql per element for exactly this purpose).
    d.ql[k] = mag;
    d.qq[k] = quad;
    d.q[k] = env.add(mag, quad);
  }
}

}  // namespace

void calc_q_for_elems(fpsem::EvalContext& ctx, Domain& d) {
  (void)ctx.fn(kCalcQ);  // driver
  std::vector<double> delvm, delvp;
  calc_monotonic_q_gradients(ctx, d, delvm, delvp);
  calc_monotonic_q_region(ctx, d, delvm, delvp);
}

}  // namespace flit::lulesh
