// lulesh/eos.cpp -- material property evaluation: energy update, pressure
// and sound speed with the LULESH cutoff constants (e_cut, p_cut, emin,
// pmin) that clamp small values to exact floors.

#include <algorithm>

#include "fpsem/code_model.h"
#include "lulesh/internal.h"

namespace flit::lulesh {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kApplyMaterial = register_fn({
    .name = "ApplyMaterialPropertiesForElems",
    .file = "lulesh/eos.cpp",
});
const fpsem::FunctionId kEvalEos = register_fn({
    .name = "EvalEOSForElems",
    .file = "lulesh/eos.cpp",
});
const fpsem::FunctionId kCalcEnergy = register_fn({
    .name = "CalcEnergyForElems",
    .file = "lulesh/eos.cpp",
});
const fpsem::FunctionId kCalcPressure = register_fn({
    .name = "CalcPressureForElems",
    .file = "lulesh/eos.cpp",
    .exported = false,
    .host_symbol = "EvalEOSForElems",
});
const fpsem::FunctionId kSoundSpeed = register_fn({
    .name = "CalcSoundSpeedForElems",
    .file = "lulesh/eos.cpp",
});
const fpsem::FunctionId kQHalfStep = register_fn({
    .name = "CalcQHalfStepForElems",
    .file = "lulesh/eos.cpp",
    .exported = false,
    .host_symbol = "CalcEnergyForElems",
});

constexpr double kGamma = 1.6666666666666667;  // 5/3 monatomic gas
constexpr double e_cut = 1e-7;
constexpr double p_cut = 1e-7;
constexpr double q_cut = 1e-7;
constexpr double emin = 1e-9;
constexpr double pmin = 0.0;

/// p = (gamma - 1) * rho0 * e / v (ideal gas in relative-volume form).
double calc_pressure(fpsem::EvalContext& ctx, double e_val, double v_val) {
  fpsem::FpEnv env = ctx.fn(kCalcPressure);
  const double gm1 = env.sub(kGamma, 1.0);
  double p_new = env.div(env.mul(gm1, e_val), v_val);
  if (env.sqrt(env.mul(p_new, p_new)) < p_cut) p_new = 0.0;
  return std::max(p_new, pmin);
}

/// Viscosity re-evaluation for an intermediate state: q = ql + qq scaled
/// by the viscous sound-speed estimate, zero in expansion (the LULESH
/// ssc-based half-step Q).  Internal helper of CalcEnergyForElems.
double calc_q_halfstep(fpsem::EvalContext& ctx, const Domain& d,
                       std::size_t k, double p_state, double e_state) {
  fpsem::FpEnv env = ctx.fn(kQHalfStep);
  if (d.delv[k] > 0.0) return 0.0;  // expansion
  const double rho0 = env.div(d.elem_mass[k], d.volo[k]);
  double ssc = env.div(
      env.mul_add(kGamma, env.div(std::max(e_state, emin), d.v[k]),
                  env.mul(1e-9, p_state)),
      rho0);
  ssc = ssc <= 1e-9 ? 0.3333333e-4 : env.sqrt(ssc);
  return env.mul_add(ssc, d.ql[k], d.qq[k]);
}

void calc_energy(fpsem::EvalContext& ctx, Domain& d, std::size_t k) {
  fpsem::FpEnv env = ctx.fn(kCalcEnergy);
  const double delvc = d.delv[k];
  const double p_old = d.p[k];
  const double q_old = d.q[k];

  // --- predictor: half-step energy and pressure ------------------------
  double e_half = env.mul_add(env.mul(-0.5, delvc),
                              env.add(p_old, q_old), d.e[k]);
  e_half = std::max(e_half, emin);
  const double p_half = calc_pressure(ctx, e_half, d.v[k]);
  const double q_half = calc_q_halfstep(ctx, d, k, p_half, e_half);

  // --- corrector: second-order update -----------------------------------
  const double blend =
      env.sub(env.mul(3.0, env.add(p_old, q_old)),
              env.mul(4.0, env.add(p_half, q_half)));
  double e_new = env.mul_add(env.mul(0.5, delvc), blend, e_half);
  if (env.sqrt(env.mul(e_new, e_new)) < e_cut) e_new = 0.0;
  e_new = std::max(e_new, emin);

  // --- third pass: the classic "sixth" correction -----------------------
  const double p_new1 = calc_pressure(ctx, e_new, d.v[k]);
  const double q_new1 = calc_q_halfstep(ctx, d, k, p_new1, e_new);
  constexpr double sixth = 1.0 / 6.0;
  const double corr =
      env.add(env.sub(env.mul(7.0, env.add(p_old, q_old)),
                      env.mul(8.0, env.add(p_half, q_half))),
              env.add(p_new1, q_new1));
  e_new = env.mul_add(env.mul(-delvc, sixth), corr, e_new);
  if (env.sqrt(env.mul(e_new, e_new)) < e_cut) e_new = 0.0;
  e_new = std::max(e_new, emin);

  d.e[k] = e_new;
  d.p[k] = calc_pressure(ctx, e_new, d.v[k]);
  if (d.delv[k] <= 0.0) {
    d.q[k] = calc_q_halfstep(ctx, d, k, d.p[k], e_new);
    if (env.sqrt(env.mul(d.q[k], d.q[k])) < q_cut) d.q[k] = 0.0;
  }
}

void calc_sound_speed(fpsem::EvalContext& ctx, Domain& d, std::size_t k) {
  fpsem::FpEnv env = ctx.fn(kSoundSpeed);
  const double rho0 = env.div(d.elem_mass[k], d.volo[k]);
  double ss2 = env.div(env.mul(kGamma, std::max(d.p[k], 1e-12)),
                       env.mul(rho0, d.v[k]));
  ss2 = std::max(ss2, 1e-12);
  d.ss[k] = env.sqrt(ss2);
}

}  // namespace

void apply_material_properties(fpsem::EvalContext& ctx, Domain& d) {
  (void)ctx.fn(kApplyMaterial);  // driver
  fpsem::FpEnv env = ctx.fn(kEvalEos);
  for (std::size_t k = 0; k < d.numElem(); ++k) {
    // EvalEOS clamps the relative volume into material bounds first.
    d.v[k] = std::max(env.mul(1.0, d.v[k]), 0.05);
    calc_energy(ctx, d, k);
    calc_sound_speed(ctx, d, k);
  }
}

}  // namespace flit::lulesh
