#pragma once

// Internal interfaces between the mini-LULESH translation units.

#include "lulesh/domain.h"

namespace flit::lulesh {

// force.cpp
void calc_force_for_nodes(fpsem::EvalContext& ctx, Domain& d);
void calc_acceleration_for_nodes(fpsem::EvalContext& ctx, Domain& d);
void calc_velocity_for_nodes(fpsem::EvalContext& ctx, Domain& d);
void calc_position_for_nodes(fpsem::EvalContext& ctx, Domain& d);

// q.cpp
void calc_q_for_elems(fpsem::EvalContext& ctx, Domain& d);

// eos.cpp
void apply_material_properties(fpsem::EvalContext& ctx, Domain& d);

// domain.cpp
void calc_kinematics_for_elems(fpsem::EvalContext& ctx, Domain& d);
void update_volumes_for_elems(fpsem::EvalContext& ctx, Domain& d);

}  // namespace flit::lulesh
