#pragma once

// mini-LULESH: a Livermore-Unstructured-Lagrangian-Explicit-Shock-
// Hydrodynamics-shaped proxy (1D staggered-grid variant) with the classic
// LULESH call tree (LagrangeLeapFrog -> LagrangeNodal / LagrangeElements /
// CalcTimeConstraints) spread over five translation units.  Every
// floating-point instruction runs through the fpsem evaluator, so the
// Sec. 3.5 injection campaign can enumerate and perturb each static site.
//
// Like the original, it is littered with cutoff clamps (u_cut, e_cut,
// v_cut, pmin, emin, dt bounds) and limiter min/max selections -- these
// are precisely the places where an injected perturbation is absorbed and
// becomes "not measurable" (Table 5's benign category).

#include <cstddef>
#include <string>
#include <vector>

#include "core/test_base.h"
#include "fpsem/env.h"

namespace flit::lulesh {

struct LuleshOptions {
  std::size_t num_elems = 32;
  int stop_cycle = 30;
  double stop_time = 1.0;
};

struct Domain {
  // --- node-centered ---
  std::vector<double> x;          ///< positions
  std::vector<double> xd;         ///< velocities
  std::vector<double> xdd;        ///< accelerations
  std::vector<double> fx;         ///< force accumulators
  std::vector<double> nodal_mass;

  // --- element-centered ---
  std::vector<double> e;      ///< internal energy
  std::vector<double> p;      ///< pressure
  std::vector<double> q;      ///< artificial viscosity
  std::vector<double> v;      ///< relative volume
  std::vector<double> volo;   ///< reference volume
  std::vector<double> delv;   ///< volume change this step
  std::vector<double> vdov;   ///< volume derivative over volume
  std::vector<double> ss;     ///< sound speed
  std::vector<double> elem_mass;
  std::vector<double> arealg; ///< characteristic length
  std::vector<double> qq;     ///< quadratic viscosity term (per element)
  std::vector<double> ql;     ///< linear viscosity term (per element)

  double time = 0.0;
  double deltatime = 1e-4;
  double dtcourant = 1e20;
  double dthydro = 1e20;
  int cycle = 0;

  [[nodiscard]] std::size_t numElem() const { return e.size(); }
  [[nodiscard]] std::size_t numNode() const { return x.size(); }
};

/// Sedov-like initial state: energy deposited in the first element.
Domain build_domain(const LuleshOptions& opts);

/// Runs the simulation to stop_cycle/stop_time.
Domain run_lulesh(fpsem::EvalContext& ctx, const LuleshOptions& opts);

/// One whole time step (TimeIncrement + LagrangeLeapFrog).
void time_step(fpsem::EvalContext& ctx, Domain& d);

/// The source files of the mini-LULESH application (Bisect scope).
std::vector<std::string> lulesh_source_files();

/// FLiT test: runs the benchmark and returns the serialized final energy
/// field plus the origin energy (LULESH's traditional check value).
class LuleshTest final : public core::TestBase {
 public:
  explicit LuleshTest(LuleshOptions opts = {}) : opts_(opts) {}

  [[nodiscard]] std::string name() const override { return "LULESH"; }
  [[nodiscard]] std::size_t getInputsPerRun() const override { return 0; }
  [[nodiscard]] std::vector<double> getDefaultInput() const override {
    return {};
  }
  [[nodiscard]] core::TestResult run_impl(
      const std::vector<double>&, fpsem::EvalContext& ctx) const override;
  using core::TestBase::compare;
  [[nodiscard]] long double compare(const std::string& baseline,
                                    const std::string& test) const override;

 private:
  LuleshOptions opts_;
};

// ---- stage entry points (exposed for unit tests) ------------------------

void lagrange_nodal(fpsem::EvalContext& ctx, Domain& d);
void lagrange_elements(fpsem::EvalContext& ctx, Domain& d);
void calc_time_constraints(fpsem::EvalContext& ctx, Domain& d);
void time_increment(fpsem::EvalContext& ctx, Domain& d);

}  // namespace flit::lulesh
