// lulesh/lagrange.cpp -- the LagrangeLeapFrog driver, time-step control
// and the FLiT adapter.

#include <algorithm>
#include <sstream>

#include "fpsem/code_model.h"
#include "linalg/vector.h"
#include "lulesh/internal.h"

namespace flit::lulesh {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kLeapFrog = register_fn({
    .name = "LagrangeLeapFrog",
    .file = "lulesh/lagrange.cpp",
});
const fpsem::FunctionId kTimeIncrement = register_fn({
    .name = "TimeIncrement",
    .file = "lulesh/lagrange.cpp",
});
const fpsem::FunctionId kCourant = register_fn({
    .name = "CalcCourantConstraintForElems",
    .file = "lulesh/lagrange.cpp",
});
const fpsem::FunctionId kHydroConstraint = register_fn({
    .name = "CalcHydroConstraintForElems",
    .file = "lulesh/lagrange.cpp",
    .exported = false,
    .host_symbol = "CalcCourantConstraintForElems",
});

void calc_courant_constraint(fpsem::EvalContext& ctx, Domain& d) {
  fpsem::FpEnv env = ctx.fn(kCourant);
  double dtc = 1e20;
  for (std::size_t k = 0; k < d.numElem(); ++k) {
    const double dtf = env.div(d.arealg[k], std::max(d.ss[k], 1e-12));
    dtc = std::min(dtc, dtf);
  }
  d.dtcourant = env.mul(0.5, dtc);
}

void calc_hydro_constraint(fpsem::EvalContext& ctx, Domain& d) {
  fpsem::FpEnv env = ctx.fn(kHydroConstraint);
  constexpr double dvovmax = 0.1;
  double dth = 1e20;
  for (std::size_t k = 0; k < d.numElem(); ++k) {
    if (d.vdov[k] == 0.0) continue;  // quiescent zone: no constraint
    const double mag = env.sqrt(env.mul(d.vdov[k], d.vdov[k]));
    const double dtf = env.div(dvovmax, env.add(mag, 1e-20));
    dth = std::min(dth, dtf);
  }
  d.dthydro = dth;
}

}  // namespace

void calc_time_constraints(fpsem::EvalContext& ctx, Domain& d) {
  calc_courant_constraint(ctx, d);
  calc_hydro_constraint(ctx, d);
}

void time_increment(fpsem::EvalContext& ctx, Domain& d) {
  fpsem::FpEnv env = ctx.fn(kTimeIncrement);
  constexpr double max_growth = 1.1;
  double newdt = std::min(d.dtcourant, d.dthydro);
  // Growth clamp: dt may grow at most 10% per cycle (absorbs jitter).
  newdt = std::min(newdt, env.mul(max_growth, d.deltatime));
  d.deltatime = newdt;
  d.time = env.add(d.time, newdt);
  ++d.cycle;
}

void lagrange_nodal(fpsem::EvalContext& ctx, Domain& d) {
  calc_force_for_nodes(ctx, d);
  calc_acceleration_for_nodes(ctx, d);
  calc_velocity_for_nodes(ctx, d);
  calc_position_for_nodes(ctx, d);
}

void lagrange_elements(fpsem::EvalContext& ctx, Domain& d) {
  calc_kinematics_for_elems(ctx, d);
  calc_q_for_elems(ctx, d);
  apply_material_properties(ctx, d);
  update_volumes_for_elems(ctx, d);
}

void time_step(fpsem::EvalContext& ctx, Domain& d) {
  (void)ctx.fn(kLeapFrog);  // driver marker
  time_increment(ctx, d);
  lagrange_nodal(ctx, d);
  lagrange_elements(ctx, d);
  calc_time_constraints(ctx, d);
}

Domain run_lulesh(fpsem::EvalContext& ctx, const LuleshOptions& opts) {
  Domain d = build_domain(opts);
  calc_time_constraints(ctx, d);
  while (d.cycle < opts.stop_cycle && d.time < opts.stop_time) {
    time_step(ctx, d);
  }
  return d;
}

core::TestResult LuleshTest::run_impl(const std::vector<double>&,
                                      fpsem::EvalContext& ctx) const {
  const Domain d = run_lulesh(ctx, opts_);
  linalg::Vector out(d.numElem() + 2);
  for (std::size_t k = 0; k < d.numElem(); ++k) out[k] = d.e[k];
  out[d.numElem()] = d.e[0];  // the traditional origin-energy check value
  out[d.numElem() + 1] = d.time;
  return linalg::serialize(out);
}

long double LuleshTest::compare(const std::string& baseline,
                                const std::string& test) const {
  return linalg::l2_string_metric(baseline, test, /*relative=*/true);
}

}  // namespace flit::lulesh
