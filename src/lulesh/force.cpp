// lulesh/force.cpp -- nodal force assembly (stress + hourglass control)
// and the nodal kinematic updates.

#include "fpsem/code_model.h"
#include "lulesh/internal.h"

namespace flit::lulesh {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kCalcForce = register_fn({
    .name = "CalcForceForNodes",
    .file = "lulesh/force.cpp",
});
const fpsem::FunctionId kInitStress = register_fn({
    .name = "InitStressTermsForElems",
    .file = "lulesh/force.cpp",
    .exported = false,
    .host_symbol = "CalcForceForNodes",
});
const fpsem::FunctionId kIntegrateStress = register_fn({
    .name = "IntegrateStressForElems",
    .file = "lulesh/force.cpp",
});
const fpsem::FunctionId kHourglass = register_fn({
    .name = "CalcHourglassControlForElems",
    .file = "lulesh/force.cpp",
});
const fpsem::FunctionId kFBHourglass = register_fn({
    .name = "CalcFBHourglassForceForElems",
    .file = "lulesh/force.cpp",
    .exported = false,
    .host_symbol = "CalcHourglassControlForElems",
});
const fpsem::FunctionId kAccel = register_fn({
    .name = "CalcAccelerationForNodes",
    .file = "lulesh/force.cpp",
});
const fpsem::FunctionId kAccelBC = register_fn({
    .name = "ApplyAccelerationBoundaryConditions",
    .file = "lulesh/force.cpp",
    .exported = false,
    .host_symbol = "CalcAccelerationForNodes",
});
const fpsem::FunctionId kVelocity = register_fn({
    .name = "CalcVelocityForNodes",
    .file = "lulesh/force.cpp",
});
const fpsem::FunctionId kPosition = register_fn({
    .name = "CalcPositionForNodes",
    .file = "lulesh/force.cpp",
});

void init_stress_terms(fpsem::EvalContext& ctx, const Domain& d,
                       std::vector<double>& sig) {
  fpsem::FpEnv env = ctx.fn(kInitStress);
  sig.resize(d.numElem());
  for (std::size_t k = 0; k < d.numElem(); ++k) {
    sig[k] = env.sub(env.mul(-1.0, d.p[k]), d.q[k]);
  }
}

void integrate_stress(fpsem::EvalContext& ctx, Domain& d,
                      const std::vector<double>& sig) {
  fpsem::FpEnv env = ctx.fn(kIntegrateStress);
  // 1D staggered grid: node force = stress divergence.  Element k pulls
  // its left node with +sigma and its right node with -sigma, so a
  // high-pressure element (sigma = -p < 0) pushes both nodes outward.
  for (std::size_t k = 0; k < d.numElem(); ++k) {
    d.fx[k] = env.add(d.fx[k], sig[k]);
    d.fx[k + 1] = env.sub(d.fx[k + 1], sig[k]);
  }
}

void calc_fb_hourglass_force(fpsem::EvalContext& ctx, Domain& d,
                             double hgcoef) {
  fpsem::FpEnv env = ctx.fn(kFBHourglass);
  // Damp the checkerboard velocity mode: f_i += -hg * rho * ss * (laplacian xd).
  for (std::size_t i = 1; i < d.numNode() - 1; ++i) {
    const double lap = env.add(env.sub(d.xd[i - 1], env.mul(2.0, d.xd[i])),
                               d.xd[i + 1]);
    const double rho_ss =
        env.mul(env.div(d.elem_mass[i - 1], d.volo[i - 1]), d.ss[i - 1]);
    d.fx[i] = env.mul_add(env.mul(hgcoef, rho_ss), lap, d.fx[i]);
  }
}

}  // namespace

void calc_force_for_nodes(fpsem::EvalContext& ctx, Domain& d) {
  (void)ctx.fn(kCalcForce);  // driver: delegates to the kernels below
  for (auto& f : d.fx) f = 0.0;
  std::vector<double> sig;
  init_stress_terms(ctx, d, sig);
  integrate_stress(ctx, d, sig);
  {
    fpsem::FpEnv env = ctx.fn(kHourglass);
    const double hgcoef = env.mul(3.0, 0.01);
    calc_fb_hourglass_force(ctx, d, hgcoef);
  }
}

void calc_acceleration_for_nodes(fpsem::EvalContext& ctx, Domain& d) {
  {
    fpsem::FpEnv env = ctx.fn(kAccel);
    for (std::size_t i = 0; i < d.numNode(); ++i) {
      d.xdd[i] = env.div(d.fx[i], d.nodal_mass[i]);
    }
  }
  fpsem::FpEnv env = ctx.fn(kAccelBC);
  d.xdd.front() = env.mul(0.0, d.xdd.front());  // symmetry plane
  d.xdd.back() = 0.0;                           // fixed far wall
}

void calc_velocity_for_nodes(fpsem::EvalContext& ctx, Domain& d) {
  fpsem::FpEnv env = ctx.fn(kVelocity);
  constexpr double u_cut = 1e-7;
  for (std::size_t i = 0; i < d.numNode(); ++i) {
    double xdnew = env.mul_add(d.deltatime, d.xdd[i], d.xd[i]);
    // Velocity cutoff: small velocities snap to zero (another absorber
    // of injected perturbations).
    if (env.sqrt(env.mul(xdnew, xdnew)) < u_cut) xdnew = 0.0;
    d.xd[i] = xdnew;
  }
}

void calc_position_for_nodes(fpsem::EvalContext& ctx, Domain& d) {
  fpsem::FpEnv env = ctx.fn(kPosition);
  for (std::size_t i = 0; i < d.numNode(); ++i) {
    d.x[i] = env.mul_add(d.deltatime, d.xd[i], d.x[i]);
  }
}

}  // namespace flit::lulesh
