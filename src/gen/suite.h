#pragma once

// Installing generated kernels into the study machinery.
//
// A GeneratedKernel is inert data; this header turns it into everything
// the rest of the system understands:
//   * a CodeModel registration (one model file per kernel, the kernel's
//     exported symbol plus an optional internal helper) -- so Bisect,
//     the build system, the linker and the injection framework see the
//     generated program exactly like a hand-written application,
//   * an evaluator that runs the kernel's recipe through FpEnv -- so
//     every fpsem mechanism is reachable by construction, and every
//     enabled hazard statement contributes at least one injection-probed
//     call site,
//   * per-kernel FLiT tests plus one aggregate suite test
//     (kSuiteTestName) whose result is the serialized vector of all
//     kernel outputs -- the test a fleet-scale study sweeps over the
//     compilation space.
//
// Model registration goes through CodeModel::ensure, so re-installing
// the same kernels in one process is a no-op rather than a
// duplicate-name error (a conflicting record still throws).  Test
// registration is stricter: a per-kernel test already present is skipped
// (its name pins (seed, index, recipe), which pins the whole kernel),
// but an aggregate suite name already taken throws -- the suite name
// does not pin the spec, so reuse could silently shadow a different
// generated space.

#include <span>
#include <string>
#include <vector>

#include "core/registry.h"
#include "core/test_base.h"
#include "fpsem/code_model.h"
#include "fpsem/env.h"
#include "gen/generator.h"

namespace flit::gen {

/// A kernel bound to its CodeModel function ids.
struct InstalledKernel {
  GeneratedKernel kernel;
  fpsem::FunctionId fn = fpsem::kInvalidFunction;
  fpsem::FunctionId helper = fpsem::kInvalidFunction;  ///< when has_helper
};

/// Registers every kernel's functions into `model` (idempotently) and
/// returns the bound kernels.  Libm-recipe kernels register with
/// uses_libm set, so the Intel link step's fast-libm substitution applies
/// to them exactly as it does to hand-written transcendental code.
[[nodiscard]] std::vector<InstalledKernel> register_kernels(
    fpsem::CodeModel& model, std::span<const GeneratedKernel> kernels);

/// Runs one kernel's recipe under the context's semantics.
[[nodiscard]] double eval_kernel(const InstalledKernel& k,
                                 fpsem::EvalContext& ctx);

/// One kernel as a FLiT test (long double result, absolute-difference
/// comparison -- any bit difference counts as variability).
class GenKernelTest final : public core::TestBase {
 public:
  explicit GenKernelTest(InstalledKernel k) : k_(std::move(k)) {}

  [[nodiscard]] std::string name() const override { return k_.kernel.name; }
  [[nodiscard]] std::size_t getInputsPerRun() const override { return 0; }
  [[nodiscard]] std::vector<double> getDefaultInput() const override {
    return {};
  }
  [[nodiscard]] core::TestResult run_impl(
      const std::vector<double>& input,
      fpsem::EvalContext& ctx) const override;

 private:
  InstalledKernel k_;
};

/// The whole generated space as one test: the result is the losslessly
/// serialized vector of every kernel's output, compared by relative l2
/// norm (the MFEM study's structured-result idiom).  This is the test the
/// CLI registers for `explore`/`workflow`/`serve` sweeps.
class GenSuiteTest final : public core::TestBase {
 public:
  GenSuiteTest(std::string name, std::vector<InstalledKernel> kernels)
      : name_(std::move(name)), kernels_(std::move(kernels)) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::size_t getInputsPerRun() const override { return 0; }
  [[nodiscard]] std::vector<double> getDefaultInput() const override {
    return {};
  }
  [[nodiscard]] core::TestResult run_impl(
      const std::vector<double>& input,
      fpsem::EvalContext& ctx) const override;
  [[nodiscard]] long double compare(const std::string& baseline,
                                    const std::string& test) const override;
  using core::TestBase::compare;

 private:
  std::string name_;
  std::vector<InstalledKernel> kernels_;
};

/// The registered name of the aggregate suite test.
inline constexpr const char* kSuiteTestName = "GenSuite";

/// A fully installed suite: the spec it came from and the bound kernels.
struct InstalledSuite {
  GenSpec spec;
  std::vector<InstalledKernel> kernels;
};

/// Generates spec's kernels, registers them into `model`, and (when
/// `registry` is non-null) registers one GenKernelTest per kernel plus
/// the aggregate `suite_name` GenSuiteTest.  Per-kernel names already
/// registered are skipped (identical by construction); a `suite_name`
/// already taken throws std::invalid_argument.
InstalledSuite install_suite(const GenSpec& spec, fpsem::CodeModel& model,
                             core::TestRegistry* registry = nullptr,
                             const std::string& suite_name = kSuiteTestName);

}  // namespace flit::gen
