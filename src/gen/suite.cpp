#include "gen/suite.h"

#include <stdexcept>

#include "linalg/vector.h"

namespace flit::gen {

std::vector<InstalledKernel> register_kernels(
    fpsem::CodeModel& model, std::span<const GeneratedKernel> kernels) {
  std::vector<InstalledKernel> out;
  out.reserve(kernels.size());
  for (const GeneratedKernel& k : kernels) {
    InstalledKernel ik;
    ik.kernel = k;
    const bool libm = k.recipe == Recipe::Libm;
    ik.fn = model.ensure({.name = k.fn_name(),
                          .file = k.file,
                          .exported = true,
                          .uses_libm = libm});
    if (k.has_helper) {
      ik.helper = model.ensure({.name = k.helper_name(),
                                .file = k.file,
                                .exported = false,
                                .host_symbol = k.fn_name(),
                                .uses_libm = libm});
    }
    out.push_back(std::move(ik));
  }
  return out;
}

namespace {

// Each recipe evaluator below plants up to kMaxHazards hazard statements,
// every one on its own source line so it is a distinct static injection
// site, and hazard 1 runs under the internal helper's semantics when the
// kernel has one (exercising the indirect-find verdict).  Everything
// outside the hazard statements uses only add/sub/mul -- operations no
// labeled mechanism rewrites -- so a kernel responds to exactly its
// label's mechanism: flipping any other mechanism on leaves its output
// bit-identical.  That property is what makes the ground truth *truth*.

fpsem::FpEnv hazard1_env(const InstalledKernel& ik,
                         fpsem::EvalContext& ctx) {
  return ctx.fn(ik.helper != fpsem::kInvalidFunction ? ik.helper : ik.fn);
}

// Multiply-add chains: contracted to fused operations under
// contract_fma, which drops the intermediate product rounding.
double eval_fma_chain(const InstalledKernel& ik, fpsem::EvalContext& ctx) {
  const GeneratedKernel& k = ik.kernel;
  fpsem::FpEnv env = ctx.fn(ik.fn);
  double acc = k.c0;
  if (k.hazards[0]) {
    for (std::size_t i = 0; i < k.values.size(); ++i) {
      acc = env.mul_add(k.values[i], k.weights[i], acc);
    }
  }
  if (k.hazards[1]) {
    fpsem::FpEnv henv = hazard1_env(ik, ctx);
    acc = henv.mul_add(acc, k.c1, k.c2);
  }
  if (k.hazards[2]) {
    acc = env.mul_add(k.c2, acc, k.values.front());
  }
  if (k.hazards[3]) {
    acc = env.mul_add(k.c1, acc, k.weights.front());
  }
  double t = env.mul(k.c1, k.values.back());
  t = env.add(t, k.c2);
  t = env.sub(t, k.values.front());
  return env.add(acc, env.mul(t, k.c0));
}

// Reductions: a strict build accumulates left to right, a reassociating
// one keeps reassoc_width stride-w lanes; the mixed-magnitude operand
// stream makes the two orders round differently.
double eval_reduce(const InstalledKernel& ik, fpsem::EvalContext& ctx) {
  const GeneratedKernel& k = ik.kernel;
  fpsem::FpEnv env = ctx.fn(ik.fn);
  const std::span<const double> v(k.values);
  const std::span<const double> w(k.weights);
  double acc = k.c0;
  if (k.hazards[0]) {
    acc = env.add(acc, env.sum(v));
  }
  if (k.hazards[1]) {
    fpsem::FpEnv henv = hazard1_env(ik, ctx);
    acc = henv.add(acc, henv.sum(w));
  }
  if (k.hazards[2]) {
    acc = env.add(acc, env.sum(v.first(v.size() / 2)));
  }
  if (k.hazards[3]) {
    acc = env.add(acc, env.sum(w.last(w.size() / 2)));
  }
  double t = env.mul(acc, k.c1);
  t = env.add(t, k.values.front());
  return env.sub(t, env.mul(k.c2, k.weights.back()));
}

// The Laghos `== 0.0` structure: resid = fma(x, x, -x*x) is exactly zero
// without contraction and the product's rounding remainder with it, so
// the branch takes a different arm -- a discrete jump in the output, not
// just an ulp-scale drift.
double eval_branch(const InstalledKernel& ik, fpsem::EvalContext& ctx) {
  const GeneratedKernel& k = ik.kernel;
  fpsem::FpEnv env = ctx.fn(ik.fn);
  double resid = 0.0;
  if (k.hazards[0]) {
    const double sq = env.mul(k.c0, k.c0);
    resid = env.add(resid, env.mul_add(k.c0, k.c0, -sq));
  }
  if (k.hazards[1]) {
    fpsem::FpEnv henv = hazard1_env(ik, ctx);
    const double sq = henv.mul(k.c1, k.c1);
    resid = henv.add(resid, henv.mul_add(k.c1, k.c1, -sq));
  }
  if (k.hazards[2]) {
    const double sq = env.mul(k.values[0], k.values[0]);
    resid = env.add(resid, env.mul_add(k.values[0], k.values[0], -sq));
  }
  if (k.hazards[3]) {
    const double sq = env.mul(k.values[1], k.values[1]);
    resid = env.add(resid, env.mul_add(k.values[1], k.values[1], -sq));
  }
  double out = env.mul(k.c2, k.values.back());
  if (resid == 0.0) {
    out = env.add(out, k.c0);
  } else {
    out = env.sub(out, env.mul(k.c1, 4096.0));
  }
  return env.add(out, env.mul(resid, k.c0));
}

// Transcendental calls: a fast-libm binding routes them through the
// float-precision library.  The libm calls themselves are not probed
// sites, so each hazard wraps its call in an add that is.
double eval_libm(const InstalledKernel& ik, fpsem::EvalContext& ctx) {
  const GeneratedKernel& k = ik.kernel;
  fpsem::FpEnv env = ctx.fn(ik.fn);
  double acc = k.c0;
  if (k.hazards[0]) {
    acc = env.add(acc, env.sin(k.values[0]));
  }
  if (k.hazards[1]) {
    fpsem::FpEnv henv = hazard1_env(ik, ctx);
    acc = henv.add(acc, henv.exp(k.weights[0]));
  }
  if (k.hazards[2]) {
    acc = env.add(acc, env.log(k.values[1]));
  }
  if (k.hazards[3]) {
    acc = env.add(acc, env.cos(k.values[2]));
  }
  double t = env.mul(acc, k.c1);
  return env.add(t, env.sub(k.values[3], k.c2));
}

// Subnormal products: each hazard multiplies a ~1e-154 value by a
// ~1e-160 weight, landing in the subnormal range; an FTZ build flushes
// the product to zero.  The two-stage rescale (1e280 then 1e33) lifts a
// surviving product to O(1) -- one stage would leave it at ~1e-35, which
// the final accumulation into an O(1) value rounds away entirely.
double eval_subnormal(const InstalledKernel& ik, fpsem::EvalContext& ctx) {
  const GeneratedKernel& k = ik.kernel;
  fpsem::FpEnv env = ctx.fn(ik.fn);
  constexpr double kLift = 1.0e33;
  double acc = k.c0;
  if (k.hazards[0]) {
    const double p = env.mul(k.values[0], k.weights[0]);
    acc = env.add(acc, env.mul(env.mul(p, k.c1), kLift));
  }
  if (k.hazards[1]) {
    fpsem::FpEnv henv = hazard1_env(ik, ctx);
    const double p = henv.mul(k.values[1], k.weights[1]);
    acc = henv.add(acc, henv.mul(henv.mul(p, k.c1), kLift));
  }
  if (k.hazards[2]) {
    const double p = env.mul(k.values[2], k.weights[2]);
    acc = env.add(acc, env.mul(env.mul(p, k.c1), kLift));
  }
  if (k.hazards[3]) {
    const double p = env.mul(k.values[3], k.weights[3]);
    acc = env.add(acc, env.mul(env.mul(p, k.c1), kLift));
  }
  return env.add(acc, env.mul(k.c2, 0.5));
}

// Value-unsafe rewrites: div becomes multiply-by-reciprocal, sqrt a
// Newton-refined reciprocal-sqrt seed.  Operands are positive and
// bounded away from zero, so only the rewrite moves the result.  A
// single a/b rounds identically to a*(1.0/b) for most operand pairs, so
// each div hazard loops its one call site over every embedded operand
// pair -- still one static site, but the odds that *no* quotient moves
// vanish with the operand count.
double eval_unsafe(const InstalledKernel& ik, fpsem::EvalContext& ctx) {
  const GeneratedKernel& k = ik.kernel;
  fpsem::FpEnv env = ctx.fn(ik.fn);
  const std::size_t n = k.values.size();
  double acc = k.c0;
  if (k.hazards[0]) {
    for (std::size_t i = 0; i < n; ++i) {
      acc = env.add(acc, env.div(k.values[i], k.weights[i]));
    }
  }
  if (k.hazards[1]) {
    fpsem::FpEnv henv = hazard1_env(ik, ctx);
    for (std::size_t i = 0; i < n; ++i) {
      acc = henv.add(acc, henv.div(k.weights[i], k.values[i]));
    }
  }
  if (k.hazards[2]) {
    acc = env.add(acc, env.sqrt(k.values[2]));
  }
  if (k.hazards[3]) {
    for (std::size_t i = 0; i < n; ++i) {
      acc = env.add(acc, env.div(k.weights[i], k.c1));
    }
  }
  double t = env.mul(acc, k.c2);
  return env.sub(env.add(t, k.values[3]), k.weights[2]);
}

}  // namespace

double eval_kernel(const InstalledKernel& k, fpsem::EvalContext& ctx) {
  switch (k.kernel.recipe) {
    case Recipe::FmaChain: return eval_fma_chain(k, ctx);
    case Recipe::Reduce: return eval_reduce(k, ctx);
    case Recipe::Branch: return eval_branch(k, ctx);
    case Recipe::Libm: return eval_libm(k, ctx);
    case Recipe::Subnormal: return eval_subnormal(k, ctx);
    case Recipe::Unsafe: return eval_unsafe(k, ctx);
  }
  throw std::invalid_argument("unknown recipe");
}

core::TestResult GenKernelTest::run_impl(const std::vector<double>& input,
                                         fpsem::EvalContext& ctx) const {
  (void)input;
  return static_cast<long double>(eval_kernel(k_, ctx));
}

core::TestResult GenSuiteTest::run_impl(const std::vector<double>& input,
                                        fpsem::EvalContext& ctx) const {
  (void)input;
  linalg::Vector out(kernels_.size());
  for (std::size_t i = 0; i < kernels_.size(); ++i) {
    out[i] = eval_kernel(kernels_[i], ctx);
  }
  return linalg::serialize(out);
}

long double GenSuiteTest::compare(const std::string& baseline,
                                  const std::string& test) const {
  return linalg::l2_string_metric(baseline, test, /*relative=*/true);
}

namespace detail {

// Generation-time label validation (declared in generator.cpp): the
// kernel must move under its own mechanism and hold bit-identical under
// every other, each compared against the strict baseline.  Lives here
// because it needs the recipe evaluators.
bool responds_only_to_own_mechanism(const GeneratedKernel& k) {
  fpsem::CodeModel model;
  const std::vector<InstalledKernel> installed =
      register_kernels(model, std::span(&k, 1));
  const InstalledKernel& ik = installed.front();

  const auto eval_under = [&](const fpsem::FpSemantics& sem) {
    fpsem::EvalContext ctx(fpsem::SemanticsMap::uniform(
        model.function_count(), {.sem = sem}));
    return eval_kernel(ik, ctx);
  };

  const double baseline = eval_under({});
  const Mechanism own = mechanism_of(k.recipe);
  for (const Mechanism m :
       {Mechanism::FmaContraction, Mechanism::Reassociation,
        Mechanism::FastLibm, Mechanism::SubnormalFlush,
        Mechanism::UnsafeMath}) {
    fpsem::FpSemantics sem;
    switch (m) {
      case Mechanism::FmaContraction: sem.contract_fma = true; break;
      case Mechanism::Reassociation: sem.reassoc_width = 4; break;
      case Mechanism::FastLibm: sem.fast_libm = true; break;
      case Mechanism::SubnormalFlush: sem.flush_subnormals = true; break;
      case Mechanism::UnsafeMath: sem.unsafe_math = true; break;
    }
    const bool moved = eval_under(sem) != baseline;
    if (moved != (m == own)) return false;
  }
  return true;
}

}  // namespace detail

InstalledSuite install_suite(const GenSpec& spec, fpsem::CodeModel& model,
                             core::TestRegistry* registry,
                             const std::string& suite_name) {
  InstalledSuite suite;
  suite.spec = spec;
  const std::vector<GeneratedKernel> kernels = generate(spec);
  suite.kernels = register_kernels(model, kernels);
  if (registry != nullptr) {
    for (const InstalledKernel& ik : suite.kernels) {
      if (registry->contains(ik.kernel.name)) continue;
      registry->add(ik.kernel.name, [ik] {
        return std::unique_ptr<core::TestBase>(
            std::make_unique<GenKernelTest>(ik));
      });
    }
    if (registry->contains(suite_name)) {
      throw std::invalid_argument(
          "a test named '" + suite_name +
          "' is already registered; a generated suite cannot shadow it");
    }
    const std::vector<InstalledKernel>& ks = suite.kernels;
    const std::string name = suite_name;
    registry->add(suite_name, [name, ks] {
      return std::unique_ptr<core::TestBase>(
          std::make_unique<GenSuiteTest>(name, ks));
    });
  }
  return suite;
}

}  // namespace flit::gen
