#pragma once

// Label-scored dedup: the generated corpus (generator.h) knows, by
// construction, which kernels share a variability mechanism, so a blame
// clustering over that corpus can be scored against planted truth --
// kernels with the same GroundTruthLabel::mechanism must land in the
// same blame cluster (co-cluster), kernels with different mechanisms
// must not.  The scorer is pairwise, like the Table-5 harness's
// precision/recall but over kernel pairs:
//   precision = same-mechanism fraction of co-clustered pairs,
//   recall    = co-clustered fraction of same-mechanism pairs.
// It is deliberately generic over a signature function so src/gen stays
// independent of the blame campaign: the caller maps each label to its
// cluster-membership signature (e.g. the sorted blame-site ids whose
// clusters contain the kernel's file), and two kernels co-cluster iff
// their signatures are identical strings.

#include <cstddef>
#include <functional>
#include <span>
#include <string>

#include "gen/generator.h"

namespace flit::gen {

struct DedupScore {
  std::size_t kernels = 0;
  std::size_t same_mechanism_pairs = 0;  ///< ground truth positives
  std::size_t co_clustered_pairs = 0;    ///< predicted positives
  std::size_t true_pairs = 0;            ///< both

  /// 1.0 when there are no predicted positives (nothing wrongly merged).
  [[nodiscard]] double precision() const;
  /// 1.0 when there are no ground-truth positives (nothing to recall).
  [[nodiscard]] double recall() const;
};

[[nodiscard]] DedupScore score_dedup(
    std::span<const GroundTruthLabel> labels,
    const std::function<std::string(const GroundTruthLabel&)>& signature);

}  // namespace flit::gen
