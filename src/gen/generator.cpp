#include "gen/generator.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace flit::gen {

namespace detail {
// Defined in suite.cpp (where the recipe evaluators live): true when the
// kernel's output moves under its labeled mechanism and stays
// bit-identical under every other labeled mechanism.
bool responds_only_to_own_mechanism(const GeneratedKernel& k);
}  // namespace detail

namespace {

/// splitmix64: the per-kernel deterministic stream.  Chosen over
/// std::mt19937_64 because its output for a given seed is pinned by the
/// reference constants below, not by a library's distribution details --
/// the byte-identity contract must survive standard-library upgrades.
struct Splitmix {
  std::uint64_t s;

  std::uint64_t next() {
    s += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1) with 53 random mantissa bits.
  double unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  double uniform(double lo, double hi) { return lo + (hi - lo) * unit(); }

  std::uint32_t below(std::uint32_t n) {
    return static_cast<std::uint32_t>(next() % n);
  }

  bool coin() { return (next() & 1) != 0; }

  double sign() { return coin() ? 1.0 : -1.0; }
};

Splitmix stream_for(std::uint64_t seed, std::size_t index, Recipe r) {
  Splitmix rng{(seed ^ 0x8000000080000000ULL) * 0x2545F4914F6CDD1DULL +
               static_cast<std::uint64_t>(index) * 0x9E3779B97F4A7C15ULL +
               static_cast<std::uint64_t>(r)};
  (void)rng.next();  // discard the correlated first draw
  return rng;
}

const char* kRecipeNames[] = {"fma",  "reduce",    "branch",
                              "libm", "subnormal", "unsafe"};
const char* kMechanismNames[] = {"fma-contraction", "reassociation",
                                 "fast-libm", "subnormal-flush",
                                 "unsafe-math"};

std::uint64_t parse_u64_strict(const std::string& s, const char* what) {
  if (s.empty()) throw std::invalid_argument(std::string(what) + ": empty");
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument(std::string(what) +
                                  ": expected an unsigned integer, got '" +
                                  s + "'");
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

}  // namespace

const char* to_string(Recipe r) {
  return kRecipeNames[static_cast<std::size_t>(r)];
}

const char* to_string(Mechanism m) {
  return kMechanismNames[static_cast<std::size_t>(m)];
}

std::optional<Recipe> recipe_from(const std::string& name) {
  for (std::size_t i = 0; i < std::size(kRecipeNames); ++i) {
    if (name == kRecipeNames[i]) return static_cast<Recipe>(i);
  }
  return std::nullopt;
}

std::optional<Mechanism> mechanism_from(const std::string& name) {
  for (std::size_t i = 0; i < std::size(kMechanismNames); ++i) {
    if (name == kMechanismNames[i]) return static_cast<Mechanism>(i);
  }
  return std::nullopt;
}

Mechanism mechanism_of(Recipe r) {
  switch (r) {
    case Recipe::FmaChain: return Mechanism::FmaContraction;
    case Recipe::Reduce: return Mechanism::Reassociation;
    case Recipe::Branch: return Mechanism::FmaContraction;
    case Recipe::Libm: return Mechanism::FastLibm;
    case Recipe::Subnormal: return Mechanism::SubnormalFlush;
    case Recipe::Unsafe: return Mechanism::UnsafeMath;
  }
  throw std::invalid_argument("unknown recipe");
}

const std::vector<Recipe>& all_recipes() {
  static const std::vector<Recipe> all = {
      Recipe::FmaChain, Recipe::Reduce,    Recipe::Branch,
      Recipe::Libm,     Recipe::Subnormal, Recipe::Unsafe};
  return all;
}

std::vector<Recipe> recipes_from_csv(const std::string& csv) {
  std::vector<Recipe> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string name =
        csv.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    const auto r = recipe_from(name);
    if (!r.has_value()) {
      throw std::invalid_argument(
          "unknown recipe '" + name +
          "' (recipes: fma, reduce, branch, libm, subnormal, unsafe)");
    }
    for (Recipe seen : out) {
      if (seen == *r) {
        throw std::invalid_argument("duplicate recipe '" + name + "'");
      }
    }
    out.push_back(*r);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

void GenSpec::validate() const {
  if (seed == 0) {
    throw std::invalid_argument("gen: seed must be positive");
  }
  if (count == 0) {
    throw std::invalid_argument("gen: count must be positive");
  }
  for (std::size_t i = 0; i < recipes.size(); ++i) {
    for (std::size_t j = i + 1; j < recipes.size(); ++j) {
      if (recipes[i] == recipes[j]) {
        throw std::invalid_argument(std::string("gen: duplicate recipe '") +
                                    to_string(recipes[i]) + "'");
      }
    }
  }
}

const std::vector<Recipe>& GenSpec::effective_recipes() const {
  return recipes.empty() ? all_recipes() : recipes;
}

int GeneratedKernel::hazard_count() const {
  int n = 0;
  for (bool h : hazards) n += h ? 1 : 0;
  return n;
}

GroundTruthLabel GeneratedKernel::label() const {
  GroundTruthLabel l;
  l.kernel = name;
  l.recipe = recipe;
  l.mechanism = mechanism_of(recipe);
  l.hazard_sites = hazard_count();
  l.seed = seed;
  l.index = index;
  l.file = file;
  l.expected_symbol = name;  // the kernel's own exported symbol
  return l;
}

std::string GroundTruthLabel::tsv_line() const {
  char buf[64];
  std::string out = kernel;
  out += '\t';
  out += to_string(recipe);
  out += '\t';
  out += to_string(mechanism);
  std::snprintf(buf, sizeof buf, "\t%d\t%llu\t%zu\t", hazard_sites,
                static_cast<unsigned long long>(seed), index);
  out += buf;
  out += file;
  out += '\t';
  out += expected_symbol;
  return out;
}

GroundTruthLabel GroundTruthLabel::from_tsv_line(const std::string& line) {
  const std::vector<std::string> cols = split_tabs(line);
  if (cols.size() != 8) {
    throw std::invalid_argument("label line: expected 8 tab-separated "
                                "columns, got " +
                                std::to_string(cols.size()));
  }
  GroundTruthLabel l;
  l.kernel = cols[0];
  const auto r = recipe_from(cols[1]);
  if (!r.has_value()) {
    throw std::invalid_argument("label line: unknown recipe '" + cols[1] +
                                "'");
  }
  l.recipe = *r;
  const auto m = mechanism_from(cols[2]);
  if (!m.has_value()) {
    throw std::invalid_argument("label line: unknown mechanism '" + cols[2] +
                                "'");
  }
  l.mechanism = *m;
  l.hazard_sites =
      static_cast<int>(parse_u64_strict(cols[3], "label hazard_sites"));
  l.seed = parse_u64_strict(cols[4], "label seed");
  l.index = static_cast<std::size_t>(parse_u64_strict(cols[5], "label index"));
  l.file = cols[6];
  l.expected_symbol = cols[7];
  return l;
}

namespace {

/// Recipe-specific operand embedding.  Ranges are chosen so the planted
/// hazard responds to its own mechanism and *only* its own mechanism:
/// e.g. libm operands stay in log's domain, unsafe divisors stay well
/// away from zero, and every stream avoids magnitudes that could wander
/// into the subnormal range outside the subnormal recipe.
void embed_inputs(GeneratedKernel& k, Splitmix& rng) {
  const std::size_t n = 8 + rng.below(17);  // 8..24 operands
  k.values.resize(n);
  k.weights.resize(n);
  switch (k.recipe) {
    case Recipe::FmaChain:
    case Recipe::Branch:
      for (std::size_t i = 0; i < n; ++i) {
        k.values[i] = rng.sign() * rng.uniform(0.5, 2.0);
        k.weights[i] = rng.sign() * rng.uniform(0.5, 2.0);
      }
      k.c0 = rng.uniform(1.0, 2.0);
      k.c1 = rng.uniform(1.0, 2.0);
      k.c2 = rng.uniform(0.5, 1.5);
      break;
    case Recipe::Reduce:
      // Mixed magnitudes: lane-parallel partial sums round differently
      // from a left-to-right accumulation only when addends differ in
      // scale enough to shift each other's rounding.  The spread is kept
      // moderate (10^+-4) on purpose: a wider one lets a single addend
      // dominate far past the ulp of the total, and then every smaller
      // term is absorbed identically in *both* association orders.
      for (std::size_t i = 0; i < n; ++i) {
        const double mag = std::pow(10.0, rng.uniform(-4.0, 4.0));
        k.values[i] = rng.sign() * rng.uniform(0.5, 1.0) * mag;
        const double mag2 = std::pow(10.0, rng.uniform(-4.0, 4.0));
        k.weights[i] = rng.sign() * rng.uniform(0.5, 1.0) * mag2;
      }
      k.c0 = rng.uniform(1.0, 2.0);
      k.c1 = rng.uniform(0.5, 1.5);
      k.c2 = rng.uniform(0.5, 1.5);
      break;
    case Recipe::Libm:
      // Positive and O(1): inside log's domain and exp's no-overflow
      // range, and float-rounded libm results always differ measurably.
      for (std::size_t i = 0; i < n; ++i) {
        k.values[i] = rng.uniform(0.1, 3.0);
        k.weights[i] = rng.sign() * rng.uniform(0.1, 2.0);
      }
      k.c0 = rng.uniform(1.0, 2.0);
      k.c1 = rng.uniform(0.5, 1.5);
      k.c2 = rng.uniform(0.5, 1.5);
      break;
    case Recipe::Subnormal:
      // Factor pairs whose product's exponent lands in [-320, -310]:
      // inside the subnormal range (< 2^-1022 ~ 2.2e-308) but far above
      // the underflow-to-zero floor (4.9e-324), so an FTZ build flushes a
      // value a precise build keeps.
      for (std::size_t i = 0; i < n; ++i) {
        k.values[i] = rng.sign() * std::pow(10.0, -(153.0 + 2.5 * rng.unit()));
        k.weights[i] = rng.sign() * std::pow(10.0, -(159.0 + 2.5 * rng.unit()));
      }
      k.c0 = rng.uniform(1.0, 2.0);
      k.c1 = 1.0e280;  // rescales surviving products to ~1e-35
      k.c2 = rng.uniform(0.5, 1.5);
      break;
    case Recipe::Unsafe:
      // Positive, bounded away from zero: sqrt stays real, divisors
      // cannot blow the quotient up, and a random-mantissa divisor is
      // never a power of two (where a*(1/b) would be exact).
      for (std::size_t i = 0; i < n; ++i) {
        k.values[i] = rng.uniform(0.5, 3.0);
        k.weights[i] = rng.uniform(0.5, 3.0);
      }
      k.c0 = rng.uniform(1.0, 2.0);
      k.c1 = rng.uniform(1.5, 2.5);
      k.c2 = rng.uniform(0.5, 1.5);
      break;
  }
}

}  // namespace

std::vector<GeneratedKernel> generate(const GenSpec& spec) {
  spec.validate();
  const std::vector<Recipe>& recipes = spec.effective_recipes();
  std::vector<GeneratedKernel> out;
  out.reserve(spec.count);
  for (std::size_t i = 0; i < spec.count; ++i) {
    GeneratedKernel k;
    k.recipe = recipes[i % recipes.size()];
    k.seed = spec.seed;
    k.index = i;
    char buf[96];
    std::snprintf(buf, sizeof buf, "Gen_s%llu_k%04zu_%s",
                  static_cast<unsigned long long>(spec.seed), i,
                  to_string(k.recipe));
    k.name = buf;
    k.file = "gen/" + k.name + ".cpp";

    Splitmix rng = stream_for(spec.seed, i, k.recipe);
    for (std::size_t h = 0; h < kMaxHazards; ++h) k.hazards[h] = rng.coin();
    if (k.hazard_count() == 0) k.hazards[0] = true;
    k.has_helper = k.hazards[1];

    // The label is a *guarantee*, not a likelihood: a single multiply-add
    // or division hazard rounds identically under its mechanism for a
    // sizable fraction of random operands (and wide-magnitude reductions
    // can absorb a lane permutation entirely).  So the generator
    // validates every embedding against the label and re-rolls the
    // operand stream -- deterministically, the PRNG just keeps drawing --
    // until the kernel responds to exactly its labeled mechanism.
    embed_inputs(k, rng);
    for (int attempt = 0; !detail::responds_only_to_own_mechanism(k);) {
      if (++attempt > 64) {
        throw std::logic_error("gen: no responsive embedding for " + k.name +
                               " after 64 draws");
      }
      embed_inputs(k, rng);
    }
    out.push_back(std::move(k));
  }
  return out;
}

std::string describe_tsv(std::span<const GeneratedKernel> kernels) {
  std::string out =
      "# kernel\trecipe\tmechanism\thazard_sites\tseed\tindex\tfile\t"
      "expected_symbol\n";
  for (const GeneratedKernel& k : kernels) {
    out += k.label().tsv_line();
    out += '\n';
  }
  return out;
}

std::string emit_text(const GeneratedKernel& k) {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "// %s -- recipe %s, mechanism %s, %d hazard site(s)%s\n",
                k.name.c_str(), to_string(k.recipe),
                to_string(mechanism_of(k.recipe)), k.hazard_count(),
                k.has_helper ? ", hazard 1 in internal helper" : "");
  out += buf;
  std::snprintf(buf, sizeof buf, "// model file: %s\n", k.file.c_str());
  out += buf;
  out += "double " + k.fn_name() + "(EvalContext& ctx) {\n";
  std::snprintf(buf, sizeof buf, "  // c0=%.17g c1=%.17g c2=%.17g\n", k.c0,
                k.c1, k.c2);
  out += buf;
  for (std::size_t h = 0; h < kMaxHazards; ++h) {
    std::snprintf(buf, sizeof buf, "  // hazard %zu: %s\n", h,
                  k.hazards[h] ? (h == 1 && k.has_helper
                                      ? "planted (in helper)"
                                      : "planted")
                               : "absent");
    out += buf;
  }
  out += "  // values:";
  for (double v : k.values) {
    std::snprintf(buf, sizeof buf, " %.17g", v);
    out += buf;
  }
  out += "\n  // weights:";
  for (double w : k.weights) {
    std::snprintf(buf, sizeof buf, " %.17g", w);
    out += buf;
  }
  out += "\n}\n";
  return out;
}

}  // namespace flit::gen
