#include "gen/dedup.h"

#include <vector>

namespace flit::gen {

double DedupScore::precision() const {
  if (co_clustered_pairs == 0) return 1.0;
  return static_cast<double>(true_pairs) /
         static_cast<double>(co_clustered_pairs);
}

double DedupScore::recall() const {
  if (same_mechanism_pairs == 0) return 1.0;
  return static_cast<double>(true_pairs) /
         static_cast<double>(same_mechanism_pairs);
}

DedupScore score_dedup(
    std::span<const GroundTruthLabel> labels,
    const std::function<std::string(const GroundTruthLabel&)>& signature) {
  DedupScore score;
  score.kernels = labels.size();
  std::vector<std::string> sigs;
  sigs.reserve(labels.size());
  for (const GroundTruthLabel& l : labels) sigs.push_back(signature(l));
  for (std::size_t i = 0; i < labels.size(); ++i) {
    for (std::size_t j = i + 1; j < labels.size(); ++j) {
      const bool same_mechanism =
          labels[i].mechanism == labels[j].mechanism;
      const bool co_clustered = sigs[i] == sigs[j];
      if (same_mechanism) ++score.same_mechanism_pairs;
      if (co_clustered) ++score.co_clustered_pairs;
      if (same_mechanism && co_clustered) ++score.true_pairs;
    }
  }
  return score;
}

}  // namespace flit::gen
