#pragma once

// The synthetic-kernel generator (the LLM4FP-style frontier of the
// ROADMAP): a deterministic, seed-driven source of floating-point kernels
// whose variability mechanism is known *by construction*.
//
// The paper's evidence base is three fixed applications; its scenario
// diversity is capped by whatever hazards those kernels happen to
// contain.  A generated kernel inverts that: each one is built from a
// *recipe* that plants a known hazard -- an FMA-contractable multiply-add
// chain, a reduction loop whose association order a vectorizer may
// reshape, a branch on an exactly-zero residual (the Laghos `== 0.0`
// bug), a transcendental call a fast-libm link step may substitute, a
// product landing in the subnormal range an FTZ build flushes, or a
// division/square-root a value-unsafe rewrite perturbs -- and carries a
// machine-readable ground-truth label saying which fpsem mechanism its
// hazard sites respond to and how many there are.  Campaigns can then be
// *scored*: a bisect report either names the planted site or it does not.
//
// Determinism is the whole contract.  Kernel names, input embeddings,
// hazard placement and labels are a pure function of (seed, index,
// recipe): the same --gen-seed/--gen-count/--gen-recipes always
// reproduces a byte-identical suite, on any shard of any fleet.

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace flit::gen {

/// The kernel shapes the generator knows how to emit.
enum class Recipe : std::uint8_t {
  FmaChain,   ///< multiply-add chains a contracting compiler fuses
  Reduce,     ///< reduction loops with sequential-vs-lane association
  Branch,     ///< branch on an exactly-zero FMA residual (Laghos-style)
  Libm,       ///< transcendental calls a fast-libm link substitutes
  Subnormal,  ///< products in the subnormal range an FTZ build flushes
  Unsafe,     ///< div/sqrt a value-unsafe rewrite approximates
};

/// The fpsem mechanism a recipe's hazard sites respond to.
enum class Mechanism : std::uint8_t {
  FmaContraction,
  Reassociation,
  FastLibm,
  SubnormalFlush,
  UnsafeMath,
};

[[nodiscard]] const char* to_string(Recipe r);
[[nodiscard]] const char* to_string(Mechanism m);
[[nodiscard]] std::optional<Recipe> recipe_from(const std::string& name);
[[nodiscard]] std::optional<Mechanism> mechanism_from(const std::string& name);

/// The mechanism each recipe's hazards are labeled with.  Branch maps to
/// FmaContraction: the residual that decides the branch is exactly zero
/// without contraction and a one-ulp rounding remainder with it.
[[nodiscard]] Mechanism mechanism_of(Recipe r);

/// Every recipe, in declaration order (the default --gen-recipes set).
[[nodiscard]] const std::vector<Recipe>& all_recipes();

/// Strict parse of a comma-separated recipe list ("fma,reduce,...").
/// Throws std::invalid_argument for an unknown name, an empty element, or
/// a duplicate -- the --gen-recipes contract.
[[nodiscard]] std::vector<Recipe> recipes_from_csv(const std::string& csv);

/// Hazard statements a kernel can plant (each on its own source line, so
/// each enabled hazard is at least one distinct injection site).
inline constexpr std::size_t kMaxHazards = 4;

/// What to generate.  Validated by validate(): seed and count must be
/// positive, the recipe list (empty = all) must be duplicate-free.
struct GenSpec {
  std::uint64_t seed = 1;
  std::size_t count = 16;
  std::vector<Recipe> recipes;  ///< empty = all_recipes()

  void validate() const;  ///< throws std::invalid_argument

  /// The recipe rotation actually used (recipes, or all when empty).
  [[nodiscard]] const std::vector<Recipe>& effective_recipes() const;

  friend bool operator==(const GenSpec&, const GenSpec&) = default;
};

/// The machine-readable ground truth one kernel carries.
struct GroundTruthLabel {
  std::string kernel;           ///< test / function name
  Recipe recipe = Recipe::FmaChain;
  Mechanism mechanism = Mechanism::FmaContraction;
  int hazard_sites = 0;         ///< enabled hazard statements
  std::uint64_t seed = 0;
  std::size_t index = 0;
  std::string file;             ///< model file the kernel registers into
  std::string expected_symbol;  ///< symbol Bisect should blame

  /// One tab-separated line (no newline); the --describe row format.
  [[nodiscard]] std::string tsv_line() const;

  /// Strict inverse of tsv_line(); throws std::invalid_argument on a
  /// wrong column count, unknown enum name, or malformed number.
  [[nodiscard]] static GroundTruthLabel from_tsv_line(
      const std::string& line);

  friend bool operator==(const GroundTruthLabel&,
                         const GroundTruthLabel&) = default;
};

/// One generated kernel: identity, hazard placement, and the embedded
/// inputs its evaluator consumes.  Everything here is derived from
/// (seed, index, recipe) alone.
struct GeneratedKernel {
  std::string name;  ///< "Gen_s<seed>_k<index>_<recipe>"
  std::string file;  ///< "gen/<name>.cpp" (one kernel per model file)
  Recipe recipe = Recipe::FmaChain;
  std::uint64_t seed = 0;
  std::size_t index = 0;

  /// Which of the kMaxHazards optional hazard statements are planted
  /// (at least one always is).
  std::array<bool, kMaxHazards> hazards{};

  /// Hazard statement 1, when planted, runs inside an internal helper
  /// function (host symbol = the kernel), so campaigns exercise the
  /// indirect-find verdict too.
  bool has_helper = false;

  std::vector<double> values;   ///< recipe-dependent operand stream
  std::vector<double> weights;  ///< second operand stream
  double c0 = 0.0, c1 = 0.0, c2 = 0.0;  ///< scalar coefficients

  [[nodiscard]] int hazard_count() const;
  [[nodiscard]] std::string fn_name() const { return name; }
  [[nodiscard]] std::string helper_name() const {
    return name + "::inner";
  }
  [[nodiscard]] GroundTruthLabel label() const;

  friend bool operator==(const GeneratedKernel&,
                         const GeneratedKernel&) = default;
};

/// Generates spec.count kernels, rotating through the effective recipes
/// (kernel i uses recipe i % |recipes|).  Pure function of the spec.
[[nodiscard]] std::vector<GeneratedKernel> generate(const GenSpec& spec);

/// The --describe report: a '#'-headed TSV of every kernel's ground-truth
/// label, one tsv_line() per kernel.
[[nodiscard]] std::string describe_tsv(
    std::span<const GeneratedKernel> kernels);

/// The --emit report: a human-readable pseudo-source rendering of one
/// kernel (recipe, hazard placement, embedded inputs).
[[nodiscard]] std::string emit_text(const GeneratedKernel& k);

}  // namespace flit::gen
