#include "gen/harness.h"

#include "gen/suite.h"

namespace flit::gen {

GenCampaignResult run_injection_campaign(
    std::span<const GeneratedKernel> kernels,
    const toolchain::Compilation& build_comp,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  GenCampaignResult res;
  res.per_mechanism.resize(5);
  for (std::size_t m = 0; m < res.per_mechanism.size(); ++m) {
    res.per_mechanism[m].mechanism = static_cast<Mechanism>(m);
  }

  for (std::size_t done = 0; done < kernels.size(); ++done) {
    const GeneratedKernel& k = kernels[done];

    // A fresh one-file model per kernel: the campaign's whole-program
    // builds and bisect searches then touch exactly this kernel, so the
    // cost per experiment is independent of the corpus size.
    fpsem::CodeModel model;
    const std::vector<InstalledKernel> installed =
        register_kernels(model, std::span(&k, 1));
    const GenKernelTest test(installed.front());

    core::InjectionCampaign campaign(&model, &test, build_comp);
    campaign.set_scope({k.file});
    const std::vector<core::InjectionReport> reports = campaign.run_all();
    const core::InjectionCampaign::Summary summary =
        core::InjectionCampaign::summarize(reports);

    MechanismScore& pool =
        res.per_mechanism[static_cast<std::size_t>(mechanism_of(k.recipe))];
    pool.kernels += 1;
    pool.hazard_sites += static_cast<std::size_t>(k.hazard_count());
    pool.summary += summary;

    res.total += summary;
    res.experiments += reports.size();
    res.sites += reports.size() / 4;  // run_all issues 4 ops per site

    if (progress) progress(done + 1, kernels.size());
  }
  return res;
}

}  // namespace flit::gen
