#pragma once

// The generated-space injection harness: Table 5's methodology, scored
// against ground truth the generator planted instead of hand-seeded
// injections.
//
// Each kernel gets its own miniature code model (just that kernel's file
// and functions) and a full InjectionCampaign over every static FP site
// its execution reaches x the four inject operations, with the Bisect
// search scoped to the kernel's file.  Because the kernel's label says
// which symbol should be blamed, every verdict is checkable; because one
// kernel's model contains one file, a campaign costs microseconds and the
// harness scales to 10-100x the paper's 4,376 experiments.  Verdicts are
// pooled per mechanism, which the paper's fixed applications cannot
// offer: LULESH's hand-seeded sites measure bisect on whatever mix of
// hazards LULESH happens to contain, while the generated corpus holds
// the mechanism constant within each pool.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "core/injection.h"
#include "gen/generator.h"
#include "toolchain/compiler.h"

namespace flit::gen {

/// Pooled verdict tallies for one mechanism.
struct MechanismScore {
  Mechanism mechanism = Mechanism::FmaContraction;
  std::size_t kernels = 0;        ///< kernels contributing to the pool
  std::size_t hazard_sites = 0;   ///< labeled hazard statements (ground truth)
  core::InjectionCampaign::Summary summary;
};

/// The whole campaign's outcome.
struct GenCampaignResult {
  std::vector<MechanismScore> per_mechanism;  ///< mechanism-enum order
  core::InjectionCampaign::Summary total;
  std::size_t sites = 0;        ///< static injection sites enumerated
  std::size_t experiments = 0;  ///< sites x 4 inject ops
};

/// Runs one injection campaign per kernel (mini-model, file-scoped
/// bisect) under `build_comp` and pools the summaries.  `progress`, when
/// set, is called after each kernel with (kernels done, kernels total).
[[nodiscard]] GenCampaignResult run_injection_campaign(
    std::span<const GeneratedKernel> kernels,
    const toolchain::Compilation& build_comp,
    const std::function<void(std::size_t, std::size_t)>& progress = {});

}  // namespace flit::gen
