#pragma once

// Algorithm 1 of the paper: BisectAll / BisectOne, plus the memoized Test
// wrapper.  Generic over the element type so the same code performs File
// Bisect (Elem = source file name) and Symbol Bisect (Elem = symbol name).
//
// Test is a user metric over *sets of elements*:
//   Test(S) == 0  ->  no variability-causing element in S,
//   Test(S)  > 0  ->  at least one variability-causing element in S.
//
// Complexity: O(k log N) Test evaluations for k culprits among N elements
// (plus 1 + k memoized verification calls), versus O(k^2 log N) for delta
// debugging and O(N) for a linear scan -- see bench_bisect_complexity.
//
// The two assumptions that make this possible are *dynamically verified*:
//  * Assumption 1 (Unique Error): Test(X) == Test(Y) iff the same variable
//    elements are present -- checked by the final assertion
//    Test(items) == Test(found) (line 8 of BisectAll).
//  * Assumption 2 (Singleton Blame): every variable element triggers Test
//    by itself -- checked by the base-case assertion Test({x}) > 0
//    (line 3 of BisectOne).
// When either assertion fails the result is flagged (possible false
// negatives); found elements are still guaranteed true positives.

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace flit::core {

/// Memoizing wrapper around the user's Test function.  FLiT memoizes Test
/// because re-linking and re-running an identical item set must not cost
/// another program execution (the paper's "1 + k instead of 2 + k" note).
template <class Elem>
class MemoizedTest {
 public:
  using Fn = std::function<double(const std::vector<Elem>&)>;

  explicit MemoizedTest(Fn fn) : fn_(std::move(fn)) {}

  double operator()(std::vector<Elem> items) {
    std::sort(items.begin(), items.end());
    if (auto it = cache_.find(items); it != cache_.end()) {
      ++calls_;
      return it->second;
    }
    ++calls_;
    ++executions_;
    const double v = fn_(items);
    cache_.emplace(std::move(items), v);
    return v;
  }

  /// Total Test invocations (memoized + real).
  [[nodiscard]] int calls() const { return calls_; }
  /// Real program executions (cache misses) -- the paper's cost metric.
  [[nodiscard]] int executions() const { return executions_; }

 private:
  Fn fn_;
  std::map<std::vector<Elem>, double> cache_;
  int calls_ = 0;
  int executions_ = 0;
};

template <class Elem>
struct BisectOutcome {
  std::vector<Elem> found;  ///< all variability-inducing elements

  /// Both dynamic-verification assertions passed: `found` is exactly the
  /// set of variable elements (no false negatives, no false positives).
  bool assumptions_verified = true;
  std::string diagnostic;  ///< populated when verification failed

  int test_calls = 0;   ///< total Test invocations
  int executions = 0;   ///< real program executions (cache misses)
};

namespace detail {

/// BisectOne (Algorithm 1): returns {G, next} where `next` is a singleton
/// with one variability-inducing element and `G` additionally contains
/// elements proven removable from future searches.
/// Precondition: Test(items) > 0.
template <class Elem>
std::pair<std::vector<Elem>, std::vector<Elem>> bisect_one(
    MemoizedTest<Elem>& test, const std::vector<Elem>& items,
    bool& singleton_ok) {
  if (items.size() == 1) {
    if (!(test(items) > 0.0)) {
      // Assertion (line 3): the Singleton Blame Site assumption failed --
      // this element only misbehaves jointly with others.
      singleton_ok = false;
    }
    return {items, items};
  }
  const auto mid = static_cast<std::ptrdiff_t>(items.size() / 2);
  std::vector<Elem> d1(items.begin(), items.begin() + mid);
  std::vector<Elem> d2(items.begin() + mid, items.end());
  if (test(d1) > 0.0) {
    return bisect_one(test, d1, singleton_ok);
  }
  auto [g, next] = bisect_one(test, d2, singleton_ok);
  g.insert(g.end(), d1.begin(), d1.end());  // suppress future testing of d1
  return {std::move(g), std::move(next)};
}

}  // namespace detail

/// BisectAll (Algorithm 1): finds every variability-inducing element.
template <class Elem>
BisectOutcome<Elem> bisect_all(MemoizedTest<Elem>& test,
                               std::vector<Elem> items) {
  BisectOutcome<Elem> out;
  const std::vector<Elem> all = items;
  std::vector<Elem> t = items;
  bool singleton_ok = true;

  while (!t.empty() && test(t) > 0.0) {
    auto [g, next] = detail::bisect_one(test, t, singleton_ok);
    out.found.insert(out.found.end(), next.begin(), next.end());
    std::erase_if(t, [&](const Elem& e) {
      return std::find(g.begin(), g.end(), e) != g.end();
    });
  }

  // Assertion (line 8 of BisectAll): Test(items) == Test(found).  With
  // Assumption 1 this certifies found == AV(items): no false negatives.
  const double whole = test(all);
  const double just_found = test(out.found);
  const bool unique_error_ok = whole == just_found;

  out.assumptions_verified = singleton_ok && unique_error_ok;
  if (!singleton_ok) {
    out.diagnostic =
        "Singleton Blame Site assumption violated: some element only "
        "causes variability jointly; results may have false negatives. ";
  }
  if (!unique_error_ok) {
    std::ostringstream os;
    os << "Unique Error verification failed: Test(items)=" << whole
       << " != Test(found)=" << just_found
       << "; results may have false negatives.";
    out.diagnostic += os.str();
  }
  out.test_calls = test.calls();
  out.executions = test.executions();
  return out;
}

}  // namespace flit::core
