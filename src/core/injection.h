#pragma once

// The controlled variability-injection framework of Sec. 3.5.
//
// Pass 1 enumerates every static floating-point instruction site an
// execution of the test reaches (the LLVM pass's "potential valid
// injection locations": a (file, function, instruction) tuple).  Pass 2
// builds the application with one site armed: the target instruction
// `x OP y` becomes `(x OP' eps) OP y` with eps drawn (deterministically
// per experiment) from U(0, 1).  FLiT Bisect then searches for the
// injected function; each report is classified exactly as in Table 5:
// exact find, indirect find (nearest exported host symbol of an internal
// function), wrong find, missed find, or not measurable.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/hierarchy.h"
#include "core/test_base.h"
#include "fpsem/injection_hook.h"
#include "toolchain/compiler.h"

namespace flit::core {

struct InjectionExperiment {
  fpsem::InjectionSite site;
  fpsem::InjectOp op = fpsem::InjectOp::Add;
  double eps = 0.0;
};

enum class InjectionVerdict {
  Exact,          ///< the injected function's own symbol was reported
  Indirect,       ///< the internal function's exported host was reported
  Wrong,          ///< a function not responsible was reported
  Missed,         ///< variability measurable but nothing reported
  NotMeasurable,  ///< the injection did not change the test output
};

[[nodiscard]] const char* to_string(InjectionVerdict v);

struct InjectionReport {
  InjectionExperiment exp;
  InjectionVerdict verdict = InjectionVerdict::NotMeasurable;
  int executions = 0;
  std::vector<std::string> reported_symbols;
  std::string expected_symbol;  ///< symbol Bisect should report
};

class InjectionCampaign {
 public:
  /// `build_comp` is the compilation both the clean and the instrumented
  /// builds use (the injection is the only difference between them).
  InjectionCampaign(const fpsem::CodeModel* model, const TestBase* test,
                    toolchain::Compilation build_comp);

  /// Restricts the Bisect search to these files (see BisectConfig::scope).
  void set_scope(std::vector<std::string> scope) {
    scope_ = std::move(scope);
  }

  /// Pass 1: the static FP instruction sites this test reaches.
  [[nodiscard]] std::vector<fpsem::InjectionSite> enumerate_sites() const;

  /// Pass 2 + Bisect for a single experiment.
  [[nodiscard]] InjectionReport run_one(const InjectionExperiment& e) const;

  /// Full campaign: every site x all four OP', eps ~ U(0,1) seeded
  /// deterministically per experiment.
  [[nodiscard]] std::vector<InjectionReport> run_all() const;

  /// Deterministic eps in (0, 1) for (site, op).
  [[nodiscard]] static double draw_eps(const fpsem::InjectionSite& site,
                                       fpsem::InjectOp op);

  struct Summary {
    int exact = 0, indirect = 0, wrong = 0, missed = 0, not_measurable = 0;
    int total = 0;
    double avg_executions = 0.0;  ///< over measurable experiments

    [[nodiscard]] double precision() const;
    [[nodiscard]] double recall() const;

    /// Pools another summary in: tallies sum, avg_executions recombines
    /// weighted by each side's measurable-experiment count.  The
    /// generated-workload harness runs one campaign per kernel and folds
    /// the per-kernel summaries into per-mechanism and total pools.
    Summary& operator+=(const Summary& o);
  };
  [[nodiscard]] static Summary summarize(
      std::span<const InjectionReport> reports);

 private:
  const fpsem::CodeModel* model_;
  const TestBase* test_;
  toolchain::Compilation comp_;
  std::vector<std::string> scope_;
};

}  // namespace flit::core
