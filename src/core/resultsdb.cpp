#include "core/resultsdb.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace flit::core {

namespace {

constexpr char kHeader[] = "test\tcompilation\tspeedup\tvariability";

}  // namespace

ResultsDb::ResultsDb(std::filesystem::path path) : path_(std::move(path)) {
  load();
}

void ResultsDb::load() {
  rows_.clear();
  std::ifstream in(path_);
  if (!in) return;  // first use: created on save
  std::string line;
  if (!std::getline(in, line)) return;
  if (line != kHeader) {
    throw std::runtime_error("ResultsDb: unrecognized header in " +
                             path_.string());
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    ResultRow row;
    std::string speedup, variability;
    if (!std::getline(ls, row.test_name, '\t') ||
        !std::getline(ls, row.compilation, '\t') ||
        !std::getline(ls, speedup, '\t') ||
        !std::getline(ls, variability, '\t')) {
      throw std::runtime_error("ResultsDb: malformed row in " +
                               path_.string());
    }
    row.speedup = std::strtod(speedup.c_str(), nullptr);
    row.variability = strtold(variability.c_str(), nullptr);
    rows_.push_back(std::move(row));
  }
}

void ResultsDb::save() const {
  std::ofstream out(path_, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("ResultsDb: cannot write " + path_.string());
  }
  out << kHeader << '\n';
  char buf[64];
  for (const ResultRow& r : rows_) {
    std::snprintf(buf, sizeof buf, "%.17g\t%.21Lg", r.speedup,
                  r.variability);
    out << r.test_name << '\t' << r.compilation << '\t' << buf << '\n';
  }
}

void ResultsDb::record(const StudyResult& study) {
  for (const CompilationOutcome& o : study.outcomes) {
    ResultRow row{study.test_name, o.comp.str(), o.speedup, o.variability};
    const auto it = std::find_if(
        rows_.begin(), rows_.end(), [&](const ResultRow& r) {
          return r.test_name == row.test_name &&
                 r.compilation == row.compilation;
        });
    if (it != rows_.end()) {
      *it = std::move(row);
    } else {
      rows_.push_back(std::move(row));
    }
  }
  save();
}

std::vector<ResultRow> ResultsDb::rows_for(
    const std::string& test_name) const {
  std::vector<ResultRow> out;
  for (const ResultRow& r : rows_) {
    if (r.test_name == test_name) out.push_back(r);
  }
  return out;
}

std::optional<ResultRow> ResultsDb::find(
    const std::string& test_name, const std::string& compilation) const {
  for (const ResultRow& r : rows_) {
    if (r.test_name == test_name && r.compilation == compilation) return r;
  }
  return std::nullopt;
}

std::vector<std::string> ResultsDb::tests() const {
  std::vector<std::string> out;
  for (const ResultRow& r : rows_) {
    if (std::find(out.begin(), out.end(), r.test_name) == out.end()) {
      out.push_back(r.test_name);
    }
  }
  return out;
}

void ResultsDb::reload() { load(); }

}  // namespace flit::core
