#include "core/resultsdb.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace flit::core {

namespace {

// v2 header (status/reason columns); v1 is still accepted on load so
// databases written before failure accounting existed keep working.
constexpr char kHeader[] =
    "test\tcompilation\tspeedup\tvariability\tstatus\treason";
constexpr char kHeaderV1[] = "test\tcompilation\tspeedup\tvariability";

/// Tabs and newlines are the format's structure; strip them from free-form
/// reason text before it is persisted.
std::string sanitized(std::string s) {
  for (char& c : s) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

/// Parses one data row.  Returns false on a malformed (e.g. truncated)
/// line instead of throwing; the caller decides whether that is fatal.
bool parse_row(const std::string& line, bool v1, ResultRow* row) {
  std::istringstream ls(line);
  std::string speedup, variability, status;
  if (!std::getline(ls, row->test_name, '\t') ||
      !std::getline(ls, row->compilation, '\t') ||
      !std::getline(ls, speedup, '\t')) {
    return false;
  }
  if (v1) {
    if (!std::getline(ls, variability, '\t')) return false;
    row->status = OutcomeStatus::Ok;
    row->reason.clear();
  } else {
    if (!std::getline(ls, variability, '\t') ||
        !std::getline(ls, status, '\t')) {
      return false;
    }
    const auto parsed = outcome_status_from(status);
    if (!parsed.has_value()) return false;
    row->status = *parsed;
    // The reason is the final field and may be empty (getline fails on an
    // exhausted stream without consuming anything).
    if (!std::getline(ls, row->reason)) row->reason.clear();
  }
  // Numeric fields must be consumed in full: `end == c_str()` alone let a
  // corrupted "1.5junk" speedup load silently as 1.5.
  char* end = nullptr;
  row->speedup = std::strtod(speedup.c_str(), &end);
  if (end == speedup.c_str() || *end != '\0') return false;
  end = nullptr;
  row->variability = strtold(variability.c_str(), &end);
  if (end == variability.c_str() || *end != '\0') return false;
  return true;
}

}  // namespace

ResultsDb::ResultsDb(std::filesystem::path path) : path_(std::move(path)) {
  load();
}

void ResultsDb::load() {
  rows_.clear();
  std::ifstream in(path_);
  if (!in) return;  // first use: created on save
  std::string line;
  if (!std::getline(in, line)) return;
  bool v1 = false;
  if (line == kHeaderV1) {
    v1 = true;
  } else if (line != kHeader) {
    throw std::runtime_error("ResultsDb: unrecognized header in " +
                             path_.string());
  }

  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(std::move(line));
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    ResultRow row;
    if (parse_row(lines[i], v1, &row)) {
      rows_.push_back(std::move(row));
      continue;
    }
    if (i + 1 == lines.size()) {
      // A truncated trailing row is what a crash mid-append leaves
      // behind; drop it so the database stays usable -- the row's study
      // will simply re-run it on resume.
      std::fprintf(stderr,
                   "ResultsDb: dropping truncated trailing row in %s\n",
                   path_.string().c_str());
      return;
    }
    throw std::runtime_error("ResultsDb: malformed row in " +
                             path_.string());
  }
}

void ResultsDb::save() const {
  // Write-then-rename so a crash at any point leaves either the old or
  // the new database, never a half-written one.
  const std::filesystem::path tmp = path_.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("ResultsDb: cannot write " + tmp.string());
    }
    out << kHeader << '\n';
    char buf[64];
    for (const ResultRow& r : rows_) {
      std::snprintf(buf, sizeof buf, "%.17g\t%.21Lg", r.speedup,
                    r.variability);
      out << r.test_name << '\t' << r.compilation << '\t' << buf << '\t'
          << to_string(r.status) << '\t' << sanitized(r.reason) << '\n';
    }
    out.flush();
    if (!out) {
      throw std::runtime_error("ResultsDb: write failed for " +
                               tmp.string());
    }
  }
  std::filesystem::rename(tmp, path_);
}

void ResultsDb::record(const StudyResult& study) {
  for (const CompilationOutcome& o : study.outcomes) {
    ResultRow row{study.test_name, o.comp.str(), o.speedup, o.variability,
                  o.status,        o.reason};
    const auto it = std::find_if(
        rows_.begin(), rows_.end(), [&](const ResultRow& r) {
          return r.test_name == row.test_name &&
                 r.compilation == row.compilation;
        });
    if (it != rows_.end()) {
      *it = std::move(row);
    } else {
      rows_.push_back(std::move(row));
    }
  }
  save();
}

void ResultsDb::merge_rows(const std::vector<ResultRow>& rows) {
  for (const ResultRow& row : rows) {
    const auto it = std::find_if(
        rows_.begin(), rows_.end(), [&](const ResultRow& r) {
          return r.test_name == row.test_name &&
                 r.compilation == row.compilation;
        });
    if (it != rows_.end()) {
      *it = row;
    } else {
      rows_.push_back(row);
    }
  }
}

std::vector<ResultRow> ResultsDb::rows_for(
    const std::string& test_name) const {
  std::vector<ResultRow> out;
  for (const ResultRow& r : rows_) {
    if (r.test_name == test_name) out.push_back(r);
  }
  return out;
}

std::optional<ResultRow> ResultsDb::find(
    const std::string& test_name, const std::string& compilation) const {
  for (const ResultRow& r : rows_) {
    if (r.test_name == test_name && r.compilation == compilation) return r;
  }
  return std::nullopt;
}

std::vector<std::string> ResultsDb::tests() const {
  std::vector<std::string> out;
  for (const ResultRow& r : rows_) {
    if (std::find(out.begin(), out.end(), r.test_name) == out.end()) {
      out.push_back(r.test_name);
    }
  }
  return out;
}

void ResultsDb::reload() { load(); }

}  // namespace flit::core
