#pragma once

// Reference implementation of Zeller-Hildebrandt delta debugging (ddmin),
// the algorithm Bisect is built on and compared against in Sec. 2.4.
//
// ddmin finds ONE minimal failing subset: a set whose Test is positive
// but every proper subset tested along the way is not.  Under the paper's
// Assumption 1 the minimal set is unique and equals AV(U), so ddmin is a
// correct-but-slower alternative to bisect_all: O(k^2 log N) Test
// evaluations versus Bisect's O(k log N).  It is provided both as a
// baseline for the complexity ablation (bench_bisect_complexity) and as a
// fallback for workloads where the Singleton Blame assumption fails.

#include <vector>

#include "core/bisect.h"

namespace flit::core {

template <class Elem>
struct DdminOutcome {
  std::vector<Elem> minimal;  ///< a 1-minimal failing subset
  int test_calls = 0;
  int executions = 0;
};

/// Boolean-izes the paper's magnitude Test for ddmin: "fails" means
/// Test(S) reproduces the full-set magnitude (the Test' of Theorem 1).
template <class Elem>
DdminOutcome<Elem> ddmin(MemoizedTest<Elem>& test, std::vector<Elem> items) {
  DdminOutcome<Elem> out;
  const double target = test(items);
  if (!(target > 0.0)) {
    out.test_calls = test.calls();
    out.executions = test.executions();
    return out;
  }
  const auto fails = [&](const std::vector<Elem>& s) {
    return test(s) == target;
  };

  std::vector<Elem> current = std::move(items);
  std::size_t granularity = 2;
  while (current.size() >= 2) {
    const std::size_t n = granularity;
    const std::size_t chunk =
        (current.size() + n - 1) / n;  // ceil division
    bool reduced = false;

    // Try each subset.
    for (std::size_t i = 0; i < n && !reduced; ++i) {
      const std::size_t lo = i * chunk;
      if (lo >= current.size()) break;
      const std::size_t hi = std::min(current.size(), lo + chunk);
      std::vector<Elem> subset(current.begin() + static_cast<std::ptrdiff_t>(lo),
                               current.begin() + static_cast<std::ptrdiff_t>(hi));
      if (fails(subset)) {
        current = std::move(subset);
        granularity = 2;
        reduced = true;
      }
    }
    if (reduced) continue;

    // Try each complement.
    for (std::size_t i = 0; i < n && !reduced; ++i) {
      const std::size_t lo = i * chunk;
      if (lo >= current.size()) break;
      const std::size_t hi = std::min(current.size(), lo + chunk);
      std::vector<Elem> complement;
      complement.reserve(current.size() - (hi - lo));
      complement.insert(complement.end(), current.begin(),
                        current.begin() + static_cast<std::ptrdiff_t>(lo));
      complement.insert(complement.end(),
                        current.begin() + static_cast<std::ptrdiff_t>(hi),
                        current.end());
      if (!complement.empty() && fails(complement)) {
        current = std::move(complement);
        granularity = std::max<std::size_t>(n - 1, 2);
        reduced = true;
      }
    }
    if (reduced) continue;

    // Increase granularity or stop.
    if (n >= current.size()) break;
    granularity = std::min(current.size(), n * 2);
  }

  out.minimal = std::move(current);
  out.test_calls = test.calls();
  out.executions = test.executions();
  return out;
}

}  // namespace flit::core
