#include "core/hierarchy.h"

#include <algorithm>
#include <optional>
#include <set>
#include <utility>

#include "core/bisect_biggest.h"
#include "core/faults.h"
#include "core/probe_memo.h"
#include "obs/session.h"
#include "toolchain/objcopy.h"

namespace flit::core {

namespace {

RunOutput truncated(RunOutput out, int digits) {
  if (digits <= 0) return out;
  for (TestResult& r : out.results) {
    if (auto* v = std::get_if<long double>(&r)) {
      *v = truncate_digits(*v, digits);
    }
  }
  return out;
}

}  // namespace

BisectDriver::BisectDriver(const fpsem::CodeModel* model, const TestBase* test,
                           BisectConfig cfg,
                           toolchain::CompilationCache* cache)
    : model_(model),
      test_(test),
      cfg_(std::move(cfg)),
      build_(model, cache),
      linker_(model),
      runner_(model) {}

long double BisectDriver::metric(const RunOutput& out) const {
  return Runner::compare_outputs(*test_, baseline_out_,
                                 truncated(out, cfg_.digits));
}

RunOutput BisectDriver::execute(
    const std::vector<toolchain::ObjectFile>& objs) {
  ++executions_;
  // Per-probe fault scope: decisions vary deterministically across the
  // probes of one search (the execution ordinal is driver-local, so the
  // sequence is identical at any --jobs count) instead of dooming every
  // probe of a test at once.
  FaultInjector::ScopedTrial trial(
      "bisect|" + cfg_.variable.str() + "#" + std::to_string(executions_),
      0);
  const toolchain::Executable exe =
      linker_.link(objs, cfg_.baseline.compiler);
  // The memo only short-circuits plain runs: an injection hook's output is
  // not a function of the binary alone, and an armed fault injector must
  // see every probe roll its run-site decision.
  if (cfg_.memo == nullptr || cfg_.hook != nullptr ||
      FaultInjector::global().any_armed()) {
    return runner_.run(*test_, exe, cfg_.hook);
  }
  const std::string key = ProbeMemo::key_of(test_->name(), exe);
  if (std::optional<ProbeMemo::Entry> hit = cfg_.memo->lookup(key)) {
    ++memo_hits_;
    if (hit->crashed) throw ExecutionCrash(hit->crash_reason);
    return std::move(hit->output);
  }
  try {
    RunOutput out = runner_.run(*test_, exe, cfg_.hook);
    cfg_.memo->store(key, ProbeMemo::Entry{false, {}, out});
    return out;
  } catch (const ExecutionCrash& e) {
    cfg_.memo->store(key, ProbeMemo::Entry{true, e.what(), {}});
    throw;
  }
}

HierarchicalOutcome BisectDriver::run() {
  // The search itself is untouched (run_impl); the wrapper only accounts
  // for it.  The span cost is the search's headline metric -- real program
  // executions -- so a trace shows at a glance which searches were cheap
  // and which burned the budget.
  static obs::Counter& m_searches = obs::metrics().counter("bisect.searches");
  static obs::Counter& m_executions =
      obs::metrics().counter("bisect.executions");
  static obs::Counter& m_memo_hits =
      obs::metrics().counter("bisect.memo_hits");
  m_searches.add();
  obs::Span span(obs::tracer_if_enabled(), "bisect", "bisect",
                 cfg_.variable.str());
  HierarchicalOutcome out = run_impl();
  m_executions.add(static_cast<std::uint64_t>(
      out.executions > 0 ? out.executions : 0));
  m_memo_hits.add(
      static_cast<std::uint64_t>(out.memo_hits > 0 ? out.memo_hits : 0));
  span.set_cost(static_cast<double>(out.executions));
  return out;
}

HierarchicalOutcome BisectDriver::run_impl() {
  HierarchicalOutcome out;

  base_objs_ = build_.compile_all(cfg_.baseline);
  baseline_out_ = truncated(execute(base_objs_), cfg_.digits);

  // Variable-compilation objects, one per in-scope file (compilation is a
  // one-time cost; linking dominates searches).
  const std::vector<std::string>& all_files = model_->files();
  const std::vector<std::string> files =
      cfg_.scope.empty() ? all_files : cfg_.scope;
  std::vector<toolchain::ObjectFile> var_objs;
  var_objs.reserve(files.size());
  for (const std::string& f : files) {
    var_objs.push_back(build_.compile(f, cfg_.variable, /*fpic=*/false,
                                      cfg_.variable_injected));
  }
  const auto var_index = [&](const std::string& f) {
    return static_cast<std::size_t>(
        std::find(files.begin(), files.end(), f) - files.begin());
  };

  // ---- File Bisect ------------------------------------------------------
  MemoizedTest<std::string> file_test(
      [&](const std::vector<std::string>& subset) -> double {
        std::vector<toolchain::ObjectFile> objs;
        objs.reserve(all_files.size());
        for (std::size_t i = 0; i < all_files.size(); ++i) {
          const bool variable =
              std::find(subset.begin(), subset.end(), all_files[i]) !=
              subset.end();
          objs.push_back(variable ? var_objs[var_index(all_files[i])]
                                  : base_objs_[i]);
        }
        return static_cast<double>(metric(execute(objs)));
      });

  try {
    out.whole_value = file_test(files);
    if (cfg_.k > 0) {
      auto ranked = bisect_biggest(file_test, files, cfg_.k);
      for (const auto& rf : ranked.found) {
        FileFinding ff;
        ff.file = rf.element;
        ff.value = rf.value;
        out.findings.push_back(std::move(ff));
      }
    } else {
      auto all = bisect_all(file_test, files);
      if (!all.assumptions_verified) {
        out.assumptions_verified = false;
        out.diagnostic += "[file] " + all.diagnostic;
      }
      for (const std::string& f : all.found) {
        FileFinding ff;
        ff.file = f;
        ff.value = file_test({f});
        out.findings.push_back(std::move(ff));
      }
    }
  } catch (const ExecutionCrash& e) {
    out.crashed = true;
    out.crash_reason = e.what();
    out.executions = executions_;
    out.memo_hits = memo_hits_;
    return out;
  }

  std::sort(out.findings.begin(), out.findings.end(),
            [](const FileFinding& a, const FileFinding& b) {
              return a.value > b.value;
            });

  // ---- Symbol Bisect per found file --------------------------------------
  std::vector<SymbolFinding> global_symbols;  // for the k-mode early exit
  for (FileFinding& ff : out.findings) {
    if (cfg_.k > 0 && static_cast<int>(global_symbols.size()) >= cfg_.k) {
      // Early exit (Sec. 2.5): this file cannot beat the k-th symbol.
      std::sort(global_symbols.begin(), global_symbols.end(),
                [](const SymbolFinding& a, const SymbolFinding& b) {
                  return a.value > b.value;
                });
      if (ff.value <=
          global_symbols[static_cast<std::size_t>(cfg_.k) - 1].value) {
        ff.status = FileFinding::SymbolStatus::NotSearched;
        ff.note = "skipped by BisectBiggest early exit";
        continue;
      }
    }
    symbol_phase(ff);
    for (const SymbolFinding& sf : ff.symbols) global_symbols.push_back(sf);
  }

  out.executions = executions_;
  out.memo_hits = memo_hits_;
  // Re-derive the verification flag from symbol phases' notes.
  for (const FileFinding& ff : out.findings) {
    if (ff.status == FileFinding::SymbolStatus::Found && !ff.note.empty()) {
      out.assumptions_verified = false;
      out.diagnostic += "[" + ff.file + "] " + ff.note;
    }
  }
  return out;
}

void BisectDriver::symbol_phase(FileFinding& finding) {
  const std::string& file = finding.file;
  const std::vector<std::string> symbols = model_->exported_symbols_of(file);
  if (symbols.empty()) {
    finding.status = FileFinding::SymbolStatus::NotSearched;
    finding.note = "file exports no symbols";
    return;
  }

  // Recompile the file with -fPIC under both compilations (Sec. 2.3).
  const toolchain::ObjectFile var_fpic = build_.compile(
      file, cfg_.variable, /*fpic=*/true, cfg_.variable_injected);
  const toolchain::ObjectFile base_fpic =
      build_.compile(file, cfg_.baseline, /*fpic=*/true);

  const auto objects_with = [&](const toolchain::ObjectFile& a,
                                const toolchain::ObjectFile* b =
                                    nullptr) {
    std::vector<toolchain::ObjectFile> objs;
    for (const toolchain::ObjectFile& o : base_objs_) {
      if (o.source_file != file) objs.push_back(o);
    }
    objs.push_back(a);
    if (b != nullptr) objs.push_back(*b);
    return objs;
  };

  try {
    // -fPIC pre-check: does the variability survive the recompile?
    if (metric(execute(objects_with(var_fpic))) == 0.0L) {
      finding.status = FileFinding::SymbolStatus::VanishedUnderFpic;
      finding.note = "variability removed by -fPIC; reporting file only";
      return;
    }

    MemoizedTest<std::string> sym_test(
        [&](const std::vector<std::string>& chosen) -> double {
          // Variable copy: chosen symbols strong, others weak.
          // Baseline copy: chosen symbols weak, others strong.
          toolchain::ObjectFile v =
              toolchain::objcopy_weaken_complement(var_fpic, chosen);
          toolchain::ObjectFile b =
              toolchain::objcopy_weaken(base_fpic, chosen);
          return static_cast<double>(metric(execute(objects_with(v, &b))));
        });

    if (cfg_.k > 0) {
      auto ranked = bisect_biggest(sym_test, symbols, cfg_.k);
      for (const auto& rf : ranked.found) {
        finding.symbols.push_back(SymbolFinding{rf.element, rf.value});
      }
    } else {
      auto all = bisect_all(sym_test, symbols);
      if (!all.assumptions_verified) finding.note = all.diagnostic;
      for (const std::string& s : all.found) {
        finding.symbols.push_back(SymbolFinding{s, sym_test({s})});
      }
    }
    finding.status = FileFinding::SymbolStatus::Found;
    std::sort(finding.symbols.begin(), finding.symbols.end(),
              [](const SymbolFinding& a, const SymbolFinding& b) {
                return a.value > b.value;
              });
  } catch (const ExecutionCrash& e) {
    finding.status = FileFinding::SymbolStatus::Crashed;
    finding.note = e.what();
  }
}

}  // namespace flit::core
