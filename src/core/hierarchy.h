#pragma once

// The dual-level hierarchical Bisect of Sec. 2.3: first locate the source
// *files* whose variable compilation induces variability (File Bisect:
// link object files from the two compilations), then, inside each found
// file, locate the exported *symbols* responsible (Symbol Bisect:
// duplicate the object, objcopy-weaken complementary symbol subsets, link
// both copies).  Includes the -fPIC pre-check: if recompiling the found
// file with -fPIC makes the variability vanish, the search cannot go
// deeper and the file itself is reported.

#include <string>
#include <vector>

#include "core/bisect.h"
#include "core/runner.h"
#include "core/test_base.h"
#include "toolchain/build.h"
#include "toolchain/compiler.h"
#include "toolchain/linker.h"

namespace flit::core {

class ProbeMemo;

struct BisectConfig {
  toolchain::Compilation baseline;  ///< trusted compilation
  toolchain::Compilation variable;  ///< compilation under investigation

  /// Files to search over (the application under test).  Empty: every
  /// file of the code model.  Out-of-scope files are always linked from
  /// the baseline build.
  std::vector<std::string> scope;

  /// k > 0: BisectBiggest with this k;  k <= 0: BisectAll ("all").
  int k = 0;

  /// Restrict comparisons to this many significant decimal digits
  /// (<= 0: full precision).  Used by the Laghos study (Table 4).
  int digits = 0;

  /// Injection mode (Sec. 3.5): the "variable" build is the same
  /// compilation as the baseline but produced by the instrumented
  /// injection build, and `hook` carries the armed perturbation.  The
  /// hook only fires inside functions whose winning definition came from
  /// the instrumented objects.
  bool variable_injected = false;
  fpsem::InjectionHook* hook = nullptr;

  /// Shared (thread-safe) probe memo: probes whose linked executable was
  /// already run -- by this driver or any other sharing the memo -- are
  /// answered from cache instead of re-running (see probe_memo.h for the
  /// soundness argument).  Ignored in injection mode and while the fault
  /// injector is armed, where skipping a run would change behaviour.
  /// Must outlive the driver.
  ProbeMemo* memo = nullptr;
};

struct SymbolFinding {
  std::string symbol;
  double value = 0.0;  ///< Test({symbol})
};

struct FileFinding {
  std::string file;
  double value = 0.0;  ///< Test({file})

  enum class SymbolStatus {
    Found,              ///< symbol-level culprits identified
    VanishedUnderFpic,  ///< -fPIC removed the variability; file-level only
    Crashed,            ///< mixed strong/weak executable crashed
    NotSearched,        ///< no exported symbols, or skipped by k-cutoff
  };
  SymbolStatus status = SymbolStatus::NotSearched;
  std::vector<SymbolFinding> symbols;
  std::string note;
};

struct HierarchicalOutcome {
  std::vector<FileFinding> findings;

  /// Test value of the full variable item set (the first Bisect probe);
  /// 0 means the whole-program difference is not measurable at all.
  double whole_value = 0.0;

  /// Logical program executions across the whole search, including the
  /// baseline run and the verification assertions -- the paper's headline
  /// cost metric ("14 executions" for Laghos).  Memoized probes still
  /// count (the search asked for them), so this number is identical with
  /// the probe memo on or off; real executions = executions - memo_hits.
  int executions = 0;

  /// Probes answered from the shared probe memo (0 without one).  Under
  /// concurrent drivers the split between hits and real runs depends on
  /// scheduling; `executions` does not.
  int memo_hits = 0;

  bool crashed = false;  ///< File Bisect itself crashed (ABI mixing)
  std::string crash_reason;

  /// Dynamic verification (Sec. 2.4) passed at the file level and at
  /// every symbol level searched.
  bool assumptions_verified = true;
  std::string diagnostic;

  /// File Bisect found nothing although the whole-program compilation was
  /// variable: the variability is not attributable to any translation
  /// unit (e.g. the Intel link-step libm substitution of Fig. 5).
  [[nodiscard]] bool nothing_found() const {
    return !crashed && findings.empty();
  }
};

/// Runs the hierarchical search for one (test, baseline, variable) triple.
class BisectDriver {
 public:
  /// `cache`, when non-null, memoizes per-file compilations -- bisects
  /// relink far more often than they need to recompile, and one shared
  /// (thread-safe) cache serves many concurrent drivers.  Must outlive the
  /// driver.
  BisectDriver(const fpsem::CodeModel* model, const TestBase* test,
               BisectConfig cfg, toolchain::CompilationCache* cache = nullptr);

  [[nodiscard]] HierarchicalOutcome run();

 private:
  [[nodiscard]] HierarchicalOutcome run_impl();
  [[nodiscard]] long double metric(const RunOutput& out) const;
  [[nodiscard]] RunOutput execute(const std::vector<toolchain::ObjectFile>& objs);
  void symbol_phase(FileFinding& finding);

  const fpsem::CodeModel* model_;
  const TestBase* test_;
  BisectConfig cfg_;
  toolchain::BuildSystem build_;
  toolchain::Linker linker_;
  Runner runner_;

  std::vector<toolchain::ObjectFile> base_objs_;
  RunOutput baseline_out_;
  int executions_ = 0;
  int memo_hits_ = 0;
};

}  // namespace flit::core
