#pragma once

// Report emitters: human-readable and CSV renderings of study, bisect and
// workflow results (FLiT's results-database/report layer).  Everything is
// plain text so it can be piped into the paper's plotting scripts.

#include <string>

#include "core/hierarchy.h"
#include "core/workflow.h"

namespace flit::core {

/// CSV: compilation,speedup,variability,bitwise_equal,status,reason
/// (header included).
std::string study_csv(const StudyResult& r);

/// One-paragraph human summary of a study (counts, fastest entries,
/// failure/retry tallies).
std::string study_summary(const StudyResult& r);

/// Failure-accounting section: one line per quarantined or retried
/// outcome, with status and reason.  Empty string when nothing failed.
std::string failure_report(const StudyResult& r);

/// Multi-line blame report of a hierarchical bisect outcome.
std::string bisect_report(const HierarchicalOutcome& out);

/// Full Fig. 1 workflow report: study summary, recommendation, blame
/// reports for each bisected variable compilation.
std::string workflow_report_text(const WorkflowReport& report);

}  // namespace flit::core
