#pragma once

// Levels 1 and 2 of the workflow (Fig. 1): run a test under every
// compilation of a space, classify each compilation as bitwise-equal or
// variable relative to the trusted baseline, and chart performance
// (speedup relative to a reference compilation) against reproducibility --
// the data behind Table 1 and Figures 4-6.
//
// The space is embarrassingly parallel, so explore() fans the compilations
// out over a ThreadPool (set_jobs / the jobs constructor argument) and
// merges outcomes by space index; the merged StudyResult is
// bitwise-identical to a serial run at any jobs count.  Per-file objects
// are memoized in a shared CompilationCache: most of the 244 triples
// collapse onto a handful of distinct per-file semantics.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/runner.h"
#include "core/test_base.h"
#include "toolchain/build.h"
#include "toolchain/compile_cache.h"
#include "toolchain/compiler.h"
#include "toolchain/linker.h"

namespace flit::core {

struct CompilationOutcome {
  toolchain::Compilation comp;
  long double variability = 0.0L;  ///< compare() against the baseline
  double cycles = 0.0;             ///< modeled runtime
  double speedup = 0.0;            ///< reference cycles / cycles

  [[nodiscard]] bool bitwise_equal() const { return variability == 0.0L; }
};

struct StudyResult {
  std::string test_name;
  std::vector<CompilationOutcome> outcomes;

  [[nodiscard]] std::size_t variable_count() const;

  /// Fastest outcome that compares equal to the baseline, optionally
  /// restricted to one compiler (by name).
  [[nodiscard]] const CompilationOutcome* fastest_equal(
      const std::string& compiler_name = "") const;

  /// Fastest outcome exhibiting variability (any compiler).
  [[nodiscard]] const CompilationOutcome* fastest_variable() const;

  /// min / median / max of the nonzero variabilities.
  struct VariabilityStats {
    long double min = 0.0L, median = 0.0L, max = 0.0L;
  };
  [[nodiscard]] std::optional<VariabilityStats> variability_stats() const;
};

class SpaceExplorer {
 public:
  /// `baseline` is the trusted compilation results are compared against;
  /// `speed_reference` is the compilation speedups are relative to
  /// (g++ -O0 and g++ -O2 respectively in the MFEM study).  `jobs` is the
  /// number of parallel execution lanes explore() uses (1 = serial);
  /// `cache`, when non-null, replaces the explorer's internal compilation
  /// cache (e.g. to share one cache across an explorer and Bisect drivers)
  /// and must outlive the explorer.
  SpaceExplorer(const fpsem::CodeModel* model,
                toolchain::Compilation baseline,
                toolchain::Compilation speed_reference, unsigned jobs = 1,
                toolchain::CompilationCache* cache = nullptr);

  /// Runs `test` under every compilation in `space` on `jobs()` lanes.
  /// Whole-program builds: all files under the compilation, linked by its
  /// compiler.  Compilations equal to the baseline or the speed reference
  /// reuse those runs instead of re-executing.  Outcomes are merged in
  /// space order: the result is bitwise-identical at any jobs count.
  [[nodiscard]] StudyResult explore(
      const TestBase& test,
      std::span<const toolchain::Compilation> space) const;

  /// Runs one whole-program compilation of `test`.
  [[nodiscard]] RunOutput run_whole_program(
      const TestBase& test, const toolchain::Compilation& c) const;

  void set_jobs(unsigned jobs) { jobs_ = jobs >= 1 ? jobs : 1; }
  [[nodiscard]] unsigned jobs() const { return jobs_; }

  /// The compilation cache explore() compiles through (internal unless one
  /// was supplied at construction).
  [[nodiscard]] const toolchain::CompilationCache& cache() const {
    return *cache_;
  }

 private:
  const fpsem::CodeModel* model_;
  toolchain::Compilation baseline_;
  toolchain::Compilation speed_reference_;
  mutable toolchain::CompilationCache own_cache_;
  toolchain::CompilationCache* cache_;  ///< own_cache_ or the external one
  toolchain::BuildSystem build_;
  toolchain::Linker linker_;
  Runner runner_;
  unsigned jobs_;
};

}  // namespace flit::core
