#pragma once

// Levels 1 and 2 of the workflow (Fig. 1): run a test under every
// compilation of a space, classify each compilation as bitwise-equal or
// variable relative to the trusted baseline, and chart performance
// (speedup relative to a reference compilation) against reproducibility --
// the data behind Table 1 and Figures 4-6.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/runner.h"
#include "core/test_base.h"
#include "toolchain/build.h"
#include "toolchain/compiler.h"
#include "toolchain/linker.h"

namespace flit::core {

struct CompilationOutcome {
  toolchain::Compilation comp;
  long double variability = 0.0L;  ///< compare() against the baseline
  double cycles = 0.0;             ///< modeled runtime
  double speedup = 0.0;            ///< reference cycles / cycles

  [[nodiscard]] bool bitwise_equal() const { return variability == 0.0L; }
};

struct StudyResult {
  std::string test_name;
  std::vector<CompilationOutcome> outcomes;

  [[nodiscard]] std::size_t variable_count() const;

  /// Fastest outcome that compares equal to the baseline, optionally
  /// restricted to one compiler (by name).
  [[nodiscard]] const CompilationOutcome* fastest_equal(
      const std::string& compiler_name = "") const;

  /// Fastest outcome exhibiting variability (any compiler).
  [[nodiscard]] const CompilationOutcome* fastest_variable() const;

  /// min / median / max of the nonzero variabilities.
  struct VariabilityStats {
    long double min = 0.0L, median = 0.0L, max = 0.0L;
  };
  [[nodiscard]] std::optional<VariabilityStats> variability_stats() const;
};

class SpaceExplorer {
 public:
  /// `baseline` is the trusted compilation results are compared against;
  /// `speed_reference` is the compilation speedups are relative to
  /// (g++ -O0 and g++ -O2 respectively in the MFEM study).
  SpaceExplorer(const fpsem::CodeModel* model,
                toolchain::Compilation baseline,
                toolchain::Compilation speed_reference);

  /// Runs `test` under every compilation in `space`.  Whole-program
  /// builds: all files under the compilation, linked by its compiler.
  [[nodiscard]] StudyResult explore(
      const TestBase& test,
      std::span<const toolchain::Compilation> space) const;

  /// Runs one whole-program compilation of `test`.
  [[nodiscard]] RunOutput run_whole_program(
      const TestBase& test, const toolchain::Compilation& c) const;

 private:
  const fpsem::CodeModel* model_;
  toolchain::Compilation baseline_;
  toolchain::Compilation speed_reference_;
  toolchain::BuildSystem build_;
  toolchain::Linker linker_;
  Runner runner_;
};

}  // namespace flit::core
