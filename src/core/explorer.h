#pragma once

// Levels 1 and 2 of the workflow (Fig. 1): run a test under every
// compilation of a space, classify each compilation as bitwise-equal or
// variable relative to the trusted baseline, and chart performance
// (speedup relative to a reference compilation) against reproducibility --
// the data behind Table 1 and Figures 4-6.
//
// The space is embarrassingly parallel, so explore() fans the compilations
// out over a ThreadPool (set_jobs / the jobs constructor argument) and
// merges outcomes by space index; the merged StudyResult is
// bitwise-identical to a serial run at any jobs count.  Per-file objects
// are memoized in a shared CompilationCache: most of the 244 triples
// collapse onto a handful of distinct per-file semantics.
//
// Failures are contained, not fatal: a compilation that crashes or fails
// to build is recorded in its outcome slot (status + reason) and the
// study completes -- the paper's evaluation depends on recording failed
// runs (Table 2), not on avoiding them.  Only the two anchor runs
// (baseline and speed reference) abort the study, with a StudyAbort
// naming the compilation.  With a ResultsDb attached, explore checkpoints
// outcomes incrementally and can resume a killed study, converging to a
// byte-identical database.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/faults.h"
#include "core/runner.h"
#include "core/test_base.h"
#include "toolchain/build.h"
#include "toolchain/compile_cache.h"
#include "toolchain/compiler.h"
#include "toolchain/linker.h"

namespace flit::core {

class ResultsDb;

/// How a (test, compilation) study item ended.
enum class OutcomeStatus {
  Ok,           ///< ran cleanly on the first attempt
  Retried,      ///< ran cleanly after one or more failed attempts
  Crashed,      ///< the executable died with a signal on every attempt
  BuildFailed,  ///< the compile or link step failed on every attempt
  Degraded,     ///< never executed: the fleet supervisor ran out of live
                ///< ranks before the item's claim could run (an
                ///< infrastructure failure, not an item failure -- a
                ///< resume re-runs degraded rows, unlike quarantined ones)
};

[[nodiscard]] const char* to_string(OutcomeStatus s);
/// Inverse of to_string; nullopt for unrecognized names.
[[nodiscard]] std::optional<OutcomeStatus> outcome_status_from(
    const std::string& name);

struct CompilationOutcome {
  toolchain::Compilation comp;
  long double variability = 0.0L;  ///< compare() against the baseline
  double cycles = 0.0;             ///< modeled runtime
  double speedup = 0.0;            ///< reference cycles / cycles

  OutcomeStatus status = OutcomeStatus::Ok;
  int attempts = 1;    ///< attempts consumed (1 = first try succeeded)
  std::string reason;  ///< failure reason; for Retried, the transient
                       ///< fault the retry recovered from

  /// The item produced results (possibly after retries).
  [[nodiscard]] bool ok() const {
    return status == OutcomeStatus::Ok || status == OutcomeStatus::Retried;
  }
  /// The item is quarantined: every attempt failed.
  [[nodiscard]] bool failed() const { return !ok(); }

  [[nodiscard]] bool bitwise_equal() const {
    return ok() && variability == 0.0L;
  }
};

struct StudyResult {
  std::string test_name;
  std::vector<CompilationOutcome> outcomes;

  /// Outcomes that ran and differ from the baseline (failures excluded).
  [[nodiscard]] std::size_t variable_count() const;

  /// Quarantined outcomes (crashed or failed to build on every attempt).
  [[nodiscard]] std::size_t failed_count() const;

  /// Outcomes that needed a retry to complete.
  [[nodiscard]] std::size_t retried_count() const;

  /// Outcomes the fleet supervisor marked degraded (never executed).
  /// A subset of failed_count().
  [[nodiscard]] std::size_t degraded_count() const;

  /// Fastest outcome that compares equal to the baseline, optionally
  /// restricted to one compiler (by name).
  [[nodiscard]] const CompilationOutcome* fastest_equal(
      const std::string& compiler_name = "") const;

  /// Fastest outcome exhibiting variability (any compiler).
  [[nodiscard]] const CompilationOutcome* fastest_variable() const;

  /// min / median / max of the nonzero variabilities.
  struct VariabilityStats {
    long double min = 0.0L, median = 0.0L, max = 0.0L;
  };
  [[nodiscard]] std::optional<VariabilityStats> variability_stats() const;
};

/// Thrown when an anchor run (baseline or speed reference) fails: without
/// it no outcome can be classified, so the study cannot proceed.
class StudyAbort : public std::runtime_error {
 public:
  explicit StudyAbort(const std::string& what) : std::runtime_error(what) {}
};

struct ExploreOptions {
  /// Per-item retry budget (bounded, deterministic; see RetryPolicy).
  RetryPolicy retry;

  /// true (default): contain per-item failures in their outcome slots.
  /// false: legacy behavior -- rethrow the lowest-index failure after the
  /// space completes (the ThreadPool contract).
  bool keep_going = true;

  /// Checkpoint target: when non-null, outcomes are recorded into the
  /// database after every completed batch, so a killed study loses at
  /// most one batch.  Must outlive the explore() call.
  ResultsDb* db = nullptr;

  /// With `db`: skip space entries whose (test, compilation) row is
  /// already recorded (including quarantined rows -- failures are not
  /// re-run), prefilling their outcomes from the database.
  bool resume = false;

  /// Rows per incremental checkpoint when `db` is set (0 = one final
  /// checkpoint).  Ignored without a database.
  std::size_t checkpoint_batch = 32;

  /// Checkpoint ordinals already consumed by earlier explore() calls
  /// against the same database.  The injector's kill site counts
  /// checkpoint batches (FLIT_FAULTS=kill:N), and the work-stealing
  /// engine splits one shard's work across many explore() calls -- each
  /// claimed sub-range is its own call -- so the shard threads its running
  /// batch count through here to keep the kill firing at the N-th durable
  /// checkpoint of the *shard*, not of whichever sub-range happens to be
  /// N batches long.
  std::size_t checkpoint_ordinal_base = 0;

  /// Telemetry stamping only -- strictly off the result path.  The shard
  /// that owns this explore call and the global space index of slice
  /// element 0, so trace events carry the study item's *global* identity
  /// even when the sharded engine hands each explorer a sub-slice (the
  /// same invariance the fault injector gets from "test|triple" contexts).
  int obs_shard = 0;
  std::size_t obs_index_base = 0;

  /// Non-contiguous slices (the placement engine's cost/affinity
  /// partitions hand a rank an arbitrary index set): when non-empty, slice
  /// element i is global space item global_indices[i] and its telemetry
  /// stamp uses that index instead of obs_index_base + i.  Must match the
  /// slice length exactly (explore() throws std::invalid_argument
  /// otherwise); still telemetry-only -- results are merged by slice
  /// position, and fault-injection identity is the "test|triple" string,
  /// which no index permutation can change.
  std::span<const std::size_t> global_indices{};
};

class SpaceExplorer {
 public:
  /// `baseline` is the trusted compilation results are compared against;
  /// `speed_reference` is the compilation speedups are relative to
  /// (g++ -O0 and g++ -O2 respectively in the MFEM study).  `jobs` is the
  /// number of parallel execution lanes explore() uses (1 = serial);
  /// `cache`, when non-null, replaces the explorer's internal compilation
  /// cache (e.g. to share one cache across an explorer and Bisect drivers)
  /// and must outlive the explorer.
  SpaceExplorer(const fpsem::CodeModel* model,
                toolchain::Compilation baseline,
                toolchain::Compilation speed_reference, unsigned jobs = 1,
                toolchain::CompilationCache* cache = nullptr);

  /// Runs `test` under every compilation in `space` on `jobs()` lanes.
  /// Whole-program builds: all files under the compilation, linked by its
  /// compiler.  Compilations equal to the baseline or the speed reference
  /// reuse those runs instead of re-executing.  Outcomes are merged in
  /// space order: the result is bitwise-identical at any jobs count, with
  /// or without faults, retries, or a resume in the middle.
  ///
  /// Per-item failures are contained per `opts.keep_going`; anchor
  /// failures throw StudyAbort.
  [[nodiscard]] StudyResult explore(const TestBase& test,
                                    std::span<const toolchain::Compilation>
                                        space,
                                    const ExploreOptions& opts) const;

  [[nodiscard]] StudyResult explore(
      const TestBase& test,
      std::span<const toolchain::Compilation> space) const {
    return explore(test, space, ExploreOptions{});
  }

  /// Runs one whole-program compilation of `test`.
  [[nodiscard]] RunOutput run_whole_program(
      const TestBase& test, const toolchain::Compilation& c) const;

  void set_jobs(unsigned jobs) { jobs_ = jobs >= 1 ? jobs : 1; }
  [[nodiscard]] unsigned jobs() const { return jobs_; }

  /// The compilation cache explore() compiles through (internal unless one
  /// was supplied at construction).
  [[nodiscard]] const toolchain::CompilationCache& cache() const {
    return *cache_;
  }

 private:
  /// Runs an anchor compilation with the retry budget; throws StudyAbort
  /// when every attempt fails.
  [[nodiscard]] RunOutput run_anchor(const TestBase& test,
                                     const toolchain::Compilation& c,
                                     const RetryPolicy& retry,
                                     const char* role) const;

  const fpsem::CodeModel* model_;
  toolchain::Compilation baseline_;
  toolchain::Compilation speed_reference_;

  /// Anchor-run memo for the last explored test.  Runs are deterministic,
  /// so reusing an anchor run is observationally identical to re-running
  /// it; the memo makes repeated explore() calls against the same test --
  /// the work-stealing engine issues one per claimed sub-range -- pay the
  /// two anchor runs once per explorer instead of once per call.  Accessed
  /// only from the thread driving explore() (item lanes never touch it).
  struct AnchorMemo {
    std::string test_name;
    RunOutput base;
    RunOutput ref;
  };
  mutable std::optional<AnchorMemo> anchor_memo_;

  mutable toolchain::CompilationCache own_cache_;
  toolchain::CompilationCache* cache_;  ///< own_cache_ or the external one
  toolchain::BuildSystem build_;
  toolchain::Linker linker_;
  Runner runner_;
  unsigned jobs_;
};

}  // namespace flit::core
