#pragma once

// Executes a FLiT test inside a linked executable.
//
// Handles data-driven input splitting, the deterministic cycle counter
// (the performance axis), injection-hook installation (the hook only fires
// when the target function's winning definition came from the instrumented
// build), and crash propagation for the mixed-executable segfaults.

#include <optional>
#include <vector>

#include "core/test_base.h"
#include "fpsem/code_model.h"
#include "fpsem/injection_hook.h"
#include "toolchain/linker.h"

namespace flit::core {

/// Thrown when the executable under test dies with a signal; Bisect
/// drivers record these as failed searches (Table 2).
class ExecutionCrash : public std::runtime_error {
 public:
  explicit ExecutionCrash(const std::string& what)
      : std::runtime_error(what) {}
};

struct RunOutput {
  std::vector<TestResult> results;  ///< one entry per data-driven chunk
  double cycles = 0.0;              ///< modeled runtime
};

class Runner {
 public:
  explicit Runner(const fpsem::CodeModel* model) : model_(model) {}

  /// Runs `test` inside `exe`.  Throws ExecutionCrash if the binary is
  /// marked as crashing.  When `hook` is an injector, it is installed only
  /// if the target function's definition came from the injected build.
  [[nodiscard]] RunOutput run(const TestBase& test,
                              const toolchain::Executable& exe,
                              fpsem::InjectionHook* hook = nullptr) const;

  /// Maximum compare() metric across the data-driven chunks of two runs.
  [[nodiscard]] static long double compare_outputs(const TestBase& test,
                                                   const RunOutput& baseline,
                                                   const RunOutput& other);

 private:
  const fpsem::CodeModel* model_;
};

/// Rounds `v` to `digits` significant decimal digits (digits <= 0: no-op).
/// Used by the Laghos study's digit-restricted comparisons (Table 4).
[[nodiscard]] long double truncate_digits(long double v, int digits);

}  // namespace flit::core
