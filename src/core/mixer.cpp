#include "core/mixer.h"

#include <algorithm>

#include "toolchain/build.h"
#include "toolchain/linker.h"

namespace flit::core {

MixRecommendation recommend_fast_math_mix(const fpsem::CodeModel* model,
                                          const TestBase& test,
                                          const MixerConfig& cfg) {
  toolchain::BuildSystem build(model);
  toolchain::Linker linker(model);
  Runner runner(model);

  const std::vector<std::string>& all_files = model->files();
  const std::vector<std::string> candidates =
      cfg.scope.empty() ? all_files : cfg.scope;

  MixRecommendation rec;

  const auto base_objs = build.compile_all(cfg.baseline);
  const RunOutput base_out =
      runner.run(test, linker.link(base_objs, cfg.baseline.compiler));
  ++rec.executions;
  rec.baseline_cycles = base_out.cycles;

  // Run with `fast` files on the aggressive compilation, rest baseline.
  const auto run_mix =
      [&](const std::vector<std::string>& fast) -> RunOutput {
    std::vector<toolchain::ObjectFile> objs;
    objs.reserve(all_files.size());
    for (std::size_t i = 0; i < all_files.size(); ++i) {
      const bool aggressive =
          std::find(fast.begin(), fast.end(), all_files[i]) != fast.end();
      objs.push_back(aggressive
                         ? build.compile(all_files[i], cfg.aggressive)
                         : base_objs[i]);
    }
    ++rec.executions;
    return runner.run(test, linker.link(objs, cfg.baseline.compiler));
  };
  const auto metric = [&](const RunOutput& out) {
    return Runner::compare_outputs(test, base_out, out);
  };

  // Fast path: everything aggressive already within tolerance?
  {
    const RunOutput all_fast = run_mix(candidates);
    const long double v = metric(all_fast);
    if (v <= cfg.tolerance) {
      rec.fast_files = candidates;
      rec.variability = v;
      rec.mixed_cycles = all_fast.cycles;
      return rec;
    }
  }

  // Rank candidates by their individual contribution (cheapest first).
  struct Ranked {
    std::string file;
    long double value;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(candidates.size());
  for (const std::string& f : candidates) {
    ranked.push_back(Ranked{f, metric(run_mix({f}))});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Ranked& a, const Ranked& b) {
                     return a.value < b.value;
                   });

  // Greedy admission with re-verification of every accepted step.
  std::vector<std::string> accepted;
  long double accepted_value = 0.0L;
  double accepted_cycles = rec.baseline_cycles;
  for (const Ranked& r : ranked) {
    if (r.value > cfg.tolerance) {
      rec.precise_files.push_back(r.file);
      continue;  // cannot possibly be admitted alone, let alone jointly
    }
    std::vector<std::string> trial = accepted;
    trial.push_back(r.file);
    const RunOutput out = run_mix(trial);
    const long double v = metric(out);
    if (v <= cfg.tolerance) {
      accepted = std::move(trial);
      accepted_value = v;
      accepted_cycles = out.cycles;
    } else {
      rec.precise_files.push_back(r.file);
    }
  }

  rec.fast_files = std::move(accepted);
  rec.variability = accepted_value;
  rec.mixed_cycles = accepted_cycles;
  return rec;
}

}  // namespace flit::core
