#include "core/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>

namespace flit::core {

unsigned default_jobs() {
  if (const char* env = std::getenv("FLIT_JOBS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return static_cast<unsigned>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

struct ThreadPool::Batch {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<unsigned> active{0};  ///< workers currently inside run_share
  std::atomic<bool> failed{false};
  std::vector<std::exception_ptr> errors;  // index-addressed, pre-sized

  /// Claims and runs indices until the range is exhausted.  Every index
  /// runs even after a failure: claimed work always completes, so the
  /// caller can wait on a single completion count, and the lowest-index
  /// exception -- the one a serial loop would have thrown -- is always
  /// recorded.
  void run_share() {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        (*fn)(i);
      } catch (...) {
        errors[i] = std::current_exception();
        failed.store(true, std::memory_order_release);
      }
      completed.fetch_add(1, std::memory_order_acq_rel);
    }
  }
};

ThreadPool::ThreadPool(unsigned jobs) : jobs_(jobs >= 1 ? jobs : 1) {
  workers_.reserve(jobs_ - 1);
  for (unsigned w = 1; w < jobs_; ++w) {
    workers_.emplace_back([this](std::stop_token st) { worker_loop(st); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // Under the lock so a worker between its predicate check and blocking
    // cannot miss the stop request (lost wakeup).
    std::lock_guard lock(mu_);
    for (auto& w : workers_) w.request_stop();
  }
  work_cv_.notify_all();
  // Join explicitly: the condition variables are destroyed before the
  // jthread members (reverse declaration order), so no worker may still
  // be inside wait() when this destructor body returns.
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::stop_token st) {
  std::uint64_t seen = 0;
  while (true) {
    Batch* batch = nullptr;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [&] {
        return st.stop_requested() ||
               (batch_ != nullptr && generation_ != seen);
      });
      if (st.stop_requested()) return;
      seen = generation_;
      batch = batch_;
      // Registered under the lock: the caller's completion check (also
      // under the lock) either sees this worker as active or the batch is
      // already cleared before the worker could have grabbed it.
      batch->active.fetch_add(1, std::memory_order_relaxed);
    }
    batch->run_share();
    batch->active.fetch_sub(1, std::memory_order_release);
    // Lock-bounce before notifying: serializes with the caller's predicate
    // check so the final completion count is never announced into the gap
    // between that check and the caller blocking (lost wakeup).
    { std::lock_guard lock(mu_); }
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs_ <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  Batch batch;
  batch.n = n;
  batch.fn = &fn;
  batch.errors.resize(n);

  {
    std::lock_guard lock(mu_);
    batch_ = &batch;
    ++generation_;
  }
  work_cv_.notify_all();

  batch.run_share();  // the calling thread is a full participant

  {
    std::unique_lock lock(mu_);
    done_cv_.wait(lock, [&] {
      // Both conditions matter: every index done, and no worker still
      // holding a pointer into this stack-allocated batch.
      return batch.completed.load(std::memory_order_acquire) == batch.n &&
             batch.active.load(std::memory_order_acquire) == 0;
    });
    batch_ = nullptr;
  }

  if (batch.failed.load(std::memory_order_acquire)) {
    for (std::size_t i = 0; i < n; ++i) {
      if (batch.errors[i]) std::rethrow_exception(batch.errors[i]);
    }
  }
}

}  // namespace flit::core
