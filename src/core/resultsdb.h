#pragma once

// File-backed results database (upstream FLiT records every run in
// SQLite; this is the same layer as a dependency-free TSV store).  One
// row per (test, compilation) outcome; appends merge with existing rows
// so incremental studies accumulate, and queries drive the report layer.

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/explorer.h"

namespace flit::core {

struct ResultRow {
  std::string test_name;
  std::string compilation;  ///< canonical Compilation::str()
  double speedup = 0.0;
  long double variability = 0.0L;

  [[nodiscard]] bool bitwise_equal() const { return variability == 0.0L; }

  friend bool operator==(const ResultRow&, const ResultRow&) = default;
};

/// TSV-backed store of study outcomes.
class ResultsDb {
 public:
  /// Opens (or creates on first save) the database at `path`.
  explicit ResultsDb(std::filesystem::path path);

  /// Merges a study's outcomes (replacing rows with the same
  /// test/compilation key) and persists to disk.
  void record(const StudyResult& study);

  /// All rows for one test, in insertion order.
  [[nodiscard]] std::vector<ResultRow> rows_for(
      const std::string& test_name) const;

  /// The row for one (test, compilation) pair, if present.
  [[nodiscard]] std::optional<ResultRow> find(
      const std::string& test_name, const std::string& compilation) const;

  /// Distinct test names present in the database.
  [[nodiscard]] std::vector<std::string> tests() const;

  [[nodiscard]] std::size_t size() const { return rows_.size(); }

  /// Reloads from disk, discarding in-memory state.
  void reload();

 private:
  void load();
  void save() const;

  std::filesystem::path path_;
  std::vector<ResultRow> rows_;
};

}  // namespace flit::core
