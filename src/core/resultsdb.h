#pragma once

// File-backed results database (upstream FLiT records every run in
// SQLite; this is the same layer as a dependency-free TSV store).  One
// row per (test, compilation) outcome -- including crashed and
// build-failed outcomes, which is what makes studies resumable: a killed
// `flit explore --db r.tsv --resume` skips every recorded row and
// converges to the same database an uninterrupted run produces.  The one
// status a resume does NOT skip is "degraded" (the fleet supervisor ran
// out of live ranks before the item ever executed): re-running with
// --resume fills those cells in and converges to the unfaulted bytes.
//
// Durability: save() writes a temporary file in the database's directory
// and renames it into place, so a crash mid-save never bricks the store;
// load() tolerates a truncated trailing row (dropped with a warning) and
// accepts the pre-status four-column header for databases written before
// failure accounting existed.

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/explorer.h"

namespace flit::core {

struct ResultRow {
  std::string test_name;
  std::string compilation;  ///< canonical Compilation::str()
  double speedup = 0.0;
  long double variability = 0.0L;
  OutcomeStatus status = OutcomeStatus::Ok;
  std::string reason;  ///< failure (or recovered-fault) reason; no tabs

  [[nodiscard]] bool ok() const {
    return status == OutcomeStatus::Ok || status == OutcomeStatus::Retried;
  }
  [[nodiscard]] bool bitwise_equal() const {
    return ok() && variability == 0.0L;
  }

  friend bool operator==(const ResultRow&, const ResultRow&) = default;
};

/// TSV-backed store of study outcomes.
class ResultsDb {
 public:
  /// Opens (or creates on first save) the database at `path`.
  explicit ResultsDb(std::filesystem::path path);

  /// Merges a study's outcomes (replacing rows with the same
  /// test/compilation key) and persists to disk atomically.
  void record(const StudyResult& study);

  /// Upserts foreign rows in memory (same key semantics as record)
  /// without touching disk; they persist with the next record().  The
  /// work-stealing resume path seeds every shard's database with the
  /// union of all shard checkpoints this way, so a row a thief shard
  /// recorded is found no matter which shard re-owns its index.
  void merge_rows(const std::vector<ResultRow>& rows);

  /// Every row, in insertion order.
  [[nodiscard]] const std::vector<ResultRow>& rows() const { return rows_; }

  /// All rows for one test, in insertion order.
  [[nodiscard]] std::vector<ResultRow> rows_for(
      const std::string& test_name) const;

  /// The row for one (test, compilation) pair, if present.
  [[nodiscard]] std::optional<ResultRow> find(
      const std::string& test_name, const std::string& compilation) const;

  /// Distinct test names present in the database.
  [[nodiscard]] std::vector<std::string> tests() const;

  [[nodiscard]] std::size_t size() const { return rows_.size(); }

  /// Reloads from disk, discarding in-memory state.
  void reload();

 private:
  void load();
  void save() const;

  std::filesystem::path path_;
  std::vector<ResultRow> rows_;
};

}  // namespace flit::core
