#pragma once

// The multi-level workflow of Figure 1, as a single driver:
//   Level 1 -- run the test under every compilation of the space and
//              determine which induce variability,
//   Level 2 -- chart reproducibility vs. performance and recommend the
//              fastest acceptable compilation,
//   Level 3 -- for variable compilations (when the fastest reproducible
//              one is not sufficient, or for root-causing), run the
//              hierarchical Bisect down to files and functions.
//
// Fault isolation mirrors the paper's evaluation: quarantined space
// entries (crashed / failed to build on every attempt) are excluded from
// the bisect phase, and a bisect that itself dies is recorded as a
// Table-2-style failed search instead of aborting the remaining bisects.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "core/explorer.h"
#include "core/hierarchy.h"

namespace flit::core {

/// A drop-in replacement for the workflow's Level 1/2 exploration.  Must
/// honor the SpaceExplorer::explore contract: outcomes in space order,
/// bitwise-identical to a serial single-process run (the sharded engine in
/// src/dist provides one via ShardCoordinator::explore_override).
using ExploreFn = std::function<StudyResult(
    const TestBase&, std::span<const toolchain::Compilation>)>;

struct WorkflowOptions {
  toolchain::Compilation baseline;         ///< trusted compilation
  toolchain::Compilation speed_reference;  ///< speedups relative to this

  /// Bisect every variability-inducing compilation (Level 3).  Set to
  /// false to stop after the reproducibility/performance analysis.
  bool run_bisect = true;

  /// Cap on the number of variable compilations to bisect (0 = all).
  std::size_t max_bisects = 0;

  int k = 0;       ///< BisectBiggest k (0 = BisectAll)
  int digits = 0;  ///< digit-restricted comparison (0 = full precision)

  /// Parallel execution lanes for the space exploration and for the
  /// per-variable-compilation bisects (1 = serial).  Any value produces a
  /// report bitwise-identical to the serial one.
  unsigned jobs = 1;

  /// Fault-tolerance knobs for the exploration phase (retry budget,
  /// keep-going containment, checkpoint database, resume).  The
  /// keep_going flag also governs the bisect phase: when false, a
  /// throwing bisect aborts the workflow (legacy behavior).
  ExploreOptions explore;

  /// When set, replaces the Level 1/2 exploration entirely (jobs and the
  /// `explore` knobs above are then the override's responsibility).  The
  /// bisect phase is unchanged: it consumes the returned StudyResult and
  /// compiles through its own cache.
  ExploreFn explore_override;
};

struct VariableCompilationReport {
  CompilationOutcome outcome;
  HierarchicalOutcome bisect;
};

struct WorkflowReport {
  StudyResult study;

  /// Fastest compilation that is bitwise-equal to the baseline (null if
  /// none exists).  Points into study.outcomes.
  const CompilationOutcome* fastest_reproducible = nullptr;
  /// Fastest compilation overall, reproducible or not.
  const CompilationOutcome* fastest_any = nullptr;

  std::vector<VariableCompilationReport> bisects;

  /// Variable compilations Level 3 did not bisect because the
  /// max_bisects cap cut the selection short (0 when every variable
  /// compilation was bisected -- including when the cap is disabled).
  std::size_t bisects_skipped = 0;
  /// The cap that produced bisects_skipped (opts.max_bisects).
  std::size_t max_bisects = 0;

  /// Bisects that ended as failed searches (crashed or aborted).
  [[nodiscard]] std::size_t failed_bisect_count() const;
};

/// Runs the Figure 1 workflow for one test over one compilation space.
[[nodiscard]] WorkflowReport run_workflow(
    const fpsem::CodeModel* model, const TestBase& test,
    std::span<const toolchain::Compilation> space,
    const WorkflowOptions& opts);

}  // namespace flit::core
