#include "core/runner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/faults.h"
#include "obs/session.h"

namespace flit::core {

RunOutput Runner::run(const TestBase& test, const toolchain::Executable& exe,
                      fpsem::InjectionHook* hook) const {
  // The run site throws ExecutionCrash (not InjectedFault) so every
  // existing crash path -- bisect failed-search recording, explore
  // containment -- treats an injected signal exactly like a real one.
  if (FaultInjector::global().any_armed() &&
      FaultInjector::global().should_fail(FaultSite::Run, test.name())) {
    obs::metrics().counter("faults.injected").add();
    obs::metrics().counter("faults.injected.run").add();
    throw ExecutionCrash("injected fault: simulated signal while running " +
                         test.name());
  }
  if (exe.crashes) throw ExecutionCrash(exe.crash_reason);

  fpsem::EvalContext ctx(exe.map);
  if (hook != nullptr) {
    const bool install =
        hook->mode() == fpsem::InjectionHook::Mode::Record ||
        (hook->target_fn() < exe.from_injected.size() &&
         exe.from_injected[hook->target_fn()]);
    if (install) ctx.set_injection_hook(hook);
  }

  const std::vector<double> input = test.getDefaultInput();
  const std::size_t per_run = test.getInputsPerRun();

  RunOutput out;
  if (per_run == 0 || input.size() <= per_run) {
    out.results.push_back(test.run_impl(input, ctx));
  } else {
    // Data-driven testing: split the input into per_run-sized chunks and
    // execute the test once per chunk.
    for (std::size_t i = 0; i + per_run <= input.size(); i += per_run) {
      std::vector<double> chunk(input.begin() + static_cast<std::ptrdiff_t>(i),
                                input.begin() +
                                    static_cast<std::ptrdiff_t>(i + per_run));
      out.results.push_back(test.run_impl(chunk, ctx));
    }
  }
  out.cycles = ctx.counter().cycles();
  return out;
}

long double Runner::compare_outputs(const TestBase& test,
                                    const RunOutput& baseline,
                                    const RunOutput& other) {
  if (baseline.results.size() != other.results.size()) return HUGE_VALL;
  long double worst = 0.0L;
  for (std::size_t i = 0; i < baseline.results.size(); ++i) {
    const long double v =
        test.compare_results(baseline.results[i], other.results[i]);
    if (std::isnan(static_cast<double>(v))) return HUGE_VALL;
    worst = std::max(worst, v);
  }
  return worst;
}

long double truncate_digits(long double v, int digits) {
  if (digits <= 0 || v == 0.0L || !std::isfinite(static_cast<double>(v))) {
    return v;
  }
  // Round through a decimal scientific rendering: exact decimal semantics,
  // no power-of-ten rounding artifacts.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*Le", digits - 1, v);
  return strtold(buf, nullptr);
}

}  // namespace flit::core
