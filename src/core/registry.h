#pragma once

// Test registry: FLIT_REGISTER_TEST(MyTest) makes a test class visible to
// the runner and drivers by name, mirroring upstream FLiT's registration
// macro.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/test_base.h"

namespace flit::core {

class TestRegistry {
 public:
  using Factory = std::function<std::unique_ptr<TestBase>()>;

  void add(const std::string& name, Factory f);

  /// Instantiates a registered test; throws std::out_of_range if unknown.
  [[nodiscard]] std::unique_ptr<TestBase> create(
      const std::string& name) const;

  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] bool contains(const std::string& name) const;

 private:
  std::map<std::string, Factory> factories_;
};

TestRegistry& global_test_registry();

namespace detail {
struct TestRegistrar {
  TestRegistrar(const std::string& name, TestRegistry::Factory f);
};
}  // namespace detail

}  // namespace flit::core

/// Registers `TestClass` (a TestBase subclass with a default constructor
/// and a name() returning #TestClass) with the global registry.
#define FLIT_REGISTER_TEST(TestClass)                                   \
  static const ::flit::core::detail::TestRegistrar                      \
      flit_registrar_##TestClass{#TestClass, [] {                       \
        return std::unique_ptr<::flit::core::TestBase>(                 \
            std::make_unique<TestClass>());                             \
      }}
