#include "core/registry.h"

#include <stdexcept>

namespace flit::core {

void TestRegistry::add(const std::string& name, Factory f) {
  auto [it, inserted] = factories_.emplace(name, std::move(f));
  if (!inserted) {
    throw std::invalid_argument("duplicate test registration: " + name);
  }
}

std::unique_ptr<TestBase> TestRegistry::create(const std::string& name) const {
  return factories_.at(name)();
}

std::vector<std::string> TestRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [k, v] : factories_) out.push_back(k);
  return out;
}

bool TestRegistry::contains(const std::string& name) const {
  return factories_.contains(name);
}

TestRegistry& global_test_registry() {
  static TestRegistry reg;
  return reg;
}

namespace detail {
TestRegistrar::TestRegistrar(const std::string& name,
                             TestRegistry::Factory f) {
  global_test_registry().add(name, std::move(f));
}
}  // namespace detail

}  // namespace flit::core
