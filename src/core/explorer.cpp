#include "core/explorer.h"

#include <algorithm>

#include "core/parallel.h"

namespace flit::core {

std::size_t StudyResult::variable_count() const {
  return static_cast<std::size_t>(
      std::count_if(outcomes.begin(), outcomes.end(),
                    [](const CompilationOutcome& o) {
                      return !o.bitwise_equal();
                    }));
}

const CompilationOutcome* StudyResult::fastest_equal(
    const std::string& compiler_name) const {
  const CompilationOutcome* best = nullptr;
  for (const CompilationOutcome& o : outcomes) {
    if (!o.bitwise_equal()) continue;
    if (!compiler_name.empty() && o.comp.compiler.name != compiler_name) {
      continue;
    }
    if (best == nullptr || o.speedup > best->speedup) best = &o;
  }
  return best;
}

const CompilationOutcome* StudyResult::fastest_variable() const {
  const CompilationOutcome* best = nullptr;
  for (const CompilationOutcome& o : outcomes) {
    if (o.bitwise_equal()) continue;
    if (best == nullptr || o.speedup > best->speedup) best = &o;
  }
  return best;
}

std::optional<StudyResult::VariabilityStats> StudyResult::variability_stats()
    const {
  std::vector<long double> v;
  for (const CompilationOutcome& o : outcomes) {
    if (!o.bitwise_equal()) v.push_back(o.variability);
  }
  if (v.empty()) return std::nullopt;
  std::sort(v.begin(), v.end());
  VariabilityStats s;
  s.min = v.front();
  s.max = v.back();
  const std::size_t mid = v.size() / 2;
  s.median =
      v.size() % 2 == 1 ? v[mid] : (v[mid - 1] + v[mid]) / 2.0L;
  return s;
}

SpaceExplorer::SpaceExplorer(const fpsem::CodeModel* model,
                             toolchain::Compilation baseline,
                             toolchain::Compilation speed_reference,
                             unsigned jobs,
                             toolchain::CompilationCache* cache)
    : model_(model),
      baseline_(std::move(baseline)),
      speed_reference_(std::move(speed_reference)),
      cache_(cache != nullptr ? cache : &own_cache_),
      build_(model, cache_),
      linker_(model),
      runner_(model) {
  set_jobs(jobs);
}

RunOutput SpaceExplorer::run_whole_program(
    const TestBase& test, const toolchain::Compilation& c) const {
  const auto objs = build_.compile_all(c);
  const toolchain::Executable exe = linker_.link(objs, c.compiler);
  return runner_.run(test, exe);
}

StudyResult SpaceExplorer::explore(
    const TestBase& test,
    std::span<const toolchain::Compilation> space) const {
  StudyResult result;
  result.test_name = test.name();

  // The two anchor runs; when they are the same compilation (or appear
  // inside the space) the run is executed once and reused -- runs are
  // deterministic, so reuse is observationally identical to re-running.
  const RunOutput base = run_whole_program(test, baseline_);
  const RunOutput ref = speed_reference_ == baseline_
                            ? base
                            : run_whole_program(test, speed_reference_);

  result.outcomes.resize(space.size());
  ThreadPool pool(jobs_);
  pool.parallel_for(space.size(), [&](std::size_t i) {
    const toolchain::Compilation& c = space[i];
    const RunOutput* reused = nullptr;
    if (c == baseline_) {
      reused = &base;
    } else if (c == speed_reference_) {
      reused = &ref;
    }
    RunOutput fresh;
    if (reused == nullptr) {
      fresh = run_whole_program(test, c);
      reused = &fresh;
    }
    CompilationOutcome& o = result.outcomes[i];
    o.comp = c;
    o.variability = Runner::compare_outputs(test, base, *reused);
    o.cycles = reused->cycles;
    o.speedup = ref.cycles / reused->cycles;
  });
  return result;
}

}  // namespace flit::core
