#include "core/explorer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "core/parallel.h"
#include "core/resultsdb.h"
#include "obs/session.h"

namespace flit::core {

const char* to_string(OutcomeStatus s) {
  switch (s) {
    case OutcomeStatus::Ok: return "ok";
    case OutcomeStatus::Retried: return "retried";
    case OutcomeStatus::Crashed: return "crashed";
    case OutcomeStatus::BuildFailed: return "build-failed";
    case OutcomeStatus::Degraded: return "degraded";
  }
  return "?";
}

std::optional<OutcomeStatus> outcome_status_from(const std::string& name) {
  if (name == "ok") return OutcomeStatus::Ok;
  if (name == "retried") return OutcomeStatus::Retried;
  if (name == "crashed") return OutcomeStatus::Crashed;
  if (name == "build-failed") return OutcomeStatus::BuildFailed;
  if (name == "degraded") return OutcomeStatus::Degraded;
  return std::nullopt;
}

std::size_t StudyResult::variable_count() const {
  return static_cast<std::size_t>(
      std::count_if(outcomes.begin(), outcomes.end(),
                    [](const CompilationOutcome& o) {
                      return o.ok() && !o.bitwise_equal();
                    }));
}

std::size_t StudyResult::failed_count() const {
  return static_cast<std::size_t>(
      std::count_if(outcomes.begin(), outcomes.end(),
                    [](const CompilationOutcome& o) { return o.failed(); }));
}

std::size_t StudyResult::retried_count() const {
  return static_cast<std::size_t>(std::count_if(
      outcomes.begin(), outcomes.end(), [](const CompilationOutcome& o) {
        return o.status == OutcomeStatus::Retried;
      }));
}

std::size_t StudyResult::degraded_count() const {
  return static_cast<std::size_t>(std::count_if(
      outcomes.begin(), outcomes.end(), [](const CompilationOutcome& o) {
        return o.status == OutcomeStatus::Degraded;
      }));
}

const CompilationOutcome* StudyResult::fastest_equal(
    const std::string& compiler_name) const {
  const CompilationOutcome* best = nullptr;
  for (const CompilationOutcome& o : outcomes) {
    if (!o.bitwise_equal()) continue;
    if (!compiler_name.empty() && o.comp.compiler.name != compiler_name) {
      continue;
    }
    if (best == nullptr || o.speedup > best->speedup) best = &o;
  }
  return best;
}

const CompilationOutcome* StudyResult::fastest_variable() const {
  const CompilationOutcome* best = nullptr;
  for (const CompilationOutcome& o : outcomes) {
    if (o.failed() || o.bitwise_equal()) continue;
    if (best == nullptr || o.speedup > best->speedup) best = &o;
  }
  return best;
}

std::optional<StudyResult::VariabilityStats> StudyResult::variability_stats()
    const {
  std::vector<long double> v;
  for (const CompilationOutcome& o : outcomes) {
    if (o.ok() && !o.bitwise_equal()) v.push_back(o.variability);
  }
  if (v.empty()) return std::nullopt;
  std::sort(v.begin(), v.end());
  VariabilityStats s;
  s.min = v.front();
  s.max = v.back();
  const std::size_t mid = v.size() / 2;
  s.median =
      v.size() % 2 == 1 ? v[mid] : (v[mid - 1] + v[mid]) / 2.0L;
  return s;
}

SpaceExplorer::SpaceExplorer(const fpsem::CodeModel* model,
                             toolchain::Compilation baseline,
                             toolchain::Compilation speed_reference,
                             unsigned jobs,
                             toolchain::CompilationCache* cache)
    : model_(model),
      baseline_(std::move(baseline)),
      speed_reference_(std::move(speed_reference)),
      cache_(cache != nullptr ? cache : &own_cache_),
      build_(model, cache_),
      linker_(model),
      runner_(model) {
  set_jobs(jobs);
}

RunOutput SpaceExplorer::run_whole_program(
    const TestBase& test, const toolchain::Compilation& c) const {
  // The per-compilation phase breakdown: build/link/run spans stamped with
  // the calling thread's (shard, index, attempt) context.  Inert (a null
  // check) when tracing is off.
  obs::Tracer* tr = obs::tracer_if_enabled();
  std::vector<toolchain::ObjectFile> objs;
  {
    obs::Span span(tr, "build", "explore", c.str());
    objs = build_.compile_all(c);
  }
  toolchain::Executable exe;
  {
    obs::Span span(tr, "link", "explore", c.str());
    exe = linker_.link(objs, c.compiler);
  }
  obs::Span span(tr, "run", "explore", c.str());
  RunOutput out = runner_.run(test, exe);
  span.set_cost(out.cycles);
  return out;
}

RunOutput SpaceExplorer::run_anchor(const TestBase& test,
                                    const toolchain::Compilation& c,
                                    const RetryPolicy& retry,
                                    const char* role) const {
  std::string last;
  for (int attempt = 0; attempt < retry.attempts(); ++attempt) {
    FaultInjector::ScopedTrial trial(test.name() + "|" + c.str(), attempt);
    obs::Span span(obs::tracer_if_enabled(), "anchor", role, c.str());
    obs::metrics().counter("explore.anchor_runs").add();
    try {
      return run_whole_program(test, c);
    } catch (const std::exception& e) {
      last = e.what();
    }
  }
  throw StudyAbort(std::string("explore: ") + role + " compilation '" +
                   c.str() + "' failed after " +
                   std::to_string(retry.attempts()) +
                   " attempt(s): " + last +
                   " (the study cannot classify outcomes without it)");
}

StudyResult SpaceExplorer::explore(
    const TestBase& test, std::span<const toolchain::Compilation> space,
    const ExploreOptions& opts) const {
  StudyResult result;
  result.test_name = test.name();

  if (!opts.global_indices.empty() &&
      opts.global_indices.size() != space.size()) {
    throw std::invalid_argument(
        "explore: " + std::to_string(opts.global_indices.size()) +
        " global indices for a " + std::to_string(space.size()) +
        "-item slice");
  }
  // The telemetry index of slice element i (the item's global identity).
  const auto global_index = [&](std::size_t i) {
    return opts.global_indices.empty() ? opts.obs_index_base + i
                                       : opts.global_indices[i];
  };

  // Study-level accounting.  Counter handles are stable across
  // MetricsRegistry::reset(), so the static lookups are safe; the
  // histogram accumulates in fixed-point, so its totals are independent of
  // the jobs count and scheduling.
  static obs::Counter& m_executed = obs::metrics().counter("explore.executed");
  static obs::Counter& m_resumed = obs::metrics().counter("explore.resumed");
  static obs::Counter& m_retried = obs::metrics().counter("explore.retried");
  static obs::Counter& m_quarantined =
      obs::metrics().counter("explore.quarantined");
  static obs::Counter& m_attempts = obs::metrics().counter("explore.attempts");
  static obs::Histogram& m_cycles =
      obs::metrics().histogram("explore.cycles", obs::cycle_buckets());
  obs::Span explore_span(obs::tracer_if_enabled(), "explore", "explore",
                         result.test_name);

  // The two anchor runs; when they are the same compilation (or appear
  // inside the space) the run is executed once and reused -- runs are
  // deterministic, so reuse is observationally identical to re-running.
  // Anchor failures are fatal: every outcome is classified against them.
  // The memo carries the anchors across repeated explore() calls for the
  // same test (the work-stealing engine issues one call per claim).
  if (!anchor_memo_.has_value() ||
      anchor_memo_->test_name != result.test_name) {
    AnchorMemo memo;
    memo.test_name = result.test_name;
    memo.base = run_anchor(test, baseline_, opts.retry, "baseline");
    memo.ref = speed_reference_ == baseline_
                   ? memo.base
                   : run_anchor(test, speed_reference_, opts.retry,
                                "speed-reference");
    anchor_memo_ = std::move(memo);
  }
  const RunOutput& base = anchor_memo_->base;
  const RunOutput& ref = anchor_memo_->ref;

  result.outcomes.resize(space.size());

  // Resume: prefill outcomes already recorded for this test (quarantined
  // rows included -- a failure that exhausted its retry budget once is
  // not re-run by a later study) and skip their execution.  Degraded rows
  // are the exception: the fleet supervisor records them when it ran out
  // of live ranks, so the item itself was never attempted -- a resume
  // re-runs it rather than locking the infrastructure failure in.
  std::vector<char> prefilled(space.size(), 0);
  if (opts.db != nullptr && opts.resume) {
    for (std::size_t i = 0; i < space.size(); ++i) {
      const auto row = opts.db->find(result.test_name, space[i].str());
      if (!row.has_value()) continue;
      if (row->status == OutcomeStatus::Degraded) continue;
      CompilationOutcome& o = result.outcomes[i];
      o.comp = space[i];
      o.speedup = row->speedup;
      o.variability = row->variability;
      o.status = row->status;
      o.reason = row->reason;
      prefilled[i] = 1;
      m_resumed.add();
    }
  }

  const auto run_item = [&](std::size_t i) {
    const toolchain::Compilation& c = space[i];
    CompilationOutcome& o = result.outcomes[i];
    o.comp = c;

    const RunOutput* reused = nullptr;
    if (c == baseline_) {
      reused = &base;
    } else if (c == speed_reference_) {
      reused = &ref;
    }

    std::string reason;
    OutcomeStatus failure = OutcomeStatus::Crashed;
    const int attempts = opts.retry.attempts();
    m_executed.add();
    for (int attempt = 0; attempt < attempts; ++attempt) {
      FaultInjector::ScopedTrial trial(result.test_name + "|" + c.str(),
                                       attempt);
      // The telemetry stamp: the item's *global* identity (shard + global
      // space index), mirroring the trial context above.
      obs::ScopedItem obs_item(opts.obs_shard, global_index(i), attempt);
      obs::Span span(obs::tracer_if_enabled(), "compilation", "explore",
                     c.str());
      m_attempts.add();
      try {
        RunOutput fresh;
        const RunOutput* run = reused;
        if (run == nullptr) {
          fresh = run_whole_program(test, c);
          run = &fresh;
        }
        o.variability = Runner::compare_outputs(test, base, *run);
        o.cycles = run->cycles;
        o.speedup = ref.cycles / run->cycles;
        o.status = attempt == 0 ? OutcomeStatus::Ok : OutcomeStatus::Retried;
        o.attempts = attempt + 1;
        o.reason = attempt == 0 ? std::string() : "recovered from: " + reason;
        span.set_cost(o.cycles);
        if (o.status == OutcomeStatus::Retried) m_retried.add();
        m_cycles.observe(o.cycles);
        return;
      } catch (const ExecutionCrash& e) {
        failure = OutcomeStatus::Crashed;
        reason = e.what();
        if (!opts.keep_going && attempt + 1 == attempts) throw;
      } catch (const std::exception& e) {
        failure = OutcomeStatus::BuildFailed;
        reason = e.what();
        if (!opts.keep_going && attempt + 1 == attempts) throw;
      }
    }
    // Quarantined: every attempt failed.
    m_quarantined.add();
    o.status = failure;
    o.attempts = attempts;
    o.reason = reason;
    o.variability = 0.0L;
    o.cycles = 0.0;
    o.speedup = 0.0;
  };

  ThreadPool pool(jobs_);
  const std::size_t batch =
      opts.db != nullptr && opts.checkpoint_batch > 0 ? opts.checkpoint_batch
                                                      : space.size();
  std::size_t batch_ordinal = opts.checkpoint_ordinal_base;
  for (std::size_t start = 0; start < space.size(); start += batch) {
    const std::size_t n = std::min(batch, space.size() - start);
    pool.parallel_for(n, [&](std::size_t j) {
      const std::size_t i = start + j;
      if (!prefilled[i]) run_item(i);
    });

    if (opts.db != nullptr) {
      // Checkpoint the freshly computed slice (resumed rows are already
      // on disk), so a killed study loses at most one batch.
      StudyResult slice;
      slice.test_name = result.test_name;
      for (std::size_t i = start; i < start + n; ++i) {
        if (!prefilled[i]) slice.outcomes.push_back(result.outcomes[i]);
      }
      if (!slice.outcomes.empty()) opts.db->record(slice);

      ++batch_ordinal;
      if (FaultInjector::global().should_kill(batch_ordinal)) {
        // The kill switch of the resume smoke test: die the way SIGKILL
        // would, after the checkpoint is durably on disk.
        std::fprintf(stderr,
                     "explore: injected kill after checkpoint batch %zu\n",
                     batch_ordinal);
        std::fflush(nullptr);
        std::_Exit(137);
      }
    }
  }
  return result;
}

}  // namespace flit::core
