#include "core/explorer.h"

#include <algorithm>

namespace flit::core {

std::size_t StudyResult::variable_count() const {
  return static_cast<std::size_t>(
      std::count_if(outcomes.begin(), outcomes.end(),
                    [](const CompilationOutcome& o) {
                      return !o.bitwise_equal();
                    }));
}

const CompilationOutcome* StudyResult::fastest_equal(
    const std::string& compiler_name) const {
  const CompilationOutcome* best = nullptr;
  for (const CompilationOutcome& o : outcomes) {
    if (!o.bitwise_equal()) continue;
    if (!compiler_name.empty() && o.comp.compiler.name != compiler_name) {
      continue;
    }
    if (best == nullptr || o.speedup > best->speedup) best = &o;
  }
  return best;
}

const CompilationOutcome* StudyResult::fastest_variable() const {
  const CompilationOutcome* best = nullptr;
  for (const CompilationOutcome& o : outcomes) {
    if (o.bitwise_equal()) continue;
    if (best == nullptr || o.speedup > best->speedup) best = &o;
  }
  return best;
}

std::optional<StudyResult::VariabilityStats> StudyResult::variability_stats()
    const {
  std::vector<long double> v;
  for (const CompilationOutcome& o : outcomes) {
    if (!o.bitwise_equal()) v.push_back(o.variability);
  }
  if (v.empty()) return std::nullopt;
  std::sort(v.begin(), v.end());
  VariabilityStats s;
  s.min = v.front();
  s.max = v.back();
  s.median = v[v.size() / 2];
  return s;
}

SpaceExplorer::SpaceExplorer(const fpsem::CodeModel* model,
                             toolchain::Compilation baseline,
                             toolchain::Compilation speed_reference)
    : model_(model),
      baseline_(std::move(baseline)),
      speed_reference_(std::move(speed_reference)),
      build_(model),
      linker_(model),
      runner_(model) {}

RunOutput SpaceExplorer::run_whole_program(
    const TestBase& test, const toolchain::Compilation& c) const {
  const auto objs = build_.compile_all(c);
  const toolchain::Executable exe = linker_.link(objs, c.compiler);
  return runner_.run(test, exe);
}

StudyResult SpaceExplorer::explore(
    const TestBase& test,
    std::span<const toolchain::Compilation> space) const {
  StudyResult result;
  result.test_name = test.name();

  const RunOutput base = run_whole_program(test, baseline_);
  const RunOutput ref = run_whole_program(test, speed_reference_);

  result.outcomes.reserve(space.size());
  for (const toolchain::Compilation& c : space) {
    const RunOutput out = run_whole_program(test, c);
    CompilationOutcome o;
    o.comp = c;
    o.variability = Runner::compare_outputs(test, base, out);
    o.cycles = out.cycles;
    o.speedup = ref.cycles / out.cycles;
    result.outcomes.push_back(std::move(o));
  }
  return result;
}

}  // namespace flit::core
