#pragma once

// The parallel substrate of the study engine.
//
// The paper's workloads are embarrassingly parallel -- 244 compilations x
// 19 MFEM examples for Table 1, thousands of injection runs for Table 5 --
// and upstream FLiT distributes exactly this sweep across cluster nodes.
// ThreadPool is the single-node analogue: a fixed set of std::jthread
// workers fed by a dynamically-chunked index counter.  Callers hand it an
// index range and a function; results are written into index-addressed
// slots by the caller, so the merged output is bitwise-identical to a
// serial loop regardless of the worker count or scheduling order.
//
// Exception semantics match serial execution too: indices are claimed in
// increasing order, every claimed index runs to completion, and the
// lowest-index exception is rethrown -- the same exception a serial loop
// would have surfaced.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flit::core {

/// Worker count for `--jobs`-style knobs: the FLIT_JOBS environment
/// variable when set to a positive integer, otherwise
/// std::thread::hardware_concurrency() (never less than 1).
[[nodiscard]] unsigned default_jobs();

class ThreadPool {
 public:
  /// A pool of `jobs` execution lanes.  The calling thread participates in
  /// every parallel_for, so the pool spawns jobs - 1 workers; jobs <= 1
  /// spawns none and parallel_for degenerates to a plain serial loop.
  explicit ThreadPool(unsigned jobs);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned jobs() const { return jobs_; }

  /// Runs fn(i) for every i in [0, n).  Indices are claimed from a shared
  /// atomic counter (coarse tasks make chunk size 1 the right grain).
  /// Blocks until every index has completed; if any fn threw, rethrows the
  /// exception of the lowest throwing index.  Not reentrant: one
  /// parallel_for per pool at a time.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Batch;

  void worker_loop(std::stop_token st);

  unsigned jobs_;
  std::vector<std::jthread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  Batch* batch_ = nullptr;  // guarded by mu_; non-null while a batch runs
};

}  // namespace flit::core
