#pragma once

// The FLiT user-facing test API (Sec. 2, "Use designer-provided tests and
// acceptance criteria").  For each test the user implements exactly the
// four methods of the paper:
//   * getInputsPerRun -- number of floating-point inputs consumed per run,
//   * getDefaultInput -- input vector; when longer than getInputsPerRun
//     the input is split and the test executed once per chunk
//     (data-driven testing),
//   * run_impl        -- the computation, returning either a long double
//     or a std::string (for structured results such as whole meshes),
//   * compare         -- a metric between baseline and test values: 0
//     means "acceptably equal", positive quantifies the variability.
//
// The one deviation from upstream FLiT: run_impl receives the EvalContext
// of the linked binary it is "running inside", because in this
// reproduction a binary is a semantics map rather than a separate process.

#include <cmath>
#include <cstddef>
#include <string>
#include <variant>
#include <vector>

#include "fpsem/env.h"

namespace flit::core {

/// A test's result: a single long double, or an arbitrary serialized
/// structure (e.g. a whole mesh) as a string.
using TestResult = std::variant<long double, std::string>;

class TestBase {
 public:
  virtual ~TestBase() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of floating-point values consumed per run (0 .. SIZE_MAX).
  [[nodiscard]] virtual std::size_t getInputsPerRun() const = 0;

  /// Default input values; if longer than getInputsPerRun(), the input is
  /// split into chunks and the test is run once per chunk.
  [[nodiscard]] virtual std::vector<double> getDefaultInput() const = 0;

  /// The actual computation under test.
  [[nodiscard]] virtual TestResult run_impl(
      const std::vector<double>& input, fpsem::EvalContext& ctx) const = 0;

  /// Metric between baseline and test results (long double variant).
  /// Returns 0 when considered equal, a positive magnitude otherwise.
  [[nodiscard]] virtual long double compare(long double baseline,
                                            long double test) const {
    return fabsl(baseline - test);
  }

  /// Metric between baseline and test results (std::string variant).
  [[nodiscard]] virtual long double compare(const std::string& baseline,
                                            const std::string& test) const {
    return baseline == test ? 0.0L : 1.0L;
  }

  /// Dispatches to the variant-appropriate compare.  Mismatched variants
  /// count as maximal variability (a crash-grade difference).
  [[nodiscard]] long double compare_results(const TestResult& baseline,
                                            const TestResult& test) const {
    if (baseline.index() != test.index()) return HUGE_VALL;
    if (std::holds_alternative<long double>(baseline)) {
      return compare(std::get<long double>(baseline),
                     std::get<long double>(test));
    }
    return compare(std::get<std::string>(baseline),
                   std::get<std::string>(test));
  }
};

}  // namespace flit::core
