#pragma once

// BisectBiggest (Sec. 2.5): a Uniform Cost Search variant of Bisect that
// finds the k *largest* contributors in decreasing order of their Test
// value, with early exit as soon as no remaining subset can beat the k-th
// found element.  It cannot dynamically verify the assumptions (unlike
// bisect_all) but is much cheaper when only the top few culprits are
// wanted -- exactly the Table 4 k=1/k=2 configurations that root-caused
// Laghos in 14 runs.

#include <queue>
#include <utility>
#include <vector>

#include "core/bisect.h"

namespace flit::core {

template <class Elem>
struct RankedFinding {
  Elem element;
  double value = 0.0;  ///< Test({element})
};

template <class Elem>
struct BisectBiggestOutcome {
  std::vector<RankedFinding<Elem>> found;  ///< decreasing Test value
  int test_calls = 0;
  int executions = 0;
};

/// Finds (up to) the `k` elements with the largest singleton Test values.
/// `k <= 0` means "all" (equivalent coverage to bisect_all, found in
/// decreasing order, but without the assumption checks).
template <class Elem>
BisectBiggestOutcome<Elem> bisect_biggest(MemoizedTest<Elem>& test,
                                          std::vector<Elem> items, int k) {
  BisectBiggestOutcome<Elem> out;
  if (items.empty()) return out;

  using Node = std::pair<double, std::vector<Elem>>;
  const auto cmp = [](const Node& a, const Node& b) {
    return a.first < b.first;  // max-heap on Test value
  };
  std::priority_queue<Node, std::vector<Node>, decltype(cmp)> queue(cmp);

  const double whole = test(items);
  if (whole > 0.0) queue.emplace(whole, std::move(items));

  const bool bounded = k > 0;
  while (!queue.empty()) {
    auto [value, set] = queue.top();
    queue.pop();
    if (value <= 0.0) continue;
    if (bounded && static_cast<int>(out.found.size()) >= k &&
        value <= out.found.back().value) {
      break;  // early exit: nothing left can beat the k-th find
    }
    if (set.size() == 1) {
      out.found.push_back(RankedFinding<Elem>{set.front(), value});
      continue;
    }
    const auto mid = static_cast<std::ptrdiff_t>(set.size() / 2);
    std::vector<Elem> d1(set.begin(), set.begin() + mid);
    std::vector<Elem> d2(set.begin() + mid, set.end());
    const double v1 = test(d1);
    const double v2 = test(d2);
    if (v1 > 0.0) queue.emplace(v1, std::move(d1));
    if (v2 > 0.0) queue.emplace(v2, std::move(d2));
  }

  if (bounded && static_cast<int>(out.found.size()) > k) {
    out.found.resize(static_cast<std::size_t>(k));
  }
  out.test_calls = test.calls();
  out.executions = test.executions();
  return out;
}

}  // namespace flit::core
