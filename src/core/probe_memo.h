#pragma once

// Shared probe memo for bisect campaigns (the blame-dedup driver of
// docs/blame-dedup.md).  Across the triples of one study the File and
// Symbol Bisect searches keep re-producing the *same linked executable*
// -- the same winning object subsets recur across every -O3 variant that
// shares a blame site -- so their runs are pure repeats.  The memo
// answers such probes from cache.
//
// Soundness: the key is the linked executable's full content (the test
// name plus every function's FnBinding, crash verdict and injection
// provenance), not the compilation triple or its semantics fingerprint.
// Two triples may share a fingerprint yet crash differently (the linker's
// hazard predicates hash raw compilation strings), but two probes with
// equal *keys* are byte-equal binaries under the same deterministic
// runner, so the cached answer is exact, not approximate.  Linking still
// happens every probe (it is cheap and produces the key); only the run
// is skipped.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/runner.h"
#include "toolchain/linker.h"

namespace flit::core {

/// Thread-safe probe-answer cache shared by many concurrent
/// BisectDrivers (wire it through BisectConfig::memo).  Must outlive
/// every driver using it.
class ProbeMemo {
 public:
  /// One memoized probe answer: either the run's output or the
  /// ExecutionCrash it raised.
  struct Entry {
    bool crashed = false;
    std::string crash_reason;  ///< valid when crashed
    RunOutput output;          ///< valid when !crashed
  };

  struct Stats {
    std::uint64_t probes = 0;   ///< lookup() calls
    std::uint64_t hits = 0;     ///< lookups answered from cache
    std::uint64_t entries = 0;  ///< distinct executables stored
  };

  /// Content key of linked executable `exe` under test `test_name`.
  /// Equal keys imply byte-equal binaries (collision-free by
  /// construction: the key *is* the serialized content).
  [[nodiscard]] static std::string key_of(const std::string& test_name,
                                          const toolchain::Executable& exe);

  /// Returns the stored answer for `key`, if any.  Counts a probe, and a
  /// hit on success.
  [[nodiscard]] std::optional<Entry> lookup(const std::string& key);

  /// Stores `entry` under `key`.  First store wins; concurrent probes of
  /// the same key compute identical entries, so dropping the repeat is
  /// harmless.
  void store(const std::string& key, Entry entry);

  [[nodiscard]] Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> map_;
  std::uint64_t probes_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace flit::core
