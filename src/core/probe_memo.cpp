#include "core/probe_memo.h"

#include <cstring>
#include <utility>

namespace flit::core {

namespace {

void append_raw(std::string& s, const void* p, std::size_t n) {
  s.append(static_cast<const char*>(p), n);
}

}  // namespace

std::string ProbeMemo::key_of(const std::string& test_name,
                              const toolchain::Executable& exe) {
  const std::size_t n = exe.map.size();
  std::string key;
  key.reserve(test_name.size() + 2 + n * 22 + exe.crash_reason.size());
  key += test_name;
  key += '\0';
  for (fpsem::FunctionId id = 0; id < n; ++id) {
    const fpsem::FnBinding& b = exe.map.binding(id);
    char bits = 0;
    if (b.sem.contract_fma) bits |= 1;
    if (b.sem.extended_precision) bits |= 2;
    if (b.sem.unsafe_math) bits |= 4;
    if (b.sem.flush_subnormals) bits |= 8;
    if (b.sem.fast_libm) bits |= 16;
    if (b.sem.exploits_ub) bits |= 32;
    if (id < exe.from_injected.size() && exe.from_injected[id]) bits |= 64;
    key += bits;
    const std::int32_t width = b.sem.reassoc_width;
    append_raw(key, &width, sizeof width);
    append_raw(key, &b.cost.time_scale, sizeof b.cost.time_scale);
    append_raw(key, &b.cost.bulk_scale, sizeof b.cost.bulk_scale);
  }
  key += exe.crashes ? '\1' : '\0';
  key += exe.crash_reason;
  return key;
}

std::optional<ProbeMemo::Entry> ProbeMemo::lookup(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++probes_;
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  ++hits_;
  return it->second;
}

void ProbeMemo::store(const std::string& key, Entry entry) {
  const std::lock_guard<std::mutex> lock(mu_);
  map_.try_emplace(key, std::move(entry));
}

ProbeMemo::Stats ProbeMemo::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return Stats{probes_, hits_, static_cast<std::uint64_t>(map_.size())};
}

}  // namespace flit::core
