#pragma once

// Fast-math mixing recommendation -- the Sec. 5 outlook implemented:
// "Such mixings can help relax numerical precision in sub-modules where
// speed matters (and result variability does not matter as much). With
// FLiT, one can identify which modules can be optimized under fast math."
//
// Given a trusted baseline compilation, an aggressive one, and a
// user-acceptable variability tolerance, the mixer computes a per-file
// recommendation: the (greedy-maximal) set of translation units that can
// be compiled aggressively while the test's compare() metric stays within
// tolerance, together with the measured variability and the modeled
// speedup of the mixed binary.

#include <string>
#include <vector>

#include "core/runner.h"
#include "core/test_base.h"
#include "toolchain/compiler.h"

namespace flit::core {

struct MixRecommendation {
  std::vector<std::string> fast_files;     ///< safe under the tolerance
  std::vector<std::string> precise_files;  ///< must stay on the baseline

  long double variability = 0.0L;  ///< compare() of the recommended mix
  double baseline_cycles = 0.0;
  double mixed_cycles = 0.0;
  int executions = 0;  ///< program runs spent building the recommendation

  [[nodiscard]] double speedup() const {
    return mixed_cycles > 0.0 ? baseline_cycles / mixed_cycles : 0.0;
  }
};

struct MixerConfig {
  toolchain::Compilation baseline;    ///< trusted compilation
  toolchain::Compilation aggressive;  ///< e.g. g++ -O3 -funsafe-...
  long double tolerance = 0.0L;       ///< acceptable compare() value

  /// Files eligible for the aggressive compilation (empty: all).
  std::vector<std::string> scope;
};

/// Greedy-maximal mix: files are ranked by their individual variability
/// contribution and admitted cheapest-first while the combined metric
/// stays within tolerance (each admission is re-verified with a real
/// mixed run, so the result is sound even when contributions interact).
MixRecommendation recommend_fast_math_mix(const fpsem::CodeModel* model,
                                          const TestBase& test,
                                          const MixerConfig& cfg);

}  // namespace flit::core
