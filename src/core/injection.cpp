#include "core/injection.h"

#include <algorithm>

#include "toolchain/build.h"
#include "toolchain/linker.h"
#include "toolchain/semantics_rules.h"

namespace flit::core {

const char* to_string(InjectionVerdict v) {
  switch (v) {
    case InjectionVerdict::Exact: return "exact find";
    case InjectionVerdict::Indirect: return "indirect find";
    case InjectionVerdict::Wrong: return "wrong find";
    case InjectionVerdict::Missed: return "missed find";
    case InjectionVerdict::NotMeasurable: return "not measurable";
  }
  return "?";
}

InjectionCampaign::InjectionCampaign(const fpsem::CodeModel* model,
                                     const TestBase* test,
                                     toolchain::Compilation build_comp)
    : model_(model), test_(test), comp_(std::move(build_comp)) {}

std::vector<fpsem::InjectionSite> InjectionCampaign::enumerate_sites() const {
  toolchain::BuildSystem build(model_);
  toolchain::Linker linker(model_);
  Runner runner(model_);

  auto hook = fpsem::InjectionHook::recorder();
  const auto objs = build.compile_all(comp_);
  const toolchain::Executable exe = linker.link(objs, comp_.compiler);
  (void)runner.run(*test_, exe, &hook);
  return hook.sites();
}

double InjectionCampaign::draw_eps(const fpsem::InjectionSite& site,
                                   fpsem::InjectOp op) {
  const std::string key = site.file + ":" + std::to_string(site.line) + ":" +
                          std::to_string(site.column) + ":" +
                          std::to_string(static_cast<int>(op));
  const std::uint64_t h = toolchain::stable_hash(key);
  // Map to (0, 1), never exactly 0.
  return (static_cast<double>(h % 1000000007ULL) + 1.0) / 1000000008.0;
}

InjectionReport InjectionCampaign::run_one(
    const InjectionExperiment& e) const {
  InjectionReport report;
  report.exp = e;

  const fpsem::FunctionInfo& fi = model_->info(e.site.fn);
  report.expected_symbol = fi.exported ? fi.name : fi.host_symbol;

  auto hook = fpsem::InjectionHook::injector(e.site, e.op, e.eps);

  BisectConfig cfg;
  cfg.baseline = comp_;
  cfg.variable = comp_;
  cfg.scope = scope_;
  cfg.variable_injected = true;
  cfg.hook = &hook;

  BisectDriver driver(model_, test_, cfg);
  const HierarchicalOutcome out = driver.run();
  report.executions = out.executions;

  if (out.crashed) {
    report.verdict = InjectionVerdict::Missed;
    return report;
  }
  if (out.whole_value == 0.0) {
    report.verdict = InjectionVerdict::NotMeasurable;
    return report;
  }
  for (const FileFinding& ff : out.findings) {
    if (ff.status == FileFinding::SymbolStatus::Found) {
      for (const SymbolFinding& sf : ff.symbols) {
        report.reported_symbols.push_back(sf.symbol);
      }
    } else {
      // File-level-only report: treat the file name as the reported unit.
      report.reported_symbols.push_back(ff.file);
    }
  }

  if (report.reported_symbols.empty()) {
    report.verdict = InjectionVerdict::Missed;
  } else if (fi.exported &&
             std::find(report.reported_symbols.begin(),
                       report.reported_symbols.end(),
                       fi.name) != report.reported_symbols.end()) {
    report.verdict = InjectionVerdict::Exact;
  } else if (!fi.exported &&
             std::find(report.reported_symbols.begin(),
                       report.reported_symbols.end(),
                       fi.host_symbol) != report.reported_symbols.end()) {
    report.verdict = InjectionVerdict::Indirect;
  } else if (std::find(report.reported_symbols.begin(),
                       report.reported_symbols.end(),
                       fi.file) != report.reported_symbols.end()) {
    // Only the right file could be reported (e.g. no exported symbols).
    report.verdict = InjectionVerdict::Indirect;
  } else {
    report.verdict = InjectionVerdict::Wrong;
  }
  return report;
}

std::vector<InjectionReport> InjectionCampaign::run_all() const {
  std::vector<InjectionReport> reports;
  const auto sites = enumerate_sites();
  static constexpr fpsem::InjectOp kOps[] = {
      fpsem::InjectOp::Add, fpsem::InjectOp::Sub, fpsem::InjectOp::Mul,
      fpsem::InjectOp::Div};
  reports.reserve(sites.size() * 4);
  for (const fpsem::InjectionSite& s : sites) {
    for (fpsem::InjectOp op : kOps) {
      InjectionExperiment e{s, op, draw_eps(s, op)};
      reports.push_back(run_one(e));
    }
  }
  return reports;
}

double InjectionCampaign::Summary::precision() const {
  const int reported = exact + indirect + wrong;
  if (reported == 0) return 1.0;
  return static_cast<double>(exact + indirect) / reported;
}

double InjectionCampaign::Summary::recall() const {
  const int measurable = exact + indirect + missed;
  if (measurable == 0) return 1.0;
  return static_cast<double>(exact + indirect) / measurable;
}

InjectionCampaign::Summary& InjectionCampaign::Summary::operator+=(
    const Summary& o) {
  const int mine = total - not_measurable;
  const int theirs = o.total - o.not_measurable;
  if (mine + theirs > 0) {
    avg_executions = (avg_executions * mine + o.avg_executions * theirs) /
                     (mine + theirs);
  }
  exact += o.exact;
  indirect += o.indirect;
  wrong += o.wrong;
  missed += o.missed;
  not_measurable += o.not_measurable;
  total += o.total;
  return *this;
}

InjectionCampaign::Summary InjectionCampaign::summarize(
    std::span<const InjectionReport> reports) {
  Summary s;
  double exec_sum = 0.0;
  int exec_n = 0;
  for (const InjectionReport& r : reports) {
    ++s.total;
    switch (r.verdict) {
      case InjectionVerdict::Exact: ++s.exact; break;
      case InjectionVerdict::Indirect: ++s.indirect; break;
      case InjectionVerdict::Wrong: ++s.wrong; break;
      case InjectionVerdict::Missed: ++s.missed; break;
      case InjectionVerdict::NotMeasurable: ++s.not_measurable; break;
    }
    if (r.verdict != InjectionVerdict::NotMeasurable) {
      exec_sum += r.executions;
      ++exec_n;
    }
  }
  s.avg_executions = exec_n > 0 ? exec_sum / exec_n : 0.0;
  return s;
}

}  // namespace flit::core
