#include "core/report.h"

#include <sstream>

namespace flit::core {

namespace {

const char* status_name(FileFinding::SymbolStatus s) {
  switch (s) {
    case FileFinding::SymbolStatus::Found: return "symbols found";
    case FileFinding::SymbolStatus::VanishedUnderFpic:
      return "file-level only (-fPIC removed the variability)";
    case FileFinding::SymbolStatus::Crashed:
      return "symbol search crashed";
    case FileFinding::SymbolStatus::NotSearched: return "not searched";
  }
  return "?";
}

}  // namespace

std::string study_csv(const StudyResult& r) {
  std::ostringstream os;
  os << "compilation,speedup,variability,bitwise_equal,status,reason\n";
  for (const CompilationOutcome& o : r.outcomes) {
    std::string reason = o.reason;
    for (char& c : reason) {
      if (c == ',' || c == '"' || c == '\n') c = ';';
    }
    os << '"' << o.comp.str() << "\"," << o.speedup << ','
       << static_cast<double>(o.variability) << ','
       << (o.bitwise_equal() ? 1 : 0) << ',' << to_string(o.status) << ','
       << reason << '\n';
  }
  return os.str();
}

std::string failure_report(const StudyResult& r) {
  std::ostringstream os;
  const std::size_t failed = r.failed_count();
  const std::size_t retried = r.retried_count();
  const std::size_t degraded = r.degraded_count();
  if (failed == 0 && retried == 0) return os.str();
  // Degraded cells were never attempted (the fleet ran out of live
  // ranks), so they are reported apart from the quarantined items whose
  // every attempt failed.  With none, the line is byte-identical to the
  // historical format.
  os << "failure accounting: " << failed - degraded << " of "
     << r.outcomes.size() << " compilations quarantined, " << retried
     << " recovered by retry";
  if (degraded > 0) os << ", " << degraded << " degraded";
  os << '\n';
  for (const CompilationOutcome& o : r.outcomes) {
    if (o.status == OutcomeStatus::Degraded) {
      os << "  DEGRADED " << o.comp.str() << ": " << o.reason << '\n';
    } else if (o.failed()) {
      os << "  QUARANTINED " << o.comp.str() << " [" << to_string(o.status)
         << " after " << o.attempts << " attempt(s)]: " << o.reason << '\n';
    } else if (o.status == OutcomeStatus::Retried) {
      os << "  retried " << o.comp.str() << " (" << o.attempts
         << " attempts): " << o.reason << '\n';
    }
  }
  return os.str();
}

std::string study_summary(const StudyResult& r) {
  std::ostringstream os;
  os << "test " << r.test_name << ": " << r.outcomes.size()
     << " compilations, " << r.variable_count() << " variable";
  if (const std::size_t failed = r.failed_count(); failed > 0) {
    os << ", " << failed << " failed";
  }
  if (const std::size_t degraded = r.degraded_count(); degraded > 0) {
    os << " (" << degraded << " degraded)";
  }
  if (const std::size_t retried = r.retried_count(); retried > 0) {
    os << ", " << retried << " retried";
  }
  if (const auto* fe = r.fastest_equal()) {
    os << "; fastest bitwise-equal " << fe->comp.str() << " (speedup "
       << fe->speedup << ")";
  } else {
    os << "; no bitwise-equal compilation";
  }
  if (const auto* fv = r.fastest_variable()) {
    os << "; fastest variable " << fv->comp.str() << " (speedup "
       << fv->speedup << ", variability "
       << static_cast<double>(fv->variability) << ")";
  }
  if (const auto stats = r.variability_stats()) {
    os << "; variability range [" << static_cast<double>(stats->min) << ", "
       << static_cast<double>(stats->max) << "]";
  }
  return os.str();
}

std::string bisect_report(const HierarchicalOutcome& out) {
  std::ostringstream os;
  if (out.crashed) {
    os << "bisect FAILED after " << out.executions
       << " executions: " << out.crash_reason << '\n';
    return os.str();
  }
  if (out.nothing_found()) {
    os << "no variability attributable to any translation unit ("
       << out.executions
       << " executions); suspect the link step or external libraries\n";
    return os.str();
  }
  os << "blame list (" << out.executions << " program executions"
     << (out.assumptions_verified ? ", assumptions verified"
                                  : ", ASSUMPTIONS NOT VERIFIED")
     << "):\n";
  for (const FileFinding& ff : out.findings) {
    os << "  " << ff.file << "  [Test " << ff.value << "] -- "
       << status_name(ff.status) << '\n';
    for (const SymbolFinding& sf : ff.symbols) {
      os << "    " << sf.symbol << "  [Test " << sf.value << "]\n";
    }
    if (!ff.note.empty()) os << "    note: " << ff.note << '\n';
  }
  if (!out.diagnostic.empty()) os << "  diagnostic: " << out.diagnostic << '\n';
  return os.str();
}

std::string workflow_report_text(const WorkflowReport& report) {
  std::ostringstream os;
  os << study_summary(report.study) << '\n';
  os << failure_report(report.study);
  if (const std::size_t fb = report.failed_bisect_count(); fb > 0) {
    os << "failed searches: " << fb << " of " << report.bisects.size()
       << " bisects ended without a blame list (Table 2 failure mode)\n";
  }
  if (report.bisects_skipped > 0) {
    os << report.bisects_skipped
       << " variable compilation(s) not bisected (--max-bisects "
       << report.max_bisects << ")\n";
  }
  if (report.fastest_reproducible != nullptr) {
    os << "recommendation: " << report.fastest_reproducible->comp.str()
       << " is the fastest reproducible compilation (speedup "
       << report.fastest_reproducible->speedup << ")\n";
  } else {
    os << "recommendation: no reproducible compilation exists; review the "
          "blame lists below\n";
  }
  for (const VariableCompilationReport& vb : report.bisects) {
    os << "--- " << vb.outcome.comp.str() << " (variability "
       << static_cast<double>(vb.outcome.variability) << ")\n"
       << bisect_report(vb.bisect);
  }
  return os.str();
}

}  // namespace flit::core
