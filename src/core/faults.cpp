#include "core/faults.h"

#include <cstdlib>

#include "obs/session.h"

namespace flit::core {

namespace {

thread_local std::string tl_context;      // NOLINT(cert-err58-cpp)
thread_local int tl_attempt = 0;

/// FNV-1a over a string; the same construction the toolchain's hazard
/// predicates use, duplicated here to keep faults self-contained.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char ch : s) {
    h ^= ch;
    h *= 1099511628211ULL;
  }
  return h;
}

std::size_t site_index(FaultSite s) { return static_cast<std::size_t>(s); }

bool parse_site(const std::string& name, FaultSite* out) {
  if (name == "compile") {
    *out = FaultSite::Compile;
  } else if (name == "link") {
    *out = FaultSite::Link;
  } else if (name == "run") {
    *out = FaultSite::Run;
  } else if (name == "kill") {
    *out = FaultSite::Kill;
  } else if (name == "shard") {
    *out = FaultSite::Shard;
  } else if (name == "stall") {
    *out = FaultSite::Stall;
  } else {
    return false;
  }
  return true;
}

}  // namespace

const char* to_string(FaultSite s) {
  switch (s) {
    case FaultSite::Compile: return "compile";
    case FaultSite::Link: return "link";
    case FaultSite::Run: return "run";
    case FaultSite::Kill: return "kill";
    case FaultSite::Shard: return "shard";
    case FaultSite::Stall: return "stall";
  }
  return "?";
}

void FaultInjector::arm(FaultSite site, double rate, std::uint64_t seed) {
  std::lock_guard lock(mu_);
  SiteSpec& spec = sites_[site_index(site)];
  spec.armed = true;
  if (site == FaultSite::Kill) {
    spec.rate = rate < 1.0 ? 1.0 : rate;  // a batch ordinal, not a rate
  } else {
    spec.rate = rate < 0.0 ? 0.0 : (rate > 1.0 ? 1.0 : rate);
  }
  spec.seed = seed;
  any_armed_.store(true, std::memory_order_release);
}

void FaultInjector::disarm() {
  std::lock_guard lock(mu_);
  sites_ = {};
  any_armed_.store(false, std::memory_order_release);
}

bool FaultInjector::armed(FaultSite site) const {
  std::lock_guard lock(mu_);
  return sites_[site_index(site)].armed;
}

bool FaultInjector::any_armed() const {
  return any_armed_.load(std::memory_order_acquire);
}

void FaultInjector::configure(const std::string& spec) {
  FaultInjector parsed;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const std::size_t c1 = entry.find(':');
    if (c1 == std::string::npos) {
      throw std::invalid_argument("FLIT_FAULTS: missing rate in '" + entry +
                                  "' (expected site:rate[:seed])");
    }
    const std::size_t c2 = entry.find(':', c1 + 1);
    const std::string site_name = entry.substr(0, c1);
    const std::string rate_str =
        entry.substr(c1 + 1, c2 == std::string::npos ? std::string::npos
                                                     : c2 - c1 - 1);
    const std::string seed_str =
        c2 == std::string::npos ? "" : entry.substr(c2 + 1);

    FaultSite site{};
    if (!parse_site(site_name, &site)) {
      throw std::invalid_argument(
          "FLIT_FAULTS: unknown site '" + site_name +
          "' (expected compile|link|run|kill|shard|stall)");
    }
    // A repeated site would silently overwrite the earlier spec; the user
    // almost certainly meant a different site, so reject the duplicate by
    // name instead of keeping whichever entry happened to come last.
    if (parsed.armed(site)) {
      throw std::invalid_argument("FLIT_FAULTS: duplicate site '" +
                                  site_name + "' in '" + spec + "'");
    }
    // Rates are probabilities: [0, 1] for the failure sites.  The kill
    // site's "rate" is a checkpoint-batch ordinal and may exceed 1.
    char* endp = nullptr;
    const double rate = std::strtod(rate_str.c_str(), &endp);
    if (rate_str.empty() || endp == nullptr || *endp != '\0' || rate < 0.0 ||
        (rate > 1.0 && site != FaultSite::Kill)) {
      throw std::invalid_argument("FLIT_FAULTS: bad rate '" + rate_str +
                                  "' in '" + entry + "'");
    }
    std::uint64_t seed = 0;
    if (!seed_str.empty()) {
      // strtoull silently wraps a negative seed ("-1" becomes
      // ULLONG_MAX); reject the sign outright.
      endp = nullptr;
      const unsigned long long v = std::strtoull(seed_str.c_str(), &endp, 10);
      if (seed_str[0] == '-' || seed_str[0] == '+' || endp == nullptr ||
          *endp != '\0') {
        throw std::invalid_argument("FLIT_FAULTS: bad seed '" + seed_str +
                                    "' in '" + entry + "'");
      }
      seed = v;
    }
    parsed.arm(site, rate, seed);
  }

  std::lock_guard lock(mu_);
  sites_ = parsed.sites_;
  any_armed_.store(parsed.any_armed_.load(std::memory_order_acquire),
                   std::memory_order_release);
}

FaultInjector::SiteSpec FaultInjector::site_spec(FaultSite site) const {
  std::lock_guard lock(mu_);
  return sites_[site_index(site)];
}

bool FaultInjector::should_fail(FaultSite site,
                                const std::string& key) const {
  if (!any_armed()) return false;
  const SiteSpec spec = site_spec(site);
  if (!spec.armed || spec.rate <= 0.0) return false;
  if (spec.rate >= 1.0) return true;
  const std::string material =
      "fault|" + std::to_string(spec.seed) + '|' + to_string(site) + '|' +
      tl_context + '|' + key + '|' + std::to_string(tl_attempt);
  constexpr std::uint64_t kScale = 1'000'000;
  return static_cast<double>(fnv1a(material) % kScale) <
         spec.rate * static_cast<double>(kScale);
}

void FaultInjector::maybe_fail(FaultSite site, const std::string& key) const {
  if (!should_fail(site, key)) return;
  // Injected-fault accounting: the fleet total plus a per-site split, so a
  // metrics dump shows where the injector actually struck.
  obs::metrics().counter("faults.injected").add();
  obs::metrics()
      .counter(std::string("faults.injected.") + to_string(site))
      .add();
  throw InjectedFault(site, std::string("injected fault: ") +
                                to_string(site) + " step failed for " + key);
}

bool FaultInjector::should_kill(std::size_t batch_ordinal) const {
  if (!any_armed()) return false;
  const SiteSpec spec = site_spec(FaultSite::Kill);
  return spec.armed &&
         batch_ordinal >= static_cast<std::size_t>(spec.rate);
}

FaultInjector& FaultInjector::global() {
  static FaultInjector instance;
  static const bool from_env = [] {
    if (const char* env = std::getenv("FLIT_FAULTS")) {
      instance.configure(env);
    }
    return true;
  }();
  (void)from_env;
  return instance;
}

FaultInjector::ScopedTrial::ScopedTrial(std::string context, int attempt)
    : prev_context_(std::move(tl_context)), prev_attempt_(tl_attempt) {
  tl_context = std::move(context);
  tl_attempt = attempt;
}

FaultInjector::ScopedTrial::~ScopedTrial() {
  tl_context = std::move(prev_context_);
  tl_attempt = prev_attempt_;
}

const std::string& FaultInjector::current_context() { return tl_context; }

int FaultInjector::current_attempt() { return tl_attempt; }

}  // namespace flit::core
