#pragma once

// Deterministic fault injection for the study engine.
//
// The paper's evaluation survives failures rather than avoiding them
// (Table 2 reports bisection *failure rates*), so the engine has to be
// testable under faults it did not cause itself.  FaultInjector provides
// seed-driven injection sites at the three places a real study dies --
// the compiler invocation, the link step, and the program run -- plus a
// checkpoint kill switch used by the kill-then-resume smoke test, and two
// rank-level sites consumed by the fleet supervisor (src/dist): `shard`
// (a rank's explore lane throws mid-claim and the rank dies) and `stall`
// (a rank hangs on a claim and is detected at a modeled-cycle deadline on
// the supervisor's virtual clock -- no wall clock anywhere).
//
// Determinism is the whole point: a fault decision is a pure hash of
// (site, seed, trial context, operation key, attempt number).  The trial
// context and attempt are thread-local state installed by the retrying
// caller (SpaceExplorer sets "test|triple", BisectDriver sets a per-probe
// context), so the same study produces the same faults at any --jobs
// count and under any scheduling -- and a retried attempt re-rolls the
// dice deterministically, which is what makes "transient" faults
// recoverable without wall-clock backoff.  Because the trial context is
// the study item's *global* identity -- the (test, triple) pair, never a
// shard-local index -- the decision is also invariant under the sharded
// engine's partition (src/dist): the same study faults the same items at
// any --shards count.
//
// Configuration:
//   * programmatic: FaultInjector::global().configure("run:0.2:42");
//   * environment:  FLIT_FAULTS=site:rate:seed[,site:rate:seed...]
//     where site is compile|link|run|kill|shard|stall, rate is a
//     probability in [0, 1] (for kill: the 1-based checkpoint-batch
//     ordinal to die at), and seed is an optional unsigned integer
//     (default 0).  A site may appear at most once; unknown or duplicate
//     sites are rejected with a message naming the offending token.
//
// This header is deliberately self-contained (standard library only) so
// the toolchain layer can consult the injector without depending on the
// rest of core; faults.cpp is compiled into flit_toolchain for the same
// reason (see src/toolchain/CMakeLists.txt).

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

namespace flit::core {

enum class FaultSite { Compile, Link, Run, Kill, Shard, Stall };

[[nodiscard]] const char* to_string(FaultSite s);

/// Thrown by an armed injector at the Compile and Link sites (the Run
/// site throws ExecutionCrash so existing crash paths treat it as a
/// signal).  Study drivers record it as a build failure.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(FaultSite site, const std::string& what)
      : std::runtime_error(what), site_(site) {}

  [[nodiscard]] FaultSite site() const { return site_; }

 private:
  FaultSite site_;
};

/// Bounded, deterministic retry: a study item is attempted up to
/// `max_attempts` times (>= 1) before it is quarantined.  No wall-clock
/// backoff -- runs are simulated and faults are attempt-seeded, so an
/// immediate retry already re-rolls the transient-fault dice.
struct RetryPolicy {
  int max_attempts = 1;

  [[nodiscard]] int attempts() const {
    return max_attempts < 1 ? 1 : max_attempts;
  }
};

class FaultInjector {
 public:
  /// Arms `site` with failure probability `rate` (clamped to [0, 1]; for
  /// the Kill site, `rate` is the 1-based checkpoint-batch ordinal to die
  /// at) under `seed`.  Arming is not synchronized against concurrent
  /// decisions: configure before dispatching parallel work.
  void arm(FaultSite site, double rate, std::uint64_t seed = 0);

  /// Disarms every site.
  void disarm();

  [[nodiscard]] bool armed(FaultSite site) const;
  [[nodiscard]] bool any_armed() const;

  /// Parses and applies a FLIT_FAULTS-style spec ("run:0.2:42,link:0.1").
  /// Replaces the current configuration.  Throws std::invalid_argument on
  /// a malformed spec.
  void configure(const std::string& spec);

  /// True when the operation identified by `key` should fail at `site`
  /// under the calling thread's trial scope (context + attempt).  Pure:
  /// same (configuration, scope, key) -> same answer.
  [[nodiscard]] bool should_fail(FaultSite site, const std::string& key) const;

  /// Throws the site-appropriate exception if should_fail(site, key).
  void maybe_fail(FaultSite site, const std::string& key) const;

  /// Kill switch for the checkpoint/resume smoke test: true when the Kill
  /// site is armed and `batch_ordinal` (1-based) has reached the
  /// configured threshold.  The caller is expected to _Exit.
  [[nodiscard]] bool should_kill(std::size_t batch_ordinal) const;

  /// The process-global injector, configured once from the FLIT_FAULTS
  /// environment variable on first access.
  static FaultInjector& global();

  /// RAII scope naming the current trial on this thread: `context`
  /// identifies the study item (e.g. "test|triple") and `attempt` its
  /// 0-based retry ordinal.  Scopes nest; the previous scope is restored
  /// on destruction.
  class ScopedTrial {
   public:
    ScopedTrial(std::string context, int attempt);
    ~ScopedTrial();
    ScopedTrial(const ScopedTrial&) = delete;
    ScopedTrial& operator=(const ScopedTrial&) = delete;

   private:
    std::string prev_context_;
    int prev_attempt_;
  };

  [[nodiscard]] static const std::string& current_context();
  [[nodiscard]] static int current_attempt();

 private:
  struct SiteSpec {
    bool armed = false;
    double rate = 0.0;
    std::uint64_t seed = 0;
  };

  [[nodiscard]] SiteSpec site_spec(FaultSite site) const;

  mutable std::mutex mu_;
  std::array<SiteSpec, 6> sites_{};
  // Fast path for the common disarmed case; written under mu_.
  std::atomic<bool> any_armed_{false};
};

}  // namespace flit::core
