#include "core/workflow.h"

#include "core/parallel.h"
#include "toolchain/compile_cache.h"

namespace flit::core {

WorkflowReport run_workflow(const fpsem::CodeModel* model,
                            const TestBase& test,
                            std::span<const toolchain::Compilation> space,
                            const WorkflowOptions& opts) {
  WorkflowReport report;

  // One compilation cache for the whole pipeline: the exploration warms it
  // and every bisect below compiles through it.
  toolchain::CompilationCache cache;

  // Levels 1 and 2: explore the compilation space.
  SpaceExplorer explorer(model, opts.baseline, opts.speed_reference,
                         opts.jobs, &cache);
  report.study = explorer.explore(test, space);

  report.fastest_reproducible = report.study.fastest_equal();
  report.fastest_any = nullptr;
  for (const CompilationOutcome& o : report.study.outcomes) {
    if (report.fastest_any == nullptr ||
        o.speedup > report.fastest_any->speedup) {
      report.fastest_any = &o;
    }
  }

  if (!opts.run_bisect) return report;

  // Level 3: root-cause each variability-inducing compilation.  The
  // bisects are independent (the max_bisects cap is applied in study
  // order first), so they fan out across the pool; the merged report is
  // index-ordered and bitwise-identical to a serial run.
  std::vector<const CompilationOutcome*> to_bisect;
  for (const CompilationOutcome& o : report.study.outcomes) {
    if (o.bitwise_equal()) continue;
    if (opts.max_bisects != 0 && to_bisect.size() >= opts.max_bisects) break;
    to_bisect.push_back(&o);
  }

  report.bisects.resize(to_bisect.size());
  ThreadPool pool(opts.jobs);
  pool.parallel_for(to_bisect.size(), [&](std::size_t i) {
    const CompilationOutcome& o = *to_bisect[i];
    BisectConfig cfg;
    cfg.baseline = opts.baseline;
    cfg.variable = o.comp;
    cfg.k = opts.k;
    cfg.digits = opts.digits;
    BisectDriver driver(model, &test, cfg, &cache);
    report.bisects[i] = VariableCompilationReport{o, driver.run()};
  });
  return report;
}

}  // namespace flit::core
