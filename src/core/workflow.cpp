#include "core/workflow.h"

#include <algorithm>

#include "core/parallel.h"
#include "obs/session.h"
#include "toolchain/compile_cache.h"

namespace flit::core {

std::size_t WorkflowReport::failed_bisect_count() const {
  return static_cast<std::size_t>(std::count_if(
      bisects.begin(), bisects.end(),
      [](const VariableCompilationReport& b) { return b.bisect.crashed; }));
}

WorkflowReport run_workflow(const fpsem::CodeModel* model,
                            const TestBase& test,
                            std::span<const toolchain::Compilation> space,
                            const WorkflowOptions& opts) {
  WorkflowReport report;

  // One compilation cache for the whole pipeline: the exploration warms it
  // and every bisect below compiles through it.
  toolchain::CompilationCache cache;

  // Levels 1 and 2: explore the compilation space.  An override (e.g. the
  // sharded engine in src/dist) replaces this phase wholesale; its
  // contract guarantees the StudyResult is bitwise-identical to the
  // in-process explorer's, so everything downstream is oblivious.
  {
    obs::Span phase(obs::tracer_if_enabled(), "phase.explore", "explore",
                    test.name());
    if (opts.explore_override) {
      report.study = opts.explore_override(test, space);
    } else {
      SpaceExplorer explorer(model, opts.baseline, opts.speed_reference,
                             opts.jobs, &cache);
      report.study = explorer.explore(test, space, opts.explore);
    }
  }

  report.fastest_reproducible = report.study.fastest_equal();
  report.fastest_any = nullptr;
  for (const CompilationOutcome& o : report.study.outcomes) {
    if (o.failed()) continue;
    if (report.fastest_any == nullptr ||
        o.speedup > report.fastest_any->speedup) {
      report.fastest_any = &o;
    }
  }

  if (!opts.run_bisect) return report;

  // Level 3: root-cause each variability-inducing compilation.  The
  // bisects are independent (the max_bisects cap is applied in study
  // order first), so they fan out across the pool; the merged report is
  // index-ordered and bitwise-identical to a serial run.  Quarantined
  // outcomes never reach this phase: a compilation that failed every
  // attempt has no measurable variability to root-cause.
  std::vector<const CompilationOutcome*> to_bisect;
  report.max_bisects = opts.max_bisects;
  for (const CompilationOutcome& o : report.study.outcomes) {
    if (o.failed() || o.bitwise_equal()) continue;
    if (opts.max_bisects != 0 && to_bisect.size() >= opts.max_bisects) {
      // Keep counting so the report can say how much the cap hid.
      ++report.bisects_skipped;
      continue;
    }
    to_bisect.push_back(&o);
  }

  // Failed-search accounting (counters sum across shards and reruns; the
  // text report's "failed searches" line is derived from the same rows, so
  // the two totals reconcile by construction).
  static obs::Counter& m_bisects = obs::metrics().counter("workflow.bisects");
  static obs::Counter& m_failed_bisects =
      obs::metrics().counter("workflow.failed_bisects");

  obs::Span bisect_phase(obs::tracer_if_enabled(), "phase.bisect", "bisect",
                         test.name());
  report.bisects.resize(to_bisect.size());
  ThreadPool pool(opts.jobs);
  pool.parallel_for(to_bisect.size(), [&](std::size_t i) {
    const CompilationOutcome& o = *to_bisect[i];
    // Stamp the bisect with the outcome's index in the study space so its
    // trace lane matches the explore-phase lane of the same compilation.
    const std::size_t space_index = static_cast<std::size_t>(
        to_bisect[i] - report.study.outcomes.data());
    obs::ScopedItem obs_item(opts.explore.obs_shard,
                             opts.explore.obs_index_base + space_index, 0);
    BisectConfig cfg;
    cfg.baseline = opts.baseline;
    cfg.variable = o.comp;
    cfg.k = opts.k;
    cfg.digits = opts.digits;
    BisectDriver driver(model, &test, cfg, &cache);
    m_bisects.add();
    try {
      report.bisects[i] = VariableCompilationReport{o, driver.run()};
      if (report.bisects[i].bisect.crashed) m_failed_bisects.add();
    } catch (const std::exception& e) {
      // A bisect that dies outside the driver's own crash handling (an
      // injected compile/link fault, an anchor crash inside the search)
      // becomes a recorded failed search, matching how the paper's
      // evaluation reports its failure rates (Table 2).
      if (!opts.explore.keep_going) throw;
      m_failed_bisects.add();
      HierarchicalOutcome failed;
      failed.crashed = true;
      failed.crash_reason = std::string("bisect aborted: ") + e.what();
      report.bisects[i] = VariableCompilationReport{o, std::move(failed)};
    }
  });
  return report;
}

}  // namespace flit::core
