#include "core/workflow.h"

namespace flit::core {

WorkflowReport run_workflow(const fpsem::CodeModel* model,
                            const TestBase& test,
                            std::span<const toolchain::Compilation> space,
                            const WorkflowOptions& opts) {
  WorkflowReport report;

  // Levels 1 and 2: explore the compilation space.
  SpaceExplorer explorer(model, opts.baseline, opts.speed_reference);
  report.study = explorer.explore(test, space);

  report.fastest_reproducible = report.study.fastest_equal();
  report.fastest_any = nullptr;
  for (const CompilationOutcome& o : report.study.outcomes) {
    if (report.fastest_any == nullptr ||
        o.speedup > report.fastest_any->speedup) {
      report.fastest_any = &o;
    }
  }

  if (!opts.run_bisect) return report;

  // Level 3: root-cause each variability-inducing compilation.
  std::size_t done = 0;
  for (const CompilationOutcome& o : report.study.outcomes) {
    if (o.bitwise_equal()) continue;
    if (opts.max_bisects != 0 && done >= opts.max_bisects) break;
    ++done;

    BisectConfig cfg;
    cfg.baseline = opts.baseline;
    cfg.variable = o.comp;
    cfg.k = opts.k;
    cfg.digits = opts.digits;
    BisectDriver driver(model, &test, cfg);
    report.bisects.push_back(VariableCompilationReport{o, driver.run()});
  }
  return report;
}

}  // namespace flit::core
