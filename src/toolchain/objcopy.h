#pragma once

// objcopy emulation: rewriting symbol strength inside an object file.
//
// Symbol Bisect duplicates an object file and turns a chosen subset of its
// strong symbols weak (and the complement weak in the other copy), so the
// linker's strong-beats-weak rule selects functions from the two
// compilations (Sec. 2.3, Fig. 3 right).

#include <algorithm>
#include <string>
#include <vector>

#include "toolchain/object.h"

namespace flit::toolchain {

/// Returns a copy of `obj` with every symbol named in `to_weaken` marked
/// weak.  Names not defined by the object are ignored, matching
/// `objcopy --weaken-symbol` behaviour.
[[nodiscard]] inline ObjectFile objcopy_weaken(
    ObjectFile obj, const std::vector<std::string>& to_weaken) {
  for (SymbolDef& s : obj.symbols) {
    if (std::find(to_weaken.begin(), to_weaken.end(), s.name) !=
        to_weaken.end()) {
      s.strong = false;
    }
  }
  return obj;
}

/// Returns a copy of `obj` with every symbol *except* those named in
/// `keep_strong` marked weak (the complement-set operation of Fig. 3).
[[nodiscard]] inline ObjectFile objcopy_weaken_complement(
    ObjectFile obj, const std::vector<std::string>& keep_strong) {
  for (SymbolDef& s : obj.symbols) {
    if (std::find(keep_strong.begin(), keep_strong.end(), s.name) ==
        keep_strong.end()) {
      s.strong = false;
    }
  }
  return obj;
}

}  // namespace flit::toolchain
