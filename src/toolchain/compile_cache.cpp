#include "toolchain/compile_cache.h"

#include <cstdio>

#include "obs/session.h"
#include "toolchain/semantics_rules.h"

namespace flit::toolchain {

std::uint64_t CompilationCache::fingerprint(const Compilation& c, bool fpic) {
  const fpsem::FpSemantics s = derive_semantics(c);
  const fpsem::CostFactors k = derive_cost(c);
  // The %a renderings keep the cost doubles exact; every semantics field
  // participates so that fingerprint equality implies binding equality.
  char buf[160];
  std::snprintf(buf, sizeof buf, "%d|%d|%d|%d|%d|%d|%d|%a|%a",
                static_cast<int>(s.contract_fma), s.reassoc_width,
                static_cast<int>(s.extended_precision),
                static_cast<int>(s.unsafe_math),
                static_cast<int>(s.flush_subnormals),
                static_cast<int>(s.fast_libm), static_cast<int>(s.exploits_ub),
                k.time_scale, k.bulk_scale);
  std::string material = buf;
  if (fpic) {
    // inlining_carries_variability() hashes the raw compilation string, so
    // -fPIC bindings are only shareable between textually equal triples.
    material += '|';
    material += c.str();
  }
  return stable_hash(material);
}

ObjectFile CompilationCache::get_or_build(
    const std::string& file, const Compilation& c, bool fpic, bool injected,
    const std::function<ObjectFile()>& build) {
  // Fleet-wide counters: every cache instance (one per shard in the
  // distributed engine) feeds the same registry, so the global totals are
  // the sum the aggregate report prints.  Handles are stable across
  // MetricsRegistry::reset(), so resolving them once is safe.
  static obs::Counter& obs_hits = obs::metrics().counter("cache.hits");
  static obs::Counter& obs_misses = obs::metrics().counter("cache.misses");

  const Key key{file, fingerprint(c, fpic), fpic, injected};
  {
    std::lock_guard lock(mu_);
    if (auto it = entries_.find(key); it != entries_.end()) {
      ++stats_.hits;
      obs_hits.add();
      ObjectFile obj = it->second;
      obj.comp = c;  // the hazard predicates hash the raw triple
      return obj;
    }
  }
  // Build outside the lock: compilations are the expensive part and two
  // threads racing to build the same key is rarer than serializing every
  // builder behind one mutex.
  ObjectFile built = build();
  std::lock_guard lock(mu_);
  ++stats_.misses;
  obs_misses.add();
  auto [it, inserted] = entries_.try_emplace(key, built);
  if (inserted) return built;
  ObjectFile obj = it->second;  // another thread won the race
  obj.comp = c;
  return obj;
}

CompilationCache::Stats CompilationCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void CompilationCache::clear() {
  static obs::Counter& obs_evicted = obs::metrics().counter("cache.evicted");
  std::lock_guard lock(mu_);
  obs_evicted.add(entries_.size());
  entries_.clear();
  stats_ = Stats{};
}

std::size_t CompilationCache::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = stable_hash(k.file);
  h ^= k.fingerprint + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= (static_cast<std::uint64_t>(k.fpic) << 1 |
        static_cast<std::uint64_t>(k.injected)) +
       0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return static_cast<std::size_t>(h);
}

}  // namespace flit::toolchain
