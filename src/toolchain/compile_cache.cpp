#include "toolchain/compile_cache.h"

#include <cstdio>
#include <utility>

#include "obs/session.h"
#include "toolchain/semantics_rules.h"

namespace flit::toolchain {

namespace {

/// The one fleet-wide eviction counter (every cache instance feeds it, as
/// with cache.hits/cache.misses).  Incremented once *per evicted entry* --
/// historically it only moved on wholesale clear()s, which under-counted
/// any policy that removes entries one group at a time.
obs::Counter& evicted_counter() {
  static obs::Counter& c = obs::metrics().counter("cache.evicted");
  return c;
}

}  // namespace

std::uint64_t approx_object_bytes(const ObjectFile& obj) {
  // Deterministic content-derived footprint: fixed per-record charges plus
  // the variable-length payloads.  The constants approximate the in-memory
  // cost of each record (object + hash-map overhead) without depending on
  // allocator or padding details.
  std::uint64_t b = 64 + obj.source_file.size() + obj.comp.flag.size() +
                    obj.comp.compiler.name.size();
  for (const SymbolDef& s : obj.symbols) b += 48 + s.name.size();
  b += 8 * obj.internal_fns.size();
  b += 96 * obj.bindings.size();
  return b;
}

std::uint64_t CompilationCache::fingerprint(const Compilation& c, bool fpic) {
  const fpsem::FpSemantics s = derive_semantics(c);
  const fpsem::CostFactors k = derive_cost(c);
  // The %a renderings keep the cost doubles exact; every semantics field
  // participates so that fingerprint equality implies binding equality.
  char buf[160];
  std::snprintf(buf, sizeof buf, "%d|%d|%d|%d|%d|%d|%d|%a|%a",
                static_cast<int>(s.contract_fma), s.reassoc_width,
                static_cast<int>(s.extended_precision),
                static_cast<int>(s.unsafe_math),
                static_cast<int>(s.flush_subnormals),
                static_cast<int>(s.fast_libm), static_cast<int>(s.exploits_ub),
                k.time_scale, k.bulk_scale);
  std::string material = buf;
  if (fpic) {
    // inlining_carries_variability() hashes the raw compilation string, so
    // -fPIC bindings are only shareable between textually equal triples.
    material += '|';
    material += c.str();
  }
  return stable_hash(material);
}

ObjectFile CompilationCache::get_or_build(
    const std::string& file, const Compilation& c, bool fpic, bool injected,
    const std::function<ObjectFile()>& build) {
  // Fleet-wide counters: every cache instance (one per shard in the
  // distributed engine) feeds the same registry, so the global totals are
  // the sum the aggregate report prints.  Handles are stable across
  // MetricsRegistry::reset(), so resolving them once is safe.
  static obs::Counter& obs_hits = obs::metrics().counter("cache.hits");
  static obs::Counter& obs_misses = obs::metrics().counter("cache.misses");

  const Key key{file, fingerprint(c, fpic), fpic, injected};
  const std::uint64_t group = semantics_group(c);
  {
    std::lock_guard lock(mu_);
    if (auto it = entries_.find(key); it != entries_.end()) {
      ++stats_.hits;
      obs_hits.add();
      touch_group_locked(group);
      ObjectFile obj = it->second.obj;
      obj.comp = c;  // the hazard predicates hash the raw triple
      return obj;
    }
  }
  // Build outside the lock: compilations are the expensive part and two
  // threads racing to build the same key is rarer than serializing every
  // builder behind one mutex.
  ObjectFile built = build();
  std::lock_guard lock(mu_);
  ++stats_.misses;
  obs_misses.add();
  auto [it, inserted] = entries_.try_emplace(key, Entry{built, group, 0});
  if (inserted) {
    const std::uint64_t bytes = approx_object_bytes(built);
    it->second.bytes = bytes;
    stats_.inserted_bytes += bytes;
    resident_bytes_ += bytes;
    touch_group_locked(group);
    groups_[group].keys.push_back(key);
    groups_[group].bytes += bytes;
    evict_to_budget_locked();
    return built;
  }
  touch_group_locked(group);
  ObjectFile obj = it->second.obj;  // another thread won the race
  obj.comp = c;
  return obj;
}

CompilationCache::Stats CompilationCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void CompilationCache::clear() {
  std::lock_guard lock(mu_);
  evicted_counter().add(entries_.size());
  entries_.clear();
  groups_.clear();
  lru_.clear();
  resident_bytes_ = 0;
  stats_ = Stats{};  // a clear resets the tallies too (a fresh cache)
}

void CompilationCache::set_budget(std::optional<std::uint64_t> bytes) {
  std::lock_guard lock(mu_);
  budget_ = bytes;
  evict_to_budget_locked();
}

std::optional<std::uint64_t> CompilationCache::budget() const {
  std::lock_guard lock(mu_);
  return budget_;
}

std::uint64_t CompilationCache::resident_bytes() const {
  std::lock_guard lock(mu_);
  return resident_bytes_;
}

std::size_t CompilationCache::resident_entries() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

void CompilationCache::touch_group_locked(std::uint64_t group) {
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    lru_.push_back(group);
    GroupInfo info;
    info.lru_pos = std::prev(lru_.end());
    groups_.emplace(group, std::move(info));
    return;
  }
  lru_.splice(lru_.end(), lru_, it->second.lru_pos);
  it->second.lru_pos = std::prev(lru_.end());
}

void CompilationCache::evict_to_budget_locked() {
  if (!budget_.has_value()) return;
  // Whole-group eviction, least recently used first.  The loop also
  // retires the most recent group when it alone exceeds the budget (the
  // zero-budget configuration retains nothing) -- correctness never
  // depends on residency, only hit rates do.
  while (resident_bytes_ > *budget_ && !lru_.empty()) {
    const std::uint64_t victim = lru_.front();
    auto git = groups_.find(victim);
    for (const Key& key : git->second.keys) {
      auto it = entries_.find(key);
      if (it == entries_.end()) continue;
      ++stats_.evictions;
      evicted_counter().add();
      stats_.evicted_bytes += it->second.bytes;
      resident_bytes_ -= it->second.bytes;
      entries_.erase(it);
    }
    lru_.pop_front();
    groups_.erase(git);
  }
}

std::size_t CompilationCache::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = stable_hash(k.file);
  h ^= k.fingerprint + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= (static_cast<std::uint64_t>(k.fpic) << 1 |
        static_cast<std::uint64_t>(k.injected)) +
       0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return static_cast<std::size_t>(h);
}

}  // namespace flit::toolchain
