#include "toolchain/linker.h"

#include <map>
#include <set>
#include <unordered_map>

#include "core/faults.h"
#include "toolchain/semantics_rules.h"

namespace flit::toolchain {

Executable Linker::link(std::span<const ObjectFile> objects,
                        const CompilerSpec& link_compiler) const {
  if (core::FaultInjector::global().any_armed()) {
    core::FaultInjector::global().maybe_fail(
        core::FaultSite::Link, "link|" + link_compiler.name);
  }
  const std::size_t n_fns = model_->function_count();
  Executable exe;
  exe.map = fpsem::SemanticsMap(n_fns);
  exe.from_injected.assign(n_fns, false);

  // --- coverage check: every model file must appear on the link line ---
  std::set<std::string> covered;
  for (const ObjectFile& o : objects) covered.insert(o.source_file);
  for (const std::string& f : model_->files()) {
    if (!covered.contains(f)) {
      throw LinkError(LinkError::Kind::MissingFile,
                      "no object file provides " + f);
    }
  }

  // --- symbol resolution -----------------------------------------------
  // winner[symbol] = index of the object whose definition is kept.
  std::unordered_map<std::string, std::size_t> winner;
  {
    std::unordered_map<std::string, std::size_t> strong_count;
    for (std::size_t i = 0; i < objects.size(); ++i) {
      for (const SymbolDef& s : objects[i].symbols) {
        if (s.strong) {
          if (++strong_count[s.name] > 1) {
            throw LinkError(LinkError::Kind::DuplicateStrong,
                            "duplicate strong symbol " + s.name);
          }
          winner[s.name] = i;  // strong always wins
        } else if (!winner.contains(s.name)) {
          winner.emplace(s.name, i);  // first weak wins provisionally
        }
      }
    }
    // A later strong definition must override an earlier weak one.
    for (std::size_t i = 0; i < objects.size(); ++i) {
      for (const SymbolDef& s : objects[i].symbols) {
        if (s.strong) winner[s.name] = i;
      }
    }
  }

  // Every exported function of the model must be resolved.
  for (std::size_t id = 0; id < n_fns; ++id) {
    const auto& fi = model_->info(static_cast<fpsem::FunctionId>(id));
    if (fi.exported && !winner.contains(fi.name)) {
      throw LinkError(LinkError::Kind::Unresolved,
                      "unresolved symbol " + fi.name);
    }
  }

  // --- bind exported functions to their winning object ------------------
  for (const auto& [sym, obj_idx] : winner) {
    const ObjectFile& o = objects[obj_idx];
    for (const SymbolDef& s : o.symbols) {
      if (s.name == sym) {
        exe.map.binding(s.fn) = o.bindings.at(s.fn);
        exe.from_injected[s.fn] = o.injected;
      }
    }
  }

  // --- bind internal functions through their host symbol ----------------
  for (std::size_t id = 0; id < n_fns; ++id) {
    const auto fid = static_cast<fpsem::FunctionId>(id);
    const auto& fi = model_->info(fid);
    if (fi.exported) continue;
    const ObjectFile* home = nullptr;
    if (auto it = winner.find(fi.host_symbol); it != winner.end()) {
      const ObjectFile& w = objects[it->second];
      if (w.bindings.contains(fid)) home = &w;  // host's copy of the file
    }
    if (home == nullptr) {
      // Host symbol lives elsewhere; take the first object of our file.
      for (const ObjectFile& o : objects) {
        if (o.bindings.contains(fid)) {
          home = &o;
          break;
        }
      }
    }
    if (home == nullptr) {
      throw LinkError(LinkError::Kind::Unresolved,
                      "internal function " + fi.name + " not linked");
    }
    exe.map.binding(fid) = home->bindings.at(fid);
    exe.from_injected[fid] = home->injected;
  }

  // --- link-step libm substitution --------------------------------------
  if (link_step_fast_libm(link_compiler)) {
    for (std::size_t id = 0; id < n_fns; ++id) {
      const auto fid = static_cast<fpsem::FunctionId>(id);
      if (model_->info(fid).uses_libm) {
        exe.map.binding(fid).sem.fast_libm = true;
      }
    }
  }

  // --- run-time hazards --------------------------------------------------
  // (a) ABI mixing: an Intel-compiled object linked next to GCC/Clang
  //     objects segfaults when the (file, compilation) pair is toxic.
  bool has_gnu = false;
  for (const ObjectFile& o : objects) {
    if (o.comp.compiler.family == CompilerFamily::GCC ||
        o.comp.compiler.family == CompilerFamily::Clang) {
      has_gnu = true;
    }
  }
  if (has_gnu) {
    for (const ObjectFile& o : objects) {
      if (abi_toxic(o.source_file, o.comp)) {
        exe.crashes = true;
        exe.crash_reason = "SIGSEGV: ABI-incompatible object " +
                           o.source_file + " [" + o.comp.str() + "]";
        break;
      }
    }
  }
  // (b) Symbol Bisect mixes: two copies of one file under different
  //     compilations in one image.
  if (!exe.crashes) {
    std::map<std::string, const ObjectFile*> first_of_file;
    for (const ObjectFile& o : objects) {
      auto [it, inserted] = first_of_file.try_emplace(o.source_file, &o);
      if (!inserted && !(it->second->comp == o.comp)) {
        if (symbol_mix_toxic(o.source_file, it->second->comp, o.comp)) {
          exe.crashes = true;
          exe.crash_reason =
              "SIGSEGV: fragile strong/weak interposition in " +
              o.source_file;
          break;
        }
      }
    }
  }

  return exe;
}

}  // namespace flit::toolchain
