#include "toolchain/build.h"

#include <stdexcept>

#include "core/faults.h"
#include "toolchain/semantics_rules.h"

namespace flit::toolchain {

ObjectFile BuildSystem::compile(const std::string& file, const Compilation& c,
                                bool fpic, bool injected) const {
  // The fault check precedes the cache lookup on purpose: an injected
  // compiler crash must not depend on whether a semantically equivalent
  // object happens to be cached (cache state varies with scheduling; the
  // fault decision must not).
  if (core::FaultInjector::global().any_armed()) {
    core::FaultInjector::global().maybe_fail(
        core::FaultSite::Compile,
        file + "|" + c.str() + (fpic ? "|fpic" : "") +
            (injected ? "|injected" : ""));
  }
  if (cache_ == nullptr) return compile_uncached(file, c, fpic, injected);
  return cache_->get_or_build(file, c, fpic, injected, [&] {
    return compile_uncached(file, c, fpic, injected);
  });
}

ObjectFile BuildSystem::compile_uncached(const std::string& file,
                                         const Compilation& c, bool fpic,
                                         bool injected) const {
  const auto fns = model_->functions_in(file);
  if (fns.empty()) {
    throw std::invalid_argument("unknown source file: " + file);
  }
  ObjectFile obj;
  obj.source_file = file;
  obj.comp = c;
  obj.fpic = fpic;
  obj.injected = injected;
  for (fpsem::FunctionId id : fns) {
    const fpsem::FunctionInfo& fi = model_->info(id);
    obj.bindings.emplace(id, derive_binding(c, fi, fpic));
    if (fi.exported) {
      obj.symbols.push_back(SymbolDef{fi.name, id, /*strong=*/true});
    } else {
      obj.internal_fns.push_back(id);
    }
  }
  return obj;
}

std::vector<ObjectFile> BuildSystem::compile_all(const Compilation& c,
                                                 bool fpic,
                                                 bool injected) const {
  std::vector<ObjectFile> out;
  out.reserve(model_->files().size());
  for (const std::string& f : model_->files()) {
    out.push_back(compile(f, c, fpic, injected));
  }
  return out;
}

}  // namespace flit::toolchain
