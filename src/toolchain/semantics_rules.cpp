#include "toolchain/semantics_rules.h"

#include <utility>

namespace flit::toolchain {

namespace {

using fpsem::CostFactors;
using fpsem::FpSemantics;

bool optimizing(const Compilation& c) { return c.opt >= OptLevel::O1; }

FpSemantics gcc_semantics(const Compilation& c) {
  FpSemantics s;
  if (!optimizing(c)) return s;  // -O0: no value-changing transformations
  const std::string& f = c.flag;
  if (f == "-funsafe-math-optimizations") {
    s.unsafe_math = true;
    s.reassoc_width = 4;
  } else if (f == "-freciprocal-math") {
    s.unsafe_math = true;
  } else if (f == "-mavx2 -mfma") {
    // GCC contracts mul+add chains by default (-ffp-contract=fast) as soon
    // as an FMA-capable ISA is selected.
    s.contract_fma = true;
  }
  // "-fassociative-math" alone is documented as inert (it requires
  // -fno-signed-zeros and -fno-trapping-math to activate), and
  // "-ffp-contract=on" behaves as "off" for C++ in this GCC generation --
  // both contribute flag coverage without changing values.
  return s;
}

// The workloads are memory-bound, so SIMD widening buys little: bulk
// factors are deliberately modest (AVX2 on these parts also downclocks,
// which is why "-mavx2 -mfma" can come out *slower* than plain -O3, as the
// paper observed on MFEM example 5).
CostFactors gcc_cost(const Compilation& c) {
  CostFactors k;
  switch (c.opt) {
    case OptLevel::O0: k = {3.00, 1.00}; break;
    case OptLevel::O1: k = {1.18, 1.00}; break;
    case OptLevel::O2: k = {1.00, 1.15}; break;
    case OptLevel::O3: k = {0.96, 1.25}; break;
  }
  if (!optimizing(c)) return k;
  const std::string& f = c.flag;
  if (f == "-mavx") {
    k.bulk_scale *= 1.03;
  } else if (f == "-mavx2 -mfma") {
    k.bulk_scale *= 1.00;
    k.time_scale *= 1.02;  // AVX2 downclocking
  } else if (f == "-funsafe-math-optimizations") {
    k.bulk_scale *= 1.005;  // vectorized reductions: memory-bound anyway
  } else if (f == "-frounding-math") {
    k.bulk_scale = 1.0;
    k.time_scale *= 1.08;
  } else if (f == "-ffloat-store") {
    k.time_scale *= 1.15;  // every intermediate spilled to memory
  }
  return k;
}

FpSemantics clang_semantics(const Compilation& c) {
  FpSemantics s;
  if (!optimizing(c)) return s;
  const std::string& f = c.flag;
  if (f == "-ffast-math") {
    s.unsafe_math = true;
    s.reassoc_width = 4;
    s.contract_fma = true;
  } else if (f == "-ffp-contract=fast") {
    s.contract_fma = true;
  } else if (f == "-fdenormal-fp-math=preserve-sign") {
    s.flush_subnormals = true;
  }
  // NOTE: clang 6 does *not* contract by default, so "-mavx2 -mfma" and
  // "-mfma" only change speed, not values; "-ffp-contract=on" is treated
  // as "off" for C++ by this clang generation, and the piecemeal
  // fast-math flags (-fassociative-math, -freciprocal-math,
  // -funsafe-math-optimizations) are driver no-ops outside the
  // -ffast-math umbrella -- which is why clang shows by far the fewest
  // variable compilations in Table 1.
  return s;
}

CostFactors clang_cost(const Compilation& c) {
  CostFactors k;
  switch (c.opt) {
    case OptLevel::O0: k = {3.10, 1.00}; break;
    case OptLevel::O1: k = {1.22, 1.00}; break;
    case OptLevel::O2: k = {1.03, 1.12}; break;
    case OptLevel::O3: k = {0.98, 1.23}; break;
  }
  if (!optimizing(c)) return k;
  const std::string& f = c.flag;
  if (f == "-mavx") {
    k.bulk_scale *= 1.03;
  } else if (f == "-mavx2 -mfma" || f == "-march=core-avx2" || f == "-mfma") {
    k.bulk_scale *= 1.02;
    k.time_scale *= 1.01;
  } else if (f == "-ffast-math") {
    k.bulk_scale *= 1.005;
  } else if (f == "-frounding-math") {
    k.bulk_scale = 1.0;
    k.time_scale *= 1.06;
  }
  return k;
}

/// icpc's default floating-point model at -O1 and above.
FpSemantics icpc_fast1() {
  FpSemantics s;
  s.contract_fma = true;
  s.reassoc_width = 2;
  return s;
}

FpSemantics icpc_semantics(const Compilation& c) {
  if (!optimizing(c)) return {};  // no transformations run at -O0
  const std::string& f = c.flag;
  if (f == "-fp-model precise" || f == "-fp-model source" ||
      f == "-fp-model strict" || f == "-mieee-fp") {
    return {};
  }
  if (f == "-fp-model double" || f == "-fp-model extended") {
    FpSemantics s;
    s.extended_precision = true;  // wider intermediates, precise model
    return s;
  }
  FpSemantics s = icpc_fast1();
  if (f == "-fp-model fast=2") {
    s.reassoc_width = 4;
    s.unsafe_math = true;
    s.flush_subnormals = true;
    s.fast_libm = true;
  } else if (f == "-no-fma") {
    s.contract_fma = false;
  } else if (f == "-ftz") {
    s.flush_subnormals = true;
  } else if (f == "-no-prec-div" || f == "-no-prec-sqrt") {
    s.unsafe_math = true;
  } else if (f == "-fimf-precision=low" || f == "-fast-transcendentals") {
    s.fast_libm = true;
  }
  // "-fma", "-no-ftz", "-prec-div", "-prec-sqrt", "-fimf-precision=high",
  // "-fimf-precision=medium", "-no-fast-transcendentals", "-fp-port",
  // "-mavx", "-mavx2 -mfma", "-march=core-avx2": default fast=1 model.
  return s;
}

CostFactors icpc_cost(const Compilation& c) {
  CostFactors k;
  switch (c.opt) {
    case OptLevel::O0: k = {3.00, 1.00}; break;
    case OptLevel::O1: k = {1.12, 1.05}; break;
    case OptLevel::O2: k = {1.005, 1.14}; break;
    case OptLevel::O3: k = {0.985, 1.19}; break;
  }
  if (!optimizing(c)) return k;
  const std::string& f = c.flag;
  if (f == "-mavx") {
    k.bulk_scale *= 1.03;
  } else if (f == "-mavx2 -mfma" || f == "-march=core-avx2") {
    k.bulk_scale *= 1.02;
  } else if (f == "-fp-model fast=2") {
    k.bulk_scale *= 1.005;
  } else if (f == "-fp-model precise" || f == "-fp-model source") {
    k.bulk_scale *= 0.92;
  } else if (f == "-fp-model strict") {
    k.bulk_scale = 1.0;
    k.time_scale *= 1.10;
  } else if (f == "-fp-model double" || f == "-fp-model extended") {
    k.time_scale *= 1.12;
    k.bulk_scale = 1.0;
  } else if (f == "-mieee-fp") {
    k.bulk_scale *= 0.92;
  }
  return k;
}

FpSemantics xlc_semantics(const Compilation& c) {
  FpSemantics s;
  if (!optimizing(c)) return s;
  s.contract_fma = true;  // xlc fuses multiply-add by default
  if (c.opt >= OptLevel::O3 && c.flag != "-qstrict=vectorprecision") {
    s.reassoc_width = 4;
    s.unsafe_math = true;
    s.exploits_ub = true;
  }
  return s;
}

CostFactors xlc_cost(const Compilation& c) {
  CostFactors k;
  switch (c.opt) {
    case OptLevel::O0: k = {2.80, 1.0}; break;
    case OptLevel::O1: k = {1.30, 1.0}; break;
    case OptLevel::O2: k = {1.00, 1.2}; break;
    case OptLevel::O3: k = {0.42, 2.2}; break;  // Laghos saw 2.42x O2->O3
  }
  if (c.opt >= OptLevel::O3 && c.flag == "-qstrict=vectorprecision") {
    k.bulk_scale = 1.6;
    k.time_scale = 0.50;
  }
  return k;
}

}  // namespace

FpSemantics derive_semantics(const Compilation& c) {
  switch (c.compiler.family) {
    case CompilerFamily::GCC: return gcc_semantics(c);
    case CompilerFamily::Clang: return clang_semantics(c);
    case CompilerFamily::Intel: return icpc_semantics(c);
    case CompilerFamily::XLC: return xlc_semantics(c);
  }
  return {};
}

CostFactors derive_cost(const Compilation& c) {
  switch (c.compiler.family) {
    case CompilerFamily::GCC: return gcc_cost(c);
    case CompilerFamily::Clang: return clang_cost(c);
    case CompilerFamily::Intel: return icpc_cost(c);
    case CompilerFamily::XLC: return xlc_cost(c);
  }
  return {};
}

bool compile_time_fast_libm(const Compilation& c) {
  return derive_semantics(c).fast_libm;
}

bool link_step_fast_libm(const CompilerSpec& link_compiler) {
  return link_compiler.family == CompilerFamily::Intel;
}

fpsem::FnBinding derive_binding(const Compilation& c,
                                const fpsem::FunctionInfo& fn, bool fpic) {
  fpsem::FnBinding b;
  b.sem = derive_semantics(c);
  b.cost = derive_cost(c);
  // Fast transcendentals only matter for functions that call libm; keep
  // the binding of libm-free functions canonical so strictness checks and
  // binary comparisons are meaningful.
  b.sem.fast_libm = fn.uses_libm && compile_time_fast_libm(c);
  if (fpic) {
    b.cost.time_scale *= 1.03;  // PLT-indirect calls, no cross-TU inlining
    if (!b.sem.strict() && inlining_carries_variability(fn, c)) {
      // The optimization that changed this function's values required
      // inlining it into its callers; -fPIC disables that, so the compiled
      // function reverts to baseline numerics (Sec. 2.3).
      b.sem = fpsem::FpSemantics{};
    }
  }
  return b;
}

std::uint64_t stable_hash(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (unsigned char ch : s) {
    h ^= ch;
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

bool abi_toxic(const std::string& file, const Compilation& c) {
  if (c.compiler.family != CompilerFamily::Intel) return false;
  return stable_hash("abi:" + file + ":" + c.str()) % 1000 < 16;  // 1.6%
}

namespace {
unsigned symbol_mix_rate(CompilerFamily f) {
  switch (f) {
    case CompilerFamily::GCC: return 340;    // 34% of runs crash
    case CompilerFamily::Clang: return 0;    // clang mixes cleanly
    case CompilerFamily::Intel: return 250;  // 25%
    case CompilerFamily::XLC: return 60;
  }
  return 0;
}
}  // namespace

bool symbol_mix_toxic(const std::string& file, const Compilation& a,
                      const Compilation& b) {
  // Same family: that family's strong/weak interposition reliability.
  // Mixed families: the non-GCC (non-baseline) toolchain dominates.
  unsigned rate = 0;
  if (a.compiler.family == b.compiler.family) {
    rate = symbol_mix_rate(a.compiler.family);
  } else {
    const CompilerFamily f = a.compiler.family != CompilerFamily::GCC
                                 ? a.compiler.family
                                 : b.compiler.family;
    rate = symbol_mix_rate(f);
  }
  std::string lo = a.str(), hi = b.str();
  if (hi < lo) std::swap(lo, hi);
  return stable_hash("sym:" + file + ":" + lo + "|" + hi) % 1000 < rate;
}

bool inlining_carries_variability(const fpsem::FunctionInfo& fn,
                                  const Compilation& c) {
  if (!fn.inline_candidate) return false;
  return stable_hash("inl:" + fn.name + ":" + c.str()) % 1000 < 300;  // 30%
}

}  // namespace flit::toolchain
