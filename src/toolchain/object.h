#pragma once

// Object files of the simulated toolchain.
//
// An ObjectFile is one translation unit compiled under one compilation
// triple: it defines strong (or, after objcopy, weak) symbols for the
// file's exported functions and carries the FnBinding each of the file's
// functions (exported and internal) executes with.

#include <string>
#include <unordered_map>
#include <vector>

#include "fpsem/code_model.h"
#include "fpsem/semantics.h"
#include "toolchain/compiler.h"

namespace flit::toolchain {

struct SymbolDef {
  std::string name;
  fpsem::FunctionId fn = fpsem::kInvalidFunction;
  bool strong = true;
};

struct ObjectFile {
  std::string source_file;
  Compilation comp;
  bool fpic = false;

  /// True for objects produced by the injection framework's instrumented
  /// build; functions whose winning copy comes from such an object carry
  /// the injected instruction.
  bool injected = false;

  /// Exported symbols defined by this object.
  std::vector<SymbolDef> symbols;

  /// Internal (static / always-inlined) functions of the file, reachable
  /// only through their host symbols.
  std::vector<fpsem::FunctionId> internal_fns;

  /// Compiled behaviour of every function in the file.
  std::unordered_map<fpsem::FunctionId, fpsem::FnBinding> bindings;
};

}  // namespace flit::toolchain
