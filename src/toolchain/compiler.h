#pragma once

// Compilers, optimization levels and switches.
//
// A *compilation* is the paper's triple (Compiler, Optimization Level,
// Switches) applied to a subset of source files.  This header defines the
// triple and the concrete compilation spaces used in the evaluation:
// the 244-point MFEM study space (68 g++, 72 clang++, 104 icpc points --
// matching the run counts of Table 1) and the xlc++ space of the Laghos
// case study.

#include <string>
#include <vector>

namespace flit::toolchain {

enum class CompilerFamily { GCC, Clang, Intel, XLC };

[[nodiscard]] const char* to_string(CompilerFamily f);

struct CompilerSpec {
  CompilerFamily family = CompilerFamily::GCC;
  std::string name;     ///< e.g. "g++"
  std::string version;  ///< e.g. "8.2.0"

  friend bool operator==(const CompilerSpec&, const CompilerSpec&) = default;
};

/// The compilers of the paper's evaluation (Table 1 + Sec. 3.4).
const CompilerSpec& gcc();
const CompilerSpec& clang();
const CompilerSpec& icpc();
const CompilerSpec& xlc();

enum class OptLevel { O0 = 0, O1 = 1, O2 = 2, O3 = 3 };

[[nodiscard]] const char* to_string(OptLevel o);

/// The paper's compilation triple.  `flag` is the single switch
/// combination paired with the base optimization level ("" for none).
struct Compilation {
  CompilerSpec compiler;
  OptLevel opt = OptLevel::O2;
  std::string flag;

  /// Canonical command-line rendering, e.g.
  /// "g++ -O2 -funsafe-math-optimizations".
  [[nodiscard]] std::string str() const;

  friend bool operator==(const Compilation&, const Compilation&) = default;
};

/// Switch lists paired with each optimization level, taken from the flag
/// sets of the original FLiT workload paper [Sawaya et al., IISWC'17].
const std::vector<std::string>& gcc_flags();    ///< 17 entries (incl. "")
const std::vector<std::string>& clang_flags();  ///< 18 entries (incl. "")
const std::vector<std::string>& icpc_flags();   ///< 26 entries (incl. "")

/// The full 244-compilation cartesian product of the MFEM study:
/// {g++, clang++, icpc} x {-O0..-O3} x per-compiler switch list.
std::vector<Compilation> mfem_study_space();

/// Compilations of the Laghos case study (Sec. 3.4 / Table 4).
Compilation laghos_trusted_gcc();     ///< g++ -O2
Compilation laghos_trusted_xlc();     ///< xlc++ -O2
Compilation laghos_strict_xlc();      ///< xlc++ -O3 -qstrict=vectorprecision
Compilation laghos_variable_xlc();    ///< xlc++ -O3 (the problematic one)

/// Trusted baseline of the MFEM study (results compared against it).
Compilation mfem_baseline();          ///< g++ -O0
/// Speed reference of the MFEM study (speedups are relative to it).
Compilation mfem_speed_reference();   ///< g++ -O2

}  // namespace flit::toolchain
