#include "toolchain/compiler.h"

namespace flit::toolchain {

const char* to_string(CompilerFamily f) {
  switch (f) {
    case CompilerFamily::GCC: return "GCC";
    case CompilerFamily::Clang: return "Clang";
    case CompilerFamily::Intel: return "Intel";
    case CompilerFamily::XLC: return "XLC";
  }
  return "?";
}

const CompilerSpec& gcc() {
  static const CompilerSpec s{CompilerFamily::GCC, "g++", "8.2.0"};
  return s;
}
const CompilerSpec& clang() {
  static const CompilerSpec s{CompilerFamily::Clang, "clang++", "6.0.1"};
  return s;
}
const CompilerSpec& icpc() {
  static const CompilerSpec s{CompilerFamily::Intel, "icpc", "18.0.3"};
  return s;
}
const CompilerSpec& xlc() {
  static const CompilerSpec s{CompilerFamily::XLC, "xlc++", "16.1.1"};
  return s;
}

const char* to_string(OptLevel o) {
  switch (o) {
    case OptLevel::O0: return "-O0";
    case OptLevel::O1: return "-O1";
    case OptLevel::O2: return "-O2";
    case OptLevel::O3: return "-O3";
  }
  return "?";
}

std::string Compilation::str() const {
  std::string s = compiler.name;
  s += ' ';
  s += to_string(opt);
  if (!flag.empty()) {
    s += ' ';
    s += flag;
  }
  return s;
}

const std::vector<std::string>& gcc_flags() {
  static const std::vector<std::string> flags = {
      "",
      "-fassociative-math",
      "-fcx-fortran-rules",
      "-fcx-limited-range",
      "-fexcess-precision=fast",
      "-ffinite-math-only",
      "-ffloat-store",
      "-ffp-contract=on",
      "-fmerge-all-constants",
      "-fno-trapping-math",
      "-freciprocal-math",
      "-frounding-math",
      "-fsignaling-nans",
      "-fsingle-precision-constant",
      "-funsafe-math-optimizations",
      "-mavx",
      "-mavx2 -mfma",
  };
  return flags;
}

const std::vector<std::string>& clang_flags() {
  static const std::vector<std::string> flags = {
      "",
      "-fassociative-math",
      "-fdenormal-fp-math=preserve-sign",
      "-ffast-math",
      "-ffinite-math-only",
      "-ffp-contract=fast",
      "-ffp-contract=on",
      "-fmerge-all-constants",
      "-fno-trapping-math",
      "-freciprocal-math",
      "-frounding-math",
      "-fsingle-precision-constant",
      "-funsafe-math-optimizations",
      "-march=core-avx2",
      "-mavx",
      "-mavx2 -mfma",
      "-mfma",
      "-Wno-everything",  // control: a semantics-neutral switch
  };
  return flags;
}

const std::vector<std::string>& icpc_flags() {
  static const std::vector<std::string> flags = {
      "",
      "-fast-transcendentals",
      "-fimf-precision=high",
      "-fimf-precision=low",
      "-fimf-precision=medium",
      "-fma",
      "-fp-model double",
      "-fp-model extended",
      "-fp-model fast=1",
      "-fp-model fast=2",
      "-fp-model precise",
      "-fp-model source",
      "-fp-model strict",
      "-fp-port",
      "-ftz",
      "-march=core-avx2",
      "-mavx",
      "-mavx2 -mfma",
      "-mieee-fp",
      "-no-fast-transcendentals",
      "-no-fma",
      "-no-ftz",
      "-no-prec-div",
      "-no-prec-sqrt",
      "-prec-div",
      "-prec-sqrt",
  };
  return flags;
}

std::vector<Compilation> mfem_study_space() {
  std::vector<Compilation> out;
  const OptLevel opts[] = {OptLevel::O0, OptLevel::O1, OptLevel::O2,
                           OptLevel::O3};
  const auto append = [&](const CompilerSpec& c,
                          const std::vector<std::string>& flags) {
    for (OptLevel o : opts) {
      for (const std::string& f : flags) out.push_back({c, o, f});
    }
  };
  append(gcc(), gcc_flags());
  append(clang(), clang_flags());
  append(icpc(), icpc_flags());
  return out;
}

Compilation laghos_trusted_gcc() { return {gcc(), OptLevel::O2, ""}; }
Compilation laghos_trusted_xlc() { return {xlc(), OptLevel::O2, ""}; }
Compilation laghos_strict_xlc() {
  return {xlc(), OptLevel::O3, "-qstrict=vectorprecision"};
}
Compilation laghos_variable_xlc() { return {xlc(), OptLevel::O3, ""}; }

Compilation mfem_baseline() { return {gcc(), OptLevel::O0, ""}; }
Compilation mfem_speed_reference() { return {gcc(), OptLevel::O2, ""}; }

}  // namespace flit::toolchain
