#pragma once

// Derivation rules: compilation triple -> floating-point semantics + cost.
//
// These rules encode each compiler's published floating-point behaviour:
//  * g++ honours IEEE semantics by default; value-changing behaviour needs
//    explicit flags (-funsafe-math-optimizations, -fassociative-math,
//    -freciprocal-math) or FMA-capable ISA selection (-mavx2 -mfma, with
//    GCC's default -ffp-contract=fast contracting mul+add chains).
//  * clang++ 6 is the most conservative: no contraction by default even
//    when FMA hardware is selected; only fast-math-family flags change
//    values.  (This is why clang shows the fewest variable compilations in
//    Table 1.)
//  * icpc defaults to -fp-model fast=1 at -O1 and above (reassociation +
//    FMA), and its *link step* substitutes the fast vendor libm regardless
//    of per-TU switches -- reproducing both the ~50% variable-compilation
//    rate of Table 1 and the "Intel link step" variability of Figure 5.
//  * xlc++ contracts FMA at -O2 and becomes value-unsafe (and aggressive
//    enough to break UB-dependent idioms) at -O3 unless
//    -qstrict=vectorprecision is given -- the Laghos story of Sec. 3.4.
//
// The same header hosts the deterministic "hardware/ABI hazard" predicates
// (hash-seeded, reproducible): which Intel-compiled objects are
// ABI-incompatible with g++-compiled ones (the segfaults behind Table 2's
// File Bisect failure rate) and which symbol-level mixes crash.

#include <string>

#include "fpsem/code_model.h"
#include "fpsem/semantics.h"
#include "toolchain/compiler.h"

namespace flit::toolchain {

/// Floating-point semantics of code compiled under `c` (TU-level view;
/// does not include per-function libm or inlining adjustments).
fpsem::FpSemantics derive_semantics(const Compilation& c);

/// Deterministic cost factors of code compiled under `c`.
fpsem::CostFactors derive_cost(const Compilation& c);

/// True when `c` compiles calls to transcendental functions against the
/// vendor's fast low-accuracy libm at *compile* time (e.g. icpc
/// -fimf-precision=low, -fast-transcendentals, -fp-model fast=2).
bool compile_time_fast_libm(const Compilation& c);

/// True when the *link step* driven by `link_compiler` substitutes the
/// fast vendor libm for every transcendental call in the binary,
/// regardless of per-TU switches (the icpc behaviour of Sec. 3.1).
bool link_step_fast_libm(const CompilerSpec& link_compiler);

/// Per-function compiled binding under `c`.  Accounts for:
///  * compile-time fast libm on libm-using functions,
///  * -fPIC: slight call overhead, and -- for cross-TU inline candidates
///    whose variability came from inlining-enabled optimization -- loss of
///    that variability (the Sec. 2.3 "variability removed by -fPIC" case).
fpsem::FnBinding derive_binding(const Compilation& c,
                                const fpsem::FunctionInfo& fn, bool fpic);

/// Deterministic predicate: is this (file, compilation) object file
/// ABI-incompatible with g++-compiled objects?  Linking such an object
/// into a mixed binary crashes it at run time (Table 2 failures).
bool abi_toxic(const std::string& file, const Compilation& c);

/// Deterministic predicate: does linking two differently-compiled copies
/// of `file` (the Symbol Bisect strong/weak trick) produce a crashing
/// executable?  Symmetric in (a, b).
bool symbol_mix_toxic(const std::string& file, const Compilation& a,
                      const Compilation& b);

/// Deterministic predicate: is the variability `fn` exhibits under `c`
/// created by cross-TU inlining (and therefore removed by -fPIC)?
bool inlining_carries_variability(const fpsem::FunctionInfo& fn,
                                  const Compilation& c);

/// Stable 64-bit FNV-1a hash used by all hazard predicates.
std::uint64_t stable_hash(const std::string& s);

}  // namespace flit::toolchain
