#pragma once

// The simulated link step.
//
// Resolves symbols across object files using real linker rules (two strong
// definitions clash; a strong definition beats any number of weak ones;
// otherwise the first weak definition in link order wins), produces the
// executable's FunctionId -> FnBinding map, applies the link-step fast-libm
// substitution of vendor link drivers, and models the two run-time hazards
// the paper encountered: ABI-incompatible icpc/g++ mixes that segfault, and
// fragile strong/weak interposition in Symbol Bisect mixes.

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "fpsem/env.h"
#include "toolchain/object.h"

namespace flit::toolchain {

/// Thrown for link-time errors (duplicate strong symbols, unresolved
/// symbols, files missing from the link line).
class LinkError : public std::runtime_error {
 public:
  enum class Kind { DuplicateStrong, Unresolved, MissingFile };

  LinkError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// A linked image: the per-function semantics map plus run-time hazard
/// state.  `crashes` means executing this binary terminates with a signal
/// (the paper's mixed-executable segfaults); callers must check it before
/// interpreting results.
struct Executable {
  fpsem::SemanticsMap map;
  bool crashes = false;
  std::string crash_reason;

  /// Functions whose winning definition came from an injection-
  /// instrumented object (see ObjectFile::injected).
  std::vector<bool> from_injected;
};

class Linker {
 public:
  explicit Linker(const fpsem::CodeModel* model) : model_(model) {}

  /// Links `objects` into an executable with link driver `link_compiler`.
  /// Every source file of the code model must be covered by at least one
  /// object.  Throws LinkError on link-time failures.
  [[nodiscard]] Executable link(std::span<const ObjectFile> objects,
                                const CompilerSpec& link_compiler) const;

 private:
  const fpsem::CodeModel* model_;
};

}  // namespace flit::toolchain
