#pragma once

// A shared, thread-safe memo of per-file compilations.
//
// The derivation rules collapse many (compiler, -O, switches) triples onto
// the same per-file floating-point semantics and cost -- inert flags,
// equivalent fp-models, same-family optimization levels -- so most of the
// 244-point study space recompiles a file into an object whose bindings
// already exist.  The cache therefore keys on the *derived-semantics
// fingerprint* of a compilation, not the raw triple: a fingerprint over
// derive_semantics(c) and derive_cost(c) (plus, for -fPIC objects, the
// canonical compilation string, because the -fPIC inlining-loss predicate
// is seeded by it).  Two compilations with equal fingerprints produce
// byte-for-byte identical bindings, so a hit only has to restamp the
// requested Compilation onto the cached object -- the raw `comp` field
// still matters downstream (ABI-hazard predicates hash it), which is why
// the Compilation itself cannot be the key *or* be cached.
//
// The cache is shared across threads of the parallel study engine and
// across serial Bisect drivers (which relink far more often than they need
// to recompile); all methods are safe for concurrent use.
//
// Bounded memory: set_budget(bytes) caps the cache's resident footprint
// for long-lived deployments (the study service shares one cache across
// every tenant).  Eviction is LRU over *semantics-fingerprint groups*: all
// entries whose compilation collapses onto one non-fPIC fingerprint --
// the affinity placement's co-location unit -- age together, so evicting
// reclaims a whole group's objects at once and a half-resident group never
// lingers (a study that needs one member of a group almost always needs
// them all).  Eviction only ever changes wall-clock and hit/miss tallies:
// a rebuilt entry is byte-identical to the evicted one (fingerprint
// equality implies binding equality), so cached -- or evicted -- contents
// can never alter study results.

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "toolchain/object.h"

namespace flit::toolchain {

/// Deterministic approximation of an object's resident footprint, the
/// unit of the cache budget.  A pure function of the object's contents
/// (never of allocator or padding details), so budget-driven eviction
/// decisions are reproducible across runs and platforms.
[[nodiscard]] std::uint64_t approx_object_bytes(const ObjectFile& obj);

class CompilationCache {
 public:
  /// Hit/miss/eviction tallies.  A value type with additive merge: the
  /// distributed engine runs one cache per shard and sums the per-shard
  /// stats into an aggregate hit-rate report instead of recomputing from
  /// scratch.  The subtractive merge is the complement: the study service
  /// snapshots the shared cache around each tenant's batch and attributes
  /// the delta, so per-tenant stats sum back to the aggregate exactly.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    /// Entries removed by the bounded-memory policy or clear(), counted
    /// per entry (a wholesale clear of N entries is N evictions).
    std::uint64_t evictions = 0;

    /// approx_object_bytes totals of every entry ever inserted / evicted.
    /// Both are monotone counters (so deltas subtract cleanly); the
    /// difference is the cache's current resident footprint.
    std::uint64_t inserted_bytes = 0;
    std::uint64_t evicted_bytes = 0;

    [[nodiscard]] std::uint64_t lookups() const { return hits + misses; }
    [[nodiscard]] double hit_rate() const {
      return lookups() == 0 ? 0.0
                            : static_cast<double>(hits) /
                                  static_cast<double>(lookups());
    }
    /// Current resident footprint implied by the byte counters.
    [[nodiscard]] std::uint64_t resident_bytes() const {
      return inserted_bytes - evicted_bytes;
    }

    Stats& operator+=(const Stats& other) {
      hits += other.hits;
      misses += other.misses;
      evictions += other.evictions;
      inserted_bytes += other.inserted_bytes;
      evicted_bytes += other.evicted_bytes;
      return *this;
    }
    friend Stats operator+(Stats a, const Stats& b) { return a += b; }

    /// Counter-wise difference of two snapshots of the *same* cache
    /// (every field is monotone between snapshots, so `later - earlier`
    /// is the activity in between -- the per-tenant attribution unit).
    Stats& operator-=(const Stats& other) {
      hits -= other.hits;
      misses -= other.misses;
      evictions -= other.evictions;
      inserted_bytes -= other.inserted_bytes;
      evicted_bytes -= other.evicted_bytes;
      return *this;
    }
    friend Stats operator-(Stats a, const Stats& b) { return a -= b; }
    friend bool operator==(const Stats&, const Stats&) = default;
  };

  /// Returns the object for (file, c, fpic, injected), invoking `build`
  /// only when no semantically-equivalent compilation of the file is
  /// cached.  The returned object always carries `c` as its compilation.
  [[nodiscard]] ObjectFile get_or_build(
      const std::string& file, const Compilation& c, bool fpic, bool injected,
      const std::function<ObjectFile()>& build);

  [[nodiscard]] Stats stats() const;
  void clear();

  /// Caps the resident footprint at `bytes` of approx_object_bytes,
  /// evicting least-recently-used fingerprint groups immediately and on
  /// every subsequent insertion.  A budget of 0 retains nothing (every
  /// lookup misses -- the cold-cache floor the study service's
  /// `--cache-budget 0` configuration measures against); nullopt (the
  /// default) restores the historical unbounded behavior.
  void set_budget(std::optional<std::uint64_t> bytes);
  [[nodiscard]] std::optional<std::uint64_t> budget() const;

  /// Current resident footprint / entry count (0 after clear()).
  [[nodiscard]] std::uint64_t resident_bytes() const;
  [[nodiscard]] std::size_t resident_entries() const;

  /// The semantics fingerprint of `c`: equal fingerprints guarantee equal
  /// per-file bindings (for the given fpic mode).  Exposed for tests.
  [[nodiscard]] static std::uint64_t fingerprint(const Compilation& c,
                                                 bool fpic);

  /// The affinity-grouping key of `c`: compilations with equal groups hit
  /// each other in this cache for every non-fPIC object, so a placement
  /// that co-locates a group compiles its fingerprint once per fleet.
  /// (-fPIC objects additionally key on the raw triple, but a study item's
  /// object set is dominated by non-fPIC bindings, so the non-fPIC
  /// fingerprint is the right co-location key.)  The bounded-memory policy
  /// ages and evicts entries by this same group.
  [[nodiscard]] static std::uint64_t semantics_group(const Compilation& c) {
    return fingerprint(c, /*fpic=*/false);
  }

 private:
  struct Key {
    std::string file;
    std::uint64_t fingerprint = 0;
    bool fpic = false;
    bool injected = false;

    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  struct Entry {
    ObjectFile obj;
    std::uint64_t group = 0;  ///< semantics_group of the inserted comp
    std::uint64_t bytes = 0;  ///< approx_object_bytes at insertion
  };

  /// One LRU unit: the keys and footprint of a semantics-fingerprint
  /// group, plus its position in the recency list.
  struct GroupInfo {
    std::list<std::uint64_t>::iterator lru_pos;
    std::vector<Key> keys;
    std::uint64_t bytes = 0;
  };

  /// Moves `group` to most-recently-used (creating it if new); caller
  /// holds mu_.
  void touch_group_locked(std::uint64_t group);

  /// Evicts least-recently-used groups until the resident footprint fits
  /// the budget; caller holds mu_.
  void evict_to_budget_locked();

  mutable std::mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  Stats stats_;

  std::optional<std::uint64_t> budget_;
  std::uint64_t resident_bytes_ = 0;
  std::list<std::uint64_t> lru_;  ///< group ids, front = LRU, back = MRU
  std::unordered_map<std::uint64_t, GroupInfo> groups_;
};

/// The mergeable per-cache statistics value (one per shard in the
/// distributed engine; summed with operator+= into the aggregate report,
/// subtracted for the study service's per-tenant attribution).
using CacheStats = CompilationCache::Stats;

}  // namespace flit::toolchain
