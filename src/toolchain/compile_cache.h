#pragma once

// A shared, thread-safe memo of per-file compilations.
//
// The derivation rules collapse many (compiler, -O, switches) triples onto
// the same per-file floating-point semantics and cost -- inert flags,
// equivalent fp-models, same-family optimization levels -- so most of the
// 244-point study space recompiles a file into an object whose bindings
// already exist.  The cache therefore keys on the *derived-semantics
// fingerprint* of a compilation, not the raw triple: a fingerprint over
// derive_semantics(c) and derive_cost(c) (plus, for -fPIC objects, the
// canonical compilation string, because the -fPIC inlining-loss predicate
// is seeded by it).  Two compilations with equal fingerprints produce
// byte-for-byte identical bindings, so a hit only has to restamp the
// requested Compilation onto the cached object -- the raw `comp` field
// still matters downstream (ABI-hazard predicates hash it), which is why
// the Compilation itself cannot be the key *or* be cached.
//
// The cache is shared across threads of the parallel study engine and
// across serial Bisect drivers (which relink far more often than they need
// to recompile); all methods are safe for concurrent use.

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

#include "toolchain/object.h"

namespace flit::toolchain {

class CompilationCache {
 public:
  /// Hit/miss tallies.  A value type with additive merge: the distributed
  /// engine runs one cache per shard and sums the per-shard stats into an
  /// aggregate hit-rate report instead of recomputing from scratch.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    [[nodiscard]] std::uint64_t lookups() const { return hits + misses; }
    [[nodiscard]] double hit_rate() const {
      return lookups() == 0 ? 0.0
                            : static_cast<double>(hits) /
                                  static_cast<double>(lookups());
    }

    Stats& operator+=(const Stats& other) {
      hits += other.hits;
      misses += other.misses;
      return *this;
    }
    friend Stats operator+(Stats a, const Stats& b) { return a += b; }
    friend bool operator==(const Stats&, const Stats&) = default;
  };

  /// Returns the object for (file, c, fpic, injected), invoking `build`
  /// only when no semantically-equivalent compilation of the file is
  /// cached.  The returned object always carries `c` as its compilation.
  [[nodiscard]] ObjectFile get_or_build(
      const std::string& file, const Compilation& c, bool fpic, bool injected,
      const std::function<ObjectFile()>& build);

  [[nodiscard]] Stats stats() const;
  void clear();

  /// The semantics fingerprint of `c`: equal fingerprints guarantee equal
  /// per-file bindings (for the given fpic mode).  Exposed for tests.
  [[nodiscard]] static std::uint64_t fingerprint(const Compilation& c,
                                                 bool fpic);

  /// The affinity-grouping key of `c`: compilations with equal groups hit
  /// each other in this cache for every non-fPIC object, so a placement
  /// that co-locates a group compiles its fingerprint once per fleet.
  /// (-fPIC objects additionally key on the raw triple, but a study item's
  /// object set is dominated by non-fPIC bindings, so the non-fPIC
  /// fingerprint is the right co-location key.)
  [[nodiscard]] static std::uint64_t semantics_group(const Compilation& c) {
    return fingerprint(c, /*fpic=*/false);
  }

 private:
  struct Key {
    std::string file;
    std::uint64_t fingerprint = 0;
    bool fpic = false;
    bool injected = false;

    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  mutable std::mutex mu_;
  std::unordered_map<Key, ObjectFile, KeyHash> entries_;
  Stats stats_;
};

/// The mergeable per-cache statistics value (one per shard in the
/// distributed engine; summed with operator+= into the aggregate report).
using CacheStats = CompilationCache::Stats;

}  // namespace flit::toolchain
