#pragma once

// The simulated build system: compiles model source files into object
// files under a compilation triple, and provides the convenience "compile
// everything" entry the FLiT runner and Bisect drivers use.

#include <string>
#include <vector>

#include "fpsem/code_model.h"
#include "toolchain/compile_cache.h"
#include "toolchain/object.h"

namespace flit::toolchain {

class BuildSystem {
 public:
  /// `cache`, when non-null, memoizes per-file objects across semantically
  /// equivalent compilations; it may be shared with other BuildSystems and
  /// with other threads (CompilationCache is thread-safe).  The cache must
  /// outlive this BuildSystem.
  explicit BuildSystem(const fpsem::CodeModel* model,
                       CompilationCache* cache = nullptr)
      : model_(model), cache_(cache) {}

  /// Compiles one source file of the model under `c`.
  /// `fpic` models -fPIC (Symbol Bisect recompiles with it); `injected`
  /// marks the object as coming from the instrumented injection build.
  [[nodiscard]] ObjectFile compile(const std::string& file,
                                   const Compilation& c, bool fpic = false,
                                   bool injected = false) const;

  /// Compiles every file of the model under `c`.
  [[nodiscard]] std::vector<ObjectFile> compile_all(
      const Compilation& c, bool fpic = false, bool injected = false) const;

  [[nodiscard]] const fpsem::CodeModel& model() const { return *model_; }

  void set_cache(CompilationCache* cache) { cache_ = cache; }
  [[nodiscard]] CompilationCache* cache() const { return cache_; }

 private:
  [[nodiscard]] ObjectFile compile_uncached(const std::string& file,
                                            const Compilation& c, bool fpic,
                                            bool injected) const;

  const fpsem::CodeModel* model_;
  CompilationCache* cache_;
};

}  // namespace flit::toolchain
