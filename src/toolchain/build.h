#pragma once

// The simulated build system: compiles model source files into object
// files under a compilation triple, and provides the convenience "compile
// everything" entry the FLiT runner and Bisect drivers use.

#include <string>
#include <vector>

#include "fpsem/code_model.h"
#include "toolchain/object.h"

namespace flit::toolchain {

class BuildSystem {
 public:
  explicit BuildSystem(const fpsem::CodeModel* model) : model_(model) {}

  /// Compiles one source file of the model under `c`.
  /// `fpic` models -fPIC (Symbol Bisect recompiles with it); `injected`
  /// marks the object as coming from the instrumented injection build.
  [[nodiscard]] ObjectFile compile(const std::string& file,
                                   const Compilation& c, bool fpic = false,
                                   bool injected = false) const;

  /// Compiles every file of the model under `c`.
  [[nodiscard]] std::vector<ObjectFile> compile_all(
      const Compilation& c, bool fpic = false, bool injected = false) const;

  [[nodiscard]] const fpsem::CodeModel& model() const { return *model_; }

 private:
  const fpsem::CodeModel* model_;
};

}  // namespace flit::toolchain
