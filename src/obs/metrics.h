#pragma once

// The metrics half of the observability subsystem (src/obs): named
// counters, gauges, and fixed-bucket histograms behind a thread-safe
// registry, with a plain-value snapshot that merges additively -- the same
// shape as toolchain::CacheStats::operator+= -- so per-shard metrics sum
// into a fleet view.
//
// Determinism contract: telemetry is strictly off the result path, and the
// metric *values* themselves are reproducible wherever the underlying
// tallies are.  Counter and bucket increments are order-independent
// integer additions, and real-valued observations (modeled cycles)
// accumulate in fixed-point 1/1024 units, so a histogram's sum is the same
// at any --jobs count or interleaving.  The one documented exception is
// counters fed by racy tallies (the compilation cache's hit/miss split can
// shift when two threads race to build the same key) -- exactly the
// variance CacheStats already has today.
//
// Merge semantics of MetricsSnapshot::operator+=: counters and histogram
// data sum; gauges record levels (space size, shard count), so a merged
// gauge takes the maximum (the fleet peak).  Histograms only merge when
// their bucket bounds match; a mismatch throws rather than silently
// misfiling observations.
//
// This header is standard-library only (like core/faults.h) so the
// toolchain layer can count cache traffic without a dependency cycle.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace flit::obs {

/// Fixed-point accumulator for real-valued observations: integer 1/1024
/// units make sums associative, hence independent of thread interleaving.
using FixedPoint = std::int64_t;
inline constexpr std::int64_t kFixedPointScale = 1024;

[[nodiscard]] FixedPoint to_fixed(double v);
[[nodiscard]] double from_fixed(FixedPoint v);

/// The plain-value payload of one histogram: `bounds` are ascending bucket
/// upper bounds, `counts` has bounds.size() + 1 entries (the last is the
/// overflow bucket).  A value v lands in the first bucket with
/// v <= bounds[b].
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  FixedPoint sum = 0;
  FixedPoint min = 0;  ///< meaningful only when count > 0
  FixedPoint max = 0;  ///< meaningful only when count > 0

  explicit HistogramData(std::vector<double> bucket_bounds = {});

  void observe(double v);

  [[nodiscard]] double mean() const;
  [[nodiscard]] double min_value() const { return from_fixed(min); }
  [[nodiscard]] double max_value() const { return from_fixed(max); }

  /// Bucket-interpolated quantile estimate (q in [0, 1]); exact at the
  /// extremes (q=0 -> min, q=1 -> max), approximate in between -- the
  /// usual fixed-bucket tradeoff.  0 when empty.
  [[nodiscard]] double quantile(double q) const;

  /// Additive merge; throws std::invalid_argument when the bucket bounds
  /// differ (observations must never be silently misfiled).
  HistogramData& operator+=(const HistogramData& other);
  friend HistogramData operator+(HistogramData a, const HistogramData& b) {
    return a += b;
  }
  friend bool operator==(const HistogramData&, const HistogramData&) = default;
};

/// Geometric bucket bounds: start, start*factor, ... (count entries).
[[nodiscard]] std::vector<double> exponential_buckets(double start,
                                                      double factor,
                                                      int count);

/// The default bounds for modeled-cycle histograms: powers of two from 1
/// to 2^39, wide enough for any study item in the simulated toolchain.
[[nodiscard]] const std::vector<double>& cycle_buckets();

/// A merged, order-independent view of one registry (or of many, via
/// operator+=): the value type the distributed engine ships per shard.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  MetricsSnapshot& operator+=(const MetricsSnapshot& other);
  friend MetricsSnapshot operator+(MetricsSnapshot a,
                                   const MetricsSnapshot& b) {
    return a += b;
  }
  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;

  /// Human-readable summary table (the `flit ... --metrics-out` stderr
  /// companion): one line per metric, histograms as
  /// count/min/~median/max/mean.
  [[nodiscard]] std::string table() const;

  /// JSON object {"counters":{...},"gauges":{...},"histograms":{...}};
  /// keys sorted (std::map order), so equal snapshots render equal bytes.
  [[nodiscard]] std::string json() const;
};

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds)
      : data_(std::move(bounds)) {}

  void observe(double v);
  [[nodiscard]] HistogramData data() const;
  [[nodiscard]] const std::vector<double>& bounds() const {
    return data_.bounds;
  }
  void reset();

 private:
  mutable std::mutex mu_;
  HistogramData data_;
};

/// Thread-safe name -> instrument registry.  Handles returned by
/// counter()/gauge()/histogram() are stable for the registry's lifetime
/// (reset() zeroes values without invalidating them), so hot paths can
/// cache the reference once instead of re-resolving the name per event.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);

  /// Registers (or re-finds) a histogram.  Re-registering an existing name
  /// with different bounds throws std::invalid_argument.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every instrument, keeping registrations (and outstanding
  /// references) valid.  For tests and benches that reuse the process
  /// global.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace flit::obs
