#include "obs/session.h"

namespace flit::obs {

Session& Session::global() {
  static Session instance;
  return instance;
}

}  // namespace flit::obs
