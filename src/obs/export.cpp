#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace flit::obs {

namespace {

std::string cost_str(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", v);  // round-trip exact
  return buf;
}

/// The signed index the JSON schema exposes (-1 = outside any item).
long long json_index(std::uint64_t index) {
  return index == kNoIndex ? -1LL : static_cast<long long>(index);
}

struct ItemKey {
  int shard;
  std::uint64_t index;
  int attempt;
  friend bool operator==(const ItemKey&, const ItemKey&) = default;
};

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += static_cast<char>(ch);
        }
    }
  }
  return out;
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";

  // Per-lane cursor walk over the sorted stream: an item's events share a
  // base; the next item (or the lane's item-less tail) starts where the
  // previous one ended, keeping each lane's ts monotone.
  std::map<int, std::uint64_t> lane_cursor;
  bool first = true;
  std::size_t i = 0;
  while (i < events.size()) {
    const ItemKey key{events[i].shard, events[i].index, events[i].attempt};
    std::size_t end = i;
    std::uint32_t max_tick = 0;
    while (end < events.size() &&
           ItemKey{events[end].shard, events[end].index,
                   events[end].attempt} == key) {
      max_tick = std::max(max_tick, events[end].end_tick);
      ++end;
    }
    const int tid = key.shard + 1;
    const std::uint64_t base = lane_cursor[tid];
    for (; i < end; ++i) {
      const TraceEvent& e = events[i];
      os << (first ? "" : ",") << "{\"name\":\"" << json_escape(e.name)
         << "\",\"cat\":\"" << json_escape(e.phase)
         << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tid
         << ",\"ts\":" << base + e.begin_tick
         << ",\"dur\":" << e.end_tick - e.begin_tick
         << ",\"args\":{\"detail\":\"" << json_escape(e.detail)
         << "\",\"shard\":" << e.shard
         << ",\"index\":" << json_index(e.index)
         << ",\"attempt\":" << e.attempt << ",\"cost\":" << cost_str(e.cost)
         << "}}";
      first = false;
    }
    lane_cursor[tid] = base + max_tick + 1;
  }
  os << "]}";
  return os.str();
}

std::string events_jsonl(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  for (const TraceEvent& e : events) {
    os << "{\"name\":\"" << json_escape(e.name) << "\",\"phase\":\""
       << json_escape(e.phase) << "\",\"detail\":\"" << json_escape(e.detail)
       << "\",\"shard\":" << e.shard << ",\"index\":" << json_index(e.index)
       << ",\"attempt\":" << e.attempt << ",\"begin\":" << e.begin_tick
       << ",\"end\":" << e.end_tick << ",\"cost\":" << cost_str(e.cost)
       << "}\n";
  }
  return os.str();
}

}  // namespace flit::obs
