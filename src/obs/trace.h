#pragma once

// The tracing half of the observability subsystem (src/obs): an RAII span
// tracer with per-thread buffered sinks and a deterministic merge.
//
// Wall-clock time is useless for a reproducibility engine -- the same
// study runs with different timings at every --jobs count -- so spans do
// not record it.  Instead each event carries the *identity* of the work it
// measures: the (shard, space-index, attempt) stamp of the study item it
// ran under, item-local begin/end ticks (a logical clock that advances at
// every span open and close, so nesting is reconstructible), and the
// modeled-cycle cost the simulated toolchain attributes to the span.  All
// of that is a pure function of the study's configuration, never of
// scheduling: drain_sorted() orders events by (shard, index, attempt,
// ticks) and the resulting stream is bitwise-identical at any --jobs count
// and across reruns.
//
// Threading model: each thread appends to its own buffer (registered with
// the tracer under a mutex on first use; appends are lock-free
// thereafter).  drain_sorted() must only run at a quiescent point -- after
// the pools have joined, which every engine call guarantees before it
// returns.  Stamps are thread-local, installed by the RAII ScopedItem
// exactly where the engines install FaultInjector::ScopedTrial.
//
// Telemetry is strictly off the result path: a disabled tracer makes Span
// construction a pointer check, and nothing here feeds back into outcomes.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace flit::obs {

/// Index stamp for events outside any study item (anchor runs, phase
/// spans); sorts after every real space index.
inline constexpr std::uint64_t kNoIndex = ~0ULL;

struct TraceEvent {
  std::string name;    ///< span name ("build", "link", "run", ...)
  std::string phase;   ///< pipeline phase ("explore", "bisect", ...)
  std::string detail;  ///< free-form (compilation triple, test name, ...)
  int shard = 0;
  std::uint64_t index = kNoIndex;  ///< global space index (kNoIndex = none)
  int attempt = 0;
  std::uint32_t begin_tick = 0;  ///< item-local logical open time
  std::uint32_t end_tick = 0;    ///< item-local logical close time
  double cost = 0.0;             ///< modeled cycles attributed to the span

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// The deterministic event order: lexicographic on (shard, index, attempt,
/// begin_tick, end_tick, name, phase, detail).
[[nodiscard]] bool trace_event_less(const TraceEvent& a, const TraceEvent& b);

class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Appends to the calling thread's buffer (registered on first use).
  void record(TraceEvent e);

  /// Collects every thread buffer, sorts deterministically
  /// (trace_event_less), and clears the tracer.  Call only at a quiescent
  /// point: no concurrent record() (engine entry points return after
  /// their pools join, so "after the study call" is always safe).
  [[nodiscard]] std::vector<TraceEvent> drain_sorted();

 private:
  struct Buffer {
    std::vector<TraceEvent> events;
  };

  Buffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> id_;  ///< unique per tracer epoch (trace.cpp)
  std::mutex mu_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

/// The thread-local stamp spans inherit.
struct ItemContext {
  int shard = 0;
  std::uint64_t index = kNoIndex;
  int attempt = 0;
  std::uint32_t tick = 0;  ///< item-local logical clock
};

[[nodiscard]] const ItemContext& current_item();

/// RAII stamp for one study item (or one attempt of it): saves the
/// calling thread's context, installs (shard, index, attempt) with a fresh
/// tick clock, and restores the previous context on destruction.  Install
/// it exactly where the retrying caller installs ScopedTrial.
class ScopedItem {
 public:
  ScopedItem(int shard, std::uint64_t index, int attempt);
  ~ScopedItem();
  ScopedItem(const ScopedItem&) = delete;
  ScopedItem& operator=(const ScopedItem&) = delete;

 private:
  ItemContext prev_;
};

/// An RAII span: opens on construction (claiming a begin tick), records a
/// TraceEvent stamped with the current ItemContext on destruction.  A null
/// tracer (or a disabled one) makes the span inert -- construction is a
/// branch, destruction a no-op.
class Span {
 public:
  Span(Tracer* tracer, std::string name, std::string phase,
       std::string detail = {});
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attributes modeled cycles to the span (e.g. the run's cycle count).
  void set_cost(double cycles) { ev_.cost = cycles; }

 private:
  Tracer* tracer_;  ///< null: inert span
  TraceEvent ev_;
};

}  // namespace flit::obs
