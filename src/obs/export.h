#pragma once

// Trace exporters: Chrome trace_event JSON (loadable in about://tracing or
// https://ui.perfetto.dev) and a JSONL structured event log, both rendered
// from the deterministic event stream Tracer::drain_sorted() produces.
//
// The Chrome export synthesizes a *modeled* timeline, because the events
// deliberately carry no wall-clock time (see obs/trace.h).  Each shard is
// one lane (tid = shard + 1); events sharing an item stamp (shard, index,
// attempt) are laid out at `item base + begin tick`, and the next item's
// base starts where the previous item ended, so per-lane timestamps are
// monotone by construction and byte-identical across reruns.  Timestamp
// units are logical ticks, not microseconds: the layout shows structure
// (nesting, per-phase breakdown, per-item cost in args.cost), not elapsed
// time.

#include <string>
#include <vector>

#include "obs/trace.h"

namespace flit::obs {

/// RFC 8259 string escaping: quote, backslash, and control characters
/// (\uXXXX for the unprintables).  Returns the escaped body without the
/// surrounding quotes.
[[nodiscard]] std::string json_escape(const std::string& s);

/// Chrome trace_event JSON ({"traceEvents":[...]}, "X" complete events).
/// `events` must be in drain_sorted() order -- the synthetic per-lane
/// timeline depends on it (and per-lane ts monotonicity is only guaranteed
/// for sorted input).
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<TraceEvent>& events);

/// One JSON object per line, schema:
/// {"name":...,"phase":...,"detail":...,"shard":N,"index":N|-1,
///  "attempt":N,"begin":N,"end":N,"cost":X}
[[nodiscard]] std::string events_jsonl(const std::vector<TraceEvent>& events);

}  // namespace flit::obs
