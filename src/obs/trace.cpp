#include "obs/trace.h"

#include <algorithm>
#include <tuple>
#include <utility>

namespace flit::obs {

namespace {

thread_local ItemContext tl_item;  // NOLINT(cert-err58-cpp)

/// Monotone tracer-epoch ids: a thread's cached buffer pointer is only
/// reused while (tracer, epoch) match, so a drained or destroyed tracer
/// can never hand a stale buffer to a long-lived pool worker.
std::atomic<std::uint64_t> g_tracer_epoch{1};

struct LocalSlot {
  const void* owner = nullptr;
  std::uint64_t epoch = 0;
  void* buffer = nullptr;
};
thread_local LocalSlot tl_slot;

}  // namespace

bool trace_event_less(const TraceEvent& a, const TraceEvent& b) {
  return std::tie(a.shard, a.index, a.attempt, a.begin_tick, a.end_tick,
                  a.name, a.phase, a.detail) <
         std::tie(b.shard, b.index, b.attempt, b.begin_tick, b.end_tick,
                  b.name, b.phase, b.detail);
}

Tracer::Tracer() : id_(g_tracer_epoch.fetch_add(1)) {}

Tracer::~Tracer() = default;

Tracer::Buffer& Tracer::local_buffer() {
  const std::uint64_t epoch = id_.load(std::memory_order_acquire);
  if (tl_slot.owner == this && tl_slot.epoch == epoch) {
    return *static_cast<Buffer*>(tl_slot.buffer);
  }
  std::lock_guard lock(mu_);
  buffers_.push_back(std::make_unique<Buffer>());
  Buffer* buf = buffers_.back().get();
  tl_slot = {this, epoch, buf};
  return *buf;
}

void Tracer::record(TraceEvent e) {
  local_buffer().events.push_back(std::move(e));
}

std::vector<TraceEvent> Tracer::drain_sorted() {
  std::vector<std::unique_ptr<Buffer>> taken;
  {
    std::lock_guard lock(mu_);
    taken.swap(buffers_);
  }
  // Invalidate every thread's cached pointer into the taken buffers; the
  // epoch bump forces re-registration on the next record().
  id_.store(g_tracer_epoch.fetch_add(1), std::memory_order_release);

  std::vector<TraceEvent> events;
  for (auto& buf : taken) {
    events.insert(events.end(),
                  std::make_move_iterator(buf->events.begin()),
                  std::make_move_iterator(buf->events.end()));
  }
  std::sort(events.begin(), events.end(), trace_event_less);
  return events;
}

const ItemContext& current_item() { return tl_item; }

ScopedItem::ScopedItem(int shard, std::uint64_t index, int attempt)
    : prev_(tl_item) {
  tl_item = ItemContext{shard, index, attempt, 0};
}

ScopedItem::~ScopedItem() { tl_item = prev_; }

Span::Span(Tracer* tracer, std::string name, std::string phase,
           std::string detail)
    : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr) {
  if (tracer_ == nullptr) return;
  ev_.name = std::move(name);
  ev_.phase = std::move(phase);
  ev_.detail = std::move(detail);
  ev_.shard = tl_item.shard;
  ev_.index = tl_item.index;
  ev_.attempt = tl_item.attempt;
  ev_.begin_tick = tl_item.tick++;
}

Span::~Span() {
  if (tracer_ == nullptr) return;
  ev_.end_tick = tl_item.tick++;
  tracer_->record(std::move(ev_));
}

}  // namespace flit::obs
