#pragma once

// The process-global observability session: one MetricsRegistry plus one
// Tracer, shared by every engine layer (explorer, workflow, bisect,
// compilation cache, fault injector, shard coordinator) the way
// FaultInjector::global() is.  Counters are always live -- an atomic add
// costs nothing worth a flag -- while tracing is opt-in via
// tracer().set_enabled(true) (the CLI's --trace-out flips it); a disabled
// tracer makes every Span inert.
//
// Tests and benches that need a clean slate call metrics().reset() and
// drain the tracer; instrument references cached by hot paths stay valid
// across both.

#include "obs/metrics.h"
#include "obs/trace.h"

namespace flit::obs {

class Session {
 public:
  [[nodiscard]] static Session& global();

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] Tracer& tracer() { return tracer_; }

 private:
  MetricsRegistry metrics_;
  Tracer tracer_;
};

/// The global metrics registry (shorthand for Session::global().metrics()).
[[nodiscard]] inline MetricsRegistry& metrics() {
  return Session::global().metrics();
}

/// The global tracer.
[[nodiscard]] inline Tracer& tracer() { return Session::global().tracer(); }

/// The global tracer when tracing is enabled, else null -- the pointer a
/// Span wants: `obs::Span s(obs::tracer_if_enabled(), "build", ...)`.
[[nodiscard]] inline Tracer* tracer_if_enabled() {
  Tracer& t = Session::global().tracer();
  return t.enabled() ? &t : nullptr;
}

}  // namespace flit::obs
