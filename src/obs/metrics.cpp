#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace flit::obs {

FixedPoint to_fixed(double v) {
  return static_cast<FixedPoint>(
      std::llround(v * static_cast<double>(kFixedPointScale)));
}

double from_fixed(FixedPoint v) {
  return static_cast<double>(v) / static_cast<double>(kFixedPointScale);
}

HistogramData::HistogramData(std::vector<double> bucket_bounds)
    : bounds(std::move(bucket_bounds)), counts(bounds.size() + 1, 0) {
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (!(bounds[i - 1] < bounds[i])) {
      throw std::invalid_argument(
          "HistogramData: bucket bounds must be strictly ascending");
    }
  }
}

void HistogramData::observe(double v) {
  const std::size_t b = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
  ++counts[b];
  const FixedPoint fp = to_fixed(v);
  sum += fp;
  if (count == 0 || fp < min) min = fp;
  if (count == 0 || fp > max) max = fp;
  ++count;
}

double HistogramData::mean() const {
  return count == 0 ? 0.0 : from_fixed(sum) / static_cast<double>(count);
}

double HistogramData::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return min_value();
  if (q == 1.0) return max_value();
  // The rank-q observation's bucket, linearly interpolated across the
  // bucket's span (clamped to the observed min/max so estimates never
  // leave the data's range).
  const double target = q * static_cast<double>(count);
  double before = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double in_bucket = static_cast<double>(counts[b]);
    if (before + in_bucket < target || in_bucket == 0.0) {
      before += in_bucket;
      continue;
    }
    const double lo = b == 0 ? min_value() : bounds[b - 1];
    const double hi = b < bounds.size() ? bounds[b] : max_value();
    const double frac = (target - before) / in_bucket;
    return std::clamp(lo + frac * (hi - lo), min_value(), max_value());
  }
  return max_value();
}

HistogramData& HistogramData::operator+=(const HistogramData& other) {
  if (bounds != other.bounds) {
    throw std::invalid_argument(
        "HistogramData: cannot merge histograms with different bucket "
        "bounds");
  }
  for (std::size_t b = 0; b < counts.size(); ++b) counts[b] += other.counts[b];
  sum += other.sum;
  if (other.count > 0) {
    if (count == 0 || other.min < min) min = other.min;
    if (count == 0 || other.max > max) max = other.max;
  }
  count += other.count;
  return *this;
}

std::vector<double> exponential_buckets(double start, double factor,
                                        int count) {
  if (start <= 0.0 || factor <= 1.0 || count < 1) {
    throw std::invalid_argument(
        "exponential_buckets: need start > 0, factor > 1, count >= 1");
  }
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double v = start;
  for (int i = 0; i < count; ++i, v *= factor) bounds.push_back(v);
  return bounds;
}

const std::vector<double>& cycle_buckets() {
  static const std::vector<double> bounds =
      exponential_buckets(1.0, 2.0, 40);
  return bounds;
}

MetricsSnapshot& MetricsSnapshot::operator+=(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) {
    auto [it, inserted] = gauges.try_emplace(name, v);
    if (!inserted) it->second = std::max(it->second, v);
  }
  for (const auto& [name, h] : other.histograms) {
    auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms.emplace(name, h);
    } else {
      it->second += h;
    }
  }
  return *this;
}

namespace {

std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Round-trip-exact double rendering for the JSON export: equal values
/// always render equal bytes.
std::string num_exact(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::table() const {
  std::ostringstream os;
  os << "metrics summary:\n";
  for (const auto& [name, v] : counters) {
    os << "  counter   " << name << " = " << v << '\n';
  }
  for (const auto& [name, v] : gauges) {
    os << "  gauge     " << name << " = " << v << '\n';
  }
  for (const auto& [name, h] : histograms) {
    os << "  histogram " << name << ": count " << h.count;
    if (h.count > 0) {
      os << ", min " << num(h.min_value()) << ", ~median "
         << num(h.quantile(0.5)) << ", max " << num(h.max_value())
         << ", mean " << num(h.mean());
    }
    os << '\n';
  }
  return os.str();
}

std::string MetricsSnapshot::json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    os << (first ? "" : ",") << '"' << name << "\":" << v;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    os << (first ? "" : ",") << '"' << name << "\":" << v;
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "" : ",") << '"' << name << "\":{\"count\":" << h.count
       << ",\"sum\":" << num_exact(from_fixed(h.sum))
       << ",\"min\":" << num_exact(h.count > 0 ? h.min_value() : 0.0)
       << ",\"max\":" << num_exact(h.count > 0 ? h.max_value() : 0.0)
       << ",\"bounds\":[";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      os << (b == 0 ? "" : ",") << num_exact(h.bounds[b]);
    }
    os << "],\"counts\":[";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      os << (b == 0 ? "" : ",") << h.counts[b];
    }
    os << "]}";
    first = false;
  }
  os << "}}";
  return os.str();
}

void Histogram::observe(double v) {
  std::lock_guard lock(mu_);
  data_.observe(v);
}

HistogramData Histogram::data() const {
  std::lock_guard lock(mu_);
  return data_;
}

void Histogram::reset() {
  std::lock_guard lock(mu_);
  data_ = HistogramData(data_.bounds);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    if (it->second->bounds() != bounds) {
      throw std::invalid_argument("MetricsRegistry: histogram '" + name +
                                  "' re-registered with different bounds");
    }
    return *it->second;
  }
  return *histograms_
              .emplace(name, std::make_unique<Histogram>(std::move(bounds)))
              .first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace(name, h->data());
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace flit::obs
