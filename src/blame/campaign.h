#pragma once

// The blame-dedup bisect campaign: Level 3 at matrix scale.
//
// One BisectDriver::run root-causes one (test, triple) cell; sweeping the
// Table-1 matrix that way re-discovers the same blame site once per -O3
// variant.  The campaign instead
//   1. enumerates every variability-flagged cell of a study (live
//      explore, ResultsDb, or the generated corpus),
//   2. bisects each cell through one shared CompilationCache and one
//      shared ProbeMemo (core/probe_memo.h), so File/Symbol Bisect probes
//      whose winning object sets recur across triples are answered from
//      cache instead of re-run,
//   3. clusters the outcomes into distinct blame *sites* keyed on
//      (blamed files, blamed symbols, mechanism signature vs. the
//      baseline) with deterministic cluster ids, and
//   4. per cluster picks the minimal *adversarial compilation pair* --
//      the closest (baseline, variable) pair still reproducing the site
//      -- and re-verifies it with confirming bisects.
//
// Determinism: cells are sharded with dist::run_sharded_campaign and every
// outcome lands at its cell index, so BlameReport::text() is
// bitwise-identical at any shards x jobs x steal x memo setting.  The
// only scheduling-dependent numbers (the memo hit/run split, steal
// counts) are quarantined in stats_text().  See docs/blame-dedup.md.

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "core/hierarchy.h"
#include "core/registry.h"
#include "core/resultsdb.h"
#include "dist/campaign.h"
#include "toolchain/compiler.h"

namespace flit::blame {

/// One variability-flagged (test, variable-compilation) study cell.
struct Cell {
  std::string test;
  toolchain::Compilation variable;
  long double variability = 0.0L;  ///< the study/db measurement
};

/// Cell enumeration plus, per test, the bitwise-equal compilations of the
/// same study -- the candidate pool for adversarial pair baselines.
struct CampaignInput {
  std::vector<Cell> cells;  ///< study/space order
  std::map<std::string, std::vector<toolchain::Compilation>> equal_comps;

  /// Database rows skipped because their compilation string is not in
  /// the provided space (input_from_db only).
  std::size_t dropped_rows = 0;

  /// Appends another input (e.g. the next test's study).
  void merge(CampaignInput other);
};

/// Every variable (non-failed, non-equal) outcome becomes a cell; every
/// bitwise-equal outcome joins the test's adversarial baseline pool.
[[nodiscard]] CampaignInput input_from_study(const core::StudyResult& study);

/// Same enumeration from a persisted results database.  Rows are mapped
/// back to Compilation values via their canonical string over `space`;
/// rows naming compilations outside the space are counted in
/// dropped_rows.
[[nodiscard]] CampaignInput input_from_db(
    const core::ResultsDb& db, std::span<const toolchain::Compilation> space);

struct BlameOptions {
  toolchain::Compilation baseline;  ///< trusted comp every bisect uses
  int k = 0;                        ///< BisectBiggest k (0 = BisectAll)
  int digits = 0;                   ///< digit-restricted comparison
  bool memo = true;                 ///< shared probe memo on/off
  std::size_t max_cells = 0;        ///< cap on cells bisected (0 = all)
  std::size_t adversarial_attempts = 4;  ///< candidate pairs tried/cluster
  dist::CampaignShardOptions shard;      ///< cell sharding (shards x jobs)
};

struct CellOutcome {
  Cell cell;
  core::HierarchicalOutcome bisect;
};

/// The minimal adversarial compilation pair confirming one blame site
/// (the closest baseline/variable pair still reproducing it).
struct AdversarialPair {
  toolchain::Compilation baseline;
  toolchain::Compilation variable;
  int distance = 0;        ///< compilation_distance(baseline, variable)
  bool confirmed = false;  ///< the site reproduces under this pair
  bool reverified = false; ///< by a fresh confirming bisect (false: the
                           ///< member cell's own bisect is the evidence)
  int executions = 0;      ///< confirming bisect's logical probes
  int memo_hits = 0;       ///< of which were answered from the memo
};

/// One distinct blame site: a maximal set of cells whose bisects agree on
/// (files, symbols, mechanism).
struct BlameCluster {
  std::string id;  ///< "site-" + 16 hex digits of the identity hash
  std::vector<std::string> files;    ///< sorted blamed files
  std::vector<std::string> symbols;  ///< sorted "file:symbol"
  std::string mechanism;  ///< signature vs. the campaign baseline
  std::vector<std::size_t> members;  ///< cell indices, ascending
  AdversarialPair pair;
};

struct BlameReport {
  std::vector<CellOutcome> cells;      ///< cell (input) order
  std::vector<BlameCluster> clusters;  ///< ordered by first member cell
  std::vector<std::size_t> failed_cells;  ///< crashed/aborted searches
  std::size_t cells_skipped = 0;  ///< cells over --max-cells
  std::size_t unknown_tests = 0;  ///< cells naming unregistered tests
  std::size_t dropped_rows = 0;   ///< from CampaignInput (db mapping)

  /// Logical program executions across every bisect, adversarial
  /// re-verification included.  Identical memo on/off; real executions =
  /// executions - memo_hits.
  long long executions = 0;
  /// Probes answered from the shared memo.  The split between hits and
  /// real runs depends on scheduling under concurrency, so this number
  /// stays out of text().
  long long memo_hits = 0;

  dist::CampaignRunStats shard_stats;

  /// The deterministic clustered report: bitwise-identical at any
  /// shards x jobs x steal x memo setting.
  [[nodiscard]] std::string text() const;

  /// Scheduling-dependent accounting (memo hit rate, steals) -- kept out
  /// of text() so the report bytes never move.
  [[nodiscard]] std::string stats_text() const;
};

/// Mechanism signature of a (baseline, variable) pair: the names of the
/// FpSemantics fields their derived TU semantics disagree on, plus
/// "fast_libm" for a compile-time libm split and "link_fast_libm" for a
/// link-driver libm split (the Intel link-step substitution, which File
/// Bisect cannot attribute to any TU).  Empty differences yield "none".
[[nodiscard]] std::string mechanism_signature(
    const toolchain::Compilation& baseline,
    const toolchain::Compilation& variable);

/// Deterministic closeness of two compilations: 100 per compiler split,
/// 10 per optimization-level step, 1 per differing flag token.
[[nodiscard]] int compilation_distance(const toolchain::Compilation& a,
                                       const toolchain::Compilation& b);

/// Runs the campaign.  `registry` resolves cell test names to instances
/// (unknown names are counted and skipped); `model` is the code model
/// every bisect searches over.
[[nodiscard]] BlameReport run_campaign(const fpsem::CodeModel* model,
                                       const core::TestRegistry& registry,
                                       const CampaignInput& input,
                                       const BlameOptions& opts);

}  // namespace flit::blame
