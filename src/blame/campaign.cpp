#include "blame/campaign.h"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "core/probe_memo.h"
#include "obs/session.h"
#include "toolchain/semantics_rules.h"

namespace flit::blame {

using toolchain::Compilation;

namespace {

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> flag_tokens(const std::string& flag) {
  std::vector<std::string> tokens;
  std::istringstream is(flag);
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  std::sort(tokens.begin(), tokens.end());
  return tokens;
}

/// The cluster identity: sorted files, sorted file:symbol pairs, and the
/// mechanism signature, joined with separators none of the parts can
/// contain (paths, symbols and mechanism names are all printable).
std::string site_key(const std::vector<std::string>& files,
                     const std::vector<std::string>& symbols,
                     const std::string& mechanism) {
  return join(files, "\x1f") + "\x1e" + join(symbols, "\x1f") + "\x1e" +
         mechanism;
}

std::string site_id(const std::string& key) {
  std::ostringstream os;
  os << "site-" << std::hex << std::setw(16) << std::setfill('0')
     << toolchain::stable_hash(key);
  return os.str();
}

/// The (sorted files, sorted file:symbol) signature of one outcome.
void outcome_signature(const core::HierarchicalOutcome& out,
                       std::vector<std::string>& files,
                       std::vector<std::string>& symbols) {
  files.clear();
  symbols.clear();
  for (const core::FileFinding& ff : out.findings) {
    files.push_back(ff.file);
    for (const core::SymbolFinding& sf : ff.symbols) {
      symbols.push_back(ff.file + ":" + sf.symbol);
    }
  }
  std::sort(files.begin(), files.end());
  std::sort(symbols.begin(), symbols.end());
}

}  // namespace

void CampaignInput::merge(CampaignInput other) {
  cells.insert(cells.end(), std::make_move_iterator(other.cells.begin()),
               std::make_move_iterator(other.cells.end()));
  for (auto& [test, comps] : other.equal_comps) {
    std::vector<Compilation>& mine = equal_comps[test];
    mine.insert(mine.end(), std::make_move_iterator(comps.begin()),
                std::make_move_iterator(comps.end()));
  }
  dropped_rows += other.dropped_rows;
}

CampaignInput input_from_study(const core::StudyResult& study) {
  CampaignInput in;
  for (const core::CompilationOutcome& o : study.outcomes) {
    if (o.failed()) continue;
    if (o.bitwise_equal()) {
      in.equal_comps[study.test_name].push_back(o.comp);
    } else {
      in.cells.push_back(Cell{study.test_name, o.comp, o.variability});
    }
  }
  return in;
}

CampaignInput input_from_db(const core::ResultsDb& db,
                            std::span<const Compilation> space) {
  std::map<std::string, const Compilation*> by_str;
  for (const Compilation& c : space) by_str.emplace(c.str(), &c);
  CampaignInput in;
  for (const core::ResultRow& row : db.rows()) {
    const auto it = by_str.find(row.compilation);
    if (it == by_str.end()) {
      ++in.dropped_rows;
      continue;
    }
    if (!row.ok()) continue;  // quarantined: nothing measurable to bisect
    if (row.bitwise_equal()) {
      in.equal_comps[row.test_name].push_back(*it->second);
    } else {
      in.cells.push_back(Cell{row.test_name, *it->second, row.variability});
    }
  }
  return in;
}

std::string mechanism_signature(const Compilation& baseline,
                                const Compilation& variable) {
  const fpsem::FpSemantics b = toolchain::derive_semantics(baseline);
  const fpsem::FpSemantics v = toolchain::derive_semantics(variable);
  std::vector<std::string> parts;
  if (b.contract_fma != v.contract_fma) parts.push_back("contract_fma");
  if (b.reassoc_width != v.reassoc_width) parts.push_back("reassociation");
  if (b.extended_precision != v.extended_precision) {
    parts.push_back("extended_precision");
  }
  if (b.unsafe_math != v.unsafe_math) parts.push_back("unsafe_math");
  if (b.flush_subnormals != v.flush_subnormals) {
    parts.push_back("flush_subnormals");
  }
  if (b.fast_libm != v.fast_libm ||
      toolchain::compile_time_fast_libm(baseline) !=
          toolchain::compile_time_fast_libm(variable)) {
    parts.push_back("fast_libm");
  }
  if (b.exploits_ub != v.exploits_ub) parts.push_back("exploits_ub");
  if (toolchain::link_step_fast_libm(baseline.compiler) !=
      toolchain::link_step_fast_libm(variable.compiler)) {
    parts.push_back("link_fast_libm");
  }
  if (parts.empty()) return "none";
  return join(parts, ",");
}

int compilation_distance(const Compilation& a, const Compilation& b) {
  int d = 0;
  if (!(a.compiler == b.compiler)) d += 100;
  d += 10 * std::abs(static_cast<int>(a.opt) - static_cast<int>(b.opt));
  const std::vector<std::string> ta = flag_tokens(a.flag);
  const std::vector<std::string> tb = flag_tokens(b.flag);
  std::vector<std::string> diff;
  std::set_symmetric_difference(ta.begin(), ta.end(), tb.begin(), tb.end(),
                                std::back_inserter(diff));
  d += static_cast<int>(diff.size());
  return d;
}

namespace {

/// Picks the cluster's minimal adversarial pair: candidates are every
/// (bitwise-equal baseline, member variable) pair of the first member's
/// test, tried in ascending compilation_distance order with a confirming
/// bisect each, until one reproduces the cluster's (files, symbols)
/// signature.  Falls back to (campaign baseline, first member) -- already
/// confirmed by that member's own bisect -- when no candidate within the
/// attempt budget re-verifies.
void select_adversarial_pair(const fpsem::CodeModel* model,
                             const core::TestRegistry& registry,
                             const CampaignInput& input,
                             const BlameOptions& opts,
                             toolchain::CompilationCache& cache,
                             core::ProbeMemo* memo, BlameReport& report,
                             BlameCluster& cluster) {
  const CellOutcome& rep = report.cells[cluster.members.front()];
  const std::string& test_name = rep.cell.test;

  std::vector<Compilation> baselines;
  if (const auto it = input.equal_comps.find(test_name);
      it != input.equal_comps.end()) {
    baselines = it->second;
  }
  if (std::find(baselines.begin(), baselines.end(), opts.baseline) ==
      baselines.end()) {
    baselines.push_back(opts.baseline);
  }

  std::vector<Compilation> variables;
  for (const std::size_t m : cluster.members) {
    const Cell& c = report.cells[m].cell;
    if (c.test != test_name) continue;
    if (std::find(variables.begin(), variables.end(), c.variable) ==
        variables.end()) {
      variables.push_back(c.variable);
    }
  }

  // A candidate pair can only reproduce the site if it disagrees on
  // exactly the mechanisms the cluster is keyed on -- a pair whose own
  // signature differs (a baseline that already contracts FMAs, link
  // drivers that agree on the libm substitution, ...) is filtered
  // statically instead of wasting a confirming bisect on it.
  struct Cand {
    int distance;
    std::size_t b, v;
  };
  std::vector<Cand> cands;
  for (std::size_t b = 0; b < baselines.size(); ++b) {
    for (std::size_t v = 0; v < variables.size(); ++v) {
      if (mechanism_signature(baselines[b], variables[v]) !=
          cluster.mechanism) {
        continue;
      }
      cands.push_back(
          Cand{compilation_distance(baselines[b], variables[v]), b, v});
    }
  }
  std::stable_sort(cands.begin(), cands.end(),
                   [](const Cand& x, const Cand& y) {
                     if (x.distance != y.distance) {
                       return x.distance < y.distance;
                     }
                     if (x.b != y.b) return x.b < y.b;
                     return x.v < y.v;
                   });

  // Fallback: the campaign pair the cluster was discovered under.
  AdversarialPair best;
  best.baseline = opts.baseline;
  best.variable = rep.cell.variable;
  best.distance = compilation_distance(best.baseline, best.variable);
  best.confirmed = true;
  best.reverified = false;

  // Confirming bisects are scoped to the cluster's own blamed files: the
  // pair only has to reproduce *this* site, and out-of-scope files stay
  // on the candidate baseline, so an attempt costs a handful of probes
  // instead of a whole-model search.  A site with no blamed files (the
  // link-step mechanism) is scoped to one arbitrary file -- its evidence
  // is the whole-program probe plus the empty finding set, which any
  // scope reproduces.
  std::vector<std::string> scope = cluster.files;
  if (scope.empty() && !model->files().empty()) {
    scope.push_back(model->files().front());
  }

  // A singleton cluster's site is evidenced by exactly one member bisect;
  // spending the whole attempt budget on it buys little over the
  // fallback, so singletons get one shot at their closest candidate and
  // multi-member clusters get the full budget.
  const std::size_t budget = cluster.members.size() == 1
                                 ? std::min<std::size_t>(
                                       1, opts.adversarial_attempts)
                                 : opts.adversarial_attempts;

  std::vector<std::string> files, symbols;
  const std::size_t attempts = std::min(budget, cands.size());
  for (std::size_t a = 0; a < attempts; ++a) {
    const Cand& cand = cands[a];
    core::BisectConfig cfg;
    cfg.baseline = baselines[cand.b];
    cfg.variable = variables[cand.v];
    cfg.scope = scope;
    cfg.k = opts.k;
    cfg.digits = opts.digits;
    cfg.memo = memo;
    core::HierarchicalOutcome out;
    try {
      const std::unique_ptr<core::TestBase> test = registry.create(test_name);
      core::BisectDriver driver(model, test.get(), cfg, &cache);
      out = driver.run();
    } catch (const std::exception&) {
      continue;  // a crashing candidate pair cannot confirm anything
    }
    report.executions += out.executions;
    report.memo_hits += out.memo_hits;
    if (out.crashed) continue;
    outcome_signature(out, files, symbols);
    if (files == cluster.files && symbols == cluster.symbols) {
      best.baseline = cfg.baseline;
      best.variable = cfg.variable;
      best.distance = cand.distance;
      best.confirmed = true;
      best.reverified = true;
      best.executions = out.executions;
      best.memo_hits = out.memo_hits;
      break;
    }
  }
  cluster.pair = best;
}

}  // namespace

BlameReport run_campaign(const fpsem::CodeModel* model,
                         const core::TestRegistry& registry,
                         const CampaignInput& input,
                         const BlameOptions& opts) {
  static obs::Counter& m_cells = obs::metrics().counter("blame.cells");
  static obs::Counter& m_probes = obs::metrics().counter("blame.probes");
  static obs::Counter& m_memo_hits =
      obs::metrics().counter("blame.memo_hits");
  static obs::Counter& m_clusters = obs::metrics().counter("blame.clusters");
  static obs::Counter& m_pairs =
      obs::metrics().counter("blame.pairs_confirmed");

  BlameReport report;
  report.dropped_rows = input.dropped_rows;

  std::vector<Cell> cells;
  for (const Cell& cell : input.cells) {
    if (!registry.contains(cell.test)) {
      ++report.unknown_tests;
      continue;
    }
    if (opts.max_cells != 0 && cells.size() >= opts.max_cells) {
      ++report.cells_skipped;
      continue;
    }
    cells.push_back(cell);
  }

  obs::Span campaign_span(obs::tracer_if_enabled(), "blame.campaign", "blame",
                          std::to_string(cells.size()) + " cells");

  // One compilation cache and one probe memo span the whole campaign:
  // the dedup win *is* the sharing.
  toolchain::CompilationCache cache;
  core::ProbeMemo memo;
  core::ProbeMemo* memo_ptr = opts.memo ? &memo : nullptr;

  report.cells.resize(cells.size());
  report.shard_stats = dist::run_sharded_campaign(
      cells.size(), opts.shard, [&](std::size_t i) {
        const Cell& cell = cells[i];
        obs::Span span(obs::tracer_if_enabled(), "blame.cell", "blame",
                       cell.test + " @ " + cell.variable.str());
        core::BisectConfig cfg;
        cfg.baseline = opts.baseline;
        cfg.variable = cell.variable;
        cfg.k = opts.k;
        cfg.digits = opts.digits;
        cfg.memo = memo_ptr;
        core::HierarchicalOutcome out;
        try {
          const std::unique_ptr<core::TestBase> test =
              registry.create(cell.test);
          core::BisectDriver driver(model, test.get(), cfg, &cache);
          out = driver.run();
        } catch (const std::exception& e) {
          out = core::HierarchicalOutcome{};
          out.crashed = true;
          out.crash_reason = std::string("bisect aborted: ") + e.what();
        }
        span.set_cost(static_cast<double>(out.executions));
        report.cells[i] = CellOutcome{cell, std::move(out)};
      });

  for (const CellOutcome& co : report.cells) {
    report.executions += co.bisect.executions;
    report.memo_hits += co.bisect.memo_hits;
  }

  // Cluster by site identity, in cell order (so clusters are ordered by
  // their first member and the ids/members are schedule-independent).
  std::map<std::string, std::size_t> cluster_of;
  std::vector<std::string> files, symbols;
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const CellOutcome& co = report.cells[i];
    if (co.bisect.crashed) {
      report.failed_cells.push_back(i);
      continue;
    }
    outcome_signature(co.bisect, files, symbols);
    const std::string mech =
        mechanism_signature(opts.baseline, co.cell.variable);
    const std::string key = site_key(files, symbols, mech);
    const auto [it, fresh] = cluster_of.try_emplace(key,
                                                    report.clusters.size());
    if (fresh) {
      BlameCluster c;
      c.id = site_id(key);
      c.files = files;
      c.symbols = symbols;
      c.mechanism = mech;
      report.clusters.push_back(std::move(c));
    }
    report.clusters[it->second].members.push_back(i);
  }

  for (BlameCluster& cluster : report.clusters) {
    select_adversarial_pair(model, registry, input, opts, cache, memo_ptr,
                            report, cluster);
  }

  m_cells.add(static_cast<std::uint64_t>(report.cells.size()));
  m_probes.add(static_cast<std::uint64_t>(
      report.executions > 0 ? report.executions : 0));
  m_memo_hits.add(static_cast<std::uint64_t>(
      report.memo_hits > 0 ? report.memo_hits : 0));
  m_clusters.add(static_cast<std::uint64_t>(report.clusters.size()));
  std::uint64_t reverified = 0;
  for (const BlameCluster& c : report.clusters) {
    if (c.pair.reverified) ++reverified;
  }
  m_pairs.add(reverified);
  campaign_span.set_cost(static_cast<double>(report.executions));
  return report;
}

std::string BlameReport::text() const {
  std::ostringstream os;
  std::set<std::string> tests;
  for (const CellOutcome& co : cells) tests.insert(co.cell.test);
  os << "blame campaign: " << cells.size()
     << " variability-flagged cell(s) over " << tests.size() << " test(s)\n";
  os << "bisected: " << (cells.size() - failed_cells.size()) << " ok, "
     << failed_cells.size() << " failed search(es); logical probes: "
     << executions << " program executions\n";
  os << "distinct blame sites: " << clusters.size() << '\n';
  if (cells_skipped > 0) {
    os << "skipped: " << cells_skipped << " cell(s) over the --max-cells cap\n";
  }
  if (unknown_tests > 0) {
    os << "dropped: " << unknown_tests
       << " cell(s) naming unregistered tests\n";
  }
  if (dropped_rows > 0) {
    os << "dropped: " << dropped_rows
       << " database row(s) outside the compilation space\n";
  }
  for (const BlameCluster& c : clusters) {
    os << '\n'
       << c.id << "  (" << c.members.size() << " cell(s), mechanism: "
       << c.mechanism << ")\n";
    if (c.files.empty()) {
      os << "  files: (none -- not attributable to any translation unit)\n";
    } else {
      os << "  files: " << join(c.files, ", ") << '\n';
    }
    if (!c.symbols.empty()) {
      os << "  symbols: " << join(c.symbols, ", ") << '\n';
    }
    os << "  cells:";
    const std::size_t show = std::min<std::size_t>(c.members.size(), 4);
    for (std::size_t k = 0; k < show; ++k) {
      const Cell& mc = cells[c.members[k]].cell;
      os << (k == 0 ? " " : ", ") << mc.test << " @ " << mc.variable.str();
    }
    if (c.members.size() > show) {
      os << " (+" << (c.members.size() - show) << " more)";
    }
    os << '\n';
    os << "  adversarial pair: " << c.pair.baseline.str() << "  vs  "
       << c.pair.variable.str() << "  (distance " << c.pair.distance << ", ";
    if (c.pair.reverified) {
      os << "re-verified, " << c.pair.executions << " probes)";
    } else if (c.pair.confirmed) {
      os << "confirmed by the member bisect)";
    } else {
      os << "unconfirmed)";
    }
    os << '\n';
  }
  if (!failed_cells.empty()) {
    os << "\nfailed searches:\n";
    for (const std::size_t i : failed_cells) {
      os << "  " << cells[i].cell.test << " @ "
         << cells[i].cell.variable.str() << ": "
         << cells[i].bisect.crash_reason << '\n';
    }
  }
  return os.str();
}

std::string BlameReport::stats_text() const {
  std::ostringstream os;
  os << "memo: " << memo_hits << " of " << executions
     << " probes answered from cache";
  if (executions > 0) {
    os << " (" << std::fixed << std::setprecision(1)
       << 100.0 * static_cast<double>(memo_hits) /
              static_cast<double>(executions)
       << "%)";
  }
  os << "\nreal executions: " << (executions - memo_hits) << '\n';
  os << "steals: " << shard_stats.total_steals() << " across "
     << shard_stats.ranks.size() << " rank(s)\n";
  return os.str();
}

}  // namespace flit::blame
