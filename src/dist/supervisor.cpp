#include "dist/supervisor.h"

#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dist/vclock.h"
#include "obs/session.h"
#include "toolchain/compile_cache.h"

namespace flit::dist {

namespace {

/// The report's per-shard range field, as the coordinator computes it.
ShardRange report_range(const ShardComm& comm, std::size_t space_size,
                        const Placement& placement, std::size_t r) {
  if (placement.contiguous) {
    return comm.range(static_cast<int>(r), space_size);
  }
  const std::vector<std::size_t>& idx = placement.rank_indices[r];
  if (idx.empty()) return comm.range(static_cast<int>(r), space_size);
  return ShardRange{idx.front(), idx.back() + 1};
}

}  // namespace

FleetSupervisor::FleetSupervisor(const fpsem::CodeModel* model,
                                 toolchain::Compilation baseline,
                                 toolchain::Compilation speed_reference,
                                 SupervisorOptions opts)
    : model_(model),
      baseline_(std::move(baseline)),
      speed_reference_(std::move(speed_reference)),
      opts_(std::move(opts)),
      coord_(model_, baseline_, speed_reference_, opts_.shard) {
  if (opts_.max_restarts < 0) {
    throw std::invalid_argument("FleetSupervisor: max_restarts must be >= 0");
  }
  if (!(opts_.backoff_base > 0.0)) {
    throw std::invalid_argument("FleetSupervisor: backoff_base must be > 0");
  }
  if (opts_.stall_deadline < 0.0) {
    throw std::invalid_argument(
        "FleetSupervisor: stall_deadline must be >= 0");
  }
}

bool FleetSupervisor::rank_faults_armed() {
  const core::FaultInjector& inj = core::FaultInjector::global();
  return inj.armed(core::FaultSite::Shard) ||
         inj.armed(core::FaultSite::Stall);
}

ShardedStudy FleetSupervisor::run(
    const core::TestBase& test,
    std::span<const toolchain::Compilation> space) const {
  if (!opts_.force_supervised && !rank_faults_armed()) {
    // Fast path: nothing can fault a rank, so the unsupervised engine's
    // full concurrency applies and the bytes are its bytes by
    // construction (ShardedStudy::supervisor stays disabled).
    return coord_.run(test, space);
  }
  return run_supervised(test, space, opts_.shard.resume);
}

ShardedStudy FleetSupervisor::resume(
    const core::TestBase& test,
    std::span<const toolchain::Compilation> space) const {
  if (opts_.shard.shard_db_dir.empty()) {
    throw std::invalid_argument(
        "FleetSupervisor::resume: no shard_db_dir to resume from");
  }
  if (!opts_.force_supervised && !rank_faults_armed()) {
    return coord_.resume(test, space);
  }
  return run_supervised(test, space, /*resume_shards=*/true);
}

core::ExploreFn FleetSupervisor::explore_override() const {
  return [this](const core::TestBase& test,
                std::span<const toolchain::Compilation> space) {
    return run(test, space).study;
  };
}

ShardedStudy FleetSupervisor::run_supervised(
    const core::TestBase& test,
    std::span<const toolchain::Compilation> space, bool resume_shards) const {
  const ShardComm comm(opts_.shard.shards);
  const bool checkpointing = !opts_.shard.shard_db_dir.empty();
  const Placement placement = place_space(space, opts_.shard.shards,
                                          opts_.shard.placement,
                                          coord_.cost_model());
  const std::size_t nranks = placement.shards();
  obs::MetricsRegistry& m = obs::metrics();

  // The coordinator's positional claim protocol: `order` concatenates the
  // per-rank index sets, slots are position ranges, outcomes are written
  // straight to their global indices.  The supervised loop uses it under
  // every steal setting -- claims are the unit of fault containment, and
  // index-addressed outcomes make the chunking invisible in the results.
  std::vector<std::size_t> order;
  order.reserve(space.size());
  std::vector<ShardRange> slots(nranks);
  for (std::size_t r = 0; r < nranks; ++r) {
    slots[r].begin = order.size();
    order.insert(order.end(), placement.rank_indices[r].begin(),
                 placement.rank_indices[r].end());
    slots[r].end = order.size();
  }

  std::vector<ShardReport> reports(nranks);
  for (std::size_t r = 0; r < nranks; ++r) {
    reports[r].rank = static_cast<int>(r);
    reports[r].range = report_range(comm, space.size(), placement, r);
    reports[r].owned_items = placement.rank_indices[r].size();
    reports[r].owned_groups = placement.rank_groups[r];
    reports[r].predicted = placement.predicted[r];
  }

  core::StudyResult merged;
  merged.test_name = test.name();
  merged.outcomes.resize(space.size());

  // Per-rank worker state, as the stealing path keeps it -- except that a
  // restart replaces the rank's cache and explorer (a fresh incarnation
  // lost its process state) while the shard database and checkpoint
  // ordinal base survive (the checkpoint file is the durable thing a
  // restart exists to protect).
  std::vector<std::unique_ptr<toolchain::CompilationCache>> caches(nranks);
  std::vector<std::unique_ptr<core::SpaceExplorer>> explorers(nranks);
  std::vector<std::unique_ptr<core::ResultsDb>> shard_dbs(nranks);
  std::vector<std::size_t> ordinal_base(nranks, 0);
  for (std::size_t r = 0; r < nranks; ++r) {
    caches[r] = std::make_unique<toolchain::CompilationCache>();
    explorers[r] = std::make_unique<core::SpaceExplorer>(
        model_, baseline_, speed_reference_, opts_.shard.jobs,
        caches[r].get());
    if (checkpointing) {
      shard_dbs[r] = std::make_unique<core::ResultsDb>(
          ShardCoordinator::shard_db_path(opts_.shard.shard_db_dir,
                                          static_cast<int>(r),
                                          opts_.shard.shards));
    }
  }
  if (checkpointing && resume_shards) {
    // Union-seed every shard database so the (test, compilation)-keyed
    // prefill restores a row no matter which rank checkpointed it -- the
    // same contract as the stealing path, which reassignment depends on:
    // a recovered claim may re-execute on any survivor.
    std::vector<core::ResultRow> union_rows;
    for (const auto& db : shard_dbs) {
      union_rows.insert(union_rows.end(), db->rows().begin(),
                        db->rows().end());
    }
    for (const auto& db : shard_dbs) db->merge_rows(union_rows);
  }

  StealQueue queue(slots, opts_.shard.steal_grain, opts_.shard.steal);

  // Supervision state: virtual clocks in modeled cycles (the scheduler's
  // only time source), incarnation ordinals (the fault-decision attempt
  // axis: a restarted rank re-rolls its dice), restart budgets, and the
  // per-position completion map the degraded pass reads.
  VirtualClocks clocks(nranks);
  std::vector<int> incarnation(nranks, 0);
  std::vector<int> restarts_used(nranks, 0);
  std::vector<char> done_pos(order.size(), 0);
  SupervisorSummary sup;
  sup.enabled = true;
  sup.restart_budget = opts_.max_restarts;
  sup.allow_partial = opts_.allow_partial;
  const double stall_detect = opts_.stall_deadline > 0.0
                                  ? opts_.stall_deadline
                                  : opts_.backoff_base;

  // Executes one claim on rank r's incarnation and writes the outcomes to
  // their global indices; returns the claim's modeled-cycle cost (summed
  // fresh-executed cycles), which is what advances the virtual clock.
  const auto execute_claim = [&](std::size_t r, const StealQueue::Claim& c) {
    const auto t0 = std::chrono::steady_clock::now();
    ShardReport& rep = reports[r];

    obs::ScopedItem obs_lane(static_cast<int>(r), obs::kNoIndex, 0);
    obs::Span claim_span(
        obs::tracer_if_enabled(),
        c.reassigned ? "reassign" : (c.stolen ? "steal" : "shard"), "dist",
        test.name() + " [" + std::to_string(c.range.begin) + ", " +
            std::to_string(c.range.end) + ")");
    if (c.stolen) {
      m.counter("dist.steals").add();
      m.counter("dist.stolen_items").add(c.range.size());
    }
    if (c.reassigned) {
      ++sup.reassigned_claims;
      m.counter("dist.supervisor.reassigned_claims").add();
      m.counter("dist.supervisor.reassigned_items").add(c.range.size());
    }

    std::vector<std::size_t> indices(
        order.begin() + static_cast<std::ptrdiff_t>(c.range.begin),
        order.begin() + static_cast<std::ptrdiff_t>(c.range.end));
    std::vector<toolchain::Compilation> items;
    items.reserve(indices.size());
    for (std::size_t i : indices) items.push_back(space[i]);

    core::ExploreOptions eo;
    eo.retry = opts_.shard.retry;
    eo.keep_going = opts_.shard.keep_going;
    eo.checkpoint_batch = opts_.shard.checkpoint_batch;
    eo.obs_shard = static_cast<int>(r);
    eo.obs_index_base = indices.empty() ? 0 : indices.front();
    eo.global_indices = indices;
    std::size_t claim_prefilled = 0;
    if (shard_dbs[r] != nullptr) {
      eo.db = shard_dbs[r].get();
      eo.resume = resume_shards;
      eo.checkpoint_ordinal_base = ordinal_base[r];
      const std::size_t batch = opts_.shard.checkpoint_batch > 0
                                    ? opts_.shard.checkpoint_batch
                                    : c.range.size();
      ordinal_base[r] += (c.range.size() + batch - 1) / batch;
      if (resume_shards) {
        for (const toolchain::Compilation& comp : items) {
          if (shard_dbs[r]->find(test.name(), comp.str()).has_value()) {
            ++claim_prefilled;
          }
        }
      }
    }

    core::StudyResult part = explorers[r]->explore(test, items, eo);
    rep.failed += part.failed_count();
    rep.retried += part.retried_count();
    rep.prefilled += claim_prefilled;
    rep.executed_items += c.range.size() - claim_prefilled;
    double claim_cost = 0.0;
    for (const core::CompilationOutcome& o : part.outcomes) {
      if (o.ok() && o.cycles > 0.0) {
        rep.cycles.observe(o.cycles);
        if (o.comp != baseline_ && o.comp != speed_reference_) {
          rep.fresh_cycles.observe(o.cycles);
          claim_cost += o.cycles;
        }
      }
    }
    for (std::size_t k = 0; k < part.outcomes.size(); ++k) {
      merged.outcomes[indices[k]] = std::move(part.outcomes[k]);
      done_pos[c.range.begin + k] = 1;
    }
    rep.seconds += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    return claim_cost;
  };

  // Min-virtual-clock supervised loop: the live claimable rank with the
  // least modeled time claims next (ties -> lowest rank), exactly the
  // coordinator's serial fleet emulation with the clock in cycles.  Every
  // quantity the loop branches on -- claim grants, fault hashes, costs,
  // backoff -- is deterministic, so the whole schedule is.
  while (clocks.live() > 0) {
    const std::size_t r = clocks.min_active_where(
        [&](std::size_t i) { return queue.claimable(static_cast<int>(i)); });
    if (r == nranks) break;  // no live rank can claim: drained
    const std::optional<StealQueue::Claim> c =
        queue.claim(static_cast<int>(r));
    if (!c.has_value()) break;  // unreachable: claimable() just said yes

    // Rank-level fault decision, hashed per (rank, incarnation, claim
    // range): deterministic at any schedule, and a restarted incarnation
    // re-rolls -- which is what makes recovery converge.
    bool rank_fault = false;
    bool rank_stall = false;
    {
      const core::FaultInjector::ScopedTrial trial(
          test.name() + "|rank" + std::to_string(r), incarnation[r]);
      const std::string key = "claim[" + std::to_string(c->range.begin) +
                              "," + std::to_string(c->range.end) + ")";
      const core::FaultInjector& inj = core::FaultInjector::global();
      rank_fault = inj.should_fail(core::FaultSite::Shard, key);
      rank_stall = !rank_fault && inj.should_fail(core::FaultSite::Stall, key);
    }

    if (!rank_fault && !rank_stall) {
      clocks.advance(r, execute_claim(r, *c));
      continue;
    }

    // The rank died (shard) or hung (stall) on this claim.  Death is
    // claim-atomic -- no outcome, no checkpoint batch -- so the whole
    // range returns to the orphan pool for any survivor (including this
    // rank's next incarnation) to re-claim.
    ShardReport& rep = reports[r];
    if (rank_fault) {
      ++rep.rank_faults;
      ++sup.rank_faults;
      m.counter("dist.supervisor.rank_faults").add();
    } else {
      ++rep.rank_stalls;
      ++sup.stalls;
      m.counter("dist.supervisor.stalls").add();
      clocks.advance(r, stall_detect);  // the modeled detection latency
    }
    queue.release(c->range, c->victim);

    if (restarts_used[r] < opts_.max_restarts) {
      ++restarts_used[r];
      ++incarnation[r];
      ++rep.restarts;
      ++sup.restarts;
      const double backoff =
          std::ldexp(opts_.backoff_base, restarts_used[r] - 1);
      clocks.advance(r, backoff);
      rep.backoff_cycles += backoff;
      sup.backoff_cycles += backoff;
      m.counter("dist.supervisor.restarts").add();
      m.counter("dist.supervisor.backoff_cycles")
          .add(static_cast<std::uint64_t>(backoff));
      obs::ScopedItem obs_lane(static_cast<int>(r), obs::kNoIndex, 0);
      obs::Span restart_span(obs::tracer_if_enabled(), "restart", "dist",
                             test.name() + " rank " + std::to_string(r) +
                                 " incarnation " +
                                 std::to_string(incarnation[r]));
      // Fresh incarnation: new cache and explorer (anchor memo and warm
      // object cache are process state the death lost); the shard
      // database and ordinal base persist.
      caches[r] = std::make_unique<toolchain::CompilationCache>();
      explorers[r] = std::make_unique<core::SpaceExplorer>(
          model_, baseline_, speed_reference_, opts_.shard.jobs,
          caches[r].get());
    } else {
      clocks.deactivate(r);
      rep.dead = true;
      ++sup.dead_ranks;
      queue.mark_dead(static_cast<int>(r));
      m.counter("dist.supervisor.dead_ranks").add();
    }
  }

  // Unrecoverable remainder: positions no live rank was left to execute.
  std::vector<std::size_t> degraded_pos;
  for (std::size_t p = 0; p < done_pos.size(); ++p) {
    if (done_pos[p] == 0) degraded_pos.push_back(p);
  }
  if (!degraded_pos.empty()) {
    if (!opts_.allow_partial) {
      throw FleetAbort(
          "fleet supervisor: " + std::to_string(degraded_pos.size()) +
          " cell(s) unrecoverable (every rank exhausted its restart budget "
          "of " + std::to_string(opts_.max_restarts) +
          "); re-run with --allow-partial to record them as degraded");
    }
    for (std::size_t p : degraded_pos) {
      const std::size_t g = order[p];
      core::CompilationOutcome& o = merged.outcomes[g];
      o.comp = space[g];
      o.status = core::OutcomeStatus::Degraded;
      o.attempts = 0;
      o.reason =
          "fleet supervisor: no live rank left to execute this cell "
          "(restart budget exhausted)";
    }
    sup.degraded_cells = degraded_pos.size();
    m.counter("dist.supervisor.degraded_cells").add(degraded_pos.size());
  }

  for (std::size_t r = 0; r < nranks; ++r) {
    const StealQueue::RankStats st = queue.stats(static_cast<int>(r));
    reports[r].stolen = st.stolen;
    reports[r].donated = st.donated;
    reports[r].steals = st.steals;
    reports[r].reassigned = st.reassigned;
    reports[r].cache = caches[r]->stats();
    sup.reassigned_items += st.reassigned;
  }
  sup.fleet_cycles = clocks.max_clock();

  ShardedStudy sharded;
  sharded.study = std::move(merged);
  sharded.shards = std::move(reports);
  sharded.supervisor = sup;
  sharded.placement.policy = placement.policy;
  sharded.placement.contiguous = placement.contiguous;
  sharded.placement.profiled = coord_.cost_model().has_profile();
  sharded.placement.total_groups = placement.total_groups;
  sharded.placement.duplicated_groups = placement.duplicated_groups;
  sharded.placement.static_duplicated_groups =
      placement.static_duplicated_groups;

  if (placement.policy != PlacementPolicy::Static) {
    // The coordinator's placement telemetry, kept symmetric so a
    // supervised run is observably the same placement decision.
    m.counter("dist.placement.runs").add();
    m.counter("dist.placement.duplicated_groups")
        .add(placement.duplicated_groups);
    m.counter("dist.placement.avoided_compiles")
        .add(placement.avoided_group_compiles());
    m.gauge("dist.placement.groups")
        .set(static_cast<std::int64_t>(placement.total_groups));
  }

  if (opts_.shard.db != nullptr) opts_.shard.db->record(sharded.study);
  return sharded;
}

}  // namespace flit::dist
