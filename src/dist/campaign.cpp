#include "dist/campaign.h"

#include <optional>
#include <thread>

#include "core/parallel.h"

namespace flit::dist {

std::size_t CampaignRunStats::total_steals() const {
  std::size_t total = 0;
  for (const StealQueue::RankStats& r : ranks) total += r.steals;
  return total;
}

CampaignRunStats run_sharded_campaign(
    std::size_t n, const CampaignShardOptions& opts,
    const std::function<void(std::size_t)>& item) {
  const int shards = opts.shards < 1 ? 1 : opts.shards;
  const unsigned jobs = opts.jobs < 1 ? 1 : opts.jobs;

  ShardComm comm(shards);
  StealQueue queue(comm.scatter_ranges(n), opts.grain, opts.steal);

  core::ThreadPool rank_pool(static_cast<unsigned>(shards));
  rank_pool.parallel_for(
      static_cast<std::size_t>(shards), [&](std::size_t r) {
        const int rank = static_cast<int>(r);
        // One lane pool per rank, reused across its claims (sequential
        // parallel_for calls on one pool are fine; reentrancy is not,
        // which is why the lanes are a distinct pool from rank_pool).
        core::ThreadPool lanes(jobs);
        while (true) {
          const std::optional<StealQueue::Claim> claim = queue.claim(rank);
          if (!claim.has_value()) {
            if (queue.drained()) break;
            // Un-started slots are not stealable yet; their owners are
            // live pool lanes, so retry rather than exit early.
            std::this_thread::yield();
            continue;
          }
          const ShardRange rg = claim->range;
          lanes.parallel_for(rg.size(),
                             [&](std::size_t k) { item(rg.begin + k); });
        }
      });

  CampaignRunStats stats;
  stats.items = n;
  stats.ranks.reserve(static_cast<std::size_t>(shards));
  for (int rank = 0; rank < shards; ++rank) {
    stats.ranks.push_back(queue.stats(rank));
  }
  return stats;
}

}  // namespace flit::dist
