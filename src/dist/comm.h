#pragma once

// Typed scatter/gather substrate of the sharded distributed study engine.
//
// src/par's DeterministicComm gives the repo a deterministic rank
// partition (`range`) and fixed-order double reductions; the distributed
// engine needs the same partition contract applied to arbitrary payloads:
// scatter a compilation-space index range across ranks and gather the
// per-rank outcome vectors back *by global space index*, so the merged
// result is bitwise-identical to a single-rank run at any shard count.
// ShardComm wraps DeterministicComm and inherits its partition verbatim --
// contiguous ranges, remainder spread over the first `n % nranks` ranks,
// empty ranges when there are more ranks than items -- so anything proven
// about `DeterministicComm::range` (tests/par/test_par.cpp) holds for the
// scatter path too.
//
// Everything here is simulated in-process (the same stance as par/comm.h):
// ranks execute in a fixed order or on the caller's thread pool, and the
// gather is a deterministic placement by index, not a message race.

#include <algorithm>
#include <cstddef>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "par/comm.h"

namespace flit::dist {

/// Contiguous [begin, end) slice of the global index space owned by one
/// rank (the par::DeterministicComm partition type).
using ShardRange = par::DeterministicComm::Range;

class ShardComm {
 public:
  /// A communicator of `nranks` simulated ranks; throws
  /// std::invalid_argument for nranks < 1 (the DeterministicComm
  /// contract).
  explicit ShardComm(int nranks) : comm_(nranks) {}

  [[nodiscard]] int size() const { return comm_.size(); }

  /// The slice of [0, n) owned by `rank`.
  [[nodiscard]] ShardRange range(int rank, std::size_t n) const {
    return comm_.range(rank, n);
  }

  /// The full partition of [0, n): one range per rank, in rank order.
  /// Ranges are contiguous, non-overlapping, and cover [0, n); ranks past
  /// the item count receive empty ranges.
  [[nodiscard]] std::vector<ShardRange> scatter_ranges(std::size_t n) const {
    std::vector<ShardRange> out;
    out.reserve(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) out.push_back(range(r, n));
    return out;
  }

  /// Scatters `items` into per-rank slices following scatter_ranges.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> scatter(
      std::span<const T> items) const {
    std::vector<std::vector<T>> out(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      const ShardRange rg = range(r, items.size());
      out[static_cast<std::size_t>(r)].assign(items.begin() + rg.begin,
                                              items.begin() + rg.end);
    }
    return out;
  }

  /// Reassembles per-rank vectors into one vector of `n` elements, placing
  /// rank r's k-th element at global index range(r, n).begin + k.  The
  /// inverse of scatter: gather_ordered(n, scatter(items)) == items.
  /// Throws std::invalid_argument when the shard count or any shard's size
  /// disagrees with the partition -- a merge must never silently misplace
  /// an outcome.
  template <typename T>
  [[nodiscard]] std::vector<T> gather_ordered(
      std::size_t n, std::vector<std::vector<T>> shards) const {
    if (shards.size() != static_cast<std::size_t>(size())) {
      throw std::invalid_argument(
          "gather_ordered: " + std::to_string(shards.size()) +
          " shards for a " + std::to_string(size()) + "-rank communicator");
    }
    std::vector<T> out(n);
    for (int r = 0; r < size(); ++r) {
      const ShardRange rg = range(r, n);
      std::vector<T>& shard = shards[static_cast<std::size_t>(r)];
      if (shard.size() != rg.size()) {
        throw std::invalid_argument(
            "gather_ordered: rank " + std::to_string(r) + " holds " +
            std::to_string(shard.size()) + " elements, partition expects " +
            std::to_string(rg.size()));
      }
      for (std::size_t k = 0; k < shard.size(); ++k) {
        out[rg.begin + k] = std::move(shard[k]);
      }
    }
    return out;
  }

  /// gather_ordered generalized to permuted partitions: rank r's k-th
  /// element lands at global index rank_indices[r][k].  The placement
  /// engine hands each rank a non-contiguous index set, so the gather
  /// validates what the contiguous partition made structural: the index
  /// sets must be disjoint and cover [0, n) exactly, and each shard must
  /// hold exactly one element per owned index.  Any violation throws
  /// std::invalid_argument -- a merge must never silently misplace or
  /// double-write an outcome.
  template <typename T>
  [[nodiscard]] std::vector<T> gather_indexed(
      std::size_t n,
      const std::vector<std::vector<std::size_t>>& rank_indices,
      std::vector<std::vector<T>> shards) const {
    if (rank_indices.size() != static_cast<std::size_t>(size()) ||
        shards.size() != static_cast<std::size_t>(size())) {
      throw std::invalid_argument(
          "gather_indexed: " + std::to_string(rank_indices.size()) +
          " index sets / " + std::to_string(shards.size()) +
          " shards for a " + std::to_string(size()) + "-rank communicator");
    }
    std::vector<T> out(n);
    std::vector<bool> placed(n, false);
    for (std::size_t r = 0; r < shards.size(); ++r) {
      const std::vector<std::size_t>& idx = rank_indices[r];
      std::vector<T>& shard = shards[r];
      if (shard.size() != idx.size()) {
        throw std::invalid_argument(
            "gather_indexed: rank " + std::to_string(r) + " holds " +
            std::to_string(shard.size()) + " elements, placement owns " +
            std::to_string(idx.size()));
      }
      for (std::size_t k = 0; k < idx.size(); ++k) {
        if (idx[k] >= n) {
          throw std::invalid_argument(
              "gather_indexed: rank " + std::to_string(r) +
              " owns out-of-space index " + std::to_string(idx[k]) +
              " (space is " + std::to_string(n) + " items)");
        }
        if (placed[idx[k]]) {
          throw std::invalid_argument(
              "gather_indexed: global index " + std::to_string(idx[k]) +
              " owned by more than one rank");
        }
        placed[idx[k]] = true;
        out[idx[k]] = std::move(shard[k]);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!placed[i]) {
        throw std::invalid_argument("gather_indexed: global index " +
                                    std::to_string(i) +
                                    " owned by no rank");
      }
    }
    return out;
  }

 private:
  par::DeterministicComm comm_;
};

/// The deal protocol of work-stealing shard rebalancing: the partition's
/// ranges become per-rank claim slots, and ranks pull grain-sized
/// sub-ranges instead of owning their slice outright.
///
/// A rank claims from the *front* of its own slot, leaving the tail
/// unclaimed; once its slot is empty it steals a trailing sub-range from
/// the victim with the most unclaimed items (ties broken by the lowest
/// rank).  Only slots whose owner has made its first claim are stealable:
/// an un-started slot is about to be claimed by a live owner anyway, and
/// the guard keeps ranks past the item count idle instead of racing the
/// owners for whole slices.  Owners eat forward, thieves eat backward, so
/// claims are always disjoint contiguous sub-ranges that jointly cover
/// [0, n) exactly once
/// -- which is what keeps every outcome index-addressed: no matter which
/// rank executes an item, its result lands at its global space index and
/// the merged study is bitwise-identical to the static partition.
///
/// The victim rule is a deterministic function of the queue state.  Under
/// serial (virtual-clock) scheduling the whole claim sequence is therefore
/// reproducible; under pooled shards the *schedule* may vary with timing,
/// but the results cannot (see the determinism argument in
/// docs/distributed-engine.md).
///
/// Fault containment composes over the same protocol: the fleet
/// supervisor returns a dead rank's unfinished claim with release() and
/// retires its remaining slot with mark_dead(); both land in a FIFO
/// orphan pool that any rank may claim from -- even with stealing
/// disabled, because taking over for a dead rank is recovery, not load
/// balancing.  A queue that never sees release()/mark_dead() behaves
/// exactly as before.
class StealQueue {
 public:
  /// One granted sub-range: `range` is the claim, `victim` the rank whose
  /// slot it came from, `stolen` whether that rank is not the claimant,
  /// `reassigned` whether the range was orphaned by a failed rank.
  struct Claim {
    ShardRange range{};
    int victim = 0;
    bool stolen = false;
    bool reassigned = false;
  };

  /// Per-rank accounting, readable after the workers have drained the
  /// queue (claims mutate it under the lock).
  struct RankStats {
    std::size_t claims = 0;      ///< sub-ranges granted to this rank
    std::size_t steals = 0;      ///< of which were steals
    std::size_t stolen = 0;      ///< items this rank took from other slots
    std::size_t donated = 0;     ///< items other ranks took from this slot
    std::size_t reassigned = 0;  ///< items this rank took from the orphan
                                 ///< pool (failed ranks' returned work)
  };

  /// `ranges` is the static partition (ShardComm::scatter_ranges);
  /// `grain` caps every claim's size (>= 1, clamped).  `steal_enabled`
  /// false disables stealing from live slots (the --no-steal fleet);
  /// orphaned work stays claimable by everyone either way.
  StealQueue(std::vector<ShardRange> ranges, std::size_t grain,
             bool steal_enabled = true)
      : grain_(grain < 1 ? 1 : grain), steal_enabled_(steal_enabled) {
    slots_.reserve(ranges.size());
    for (const ShardRange& r : ranges) slots_.push_back({r.begin, r.end});
    stats_.resize(ranges.size());
  }

  /// Grants `rank` its next sub-range, or nullopt when nothing is
  /// claimable *right now* (every started slot is empty).  With un-started
  /// slots outstanding the queue is not drained -- a pooled thief should
  /// yield and retry until drained() rather than exit.  Thread-safe.
  [[nodiscard]] std::optional<Claim> claim(int rank) {
    const auto r = static_cast<std::size_t>(rank);
    std::lock_guard lock(mu_);
    if (r >= slots_.size()) {
      throw std::invalid_argument("StealQueue: rank " + std::to_string(rank) +
                                  " outside the " +
                                  std::to_string(slots_.size()) +
                                  "-slot partition");
    }
    Slot& own = slots_[r];
    if (own.next < own.end) {
      // Own work first: a grain-sized chunk off the front, leaving the
      // trailing sub-range stealable.
      own.started = true;
      const std::size_t take = std::min(grain_, own.end - own.next);
      Claim c{{own.next, own.next + take}, rank, false, false};
      own.next += take;
      ++stats_[r].claims;
      return c;
    }
    // Orphaned work next: FIFO over the ranges failed ranks returned, a
    // grain off the front of the oldest.  Recovery outranks stealing --
    // an orphan has no live owner coming back for it.
    if (!orphans_.empty()) {
      Orphan& o = orphans_.front();
      const std::size_t take = std::min(grain_, o.range.size());
      Claim c{{o.range.begin, o.range.begin + take}, o.owner, false, true};
      o.range.begin += take;
      if (o.range.begin >= o.range.end) orphans_.erase(orphans_.begin());
      ++stats_[r].claims;
      stats_[r].reassigned += take;
      return c;
    }
    if (!steal_enabled_) return std::nullopt;
    // Steal: the most-loaded *started* slot by unclaimed-item count, ties
    // broken by the lowest rank (a deterministic function of the queue
    // state).
    std::size_t victim = slots_.size();
    std::size_t most = 0;
    for (std::size_t v = 0; v < slots_.size(); ++v) {
      if (!slots_[v].started) continue;
      const std::size_t remaining = slots_[v].end - slots_[v].next;
      if (remaining > most) {
        most = remaining;
        victim = v;
      }
    }
    if (victim == slots_.size()) return std::nullopt;  // drained
    Slot& loser = slots_[victim];
    const std::size_t take = std::min(grain_, most);
    Claim c{{loser.end - take, loser.end}, static_cast<int>(victim), true,
            false};
    loser.end -= take;
    ++stats_[r].claims;
    ++stats_[r].steals;
    stats_[r].stolen += take;
    stats_[victim].donated += take;
    return c;
  }

  /// Returns an unfinished claim to the queue (the claimant died before
  /// completing it): the range joins the orphan pool for any rank to
  /// re-claim.  `owner` is recorded as the orphan's victim for
  /// accounting.  Empty ranges are ignored.
  void release(ShardRange range, int owner) {
    if (range.begin >= range.end) return;
    std::lock_guard lock(mu_);
    orphans_.push_back({range, owner});
  }

  /// Retires a rank permanently: its remaining unclaimed slot moves to
  /// the orphan pool so survivors pick it up even with stealing disabled.
  /// The supervisor calls this when a rank exhausts its restart budget;
  /// the dead rank must make no further claim() calls.
  void mark_dead(int rank) {
    const auto r = static_cast<std::size_t>(rank);
    std::lock_guard lock(mu_);
    Slot& s = slots_.at(r);
    if (s.next < s.end) {
      orphans_.push_back({{s.next, s.end}, rank});
      s.next = s.end;
    }
  }

  /// True when claim(rank) would grant something *right now*: own work,
  /// an orphan, or (with stealing) a started victim.  The supervisor's
  /// virtual-clock loop schedules only claimable ranks, so a rank whose
  /// remaining work sits in another live rank's un-started slot never
  /// spins.
  [[nodiscard]] bool claimable(int rank) const {
    const auto r = static_cast<std::size_t>(rank);
    std::lock_guard lock(mu_);
    const Slot& own = slots_.at(r);
    if (own.next < own.end) return true;
    if (!orphans_.empty()) return true;
    if (!steal_enabled_) return false;
    for (const Slot& s : slots_) {
      if (s.started && s.next < s.end) return true;
    }
    return false;
  }

  /// True once every slot and the orphan pool are empty (no further claim
  /// can succeed).
  [[nodiscard]] bool drained() const {
    std::lock_guard lock(mu_);
    for (const Slot& s : slots_) {
      if (s.next < s.end) return false;
    }
    return orphans_.empty();
  }

  [[nodiscard]] RankStats stats(int rank) const {
    std::lock_guard lock(mu_);
    return stats_.at(static_cast<std::size_t>(rank));
  }

 private:
  /// Unclaimed items of one rank's slot: owners advance `next`, thieves
  /// retreat `end`.  `started` flips on the owner's first claim and gates
  /// stealing.
  struct Slot {
    std::size_t next = 0, end = 0;
    bool started = false;
  };

  /// A failed rank's returned range, claimable by anyone in FIFO order.
  struct Orphan {
    ShardRange range{};
    int owner = 0;
  };

  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  std::vector<Orphan> orphans_;
  std::vector<RankStats> stats_;
  std::size_t grain_;
  bool steal_enabled_;
};

}  // namespace flit::dist
