#pragma once

// Typed scatter/gather substrate of the sharded distributed study engine.
//
// src/par's DeterministicComm gives the repo a deterministic rank
// partition (`range`) and fixed-order double reductions; the distributed
// engine needs the same partition contract applied to arbitrary payloads:
// scatter a compilation-space index range across ranks and gather the
// per-rank outcome vectors back *by global space index*, so the merged
// result is bitwise-identical to a single-rank run at any shard count.
// ShardComm wraps DeterministicComm and inherits its partition verbatim --
// contiguous ranges, remainder spread over the first `n % nranks` ranks,
// empty ranges when there are more ranks than items -- so anything proven
// about `DeterministicComm::range` (tests/par/test_par.cpp) holds for the
// scatter path too.
//
// Everything here is simulated in-process (the same stance as par/comm.h):
// ranks execute in a fixed order or on the caller's thread pool, and the
// gather is a deterministic placement by index, not a message race.

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "par/comm.h"

namespace flit::dist {

/// Contiguous [begin, end) slice of the global index space owned by one
/// rank (the par::DeterministicComm partition type).
using ShardRange = par::DeterministicComm::Range;

class ShardComm {
 public:
  /// A communicator of `nranks` simulated ranks; throws
  /// std::invalid_argument for nranks < 1 (the DeterministicComm
  /// contract).
  explicit ShardComm(int nranks) : comm_(nranks) {}

  [[nodiscard]] int size() const { return comm_.size(); }

  /// The slice of [0, n) owned by `rank`.
  [[nodiscard]] ShardRange range(int rank, std::size_t n) const {
    return comm_.range(rank, n);
  }

  /// The full partition of [0, n): one range per rank, in rank order.
  /// Ranges are contiguous, non-overlapping, and cover [0, n); ranks past
  /// the item count receive empty ranges.
  [[nodiscard]] std::vector<ShardRange> scatter_ranges(std::size_t n) const {
    std::vector<ShardRange> out;
    out.reserve(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) out.push_back(range(r, n));
    return out;
  }

  /// Scatters `items` into per-rank slices following scatter_ranges.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> scatter(
      std::span<const T> items) const {
    std::vector<std::vector<T>> out(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      const ShardRange rg = range(r, items.size());
      out[static_cast<std::size_t>(r)].assign(items.begin() + rg.begin,
                                              items.begin() + rg.end);
    }
    return out;
  }

  /// Reassembles per-rank vectors into one vector of `n` elements, placing
  /// rank r's k-th element at global index range(r, n).begin + k.  The
  /// inverse of scatter: gather_ordered(n, scatter(items)) == items.
  /// Throws std::invalid_argument when the shard count or any shard's size
  /// disagrees with the partition -- a merge must never silently misplace
  /// an outcome.
  template <typename T>
  [[nodiscard]] std::vector<T> gather_ordered(
      std::size_t n, std::vector<std::vector<T>> shards) const {
    if (shards.size() != static_cast<std::size_t>(size())) {
      throw std::invalid_argument(
          "gather_ordered: " + std::to_string(shards.size()) +
          " shards for a " + std::to_string(size()) + "-rank communicator");
    }
    std::vector<T> out(n);
    for (int r = 0; r < size(); ++r) {
      const ShardRange rg = range(r, n);
      std::vector<T>& shard = shards[static_cast<std::size_t>(r)];
      if (shard.size() != rg.size()) {
        throw std::invalid_argument(
            "gather_ordered: rank " + std::to_string(r) + " holds " +
            std::to_string(shard.size()) + " elements, partition expects " +
            std::to_string(rg.size()));
      }
      for (std::size_t k = 0; k < shard.size(); ++k) {
        out[rg.begin + k] = std::move(shard[k]);
      }
    }
    return out;
  }

 private:
  par::DeterministicComm comm_;
};

}  // namespace flit::dist
