#include "dist/coordinator.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <system_error>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/parallel.h"
#include "dist/vclock.h"
#include "obs/session.h"
#include "toolchain/compile_cache.h"

namespace flit::dist {

namespace {

/// The report's per-shard range field: the exact ShardComm slice under a
/// contiguous placement, the [min, max+1) envelope of the owned set under
/// a permuted one (envelopes may overlap across ranks; owned_items is the
/// authoritative count).
ShardRange report_range(const ShardComm& comm, std::size_t space_size,
                        const Placement& placement, std::size_t r) {
  if (placement.contiguous) {
    return comm.range(static_cast<int>(r), space_size);
  }
  const std::vector<std::size_t>& idx = placement.rank_indices[r];
  if (idx.empty()) return comm.range(static_cast<int>(r), space_size);
  return ShardRange{idx.front(), idx.back() + 1};
}

void fill_placement_fields(ShardReport& rep, const Placement& placement,
                           std::size_t r) {
  rep.owned_items = placement.rank_indices[r].size();
  rep.owned_groups = placement.rank_groups[r];
  rep.predicted = placement.predicted[r];
}

}  // namespace

ShardCoordinator::ShardCoordinator(const fpsem::CodeModel* model,
                                   toolchain::Compilation baseline,
                                   toolchain::Compilation speed_reference,
                                   ShardOptions opts)
    : model_(model),
      baseline_(std::move(baseline)),
      speed_reference_(std::move(speed_reference)),
      opts_(std::move(opts)),
      cost_model_(baseline_, speed_reference_) {
  if (opts_.shards < 1) {
    throw std::invalid_argument("ShardCoordinator: shards must be >= 1");
  }
  if (opts_.jobs < 1) {
    throw std::invalid_argument("ShardCoordinator: jobs must be >= 1");
  }
  if (opts_.resume && opts_.shard_db_dir.empty()) {
    throw std::invalid_argument(
        "ShardCoordinator: resume requires shard_db_dir (the per-shard "
        "checkpoints to stitch)");
  }
  if (!opts_.shard_db_dir.empty()) {
    // Fail fast with an actionable message instead of a raw filesystem
    // exception at the first checkpoint: create the directory now and
    // prove it is writable with a probe file.
    std::error_code ec;
    std::filesystem::create_directories(opts_.shard_db_dir, ec);
    if (ec) {
      throw std::invalid_argument(
          "ShardCoordinator: cannot create shard-db directory '" +
          opts_.shard_db_dir.string() + "': " + ec.message());
    }
    const std::filesystem::path probe =
        opts_.shard_db_dir / ".flit-write-probe";
    if (std::FILE* f = std::fopen(probe.string().c_str(), "w");
        f != nullptr) {
      std::fclose(f);
      std::filesystem::remove(probe, ec);
    } else {
      throw std::invalid_argument(
          "ShardCoordinator: shard-db directory '" +
          opts_.shard_db_dir.string() +
          "' is not writable (checkpoints could not be saved)");
    }
  }
  if (!opts_.cost_profile.empty()) {
    cost_model_.set_profile(CostProfile::from_results_db(opts_.cost_profile));
  } else if (!opts_.profile.empty()) {
    cost_model_.set_profile(opts_.profile);
  }
}

std::filesystem::path ShardCoordinator::shard_db_path(
    const std::filesystem::path& dir, int rank, int shards) {
  return dir / ("shard-" + std::to_string(rank) + "-of-" +
                std::to_string(shards) + ".tsv");
}

ShardedStudy ShardCoordinator::run(
    const core::TestBase& test,
    std::span<const toolchain::Compilation> space) const {
  return run_impl(test, space, opts_.resume);
}

ShardedStudy ShardCoordinator::resume(
    const core::TestBase& test,
    std::span<const toolchain::Compilation> space) const {
  if (opts_.shard_db_dir.empty()) {
    throw std::invalid_argument(
        "ShardCoordinator::resume: no shard_db_dir to resume from");
  }
  return run_impl(test, space, /*resume_shards=*/true);
}

core::ExploreFn ShardCoordinator::explore_override() const {
  return [this](const core::TestBase& test,
                std::span<const toolchain::Compilation> space) {
    return run(test, space).study;
  };
}

ShardedStudy ShardCoordinator::run_impl(
    const core::TestBase& test,
    std::span<const toolchain::Compilation> space, bool resume_shards) const {
  if (!opts_.shard_db_dir.empty()) {
    std::filesystem::create_directories(opts_.shard_db_dir);
  }

  const Placement placement =
      place_space(space, opts_.shards, opts_.placement, cost_model_);

  ShardedStudy sharded =
      opts_.steal ? run_placed_stealing(test, space, placement, resume_shards)
                  : run_placed_static(test, space, placement, resume_shards);

  sharded.placement.policy = placement.policy;
  sharded.placement.contiguous = placement.contiguous;
  sharded.placement.profiled = cost_model_.has_profile();
  sharded.placement.total_groups = placement.total_groups;
  sharded.placement.duplicated_groups = placement.duplicated_groups;
  sharded.placement.static_duplicated_groups =
      placement.static_duplicated_groups;

  if (placement.policy != PlacementPolicy::Static) {
    // Placement telemetry -- strictly off the result path, and recorded
    // once per run on the coordinating thread, so the totals are
    // independent of shards x jobs x stealing.
    obs::MetricsRegistry& m = obs::metrics();
    m.counter("dist.placement.runs").add();
    m.counter("dist.placement.duplicated_groups")
        .add(placement.duplicated_groups);
    m.counter("dist.placement.avoided_compiles")
        .add(placement.avoided_group_compiles());
    m.gauge("dist.placement.groups")
        .set(static_cast<std::int64_t>(placement.total_groups));

    // Predicted-vs-actual cycle error: the model predicts in relative
    // units, so rescale its predictions to the run's actual cycle total
    // before comparing.  Anchor-equal items are answered from the memoized
    // anchor run (their "cost" is reuse, not execution) and quarantined
    // items carry no cycles; both are excluded.  Iterated in global index
    // order with fixed-point accumulation, the histogram is deterministic.
    double predicted_sum = 0.0, actual_sum = 0.0;
    const auto fresh = [&](const core::CompilationOutcome& o) {
      return o.ok() && o.cycles > 0.0 && o.comp != baseline_ &&
             o.comp != speed_reference_;
    };
    for (const core::CompilationOutcome& o : sharded.study.outcomes) {
      if (!fresh(o)) continue;
      predicted_sum += cost_model_.predict(o.comp);
      actual_sum += o.cycles;
    }
    if (predicted_sum > 0.0 && actual_sum > 0.0) {
      obs::Histogram& err =
          m.histogram("dist.cost.error_pct", cost_error_buckets());
      const double scale = actual_sum / predicted_sum;
      for (const core::CompilationOutcome& o : sharded.study.outcomes) {
        if (!fresh(o)) continue;
        const double predicted = cost_model_.predict(o.comp) * scale;
        err.observe(100.0 * std::fabs(predicted - o.cycles) / o.cycles);
      }
    }
  }

  if (opts_.db != nullptr) opts_.db->record(sharded.study);
  return sharded;
}

ShardedStudy ShardCoordinator::run_placed_static(
    const core::TestBase& test,
    std::span<const toolchain::Compilation> space, const Placement& placement,
    bool resume_shards) const {
  const ShardComm comm(opts_.shards);
  const bool checkpointing = !opts_.shard_db_dir.empty();
  const std::size_t nranks = placement.shards();

  std::vector<core::StudyResult> partials(nranks);
  std::vector<ShardReport> reports(nranks);

  // Per-rank checkpoint databases, opened up front so a resume can
  // union-seed them: under a permuted placement (or after a prior run at a
  // different policy, or with stealing) the row an item needs may have
  // been checkpointed by any rank, so every database is seeded with the
  // union of all rows and the explorer's (test, compilation)-keyed
  // prefill restores each item no matter who recorded it.  A database is
  // only written when its rank records a batch, so idle ranks still leave
  // no checkpoint file behind.
  std::vector<std::unique_ptr<core::ResultsDb>> shard_dbs(nranks);
  if (checkpointing) {
    for (std::size_t r = 0; r < nranks; ++r) {
      shard_dbs[r] = std::make_unique<core::ResultsDb>(shard_db_path(
          opts_.shard_db_dir, static_cast<int>(r), opts_.shards));
    }
    if (resume_shards) {
      std::vector<core::ResultRow> union_rows;
      for (const auto& db : shard_dbs) {
        union_rows.insert(union_rows.end(), db->rows().begin(),
                          db->rows().end());
      }
      for (const auto& db : shard_dbs) db->merge_rows(union_rows);
    }
  }

  // One rank: an isolated worker with its own cache, explorer and
  // checkpoint database, exploring its owned index set.  Outcomes land in
  // the rank's partial slot in owned-index order; merge_placed reassembles
  // them by global index.
  const auto run_shard = [&](std::size_t r) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<std::size_t>& indices = placement.rank_indices[r];
    ShardReport& rep = reports[r];
    rep.rank = static_cast<int>(r);
    rep.range = report_range(comm, space.size(), placement, r);
    fill_placement_fields(rep, placement, r);
    core::StudyResult& out = partials[r];
    out.test_name = test.name();
    if (indices.empty()) return;  // more ranks than items: nothing to run

    // The shard's telemetry lane: anchors and shard-level spans carry the
    // rank, and the explorer stamps each item with its *global* space
    // index, so the merged trace is independent of which thread ran the
    // shard.  kNoIndex marks shard-scoped (not per-item) events.
    obs::ScopedItem obs_lane(static_cast<int>(r), obs::kNoIndex, 0);
    obs::Span shard_span(
        obs::tracer_if_enabled(), "shard", "dist",
        placement.contiguous
            ? test.name() + " [" + std::to_string(indices.front()) + ", " +
                  std::to_string(indices.back() + 1) + ")"
            : test.name() + " " + std::to_string(indices.size()) +
                  " item(s)");

    // Densify the owned set: the explorer runs a compact slice and the
    // index vector carries each element's global identity.
    std::vector<toolchain::Compilation> items;
    items.reserve(indices.size());
    for (std::size_t i : indices) items.push_back(space[i]);

    toolchain::CompilationCache cache;
    core::SpaceExplorer explorer(model_, baseline_, speed_reference_,
                                 opts_.jobs, &cache);
    core::ExploreOptions eo;
    eo.retry = opts_.retry;
    eo.keep_going = opts_.keep_going;
    eo.checkpoint_batch = opts_.checkpoint_batch;
    eo.obs_shard = static_cast<int>(r);
    eo.obs_index_base = indices.front();
    eo.global_indices = indices;

    if (checkpointing) {
      eo.db = shard_dbs[r].get();
      eo.resume = resume_shards;
      if (resume_shards) {
        for (const toolchain::Compilation& c : items) {
          if (shard_dbs[r]->find(test.name(), c.str()).has_value()) {
            ++rep.prefilled;
          }
        }
      }
    }

    out = explorer.explore(test, items, eo);
    rep.failed = out.failed_count();
    rep.retried = out.retried_count();
    rep.executed_items = indices.size() - rep.prefilled;
    rep.cache = cache.stats();
    // The shard's modeled-cycle skew sample: executed ok outcomes only.
    // Resumed rows carry no cycle measurement (the checkpoint database
    // stores classifications, not cycles), so they would register as
    // zero-cost items and fake a skew that is not there.  fresh_cycles
    // additionally drops anchor-equal items, whose cycles are recorded
    // but whose execution is a memoized-anchor reuse.
    for (const core::CompilationOutcome& o : out.outcomes) {
      if (o.ok() && o.cycles > 0.0) {
        rep.cycles.observe(o.cycles);
        if (o.comp != baseline_ && o.comp != speed_reference_) {
          rep.fresh_cycles.observe(o.cycles);
        }
      }
    }
    rep.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  };

  if (opts_.serial_shards || opts_.shards == 1) {
    for (std::size_t r = 0; r < nranks; ++r) run_shard(r);
  } else {
    // One pool lane per shard; each shard's explorer opens its own inner
    // pool of `jobs` lanes, composing shards x jobs.  A StudyAbort inside
    // any shard surfaces through the pool's lowest-index-rethrow contract,
    // matching what a serial shard loop would throw first.
    core::ThreadPool pool(static_cast<unsigned>(opts_.shards));
    pool.parallel_for(nranks, run_shard);
  }

  ShardedStudy sharded;
  sharded.study =
      merge_placed(comm, space.size(), placement, std::move(partials));
  sharded.shards = std::move(reports);
  return sharded;
}

ShardedStudy ShardCoordinator::run_placed_stealing(
    const core::TestBase& test,
    std::span<const toolchain::Compilation> space, const Placement& placement,
    bool resume_shards) const {
  const ShardComm comm(opts_.shards);
  const bool checkpointing = !opts_.shard_db_dir.empty();
  const std::size_t nranks = placement.shards();

  // The steal queue deals in contiguous ranges; a permuted placement's
  // owned sets are made contiguous by *position*: `order` concatenates the
  // per-rank index sets, each rank's slot is its position range, and a
  // claim's positions map back to global indices through `order`.  Under
  // the Static policy `order` is the identity, so positions equal global
  // indices and this is the historical stealing path verbatim.
  std::vector<std::size_t> order;
  order.reserve(space.size());
  std::vector<ShardRange> slots(nranks);
  for (std::size_t r = 0; r < nranks; ++r) {
    slots[r].begin = order.size();
    order.insert(order.end(), placement.rank_indices[r].begin(),
                 placement.rank_indices[r].end());
    slots[r].end = order.size();
  }

  std::vector<ShardReport> reports(nranks);
  for (std::size_t r = 0; r < nranks; ++r) {
    reports[r].rank = static_cast<int>(r);
    reports[r].range = report_range(comm, space.size(), placement, r);
    fill_placement_fields(reports[r], placement, r);
  }

  // Claims are disjoint position sub-ranges that jointly cover the space
  // exactly once, so every outcome is written straight to its global
  // index: no gather step, no way for rebalancing to misplace a result.
  core::StudyResult merged;
  merged.test_name = test.name();
  merged.outcomes.resize(space.size());

  // Persistent per-rank worker state: each rank keeps one cache, one
  // explorer and (with checkpointing) one shard database across all of its
  // claims, so its bookkeeping spans owned and stolen work alike.  The
  // database is only written when the rank records a batch, so ranks that
  // never execute still leave no checkpoint file behind.
  std::vector<std::unique_ptr<toolchain::CompilationCache>> caches(nranks);
  std::vector<std::unique_ptr<core::SpaceExplorer>> explorers(nranks);
  std::vector<std::unique_ptr<core::ResultsDb>> shard_dbs(nranks);
  std::vector<std::size_t> ordinal_base(nranks, 0);
  for (std::size_t r = 0; r < nranks; ++r) {
    caches[r] = std::make_unique<toolchain::CompilationCache>();
    explorers[r] = std::make_unique<core::SpaceExplorer>(
        model_, baseline_, speed_reference_, opts_.jobs, caches[r].get());
    if (checkpointing) {
      shard_dbs[r] = std::make_unique<core::ResultsDb>(shard_db_path(
          opts_.shard_db_dir, static_cast<int>(r), opts_.shards));
    }
  }

  // Resume under rebalancing: a stolen item checkpoints into the *thief's*
  // shard database (and a re-placed item into whichever rank owned it last
  // run), so the row a claim needs may live in any shard's file.  Seed
  // every shard database with the union of all checkpointed rows; the
  // explorer's (test, compilation)-keyed prefill then restores each item
  // no matter which rank recorded it.
  if (checkpointing && resume_shards) {
    std::vector<core::ResultRow> union_rows;
    for (const auto& db : shard_dbs) {
      union_rows.insert(union_rows.end(), db->rows().begin(),
                        db->rows().end());
    }
    for (const auto& db : shard_dbs) db->merge_rows(union_rows);
  }

  StealQueue queue(slots, opts_.steal_grain);

  // Executes one claimed position sub-range on rank r's worker state and
  // writes the outcomes to their global indices (claims are disjoint, so
  // the writes are race-free).  Returns the claim's wall seconds for the
  // clocks.
  const auto execute_claim = [&](std::size_t r, const StealQueue::Claim& c) {
    const auto t0 = std::chrono::steady_clock::now();
    ShardReport& rep = reports[r];

    // The executing rank's telemetry lane; stolen claims keep their own
    // span name so a trace shows the rebalance, while the items inside
    // stay stamped with their global indices either way.
    obs::ScopedItem obs_lane(static_cast<int>(r), obs::kNoIndex, 0);
    obs::Span claim_span(
        obs::tracer_if_enabled(), c.stolen ? "steal" : "shard", "dist",
        test.name() + " [" + std::to_string(c.range.begin) + ", " +
            std::to_string(c.range.end) + ")");
    if (c.stolen) {
      obs::metrics().counter("dist.steals").add();
      obs::metrics().counter("dist.stolen_items").add(c.range.size());
    }

    // The claim's global index set and dense compilation slice.
    std::vector<std::size_t> indices(
        order.begin() + static_cast<std::ptrdiff_t>(c.range.begin),
        order.begin() + static_cast<std::ptrdiff_t>(c.range.end));
    std::vector<toolchain::Compilation> items;
    items.reserve(indices.size());
    for (std::size_t i : indices) items.push_back(space[i]);

    core::ExploreOptions eo;
    eo.retry = opts_.retry;
    eo.keep_going = opts_.keep_going;
    eo.checkpoint_batch = opts_.checkpoint_batch;
    eo.obs_shard = static_cast<int>(r);
    eo.obs_index_base = indices.empty() ? 0 : indices.front();
    eo.global_indices = indices;
    std::size_t claim_prefilled = 0;
    if (shard_dbs[r] != nullptr) {
      eo.db = shard_dbs[r].get();
      eo.resume = resume_shards;
      // Number this claim's checkpoint batches after the rank's earlier
      // claims, so the kill site keeps counting durable checkpoints *per
      // rank* exactly as it does under the static partition.
      eo.checkpoint_ordinal_base = ordinal_base[r];
      const std::size_t batch = opts_.checkpoint_batch > 0
                                    ? opts_.checkpoint_batch
                                    : c.range.size();
      ordinal_base[r] += (c.range.size() + batch - 1) / batch;
      if (resume_shards) {
        for (const toolchain::Compilation& comp : items) {
          if (shard_dbs[r]->find(test.name(), comp.str()).has_value()) {
            ++claim_prefilled;
          }
        }
      }
    }

    core::StudyResult part = explorers[r]->explore(test, items, eo);
    rep.failed += part.failed_count();
    rep.retried += part.retried_count();
    rep.prefilled += claim_prefilled;
    rep.executed_items += c.range.size() - claim_prefilled;
    for (const core::CompilationOutcome& o : part.outcomes) {
      if (o.ok() && o.cycles > 0.0) {
        rep.cycles.observe(o.cycles);
        if (o.comp != baseline_ && o.comp != speed_reference_) {
          rep.fresh_cycles.observe(o.cycles);
        }
      }
    }
    for (std::size_t k = 0; k < part.outcomes.size(); ++k) {
      merged.outcomes[indices[k]] = std::move(part.outcomes[k]);
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  if (opts_.serial_shards || opts_.shards == 1) {
    // Virtual-clock fleet emulation: grant the next claim to the rank with
    // the least accumulated wall time (ties -> lowest rank), which is the
    // worker that would go idle first on a real fleet.  The claim sequence
    // is a deterministic function of the queue state and measured
    // durations, steals land exactly where a concurrent fleet would
    // rebalance, and per-rank seconds stay the fleet-timing measurement
    // (fleet wall-clock = max_shard_seconds()).
    VirtualClocks clocks(nranks);
    while (clocks.live() > 0) {
      const std::size_t r = clocks.min_active();
      const auto c = queue.claim(static_cast<int>(r));
      if (!c.has_value()) {
        clocks.deactivate(r);
        continue;
      }
      clocks.advance(r, execute_claim(r, *c));
    }
    for (std::size_t r = 0; r < nranks; ++r) {
      reports[r].seconds = clocks.clock(r);
    }
  } else {
    // One pool lane per rank; each lane loops claims until the queue is
    // drained.  A nullopt with the queue not yet drained means the only
    // remaining items sit in un-started slots -- their owner's lane is
    // about to claim them -- so the thief yields and retries instead of
    // exiting (task count == lane count, so an unclaimed owner task always
    // has a free lane and the wait is bounded).
    core::ThreadPool pool(static_cast<unsigned>(opts_.shards));
    pool.parallel_for(nranks, [&](std::size_t r) {
      while (true) {
        const auto c = queue.claim(static_cast<int>(r));
        if (!c.has_value()) {
          if (queue.drained()) return;
          std::this_thread::yield();
          continue;
        }
        reports[r].seconds += execute_claim(r, *c);
      }
    });
  }

  for (std::size_t r = 0; r < nranks; ++r) {
    const StealQueue::RankStats st = queue.stats(static_cast<int>(r));
    reports[r].stolen = st.stolen;
    reports[r].donated = st.donated;
    reports[r].steals = st.steals;
    reports[r].cache = caches[r]->stats();
  }

  ShardedStudy sharded;
  sharded.study = std::move(merged);
  sharded.shards = std::move(reports);
  return sharded;
}

}  // namespace flit::dist
