#include "dist/coordinator.h"

#include <chrono>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/parallel.h"
#include "obs/session.h"
#include "toolchain/compile_cache.h"

namespace flit::dist {

ShardCoordinator::ShardCoordinator(const fpsem::CodeModel* model,
                                   toolchain::Compilation baseline,
                                   toolchain::Compilation speed_reference,
                                   ShardOptions opts)
    : model_(model),
      baseline_(std::move(baseline)),
      speed_reference_(std::move(speed_reference)),
      opts_(std::move(opts)) {
  if (opts_.shards < 1) {
    throw std::invalid_argument("ShardCoordinator: shards must be >= 1");
  }
  if (opts_.jobs < 1) {
    throw std::invalid_argument("ShardCoordinator: jobs must be >= 1");
  }
  if (opts_.resume && opts_.shard_db_dir.empty()) {
    throw std::invalid_argument(
        "ShardCoordinator: resume requires shard_db_dir (the per-shard "
        "checkpoints to stitch)");
  }
}

std::filesystem::path ShardCoordinator::shard_db_path(
    const std::filesystem::path& dir, int rank, int shards) {
  return dir / ("shard-" + std::to_string(rank) + "-of-" +
                std::to_string(shards) + ".tsv");
}

ShardedStudy ShardCoordinator::run(
    const core::TestBase& test,
    std::span<const toolchain::Compilation> space) const {
  return run_impl(test, space, opts_.resume);
}

ShardedStudy ShardCoordinator::resume(
    const core::TestBase& test,
    std::span<const toolchain::Compilation> space) const {
  if (opts_.shard_db_dir.empty()) {
    throw std::invalid_argument(
        "ShardCoordinator::resume: no shard_db_dir to resume from");
  }
  return run_impl(test, space, /*resume_shards=*/true);
}

core::ExploreFn ShardCoordinator::explore_override() const {
  return [this](const core::TestBase& test,
                std::span<const toolchain::Compilation> space) {
    return run(test, space).study;
  };
}

ShardedStudy ShardCoordinator::run_impl(
    const core::TestBase& test,
    std::span<const toolchain::Compilation> space, bool resume_shards) const {
  if (!opts_.shard_db_dir.empty()) {
    std::filesystem::create_directories(opts_.shard_db_dir);
  }
  if (!opts_.steal) return run_static(test, space, resume_shards);
  return run_stealing(test, space, resume_shards);
}

ShardedStudy ShardCoordinator::run_static(
    const core::TestBase& test,
    std::span<const toolchain::Compilation> space, bool resume_shards) const {
  const ShardComm comm(opts_.shards);
  const auto ranges = comm.scatter_ranges(space.size());
  const bool checkpointing = !opts_.shard_db_dir.empty();

  std::vector<core::StudyResult> partials(ranges.size());
  std::vector<ShardReport> reports(ranges.size());

  // One rank: an isolated worker with its own cache, explorer and
  // checkpoint database, exploring its contiguous slice of the space.
  // Outcomes land in the rank's partial slot; the gather below reassembles
  // them by global index.
  const auto run_shard = [&](std::size_t r) {
    const auto t0 = std::chrono::steady_clock::now();
    const ShardRange rg = ranges[r];
    ShardReport& rep = reports[r];
    rep.rank = static_cast<int>(r);
    rep.range = rg;
    core::StudyResult& out = partials[r];
    out.test_name = test.name();
    if (rg.size() == 0) return;  // more ranks than items: nothing to run

    // The shard's telemetry lane: anchors and shard-level spans carry the
    // rank, and the explorer stamps each item with its *global* space
    // index, so the merged trace is independent of which thread ran the
    // shard.  kNoIndex marks shard-scoped (not per-item) events.
    obs::ScopedItem obs_lane(static_cast<int>(r), obs::kNoIndex, 0);
    obs::Span shard_span(obs::tracer_if_enabled(), "shard", "dist",
                         test.name() + " [" + std::to_string(rg.begin) +
                             ", " + std::to_string(rg.end) + ")");

    const auto slice = space.subspan(rg.begin, rg.size());

    toolchain::CompilationCache cache;
    core::SpaceExplorer explorer(model_, baseline_, speed_reference_,
                                 opts_.jobs, &cache);
    core::ExploreOptions eo;
    eo.retry = opts_.retry;
    eo.keep_going = opts_.keep_going;
    eo.checkpoint_batch = opts_.checkpoint_batch;
    eo.obs_shard = static_cast<int>(r);
    eo.obs_index_base = rg.begin;

    std::optional<core::ResultsDb> shard_db;
    if (checkpointing) {
      shard_db.emplace(shard_db_path(opts_.shard_db_dir,
                                     static_cast<int>(r), opts_.shards));
      eo.db = &*shard_db;
      eo.resume = resume_shards;
      if (resume_shards) {
        for (const toolchain::Compilation& c : slice) {
          if (shard_db->find(test.name(), c.str()).has_value()) {
            ++rep.prefilled;
          }
        }
      }
    }

    out = explorer.explore(test, slice, eo);
    rep.failed = out.failed_count();
    rep.retried = out.retried_count();
    rep.executed_items = rg.size() - rep.prefilled;
    rep.cache = cache.stats();
    // The shard's modeled-cycle skew sample: executed ok outcomes only.
    // Resumed rows carry no cycle measurement (the checkpoint database
    // stores classifications, not cycles), so they would register as
    // zero-cost items and fake a skew that is not there.
    for (const core::CompilationOutcome& o : out.outcomes) {
      if (o.ok() && o.cycles > 0.0) rep.cycles.observe(o.cycles);
    }
    rep.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  };

  if (opts_.serial_shards || opts_.shards == 1) {
    for (std::size_t r = 0; r < ranges.size(); ++r) run_shard(r);
  } else {
    // One pool lane per shard; each shard's explorer opens its own inner
    // pool of `jobs` lanes, composing shards x jobs.  A StudyAbort inside
    // any shard surfaces through the pool's lowest-index-rethrow contract,
    // matching what a serial shard loop would throw first.
    core::ThreadPool pool(static_cast<unsigned>(opts_.shards));
    pool.parallel_for(ranges.size(), run_shard);
  }

  ShardedStudy sharded;
  sharded.study = merge_shards(comm, space.size(), std::move(partials));
  sharded.shards = std::move(reports);
  if (opts_.db != nullptr) opts_.db->record(sharded.study);
  return sharded;
}

ShardedStudy ShardCoordinator::run_stealing(
    const core::TestBase& test,
    std::span<const toolchain::Compilation> space, bool resume_shards) const {
  const ShardComm comm(opts_.shards);
  const auto ranges = comm.scatter_ranges(space.size());
  const bool checkpointing = !opts_.shard_db_dir.empty();
  const std::size_t nranks = ranges.size();

  std::vector<ShardReport> reports(nranks);
  for (std::size_t r = 0; r < nranks; ++r) {
    reports[r].rank = static_cast<int>(r);
    reports[r].range = ranges[r];
  }

  // Claims are disjoint contiguous sub-ranges of [0, space.size()), so
  // every outcome is written straight to its global index: no gather step,
  // no way for rebalancing to misplace a result.
  core::StudyResult merged;
  merged.test_name = test.name();
  merged.outcomes.resize(space.size());

  // Persistent per-rank worker state: each rank keeps one cache, one
  // explorer and (with checkpointing) one shard database across all of its
  // claims, so its bookkeeping spans owned and stolen work alike.  The
  // database is only written when the rank records a batch, so ranks that
  // never execute still leave no checkpoint file behind.
  std::vector<std::unique_ptr<toolchain::CompilationCache>> caches(nranks);
  std::vector<std::unique_ptr<core::SpaceExplorer>> explorers(nranks);
  std::vector<std::unique_ptr<core::ResultsDb>> shard_dbs(nranks);
  std::vector<std::size_t> ordinal_base(nranks, 0);
  for (std::size_t r = 0; r < nranks; ++r) {
    caches[r] = std::make_unique<toolchain::CompilationCache>();
    explorers[r] = std::make_unique<core::SpaceExplorer>(
        model_, baseline_, speed_reference_, opts_.jobs, caches[r].get());
    if (checkpointing) {
      shard_dbs[r] = std::make_unique<core::ResultsDb>(shard_db_path(
          opts_.shard_db_dir, static_cast<int>(r), opts_.shards));
    }
  }

  // Resume under rebalancing: a stolen item checkpoints into the *thief's*
  // shard database, so the row a claim needs may live in any shard's file.
  // Seed every shard database with the union of all checkpointed rows; the
  // explorer's (test, compilation)-keyed prefill then restores each item
  // no matter which rank recorded it.
  if (checkpointing && resume_shards) {
    std::vector<core::ResultRow> union_rows;
    for (const auto& db : shard_dbs) {
      union_rows.insert(union_rows.end(), db->rows().begin(),
                        db->rows().end());
    }
    for (const auto& db : shard_dbs) db->merge_rows(union_rows);
  }

  StealQueue queue(ranges, opts_.steal_grain);

  // Executes one claimed sub-range on rank r's worker state and writes the
  // outcomes to their global indices (claims are disjoint, so the writes
  // are race-free).  Returns the claim's wall seconds for the clocks.
  const auto execute_claim = [&](std::size_t r, const StealQueue::Claim& c) {
    const auto t0 = std::chrono::steady_clock::now();
    ShardReport& rep = reports[r];

    // The executing rank's telemetry lane; stolen claims keep their own
    // span name so a trace shows the rebalance, while the items inside
    // stay stamped with their global indices either way.
    obs::ScopedItem obs_lane(static_cast<int>(r), obs::kNoIndex, 0);
    obs::Span claim_span(
        obs::tracer_if_enabled(), c.stolen ? "steal" : "shard", "dist",
        test.name() + " [" + std::to_string(c.range.begin) + ", " +
            std::to_string(c.range.end) + ")");
    if (c.stolen) {
      obs::metrics().counter("dist.steals").add();
      obs::metrics().counter("dist.stolen_items").add(c.range.size());
    }

    const auto slice = space.subspan(c.range.begin, c.range.size());
    core::ExploreOptions eo;
    eo.retry = opts_.retry;
    eo.keep_going = opts_.keep_going;
    eo.checkpoint_batch = opts_.checkpoint_batch;
    eo.obs_shard = static_cast<int>(r);
    eo.obs_index_base = c.range.begin;
    std::size_t claim_prefilled = 0;
    if (shard_dbs[r] != nullptr) {
      eo.db = shard_dbs[r].get();
      eo.resume = resume_shards;
      // Number this claim's checkpoint batches after the rank's earlier
      // claims, so the kill site keeps counting durable checkpoints *per
      // rank* exactly as it does under the static partition.
      eo.checkpoint_ordinal_base = ordinal_base[r];
      const std::size_t batch = opts_.checkpoint_batch > 0
                                    ? opts_.checkpoint_batch
                                    : c.range.size();
      ordinal_base[r] += (c.range.size() + batch - 1) / batch;
      if (resume_shards) {
        for (const toolchain::Compilation& comp : slice) {
          if (shard_dbs[r]->find(test.name(), comp.str()).has_value()) {
            ++claim_prefilled;
          }
        }
      }
    }

    core::StudyResult part = explorers[r]->explore(test, slice, eo);
    rep.failed += part.failed_count();
    rep.retried += part.retried_count();
    rep.prefilled += claim_prefilled;
    rep.executed_items += c.range.size() - claim_prefilled;
    for (const core::CompilationOutcome& o : part.outcomes) {
      if (o.ok() && o.cycles > 0.0) rep.cycles.observe(o.cycles);
    }
    for (std::size_t k = 0; k < part.outcomes.size(); ++k) {
      merged.outcomes[c.range.begin + k] = std::move(part.outcomes[k]);
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  if (opts_.serial_shards || opts_.shards == 1) {
    // Virtual-clock fleet emulation: grant the next claim to the rank with
    // the least accumulated wall time (ties -> lowest rank), which is the
    // worker that would go idle first on a real fleet.  The claim sequence
    // is a deterministic function of the queue state and measured
    // durations, steals land exactly where a concurrent fleet would
    // rebalance, and per-rank seconds stay the fleet-timing measurement
    // (fleet wall-clock = max_shard_seconds()).
    std::vector<double> vclock(nranks, 0.0);
    std::vector<char> active(nranks, 1);
    std::size_t live = nranks;
    while (live > 0) {
      std::size_t r = nranks;
      for (std::size_t i = 0; i < nranks; ++i) {
        if (active[i] != 0 && (r == nranks || vclock[i] < vclock[r])) r = i;
      }
      const auto c = queue.claim(static_cast<int>(r));
      if (!c.has_value()) {
        active[r] = 0;
        --live;
        continue;
      }
      vclock[r] += execute_claim(r, *c);
    }
    for (std::size_t r = 0; r < nranks; ++r) reports[r].seconds = vclock[r];
  } else {
    // One pool lane per rank; each lane loops claims until the queue is
    // drained.  A nullopt with the queue not yet drained means the only
    // remaining items sit in un-started slots -- their owner's lane is
    // about to claim them -- so the thief yields and retries instead of
    // exiting (task count == lane count, so an unclaimed owner task always
    // has a free lane and the wait is bounded).
    core::ThreadPool pool(static_cast<unsigned>(opts_.shards));
    pool.parallel_for(nranks, [&](std::size_t r) {
      while (true) {
        const auto c = queue.claim(static_cast<int>(r));
        if (!c.has_value()) {
          if (queue.drained()) return;
          std::this_thread::yield();
          continue;
        }
        reports[r].seconds += execute_claim(r, *c);
      }
    });
  }

  for (std::size_t r = 0; r < nranks; ++r) {
    const StealQueue::RankStats st = queue.stats(static_cast<int>(r));
    reports[r].stolen = st.stolen;
    reports[r].donated = st.donated;
    reports[r].steals = st.steals;
    reports[r].cache = caches[r]->stats();
  }

  ShardedStudy sharded;
  sharded.study = std::move(merged);
  sharded.shards = std::move(reports);
  if (opts_.db != nullptr) opts_.db->record(sharded.study);
  return sharded;
}

}  // namespace flit::dist
