#include "dist/coordinator.h"

#include <chrono>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/parallel.h"
#include "obs/session.h"
#include "toolchain/compile_cache.h"

namespace flit::dist {

ShardCoordinator::ShardCoordinator(const fpsem::CodeModel* model,
                                   toolchain::Compilation baseline,
                                   toolchain::Compilation speed_reference,
                                   ShardOptions opts)
    : model_(model),
      baseline_(std::move(baseline)),
      speed_reference_(std::move(speed_reference)),
      opts_(std::move(opts)) {
  if (opts_.shards < 1) {
    throw std::invalid_argument("ShardCoordinator: shards must be >= 1");
  }
  if (opts_.jobs < 1) {
    throw std::invalid_argument("ShardCoordinator: jobs must be >= 1");
  }
  if (opts_.resume && opts_.shard_db_dir.empty()) {
    throw std::invalid_argument(
        "ShardCoordinator: resume requires shard_db_dir (the per-shard "
        "checkpoints to stitch)");
  }
}

std::filesystem::path ShardCoordinator::shard_db_path(
    const std::filesystem::path& dir, int rank, int shards) {
  return dir / ("shard-" + std::to_string(rank) + "-of-" +
                std::to_string(shards) + ".tsv");
}

ShardedStudy ShardCoordinator::run(
    const core::TestBase& test,
    std::span<const toolchain::Compilation> space) const {
  return run_impl(test, space, opts_.resume);
}

ShardedStudy ShardCoordinator::resume(
    const core::TestBase& test,
    std::span<const toolchain::Compilation> space) const {
  if (opts_.shard_db_dir.empty()) {
    throw std::invalid_argument(
        "ShardCoordinator::resume: no shard_db_dir to resume from");
  }
  return run_impl(test, space, /*resume_shards=*/true);
}

core::ExploreFn ShardCoordinator::explore_override() const {
  return [this](const core::TestBase& test,
                std::span<const toolchain::Compilation> space) {
    return run(test, space).study;
  };
}

ShardedStudy ShardCoordinator::run_impl(
    const core::TestBase& test,
    std::span<const toolchain::Compilation> space, bool resume_shards) const {
  const ShardComm comm(opts_.shards);
  const auto ranges = comm.scatter_ranges(space.size());
  const bool checkpointing = !opts_.shard_db_dir.empty();
  if (checkpointing) {
    std::filesystem::create_directories(opts_.shard_db_dir);
  }

  std::vector<core::StudyResult> partials(ranges.size());
  std::vector<ShardReport> reports(ranges.size());

  // One rank: an isolated worker with its own cache, explorer and
  // checkpoint database, exploring its contiguous slice of the space.
  // Outcomes land in the rank's partial slot; the gather below reassembles
  // them by global index.
  const auto run_shard = [&](std::size_t r) {
    const auto t0 = std::chrono::steady_clock::now();
    const ShardRange rg = ranges[r];
    ShardReport& rep = reports[r];
    rep.rank = static_cast<int>(r);
    rep.range = rg;
    core::StudyResult& out = partials[r];
    out.test_name = test.name();
    if (rg.size() == 0) return;  // more ranks than items: nothing to run

    // The shard's telemetry lane: anchors and shard-level spans carry the
    // rank, and the explorer stamps each item with its *global* space
    // index, so the merged trace is independent of which thread ran the
    // shard.  kNoIndex marks shard-scoped (not per-item) events.
    obs::ScopedItem obs_lane(static_cast<int>(r), obs::kNoIndex, 0);
    obs::Span shard_span(obs::tracer_if_enabled(), "shard", "dist",
                         test.name() + " [" + std::to_string(rg.begin) +
                             ", " + std::to_string(rg.end) + ")");

    const auto slice = space.subspan(rg.begin, rg.size());

    toolchain::CompilationCache cache;
    core::SpaceExplorer explorer(model_, baseline_, speed_reference_,
                                 opts_.jobs, &cache);
    core::ExploreOptions eo;
    eo.retry = opts_.retry;
    eo.keep_going = opts_.keep_going;
    eo.checkpoint_batch = opts_.checkpoint_batch;
    eo.obs_shard = static_cast<int>(r);
    eo.obs_index_base = rg.begin;

    std::optional<core::ResultsDb> shard_db;
    if (checkpointing) {
      shard_db.emplace(shard_db_path(opts_.shard_db_dir,
                                     static_cast<int>(r), opts_.shards));
      eo.db = &*shard_db;
      eo.resume = resume_shards;
      if (resume_shards) {
        for (const toolchain::Compilation& c : slice) {
          if (shard_db->find(test.name(), c.str()).has_value()) {
            ++rep.prefilled;
          }
        }
      }
    }

    out = explorer.explore(test, slice, eo);
    rep.failed = out.failed_count();
    rep.retried = out.retried_count();
    rep.cache = cache.stats();
    // The shard's modeled-cycle skew sample: executed ok outcomes only.
    // Resumed rows carry no cycle measurement (the checkpoint database
    // stores classifications, not cycles), so they would register as
    // zero-cost items and fake a skew that is not there.
    for (const core::CompilationOutcome& o : out.outcomes) {
      if (o.ok() && o.cycles > 0.0) rep.cycles.observe(o.cycles);
    }
    rep.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  };

  if (opts_.serial_shards || opts_.shards == 1) {
    for (std::size_t r = 0; r < ranges.size(); ++r) run_shard(r);
  } else {
    // One pool lane per shard; each shard's explorer opens its own inner
    // pool of `jobs` lanes, composing shards x jobs.  A StudyAbort inside
    // any shard surfaces through the pool's lowest-index-rethrow contract,
    // matching what a serial shard loop would throw first.
    core::ThreadPool pool(static_cast<unsigned>(opts_.shards));
    pool.parallel_for(ranges.size(), run_shard);
  }

  ShardedStudy sharded;
  sharded.study = merge_shards(comm, space.size(), std::move(partials));
  sharded.shards = std::move(reports);
  if (opts_.db != nullptr) opts_.db->record(sharded.study);
  return sharded;
}

}  // namespace flit::dist
