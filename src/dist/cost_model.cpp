#include "dist/cost_model.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/resultsdb.h"
#include "obs/metrics.h"
#include "toolchain/semantics_rules.h"

namespace flit::dist {

void CostProfile::add(const std::string& compilation, double cost) {
  if (!std::isfinite(cost) || cost <= 0.0) {
    throw std::invalid_argument(
        "CostProfile: cost for '" + compilation +
        "' must be finite and > 0 (got " + std::to_string(cost) + ")");
  }
  Acc& acc = costs_[compilation];
  acc.sum += cost;
  ++acc.n;
}

std::optional<double> CostProfile::cost(const std::string& compilation) const {
  const auto it = costs_.find(compilation);
  if (it == costs_.end()) return std::nullopt;
  return it->second.sum / static_cast<double>(it->second.n);
}

CostProfile CostProfile::from_study(const core::StudyResult& study) {
  CostProfile p;
  for (const core::CompilationOutcome& o : study.outcomes) {
    if (o.ok() && o.cycles > 0.0) p.add(o.comp.str(), o.cycles);
  }
  return p;
}

CostProfile CostProfile::from_results_db(const std::filesystem::path& path) {
  if (!std::filesystem::exists(path)) {
    throw std::runtime_error("cost profile '" + path.string() +
                             "' does not exist");
  }
  const core::ResultsDb db(path);  // strict parse: malformed rows throw
  CostProfile p;
  for (const core::ResultRow& row : db.rows()) {
    // The database stores speedup = reference_cycles / cycles, so the
    // row's relative cycle count is 1/speedup.  Failed rows carry no
    // timing and are skipped (their cost stays a static-model question).
    if (!row.ok() || row.speedup <= 0.0) continue;
    p.add(row.compilation, 1.0 / row.speedup);
  }
  return p;
}

CostModel::CostModel(toolchain::Compilation baseline,
                     toolchain::Compilation speed_reference)
    : baseline_(std::move(baseline)),
      speed_reference_(std::move(speed_reference)) {}

double CostModel::static_estimate(const toolchain::Compilation& c) {
  const fpsem::CostFactors k = toolchain::derive_cost(c);
  // The simulated runtime bills scalar ops at time_scale and vectorizable
  // ops at time_scale / bulk_scale; the bundled kernels sit near an even
  // split, so the blend below tracks their relative cycle counts.  The
  // profile replaces this with measured numbers when one is loaded.
  return k.time_scale * (0.5 + 0.5 / k.bulk_scale);
}

double CostModel::predict(const toolchain::Compilation& c) const {
  if (c == baseline_ || c == speed_reference_) return kAnchorReuseCost;
  if (const auto observed = profile_.cost(c.str()); observed.has_value()) {
    return *observed;
  }
  return static_estimate(c);
}

const std::vector<double>& cost_error_buckets() {
  static const std::vector<double> bounds =
      obs::exponential_buckets(0.125, 2.0, 16);
  return bounds;
}

}  // namespace flit::dist
