#pragma once

// The sharded distributed study engine.
//
// The thread-pooled explorer (src/core/parallel.h) parallelizes one study
// inside a single process; ShardCoordinator is the next scale step: it
// partitions the compilation-space index range across R simulated ranks
// via ShardComm, drives each rank as an independent worker -- its own
// SpaceExplorer, its own CompilationCache, its own RetryPolicy budget,
// and (optionally) its own ResultsDb checkpoint file -- and merges the
// per-rank results into a StudyResult that is bitwise-identical to a
// single-rank run at any shard count.
//
// Concurrency composes multiplicatively: shards fan out over a ThreadPool
// (one lane per shard) and each shard's explorer fans its slice out over
// `jobs` lanes, so `--shards R --jobs J` uses up to R*J lanes.  With
// `serial_shards` the ranks run one after another on the calling thread,
// which is what the scaling bench uses to time each worker in isolation
// (fleet wall-clock = the slowest shard).
//
// The partition itself is a placement decision (ShardOptions::placement):
// the contiguous index split by default, or a predicted-cost LPT balance /
// fingerprint-affine grouping from dist/placement.h.  By default the ranks
// additionally rebalance by work stealing (ShardOptions::steal): the
// placement becomes a StealQueue of per-rank claim slots, owners pull
// grain-sized chunks off the front of their slice, and an exhausted rank
// steals trailing sub-ranges from the most-loaded slot.  Outcomes are
// index-addressed, so neither placement nor rebalancing changes anything
// but fleet wall-clock and cache traffic -- never the merged study,
// report CSV or converged database bytes.
//
// Fault injection stays deterministic across shard counts for free: the
// injector's trial scope is keyed by the study item's global identity
// ("test|triple", see core/faults.h), which no partition can change.  The
// checkpoint kill site fires inside whichever shard reaches the armed
// batch ordinal first -- after that shard's checkpoint is durable -- so a
// killed sharded study resumes from its shard databases and converges to
// the same bytes an uninterrupted run produces.

#include <filesystem>
#include <span>

#include "core/explorer.h"
#include "core/resultsdb.h"
#include "core/workflow.h"
#include "dist/cost_model.h"
#include "dist/merge.h"
#include "dist/placement.h"

namespace flit::dist {

struct ShardOptions {
  int shards = 1;     ///< simulated ranks (>= 1)
  unsigned jobs = 1;  ///< parallel lanes *per shard*

  /// Run the ranks one after another on the calling thread instead of
  /// fanning them out over a ThreadPool.  Results are identical either
  /// way; serial execution makes per-shard wall times non-overlapping.
  /// With stealing, serial execution emulates the concurrent fleet on a
  /// virtual clock: the rank with the least accumulated wall time claims
  /// next, so steals happen exactly when an idle worker would grab them
  /// and per-shard seconds remain the fleet-timing measurement.
  bool serial_shards = false;

  /// Work-stealing shard rebalancing (default on): ranks claim
  /// `steal_grain`-sized sub-ranges off the front of their own slice, and
  /// a rank whose slice is exhausted steals a trailing sub-range from the
  /// unexplored tail of the most-loaded rank (ties broken by rank).
  /// Outcomes stay index-addressed, so the merged study, report CSV and
  /// converged database are bitwise-identical with stealing on or off at
  /// any shards x jobs -- stealing only moves *where* items execute,
  /// which shard databases they checkpoint into, and the fleet
  /// wall-clock.  `false` restores the static contiguous partition.
  bool steal = true;

  /// Claim granularity (items per claim) when `steal` is on.  Slices no
  /// larger than the grain are claimed whole, so small studies behave
  /// exactly like the static partition; skewed spaces want a grain well
  /// below the per-shard slice so idle ranks find a stealable tail.
  std::size_t steal_grain = 16;

  /// How the space is partitioned across the ranks before anything runs
  /// (see dist/placement.h).  Static is the historical contiguous split;
  /// Cost balances the predicted per-item load LPT-style; Affinity
  /// additionally keeps semantics-fingerprint siblings on one shard so
  /// each fingerprint is compiled once per fleet.  Outcomes stay
  /// index-addressed under every policy, so the merged study, report CSV
  /// and converged database bytes never depend on this choice -- only the
  /// fleet's balance and cache traffic do.  Stealing composes with any
  /// policy and mops up what the prediction got wrong.
  PlacementPolicy placement = PlacementPolicy::Static;

  /// Optional prior-run results database (`--cost-profile`) refining the
  /// cost model's static estimates with measured relative costs.  A
  /// missing or malformed file throws at coordinator construction.
  std::filesystem::path cost_profile;

  /// Optional pre-built profile (e.g. CostProfile::from_study of an
  /// earlier run in the same process).  Ignored when `cost_profile`
  /// names a file.
  CostProfile profile;

  /// Per-item fault-tolerance knobs, applied within every shard (the
  /// retry budget and containment semantics of ExploreOptions).
  core::RetryPolicy retry;
  bool keep_going = true;

  /// Rows per incremental shard checkpoint (the ExploreOptions meaning).
  std::size_t checkpoint_batch = 32;

  /// Directory for per-shard checkpoint databases
  /// (`shard-<rank>-of-<shards>.tsv`); empty disables shard
  /// checkpointing.  Created at coordinator construction, which throws
  /// std::invalid_argument with an actionable message when the directory
  /// cannot be created or is not writable -- never a raw stream error at
  /// the first checkpoint.
  std::filesystem::path shard_db_dir;

  /// With `shard_db_dir`: prefill each shard from its checkpoint database
  /// before dispatch (rows are matched by (test, compilation) key, so
  /// quarantined rows are not re-run).  Resume at the same shard count
  /// that wrote the checkpoints: the databases are named by partition.
  bool resume = false;

  /// Converged study database: when non-null, the merged StudyResult is
  /// recorded into it after the gather, producing a file byte-identical
  /// to a single-process `explore --db` run.  Must outlive run().
  core::ResultsDb* db = nullptr;
};

class ShardCoordinator {
 public:
  /// `baseline` / `speed_reference` are the anchor compilations of every
  /// shard's explorer (each shard re-runs them; runs are deterministic,
  /// so the redundancy is invisible in the results).  Throws
  /// std::invalid_argument for opts.shards < 1 or jobs < 1.
  ShardCoordinator(const fpsem::CodeModel* model,
                   toolchain::Compilation baseline,
                   toolchain::Compilation speed_reference, ShardOptions opts);

  /// Scatters `space` across the ranks, executes every shard, gathers the
  /// outcomes by global index, and (with `opts.db`) records the merged
  /// study.  An anchor failure in any shard throws core::StudyAbort, as
  /// in the single-process engine.
  [[nodiscard]] ShardedStudy run(
      const core::TestBase& test,
      std::span<const toolchain::Compilation> space) const;

  /// run() with shard-checkpoint prefill forced on: stitches the
  /// per-shard databases under `shard_db_dir` into the converged study,
  /// byte-identical to an uninterrupted run, quarantined rows included.
  [[nodiscard]] ShardedStudy resume(
      const core::TestBase& test,
      std::span<const toolchain::Compilation> space) const;

  /// Adapter for WorkflowOptions::explore_override: the workflow's Level
  /// 1/2 phase becomes a sharded exploration.  The returned callable
  /// references this coordinator, which must outlive it.
  [[nodiscard]] core::ExploreFn explore_override() const;

  /// The checkpoint file of one rank: `dir/shard-<rank>-of-<shards>.tsv`.
  /// Named by partition so a resume at a different shard count never
  /// reads a foreign slice.
  [[nodiscard]] static std::filesystem::path shard_db_path(
      const std::filesystem::path& dir, int rank, int shards);

  [[nodiscard]] const ShardOptions& options() const { return opts_; }

  /// The per-item cost model the placement pass partitions with (profiled
  /// when ShardOptions supplied a profile or cost_profile file).
  [[nodiscard]] const CostModel& cost_model() const { return cost_model_; }

 private:
  [[nodiscard]] ShardedStudy run_impl(
      const core::TestBase& test,
      std::span<const toolchain::Compilation> space, bool resume_shards)
      const;

  /// The non-stealing path (steal == false): each rank owns its placement
  /// index set outright and the merge gathers by owned index
  /// (merge_placed validates disjoint exact coverage).  With the Static
  /// policy this is the historical contiguous partition.
  [[nodiscard]] ShardedStudy run_placed_static(
      const core::TestBase& test,
      std::span<const toolchain::Compilation> space,
      const Placement& placement, bool resume_shards) const;

  /// The work-stealing path (steal == true): the placement's per-rank
  /// index sets are concatenated into a position order, ranks pull
  /// grain-sized position claims from a StealQueue, and outcomes are
  /// written straight to their global indices -- so the merged study is
  /// bitwise-identical to run_placed_static at any shards x jobs, under
  /// any placement policy.
  [[nodiscard]] ShardedStudy run_placed_stealing(
      const core::TestBase& test,
      std::span<const toolchain::Compilation> space,
      const Placement& placement, bool resume_shards) const;

  const fpsem::CodeModel* model_;
  toolchain::Compilation baseline_;
  toolchain::Compilation speed_reference_;
  ShardOptions opts_;
  CostModel cost_model_;
};

}  // namespace flit::dist
