#include "dist/merge.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

namespace flit::dist {

namespace {

std::string hit_rate_str(const toolchain::CacheStats& s) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%llu/%llu hits (%.1f%%)",
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.lookups()),
                100.0 * s.hit_rate());
  return buf;
}

std::string cycles_skew_str(const obs::HistogramData& h) {
  if (h.count == 0) return "cycles n/a";
  // min and max are exact (fixed-point of observed values); the median is
  // bucket-interpolated, hence the tilde.
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "cycles min %.0f / ~med %.0f / max %.0f (%llu items)",
                h.min_value(), h.quantile(0.5), h.max_value(),
                static_cast<unsigned long long>(h.count));
  return buf;
}

}  // namespace

toolchain::CacheStats ShardedStudy::aggregate_cache() const {
  toolchain::CacheStats total;
  for (const ShardReport& s : shards) total += s.cache;
  return total;
}

obs::HistogramData ShardedStudy::aggregate_cycles() const {
  obs::HistogramData total{obs::cycle_buckets()};
  for (const ShardReport& s : shards) total += s.cycles;
  return total;
}

obs::HistogramData ShardedStudy::aggregate_fresh_cycles() const {
  obs::HistogramData total{obs::cycle_buckets()};
  for (const ShardReport& s : shards) total += s.fresh_cycles;
  return total;
}

double ShardedStudy::max_shard_fresh_cycles() const {
  double worst = 0.0;
  for (const ShardReport& s : shards) {
    worst = std::max(worst, s.fresh_cycle_sum());
  }
  return worst;
}

double ShardedStudy::total_shard_seconds() const {
  double total = 0.0;
  for (const ShardReport& s : shards) total += s.seconds;
  return total;
}

double ShardedStudy::max_shard_seconds() const {
  double worst = 0.0;
  for (const ShardReport& s : shards) worst = std::max(worst, s.seconds);
  return worst;
}

core::StudyResult merge_shards(const ShardComm& comm, std::size_t space_size,
                               std::vector<core::StudyResult> per_shard) {
  core::StudyResult merged;
  if (!per_shard.empty()) merged.test_name = per_shard.front().test_name;

  std::vector<std::vector<core::CompilationOutcome>> slices;
  slices.reserve(per_shard.size());
  for (core::StudyResult& r : per_shard) {
    if (!r.test_name.empty() && r.test_name != merged.test_name) {
      throw std::invalid_argument("merge_shards: shard results for '" +
                                  r.test_name + "' and '" +
                                  merged.test_name + "' cannot merge");
    }
    slices.push_back(std::move(r.outcomes));
  }
  merged.outcomes = comm.gather_ordered(space_size, std::move(slices));
  return merged;
}

core::StudyResult merge_placed(const ShardComm& comm, std::size_t space_size,
                               const Placement& placement,
                               std::vector<core::StudyResult> per_shard) {
  core::StudyResult merged;
  if (!per_shard.empty()) merged.test_name = per_shard.front().test_name;

  std::vector<std::vector<core::CompilationOutcome>> slices;
  slices.reserve(per_shard.size());
  for (core::StudyResult& r : per_shard) {
    if (!r.test_name.empty() && r.test_name != merged.test_name) {
      throw std::invalid_argument("merge_placed: shard results for '" +
                                  r.test_name + "' and '" +
                                  merged.test_name + "' cannot merge");
    }
    slices.push_back(std::move(r.outcomes));
  }
  merged.outcomes = comm.gather_indexed(space_size, placement.rank_indices,
                                        std::move(slices));
  return merged;
}

std::string shard_report_text(const ShardedStudy& s) {
  std::ostringstream os;
  os << "sharded study: " << s.study.outcomes.size() << " compilations over "
     << s.shards.size() << " shard(s)\n";
  for (const ShardReport& r : s.shards) {
    os << "  shard " << r.rank << ": ";
    if (s.placement.contiguous) {
      // The legacy contiguous-slice line, byte-for-byte.
      os << "[" << r.range.begin << ", " << r.range.end << ") ";
    } else {
      // A permuted placement owns an arbitrary index set; the slice
      // notation would lie, so print the owned item/group counts instead.
      os << r.owned_items << " item(s) in " << r.owned_groups
         << " group(s) ";
    }
    os << r.executed() << " executed, " << r.prefilled << " resumed, "
       << r.stolen << " stolen, " << r.donated << " donated, " << r.failed
       << " failed, " << r.retried << " retried, cache "
       << hit_rate_str(r.cache) << ", " << cycles_skew_str(r.cycles) << '\n';
    if (s.supervisor.enabled) {
      os << "    recovery: " << r.rank_faults << " fault(s), "
         << r.rank_stalls << " stall(s), " << r.restarts << " restart(s), "
         << r.reassigned << " reassigned item(s), backoff "
         << r.backoff_cycles << " cycle(s)"
         << (r.dead ? ", DEAD (budget exhausted)" : "") << '\n';
    }
  }
  if (s.placement.policy != PlacementPolicy::Static) {
    os << "  placement: " << to_string(s.placement.policy)
       << (s.placement.profiled ? " (profiled)" : " (static model)") << ", "
       << s.placement.total_groups << " fingerprint group(s), "
       << s.placement.duplicated_groups << " duplicated (static split: "
       << s.placement.static_duplicated_groups << "), "
       << s.placement.avoided_group_compiles()
       << " redundant compiles avoided\n";
  }
  std::size_t failed = 0, retried = 0, prefilled = 0;
  std::size_t stolen = 0, steals = 0;
  for (const ShardReport& r : s.shards) {
    failed += r.failed;
    retried += r.retried;
    prefilled += r.prefilled;
    stolen += r.stolen;
    steals += r.steals;
  }
  os << "  aggregate: " << failed << " failed, " << retried << " retried, "
     << prefilled << " resumed, " << stolen << " stolen over " << steals
     << " steal(s), fleet cache " << hit_rate_str(s.aggregate_cache())
     << ", " << cycles_skew_str(s.aggregate_cycles()) << '\n';
  if (s.supervisor.enabled) {
    const SupervisorSummary& sup = s.supervisor;
    os << "  supervisor: " << sup.rank_faults << " rank fault(s), "
       << sup.stalls << " stall(s), " << sup.restarts << " restart(s) (budget "
       << sup.restart_budget << "/rank), " << sup.reassigned_claims
       << " claim(s) reassigned (" << sup.reassigned_items << " item(s)), "
       << sup.dead_ranks << " rank(s) dead, " << sup.degraded_cells
       << " cell(s) degraded"
       << (sup.allow_partial ? " [--allow-partial]" : "") << ", backoff "
       << sup.backoff_cycles << " cycle(s), fleet clock " << sup.fleet_cycles
       << " cycle(s)\n";
  }
  return os.str();
}

}  // namespace flit::dist
