#pragma once

// Deterministic merge of per-shard study results.
//
// Each shard of the distributed engine produces an index-ordered
// StudyResult over its slice of the compilation space, plus local
// bookkeeping: failure/retry tallies, compilation-cache statistics, and
// (with checkpointing) how many rows were restored from its shard
// database.  The merge reassembles the outcomes by global space index via
// ShardComm::gather_ordered -- so the merged StudyResult is
// bitwise-identical to a single-rank run -- and sums the bookkeeping into
// a per-shard + aggregate report.

#include <cstddef>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "dist/comm.h"
#include "dist/placement.h"
#include "obs/metrics.h"
#include "toolchain/compile_cache.h"

namespace flit::dist {

/// One shard's execution summary (the merge report's per-shard line).
struct ShardReport {
  int rank = 0;
  ShardRange range{};         ///< global index envelope the shard owned:
                              ///< the exact slice under contiguous
                              ///< placement, [min, max+1) of the owned set
                              ///< under a permuted one (see owned_items)
  std::size_t prefilled = 0;  ///< rows restored from the shard checkpoint
  std::size_t failed = 0;     ///< quarantined outcomes in the slice
  std::size_t retried = 0;    ///< outcomes recovered by retry
  double seconds = 0.0;       ///< shard wall time (meaningful when shards
                              ///< execute serially; overlaps otherwise)
  toolchain::CacheStats cache{};

  /// Work-stealing rebalance accounting: items this shard pulled from
  /// other shards' unexplored tails, items other shards pulled from this
  /// one's, and how many steal claims it made.  All zero with stealing
  /// off (or when the static partition happened to be balanced).
  std::size_t stolen = 0;
  std::size_t donated = 0;
  std::size_t steals = 0;

  /// Items this shard actually dispatched to its explorer: owned plus
  /// stolen, minus donated and checkpoint-prefilled rows.
  std::size_t executed_items = 0;

  /// Fleet-supervisor recovery accounting (all zero outside a supervised
  /// run): injected rank deaths and stall detections this rank suffered,
  /// restarts the supervisor granted it, items it claimed from the orphan
  /// pool (other ranks' returned work), virtual-clock cycles it sat in
  /// restart backoff, and whether it ended the run permanently dead
  /// (restart budget exhausted).
  std::size_t rank_faults = 0;
  std::size_t rank_stalls = 0;
  std::size_t restarts = 0;
  std::size_t reassigned = 0;
  double backoff_cycles = 0.0;
  bool dead = false;

  /// Placement accounting: items and distinct semantics-fingerprint
  /// groups the placement assigned to this shard, and the cost model's
  /// predicted load (the rank's LPT bin sum).  Under the legacy contiguous
  /// partition owned_items == range.size() and the rest stay zero.
  std::size_t owned_items = 0;
  std::size_t owned_groups = 0;
  double predicted = 0.0;

  /// Modeled-cycle distribution of the shard's *executed* ok outcomes
  /// (resumed rows carry no cycle measurement and are excluded).  All
  /// shards share cycle_buckets() bounds, so the per-shard histograms
  /// merge; min/~median/max per shard is the skew measurement the
  /// work-stealing protocol rebalances against.
  obs::HistogramData cycles{obs::cycle_buckets()};

  /// Like `cycles`, restricted to *fresh* work: anchor-equal items are
  /// excluded, because the explorer answers them from the memoized anchor
  /// run at near-zero wall cost while still recording full cycle counts.
  /// The fixed-point sum of this histogram is the shard's modeled
  /// wall-clock -- the balance axis the cost model predicts -- where the
  /// unrestricted `cycles` histogram would charge a slab of baseline
  /// copies as if each were re-executed.
  obs::HistogramData fresh_cycles{obs::cycle_buckets()};

  [[nodiscard]] std::size_t executed() const { return executed_items; }

  /// The shard's modeled wall-clock: summed fresh-executed cycles.
  [[nodiscard]] double fresh_cycle_sum() const {
    return obs::from_fixed(fresh_cycles.sum);
  }
};

/// The placement decision a sharded study ran under, summarized for the
/// merge report and the scaling bench.
struct PlacementSummary {
  PlacementPolicy policy = PlacementPolicy::Static;
  bool contiguous = true;    ///< rank index sets were the ShardComm slices
  bool profiled = false;     ///< the cost model carried a loaded profile
  std::size_t total_groups = 0;
  std::size_t duplicated_groups = 0;
  std::size_t static_duplicated_groups = 0;

  /// Fingerprint re-compilations avoided relative to the contiguous
  /// static split (Placement::avoided_group_compiles()).
  [[nodiscard]] std::size_t avoided_group_compiles() const {
    return static_duplicated_groups > duplicated_groups
               ? static_duplicated_groups - duplicated_groups
               : 0;
  }
};

/// Fleet-supervisor summary of a supervised run (dist/supervisor.h).
/// `enabled` false (the default) means the run was not supervised and
/// shard_report_text stays byte-identical to the historical format.
struct SupervisorSummary {
  bool enabled = false;
  int restart_budget = 0;       ///< restarts granted per rank
  bool allow_partial = false;   ///< degraded cells instead of an abort
  std::size_t rank_faults = 0;  ///< injected shard-site rank deaths
  std::size_t stalls = 0;       ///< stall detections (deadline exceeded)
  std::size_t restarts = 0;     ///< restarts consumed fleet-wide
  std::size_t reassigned_claims = 0;  ///< orphaned claims re-granted
  std::size_t reassigned_items = 0;   ///< items inside those claims
  std::size_t degraded_cells = 0;     ///< cells no live rank could run
  std::size_t dead_ranks = 0;         ///< ranks that exhausted the budget
  double backoff_cycles = 0.0;  ///< total virtual-clock backoff served
  double fleet_cycles = 0.0;    ///< max rank virtual clock (modeled
                                ///< cycles incl. backoff and stall
                                ///< deadlines): the fleet wall under
                                ///< faults, comparable across runs
};

/// A merged distributed study: the index-ordered StudyResult plus the
/// per-shard accounting it was assembled from.
struct ShardedStudy {
  core::StudyResult study;
  std::vector<ShardReport> shards;
  PlacementSummary placement;
  SupervisorSummary supervisor;

  /// Sum of the per-shard cache statistics (CacheStats::operator+=) --
  /// the *fleet* hit rate the affinity placer optimizes.
  [[nodiscard]] toolchain::CacheStats aggregate_cache() const;

  /// Sum of the per-shard cycle histograms (HistogramData::operator+=).
  [[nodiscard]] obs::HistogramData aggregate_cycles() const;

  /// Sum of the per-shard fresh-cycle histograms.
  [[nodiscard]] obs::HistogramData aggregate_fresh_cycles() const;

  /// The slowest shard by modeled wall-clock (summed fresh-executed
  /// cycles): the fleet's critical path in model units, comparable across
  /// runs where real seconds are not.
  [[nodiscard]] double max_shard_fresh_cycles() const;

  /// Sum of per-shard wall times (total worker-seconds) and the slowest
  /// shard (the fleet's critical path when shards run on dedicated
  /// workers).
  [[nodiscard]] double total_shard_seconds() const;
  [[nodiscard]] double max_shard_seconds() const;
};

/// Reassembles per-shard outcome vectors into one StudyResult ordered by
/// global space index.  `per_shard[r]` must hold exactly the outcomes of
/// comm.range(r, space_size), in slice order; a size mismatch throws
/// std::invalid_argument (a merge must never silently misplace an
/// outcome).  The result is bitwise-identical to a single-rank run over
/// the same space.
[[nodiscard]] core::StudyResult merge_shards(
    const ShardComm& comm, std::size_t space_size,
    std::vector<core::StudyResult> per_shard);

/// merge_shards generalized to the placement engine's permuted
/// partitions: `per_shard[r]` holds the outcomes of rank r's owned index
/// set (placement.rank_indices[r]), in owned-index order, and the gather
/// places each at its global index via ShardComm::gather_indexed --
/// validating disjoint exact coverage of the space.  With a contiguous
/// placement this is merge_shards exactly.
[[nodiscard]] core::StudyResult merge_placed(
    const ShardComm& comm, std::size_t space_size, const Placement& placement,
    std::vector<core::StudyResult> per_shard);

/// Human-readable merge report: one line per shard (owned range or item
/// count, executed vs. prefilled counts, failures, retries, cache hit
/// rate, cycle skew), a placement line (policy, fingerprint groups,
/// redundant compiles avoided vs. the static split), and an aggregate
/// line with the summed failure accounting and the *fleet* cache hit
/// rate.  A supervised run (supervisor.enabled) appends per-shard
/// recovery detail and a supervisor line; unsupervised runs are
/// byte-identical to the historical format.
[[nodiscard]] std::string shard_report_text(const ShardedStudy& s);

}  // namespace flit::dist
