#pragma once

// Deterministic merge of per-shard study results.
//
// Each shard of the distributed engine produces an index-ordered
// StudyResult over its slice of the compilation space, plus local
// bookkeeping: failure/retry tallies, compilation-cache statistics, and
// (with checkpointing) how many rows were restored from its shard
// database.  The merge reassembles the outcomes by global space index via
// ShardComm::gather_ordered -- so the merged StudyResult is
// bitwise-identical to a single-rank run -- and sums the bookkeeping into
// a per-shard + aggregate report.

#include <cstddef>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "dist/comm.h"
#include "obs/metrics.h"
#include "toolchain/compile_cache.h"

namespace flit::dist {

/// One shard's execution summary (the merge report's per-shard line).
struct ShardReport {
  int rank = 0;
  ShardRange range{};         ///< global space indices the shard owned
  std::size_t prefilled = 0;  ///< rows restored from the shard checkpoint
  std::size_t failed = 0;     ///< quarantined outcomes in the slice
  std::size_t retried = 0;    ///< outcomes recovered by retry
  double seconds = 0.0;       ///< shard wall time (meaningful when shards
                              ///< execute serially; overlaps otherwise)
  toolchain::CacheStats cache{};

  /// Work-stealing rebalance accounting: items this shard pulled from
  /// other shards' unexplored tails, items other shards pulled from this
  /// one's, and how many steal claims it made.  All zero with stealing
  /// off (or when the static partition happened to be balanced).
  std::size_t stolen = 0;
  std::size_t donated = 0;
  std::size_t steals = 0;

  /// Items this shard actually dispatched to its explorer: owned plus
  /// stolen, minus donated and checkpoint-prefilled rows.
  std::size_t executed_items = 0;

  /// Modeled-cycle distribution of the shard's *executed* ok outcomes
  /// (resumed rows carry no cycle measurement and are excluded).  All
  /// shards share cycle_buckets() bounds, so the per-shard histograms
  /// merge; min/~median/max per shard is the skew measurement the
  /// work-stealing protocol rebalances against.
  obs::HistogramData cycles{obs::cycle_buckets()};

  [[nodiscard]] std::size_t executed() const { return executed_items; }
};

/// A merged distributed study: the index-ordered StudyResult plus the
/// per-shard accounting it was assembled from.
struct ShardedStudy {
  core::StudyResult study;
  std::vector<ShardReport> shards;

  /// Sum of the per-shard cache statistics (CacheStats::operator+=).
  [[nodiscard]] toolchain::CacheStats aggregate_cache() const;

  /// Sum of the per-shard cycle histograms (HistogramData::operator+=).
  [[nodiscard]] obs::HistogramData aggregate_cycles() const;

  /// Sum of per-shard wall times (total worker-seconds) and the slowest
  /// shard (the fleet's critical path when shards run on dedicated
  /// workers).
  [[nodiscard]] double total_shard_seconds() const;
  [[nodiscard]] double max_shard_seconds() const;
};

/// Reassembles per-shard outcome vectors into one StudyResult ordered by
/// global space index.  `per_shard[r]` must hold exactly the outcomes of
/// comm.range(r, space_size), in slice order; a size mismatch throws
/// std::invalid_argument (a merge must never silently misplace an
/// outcome).  The result is bitwise-identical to a single-rank run over
/// the same space.
[[nodiscard]] core::StudyResult merge_shards(
    const ShardComm& comm, std::size_t space_size,
    std::vector<core::StudyResult> per_shard);

/// Human-readable merge report: one line per shard (owned range, executed
/// vs. prefilled counts, failures, retries, cache hit rate) and an
/// aggregate line with the summed failure accounting and cache
/// statistics.
[[nodiscard]] std::string shard_report_text(const ShardedStudy& s);

}  // namespace flit::dist
