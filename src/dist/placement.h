#pragma once

// Placement pass of the distributed engine: which rank owns which study
// items, decided before anything runs.
//
// The static partition (ShardComm::scatter_ranges) splits the space by
// *index count*, which balances nothing when cost is skewed and scatters
// semantics-fingerprint siblings across shards, so every shard's private
// CompilationCache re-misses objects a sibling already built.  The
// placement policies here replace the contiguous split:
//
//  * Static   -- the historical contiguous partition, verbatim.
//  * Cost     -- LPT (longest-processing-time) over per-item predicted
//                cost: items are placed one by one, heaviest first, each
//                onto the currently lightest rank.
//  * Affinity -- LPT over *fingerprint groups*: items sharing a
//                CompilationCache semantics group are placed as one unit,
//                so each fingerprint is compiled at most once per fleet
//                instead of once per shard, and the groups are
//                cost-balanced with the same LPT rule.  A group whose
//                predicted cost exceeds the ideal per-shard share (total
//                cost / shards) is split into cost-capped sub-units so a
//                single heavy fingerprint cannot pin the critical path
//                to one rank; only such oversized groups ever span
//                shards.
//
// Every policy is a pure function of (space, shards, model): items are
// processed in a deterministic order (predicted cost descending, lowest
// index first) and ties between ranks break to the lowest rank, so the
// same inputs always produce the same placement.  Outcomes stay
// index-addressed regardless -- a placement moves *where* an item
// executes, never where its result lands -- which is what keeps the
// merged study bitwise-identical across policies.

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dist/cost_model.h"
#include "toolchain/compiler.h"

namespace flit::dist {

enum class PlacementPolicy {
  Static,    ///< contiguous index split (the historical partition)
  Cost,      ///< LPT over per-item predicted cost
  Affinity,  ///< LPT over fingerprint groups (cache-affine)
};

[[nodiscard]] const char* to_string(PlacementPolicy p);
/// Inverse of to_string ("static" / "cost" / "affinity"); nullopt for
/// unrecognized names.
[[nodiscard]] std::optional<PlacementPolicy> placement_policy_from(
    const std::string& name);

/// One placement of a compilation space across ranks.
struct Placement {
  PlacementPolicy policy = PlacementPolicy::Static;

  /// Global space indices owned by each rank, ascending within a rank.
  /// The sets are disjoint and cover [0, space_size) exactly.
  std::vector<std::vector<std::size_t>> rank_indices;

  /// Sum of predicted item costs per rank (the LPT bin loads).
  std::vector<double> predicted;

  /// Distinct semantics-fingerprint groups resident on each rank.
  std::vector<std::size_t> rank_groups;

  /// Distinct semantics-fingerprint groups in the whole space.
  std::size_t total_groups = 0;

  /// Excess group residencies of this placement: the sum over ranks of
  /// distinct resident groups, minus total_groups.  Every excess residency
  /// is a fingerprint some shard re-compiles even though a sibling shard
  /// also builds it; Affinity drives this to zero except for groups too
  /// costly for any single shard, which it splits across the minimum
  /// number of ranks.
  std::size_t duplicated_groups = 0;

  /// The same excess-residency count for the contiguous static split of
  /// this space -- the baseline the report's "redundant compiles avoided"
  /// line compares against.
  std::size_t static_duplicated_groups = 0;

  /// True when rank_indices are exactly the contiguous ShardComm ranges.
  bool contiguous = false;

  [[nodiscard]] std::size_t shards() const { return rank_indices.size(); }

  /// Fingerprint re-compilations this placement avoids relative to the
  /// static split (zero when it introduces more than it removes).
  [[nodiscard]] std::size_t avoided_group_compiles() const {
    return static_duplicated_groups > duplicated_groups
               ? static_duplicated_groups - duplicated_groups
               : 0;
  }
};

/// Computes the placement of `space` across `shards` ranks under `policy`,
/// with per-item costs from `model`.  Throws std::invalid_argument for
/// shards < 1.
[[nodiscard]] Placement place_space(
    std::span<const toolchain::Compilation> space, int shards,
    PlacementPolicy policy, const CostModel& model);

}  // namespace flit::dist
