#include "dist/placement.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "dist/comm.h"
#include "toolchain/compile_cache.h"

namespace flit::dist {

const char* to_string(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::Static:
      return "static";
    case PlacementPolicy::Cost:
      return "cost";
    case PlacementPolicy::Affinity:
      return "affinity";
  }
  return "static";
}

std::optional<PlacementPolicy> placement_policy_from(const std::string& name) {
  if (name == "static") return PlacementPolicy::Static;
  if (name == "cost") return PlacementPolicy::Cost;
  if (name == "affinity") return PlacementPolicy::Affinity;
  return std::nullopt;
}

namespace {

// One LPT unit: either a single item (Cost policy) or a whole fingerprint
// group (Affinity policy).  `indices` are ascending global space indices.
struct Unit {
  std::vector<std::size_t> indices;
  double cost = 0.0;
};

// Assigns units to `shards` bins with the LPT rule: units in descending
// cost order (ties -> lowest first index), each onto the least-loaded bin
// (ties -> lowest rank).  Deterministic because the order and both
// tie-breaks are total.
std::vector<std::vector<std::size_t>> lpt_assign(std::vector<Unit> units,
                                                 int shards,
                                                 std::vector<double>& loads) {
  std::stable_sort(units.begin(), units.end(),
                   [](const Unit& a, const Unit& b) {
                     if (a.cost != b.cost) return a.cost > b.cost;
                     return a.indices.front() < b.indices.front();
                   });
  std::vector<std::vector<std::size_t>> bins(
      static_cast<std::size_t>(shards));
  loads.assign(static_cast<std::size_t>(shards), 0.0);
  for (const Unit& u : units) {
    std::size_t best = 0;
    for (std::size_t r = 1; r < loads.size(); ++r) {
      if (loads[r] < loads[best]) best = r;
    }
    loads[best] += u.cost;
    bins[best].insert(bins[best].end(), u.indices.begin(), u.indices.end());
  }
  for (auto& bin : bins) std::sort(bin.begin(), bin.end());
  return bins;
}

// Excess group residencies of an index partition: sum over ranks of the
// distinct semantics groups resident on that rank, minus the global
// distinct count.  Zero means every fingerprint lives on exactly one rank.
std::size_t excess_residencies(
    const std::vector<std::vector<std::size_t>>& bins,
    const std::vector<std::uint64_t>& group_of, std::size_t total_groups,
    std::vector<std::size_t>* per_rank) {
  std::size_t resident_sum = 0;
  if (per_rank != nullptr) per_rank->assign(bins.size(), 0);
  for (std::size_t r = 0; r < bins.size(); ++r) {
    std::set<std::uint64_t> resident;
    for (std::size_t i : bins[r]) resident.insert(group_of[i]);
    if (per_rank != nullptr) (*per_rank)[r] = resident.size();
    resident_sum += resident.size();
  }
  return resident_sum - std::min(resident_sum, total_groups);
}

}  // namespace

Placement place_space(std::span<const toolchain::Compilation> space,
                      int shards, PlacementPolicy policy,
                      const CostModel& model) {
  if (shards < 1) {
    throw std::invalid_argument("place_space: shards must be >= 1 (got " +
                                std::to_string(shards) + ")");
  }

  Placement p;
  p.policy = policy;
  const ShardComm comm(shards);

  std::vector<std::uint64_t> group_of(space.size());
  std::vector<double> cost_of(space.size());
  // Groups keyed by fingerprint, in first-appearance index order (the map
  // key is the fingerprint; determinism comes from the index vectors).
  std::map<std::uint64_t, Unit> groups;
  for (std::size_t i = 0; i < space.size(); ++i) {
    group_of[i] = toolchain::CompilationCache::semantics_group(space[i]);
    cost_of[i] = model.predict(space[i]);
    Unit& g = groups[group_of[i]];
    g.indices.push_back(i);
    g.cost += cost_of[i];
  }
  p.total_groups = groups.size();

  switch (policy) {
    case PlacementPolicy::Static: {
      const auto ranges = comm.scatter_ranges(space.size());
      p.rank_indices.resize(static_cast<std::size_t>(shards));
      p.predicted.assign(static_cast<std::size_t>(shards), 0.0);
      for (std::size_t r = 0; r < ranges.size(); ++r) {
        for (std::size_t i = ranges[r].begin; i < ranges[r].end; ++i) {
          p.rank_indices[r].push_back(i);
          p.predicted[r] += cost_of[i];
        }
      }
      p.contiguous = true;
      break;
    }
    case PlacementPolicy::Cost: {
      std::vector<Unit> units;
      units.reserve(space.size());
      for (std::size_t i = 0; i < space.size(); ++i) {
        units.push_back(Unit{{i}, cost_of[i]});
      }
      p.rank_indices = lpt_assign(std::move(units), shards, p.predicted);
      break;
    }
    case PlacementPolicy::Affinity: {
      // An indivisible unit defeats LPT: one fingerprint group whose
      // predicted cost exceeds the ideal per-shard share pins the
      // fleet's critical path to a single rank no matter how the rest
      // is packed.  Split such groups into cost-capped runs of
      // ascending indices -- the group then spans the minimum number
      // of shards that can absorb it, while every other fingerprint
      // still lives on exactly one rank.
      // Half the ideal share: LPT's makespan overshoot is bounded by the
      // largest unit it places, so capping units at share/2 keeps the
      // worst bin within ~1.5x of ideal even with adversarial groups.
      double total_cost = 0.0;
      for (double c : cost_of) total_cost += c;
      const double cap =
          total_cost / (2.0 * static_cast<double>(shards));
      std::vector<Unit> units;
      units.reserve(groups.size());
      for (auto& [fp, g] : groups) {
        if (g.cost <= cap || g.indices.size() <= 1) {
          units.push_back(std::move(g));
          continue;
        }
        Unit part;
        for (std::size_t i : g.indices) {
          if (!part.indices.empty() && part.cost + cost_of[i] > cap) {
            units.push_back(std::move(part));
            part = Unit{};
          }
          part.indices.push_back(i);
          part.cost += cost_of[i];
        }
        if (!part.indices.empty()) units.push_back(std::move(part));
      }
      p.rank_indices = lpt_assign(std::move(units), shards, p.predicted);
      break;
    }
  }

  p.duplicated_groups = excess_residencies(p.rank_indices, group_of,
                                           p.total_groups, &p.rank_groups);

  // The static-split baseline the report compares against.
  std::vector<std::vector<std::size_t>> static_bins(
      static_cast<std::size_t>(shards));
  const auto ranges = comm.scatter_ranges(space.size());
  for (std::size_t r = 0; r < ranges.size(); ++r) {
    for (std::size_t i = ranges[r].begin; i < ranges[r].end; ++i) {
      static_bins[r].push_back(i);
    }
  }
  p.static_duplicated_groups =
      excess_residencies(static_bins, group_of, p.total_groups, nullptr);
  if (policy == PlacementPolicy::Static) {
    p.contiguous = true;
  } else {
    p.contiguous = p.rank_indices == static_bins;
  }

  return p;
}

}  // namespace flit::dist
