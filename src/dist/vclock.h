#pragma once

// Min-virtual-clock scheduling, factored out of the fleet emulations.
//
// Three engines drive work with the same deterministic discipline: a set
// of lanes (simulated ranks, or the study service's fleet slots) each
// carries a virtual clock, and the next unit of work goes to the active
// lane with the smallest clock -- the worker that would go idle first on
// a real concurrent fleet.  ShardCoordinator's serial stealing path uses
// measured wall seconds as the clock (fleet timing), FleetSupervisor uses
// modeled cycles (so fault schedules are reproducible), and the study
// service multiplexes whole tenant studies over its fleet lanes the same
// way.  The policy is identical in all three; only the cost unit differs,
// so the clock set itself is unit-agnostic.
//
// Determinism: selection is a pure function of the clock values and the
// activity flags (ties break to the lowest lane), so identical cost
// sequences produce identical schedules.  Not thread-safe -- the whole
// point is a *serial* emulation of a concurrent fleet.

#include <algorithm>
#include <cstddef>
#include <vector>

namespace flit::dist {

class VirtualClocks {
 public:
  explicit VirtualClocks(std::size_t lanes)
      : clock_(lanes, 0.0), active_(lanes, 1), live_(lanes) {}

  [[nodiscard]] std::size_t size() const { return clock_.size(); }

  /// Lanes still eligible for selection.
  [[nodiscard]] std::size_t live() const { return live_; }
  [[nodiscard]] bool active(std::size_t lane) const {
    return active_[lane] != 0;
  }

  /// Permanently (until reactivate) removes a lane from selection: it has
  /// drained its work, or died.
  void deactivate(std::size_t lane) {
    if (active_[lane] != 0) {
      active_[lane] = 0;
      --live_;
    }
  }
  void reactivate(std::size_t lane) {
    if (active_[lane] == 0) {
      active_[lane] = 1;
      ++live_;
    }
  }

  /// Charges `cost` (seconds, modeled cycles -- the caller's unit) to a
  /// lane's clock.
  void advance(std::size_t lane, double cost) { clock_[lane] += cost; }

  [[nodiscard]] double clock(std::size_t lane) const { return clock_[lane]; }

  /// The fleet wall under this emulation: the largest clock, active or
  /// not (a dead rank's spent time still happened).
  [[nodiscard]] double max_clock() const {
    return clock_.empty() ? 0.0
                          : *std::max_element(clock_.begin(), clock_.end());
  }

  /// The active lane with the smallest clock among those satisfying
  /// `pred` (ties -> lowest lane); size() when none qualifies.
  template <class Pred>
  [[nodiscard]] std::size_t min_active_where(Pred&& pred) const {
    std::size_t best = clock_.size();
    for (std::size_t i = 0; i < clock_.size(); ++i) {
      if (active_[i] != 0 && pred(i) &&
          (best == clock_.size() || clock_[i] < clock_[best])) {
        best = i;
      }
    }
    return best;
  }

  /// min_active_where with no extra predicate.
  [[nodiscard]] std::size_t min_active() const {
    return min_active_where([](std::size_t) { return true; });
  }

 private:
  std::vector<double> clock_;
  std::vector<char> active_;
  std::size_t live_ = 0;
};

}  // namespace flit::dist
