#pragma once

// Sharded campaign execution: run N independent items exactly once across
// a simulated rank fleet, reusing the StealQueue claim protocol (and its
// determinism story) for arbitrary per-item work instead of compilation
// cells.  The blame-dedup campaign (src/blame) shards its bisect cells
// through this; anything whose results are index-addressed can.
//
// Each rank pulls grain-sized claims (own slot first, then trailing-range
// steals from the most-loaded started slot) and executes the claim's
// items on its own inner lane pool, so the fleet runs shards x jobs
// concurrent items at peak.  Results must be written by global item
// index; then the merged output is independent of which rank ran what,
// exactly as in the sharded explorer.

#include <cstddef>
#include <functional>
#include <vector>

#include "dist/comm.h"

namespace flit::dist {

struct CampaignShardOptions {
  int shards = 1;         ///< simulated ranks (claim slots)
  unsigned jobs = 1;      ///< execution lanes per rank within one claim
  bool steal = true;      ///< trailing-range steals from loaded ranks
  std::size_t grain = 4;  ///< items per claim (>= 1, clamped)
};

/// Post-run accounting.  The per-rank claim/steal splits depend on
/// scheduling under pooled ranks; item coverage does not.
struct CampaignRunStats {
  std::size_t items = 0;
  std::vector<StealQueue::RankStats> ranks;

  [[nodiscard]] std::size_t total_steals() const;
};

/// Runs `item(i)` exactly once for every i in [0, n).  `item` must be
/// safe to call concurrently (shards x jobs lanes) and should write its
/// result by index.  Exceptions propagate: the lowest-index throwing item
/// of a claim wins, mirroring ThreadPool::parallel_for.
[[nodiscard]] CampaignRunStats run_sharded_campaign(
    std::size_t n, const CampaignShardOptions& opts,
    const std::function<void(std::size_t)>& item);

}  // namespace flit::dist
