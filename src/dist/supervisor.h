#pragma once

// Fleet supervisor: rank-level fault containment over the sharded engine.
//
// ShardCoordinator contains *item*-level failures (a compilation crashes,
// its outcome slot records the quarantine); FleetSupervisor makes *rank*
// death and rank stall first-class recoverable events.  It layers over
// the coordinator's work-stealing claim protocol: ranks pull grain-sized
// claims from a StealQueue, and before each claim executes the supervisor
// consults the fault injector's two rank-level sites (core/faults.h):
//
//   * `shard` -- the rank's explore lane throws mid-claim and the rank
//     dies.  The claim performed no durable work (death is claim-atomic:
//     no outcome is written, no checkpoint batch was recorded), so the
//     whole range returns to the queue's orphan pool.
//   * `stall` -- the rank hangs on the claim and is detected when its
//     virtual clock passes a modeled-cycle deadline
//     (SupervisorOptions::stall_deadline; no wall clock anywhere).  The
//     hung claim is likewise returned unexecuted.
//
// Recovery is a bounded deterministic restart policy: a faulted rank is
// restarted up to `max_restarts` times, each restart charging an
// exponential virtual-clock backoff (backoff_base * 2^(restart-1) modeled
// cycles) before the rank claims again.  A restarted incarnation gets a
// fresh CompilationCache and SpaceExplorer -- its anchor memo and warm
// cache are lost, which is invisible in the results because runs are
// deterministic -- but keeps its shard checkpoint database and its
// running checkpoint-ordinal base.  A rank that exhausts the budget is
// marked dead (StealQueue::mark_dead) and its remaining slot joins the
// orphan pool, claimable by every survivor even with stealing disabled:
// taking over for a dead rank is recovery, not load balancing.
//
// Determinism: the supervised loop is the coordinator's serial
// min-virtual-clock scheduler with the clock advanced by *modeled cycles*
// (the summed fresh-executed cycles of each claim) instead of measured
// seconds.  Claim schedule, fault decisions (hashed per rank incarnation
// and claim range), restarts, backoff, and the degraded set are therefore
// pure functions of (space, options, injector seed): the same faulted run
// produces byte-identical merged study / CSV / converged database every
// time.  With no rank-level site armed (and force_supervised off) run()
// delegates to ShardCoordinator::run() outright, so unfaulted bytes are
// trivially identical to the unsupervised engine at any policy x shards x
// jobs x steal setting, with full shard concurrency.
//
// Degraded mode: when every rank is dead and work remains, the default is
// to throw FleetAbort.  With `allow_partial`, the unrecoverable cells are
// instead recorded as OutcomeStatus::Degraded -- in the merged study, the
// CSV, and the converged ResultsDb -- with full accounting in
// shard_report_text and the dist.supervisor.* metrics.  A degraded row is
// an infrastructure failure, not an item failure: resume paths re-run it
// (core/resultsdb.h), so a later `--resume` converges to unfaulted bytes.

#include <span>
#include <stdexcept>

#include "dist/coordinator.h"

namespace flit::dist {

struct SupervisorOptions {
  ShardOptions shard;

  /// Restarts granted to each rank before it is declared dead (>= 0; 0
  /// means the first fault kills the rank for good).
  int max_restarts = 2;

  /// Backoff unit in modeled cycles: restart k of a rank charges its
  /// virtual clock backoff_base * 2^(k-1) cycles before it claims again
  /// (> 0).  Purely a virtual-clock cost -- no wall-clock sleep.
  double backoff_base = 1024.0;

  /// Modeled-cycle deadline at which a stalled claim is detected (the
  /// virtual-clock cost the rank pays before its restart backoff).  0
  /// (the default) charges backoff_base instead, keeping detection
  /// latency on the same scale as recovery.
  double stall_deadline = 0.0;

  /// After the restart budget is exhausted fleet-wide: record the
  /// unrecoverable cells as OutcomeStatus::Degraded and complete the
  /// study (true), or throw FleetAbort (false, the default).
  bool allow_partial = false;

  /// Run the supervised virtual-clock loop even with no rank-level fault
  /// site armed.  The loop is serial across claims (determinism over
  /// concurrency); tests use this to prove the supervised scheduler's
  /// unfaulted bytes match the unsupervised engine's.
  bool force_supervised = false;
};

/// Thrown when the fleet cannot finish the study: every rank exhausted
/// its restart budget with work remaining and allow_partial is off.
class FleetAbort : public std::runtime_error {
 public:
  explicit FleetAbort(const std::string& what) : std::runtime_error(what) {}
};

class FleetSupervisor {
 public:
  /// Arguments as ShardCoordinator, plus the supervision policy.  Throws
  /// std::invalid_argument for max_restarts < 0, backoff_base <= 0,
  /// stall_deadline < 0, or anything the coordinator itself rejects
  /// (including a shard_db_dir that cannot be created or written).
  FleetSupervisor(const fpsem::CodeModel* model,
                  toolchain::Compilation baseline,
                  toolchain::Compilation speed_reference,
                  SupervisorOptions opts);

  /// ShardCoordinator::run under supervision.  Delegates to the
  /// unsupervised coordinator when no rank-level fault site is armed and
  /// force_supervised is off; otherwise runs the supervised loop.
  /// ShardedStudy::supervisor reports which path ran (enabled) and the
  /// full recovery accounting.
  [[nodiscard]] ShardedStudy run(
      const core::TestBase& test,
      std::span<const toolchain::Compilation> space) const;

  /// run() with shard-checkpoint prefill forced on (the coordinator's
  /// resume contract, supervised).
  [[nodiscard]] ShardedStudy resume(
      const core::TestBase& test,
      std::span<const toolchain::Compilation> space) const;

  /// Adapter for WorkflowOptions::explore_override, as the coordinator's.
  [[nodiscard]] core::ExploreFn explore_override() const;

  /// True when the global fault injector has a rank-level site (shard or
  /// stall) armed -- the condition under which run() supervises.
  [[nodiscard]] static bool rank_faults_armed();

  [[nodiscard]] const SupervisorOptions& options() const { return opts_; }
  [[nodiscard]] const ShardCoordinator& coordinator() const { return coord_; }

 private:
  [[nodiscard]] ShardedStudy run_supervised(
      const core::TestBase& test,
      std::span<const toolchain::Compilation> space, bool resume_shards)
      const;

  const fpsem::CodeModel* model_;
  toolchain::Compilation baseline_;
  toolchain::Compilation speed_reference_;
  SupervisorOptions opts_;
  ShardCoordinator coord_;
};

}  // namespace flit::dist
