#pragma once

// Per-item predicted cost for the placement engine.
//
// Work stealing (dist/comm.h) reacts to skew after it happens; the
// placement pass (dist/placement.h) wants to prevent it, which needs a
// prediction of what each (test, compilation) study item will cost before
// anything runs.  The model here estimates *executed* modeled cycles per
// item in relative units:
//
//  * Static seed: the derivation rules already map a compilation triple to
//    deterministic cost factors (toolchain::derive_cost -- the same
//    factors the simulated runtime bills cycles with: scalar ops scale by
//    time_scale, vectorizable ops by time_scale / bulk_scale), so a
//    triple's relative cycle count is predictable from the optimization
//    level and flag set alone, before any run.
//  * Anchor reuse: a compilation equal to the study's baseline or speed
//    reference is answered from the explorer's memoized anchor run and
//    costs the shard essentially nothing, whatever its cycle count.  The
//    model predicts a near-zero cost for those items, which is what makes
//    the skewed spaces (slabs of baseline copies) balance correctly.
//  * Profile refinement: a prior run knows the real numbers.  A
//    CostProfile built from a previous StudyResult (actual modeled
//    cycles) or from a ResultsDb checkpoint (1/speedup as relative
//    cycles) overrides the static seed per compilation string, making
//    repeated studies of the same space balance on measured cost.
//
// Everything is a pure function of the compilation (and the loaded
// profile), so a placement computed from the model is deterministic and
// reproducible -- the property the bitwise-identity guarantee of the
// distributed engine leans on.

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>

#include "core/explorer.h"
#include "toolchain/compiler.h"

namespace flit::dist {

/// Observed per-compilation relative costs from a prior run, keyed by the
/// canonical compilation string.  Repeated observations of one key
/// average; iteration order is the map's (deterministic).
class CostProfile {
 public:
  /// Accumulates one observation (cost must be finite and > 0; anything
  /// else throws std::invalid_argument -- a profile must never smuggle a
  /// zero or negative weight into the partitioner).
  void add(const std::string& compilation, double cost);

  /// Mean observed cost of `compilation`, if any observation was added.
  [[nodiscard]] std::optional<double> cost(
      const std::string& compilation) const;

  [[nodiscard]] std::size_t size() const { return costs_.size(); }
  [[nodiscard]] bool empty() const { return costs_.empty(); }

  /// Profile from a completed study: the actual modeled cycles of every
  /// ok outcome (quarantined and cycle-less rows are skipped).
  [[nodiscard]] static CostProfile from_study(const core::StudyResult& study);

  /// Profile from a results database (a prior `--db` file or shard
  /// checkpoint): the database stores speedups relative to the study's
  /// speed reference, so 1/speedup is the row's relative cycle count.
  /// Rows without a usable timing (failed, or speedup <= 0) are skipped.
  /// Throws std::runtime_error when the file does not exist and
  /// propagates the database's strict-parse errors for malformed rows.
  [[nodiscard]] static CostProfile from_results_db(
      const std::filesystem::path& path);

 private:
  struct Acc {
    double sum = 0.0;
    std::uint64_t n = 0;
  };
  std::map<std::string, Acc> costs_;
};

/// Deterministic per-item cost model: relative executed modeled cycles of
/// one study item, from static triple features refined by an optional
/// profile of prior observations.
class CostModel {
 public:
  /// `baseline` / `speed_reference` are the study's anchor compilations
  /// (their runs are memoized by the explorer, so items equal to them are
  /// predicted nearly free).
  CostModel(toolchain::Compilation baseline,
            toolchain::Compilation speed_reference);

  void set_profile(CostProfile profile) { profile_ = std::move(profile); }
  [[nodiscard]] bool has_profile() const { return !profile_.empty(); }

  /// Predicted executed cost of running `c`, in relative cycle units:
  /// the profile's observation when one exists, else the static estimate;
  /// anchor-equal compilations collapse to kAnchorReuseCost either way.
  /// Always finite and > 0 (LPT bins must strictly grow).
  [[nodiscard]] double predict(const toolchain::Compilation& c) const;

  /// The static-feature seed: relative modeled cycles from the derivation
  /// rules alone (optimization level + flag set -> cost factors), assuming
  /// the bundled kernels' roughly even scalar/vectorizable op mix.
  [[nodiscard]] static double static_estimate(const toolchain::Compilation& c);

  /// Predicted cost of an anchor-equal item: not exactly zero (ties in
  /// the partitioner must still be broken by load), but small enough that
  /// a slab of baseline copies never outweighs one fresh compilation.
  static constexpr double kAnchorReuseCost = 1.0 / 1024.0;

 private:
  toolchain::Compilation baseline_;
  toolchain::Compilation speed_reference_;
  CostProfile profile_;
};

/// Bucket bounds of the predicted-vs-actual cycle error histogram
/// (`dist.cost.error_pct`): relative error percentages, geometric from
/// 1/8 % to ~4096 %.
[[nodiscard]] const std::vector<double>& cost_error_buckets();

}  // namespace flit::dist
