#include "serve/request.h"

#include <cctype>
#include <istream>
#include <stdexcept>
#include <unordered_set>

namespace flit::serve {

namespace {

/// Minimal strict parser for the one JSON shape a request line may take:
/// a flat object of string, unsigned-integer, and string-array values.
/// No nesting, no floats, no escapes beyond \" \\ \/ \n \t -- a request
/// has no business containing anything fancier, and rejecting the rest
/// keeps the admission surface auditable.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(const std::string& text) : s_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::string parse_string() {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != '"') fail("expected a string");
    ++pos_;
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: fail(std::string("unsupported escape '\\") + e + "'");
        }
      }
      out += c;
    }
    if (pos_ >= s_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  [[nodiscard]] std::size_t parse_uint() {
    skip_ws();
    if (pos_ >= s_.size() || std::isdigit(static_cast<unsigned char>(
                                 s_[pos_])) == 0) {
      fail("expected a non-negative integer");
    }
    std::size_t v = 0;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0) {
      const std::size_t digit = static_cast<std::size_t>(s_[pos_] - '0');
      if (v > (static_cast<std::size_t>(-1) - digit) / 10) {
        fail("integer out of range");
      }
      v = v * 10 + digit;
      ++pos_;
    }
    return v;
  }

  [[nodiscard]] std::vector<std::string> parse_string_array() {
    expect('[');
    std::vector<std::string> out;
    if (consume(']')) return out;
    do {
      out.push_back(parse_string());
    } while (consume(','));
    expect(']');
    return out;
  }

  void expect_end() {
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after the object");
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("request: " + what + " at offset " +
                                std::to_string(pos_));
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Ids and tenants become result-file names; restrict them to a charset
/// that can never traverse, glob, or collide across filesystems.
[[nodiscard]] bool filesystem_safe(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) return false;
  }
  return s != "." && s != "..";
}

}  // namespace

const char* to_string(RequestMode m) {
  switch (m) {
    case RequestMode::Explore: return "explore";
    case RequestMode::Workflow: return "workflow";
  }
  return "?";
}

std::string StudyRequest::payload_key() const {
  std::string key = test;
  key += '|';
  key += to_string(mode);
  key += '|';
  for (const std::string& c : compilers) {
    key += c;
    key += ',';
  }
  key += '|';
  key += std::to_string(limit);
  return key;
}

StudyRequest parse_request_line(const std::string& line) {
  FlatJsonParser p(line);
  StudyRequest req;
  bool have_id = false, have_test = false, have_mode = false;
  bool have_tenant = false, have_compilers = false, have_limit = false;
  p.expect('{');
  if (!p.consume('}')) {
    do {
      const std::string key = p.parse_string();
      p.expect(':');
      if (key == "id") {
        if (have_id) p.fail("duplicate key 'id'");
        req.id = p.parse_string();
        have_id = true;
      } else if (key == "tenant") {
        if (have_tenant) p.fail("duplicate key 'tenant'");
        req.tenant = p.parse_string();
        have_tenant = true;
      } else if (key == "test") {
        if (have_test) p.fail("duplicate key 'test'");
        req.test = p.parse_string();
        have_test = true;
      } else if (key == "mode") {
        if (have_mode) p.fail("duplicate key 'mode'");
        const std::string mode = p.parse_string();
        if (mode == "explore") {
          req.mode = RequestMode::Explore;
        } else if (mode == "workflow") {
          req.mode = RequestMode::Workflow;
        } else {
          throw std::invalid_argument(
              "request: mode must be 'explore' or 'workflow', got '" + mode +
              "'");
        }
        have_mode = true;
      } else if (key == "compilers") {
        if (have_compilers) p.fail("duplicate key 'compilers'");
        req.compilers = p.parse_string_array();
        have_compilers = true;
      } else if (key == "limit") {
        if (have_limit) p.fail("duplicate key 'limit'");
        req.limit = p.parse_uint();
        have_limit = true;
      } else {
        throw std::invalid_argument("request: unknown key '" + key + "'");
      }
    } while (p.consume(','));
    p.expect('}');
  }
  p.expect_end();

  if (!have_id) throw std::invalid_argument("request: missing required 'id'");
  if (!have_test) {
    throw std::invalid_argument("request: missing required 'test'");
  }
  if (!filesystem_safe(req.id)) {
    throw std::invalid_argument(
        "request: id '" + req.id +
        "' must be non-empty [A-Za-z0-9_.-] (it names result files)");
  }
  if (req.tenant.empty()) req.tenant = req.id;
  if (!filesystem_safe(req.tenant)) {
    throw std::invalid_argument(
        "request: tenant '" + req.tenant +
        "' must be non-empty [A-Za-z0-9_.-] (it names the event stream)");
  }
  for (const std::string& c : req.compilers) {
    if (c.empty()) {
      throw std::invalid_argument("request: empty compiler name");
    }
  }
  return req;
}

std::vector<StudyRequest> read_requests(std::istream& in) {
  std::vector<StudyRequest> reqs;
  std::unordered_set<std::string> ids;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Tolerate CRLF streams and operator comments; nothing else.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::size_t first = 0;
    while (first < line.size() &&
           std::isspace(static_cast<unsigned char>(line[first])) != 0) {
      ++first;
    }
    if (first == line.size() || line[first] == '#') continue;
    StudyRequest req;
    try {
      req = parse_request_line(line);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("line " + std::to_string(lineno) + ": " +
                                  e.what());
    }
    if (!ids.insert(req.id).second) {
      throw std::invalid_argument("line " + std::to_string(lineno) +
                                  ": duplicate request id '" + req.id + "'");
    }
    reqs.push_back(std::move(req));
  }
  return reqs;
}

std::vector<toolchain::Compilation> request_subspace(
    const StudyRequest& req, std::span<const toolchain::Compilation> space) {
  std::vector<toolchain::Compilation> out;
  for (const toolchain::Compilation& c : space) {
    if (!req.compilers.empty()) {
      bool wanted = false;
      for (const std::string& name : req.compilers) {
        if (c.compiler.name == name) {
          wanted = true;
          break;
        }
      }
      if (!wanted) continue;
    }
    out.push_back(c);
    if (req.limit != 0 && out.size() == req.limit) break;
  }
  return out;
}

}  // namespace flit::serve
