#pragma once

// The study service: a persistent, deterministic multi-tenant front end
// over the study engine.
//
// One-shot CLI runs pay a cold compilation cache per study and exit;
// the service admits a whole stream of StudyRequests, multiplexes them
// over a simulated fleet, and shares a single bounded CompilationCache
// across every tenant -- the throughput shape of the paper's own
// workflow, which is inherently many test x subspace sweeps over one
// toolchain set.
//
// Scheduling is the serial min-virtual-clock fleet emulation the
// distributed engine already trusts (dist/vclock.h): the fleet has
// `shards` lanes, each in-flight study exposes its next checkpoint-batch
// claim, and every step runs one claim of the minimum-clock study on the
// minimum-clock lane.  With `steal` off, studies are pinned round-robin
// to lanes (static tenancy); with it on, any lane takes the globally
// least-served study.  The loop is serial, so the whole schedule -- and
// every per-tenant accounting delta -- is a pure function of the request
// stream and the options.
//
// The hard guarantee (tested in tests/serve): a request's merged study,
// CSV, and converged results database are bitwise-identical to a solo
// one-shot run of the same request, no matter which tenants ran
// alongside it, what the cache budget was, or where eviction landed.
// The argument composes three established properties: (1) each request
// runs on its own SpaceExplorer whose outcomes are index-addressed
// merges of per-claim explore() calls (the work-stealing engine's
// contract); (2) claims of one study are issued in space order, so its
// database rows land in the same insertion order a solo run produces;
// (3) cache hits restamp the requested compilation onto a
// fingerprint-equal object, and fingerprint equality implies binding
// equality -- so cache contents (shared, evicted, or cold) affect
// cycles, never bytes.
//
// Incremental results: every executed claim emits a StudyEvent JSON line
// on the owning tenant's stream (plus an admission and a completion
// event), so a tenant watches its study converge instead of waiting for
// the end.  Event lines carry no wall-clock and no cache-dependent
// fields beyond the explicitly-labelled tallies.

#include <cstdint>
#include <filesystem>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "fpsem/code_model.h"
#include "toolchain/compile_cache.h"
#include "toolchain/compiler.h"

namespace flit::serve {

struct StudyRequest;

struct ServeOptions {
  int shards = 1;     ///< fleet lanes studies are multiplexed over
  unsigned jobs = 1;  ///< parallel lanes inside each claim's explore()

  /// Lane policy: true (default) lets any lane take the least-served
  /// in-flight study; false pins each study to lane
  /// (admission ordinal % shards).  Either way the schedule is
  /// deterministic and results are bitwise-identical -- only lane
  /// utilization and cache traffic differ.
  bool steal = true;

  /// Studies in flight at once; further admitted requests queue and
  /// enter as slots free (admission order).  Must be >= 1.
  std::size_t max_inflight = 4;

  /// Items per scheduler claim == rows per durable checkpoint (the
  /// ExploreOptions meaning; one checkpoint ordinal per claim).
  std::size_t checkpoint_batch = 32;

  /// Shared-cache budget in approx_object_bytes (nullopt = unbounded,
  /// 0 = retain nothing).  See CompilationCache::set_budget.
  std::optional<std::uint64_t> cache_budget;

  /// Result/state directory: per-request converged database
  /// (`<id>.tsv`), study CSV (`<id>.csv`), and workflow report
  /// (`<id>.workflow.txt`).  Empty disables persistence (results are
  /// still returned in the ServeReport).
  std::filesystem::path state_dir;

  /// Per-tenant event streams (`<tenant>.jsonl`, append).  Empty
  /// disables file streaming; `event_sink` still fires.
  std::filesystem::path stream_dir;

  /// With `state_dir`: prefill each request from its `<id>.tsv`
  /// checkpoint, re-running only unrecorded rows -- the restart half of
  /// the kill/resume cycle.  Converges to the solo-run bytes.
  bool resume = false;

  /// Per-item fault-tolerance knobs applied inside every claim.
  core::RetryPolicy retry;
  bool keep_going = true;

  /// Observer for every emitted event line (tenant, one JSON object, no
  /// trailing newline).  Fires whether or not `stream_dir` is set.
  std::function<void(const std::string& tenant, const std::string& line)>
      event_sink;
};

/// What one request got: identity, tallies, attributed cache activity,
/// and the merged results.
struct RequestReport {
  std::string id;
  std::string tenant;
  std::string test;
  std::size_t items = 0;  ///< subspace size

  /// True when admission deduplicated this request onto `primary`'s
  /// execution: results are shared (byte-identical by construction) and
  /// the cache delta is attributed to the primary.
  bool deduplicated = false;
  std::string primary;

  std::size_t batches = 0;   ///< claims executed for this request
  std::size_t variable = 0;  ///< study.variable_count()
  std::size_t failed = 0;    ///< study.failed_count()

  /// Shared-cache activity attributed to this request: the snapshot
  /// delta around its claims (the scheduler is serial, so deltas are
  /// exact and sum to the aggregate).
  toolchain::CacheStats cache;

  core::StudyResult study;    ///< merged, space-ordered outcomes
  std::string csv;            ///< study_csv(study) bytes
  std::string workflow_text;  ///< workflow report (Workflow mode only)
  std::filesystem::path db_path;  ///< converged database (with state_dir)
};

struct ServeReport {
  std::vector<RequestReport> requests;  ///< admission order
  toolchain::CacheStats cache;          ///< aggregate shared-cache stats
  std::uint64_t cache_resident_bytes = 0;
  double fleet_cycles = 0.0;  ///< max lane clock (modeled)
  std::size_t deduplicated = 0;
};

class StudyService {
 public:
  /// `space` is the canonical compilation space requests select their
  /// subspaces from (the 244-point MFEM space in the CLI); `baseline` /
  /// `speed_reference` anchor every request's explorer.  Throws
  /// std::invalid_argument for shards < 1, jobs < 1, max_inflight < 1,
  /// resume without state_dir, or an unwritable state/stream directory.
  StudyService(const fpsem::CodeModel* model,
               toolchain::Compilation baseline,
               toolchain::Compilation speed_reference,
               std::span<const toolchain::Compilation> space,
               ServeOptions opts);

  /// Validates, deduplicates, and runs every request to completion.
  /// Validation is all-or-nothing: an unknown test, an unknown compiler
  /// name, or an empty subspace throws std::invalid_argument naming the
  /// offending request before anything executes.
  [[nodiscard]] ServeReport run(std::span<const StudyRequest> requests);

  [[nodiscard]] const ServeOptions& options() const { return opts_; }

  /// The shared tenant-spanning compilation cache (budget applied).
  [[nodiscard]] const toolchain::CompilationCache& cache() const {
    return cache_;
  }

 private:
  const fpsem::CodeModel* model_;
  toolchain::Compilation baseline_;
  toolchain::Compilation speed_reference_;
  std::vector<toolchain::Compilation> space_;
  ServeOptions opts_;
  toolchain::CompilationCache cache_;
};

}  // namespace flit::serve
