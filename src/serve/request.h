#pragma once

// Study requests: the admission-side vocabulary of the study service.
//
// A tenant submits one JSON object per line (JSONL) -- a file or a stdin
// stream -- naming a registered test, an optional compilation subspace
// (compiler subset plus a size cap over the canonical study space), and a
// mode (plain exploration, or the full Fig. 1 workflow).  Parsing is
// strict: the request line is a flat JSON object with a fixed key set,
// and anything else -- trailing garbage, unknown keys, a duplicate id, an
// id that is not filesystem-safe -- is a hard admission error naming the
// offending line, not a silently skipped request.  A service multiplexing
// unattended tenant streams must reject malformed traffic at the door;
// half-accepting it would burn fleet cycles on studies nobody asked for.

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "toolchain/compiler.h"

namespace flit::serve {

enum class RequestMode {
  Explore,   ///< Level 1/2 study: outcomes, CSV, converged database
  Workflow,  ///< the full Fig. 1 pipeline (bisect phase included)
};

[[nodiscard]] const char* to_string(RequestMode m);

/// One tenant's study order.
struct StudyRequest {
  std::string id;      ///< unique per stream; names the result files
  std::string tenant;  ///< stream/accounting identity (defaults to id)
  std::string test;    ///< registered test name (flit list)
  RequestMode mode = RequestMode::Explore;

  /// Compiler-name subset of the canonical study space (empty = all).
  std::vector<std::string> compilers;

  /// Cap on the subspace size after the compiler filter (0 = no cap).
  std::size_t limit = 0;

  /// The admission-dedup identity: two requests with equal payload keys
  /// order byte-identical results (the subspace and mode are the whole
  /// study input), so the service runs the study once and fans the
  /// results out.  Tenant and id are deliberately excluded.
  [[nodiscard]] std::string payload_key() const;
};

/// Parses one JSONL request line.  Strict: flat JSON object, keys from
/// {id, tenant, test, mode, compilers, limit} only, `id` and `test`
/// required, ids/tenants restricted to [A-Za-z0-9_.-] (they name result
/// files).  Throws std::invalid_argument with the offending detail.
[[nodiscard]] StudyRequest parse_request_line(const std::string& line);

/// Reads every request of a JSONL stream (blank lines and `#` comment
/// lines skipped).  Rejects duplicate request ids naming the offending
/// id.  Throws std::invalid_argument; the message carries the 1-based
/// line number.
[[nodiscard]] std::vector<StudyRequest> read_requests(std::istream& in);

/// The request's compilation subspace: `space` filtered to the requested
/// compiler names (all when empty), then truncated to `limit` entries
/// (when nonzero).  Selection preserves space order, so a subspace is a
/// deterministic function of the request -- the property the dedup key
/// and the solo-run identity guarantee both lean on.
[[nodiscard]] std::vector<toolchain::Compilation> request_subspace(
    const StudyRequest& req, std::span<const toolchain::Compilation> space);

}  // namespace flit::serve
