#include "serve/service.h"

#include <fstream>
#include <limits>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/registry.h"
#include "core/report.h"
#include "core/resultsdb.h"
#include "core/workflow.h"
#include "dist/vclock.h"
#include "obs/session.h"
#include "serve/request.h"

namespace flit::serve {

namespace {

void ensure_directory(const char* what, const std::filesystem::path& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec || !std::filesystem::is_directory(dir)) {
    throw std::invalid_argument(std::string(what) + ": cannot create '" +
                                dir.string() + "'" +
                                (ec ? ": " + ec.message() : std::string()));
  }
}

void write_file(const std::filesystem::path& path,
                const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("serve: cannot write '" + path.string() + "'");
  }
  out << content;
}

/// One deduplicated study in flight: the unit the scheduler multiplexes.
struct Execution {
  std::size_t req_index = 0;           ///< primary request (input order)
  std::vector<std::size_t> followers;  ///< deduplicated onto this one
  std::size_t admit_ordinal = 0;       ///< admission sequence number

  std::unique_ptr<core::TestBase> test;
  std::string test_name;  ///< stamped by the first claim's result
  std::vector<toolchain::Compilation> subspace;
  std::unique_ptr<core::SpaceExplorer> explorer;
  std::optional<core::ResultsDb> db;
  std::filesystem::path db_path;

  std::vector<core::CompilationOutcome> outcomes;
  std::size_t cursor = 0;    ///< next unexecuted subspace index
  std::size_t ordinals = 0;  ///< checkpoint ordinals consumed
  double vclock = 0.0;       ///< modeled cycles served to this study
  int pinned_lane = -1;      ///< steal off: the study's home lane

  std::size_t batches = 0;
  toolchain::CacheStats cache_delta;

  [[nodiscard]] bool done() const { return cursor == subspace.size(); }
};

/// Writes per-tenant JSONL event streams (append, flushed per line) and
/// mirrors every line to the options' event_sink.
class EventStreams {
 public:
  EventStreams(const std::filesystem::path& dir,
               const std::function<void(const std::string&,
                                        const std::string&)>& sink)
      : dir_(dir), sink_(sink) {}

  void emit(const std::string& tenant, const std::string& line) {
    if (!dir_.empty()) {
      std::ofstream& out = stream_for(tenant);
      out << line << '\n';
      out.flush();  // a killed daemon must not owe its tenants events
    }
    if (sink_) sink_(tenant, line);
  }

 private:
  std::ofstream& stream_for(const std::string& tenant) {
    auto it = streams_.find(tenant);
    if (it == streams_.end()) {
      std::ofstream out(dir_ / (tenant + ".jsonl"),
                        std::ios::binary | std::ios::app);
      if (!out) {
        throw std::runtime_error("serve: cannot write event stream for '" +
                                 tenant + "' under '" + dir_.string() + "'");
      }
      it = streams_.emplace(tenant, std::move(out)).first;
    }
    return it->second;
  }

  std::filesystem::path dir_;
  const std::function<void(const std::string&, const std::string&)>& sink_;
  std::unordered_map<std::string, std::ofstream> streams_;
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

StudyService::StudyService(const fpsem::CodeModel* model,
                           toolchain::Compilation baseline,
                           toolchain::Compilation speed_reference,
                           std::span<const toolchain::Compilation> space,
                           ServeOptions opts)
    : model_(model),
      baseline_(std::move(baseline)),
      speed_reference_(std::move(speed_reference)),
      space_(space.begin(), space.end()),
      opts_(std::move(opts)) {
  if (opts_.shards < 1) {
    throw std::invalid_argument("serve: shards must be >= 1");
  }
  if (opts_.jobs < 1) throw std::invalid_argument("serve: jobs must be >= 1");
  if (opts_.max_inflight < 1) {
    throw std::invalid_argument("serve: max-inflight must be >= 1");
  }
  if (opts_.checkpoint_batch < 1) {
    throw std::invalid_argument("serve: checkpoint-batch must be >= 1");
  }
  if (opts_.resume && opts_.state_dir.empty()) {
    throw std::invalid_argument("serve: --resume requires --state-dir");
  }
  if (!opts_.state_dir.empty()) {
    ensure_directory("serve: state-dir", opts_.state_dir);
  }
  if (!opts_.stream_dir.empty()) {
    ensure_directory("serve: stream-out", opts_.stream_dir);
  }
  cache_.set_budget(opts_.cache_budget);
}

ServeReport StudyService::run(std::span<const StudyRequest> requests) {
  auto& m = obs::metrics();
  static obs::Counter& m_requests = m.counter("serve.requests");
  static obs::Counter& m_dedup = m.counter("serve.deduplicated");
  static obs::Counter& m_claims = m.counter("serve.claims");
  static obs::Counter& m_completed = m.counter("serve.completed");
  obs::Gauge& g_inflight = m.gauge("serve.inflight");
  m.gauge("serve.lanes").set(opts_.shards);

  // --- Validation: all-or-nothing, before anything executes. ---------
  auto& reg = core::global_test_registry();
  for (const StudyRequest& req : requests) {
    if (!reg.contains(req.test)) {
      throw std::invalid_argument("serve: request '" + req.id +
                                  "': unknown test '" + req.test +
                                  "' (try: flit list)");
    }
    for (const std::string& name : req.compilers) {
      bool known = false;
      for (const toolchain::Compilation& c : space_) {
        if (c.compiler.name == name) {
          known = true;
          break;
        }
      }
      if (!known) {
        throw std::invalid_argument("serve: request '" + req.id +
                                    "': unknown compiler '" + name + "'");
      }
    }
    if (request_subspace(req, space_).empty()) {
      throw std::invalid_argument("serve: request '" + req.id +
                                  "': subspace matches no compilations");
    }
  }

  // --- Admission: deduplicate equal payloads onto one execution. -----
  std::vector<Execution> execs;
  std::unordered_map<std::string, std::size_t> by_payload;
  std::vector<std::size_t> primary_of(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const StudyRequest& req = requests[i];
    m_requests.add();
    const std::string key = req.payload_key();
    if (const auto it = by_payload.find(key); it != by_payload.end()) {
      execs[it->second].followers.push_back(i);
      primary_of[i] = it->second;
      m_dedup.add();
      continue;
    }
    by_payload.emplace(key, execs.size());
    primary_of[i] = execs.size();
    Execution e;
    e.req_index = i;
    e.test = reg.create(req.test);
    e.subspace = request_subspace(req, space_);
    e.outcomes.resize(e.subspace.size());
    e.explorer = std::make_unique<core::SpaceExplorer>(
        model_, baseline_, speed_reference_, opts_.jobs, &cache_);
    if (!opts_.state_dir.empty()) {
      e.db_path = opts_.state_dir / (req.id + ".tsv");
      if (!opts_.resume) {
        // A stale checkpoint from an earlier stream would pollute the
        // converged database's insertion order; a fresh run starts clean.
        std::filesystem::remove(e.db_path);
      }
      e.db.emplace(e.db_path);
    }
    execs.push_back(std::move(e));
  }

  EventStreams events(opts_.stream_dir, opts_.event_sink);
  const auto emit_for = [&](std::size_t req_i, const std::string& line) {
    events.emit(requests[req_i].tenant, line);
  };

  // --- The scheduler: serial min-virtual-clock fleet emulation. ------
  const std::size_t nlanes = static_cast<std::size_t>(opts_.shards);
  dist::VirtualClocks lanes(nlanes);
  std::vector<std::size_t> inflight;  // indices into execs
  std::size_t next_exec = 0;
  std::size_t admitted = 0;

  ServeReport report;
  report.requests.resize(requests.size());

  const auto admit_next = [&] {
    while (next_exec < execs.size() && inflight.size() < opts_.max_inflight) {
      Execution& e = execs[next_exec];
      e.admit_ordinal = admitted++;
      e.pinned_lane = static_cast<int>(e.admit_ordinal % nlanes);
      inflight.push_back(next_exec);
      const StudyRequest& req = requests[e.req_index];
      emit_for(e.req_index,
               "{\"event\":\"admitted\",\"request\":\"" +
                   json_escape(req.id) + "\",\"test\":\"" +
                   json_escape(req.test) + "\",\"mode\":\"" +
                   to_string(req.mode) + "\",\"items\":" +
                   std::to_string(e.subspace.size()) + "}");
      for (const std::size_t f : e.followers) {
        emit_for(f, "{\"event\":\"deduplicated\",\"request\":\"" +
                        json_escape(requests[f].id) + "\",\"primary\":\"" +
                        json_escape(req.id) + "\"}");
      }
      ++next_exec;
    }
    g_inflight.set(static_cast<std::int64_t>(inflight.size()));
  };

  const auto finalize = [&](Execution& e) {
    const StudyRequest& req = requests[e.req_index];

    core::StudyResult merged;
    merged.test_name = e.test_name;
    merged.outcomes = e.outcomes;

    RequestReport rr;
    rr.id = req.id;
    rr.tenant = req.tenant;
    rr.test = req.test;
    rr.items = e.subspace.size();
    rr.batches = e.batches;
    rr.variable = merged.variable_count();
    rr.failed = merged.failed_count();
    rr.cache = e.cache_delta;
    rr.csv = core::study_csv(merged);
    rr.db_path = e.db_path;

    if (req.mode == RequestMode::Workflow) {
      // Level 3 on top of the already-merged Level 1/2 study: the
      // override hands the workflow the stored result, so the bisect
      // phase is the only fresh work (through its own cache, as in the
      // sharded engine -- serve's shared cache stays a Level 1/2 pool).
      core::WorkflowOptions wopts;
      wopts.baseline = baseline_;
      wopts.speed_reference = speed_reference_;
      wopts.max_bisects = 1;
      wopts.k = 1;
      wopts.jobs = opts_.jobs;
      wopts.explore_override =
          [&merged](const core::TestBase&,
                    std::span<const toolchain::Compilation>) {
            return merged;
          };
      const core::WorkflowReport wr =
          core::run_workflow(model_, *e.test, e.subspace, wopts);
      rr.workflow_text = core::workflow_report_text(wr);
    }

    if (!opts_.state_dir.empty()) {
      write_file(opts_.state_dir / (req.id + ".csv"), rr.csv);
      if (!rr.workflow_text.empty()) {
        write_file(opts_.state_dir / (req.id + ".workflow.txt"),
                   rr.workflow_text);
      }
    }

    const auto done_line = [&](const StudyRequest& r) {
      return "{\"event\":\"done\",\"request\":\"" + json_escape(r.id) +
             "\",\"items\":" + std::to_string(rr.items) +
             ",\"variable\":" + std::to_string(rr.variable) +
             ",\"failed\":" + std::to_string(rr.failed) +
             ",\"batches\":" + std::to_string(rr.batches) +
             ",\"cache_hits\":" + std::to_string(e.cache_delta.hits) +
             ",\"cache_misses\":" + std::to_string(e.cache_delta.misses) +
             "}";
    };
    emit_for(e.req_index, done_line(req));
    m_completed.add();

    rr.study = std::move(merged);
    report.requests[e.req_index] = rr;

    // Followers share the primary's results byte-for-byte: the payload
    // key is the whole study input, so a solo run of the follower's
    // request would have produced exactly these bytes.
    for (const std::size_t f : e.followers) {
      const StudyRequest& freq = requests[f];
      RequestReport fr = rr;
      fr.id = freq.id;
      fr.tenant = freq.tenant;
      fr.deduplicated = true;
      fr.primary = req.id;
      fr.batches = 0;
      fr.cache = toolchain::CacheStats{};  // attributed to the primary
      if (!opts_.state_dir.empty()) {
        fr.db_path = opts_.state_dir / (freq.id + ".tsv");
        std::filesystem::copy_file(
            e.db_path, fr.db_path,
            std::filesystem::copy_options::overwrite_existing);
        write_file(opts_.state_dir / (freq.id + ".csv"), fr.csv);
        if (!fr.workflow_text.empty()) {
          write_file(opts_.state_dir / (freq.id + ".workflow.txt"),
                     fr.workflow_text);
        }
      }
      emit_for(f, done_line(freq));
      report.requests[f] = std::move(fr);
      ++report.deduplicated;
      m_completed.add();
    }
  };

  admit_next();
  while (!inflight.empty()) {
    // The study to serve next: the least-served in-flight study (its
    // virtual clock counts the modeled cycles already spent on it), tie
    // broken by admission order.  With stealing off the candidate set is
    // first narrowed to the minimum-clock lane that has pinned work.
    std::size_t lane = 0;
    if (opts_.steal) {
      lane = lanes.min_active();
    } else {
      lane = lanes.min_active_where([&](std::size_t l) {
        for (const std::size_t ei : inflight) {
          if (execs[ei].pinned_lane == static_cast<int>(l)) return true;
        }
        return false;
      });
    }
    std::size_t pick = execs.size();
    for (const std::size_t ei : inflight) {
      const Execution& e = execs[ei];
      if (!opts_.steal && e.pinned_lane != static_cast<int>(lane)) continue;
      if (pick == execs.size() || e.vclock < execs[pick].vclock ||
          (e.vclock == execs[pick].vclock &&
           e.admit_ordinal < execs[pick].admit_ordinal)) {
        pick = ei;
      }
    }
    Execution& e = execs[pick];
    const StudyRequest& req = requests[e.req_index];

    const std::size_t first = e.cursor;
    const std::size_t count =
        std::min(opts_.checkpoint_batch, e.subspace.size() - first);

    core::ExploreOptions eo;
    eo.retry = opts_.retry;
    eo.keep_going = opts_.keep_going;
    if (e.db.has_value()) {
      eo.db = &*e.db;
      eo.resume = opts_.resume;
    }
    eo.checkpoint_batch = count;  // one durable checkpoint per claim
    eo.checkpoint_ordinal_base = e.ordinals;
    eo.obs_shard = static_cast<int>(lane);
    eo.obs_index_base = first;

    const toolchain::CacheStats before = cache_.stats();
    core::StudyResult part;
    {
      obs::Span span(obs::tracer_if_enabled(), "claim", "serve",
                     req.id + "[" + std::to_string(first) + "+" +
                         std::to_string(count) + "]");
      part = e.explorer->explore(
          *e.test,
          std::span<const toolchain::Compilation>(e.subspace)
              .subspan(first, count),
          eo);
      double cost = 0.0;
      for (const core::CompilationOutcome& o : part.outcomes) {
        cost += o.cycles;
      }
      span.set_cost(cost);
      lanes.advance(lane, cost);
      e.vclock += cost;
    }
    e.test_name = part.test_name;
    for (std::size_t j = 0; j < count; ++j) {
      e.outcomes[first + j] = std::move(part.outcomes[j]);
    }
    e.cursor += count;
    e.ordinals += 1;
    e.batches += 1;
    e.cache_delta += cache_.stats() - before;
    m_claims.add();

    core::StudyResult sofar;
    sofar.outcomes.assign(e.outcomes.begin(),
                          e.outcomes.begin() +
                              static_cast<std::ptrdiff_t>(e.cursor));
    emit_for(e.req_index,
             "{\"event\":\"batch\",\"request\":\"" + json_escape(req.id) +
                 "\",\"lane\":" + std::to_string(lane) +
                 ",\"first\":" + std::to_string(first) +
                 ",\"count\":" + std::to_string(count) +
                 ",\"done\":" + std::to_string(e.cursor) +
                 ",\"total\":" + std::to_string(e.subspace.size()) +
                 ",\"variable\":" + std::to_string(sofar.variable_count()) +
                 ",\"failed\":" + std::to_string(sofar.failed_count()) + "}");

    if (e.done()) {
      finalize(e);
      for (std::size_t k = 0; k < inflight.size(); ++k) {
        if (inflight[k] == pick) {
          inflight.erase(inflight.begin() + static_cast<std::ptrdiff_t>(k));
          break;
        }
      }
      admit_next();
    }
  }

  report.cache = cache_.stats();
  report.cache_resident_bytes = cache_.resident_bytes();
  report.fleet_cycles = lanes.max_clock();
  return report;
}

}  // namespace flit::serve
