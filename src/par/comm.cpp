#include "par/comm.h"

#include <algorithm>
#include <stdexcept>

#include "fpsem/code_model.h"
#include "linalg/vector.h"

namespace flit::par {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kAllreduceSum = register_fn({
    .name = "Comm::AllreduceSum",
    .file = "par/comm.cpp",
});
const fpsem::FunctionId kAllreduceMin = register_fn({
    .name = "Comm::AllreduceMin",
    .file = "par/comm.cpp",
});
const fpsem::FunctionId kLocalDot = register_fn({
    .name = "Comm::LocalDotPartial",
    .file = "par/comm.cpp",
});

}  // namespace

DeterministicComm::DeterministicComm(int nranks) : nranks_(nranks) {
  if (nranks < 1) throw std::invalid_argument("nranks must be >= 1");
}

DeterministicComm::Range DeterministicComm::range(int rank,
                                                  std::size_t n) const {
  const auto p = static_cast<std::size_t>(nranks_);
  const auto r = static_cast<std::size_t>(rank);
  const std::size_t chunk = n / p;
  const std::size_t rem = n % p;
  const std::size_t begin = r * chunk + std::min(r, rem);
  const std::size_t len = chunk + (r < rem ? 1 : 0);
  return Range{begin, begin + len};
}

double DeterministicComm::allreduce_sum(
    fpsem::EvalContext& ctx, std::span<const double> partials) const {
  fpsem::FpEnv env = ctx.fn(kAllreduceSum);
  // Fixed binary-tree combine: pairwise rounds in rank order.
  std::vector<double> level(partials.begin(), partials.end());
  while (level.size() > 1) {
    std::vector<double> next;
    next.reserve(level.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(env.add(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level.empty() ? 0.0 : level.front();
}

double DeterministicComm::allreduce_min(
    fpsem::EvalContext& ctx, std::span<const double> partials) const {
  (void)ctx.fn(kAllreduceMin);  // selection only: no rounding
  double m = partials.empty() ? 0.0 : partials[0];
  for (double v : partials) m = std::min(m, v);
  return m;
}

double distributed_dot(fpsem::EvalContext& ctx, const DeterministicComm& comm,
                       std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("distributed_dot: size mismatch");
  }
  std::vector<double> partials(static_cast<std::size_t>(comm.size()), 0.0);
  for (int r = 0; r < comm.size(); ++r) {
    const auto rg = comm.range(r, a.size());
    fpsem::FpEnv env = ctx.fn(kLocalDot);
    partials[static_cast<std::size_t>(r)] =
        env.dot(a.subspan(rg.begin, rg.size()), b.subspan(rg.begin, rg.size()));
  }
  return comm.allreduce_sum(ctx, partials);
}

}  // namespace flit::par
