#include "par/study.h"

#include "fpsem/code_model.h"
#include "linalg/sparsemat.h"
#include "mfemini/coefficients.h"
#include "mfemini/forms.h"
#include "mfemini/integrators.h"
#include "mfemini/mesh.h"

namespace flit::par {

namespace {

using fpsem::register_fn;
using linalg::Vector;

const fpsem::FunctionId kParCg = register_fn({
    .name = "ParStudy::ParallelCG",
    .file = "par/study.cpp",
});

/// CG whose inner products are distributed_dot reductions.
void parallel_cg(fpsem::EvalContext& ctx, const DeterministicComm& comm,
                 const linalg::SparseMatrix& a, const Vector& b, Vector& x,
                 double rel_tol, int max_iter) {
  fpsem::FpEnv env = ctx.fn(kParCg);
  Vector r(b.size()), ap(b.size());
  linalg::mult(ctx, a, x, ap);
  linalg::subtract(ctx, b, ap, r);
  Vector p = r;
  double rr = distributed_dot(ctx, comm, r.span(), r.span());
  const double bb = distributed_dot(ctx, comm, b.span(), b.span());
  const double threshold =
      env.mul(env.mul(rel_tol, rel_tol), bb != 0.0 ? bb : 1.0);
  for (int it = 0; it < max_iter && rr > threshold; ++it) {
    linalg::mult(ctx, a, p, ap);
    const double pap = distributed_dot(ctx, comm, p.span(), ap.span());
    if (pap == 0.0) break;
    const double alpha = env.div(rr, pap);
    linalg::axpy(ctx, alpha, p, x);
    linalg::axpy(ctx, -alpha, ap, r);
    const double rr_next = distributed_dot(ctx, comm, r.span(), r.span());
    const double beta = env.div(rr_next, rr);
    for (std::size_t i = 0; i < p.size(); ++i) {
      p[i] = env.mul_add(beta, p[i], r[i]);
    }
    rr = rr_next;
  }
}

}  // namespace

Vector parallel_poisson(fpsem::EvalContext& ctx,
                        const DeterministicComm& comm,
                        std::size_t elems_per_rank) {
  // The decomposed global mesh: grid density scales with the rank count
  // (the Sec. 3.6 observation: parallelization changes the discretization).
  const std::size_t global_elems =
      elems_per_rank * static_cast<std::size_t>(comm.size());
  const mfemini::Mesh mesh = mfemini::Mesh::interval(global_elems);
  const mfemini::ConstantCoefficient one(1.0);
  const auto& rule = mfemini::QuadratureRule::gauss(2);
  auto a = mfemini::assemble_bilinear(
      ctx, mesh,
      [&](fpsem::EvalContext& c, const mfemini::Mesh& m, std::size_t e,
          linalg::DenseMatrix& out) {
        mfemini::diffusion_element_matrix(c, m, e, one, rule, out);
      });
  Vector b = mfemini::assemble_domain_lf(ctx, mesh, one, rule);
  mfemini::eliminate_essential_bc(ctx, mesh, a, b, 0.0);
  Vector x(mesh.num_nodes(), 0.0);
  parallel_cg(ctx, comm, a, b, x, 1e-10, 400);
  return x;
}

core::TestResult ParallelPoissonTest::run_impl(
    const std::vector<double>&, fpsem::EvalContext& ctx) const {
  const DeterministicComm comm(nranks_);
  return linalg::serialize(parallel_poisson(ctx, comm, elems_per_rank_));
}

long double ParallelPoissonTest::compare(const std::string& baseline,
                                         const std::string& test) const {
  return linalg::l2_string_metric(baseline, test, /*relative=*/true);
}

}  // namespace flit::par
