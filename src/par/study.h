#pragma once

// The Sec. 3.6 MPI study workload: a distributed 1D Poisson solve whose
// mesh density follows the domain decomposition (one refinement block per
// rank) and whose CG inner products go through the fixed-order tree
// reduction.  Increasing the rank count therefore changes the result --
// deterministically -- just as the paper observed when parallelizing the
// MFEM examples.

#include <string>
#include <vector>

#include "core/test_base.h"
#include "linalg/vector.h"
#include "par/comm.h"

namespace flit::par {

/// Solves the decomposed Poisson problem under `comm`; the global mesh
/// has `elems_per_rank * comm.size()` elements.
linalg::Vector parallel_poisson(fpsem::EvalContext& ctx,
                                const DeterministicComm& comm,
                                std::size_t elems_per_rank);

/// FLiT test adapter: the MFEM-under-MPI path of Fig. 1.
class ParallelPoissonTest final : public core::TestBase {
 public:
  explicit ParallelPoissonTest(int nranks, std::size_t elems_per_rank = 8)
      : nranks_(nranks), elems_per_rank_(elems_per_rank) {}

  [[nodiscard]] std::string name() const override {
    return "ParPoisson_np" + std::to_string(nranks_);
  }
  [[nodiscard]] std::size_t getInputsPerRun() const override { return 0; }
  [[nodiscard]] std::vector<double> getDefaultInput() const override {
    return {};
  }
  [[nodiscard]] core::TestResult run_impl(
      const std::vector<double>&, fpsem::EvalContext& ctx) const override;
  using core::TestBase::compare;
  [[nodiscard]] long double compare(const std::string& baseline,
                                    const std::string& test) const override;

 private:
  int nranks_;
  std::size_t elems_per_rank_;
};

}  // namespace flit::par
