#pragma once

// Deterministic in-process message-passing substrate (the "deterministic
// MPI" prerequisite of Fig. 1 / Sec. 3.6).  Ranks are simulated in a fixed
// order and reductions use a fixed binary-tree combine order, so a run is
// bitwise repeatable for a given rank count -- which is exactly the
// property FLiT requires of an MPI application.  Changing the rank count
// legitimately changes results (different partial-sum trees, different
// domain decomposition), as the paper observed on MFEM.

#include <cstddef>
#include <span>
#include <vector>

#include "fpsem/env.h"

namespace flit::par {

class DeterministicComm {
 public:
  explicit DeterministicComm(int nranks);

  [[nodiscard]] int size() const { return nranks_; }

  /// Contiguous partition of [0, n) owned by `rank`.
  struct Range {
    std::size_t begin = 0, end = 0;
    [[nodiscard]] std::size_t size() const { return end - begin; }
  };
  [[nodiscard]] Range range(int rank, std::size_t n) const;

  /// Sum of per-rank partial values in fixed binary-tree order
  /// (registered kernel "Comm::AllreduceSum" in par/comm.cpp).
  [[nodiscard]] double allreduce_sum(fpsem::EvalContext& ctx,
                                     std::span<const double> partials) const;

  /// Minimum across ranks (order-insensitive, still a registered kernel).
  [[nodiscard]] double allreduce_min(fpsem::EvalContext& ctx,
                                     std::span<const double> partials) const;

 private:
  int nranks_;
};

/// Distributed dot product: rank-local partial dots combined by the
/// fixed-order tree reduction.  With 1 rank this degenerates to the
/// sequential kernel; with P ranks the combine order differs -- the
/// mechanism by which parallelism changes results in Sec. 3.6.
double distributed_dot(fpsem::EvalContext& ctx, const DeterministicComm& comm,
                       std::span<const double> a, std::span<const double> b);

}  // namespace flit::par
