#pragma once

// FpEnv: the per-function floating-point evaluation environment.
//
// A linked binary in this reproduction is a SemanticsMap: FunctionId ->
// FnBinding.  When a kernel runs it opens an FpEnv for its own FunctionId
// and performs all arithmetic through it; the env applies the semantics the
// function was "compiled" with (FMA contraction, lane reassociation,
// extended precision, unsafe rewrites, FTZ, fast libm), feeds the
// deterministic cost model, and gives the injection framework a chance to
// perturb each static instruction.  This is what makes FLiT's mixed
// ("Franken") binaries meaningful: two functions in one execution can run
// under different compilers' floating-point behaviour.

#include <cmath>
#include <cstddef>
#include <source_location>
#include <span>
#include <vector>

#include "fpsem/code_model.h"
#include "fpsem/injection_hook.h"
#include "fpsem/op_counter.h"
#include "fpsem/semantics.h"

namespace flit::fpsem {

/// FunctionId -> FnBinding table describing one linked executable.
class SemanticsMap {
 public:
  SemanticsMap() = default;
  explicit SemanticsMap(std::size_t n_functions) : bindings_(n_functions) {}

  /// Every function bound to the same compilation.
  static SemanticsMap uniform(std::size_t n_functions, FnBinding b) {
    SemanticsMap m(n_functions);
    for (auto& x : m.bindings_) x = b;
    return m;
  }

  [[nodiscard]] std::size_t size() const { return bindings_.size(); }
  [[nodiscard]] const FnBinding& binding(FunctionId id) const {
    return bindings_.at(id);
  }
  FnBinding& binding(FunctionId id) { return bindings_.at(id); }

  friend bool operator==(const SemanticsMap&, const SemanticsMap&) = default;

 private:
  std::vector<FnBinding> bindings_;
};

class FpEnv;

/// Mutable execution state for one run of the application: the binary's
/// semantics map, the cycle counter, and an optional injection hook.
class EvalContext {
 public:
  explicit EvalContext(SemanticsMap map) : map_(std::move(map)) {}

  /// Opens the evaluation environment for function `id`.
  [[nodiscard]] FpEnv fn(FunctionId id);

  [[nodiscard]] const SemanticsMap& map() const { return map_; }
  [[nodiscard]] OpCounter& counter() { return counter_; }
  [[nodiscard]] const OpCounter& counter() const { return counter_; }

  void set_injection_hook(InjectionHook* hook) { hook_ = hook; }
  [[nodiscard]] InjectionHook* injection_hook() const { return hook_; }

 private:
  SemanticsMap map_;
  OpCounter counter_;
  InjectionHook* hook_ = nullptr;
};

class FpEnv {
 public:
  FpEnv(const FnBinding& b, OpCounter& cnt, InjectionHook* hook,
        FunctionId fn)
      : sem_(&b.sem), cost_(&b.cost), cnt_(&cnt), hook_(hook), fn_(fn) {}

  [[nodiscard]] const FpSemantics& sem() const { return *sem_; }
  [[nodiscard]] FunctionId fn() const { return fn_; }

  // ---- scalar basic operations (injection-probed) --------------------

  double add(double a, double b, std::source_location loc =
                                     std::source_location::current()) {
    a = probe(a, loc);
    tally(OpClass::Add, 1, OpCosts::kAdd);
    return finish(wide_ ? narrow(widen(a) + widen(b)) : a + b);
  }

  double sub(double a, double b, std::source_location loc =
                                     std::source_location::current()) {
    a = probe(a, loc);
    tally(OpClass::Sub, 1, OpCosts::kAdd);
    return finish(wide_ ? narrow(widen(a) - widen(b)) : a - b);
  }

  double mul(double a, double b, std::source_location loc =
                                     std::source_location::current()) {
    a = probe(a, loc);
    tally(OpClass::Mul, 1, OpCosts::kMul);
    return finish(wide_ ? narrow(widen(a) * widen(b)) : a * b);
  }

  double div(double a, double b, std::source_location loc =
                                     std::source_location::current()) {
    a = probe(a, loc);
    if (sem_->unsafe_math) {
      tally(OpClass::Div, 1, OpCosts::kDivFast);
      return finish(a * (1.0 / b));
    }
    tally(OpClass::Div, 1, OpCosts::kDiv);
    return finish(wide_ ? narrow(widen(a) / widen(b)) : a / b);
  }

  /// a*b + c, contracted to fused multiply-add when the semantics allow.
  double mul_add(double a, double b, double c,
                 std::source_location loc =
                     std::source_location::current()) {
    a = probe(a, loc);
    if (sem_->contract_fma) {
      tally(OpClass::Fma, 1, OpCosts::kFma);
      return finish(std::fma(a, b, c));
    }
    if (wide_) {
      tally(OpClass::Fma, 1, OpCosts::kMul + OpCosts::kAdd);
      return finish(narrow(widen(a) * widen(b) + widen(c)));
    }
    tally(OpClass::Fma, 1, OpCosts::kMul + OpCosts::kAdd);
    return finish(a * b + c);
  }

  // ---- irrational / transcendental operations ------------------------

  double sqrt(double x) {
    if (sem_->unsafe_math) {
      // Reciprocal-sqrt seeded in single precision, two Newton steps:
      // accurate to ~1e-13 relative -- the subtle kind of deviation
      // -mrecip / -fp-model fast introduce.
      tally(OpClass::Sqrt, 1, OpCosts::kSqrtFast);
      if (x == 0.0) return finish(x);
      double r = static_cast<double>(1.0f / std::sqrt(static_cast<float>(x)));
      r = r * (1.5 - 0.5 * x * r * r);
      r = r * (1.5 - 0.5 * x * r * r);
      return finish(x * r);
    }
    tally(OpClass::Sqrt, 1, OpCosts::kSqrt);
    return finish(std::sqrt(x));
  }

  double exp(double x) { return libm1(x, [](double v) { return std::exp(v); },
                                      [](float v) { return std::exp(v); }); }
  double log(double x) { return libm1(x, [](double v) { return std::log(v); },
                                      [](float v) { return std::log(v); }); }
  double sin(double x) { return libm1(x, [](double v) { return std::sin(v); },
                                      [](float v) { return std::sin(v); }); }
  double cos(double x) { return libm1(x, [](double v) { return std::cos(v); },
                                      [](float v) { return std::cos(v); }); }

  double pow(double x, double y) {
    if (sem_->unsafe_math) {
      // exp(y * log(x)) rewrite (value-unsafe for many corner cases).
      return exp(mul(y, log(x)));
    }
    if (sem_->fast_libm) {
      tally(OpClass::Libm, 1, OpCosts::kLibmFast);
      return finish(static_cast<double>(
          std::pow(static_cast<float>(x), static_cast<float>(y))));
    }
    tally(OpClass::Libm, 1, OpCosts::kLibm);
    return finish(std::pow(x, y));
  }

  // ---- bulk (vectorizable) operations ---------------------------------
  //
  // Reductions honour the lane count: a strict compilation accumulates
  // left-to-right; a reassociating one keeps `reassoc_width` stride-w
  // partial sums, exactly the transformation a SIMD vectorizer performs.

  double sum(std::span<const double> v,
             std::source_location loc = std::source_location::current()) {
    tally_bulk(OpClass::Add, v.size(), OpCosts::kAdd);
    if (sem_->extended_precision) return finish(narrow(sum_impl<long double>(v, loc)));
    return finish(sum_impl<double>(v, loc));
  }

  double dot(std::span<const double> a, std::span<const double> b,
             std::source_location loc = std::source_location::current()) {
    const double per =
        sem_->contract_fma ? OpCosts::kFma : OpCosts::kMul + OpCosts::kAdd;
    tally_bulk(sem_->contract_fma ? OpClass::Fma : OpClass::Mul, a.size(),
               per);
    if (sem_->extended_precision) return finish(narrow(dot_impl<long double>(a, b, loc)));
    return finish(dot_impl<double>(a, b, loc));
  }

  /// y += alpha * x, elementwise.
  void axpy(double alpha, std::span<const double> x, std::span<double> y,
            std::source_location loc = std::source_location::current()) {
    const double per =
        sem_->contract_fma ? OpCosts::kFma : OpCosts::kMul + OpCosts::kAdd;
    tally_bulk(sem_->contract_fma ? OpClass::Fma : OpClass::Mul, x.size(),
               per);
    for (std::size_t i = 0; i < x.size(); ++i) {
      double xi = probe(x[i], loc);
      double r;
      if (sem_->contract_fma) {
        r = std::fma(alpha, xi, y[i]);
      } else if (wide_) {
        r = narrow(widen(alpha) * widen(xi) + widen(y[i]));
      } else {
        r = alpha * xi + y[i];
      }
      y[i] = finish(r);
    }
  }

  /// x *= alpha, elementwise.
  void scal(double alpha, std::span<double> x,
            std::source_location loc = std::source_location::current()) {
    tally_bulk(OpClass::Mul, x.size(), OpCosts::kMul);
    for (auto& xi : x) xi = finish(probe(xi, loc) * alpha);
  }

  /// sqrt(dot(v, v)) under this function's semantics.
  double norm2(std::span<const double> v,
               std::source_location loc = std::source_location::current()) {
    return sqrt(dot(v, v, loc));
  }

 private:
  template <typename Acc>
  Acc sum_impl(std::span<const double> v, const std::source_location& loc) {
    const int w = sem_->reassoc_width > 1 ? sem_->reassoc_width : 1;
    std::vector<Acc> acc(static_cast<std::size_t>(w), Acc{0});
    for (std::size_t i = 0; i < v.size(); ++i) {
      acc[i % static_cast<std::size_t>(w)] += static_cast<Acc>(probe(v[i], loc));
    }
    Acc total{0};
    for (const Acc& a : acc) total += a;
    return total;
  }

  template <typename Acc>
  Acc dot_impl(std::span<const double> a, std::span<const double> b,
               const std::source_location& loc) {
    const int w = sem_->reassoc_width > 1 ? sem_->reassoc_width : 1;
    std::vector<Acc> acc(static_cast<std::size_t>(w), Acc{0});
    const bool fma = sem_->contract_fma;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double ai = probe(a[i], loc);
      auto& lane = acc[i % static_cast<std::size_t>(w)];
      if constexpr (std::is_same_v<Acc, double>) {
        lane = fma ? std::fma(ai, b[i], lane) : lane + ai * b[i];
      } else {
        // extended precision dominates: products and sums both wide
        lane += static_cast<Acc>(ai) * static_cast<Acc>(b[i]);
      }
    }
    Acc total{0};
    for (const Acc& x : acc) total += x;
    return total;
  }

  template <typename F, typename Ff>
  double libm1(double x, F precise, Ff fast) {
    if (sem_->fast_libm) {
      tally(OpClass::Libm, 1, OpCosts::kLibmFast);
      return finish(static_cast<double>(fast(static_cast<float>(x))));
    }
    tally(OpClass::Libm, 1, OpCosts::kLibm);
    return finish(precise(x));
  }

  [[nodiscard]] static long double widen(double x) {
    return static_cast<long double>(x);
  }
  [[nodiscard]] static double narrow(long double x) {
    return static_cast<double>(x);
  }

  double probe(double x, const std::source_location& loc) {
    return hook_ ? hook_->visit(fn_, x, loc) : x;
  }

  double finish(double r) const {
    if (sem_->flush_subnormals && r != 0.0 && std::fpclassify(r) == FP_SUBNORMAL) {
      return std::copysign(0.0, r);
    }
    return r;
  }

  void tally(OpClass cls, std::uint64_t n, double per_op) {
    cnt_->tally(cls, n, static_cast<double>(n) * per_op * cost_->time_scale);
  }
  void tally_bulk(OpClass cls, std::uint64_t n, double per_op) {
    cnt_->tally(cls, n, static_cast<double>(n) * per_op * cost_->time_scale /
                            cost_->bulk_scale);
  }

  const FpSemantics* sem_;
  const CostFactors* cost_;
  OpCounter* cnt_;
  InjectionHook* hook_;
  FunctionId fn_;
  bool wide_ = false;

  friend class EvalContext;
};

inline FpEnv EvalContext::fn(FunctionId id) {
  FpEnv env(map_.binding(id), counter_, hook_, id);
  env.wide_ = env.sem().extended_precision;
  return env;
}

/// Context in which every registered function runs under strict IEEE
/// semantics at unit cost -- the "trusted baseline binary".
inline EvalContext strict_context() {
  return EvalContext(SemanticsMap(global_code_model().function_count()));
}

/// Context in which every registered function runs under `b`.
inline EvalContext uniform_context(const FnBinding& b) {
  return EvalContext(
      SemanticsMap::uniform(global_code_model().function_count(), b));
}

}  // namespace flit::fpsem
