#pragma once

// Deterministic performance accounting.  Every FpEnv operation reports
// itself here; the accumulated "cycles" stand in for wall-clock runtime so
// that the paper's speedup axis is reproducible on any machine.

#include <array>
#include <cstdint>

namespace flit::fpsem {

enum class OpClass : std::uint8_t {
  Add = 0,
  Sub,
  Mul,
  Div,
  Sqrt,
  Fma,
  Libm,
  kCount
};

/// Baseline per-operation costs in abstract cycles (roughly Skylake-era
/// latencies).  Unsafe-math and fast-libm semantics substitute the cheaper
/// variants.
struct OpCosts {
  // kFma is deliberately close to kMul + kAdd: fused kernels halve the
  // arithmetic but the paper's workloads are memory-bound, so contraction
  // buys only a modest speedup.
  static constexpr double kAdd = 1.0;
  static constexpr double kMul = 1.0;
  static constexpr double kFma = 1.95;
  static constexpr double kDiv = 13.0;
  static constexpr double kDivFast = 13.0;
  static constexpr double kSqrt = 15.0;
  static constexpr double kSqrtFast = 15.0;
  static constexpr double kLibm = 45.0;
  static constexpr double kLibmFast = 27.0;
};

class OpCounter {
 public:
  void tally(OpClass cls, std::uint64_t n, double cycles) {
    counts_[static_cast<std::size_t>(cls)] += n;
    cycles_ += cycles;
  }

  [[nodiscard]] double cycles() const { return cycles_; }
  [[nodiscard]] std::uint64_t count(OpClass cls) const {
    return counts_[static_cast<std::size_t>(cls)];
  }
  [[nodiscard]] std::uint64_t total_ops() const {
    std::uint64_t t = 0;
    for (auto c : counts_) t += c;
    return t;
  }

  void reset() {
    cycles_ = 0.0;
    counts_.fill(0);
  }

 private:
  double cycles_ = 0.0;
  std::array<std::uint64_t, static_cast<std::size_t>(OpClass::kCount)>
      counts_{};
};

}  // namespace flit::fpsem
