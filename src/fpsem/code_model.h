#pragma once

// The code model is the simulated application's symbol table: which source
// files exist, which functions live in each file, which of those are
// globally exported (strong symbols a linker can swap) and which are
// internal (static or always-inlined, reachable only through a host
// symbol).  FLiT Bisect searches over exactly this structure.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace flit::fpsem {

/// Dense index of a registered function within a CodeModel.
using FunctionId = std::uint32_t;

inline constexpr FunctionId kInvalidFunction = ~FunctionId{0};

/// Static metadata for one function of the simulated application.
struct FunctionInfo {
  std::string name;  ///< symbol name, e.g. "Vector::dot"
  std::string file;  ///< owning source file, e.g. "linalg/vector.cpp"

  /// Globally exported strong symbol (replaceable by Symbol Bisect).
  bool exported = true;

  /// For internal functions: the exported symbol through which callers
  /// reach it.  Symbol Bisect reports this host symbol ("indirect find").
  std::string host_symbol;

  /// Calls transcendental libm functions; affected by link-step fast-libm
  /// substitution (the Intel behaviour of Sec. 3.1).
  bool uses_libm = false;

  /// Small and cross-TU inlinable: without -fPIC, replacing its symbol
  /// does not replace the inlined copies, so variability it causes can
  /// vanish or persist when the file is rebuilt for Symbol Bisect.
  bool inline_candidate = false;

  friend bool operator==(const FunctionInfo&, const FunctionInfo&) = default;
};

/// Registry of files and functions making up one simulated application.
class CodeModel {
 public:
  /// Registers a function; names must be unique within the model.
  FunctionId add(FunctionInfo info);

  /// Idempotent add: when a function with the same name is already
  /// registered with an *identical* record, returns its id instead of
  /// throwing -- the registration hook generated-kernel suites use, since
  /// an installer may run more than once per process (CLI dispatch plus a
  /// test fixture, say).  A same-name registration whose metadata differs
  /// is still a hard error: silently keeping the old record would leave
  /// the model disagreeing with the caller about exportedness or libm use.
  FunctionId ensure(FunctionInfo info);

  [[nodiscard]] const FunctionInfo& info(FunctionId id) const {
    return fns_.at(id);
  }
  [[nodiscard]] std::size_t function_count() const { return fns_.size(); }

  /// Looks a function up by symbol name.
  [[nodiscard]] std::optional<FunctionId> find(std::string_view name) const;

  /// All distinct source files, in first-registration order.
  [[nodiscard]] const std::vector<std::string>& files() const {
    return files_;
  }

  /// All functions defined in `file` (exported and internal).
  [[nodiscard]] std::vector<FunctionId> functions_in(
      std::string_view file) const;

  /// Exported symbol names defined in `file` -- the Symbol Bisect search
  /// space for that file.
  [[nodiscard]] std::vector<std::string> exported_symbols_of(
      std::string_view file) const;

  /// Functions bound to the variable compilation when the symbol set
  /// `chosen` (exported names from `file`) is taken from the variable
  /// object: the chosen exported functions plus every internal function
  /// whose host symbol is chosen.
  [[nodiscard]] std::vector<FunctionId> functions_covered_by(
      std::string_view file, const std::vector<std::string>& chosen) const;

  [[nodiscard]] double average_functions_per_file() const;

 private:
  std::vector<FunctionInfo> fns_;
  std::unordered_map<std::string, FunctionId> by_name_;
  std::vector<std::string> files_;
  std::unordered_map<std::string, std::vector<FunctionId>> by_file_;
};

/// The process-wide model that statically-registered application kernels
/// (linalg, mfemini, laghos, lulesh) add themselves to.
CodeModel& global_code_model();

/// Static-initialization helper used by kernel translation units.
FunctionId register_fn(FunctionInfo info);

}  // namespace flit::fpsem
