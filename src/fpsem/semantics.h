#pragma once

// Floating-point semantics records.
//
// A compilation (compiler, optimization level, switches) is mapped by the
// toolchain's derivation rules (src/toolchain/semantics_rules.h) to one of
// these records.  Application kernels evaluate their numerics *through* an
// FpEnv bound to such a record, so every mechanism the paper blames for
// compiler-induced variability -- FMA contraction, vector-lane
// reassociation, extended-precision intermediates, unsafe-math rewrites,
// subnormal flushing and fast vendor libm substitution -- is reproduced in
// real IEEE-754 arithmetic instead of being faked with noise.

#include <compare>
#include <cstdint>

namespace flit::fpsem {

/// How a compilation evaluates floating-point arithmetic.
struct FpSemantics {
  /// Contract `a*b + c` chains into fused multiply-add (one rounding).
  bool contract_fma = false;

  /// Number of independent accumulator lanes used for reductions
  /// (sum/dot/norm).  1 means strict left-to-right IEEE order; >1 models
  /// the reassociation a vectorizer performs when the compiler is allowed
  /// to treat FP addition as associative.
  int reassoc_width = 1;

  /// Keep intermediate accumulations in `long double` (x87-style 80-bit
  /// extended precision), rounding to double only at the end.
  bool extended_precision = false;

  /// Value-unsafe scalar rewrites: division becomes multiplication by a
  /// reciprocal, sqrt goes through a refined reciprocal square root,
  /// pow(x,y) becomes exp(y*log(x)).
  bool unsafe_math = false;

  /// Flush subnormal results to zero (FTZ/DAZ).
  bool flush_subnormals = false;

  /// Use the vendor's fast low-accuracy transcendental library (what the
  /// Intel link step substitutes regardless of per-TU flags).
  bool fast_libm = false;

  /// The optimizer exploits undefined behaviour aggressively enough to
  /// break UB-dependent idioms (models the xlc++ -O3 behaviour that turned
  /// Laghos' XOR-swap macro into garbage).
  bool exploits_ub = false;

  friend bool operator==(const FpSemantics&, const FpSemantics&) = default;

  /// True when this record reproduces the strict baseline bit-for-bit.
  [[nodiscard]] bool strict() const { return *this == FpSemantics{}; }
};

/// Deterministic performance model attached to each compiled function.
/// Runtime is accounted in abstract "cycles": every FpEnv operation adds
/// op_cost * time_scale, and bulk (loop) operations are further divided by
/// bulk_scale to model SIMD throughput.  Using a cost model instead of
/// wall-clock timing makes the performance axis of the study reproducible
/// on any host.
struct CostFactors {
  double time_scale = 1.0;  ///< scalar slowdown (O0 is ~3x, O3 < 1x)
  double bulk_scale = 1.0;  ///< SIMD speedup applied to vectorizable loops

  friend bool operator==(const CostFactors&, const CostFactors&) = default;
};

/// What a linked binary knows about one function: the semantics its
/// instructions follow and the speed they execute at.
struct FnBinding {
  FpSemantics sem;
  CostFactors cost;

  friend bool operator==(const FnBinding&, const FnBinding&) = default;
};

}  // namespace flit::fpsem
