#include "fpsem/code_model.h"

#include <algorithm>
#include <stdexcept>

namespace flit::fpsem {

FunctionId CodeModel::add(FunctionInfo info) {
  if (info.name.empty() || info.file.empty()) {
    throw std::invalid_argument("FunctionInfo requires name and file");
  }
  if (by_name_.contains(info.name)) {
    throw std::invalid_argument("duplicate function name: " + info.name);
  }
  if (!info.exported && info.host_symbol.empty()) {
    throw std::invalid_argument("internal function '" + info.name +
                                "' needs a host_symbol");
  }
  const auto id = static_cast<FunctionId>(fns_.size());
  by_name_.emplace(info.name, id);
  auto [it, inserted] = by_file_.try_emplace(info.file);
  if (inserted) files_.push_back(info.file);
  it->second.push_back(id);
  fns_.push_back(std::move(info));
  return id;
}

FunctionId CodeModel::ensure(FunctionInfo info) {
  const auto it = by_name_.find(info.name);
  if (it == by_name_.end()) return add(std::move(info));
  if (fns_[it->second] != info) {
    throw std::invalid_argument("conflicting re-registration of function '" +
                                info.name + "'");
  }
  return it->second;
}

std::optional<FunctionId> CodeModel::find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::vector<FunctionId> CodeModel::functions_in(std::string_view file) const {
  auto it = by_file_.find(std::string(file));
  if (it == by_file_.end()) return {};
  return it->second;
}

std::vector<std::string> CodeModel::exported_symbols_of(
    std::string_view file) const {
  std::vector<std::string> out;
  for (FunctionId id : functions_in(file)) {
    if (fns_[id].exported) out.push_back(fns_[id].name);
  }
  return out;
}

std::vector<FunctionId> CodeModel::functions_covered_by(
    std::string_view file, const std::vector<std::string>& chosen) const {
  std::vector<FunctionId> out;
  const auto is_chosen = [&](const std::string& sym) {
    return std::find(chosen.begin(), chosen.end(), sym) != chosen.end();
  };
  for (FunctionId id : functions_in(file)) {
    const FunctionInfo& fi = fns_[id];
    if (fi.exported ? is_chosen(fi.name) : is_chosen(fi.host_symbol)) {
      out.push_back(id);
    }
  }
  return out;
}

double CodeModel::average_functions_per_file() const {
  if (files_.empty()) return 0.0;
  return static_cast<double>(fns_.size()) / static_cast<double>(files_.size());
}

CodeModel& global_code_model() {
  static CodeModel model;
  return model;
}

FunctionId register_fn(FunctionInfo info) {
  return global_code_model().add(std::move(info));
}

}  // namespace flit::fpsem
