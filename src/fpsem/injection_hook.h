#pragma once

// Reproduction of the paper's LLVM perturbation-injection pass (Sec. 3.5).
//
// A static injection *site* is one floating-point instruction, identified
// by (function, source file, line, column) -- we get the instruction
// identity from std::source_location at the FpEnv call site, which plays
// the role of the LLVM IR instruction address.  Pass 1 (Record mode)
// enumerates every site an execution reaches; pass 2 (Inject mode) arms a
// single site with `x OP' eps` applied to the first operand before the
// original `x OP y`, exactly the paper's transformation.

#include <cstdint>
#include <functional>
#include <set>
#include <source_location>
#include <string>
#include <vector>

#include "fpsem/code_model.h"

namespace flit::fpsem {

/// The four basic operations the paper injects with (OP').
enum class InjectOp : std::uint8_t { Add, Sub, Mul, Div };

[[nodiscard]] constexpr const char* to_string(InjectOp op) {
  switch (op) {
    case InjectOp::Add: return "+";
    case InjectOp::Sub: return "-";
    case InjectOp::Mul: return "*";
    case InjectOp::Div: return "/";
  }
  return "?";
}

/// One static floating-point instruction of the simulated application.
struct InjectionSite {
  FunctionId fn = kInvalidFunction;
  std::string file;       ///< host source file (from source_location)
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  friend auto operator<=>(const InjectionSite&, const InjectionSite&) =
      default;
};

/// Record-or-inject hook consulted by every FpEnv basic operation.
class InjectionHook {
 public:
  enum class Mode { Record, Inject };

  /// Pass 1: enumerate reachable sites.
  static InjectionHook recorder() { return InjectionHook(Mode::Record); }

  /// Pass 2: arm `site` with perturbation `x -> x OP' eps`.
  static InjectionHook injector(InjectionSite site, InjectOp op, double eps) {
    InjectionHook h(Mode::Inject);
    h.target_ = std::move(site);
    h.op_ = op;
    h.eps_ = eps;
    return h;
  }

  [[nodiscard]] Mode mode() const { return mode_; }

  /// Function containing the armed site (Inject mode only).
  [[nodiscard]] FunctionId target_fn() const { return target_.fn; }

  /// Called by FpEnv for operand `x` of every basic FP instruction.
  [[nodiscard]] double visit(FunctionId fn, double x,
                             const std::source_location& loc) {
    if (mode_ == Mode::Record) {
      sites_.insert(InjectionSite{fn, loc.file_name(), loc.line(),
                                  loc.column()});
      return x;
    }
    if (fn == target_.fn && loc.line() == target_.line &&
        loc.column() == target_.column && target_.file == loc.file_name()) {
      ++hits_;
      switch (op_) {
        case InjectOp::Add: return x + eps_;
        case InjectOp::Sub: return x - eps_;
        case InjectOp::Mul: return x * eps_;
        case InjectOp::Div: return x / eps_;
      }
    }
    return x;
  }

  /// Sites discovered in Record mode, in deterministic order.
  [[nodiscard]] std::vector<InjectionSite> sites() const {
    return {sites_.begin(), sites_.end()};
  }

  /// Number of dynamic executions of the armed site (Inject mode).
  [[nodiscard]] std::uint64_t hits() const { return hits_; }

 private:
  explicit InjectionHook(Mode m) : mode_(m) {}

  Mode mode_;
  std::set<InjectionSite> sites_;
  InjectionSite target_;
  InjectOp op_ = InjectOp::Add;
  double eps_ = 0.0;
  std::uint64_t hits_ = 0;
};

}  // namespace flit::fpsem
