#include "geom/predicates.h"

#include "fpsem/code_model.h"

namespace flit::geom {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kOrient = register_fn({
    .name = "Geom::Orient2D",
    .file = "geom/predicates.cpp",
    .inline_candidate = true,
});
const fpsem::FunctionId kIncircle = register_fn({
    .name = "Geom::InCircle",
    .file = "geom/predicates.cpp",
});

}  // namespace

double orient2d(fpsem::EvalContext& ctx, const Point& a, const Point& b,
                const Point& c) {
  fpsem::FpEnv env = ctx.fn(kOrient);
  // (bx-ax)(cy-ay) - (by-ay)(cx-ax), with the second product folded into
  // an FMA when the compilation contracts -- the canonical sign-unstable
  // determinant.
  const double acx = env.sub(b.x, a.x);
  const double acy = env.sub(c.y, a.y);
  const double bcy = env.sub(b.y, a.y);
  const double bcx = env.sub(c.x, a.x);
  return env.mul_add(acx, acy, -env.mul(bcy, bcx));
}

double incircle(fpsem::EvalContext& ctx, const Point& a, const Point& b,
                const Point& c, const Point& d) {
  fpsem::FpEnv env = ctx.fn(kIncircle);
  const double adx = env.sub(a.x, d.x);
  const double ady = env.sub(a.y, d.y);
  const double bdx = env.sub(b.x, d.x);
  const double bdy = env.sub(b.y, d.y);
  const double cdx = env.sub(c.x, d.x);
  const double cdy = env.sub(c.y, d.y);
  const double ad2 = env.mul_add(adx, adx, env.mul(ady, ady));
  const double bd2 = env.mul_add(bdx, bdx, env.mul(bdy, bdy));
  const double cd2 = env.mul_add(cdx, cdx, env.mul(cdy, cdy));
  const double m1 = env.sub(env.mul(bdx, cdy), env.mul(cdx, bdy));
  const double m2 = env.sub(env.mul(adx, cdy), env.mul(cdx, ady));
  const double m3 = env.sub(env.mul(adx, bdy), env.mul(bdx, ady));
  return env.add(env.sub(env.mul(ad2, m1), env.mul(bd2, m2)),
                 env.mul(cd2, m3));
}

std::vector<std::string> geom_source_files() {
  return {"geom/predicates.cpp", "geom/hull.cpp"};
}

}  // namespace flit::geom
