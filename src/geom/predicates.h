#pragma once

// Computational-geometry substrate (the Sec. 5 CGAL case study): floating-
// point geometric predicates and a convex hull built on them.  The
// orientation predicate is a 2x2 determinant of differences -- the classic
// cancellation-prone expression whose *sign* flips under FMA contraction,
// turning compiler-induced variability into changed discrete answers
// (different hull sizes), exactly what the paper observed on CGAL.

#include <cstddef>
#include <string>
#include <vector>

#include "core/test_base.h"
#include "fpsem/env.h"

namespace flit::geom {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Sign of the orientation determinant of (a, b, c):
///   > 0 counterclockwise, < 0 clockwise, == 0 collinear.
/// Computed in plain floating point through the compilation's semantics
/// (registered kernel "Geom::Orient2D" in geom/predicates.cpp).
double orient2d(fpsem::EvalContext& ctx, const Point& a, const Point& b,
                const Point& c);

/// In-circle predicate for (a, b, c, d): positive when d lies inside the
/// circumcircle of the counterclockwise triangle (a, b, c).
double incircle(fpsem::EvalContext& ctx, const Point& a, const Point& b,
                const Point& c, const Point& d);

/// Andrew monotone-chain convex hull (points are sorted internally).
/// Uses orient2d, so the hull's vertex set -- a discrete answer -- depends
/// on the compilation when near-collinear points are present.
std::vector<Point> convex_hull(fpsem::EvalContext& ctx,
                               std::vector<Point> points);

/// Twice the signed area of a polygon (shoelace through the semantics).
double polygon_area2(fpsem::EvalContext& ctx,
                     const std::vector<Point>& poly);

/// The source files of the geometry application (Bisect scope).
std::vector<std::string> geom_source_files();

/// Deterministic near-collinear point cloud: `n` points on a slightly
/// perturbed line plus a few off-line anchors.  The perturbations sit at
/// the rounding threshold of orient2d, so hull membership of individual
/// points is compilation-dependent.
std::vector<Point> near_collinear_cloud(std::size_t n);

/// FLiT test: hull size, area and vertices of the near-collinear cloud.
class HullTest final : public core::TestBase {
 public:
  explicit HullTest(std::size_t n = 48) : n_(n) {}

  [[nodiscard]] std::string name() const override { return "GeomHull"; }
  [[nodiscard]] std::size_t getInputsPerRun() const override { return 0; }
  [[nodiscard]] std::vector<double> getDefaultInput() const override {
    return {};
  }
  [[nodiscard]] core::TestResult run_impl(
      const std::vector<double>&, fpsem::EvalContext& ctx) const override;
  using core::TestBase::compare;
  [[nodiscard]] long double compare(const std::string& baseline,
                                    const std::string& test) const override;

 private:
  std::size_t n_;
};

}  // namespace flit::geom
