// geom/hull.cpp -- Andrew monotone-chain convex hull on the floating-
// point orientation predicate, the near-collinear workload, and the FLiT
// adapter.

#include <algorithm>
#include <cmath>
#include <sstream>

#include "fpsem/code_model.h"
#include "geom/predicates.h"
#include "linalg/vector.h"

namespace flit::geom {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kHull = register_fn({
    .name = "Geom::ConvexHull",
    .file = "geom/hull.cpp",
});
const fpsem::FunctionId kArea = register_fn({
    .name = "Geom::PolygonArea",
    .file = "geom/hull.cpp",
});

}  // namespace

std::vector<Point> convex_hull(fpsem::EvalContext& ctx,
                               std::vector<Point> pts) {
  (void)ctx.fn(kHull);  // driver marker; FP work happens in orient2d
  std::sort(pts.begin(), pts.end(), [](const Point& a, const Point& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  if (pts.size() < 3) return pts;

  std::vector<Point> hull(2 * pts.size());
  std::size_t k = 0;
  // lower hull
  for (const Point& p : pts) {
    while (k >= 2 && orient2d(ctx, hull[k - 2], hull[k - 1], p) <= 0.0) {
      --k;
    }
    hull[k++] = p;
  }
  // upper hull
  const std::size_t lower = k + 1;
  for (std::size_t i = pts.size() - 1; i-- > 0;) {
    while (k >= lower &&
           orient2d(ctx, hull[k - 2], hull[k - 1], pts[i]) <= 0.0) {
      --k;
    }
    hull[k++] = pts[i];
  }
  hull.resize(k - 1);
  return hull;
}

double polygon_area2(fpsem::EvalContext& ctx,
                     const std::vector<Point>& poly) {
  fpsem::FpEnv env = ctx.fn(kArea);
  double acc = 0.0;
  for (std::size_t i = 0; i < poly.size(); ++i) {
    const Point& a = poly[i];
    const Point& b = poly[(i + 1) % poly.size()];
    acc = env.add(acc, env.sub(env.mul(a.x, b.y), env.mul(b.x, a.y)));
  }
  return acc;
}

std::vector<Point> near_collinear_cloud(std::size_t n) {
  std::vector<Point> pts;
  pts.reserve(n + 4);
  // Anchor square so the hull is non-degenerate.
  pts.push_back({0.0, -1.0});
  pts.push_back({1.0, -1.0});
  pts.push_back({0.0, 1.5});
  pts.push_back({1.0, 1.5});
  // Points on the line y = x/3 + 1/7 with rounding-level vertical offsets:
  // whether each one is *above* the chord between its neighbours is
  // decided in the last ulp of orient2d.
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i + 1) / static_cast<double>(n + 1);
    const double y = x / 3.0 + 1.0 / 7.0;
    // deterministic sub-ulp dither: membership decisions land inside the
    // rounding band of orient2d, where FMA contraction decides the sign
    const double dither =
        std::ldexp(static_cast<double>((i * 2654435761u) % 7) - 3.0, -56);
    pts.push_back({x, y + y * dither});
  }
  // Push the line to the top edge region so its points compete for hull
  // membership: shift everything above the anchors.
  for (std::size_t i = 4; i < pts.size(); ++i) pts[i].y += 1.5;
  return pts;
}

core::TestResult HullTest::run_impl(const std::vector<double>&,
                                    fpsem::EvalContext& ctx) const {
  const auto hull = convex_hull(ctx, near_collinear_cloud(n_));
  linalg::Vector out(2 * hull.size() + 2);
  out[0] = static_cast<double>(hull.size());  // the discrete answer
  out[1] = polygon_area2(ctx, hull);
  for (std::size_t i = 0; i < hull.size(); ++i) {
    out[2 + 2 * i] = hull[i].x;
    out[3 + 2 * i] = hull[i].y;
  }
  return linalg::serialize(out);
}

long double HullTest::compare(const std::string& baseline,
                              const std::string& test) const {
  // Different hull sizes serialize to different lengths: the metric
  // saturates, flagging the discrete change loudly.
  return linalg::l2_string_metric(baseline, test, /*relative=*/true);
}

}  // namespace flit::geom
