#pragma once

// Iterative solvers (file "mfemini/solvers.cpp"): conjugate gradients,
// stationary Gauss-Seidel iteration, Jacobi preconditioning and the
// two-level transfer operators.  The CG residual test is the kind of
// data-dependent branch through which tiny compiler-induced differences
// become different iteration paths (MFEM example 8 / Finding 1).

#include <functional>

#include "fpsem/env.h"
#include "linalg/sparsemat.h"
#include "linalg/vector.h"

namespace flit::mfemini {

/// Abstract linear operator y = A x.
struct Operator {
  std::size_t size = 0;
  std::function<void(fpsem::EvalContext&, const linalg::Vector&,
                     linalg::Vector&)>
      mult;
};

/// Wraps a finalized SparseMatrix as an Operator.
Operator sparse_operator(const linalg::SparseMatrix& a);

struct SolveStats {
  int iterations = 0;
  double final_residual = 0.0;
  bool converged = false;
};

/// Conjugate gradients on A x = b; `x` holds the initial guess.
SolveStats cg_solve(fpsem::EvalContext& ctx, const Operator& a,
                    const linalg::Vector& b, linalg::Vector& x,
                    double rel_tol, int max_iter);

/// Jacobi-preconditioned conjugate gradients: `diag` is the operator's
/// diagonal (the preconditioner applies z = r ./ diag).
SolveStats pcg_solve(fpsem::EvalContext& ctx, const Operator& a,
                     const linalg::Vector& diag, const linalg::Vector& b,
                     linalg::Vector& x, double rel_tol, int max_iter);

/// Restarted GMRES(m) for nonsymmetric systems.
SolveStats gmres_solve(fpsem::EvalContext& ctx, const Operator& a,
                       const linalg::Vector& b, linalg::Vector& x,
                       double rel_tol, int restart, int max_outer);

/// Stationary linear iteration with forward Gauss-Seidel sweeps.
SolveStats sli_gauss_seidel(fpsem::EvalContext& ctx,
                            const linalg::SparseMatrix& a,
                            const linalg::Vector& b, linalg::Vector& x,
                            double rel_tol, int max_iter);

/// z = r ./ d (Jacobi preconditioner application).
void jacobi_apply(fpsem::EvalContext& ctx, const linalg::Vector& d,
                  const linalg::Vector& r, linalg::Vector& z);

/// 1D full-weighting restriction (fine -> coarse, coarse has (n+1)/2 nodes).
void restrict_1d(fpsem::EvalContext& ctx, const linalg::Vector& fine,
                 linalg::Vector& coarse);

/// 1D linear-interpolation prolongation (coarse -> fine).
void prolong_1d(fpsem::EvalContext& ctx, const linalg::Vector& coarse,
                linalg::Vector& fine);

}  // namespace flit::mfemini
