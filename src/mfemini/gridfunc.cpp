#include "mfemini/gridfunc.h"

#include "mfemini/eltrans.h"
#include "mfemini/fe.h"

namespace flit::mfemini {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kProject = register_fn({
    .name = "GridFunction::ProjectCoefficient",
    .file = "mfemini/gridfunc.cpp",
});
const fpsem::FunctionId kL2Error = register_fn({
    .name = "GridFunction::ComputeL2Error",
    .file = "mfemini/gridfunc.cpp",
});
// Per-element squared error, reachable only through ComputeL2Error.
const fpsem::FunctionId kElemError = register_fn({
    .name = "detail::element_l2_error_sq",
    .file = "mfemini/gridfunc.cpp",
    .exported = false,
    .host_symbol = "GridFunction::ComputeL2Error",
});
const fpsem::FunctionId kIntegrate = register_fn({
    .name = "GridFunction::Integrate",
    .file = "mfemini/gridfunc.cpp",
});
const fpsem::FunctionId kNodalNorm = register_fn({
    .name = "GridFunction::NodalNorm",
    .file = "mfemini/gridfunc.cpp",
    .inline_candidate = true,
});
const fpsem::FunctionId kRecoverGrad = register_fn({
    .name = "GridFunction::RecoverGradient1D",
    .file = "mfemini/gridfunc.cpp",
});

double element_values(fpsem::EvalContext& ctx, const GridFunction& gf,
                      std::size_t e, double xi, double eta) {
  const Mesh& mesh = gf.mesh();
  linalg::Vector n;
  if (mesh.dim() == 1) {
    shape_1d(ctx, xi, n);
  } else {
    shape_2d(ctx, xi, eta, n);
  }
  linalg::Vector dofs(mesh.nodes_per_element());
  const auto& el = mesh.element(e);
  for (std::size_t k = 0; k < dofs.size(); ++k) dofs[k] = gf[el[k]];
  return interpolate(ctx, n, dofs);
}

double element_l2_error_sq(fpsem::EvalContext& ctx, const GridFunction& gf,
                           const Coefficient& c, const QuadratureRule& rule,
                           std::size_t e) {
  fpsem::FpEnv env = ctx.fn(kElemError);
  const Mesh& mesh = gf.mesh();
  double acc = 0.0;
  if (mesh.dim() == 1) {
    const double j = jacobian_1d(ctx, mesh, e);
    for (std::size_t q = 0; q < rule.points.size(); ++q) {
      const double uh = element_values(ctx, gf, e, rule.points[q], 0.0);
      double px = 0.0, py = 0.0;
      map_to_physical(ctx, mesh, e, rule.points[q], 0.0, px, py);
      const double d = env.sub(uh, c.eval(ctx, px, py));
      acc = env.mul_add(env.mul(rule.weights[q], j), env.mul(d, d), acc);
    }
    return acc;
  }
  for (std::size_t qi = 0; qi < rule.points.size(); ++qi) {
    for (std::size_t qj = 0; qj < rule.points.size(); ++qj) {
      const double xi = rule.points[qi];
      const double eta = rule.points[qj];
      const double uh = element_values(ctx, gf, e, xi, eta);
      const Jacobian2D jac = jacobian_2d(ctx, mesh, e, xi, eta);
      double px = 0.0, py = 0.0;
      map_to_physical(ctx, mesh, e, xi, eta, px, py);
      const double d = env.sub(uh, c.eval(ctx, px, py));
      const double w = env.mul(env.mul(rule.weights[qi], rule.weights[qj]),
                               jac.det);
      acc = env.mul_add(w, env.mul(d, d), acc);
    }
  }
  return acc;
}

}  // namespace

void project_coefficient(fpsem::EvalContext& ctx, const Coefficient& c,
                         GridFunction& gf) {
  (void)ctx.fn(kProject);  // nodal assignment; FP work is in the coefficient
  const Mesh& mesh = gf.mesh();
  for (std::size_t i = 0; i < mesh.num_nodes(); ++i) {
    gf[i] = c.eval(ctx, mesh.x(i), mesh.y(i));
  }
}

double compute_l2_error(fpsem::EvalContext& ctx, const GridFunction& gf,
                        const Coefficient& c, const QuadratureRule& rule) {
  fpsem::FpEnv env = ctx.fn(kL2Error);
  double acc = 0.0;
  for (std::size_t e = 0; e < gf.mesh().num_elements(); ++e) {
    acc = env.add(acc, element_l2_error_sq(ctx, gf, c, rule, e));
  }
  return env.sqrt(acc);
}

double integrate_gf(fpsem::EvalContext& ctx, const GridFunction& gf,
                    const QuadratureRule& rule) {
  fpsem::FpEnv env = ctx.fn(kIntegrate);
  const Mesh& mesh = gf.mesh();
  double acc = 0.0;
  for (std::size_t e = 0; e < mesh.num_elements(); ++e) {
    if (mesh.dim() == 1) {
      const double j = jacobian_1d(ctx, mesh, e);
      for (std::size_t q = 0; q < rule.points.size(); ++q) {
        const double uh = element_values(ctx, gf, e, rule.points[q], 0.0);
        acc = env.mul_add(env.mul(rule.weights[q], j), uh, acc);
      }
    } else {
      for (std::size_t qi = 0; qi < rule.points.size(); ++qi) {
        for (std::size_t qj = 0; qj < rule.points.size(); ++qj) {
          const double xi = rule.points[qi];
          const double eta = rule.points[qj];
          const double uh = element_values(ctx, gf, e, xi, eta);
          const Jacobian2D jac = jacobian_2d(ctx, mesh, e, xi, eta);
          const double w = env.mul(
              env.mul(rule.weights[qi], rule.weights[qj]), jac.det);
          acc = env.mul_add(w, uh, acc);
        }
      }
    }
  }
  return acc;
}

double nodal_norm(fpsem::EvalContext& ctx, const GridFunction& gf) {
  fpsem::FpEnv env = ctx.fn(kNodalNorm);
  return env.norm2(gf.values().span());
}

void recover_gradient_1d(fpsem::EvalContext& ctx, const GridFunction& gf,
                         linalg::Vector& grad) {
  fpsem::FpEnv env = ctx.fn(kRecoverGrad);
  const Mesh& mesh = gf.mesh();
  grad.assign(mesh.num_nodes(), 0.0);
  linalg::Vector count(mesh.num_nodes(), 0.0);
  for (std::size_t e = 0; e < mesh.num_elements(); ++e) {
    const auto& el = mesh.element(e);
    const double j = jacobian_1d(ctx, mesh, e);
    const double slope = env.div(env.sub(gf[el[1]], gf[el[0]]), j);
    for (std::size_t k = 0; k < 2; ++k) {
      grad[el[k]] = env.add(grad[el[k]], slope);
      count[el[k]] = env.add(count[el[k]], 1.0);
    }
  }
  for (std::size_t i = 0; i < grad.size(); ++i) {
    grad[i] = env.div(grad[i], count[i]);
  }
}

}  // namespace flit::mfemini
