#include "mfemini/coefficients.h"

namespace flit::mfemini {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kEvalPoly = register_fn({
    .name = "PolyCoefficient::Eval",
    .file = "mfemini/coefficients.cpp",
    .inline_candidate = true,
});
const fpsem::FunctionId kEvalSin = register_fn({
    .name = "SinCoefficient::Eval",
    .file = "mfemini/coefficients.cpp",
    .uses_libm = true,
});
const fpsem::FunctionId kEvalExp = register_fn({
    .name = "ExpCoefficient::Eval",
    .file = "mfemini/coefficients.cpp",
    .uses_libm = true,
});
const fpsem::FunctionId kEvalPow = register_fn({
    .name = "PowCoefficient::Eval",
    .file = "mfemini/coefficients.cpp",
    .uses_libm = true,
});

}  // namespace

double PolyCoefficient::eval(fpsem::EvalContext& ctx, double x,
                             double y) const {
  fpsem::FpEnv env = ctx.fn(kEvalPoly);
  // a + b*x + c*y + d*x*y, evaluated as a chained mul_add.
  double acc = env.mul_add(b_, x, a_);
  acc = env.mul_add(c_, y, acc);
  return env.mul_add(d_, env.mul(x, y), acc);
}

double SinCoefficient::eval(fpsem::EvalContext& ctx, double x,
                            double y) const {
  fpsem::FpEnv env = ctx.fn(kEvalSin);
  return env.mul(amp_,
                 env.mul(env.sin(env.mul(fx_, x)), env.cos(env.mul(fy_, y))));
}

double ExpCoefficient::eval(fpsem::EvalContext& ctx, double x,
                            double y) const {
  fpsem::FpEnv env = ctx.fn(kEvalExp);
  const double dx = env.sub(x, cx_);
  const double dy = env.sub(y, cy_);
  const double r2 = env.mul_add(dx, dx, env.mul(dy, dy));
  return env.exp(env.mul(-k_, r2));
}

double PowCoefficient::eval(fpsem::EvalContext& ctx, double x,
                            double y) const {
  fpsem::FpEnv env = ctx.fn(kEvalPow);
  return env.pow(env.add(env.add(1.0, x), y), p_);
}

}  // namespace flit::mfemini
