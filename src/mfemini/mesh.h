#pragma once

// Minimal structured meshes (1D intervals, 2D quadrilateral grids) for the
// mini-MFEM library.  Mesh construction is structural (host arithmetic);
// the registered kernels (file "mfemini/mesh.cpp") are the geometric
// computations whose floating-point behaviour depends on the compilation:
// element sizes, total volume, and the curved sin-warp used by the
// higher-order examples (a libm user).

#include <array>
#include <cstddef>
#include <vector>

#include "fpsem/env.h"
#include "linalg/vector.h"

namespace flit::mfemini {

class Mesh {
 public:
  /// Uniform 1D mesh of `n` elements on [a, b].
  static Mesh interval(std::size_t n, double a = 0.0, double b = 1.0);

  /// nx-by-ny structured quadrilateral grid on the unit square.
  static Mesh quad_grid(std::size_t nx, std::size_t ny);

  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] std::size_t num_nodes() const { return x_.size(); }
  [[nodiscard]] std::size_t num_elements() const { return elems_.size(); }

  [[nodiscard]] double x(std::size_t node) const { return x_[node]; }
  [[nodiscard]] double y(std::size_t node) const { return y_[node]; }
  double& x(std::size_t node) { return x_[node]; }
  double& y(std::size_t node) { return y_[node]; }

  /// Nodes of element `e` (2 entries in 1D, 4 in 2D, counterclockwise).
  [[nodiscard]] const std::array<std::size_t, 4>& element(
      std::size_t e) const {
    return elems_[e];
  }

  [[nodiscard]] std::size_t nodes_per_element() const {
    return dim_ == 1 ? 2 : 4;
  }

  [[nodiscard]] bool is_boundary_node(std::size_t node) const {
    return boundary_[node];
  }

 private:
  int dim_ = 1;
  std::vector<double> x_, y_;
  std::vector<std::array<std::size_t, 4>> elems_;
  std::vector<bool> boundary_;
};

// ---- registered kernels (file "mfemini/mesh.cpp") ----------------------

/// Length (1D) or area (2D, shoelace formula) of element `e`.
double element_size(fpsem::EvalContext& ctx, const Mesh& mesh, std::size_t e);

/// Sum of all element sizes.
double total_volume(fpsem::EvalContext& ctx, const Mesh& mesh);

/// Applies the curved warp x += amp*sin(pi*x), y += amp*sin(pi*y)
/// in place (transcendental; affected by fast-libm substitution).
void curved_warp(fpsem::EvalContext& ctx, Mesh& mesh, double amp);

/// Mesh-size statistic: sqrt(sum of squared element sizes).
double size_norm(fpsem::EvalContext& ctx, const Mesh& mesh);

}  // namespace flit::mfemini
