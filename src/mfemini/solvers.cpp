#include "mfemini/solvers.h"

#include <cmath>
#include <stdexcept>

namespace flit::mfemini {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kCgSolve = register_fn({
    .name = "CG::Solve",
    .file = "mfemini/solvers.cpp",
});
const fpsem::FunctionId kPcgSolve = register_fn({
    .name = "PCG::Solve",
    .file = "mfemini/solvers.cpp",
});
const fpsem::FunctionId kGmres = register_fn({
    .name = "GMRES::Solve",
    .file = "mfemini/solvers.cpp",
});
// Givens-rotation update of the Hessenberg column; inlined into GMRES.
const fpsem::FunctionId kGivens = register_fn({
    .name = "detail::apply_givens",
    .file = "mfemini/solvers.cpp",
    .exported = false,
    .host_symbol = "GMRES::Solve",
});
const fpsem::FunctionId kSli = register_fn({
    .name = "SLI::Solve",
    .file = "mfemini/solvers.cpp",
});
const fpsem::FunctionId kJacobiApply = register_fn({
    .name = "Solvers::JacobiApply",
    .file = "mfemini/solvers.cpp",
    .inline_candidate = true,
});
const fpsem::FunctionId kRestrict = register_fn({
    .name = "Solvers::Restrict1D",
    .file = "mfemini/solvers.cpp",
});
const fpsem::FunctionId kProlong = register_fn({
    .name = "Solvers::Prolong1D",
    .file = "mfemini/solvers.cpp",
});

}  // namespace

Operator sparse_operator(const linalg::SparseMatrix& a) {
  return Operator{
      a.rows(),
      [&a](fpsem::EvalContext& ctx, const linalg::Vector& x,
           linalg::Vector& y) { linalg::mult(ctx, a, x, y); }};
}

SolveStats cg_solve(fpsem::EvalContext& ctx, const Operator& a,
                    const linalg::Vector& b, linalg::Vector& x,
                    double rel_tol, int max_iter) {
  if (x.size() != a.size || b.size() != a.size) {
    throw std::invalid_argument("cg_solve: size mismatch");
  }
  fpsem::FpEnv env = ctx.fn(kCgSolve);

  linalg::Vector r(a.size), ap(a.size);
  a.mult(ctx, x, ap);
  linalg::subtract(ctx, b, ap, r);
  linalg::Vector p = r;

  double rr = linalg::dot(ctx, r, r);
  const double bnorm = linalg::norml2(ctx, b);
  const double threshold =
      env.mul(rel_tol, bnorm != 0.0 ? bnorm : 1.0);

  SolveStats stats;
  for (int it = 0; it < max_iter; ++it) {
    if (env.sqrt(rr) <= threshold) {
      stats.converged = true;
      break;
    }
    a.mult(ctx, p, ap);
    const double pap = linalg::dot(ctx, p, ap);
    if (pap == 0.0) break;
    const double alpha = env.div(rr, pap);
    linalg::axpy(ctx, alpha, p, x);
    linalg::axpy(ctx, -alpha, ap, r);
    const double rr_next = linalg::dot(ctx, r, r);
    const double beta = env.div(rr_next, rr);
    // p = r + beta * p
    for (std::size_t i = 0; i < p.size(); ++i) {
      p[i] = env.mul_add(beta, p[i], r[i]);
    }
    rr = rr_next;
    ++stats.iterations;
  }
  stats.final_residual = env.sqrt(rr);
  return stats;
}

SolveStats pcg_solve(fpsem::EvalContext& ctx, const Operator& a,
                     const linalg::Vector& diag, const linalg::Vector& b,
                     linalg::Vector& x, double rel_tol, int max_iter) {
  if (x.size() != a.size || b.size() != a.size || diag.size() != a.size) {
    throw std::invalid_argument("pcg_solve: size mismatch");
  }
  fpsem::FpEnv env = ctx.fn(kPcgSolve);

  linalg::Vector r(a.size), z(a.size), ap(a.size);
  a.mult(ctx, x, ap);
  linalg::subtract(ctx, b, ap, r);
  jacobi_apply(ctx, diag, r, z);
  linalg::Vector p = z;

  double rz = linalg::dot(ctx, r, z);
  const double bnorm = linalg::norml2(ctx, b);
  const double threshold = env.mul(rel_tol, bnorm != 0.0 ? bnorm : 1.0);

  SolveStats stats;
  for (int it = 0; it < max_iter; ++it) {
    if (linalg::norml2(ctx, r) <= threshold) {
      stats.converged = true;
      break;
    }
    a.mult(ctx, p, ap);
    const double pap = linalg::dot(ctx, p, ap);
    if (pap == 0.0) break;
    const double alpha = env.div(rz, pap);
    linalg::axpy(ctx, alpha, p, x);
    linalg::axpy(ctx, -alpha, ap, r);
    jacobi_apply(ctx, diag, r, z);
    const double rz_next = linalg::dot(ctx, r, z);
    const double beta = env.div(rz_next, rz);
    for (std::size_t i = 0; i < p.size(); ++i) {
      p[i] = env.mul_add(beta, p[i], z[i]);
    }
    rz = rz_next;
    ++stats.iterations;
  }
  stats.final_residual = linalg::norml2(ctx, r);
  return stats;
}

namespace {

/// Applies and extends the Givens rotations of GMRES's QR factorization.
void apply_givens(fpsem::EvalContext& ctx, std::vector<double>& h,
                  std::vector<double>& cs, std::vector<double>& sn,
                  std::size_t k) {
  fpsem::FpEnv env = ctx.fn(kGivens);
  for (std::size_t i = 0; i < k; ++i) {
    const double t = env.add(env.mul(cs[i], h[i]), env.mul(sn[i], h[i + 1]));
    h[i + 1] =
        env.sub(env.mul(cs[i], h[i + 1]), env.mul(sn[i], h[i]));
    h[i] = t;
  }
  const double denom = env.sqrt(
      env.mul_add(h[k], h[k], env.mul(h[k + 1], h[k + 1])));
  if (denom == 0.0) {
    cs.push_back(1.0);
    sn.push_back(0.0);
  } else {
    cs.push_back(env.div(h[k], denom));
    sn.push_back(env.div(h[k + 1], denom));
  }
  h[k] = env.add(env.mul(cs[k], h[k]), env.mul(sn[k], h[k + 1]));
  h[k + 1] = 0.0;
}

}  // namespace

SolveStats gmres_solve(fpsem::EvalContext& ctx, const Operator& a,
                       const linalg::Vector& b, linalg::Vector& x,
                       double rel_tol, int restart, int max_outer) {
  if (x.size() != a.size || b.size() != a.size) {
    throw std::invalid_argument("gmres_solve: size mismatch");
  }
  fpsem::FpEnv env = ctx.fn(kGmres);
  const std::size_t n = a.size;
  const auto m = static_cast<std::size_t>(restart);

  const double bnorm = linalg::norml2(ctx, b);
  const double threshold = env.mul(rel_tol, bnorm != 0.0 ? bnorm : 1.0);

  SolveStats stats;
  for (int outer = 0; outer < max_outer; ++outer) {
    linalg::Vector r(n), ax(n);
    a.mult(ctx, x, ax);
    linalg::subtract(ctx, b, ax, r);
    const double beta = linalg::norml2(ctx, r);
    stats.final_residual = beta;
    if (beta <= threshold) {
      stats.converged = true;
      return stats;
    }

    std::vector<linalg::Vector> v;
    v.reserve(m + 1);
    v.push_back(r);
    linalg::scale(ctx, 1.0 / beta, v.back());

    // Hessenberg columns and the rotated residual vector g.
    std::vector<std::vector<double>> h;
    std::vector<double> cs, sn;
    std::vector<double> g(m + 1, 0.0);
    g[0] = beta;

    std::size_t k = 0;
    for (; k < m; ++k) {
      linalg::Vector w(n);
      a.mult(ctx, v[k], w);
      std::vector<double> hk(k + 2, 0.0);
      for (std::size_t i = 0; i <= k; ++i) {  // modified Gram-Schmidt
        hk[i] = linalg::dot(ctx, w, v[i]);
        linalg::axpy(ctx, -hk[i], v[i], w);
      }
      hk[k + 1] = linalg::norml2(ctx, w);
      const bool breakdown = hk[k + 1] == 0.0;
      if (!breakdown) {
        linalg::scale(ctx, 1.0 / hk[k + 1], w);
        v.push_back(w);
      }
      apply_givens(ctx, hk, cs, sn, k);
      h.push_back(std::move(hk));
      g[k + 1] = env.mul(-sn[k], g[k]);
      g[k] = env.mul(cs[k], g[k]);
      ++stats.iterations;
      stats.final_residual = std::fabs(g[k + 1]);
      if (breakdown || stats.final_residual <= threshold) {
        ++k;
        break;
      }
    }

    // Back-substitute y from the triangular system and update x.
    std::vector<double> y(k, 0.0);
    for (std::size_t i = k; i-- > 0;) {
      double acc = g[i];
      for (std::size_t j = i + 1; j < k; ++j) {
        acc = env.mul_add(-h[j][i], y[j], acc);
      }
      y[i] = env.div(acc, h[i][i]);
    }
    for (std::size_t i = 0; i < k; ++i) {
      linalg::axpy(ctx, y[i], v[i], x);
    }
    if (stats.final_residual <= threshold) {
      stats.converged = true;
      return stats;
    }
  }
  return stats;
}

SolveStats sli_gauss_seidel(fpsem::EvalContext& ctx,
                            const linalg::SparseMatrix& a,
                            const linalg::Vector& b, linalg::Vector& x,
                            double rel_tol, int max_iter) {
  fpsem::FpEnv env = ctx.fn(kSli);
  const double bnorm = linalg::norml2(ctx, b);
  const double threshold = env.mul(rel_tol, bnorm != 0.0 ? bnorm : 1.0);

  SolveStats stats;
  linalg::Vector r;
  for (int it = 0; it < max_iter; ++it) {
    linalg::gauss_seidel(ctx, a, b, x);
    linalg::residual(ctx, a, b, x, r);
    stats.final_residual = linalg::norml2(ctx, r);
    ++stats.iterations;
    if (stats.final_residual <= threshold) {
      stats.converged = true;
      break;
    }
  }
  return stats;
}

void jacobi_apply(fpsem::EvalContext& ctx, const linalg::Vector& d,
                  const linalg::Vector& r, linalg::Vector& z) {
  fpsem::FpEnv env = ctx.fn(kJacobiApply);
  z.resize(r.size());
  for (std::size_t i = 0; i < r.size(); ++i) {
    z[i] = env.div(r[i], d[i]);
  }
}

void restrict_1d(fpsem::EvalContext& ctx, const linalg::Vector& fine,
                 linalg::Vector& coarse) {
  if (fine.size() % 2 == 0) {
    throw std::invalid_argument("restrict_1d: fine size must be odd");
  }
  fpsem::FpEnv env = ctx.fn(kRestrict);
  const std::size_t nc = fine.size() / 2 + 1;
  coarse.resize(nc);
  coarse[0] = fine[0];
  coarse[nc - 1] = fine[fine.size() - 1];
  for (std::size_t i = 1; i + 1 < nc; ++i) {
    // full weighting: (f[2i-1] + 2 f[2i] + f[2i+1]) / 4
    const double mid = env.mul(2.0, fine[2 * i]);
    const double s = env.add(env.add(fine[2 * i - 1], mid), fine[2 * i + 1]);
    coarse[i] = env.mul(0.25, s);
  }
}

void prolong_1d(fpsem::EvalContext& ctx, const linalg::Vector& coarse,
                linalg::Vector& fine) {
  fpsem::FpEnv env = ctx.fn(kProlong);
  const std::size_t nf = coarse.size() * 2 - 1;
  fine.resize(nf);
  for (std::size_t i = 0; i < coarse.size(); ++i) {
    fine[2 * i] = coarse[i];
    if (2 * i + 1 < nf) {
      fine[2 * i + 1] =
          env.mul(0.5, env.add(coarse[i], coarse[i + 1]));
    }
  }
}

}  // namespace flit::mfemini
