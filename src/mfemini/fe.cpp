#include "mfemini/fe.h"

namespace flit::mfemini {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kShape1D = register_fn({
    .name = "FE::CalcShape1D",
    .file = "mfemini/fe.cpp",
    .inline_candidate = true,
});
const fpsem::FunctionId kDShape1D = register_fn({
    .name = "FE::CalcDShape1D",
    .file = "mfemini/fe.cpp",
    .inline_candidate = true,
});
const fpsem::FunctionId kShape2D = register_fn({
    .name = "FE::CalcShape2D",
    .file = "mfemini/fe.cpp",
});
const fpsem::FunctionId kDShape2D = register_fn({
    .name = "FE::CalcDShape2D",
    .file = "mfemini/fe.cpp",
});
const fpsem::FunctionId kInterpolate = register_fn({
    .name = "FE::Interpolate",
    .file = "mfemini/fe.cpp",
    .inline_candidate = true,
});

}  // namespace

void shape_1d(fpsem::EvalContext& ctx, double xi, linalg::Vector& n) {
  fpsem::FpEnv env = ctx.fn(kShape1D);
  n.resize(2);
  n[0] = env.sub(1.0, xi);
  n[1] = xi;
}

void dshape_1d(fpsem::EvalContext& ctx, linalg::Vector& dn) {
  (void)ctx.fn(kDShape1D);  // constant derivatives: no FP work
  dn.resize(2);
  dn[0] = -1.0;
  dn[1] = 1.0;
}

void shape_2d(fpsem::EvalContext& ctx, double xi, double eta,
              linalg::Vector& n) {
  fpsem::FpEnv env = ctx.fn(kShape2D);
  n.resize(4);
  const double xim = env.sub(1.0, xi);
  const double etam = env.sub(1.0, eta);
  n[0] = env.mul(xim, etam);
  n[1] = env.mul(xi, etam);
  n[2] = env.mul(xi, eta);
  n[3] = env.mul(xim, eta);
}

void dshape_2d(fpsem::EvalContext& ctx, double xi, double eta,
               linalg::Vector& dn_dxi, linalg::Vector& dn_deta) {
  fpsem::FpEnv env = ctx.fn(kDShape2D);
  dn_dxi.resize(4);
  dn_deta.resize(4);
  const double xim = env.sub(1.0, xi);
  const double etam = env.sub(1.0, eta);
  dn_dxi[0] = -etam;
  dn_dxi[1] = etam;
  dn_dxi[2] = eta;
  dn_dxi[3] = -eta;
  dn_deta[0] = -xim;
  dn_deta[1] = -xi;
  dn_deta[2] = xi;
  dn_deta[3] = xim;
}

double interpolate(fpsem::EvalContext& ctx, const linalg::Vector& shape,
                   const linalg::Vector& nodal_values) {
  fpsem::FpEnv env = ctx.fn(kInterpolate);
  return env.dot(shape.span(), nodal_values.span());
}

}  // namespace flit::mfemini
