#pragma once

// Finite element shape functions (linear segment, bilinear quad) -- the
// registered kernels of file "mfemini/fe.cpp".

#include "fpsem/env.h"
#include "linalg/vector.h"

namespace flit::mfemini {

/// Linear shape functions on the reference segment: N = (1-xi, xi).
void shape_1d(fpsem::EvalContext& ctx, double xi, linalg::Vector& n);

/// Their derivatives: dN/dxi = (-1, 1).
void dshape_1d(fpsem::EvalContext& ctx, linalg::Vector& dn);

/// Bilinear shape functions on the reference square (node order
/// counterclockwise from the origin).
void shape_2d(fpsem::EvalContext& ctx, double xi, double eta,
              linalg::Vector& n);

/// Reference-space gradients of the bilinear shape functions:
/// dn_dxi[k], dn_deta[k].
void dshape_2d(fpsem::EvalContext& ctx, double xi, double eta,
               linalg::Vector& dn_dxi, linalg::Vector& dn_deta);

/// Interpolates nodal values at a reference point: dot(shape, values).
double interpolate(fpsem::EvalContext& ctx, const linalg::Vector& shape,
                   const linalg::Vector& nodal_values);

}  // namespace flit::mfemini
