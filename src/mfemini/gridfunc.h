#pragma once

// Grid functions: finite element fields over a mesh (file
// "mfemini/gridfunc.cpp").

#include "fpsem/env.h"
#include "linalg/vector.h"
#include "mfemini/coefficients.h"
#include "mfemini/mesh.h"
#include "mfemini/quadrature.h"

namespace flit::mfemini {

/// Nodal field on a mesh (linear / bilinear H1 dofs are the mesh nodes).
class GridFunction {
 public:
  explicit GridFunction(const Mesh* mesh)
      : mesh_(mesh), values_(mesh->num_nodes(), 0.0) {}

  [[nodiscard]] const Mesh& mesh() const { return *mesh_; }
  [[nodiscard]] linalg::Vector& values() { return values_; }
  [[nodiscard]] const linalg::Vector& values() const { return values_; }

  double& operator[](std::size_t i) { return values_[i]; }
  const double& operator[](std::size_t i) const { return values_[i]; }

 private:
  const Mesh* mesh_;
  linalg::Vector values_;
};

// ---- registered kernels (file "mfemini/gridfunc.cpp") ------------------

/// Nodal interpolation of a coefficient.
void project_coefficient(fpsem::EvalContext& ctx, const Coefficient& c,
                         GridFunction& gf);

/// || u_h - c ||_{L2} by quadrature over every element.
double compute_l2_error(fpsem::EvalContext& ctx, const GridFunction& gf,
                        const Coefficient& c, const QuadratureRule& rule);

/// Integral of u_h over the domain.
double integrate_gf(fpsem::EvalContext& ctx, const GridFunction& gf,
                    const QuadratureRule& rule);

/// Nodal l2 norm of the field's dof vector.
double nodal_norm(fpsem::EvalContext& ctx, const GridFunction& gf);

/// Recovered nodal gradient of a 1D field (averaged element slopes).
void recover_gradient_1d(fpsem::EvalContext& ctx, const GridFunction& gf,
                         linalg::Vector& grad);

}  // namespace flit::mfemini
