#pragma once

// Gauss-Legendre quadrature on the reference interval [0, 1] and reference
// square, plus the registered integration kernels (file
// "mfemini/quadrature.cpp").

#include <cstddef>
#include <vector>

#include "fpsem/env.h"
#include "linalg/vector.h"

namespace flit::mfemini {

struct QuadratureRule {
  std::vector<double> points;   ///< in [0, 1]
  std::vector<double> weights;  ///< summing to 1

  /// Gauss-Legendre rule with `n` points (n = 1, 2, 3).
  static const QuadratureRule& gauss(std::size_t n);
};

// ---- registered kernels (file "mfemini/quadrature.cpp") ----------------

/// Weighted sum  scale * sum_q w_q f_q.
double integrate(fpsem::EvalContext& ctx, const QuadratureRule& rule,
                 const linalg::Vector& f_at_points, double scale);

/// Affine map of a reference point into [a, b]: a + (b-a) * xi.
double map_point(fpsem::EvalContext& ctx, double a, double b, double xi);

/// Tensor-product 2D weight w_i * w_j * scale.
double tensor_weight(fpsem::EvalContext& ctx, const QuadratureRule& rule,
                     std::size_t i, std::size_t j, double scale);

}  // namespace flit::mfemini
