#include "mfemini/eltrans.h"

#include "mfemini/fe.h"

namespace flit::mfemini {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kJac1D = register_fn({
    .name = "ElTrans::Jacobian1D",
    .file = "mfemini/eltrans.cpp",
    .inline_candidate = true,
});
const fpsem::FunctionId kJac2D = register_fn({
    .name = "ElTrans::Jacobian2D",
    .file = "mfemini/eltrans.cpp",
});
const fpsem::FunctionId kMapPhys = register_fn({
    .name = "ElTrans::MapToPhysical",
    .file = "mfemini/eltrans.cpp",
});
const fpsem::FunctionId kPhysGrad = register_fn({
    .name = "ElTrans::PhysicalGradients",
    .file = "mfemini/eltrans.cpp",
});
// Inverse-jacobian application, reachable only through PhysicalGradients.
const fpsem::FunctionId kInvJac = register_fn({
    .name = "detail::apply_inverse_jacobian",
    .file = "mfemini/eltrans.cpp",
    .exported = false,
    .host_symbol = "ElTrans::PhysicalGradients",
});

}  // namespace

double jacobian_1d(fpsem::EvalContext& ctx, const Mesh& mesh,
                   std::size_t e) {
  fpsem::FpEnv env = ctx.fn(kJac1D);
  const auto& el = mesh.element(e);
  return env.sub(mesh.x(el[1]), mesh.x(el[0]));
}

Jacobian2D jacobian_2d(fpsem::EvalContext& ctx, const Mesh& mesh,
                       std::size_t e, double xi, double eta) {
  linalg::Vector dxi, deta;
  dshape_2d(ctx, xi, eta, dxi, deta);

  fpsem::FpEnv env = ctx.fn(kJac2D);
  const auto& el = mesh.element(e);
  Jacobian2D j{0.0, 0.0, 0.0, 0.0, 0.0};
  for (std::size_t k = 0; k < 4; ++k) {
    j.dxdxi = env.mul_add(dxi[k], mesh.x(el[k]), j.dxdxi);
    j.dxdeta = env.mul_add(deta[k], mesh.x(el[k]), j.dxdeta);
    j.dydxi = env.mul_add(dxi[k], mesh.y(el[k]), j.dydxi);
    j.dydeta = env.mul_add(deta[k], mesh.y(el[k]), j.dydeta);
  }
  j.det = env.sub(env.mul(j.dxdxi, j.dydeta), env.mul(j.dxdeta, j.dydxi));
  return j;
}

void map_to_physical(fpsem::EvalContext& ctx, const Mesh& mesh, std::size_t e,
                     double xi, double eta, double& px, double& py) {
  linalg::Vector n;
  if (mesh.dim() == 1) {
    shape_1d(ctx, xi, n);
  } else {
    shape_2d(ctx, xi, eta, n);
  }
  fpsem::FpEnv env = ctx.fn(kMapPhys);
  const auto& el = mesh.element(e);
  px = 0.0;
  py = 0.0;
  for (std::size_t k = 0; k < mesh.nodes_per_element(); ++k) {
    px = env.mul_add(n[k], mesh.x(el[k]), px);
    py = env.mul_add(n[k], mesh.y(el[k]), py);
  }
}

namespace {

/// grad_phys = J^{-T} grad_ref for one shape function (internal helper).
void apply_inverse_jacobian(fpsem::EvalContext& ctx, const Jacobian2D& j,
                            double gxi, double geta, double& gx, double& gy) {
  fpsem::FpEnv env = ctx.fn(kInvJac);
  // J^{-T} = 1/det * [ dydeta, -dydxi; -dxdeta, dxdxi ]
  const double inv_det = env.div(1.0, j.det);
  gx = env.mul(inv_det, env.sub(env.mul(j.dydeta, gxi),
                                env.mul(j.dydxi, geta)));
  gy = env.mul(inv_det, env.sub(env.mul(j.dxdxi, geta),
                                env.mul(j.dxdeta, gxi)));
}

}  // namespace

void physical_gradients(fpsem::EvalContext& ctx, const Mesh& mesh,
                        std::size_t e, double xi, double eta,
                        linalg::Vector& grad_x, linalg::Vector& grad_y,
                        double& detj) {
  linalg::Vector dxi, deta;
  dshape_2d(ctx, xi, eta, dxi, deta);
  const Jacobian2D j = jacobian_2d(ctx, mesh, e, xi, eta);
  detj = j.det;
  (void)ctx.fn(kPhysGrad);  // ownership marker for the helper below
  grad_x.resize(4);
  grad_y.resize(4);
  for (std::size_t k = 0; k < 4; ++k) {
    apply_inverse_jacobian(ctx, j, dxi[k], deta[k], grad_x[k], grad_y[k]);
  }
}

}  // namespace flit::mfemini
