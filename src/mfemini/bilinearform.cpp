#include "mfemini/forms.h"

#include "linalg/densemat.h"

namespace flit::mfemini {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kAssemble = register_fn({
    .name = "BilinearForm::Assemble",
    .file = "mfemini/bilinearform.cpp",
});
const fpsem::FunctionId kEliminateBC = register_fn({
    .name = "BilinearForm::EliminateEssentialBC",
    .file = "mfemini/bilinearform.cpp",
});

}  // namespace

linalg::SparseMatrix assemble_bilinear(
    fpsem::EvalContext& ctx, const Mesh& mesh,
    const ElementMatrixFn& element_matrix) {
  const std::size_t n = mesh.num_nodes();
  linalg::SparseMatrix a(n, n);
  fpsem::FpEnv env = ctx.fn(kAssemble);
  linalg::DenseMatrix m;
  for (std::size_t e = 0; e < mesh.num_elements(); ++e) {
    element_matrix(ctx, mesh, e, m);
    const auto& el = mesh.element(e);
    for (std::size_t i = 0; i < m.rows(); ++i) {
      for (std::size_t j = 0; j < m.cols(); ++j) {
        // Scatter through the assembly environment so the accumulation of
        // duplicate entries belongs to this translation unit's semantics.
        a.add(el[i], el[j], env.mul(1.0, m(i, j)));
      }
    }
  }
  a.finalize();
  return a;
}

void eliminate_essential_bc(fpsem::EvalContext& ctx, const Mesh& mesh,
                            linalg::SparseMatrix& a, linalg::Vector& rhs,
                            double value) {
  fpsem::FpEnv env = ctx.fn(kEliminateBC);
  const auto& rs = a.row_start();
  const auto& ci = a.col_index();
  auto& v = a.values();
  // Move boundary-column contributions to the RHS, then zero rows/columns.
  for (std::size_t r = 0; r < a.rows(); ++r) {
    if (mesh.is_boundary_node(r)) continue;
    for (std::size_t k = rs[r]; k < rs[r + 1]; ++k) {
      if (mesh.is_boundary_node(ci[k])) {
        rhs[r] = env.mul_add(-v[k], value, rhs[r]);
        v[k] = 0.0;
      }
    }
  }
  for (std::size_t r = 0; r < a.rows(); ++r) {
    if (!mesh.is_boundary_node(r)) continue;
    for (std::size_t k = rs[r]; k < rs[r + 1]; ++k) {
      v[k] = ci[k] == r ? 1.0 : 0.0;
    }
    rhs[r] = value;
  }
}

}  // namespace flit::mfemini
