#include "mfemini/examples.h"

#include <stdexcept>

#include "linalg/densemat.h"
#include "linalg/sparsemat.h"
#include "mfemini/coefficients.h"
#include "mfemini/forms.h"
#include "mfemini/gridfunc.h"
#include "mfemini/integrators.h"
#include "mfemini/mesh.h"
#include "mfemini/quadrature.h"
#include "mfemini/solvers.h"

namespace flit::mfemini {

namespace {

using linalg::DenseMatrix;
using linalg::SparseMatrix;
using linalg::Vector;

Vector append(Vector v, double x) {
  v.resize(v.size() + 1);
  v[v.size() - 1] = x;
  return v;
}

ElementMatrixFn diffusion_fn(const Coefficient& k, const QuadratureRule& r) {
  return [&k, &r](fpsem::EvalContext& ctx, const Mesh& m, std::size_t e,
                  DenseMatrix& out) {
    diffusion_element_matrix(ctx, m, e, k, r, out);
  };
}

ElementMatrixFn mass_fn(const Coefficient& c, const QuadratureRule& r) {
  return [&c, &r](fpsem::EvalContext& ctx, const Mesh& m, std::size_t e,
                  DenseMatrix& out) {
    mass_element_matrix(ctx, m, e, c, r, out);
  };
}

/// ex1: 1D Poisson with unit coefficient and unit load, CG solve.
Vector ex01(fpsem::EvalContext& ctx) {
  const Mesh mesh = Mesh::interval(32);
  const ConstantCoefficient one(1.0);
  const QuadratureRule& rule = QuadratureRule::gauss(2);
  SparseMatrix a = assemble_bilinear(ctx, mesh, diffusion_fn(one, rule));
  Vector b = assemble_domain_lf(ctx, mesh, one, rule);
  eliminate_essential_bc(ctx, mesh, a, b, 0.0);
  Vector x(mesh.num_nodes(), 0.0);
  cg_solve(ctx, sparse_operator(a), b, x, 0.0, 16);
  return x;
}

/// ex2: 2D Poisson with polynomial diffusion coefficient.
Vector ex02(fpsem::EvalContext& ctx) {
  const Mesh mesh = Mesh::quad_grid(6, 6);
  const PolyCoefficient k(1.0, 0.5, 0.25, 0.125);
  const PolyCoefficient f(1.0, -0.5, 0.75, 0.0);
  const QuadratureRule& rule = QuadratureRule::gauss(2);
  SparseMatrix a = assemble_bilinear(ctx, mesh, diffusion_fn(k, rule));
  Vector b = assemble_domain_lf(ctx, mesh, f, rule);
  eliminate_essential_bc(ctx, mesh, a, b, 0.0);
  Vector x(mesh.num_nodes(), 0.0);
  cg_solve(ctx, sparse_operator(a), b, x, 0.0, 20);
  return x;
}

/// ex3: 2D L2 projection through the mass matrix.
Vector ex03(fpsem::EvalContext& ctx) {
  const Mesh mesh = Mesh::quad_grid(6, 6);
  const ConstantCoefficient one(1.0);
  const PolyCoefficient f(0.5, 2.0, -1.0, 3.0);
  const QuadratureRule& rule = QuadratureRule::gauss(2);
  SparseMatrix m = assemble_bilinear(ctx, mesh, mass_fn(one, rule));
  const Vector b = assemble_domain_lf(ctx, mesh, f, rule);
  Vector x(mesh.num_nodes(), 0.0);
  cg_solve(ctx, sparse_operator(m), b, x, 0.0, 15);
  return x;
}

/// ex4: 1D diffusion with transcendental coefficient (libm user).
Vector ex04(fpsem::EvalContext& ctx) {
  const Mesh mesh = Mesh::interval(32);
  const SinCoefficient k(0.5, 3.0, 0.0);
  const ExpCoefficient f(4.0, 0.5, 0.0);
  const QuadratureRule& rule = QuadratureRule::gauss(2);
  // k(x) = 1 + 0.5 sin(3x): shift through a wrapper coefficient.
  class Shifted final : public Coefficient {
   public:
    explicit Shifted(const Coefficient& base) : base_(base) {}
    double eval(fpsem::EvalContext& c, double x, double y) const override {
      return 1.0 + base_.eval(c, x, y);
    }

   private:
    const Coefficient& base_;
  } shifted(k);
  SparseMatrix a = assemble_bilinear(ctx, mesh, diffusion_fn(shifted, rule));
  Vector b = assemble_domain_lf(ctx, mesh, f, rule);
  eliminate_essential_bc(ctx, mesh, a, b, 0.0);
  Vector x(mesh.num_nodes(), 0.0);
  cg_solve(ctx, sparse_operator(a), b, x, 0.0, 24);
  return x;
}

/// ex5: 2D Poisson with Gaussian-bump load (libm in the RHS only).
Vector ex05(fpsem::EvalContext& ctx) {
  const Mesh mesh = Mesh::quad_grid(8, 8);
  const ConstantCoefficient one(1.0);
  const ExpCoefficient f(25.0, 0.5, 0.5);
  const QuadratureRule& rule = QuadratureRule::gauss(2);
  SparseMatrix a = assemble_bilinear(ctx, mesh, diffusion_fn(one, rule));
  Vector b = assemble_domain_lf(ctx, mesh, f, rule);
  eliminate_essential_bc(ctx, mesh, a, b, 0.0);
  Vector x(mesh.num_nodes(), 0.0);
  cg_solve(ctx, sparse_operator(a), b, x, 0.0, 25);
  return x;
}

/// ex6: 1D convection-diffusion via Gauss-Seidel iteration.
Vector ex06(fpsem::EvalContext& ctx) {
  const Mesh mesh = Mesh::interval(40);
  const ConstantCoefficient eps(0.05);
  const ConstantCoefficient f(1.0);
  const QuadratureRule& rule = QuadratureRule::gauss(2);
  SparseMatrix diff = assemble_bilinear(ctx, mesh, diffusion_fn(eps, rule));
  SparseMatrix conv = assemble_bilinear(
      ctx, mesh,
      [&rule](fpsem::EvalContext& c, const Mesh& m, std::size_t e,
              DenseMatrix& out) {
        convection_element_matrix(c, m, e, 1.0, rule, out);
      });
  // A = diffusion + convection (merged through re-assembly of triplets).
  SparseMatrix a(mesh.num_nodes(), mesh.num_nodes());
  const auto add_all = [&a](const SparseMatrix& s) {
    const auto& rs = s.row_start();
    for (std::size_t r = 0; r < s.rows(); ++r) {
      for (std::size_t k = rs[r]; k < rs[r + 1]; ++k) {
        a.add(r, s.col_index()[k], s.values()[k]);
      }
    }
  };
  add_all(diff);
  add_all(conv);
  a.finalize();
  Vector b = assemble_domain_lf(ctx, mesh, f, rule);
  eliminate_essential_bc(ctx, mesh, a, b, 0.0);
  Vector x(mesh.num_nodes(), 0.0);
  sli_gauss_seidel(ctx, a, b, x, 0.0, 60);
  return x;
}

/// ex7: two-component "elasticity" solve (same operator, two loads).
Vector ex07(fpsem::EvalContext& ctx) {
  const Mesh mesh = Mesh::interval(24);
  const PolyCoefficient k(2.0, 1.0, 0.0, 0.0);
  const PolyCoefficient f1(1.0, 0.0, 0.0, 0.0);
  const PolyCoefficient f2(0.0, 1.0, 0.0, 0.0);
  const QuadratureRule& rule = QuadratureRule::gauss(2);
  SparseMatrix a = assemble_bilinear(ctx, mesh, diffusion_fn(k, rule));
  Vector b1 = assemble_domain_lf(ctx, mesh, f1, rule);
  Vector b2 = assemble_domain_lf(ctx, mesh, f2, rule);
  eliminate_essential_bc(ctx, mesh, a, b1, 0.0);
  // BC elimination already rewrote A; apply boundary values to b2 directly.
  for (std::size_t i = 0; i < mesh.num_nodes(); ++i) {
    if (mesh.is_boundary_node(i)) b2[i] = 0.0;
  }
  Vector u1(mesh.num_nodes(), 0.0), u2(mesh.num_nodes(), 0.0);
  const Operator op = sparse_operator(a);
  cg_solve(ctx, op, b1, u1, 0.0, 11);
  cg_solve(ctx, op, b2, u2, 0.0, 11);
  Vector out(u1.size() + u2.size());
  for (std::size_t i = 0; i < u1.size(); ++i) out[i] = u1[i];
  for (std::size_t i = 0; i < u2.size(); ++i) out[u1.size() + i] = u2[i];
  return out;
}

/// ex8: ill-conditioned dense (Hilbert) CG with a 1e-12 stopping criterion
/// -- the Finding 1 example whose convergence path splits under FMA.
Vector ex08(fpsem::EvalContext& ctx) {
  constexpr std::size_t n = 12;
  DenseMatrix h(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      h(i, j) = 1.0 / static_cast<double>(i + j + 1);
    }
  }
  Vector b(n, 1.0);
  Vector x(n, 0.0);
  Operator op{n, [&h](fpsem::EvalContext& c, const Vector& in, Vector& out) {
                linalg::mult(c, h, in, out);
              }};
  cg_solve(ctx, op, b, x, 1e-12, 400);
  return x;
}

/// ex9: transcendental dense matrix + power iteration (libm- and
/// bulk-heavy: the example where a variable icpc compilation wins big).
Vector ex09(fpsem::EvalContext& ctx) {
  constexpr std::size_t n = 24;
  const SinCoefficient s(1.0, 2.0, 1.5);
  DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double x = static_cast<double>(i) / n;
      const double y = static_cast<double>(j) / n;
      a(i, j) = s.eval(ctx, x, y) + (i == j ? 4.0 : 0.0);
    }
  }
  Vector v(n, 1.0);
  Vector w;
  double rayleigh = 0.0;
  for (int it = 0; it < 30; ++it) {
    rayleigh = linalg::power_step(ctx, a, v, w);
    v = w;
  }
  return append(v, rayleigh);
}

/// ex10: pure quadrature projection of transcendental data (no solver).
Vector ex10(fpsem::EvalContext& ctx) {
  const Mesh mesh = Mesh::interval(48);
  const ExpCoefficient g(6.0, 0.3, 0.0);
  const PowCoefficient p(1.5);
  const QuadratureRule& rule = QuadratureRule::gauss(3);
  GridFunction gf(&mesh);
  project_coefficient(ctx, g, gf);
  const double err = compute_l2_error(ctx, gf, p, rule);
  const double integral = integrate_gf(ctx, gf, rule);
  Vector out = gf.values();
  out = append(out, err);
  out = append(out, integral);
  return out;
}

/// ex11: two-level multigrid V-cycles for 1D Poisson.
Vector ex11(fpsem::EvalContext& ctx) {
  const Mesh fine = Mesh::interval(32);    // 33 nodes (odd)
  const Mesh coarse = Mesh::interval(16);  // 17 nodes
  const ConstantCoefficient one(1.0);
  const QuadratureRule& rule = QuadratureRule::gauss(2);
  SparseMatrix af = assemble_bilinear(ctx, fine, diffusion_fn(one, rule));
  SparseMatrix ac = assemble_bilinear(ctx, coarse, diffusion_fn(one, rule));
  Vector bf = assemble_domain_lf(ctx, fine, one, rule);
  eliminate_essential_bc(ctx, fine, af, bf, 0.0);
  Vector bc_dummy(coarse.num_nodes(), 0.0);
  eliminate_essential_bc(ctx, coarse, ac, bc_dummy, 0.0);

  Vector x(fine.num_nodes(), 0.0);
  Vector r, rc, ec, ef;
  for (int cycle = 0; cycle < 10; ++cycle) {
    linalg::jacobi_smooth(ctx, af, bf, 0.6, x);
    linalg::jacobi_smooth(ctx, af, bf, 0.6, x);
    linalg::residual(ctx, af, bf, x, r);
    restrict_1d(ctx, r, rc);
    for (std::size_t i = 0; i < coarse.num_nodes(); ++i) {
      if (coarse.is_boundary_node(i)) rc[i] = 0.0;
    }
    ec.assign(coarse.num_nodes(), 0.0);
    sli_gauss_seidel(ctx, ac, rc, ec, 0.0, 20);
    prolong_1d(ctx, ec, ef);
    linalg::add(ctx, ef, x);
    linalg::jacobi_smooth(ctx, af, bf, 0.6, x);
  }
  return x;
}

/// ex12: integer-exact lumped "mass" counting -- bitwise reproducible
/// under every compilation (all intermediate arithmetic is exact).
Vector ex12(fpsem::EvalContext& ctx) {
  constexpr std::size_t n = 24;
  SparseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a.add(i, i, 4.0);
    if (i + 1 < n) {
      a.add(i, i + 1, static_cast<double>((i % 3) + 1));
      a.add(i + 1, i, static_cast<double>((i % 5) + 1));
    }
    if (i + 4 < n) a.add(i, i + 4, 2.0);
  }
  a.finalize();
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<double>((i * 7) % 11) - 5.0;
  }
  Vector y;
  linalg::mult(ctx, a, x, y);
  Vector s;
  linalg::row_sums(ctx, a, s);
  Vector out = y;
  for (std::size_t i = 0; i < s.size(); ++i) out = append(out, s[i]);
  out = append(out, linalg::sum(ctx, y));
  out = append(out, linalg::sum(ctx, s));
  return out;
}

/// ex13: M += a A A^T with catastrophic cancellation -- the Finding 2
/// example with ~180% relative error under FMA/AVX2 compilations.
Vector ex13(fpsem::EvalContext& ctx) {
  constexpr std::size_t n = 10;
  constexpr double alpha = 0.7;
  DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = 1.0 / static_cast<double>(i + 2 * j + 1) +
                (i == j ? 0.5 : 0.0);
    }
  }
  // M is problem data: the (exactly computed, then rounded) value of
  // -alpha * A A^T.  M += alpha A A^T through the Finding 2 kernel then
  // leaves pure rounding residue, so any change in the kernel's rounding
  // (FMA contraction) changes the answer by O(100%) in relative terms.
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      long double acc = 0.0L;
      for (std::size_t k = 0; k < n; ++k) {
        acc += static_cast<long double>(a(i, k)) *
               static_cast<long double>(a(j, k));
      }
      m(i, j) = static_cast<double>(-static_cast<long double>(alpha) * acc);
    }
  }
  linalg::add_mult_aAAt(ctx, alpha, a, m);
  Vector out(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) out[i * n + j] = m(i, j);
  }
  return out;
}

/// ex14: nodal gradient recovery of a projected field.
Vector ex14(fpsem::EvalContext& ctx) {
  const Mesh mesh = Mesh::interval(40);
  const PolyCoefficient f(0.0, 1.0, 0.0, 0.0);
  GridFunction gf(&mesh);
  project_coefficient(ctx, f, gf);
  // u(x) = x -> square it nodally through the semantics-neutral route of
  // the coefficient (keeps the work in registered kernels).
  for (std::size_t i = 0; i < mesh.num_nodes(); ++i) {
    gf[i] = gf[i] * gf[i];  // exact squares of grid points
  }
  Vector grad;
  recover_gradient_1d(ctx, gf, grad);
  return grad;
}

/// ex15: curved (warped) mesh spectral estimate -- libm via the mesh warp.
Vector ex15(fpsem::EvalContext& ctx) {
  Mesh mesh = Mesh::interval(24);
  curved_warp(ctx, mesh, 0.08);
  const PolyCoefficient k(1.0, 1.0, 0.0, 0.0);
  const QuadratureRule& rule = QuadratureRule::gauss(2);
  SparseMatrix a = assemble_bilinear(ctx, mesh, diffusion_fn(k, rule));
  Vector v(mesh.num_nodes(), 1.0);
  Vector w;
  double rayleigh = 0.0;
  for (int it = 0; it < 20; ++it) {
    linalg::mult(ctx, a, v, w);
    rayleigh = linalg::dot(ctx, v, w);
    const double nw = linalg::norml2(ctx, w);
    linalg::scale(ctx, 1.0 / nw, w);
    v = w;
  }
  Vector out = v;
  out = append(out, rayleigh);
  out = append(out, total_volume(ctx, mesh));
  return out;
}

/// ex16: explicit-Euler heat equation with a lumped mass matrix.
Vector ex16(fpsem::EvalContext& ctx) {
  const Mesh mesh = Mesh::interval(32);
  const ConstantCoefficient one(1.0);
  const QuadratureRule& rule = QuadratureRule::gauss(2);
  SparseMatrix k = assemble_bilinear(ctx, mesh, diffusion_fn(one, rule));
  SparseMatrix m = assemble_bilinear(ctx, mesh, mass_fn(one, rule));
  Vector lumped;
  linalg::row_sums(ctx, m, lumped);

  GridFunction u(&mesh);
  // Parabolic bump u0 = x(1-x): nonzero discrete Laplacian everywhere.
  for (std::size_t i = 0; i < mesh.num_nodes(); ++i) {
    const double xi = mesh.x(i);
    u[i] = mesh.is_boundary_node(i) ? 0.0 : xi * (1.0 - xi);
  }
  const double dt = 2e-4;
  Vector ku, z;
  for (int step = 0; step < 60; ++step) {
    linalg::mult(ctx, k, u.values(), ku);
    jacobi_apply(ctx, lumped, ku, z);
    linalg::axpy(ctx, -dt, z, u.values());
    for (std::size_t i = 0; i < mesh.num_nodes(); ++i) {
      if (mesh.is_boundary_node(i)) u[i] = 0.0;
    }
  }
  return u.values();
}

/// ex17: leapfrog wave equation.
Vector ex17(fpsem::EvalContext& ctx) {
  const Mesh mesh = Mesh::interval(32);
  const ConstantCoefficient one(1.0);
  const QuadratureRule& rule = QuadratureRule::gauss(2);
  SparseMatrix k = assemble_bilinear(ctx, mesh, diffusion_fn(one, rule));
  SparseMatrix m = assemble_bilinear(ctx, mesh, mass_fn(one, rule));
  Vector lumped;
  linalg::row_sums(ctx, m, lumped);

  GridFunction u(&mesh);
  // Plucked-string profile u0 = x^2 (1 - x).
  for (std::size_t i = 0; i < mesh.num_nodes(); ++i) {
    const double xi = mesh.x(i);
    u[i] = mesh.is_boundary_node(i) ? 0.0 : xi * xi * (1.0 - xi);
  }
  Vector vel(mesh.num_nodes(), 0.0);
  const double dt = 5e-3;
  Vector ku, acc;
  for (int step = 0; step < 80; ++step) {
    linalg::mult(ctx, k, u.values(), ku);
    jacobi_apply(ctx, lumped, ku, acc);
    linalg::axpy(ctx, -dt, acc, vel);
    linalg::axpy(ctx, dt, vel, u.values());
    for (std::size_t i = 0; i < mesh.num_nodes(); ++i) {
      if (mesh.is_boundary_node(i)) u[i] = 0.0;
    }
  }
  Vector out = u.values();
  for (std::size_t i = 0; i < vel.size(); ++i) out = append(out, vel[i]);
  return out;
}

/// ex18: piecewise-constant volume accounting on a dyadic mesh -- exact
/// arithmetic, bitwise reproducible under every compilation.
Vector ex18(fpsem::EvalContext& ctx) {
  const Mesh mesh = Mesh::interval(16);  // h = 2^-4, exact coordinates
  Vector sizes(mesh.num_elements());
  for (std::size_t e = 0; e < mesh.num_elements(); ++e) {
    sizes[e] = element_size(ctx, mesh, e);
  }
  const double vol = total_volume(ctx, mesh);
  double marked = 0.0;
  for (std::size_t e = 0; e < mesh.num_elements(); ++e) {
    if (sizes[e] >= 0.0625) marked += 1.0;  // exact threshold compare
  }
  Vector out = sizes;
  out = append(out, vol);
  out = append(out, marked);
  out = append(out, linalg::sum(ctx, sizes));
  return out;
}

/// ex19: one Newton step for the nonlinear reaction system u + u^3 = f.
Vector ex19(fpsem::EvalContext& ctx) {
  constexpr std::size_t n = 16;
  DenseMatrix jac(n, n);
  Vector u(n), f(n), res(n);
  for (std::size_t i = 0; i < n; ++i) {
    u[i] = 0.3 + 0.1 * static_cast<double>(i % 4);
    f[i] = 1.0 + 0.25 * static_cast<double>(i);
  }
  // residual r = u + u^3 - f, jacobian J = I + 3 diag(u^2) + coupling
  for (std::size_t i = 0; i < n; ++i) {
    res[i] = u[i] + u[i] * u[i] * u[i] - f[i];
    for (std::size_t j = 0; j < n; ++j) {
      jac(i, j) = (i == j ? 1.0 + 3.0 * u[i] * u[i] : 0.0) +
                  0.01 / static_cast<double>(i + j + 1);
    }
  }
  Vector delta;
  linalg::lu_solve(ctx, jac, res, delta);
  const double d = linalg::det(ctx, jac);
  Vector out = delta;
  out = append(out, d);
  return out;
}

}  // namespace

linalg::Vector run_example(int idx, fpsem::EvalContext& ctx) {
  switch (idx) {
    case 1: return ex01(ctx);
    case 2: return ex02(ctx);
    case 3: return ex03(ctx);
    case 4: return ex04(ctx);
    case 5: return ex05(ctx);
    case 6: return ex06(ctx);
    case 7: return ex07(ctx);
    case 8: return ex08(ctx);
    case 9: return ex09(ctx);
    case 10: return ex10(ctx);
    case 11: return ex11(ctx);
    case 12: return ex12(ctx);
    case 13: return ex13(ctx);
    case 14: return ex14(ctx);
    case 15: return ex15(ctx);
    case 16: return ex16(ctx);
    case 17: return ex17(ctx);
    case 18: return ex18(ctx);
    case 19: return ex19(ctx);
    default:
      throw std::out_of_range("example index must be 1..19");
  }
}

std::vector<std::string> mfem_source_files() {
  return {
      "linalg/vector.cpp",        "linalg/densemat.cpp",
      "linalg/sparsemat.cpp",     "mfemini/mesh.cpp",
      "mfemini/quadrature.cpp",   "mfemini/fe.cpp",
      "mfemini/eltrans.cpp",      "mfemini/coefficients.cpp",
      "mfemini/bilininteg.cpp",   "mfemini/bilinearform.cpp",
      "mfemini/linearform.cpp",   "mfemini/gridfunc.cpp",
      "mfemini/solvers.cpp",
  };
}

core::TestResult MfemExampleTest::run_impl(const std::vector<double>& input,
                                           fpsem::EvalContext& ctx) const {
  (void)input;
  return linalg::serialize(run_example(idx_, ctx));
}

long double MfemExampleTest::compare(const std::string& baseline,
                                     const std::string& test) const {
  return linalg::l2_string_metric(baseline, test, /*relative=*/true);
}

}  // namespace flit::mfemini
