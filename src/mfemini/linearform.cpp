#include "mfemini/forms.h"

#include "mfemini/eltrans.h"
#include "mfemini/fe.h"

namespace flit::mfemini {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kDomainLF = register_fn({
    .name = "LinearForm::AssembleDomainLF",
    .file = "mfemini/linearform.cpp",
});
// Per-element load contribution, only reachable through AssembleDomainLF.
const fpsem::FunctionId kElementLF = register_fn({
    .name = "detail::element_load",
    .file = "mfemini/linearform.cpp",
    .exported = false,
    .host_symbol = "LinearForm::AssembleDomainLF",
});

void element_load(fpsem::EvalContext& ctx, const Mesh& mesh, std::size_t e,
                  const Coefficient& f, const QuadratureRule& rule,
                  linalg::Vector& contrib) {
  fpsem::FpEnv env = ctx.fn(kElementLF);
  const std::size_t nd = mesh.nodes_per_element();
  contrib.assign(nd, 0.0);

  if (mesh.dim() == 1) {
    const double j = jacobian_1d(ctx, mesh, e);
    for (std::size_t q = 0; q < rule.points.size(); ++q) {
      linalg::Vector n;
      shape_1d(ctx, rule.points[q], n);
      double px = 0.0, py = 0.0;
      map_to_physical(ctx, mesh, e, rule.points[q], 0.0, px, py);
      const double w = env.mul(env.mul(rule.weights[q], f.eval(ctx, px, py)),
                               j);
      for (std::size_t k = 0; k < nd; ++k) {
        contrib[k] = env.mul_add(w, n[k], contrib[k]);
      }
    }
    return;
  }

  for (std::size_t qi = 0; qi < rule.points.size(); ++qi) {
    for (std::size_t qj = 0; qj < rule.points.size(); ++qj) {
      const double xi = rule.points[qi];
      const double eta = rule.points[qj];
      linalg::Vector n;
      shape_2d(ctx, xi, eta, n);
      const Jacobian2D jac = jacobian_2d(ctx, mesh, e, xi, eta);
      double px = 0.0, py = 0.0;
      map_to_physical(ctx, mesh, e, xi, eta, px, py);
      const double w =
          env.mul(env.mul(rule.weights[qi], rule.weights[qj]),
                  env.mul(f.eval(ctx, px, py), jac.det));
      for (std::size_t k = 0; k < nd; ++k) {
        contrib[k] = env.mul_add(w, n[k], contrib[k]);
      }
    }
  }
}

}  // namespace

linalg::Vector assemble_domain_lf(fpsem::EvalContext& ctx, const Mesh& mesh,
                                  const Coefficient& f,
                                  const QuadratureRule& rule) {
  linalg::Vector b(mesh.num_nodes(), 0.0);
  fpsem::FpEnv env = ctx.fn(kDomainLF);
  linalg::Vector contrib;
  for (std::size_t e = 0; e < mesh.num_elements(); ++e) {
    element_load(ctx, mesh, e, f, rule, contrib);
    const auto& el = mesh.element(e);
    for (std::size_t k = 0; k < mesh.nodes_per_element(); ++k) {
      b[el[k]] = env.add(b[el[k]], contrib[k]);
    }
  }
  return b;
}

}  // namespace flit::mfemini
