#pragma once

// The 19 end-to-end mini-MFEM examples used as FLiT test cases, mirroring
// the MFEM example suite of Sec. 3.1.  Each produces calculated values
// over a full mesh or volume; the FLiT comparison function is the l2 norm
// of the mesh difference relativized by the baseline norm.
//
// Designed sensitivity profile (matching the paper's findings):
//  * examples 4, 5, 9, 10, 15 call transcendental coefficients, so the
//    Intel link step makes them variable regardless of switches (Fig. 5);
//  * examples 12 and 18 compute in exactly-representable integer/dyadic
//    arithmetic, so they are bitwise reproducible under *every*
//    compilation (the two invariant tests of Fig. 5);
//  * example 8 is an ill-conditioned iterative solve whose stopping
//    branch amplifies tiny differences (Finding 1);
//  * example 13 is a catastrophic-cancellation M += a A A^T whose
//    relative error explodes under FMA contraction (Finding 2).

#include <string>
#include <vector>

#include "core/test_base.h"
#include "fpsem/env.h"
#include "linalg/vector.h"

namespace flit::mfemini {

inline constexpr int kNumExamples = 19;

/// Runs example `idx` (1-based) and returns its result mesh values.
linalg::Vector run_example(int idx, fpsem::EvalContext& ctx);

/// The source files making up the mini-MFEM application (linalg + mfemini)
/// -- the Bisect search scope of the MFEM study.
std::vector<std::string> mfem_source_files();

/// FLiT test adapter for one example.
class MfemExampleTest final : public core::TestBase {
 public:
  explicit MfemExampleTest(int idx) : idx_(idx) {}

  [[nodiscard]] std::string name() const override {
    return "MFEM_ex" + std::to_string(idx_);
  }
  [[nodiscard]] std::size_t getInputsPerRun() const override { return 0; }
  [[nodiscard]] std::vector<double> getDefaultInput() const override {
    return {};
  }
  [[nodiscard]] core::TestResult run_impl(
      const std::vector<double>& input,
      fpsem::EvalContext& ctx) const override;

  using core::TestBase::compare;
  /// || baseline - test ||_2 / || baseline ||_2 over the mesh values.
  [[nodiscard]] long double compare(const std::string& baseline,
                                    const std::string& test) const override;

 private:
  int idx_;
};

}  // namespace flit::mfemini
