#include "mfemini/mesh.h"

#include <numbers>

namespace flit::mfemini {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kElementSize = register_fn({
    .name = "Mesh::ElementSize",
    .file = "mfemini/mesh.cpp",
    .inline_candidate = true,
});
const fpsem::FunctionId kTotalVolume = register_fn({
    .name = "Mesh::TotalVolume",
    .file = "mfemini/mesh.cpp",
});
const fpsem::FunctionId kCurvedWarp = register_fn({
    .name = "Mesh::CurvedWarp",
    .file = "mfemini/mesh.cpp",
    .uses_libm = true,
});
const fpsem::FunctionId kSizeNorm = register_fn({
    .name = "Mesh::SizeNorm",
    .file = "mfemini/mesh.cpp",
});

}  // namespace

Mesh Mesh::interval(std::size_t n, double a, double b) {
  Mesh m;
  m.dim_ = 1;
  const double h = (b - a) / static_cast<double>(n);
  for (std::size_t i = 0; i <= n; ++i) {
    m.x_.push_back(a + h * static_cast<double>(i));
    m.y_.push_back(0.0);
    m.boundary_.push_back(i == 0 || i == n);
  }
  for (std::size_t e = 0; e < n; ++e) {
    m.elems_.push_back({e, e + 1, 0, 0});
  }
  return m;
}

Mesh Mesh::quad_grid(std::size_t nx, std::size_t ny) {
  Mesh m;
  m.dim_ = 2;
  const double hx = 1.0 / static_cast<double>(nx);
  const double hy = 1.0 / static_cast<double>(ny);
  for (std::size_t j = 0; j <= ny; ++j) {
    for (std::size_t i = 0; i <= nx; ++i) {
      m.x_.push_back(hx * static_cast<double>(i));
      m.y_.push_back(hy * static_cast<double>(j));
      m.boundary_.push_back(i == 0 || i == nx || j == 0 || j == ny);
    }
  }
  const auto node = [&](std::size_t i, std::size_t j) {
    return j * (nx + 1) + i;
  };
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      m.elems_.push_back(
          {node(i, j), node(i + 1, j), node(i + 1, j + 1), node(i, j + 1)});
    }
  }
  return m;
}

double element_size(fpsem::EvalContext& ctx, const Mesh& mesh,
                    std::size_t e) {
  fpsem::FpEnv env = ctx.fn(kElementSize);
  const auto& el = mesh.element(e);
  if (mesh.dim() == 1) {
    return env.sub(mesh.x(el[1]), mesh.x(el[0]));
  }
  // Shoelace formula for the quadrilateral.
  double twice_area = 0.0;
  for (std::size_t k = 0; k < 4; ++k) {
    const std::size_t a = el[k];
    const std::size_t b = el[(k + 1) % 4];
    const double cross = env.sub(env.mul(mesh.x(a), mesh.y(b)),
                                 env.mul(mesh.x(b), mesh.y(a)));
    twice_area = env.add(twice_area, cross);
  }
  return env.mul(0.5, twice_area);
}

double total_volume(fpsem::EvalContext& ctx, const Mesh& mesh) {
  linalg::Vector sizes(mesh.num_elements());
  for (std::size_t e = 0; e < mesh.num_elements(); ++e) {
    sizes[e] = element_size(ctx, mesh, e);
  }
  fpsem::FpEnv env = ctx.fn(kTotalVolume);
  return env.sum(sizes.span());
}

void curved_warp(fpsem::EvalContext& ctx, Mesh& mesh, double amp) {
  fpsem::FpEnv env = ctx.fn(kCurvedWarp);
  const double pi = std::numbers::pi;
  for (std::size_t n = 0; n < mesh.num_nodes(); ++n) {
    if (mesh.is_boundary_node(n)) continue;  // keep the domain fixed
    mesh.x(n) = env.mul_add(amp, env.sin(env.mul(pi, mesh.x(n))), mesh.x(n));
    if (mesh.dim() == 2) {
      mesh.y(n) =
          env.mul_add(amp, env.sin(env.mul(pi, mesh.y(n))), mesh.y(n));
    }
  }
}

double size_norm(fpsem::EvalContext& ctx, const Mesh& mesh) {
  linalg::Vector sizes(mesh.num_elements());
  for (std::size_t e = 0; e < mesh.num_elements(); ++e) {
    sizes[e] = element_size(ctx, mesh, e);
  }
  fpsem::FpEnv env = ctx.fn(kSizeNorm);
  return env.norm2(sizes.span());
}

}  // namespace flit::mfemini
