#include "mfemini/quadrature.h"

#include <stdexcept>

namespace flit::mfemini {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kIntegrate = register_fn({
    .name = "Quadrature::Integrate",
    .file = "mfemini/quadrature.cpp",
});
const fpsem::FunctionId kMapPoint = register_fn({
    .name = "Quadrature::MapPoint",
    .file = "mfemini/quadrature.cpp",
    .inline_candidate = true,
});
const fpsem::FunctionId kTensorWeight = register_fn({
    .name = "Quadrature::TensorWeight",
    .file = "mfemini/quadrature.cpp",
    .inline_candidate = true,
});

}  // namespace

const QuadratureRule& QuadratureRule::gauss(std::size_t n) {
  // Points/weights on [0,1] (shifted Gauss-Legendre), exact literals.
  static const QuadratureRule g1{{0.5}, {1.0}};
  static const QuadratureRule g2{
      {0.21132486540518713, 0.7886751345948129}, {0.5, 0.5}};
  static const QuadratureRule g3{
      {0.1127016653792583, 0.5, 0.8872983346207417},
      {0.2777777777777778, 0.4444444444444444, 0.2777777777777778}};
  switch (n) {
    case 1: return g1;
    case 2: return g2;
    case 3: return g3;
    default: throw std::invalid_argument("gauss rule n must be 1..3");
  }
}

double integrate(fpsem::EvalContext& ctx, const QuadratureRule& rule,
                 const linalg::Vector& f_at_points, double scale) {
  if (f_at_points.size() != rule.points.size()) {
    throw std::invalid_argument("integrate: value count mismatch");
  }
  fpsem::FpEnv env = ctx.fn(kIntegrate);
  const double acc = env.dot(
      std::span<const double>(rule.weights.data(), rule.weights.size()),
      f_at_points.span());
  return env.mul(scale, acc);
}

double map_point(fpsem::EvalContext& ctx, double a, double b, double xi) {
  fpsem::FpEnv env = ctx.fn(kMapPoint);
  return env.mul_add(env.sub(b, a), xi, a);
}

double tensor_weight(fpsem::EvalContext& ctx, const QuadratureRule& rule,
                     std::size_t i, std::size_t j, double scale) {
  fpsem::FpEnv env = ctx.fn(kTensorWeight);
  return env.mul(scale, env.mul(rule.weights[i], rule.weights[j]));
}

}  // namespace flit::mfemini
