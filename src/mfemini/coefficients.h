#pragma once

// Coefficient functions for PDE data (file "mfemini/coefficients.cpp").
// The transcendental coefficients are the libm users behind the Intel
// link-step variability of Figure 5 (examples 4, 5, 9, 10, 15).

#include <memory>

#include "fpsem/env.h"

namespace flit::mfemini {

/// A scalar field evaluated at physical points.
class Coefficient {
 public:
  virtual ~Coefficient() = default;
  [[nodiscard]] virtual double eval(fpsem::EvalContext& ctx, double x,
                                    double y) const = 0;
};

/// c(x, y) = value.
class ConstantCoefficient final : public Coefficient {
 public:
  explicit ConstantCoefficient(double value) : value_(value) {}
  [[nodiscard]] double eval(fpsem::EvalContext&, double, double) const override {
    return value_;
  }

 private:
  double value_;
};

/// c(x, y) = a + b*x + c*y + d*x*y (polynomial; libm-free).
class PolyCoefficient final : public Coefficient {
 public:
  PolyCoefficient(double a, double b, double c, double d)
      : a_(a), b_(b), c_(c), d_(d) {}
  [[nodiscard]] double eval(fpsem::EvalContext& ctx, double x,
                            double y) const override;

 private:
  double a_, b_, c_, d_;
};

/// c(x, y) = amp * sin(fx*x) * cos(fy*y) (transcendental).
class SinCoefficient final : public Coefficient {
 public:
  SinCoefficient(double amp, double fx, double fy)
      : amp_(amp), fx_(fx), fy_(fy) {}
  [[nodiscard]] double eval(fpsem::EvalContext& ctx, double x,
                            double y) const override;

 private:
  double amp_, fx_, fy_;
};

/// c(x, y) = exp(-k*((x-cx)^2 + (y-cy)^2)) (transcendental Gaussian bump).
class ExpCoefficient final : public Coefficient {
 public:
  ExpCoefficient(double k, double cx, double cy) : k_(k), cx_(cx), cy_(cy) {}
  [[nodiscard]] double eval(fpsem::EvalContext& ctx, double x,
                            double y) const override;

 private:
  double k_, cx_, cy_;
};

/// c(x, y) = pow(1 + x + y, p) (transcendental via pow).
class PowCoefficient final : public Coefficient {
 public:
  explicit PowCoefficient(double p) : p_(p) {}
  [[nodiscard]] double eval(fpsem::EvalContext& ctx, double x,
                            double y) const override;

 private:
  double p_;
};

}  // namespace flit::mfemini
