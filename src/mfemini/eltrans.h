#pragma once

// Element transformations (file "mfemini/eltrans.cpp"): jacobians of the
// reference-to-physical map for segments and (possibly warped) bilinear
// quadrilaterals, and physical-gradient computation.

#include <array>

#include "fpsem/env.h"
#include "linalg/vector.h"
#include "mfemini/mesh.h"

namespace flit::mfemini {

/// 2x2 jacobian of the bilinear map at a reference point.
struct Jacobian2D {
  double dxdxi, dxdeta, dydxi, dydeta;
  double det;
};

/// 1D jacobian dx/dxi of element `e` (its length).
double jacobian_1d(fpsem::EvalContext& ctx, const Mesh& mesh, std::size_t e);

/// 2D jacobian of element `e` at reference point (xi, eta).
Jacobian2D jacobian_2d(fpsem::EvalContext& ctx, const Mesh& mesh,
                       std::size_t e, double xi, double eta);

/// Physical coordinates of a reference point of element `e`.
void map_to_physical(fpsem::EvalContext& ctx, const Mesh& mesh, std::size_t e,
                     double xi, double eta, double& px, double& py);

/// Physical gradients of the bilinear shape functions at (xi, eta):
/// grad_x[k], grad_y[k], using the inverse jacobian.
void physical_gradients(fpsem::EvalContext& ctx, const Mesh& mesh,
                        std::size_t e, double xi, double eta,
                        linalg::Vector& grad_x, linalg::Vector& grad_y,
                        double& detj);

}  // namespace flit::mfemini
