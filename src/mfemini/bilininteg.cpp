#include "mfemini/integrators.h"

#include "mfemini/eltrans.h"
#include "mfemini/fe.h"

namespace flit::mfemini {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kDiffusion = register_fn({
    .name = "DiffusionIntegrator::AssembleElementMatrix",
    .file = "mfemini/bilininteg.cpp",
});
const fpsem::FunctionId kMass = register_fn({
    .name = "MassIntegrator::AssembleElementMatrix",
    .file = "mfemini/bilininteg.cpp",
});
const fpsem::FunctionId kConvection = register_fn({
    .name = "ConvectionIntegrator::AssembleElementMatrix",
    .file = "mfemini/bilininteg.cpp",
});
// Rank-1 outer-product accumulation, reachable only through the
// diffusion/mass integrators (an inlined static helper in real MFEM).
const fpsem::FunctionId kOuterAcc = register_fn({
    .name = "detail::outer_accumulate",
    .file = "mfemini/bilininteg.cpp",
    .exported = false,
    .host_symbol = "DiffusionIntegrator::AssembleElementMatrix",
});

/// out += w * v v^T (internal helper).
void outer_accumulate(fpsem::EvalContext& ctx, double w,
                      const linalg::Vector& v, linalg::DenseMatrix& out) {
  fpsem::FpEnv env = ctx.fn(kOuterAcc);
  for (std::size_t i = 0; i < v.size(); ++i) {
    for (std::size_t j = 0; j < v.size(); ++j) {
      out(i, j) = env.mul_add(w, env.mul(v[i], v[j]), out(i, j));
    }
  }
}

}  // namespace

void diffusion_element_matrix(fpsem::EvalContext& ctx, const Mesh& mesh,
                              std::size_t e, const Coefficient& k,
                              const QuadratureRule& rule,
                              linalg::DenseMatrix& out) {
  const std::size_t nd = mesh.nodes_per_element();
  out = linalg::DenseMatrix(nd, nd);
  fpsem::FpEnv env = ctx.fn(kDiffusion);

  if (mesh.dim() == 1) {
    const double j = jacobian_1d(ctx, mesh, e);
    linalg::Vector dn;
    dshape_1d(ctx, dn);
    for (std::size_t q = 0; q < rule.points.size(); ++q) {
      double px = 0.0, py = 0.0;
      map_to_physical(ctx, mesh, e, rule.points[q], 0.0, px, py);
      const double kq = k.eval(ctx, px, py);
      // w * k / J  (the 1/J^2 from two gradients times the J measure)
      const double w = env.div(env.mul(rule.weights[q], kq), j);
      linalg::Vector dndx(2);
      dndx[0] = dn[0];
      dndx[1] = dn[1];
      outer_accumulate(ctx, w, dndx, out);
    }
    return;
  }

  for (std::size_t qi = 0; qi < rule.points.size(); ++qi) {
    for (std::size_t qj = 0; qj < rule.points.size(); ++qj) {
      const double xi = rule.points[qi];
      const double eta = rule.points[qj];
      linalg::Vector gx, gy;
      double detj = 0.0;
      physical_gradients(ctx, mesh, e, xi, eta, gx, gy, detj);
      double px = 0.0, py = 0.0;
      map_to_physical(ctx, mesh, e, xi, eta, px, py);
      const double kq = k.eval(ctx, px, py);
      const double w = env.mul(
          env.mul(rule.weights[qi], rule.weights[qj]), env.mul(kq, detj));
      outer_accumulate(ctx, w, gx, out);
      outer_accumulate(ctx, w, gy, out);
    }
  }
}

void mass_element_matrix(fpsem::EvalContext& ctx, const Mesh& mesh,
                         std::size_t e, const Coefficient& c,
                         const QuadratureRule& rule,
                         linalg::DenseMatrix& out) {
  const std::size_t nd = mesh.nodes_per_element();
  out = linalg::DenseMatrix(nd, nd);
  fpsem::FpEnv env = ctx.fn(kMass);

  if (mesh.dim() == 1) {
    const double j = jacobian_1d(ctx, mesh, e);
    for (std::size_t q = 0; q < rule.points.size(); ++q) {
      linalg::Vector n;
      shape_1d(ctx, rule.points[q], n);
      double px = 0.0, py = 0.0;
      map_to_physical(ctx, mesh, e, rule.points[q], 0.0, px, py);
      const double cq = c.eval(ctx, px, py);
      const double w = env.mul(env.mul(rule.weights[q], cq), j);
      outer_accumulate(ctx, w, n, out);
    }
    return;
  }

  for (std::size_t qi = 0; qi < rule.points.size(); ++qi) {
    for (std::size_t qj = 0; qj < rule.points.size(); ++qj) {
      const double xi = rule.points[qi];
      const double eta = rule.points[qj];
      linalg::Vector n;
      shape_2d(ctx, xi, eta, n);
      const Jacobian2D jac = jacobian_2d(ctx, mesh, e, xi, eta);
      double px = 0.0, py = 0.0;
      map_to_physical(ctx, mesh, e, xi, eta, px, py);
      const double cq = c.eval(ctx, px, py);
      const double w =
          env.mul(env.mul(rule.weights[qi], rule.weights[qj]),
                  env.mul(cq, jac.det));
      outer_accumulate(ctx, w, n, out);
    }
  }
}

void convection_element_matrix(fpsem::EvalContext& ctx, const Mesh& mesh,
                               std::size_t e, double velocity,
                               const QuadratureRule& rule,
                               linalg::DenseMatrix& out) {
  out = linalg::DenseMatrix(2, 2);
  fpsem::FpEnv env = ctx.fn(kConvection);
  const double j = jacobian_1d(ctx, mesh, e);
  (void)j;  // dN/dx * J measure cancels the 1/J of the gradient
  linalg::Vector dn;
  dshape_1d(ctx, dn);
  for (std::size_t q = 0; q < rule.points.size(); ++q) {
    linalg::Vector n;
    shape_1d(ctx, rule.points[q], n);
    const double w = env.mul(rule.weights[q], velocity);
    for (std::size_t a = 0; a < 2; ++a) {
      for (std::size_t b = 0; b < 2; ++b) {
        out(a, b) = env.mul_add(w, env.mul(n[a], dn[b]), out(a, b));
      }
    }
  }
}

}  // namespace flit::mfemini
