#pragma once

// Element-matrix integrators (file "mfemini/bilininteg.cpp"): diffusion,
// mass and convection bilinear forms evaluated by quadrature on segment /
// quadrilateral elements.  These quadrature loops are the FMA- and
// reassociation-sensitive kernels at the heart of the MFEM findings.

#include "fpsem/env.h"
#include "linalg/densemat.h"
#include "mfemini/coefficients.h"
#include "mfemini/mesh.h"
#include "mfemini/quadrature.h"

namespace flit::mfemini {

/// out = integral of k(x) grad(N_i) . grad(N_j) over element e.
void diffusion_element_matrix(fpsem::EvalContext& ctx, const Mesh& mesh,
                              std::size_t e, const Coefficient& k,
                              const QuadratureRule& rule,
                              linalg::DenseMatrix& out);

/// out = integral of c(x) N_i N_j over element e.
void mass_element_matrix(fpsem::EvalContext& ctx, const Mesh& mesh,
                         std::size_t e, const Coefficient& c,
                         const QuadratureRule& rule, linalg::DenseMatrix& out);

/// 1D convection: out = integral of v N_i dN_j/dx over element e.
void convection_element_matrix(fpsem::EvalContext& ctx, const Mesh& mesh,
                               std::size_t e, double velocity,
                               const QuadratureRule& rule,
                               linalg::DenseMatrix& out);

}  // namespace flit::mfemini
