#pragma once

// Global assembly: bilinear forms into CSR matrices ("mfemini/
// bilinearform.cpp") and linear forms into right-hand-side vectors
// ("mfemini/linearform.cpp"), plus essential (Dirichlet) boundary
// condition elimination.

#include <functional>

#include "fpsem/env.h"
#include "linalg/densemat.h"
#include "linalg/sparsemat.h"
#include "mfemini/coefficients.h"
#include "mfemini/mesh.h"
#include "mfemini/quadrature.h"

namespace flit::mfemini {

/// Computes the element matrix of element `e` into `out`.
using ElementMatrixFn = std::function<void(
    fpsem::EvalContext&, const Mesh&, std::size_t, linalg::DenseMatrix&)>;

/// Assembles the global matrix sum_e P_e^T M_e P_e.
linalg::SparseMatrix assemble_bilinear(fpsem::EvalContext& ctx,
                                       const Mesh& mesh,
                                       const ElementMatrixFn& element_matrix);

/// Imposes u = `value` on boundary nodes: zeroes boundary rows/columns
/// (moving the column contribution to the RHS), sets unit diagonal.
void eliminate_essential_bc(fpsem::EvalContext& ctx, const Mesh& mesh,
                            linalg::SparseMatrix& a, linalg::Vector& rhs,
                            double value);

/// Assembles the load vector integral of f(x) N_i over the domain.
linalg::Vector assemble_domain_lf(fpsem::EvalContext& ctx, const Mesh& mesh,
                                  const Coefficient& f,
                                  const QuadratureRule& rule);

}  // namespace flit::mfemini
