// laghos/timestep.cpp -- CFL time-step selection (through the utility
// sorters: the XOR-swap consumers) and the Lagrangian node update.

#include "fpsem/code_model.h"
#include "laghos/hydro.h"
#include "laghos/internal.h"

namespace flit::laghos {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kCflDt = register_fn({
    .name = "TimeStep::CflDt",
    .file = "laghos/timestep.cpp",
});
const fpsem::FunctionId kMoveNodes = register_fn({
    .name = "TimeStep::MoveNodes",
    .file = "laghos/timestep.cpp",
});
// Zone geometry refresh, reachable only through MoveNodes.
const fpsem::FunctionId kUpdateGeom = register_fn({
    .name = "detail::update_zone_geometry",
    .file = "laghos/timestep.cpp",
    .exported = false,
    .host_symbol = "TimeStep::MoveNodes",
});

}  // namespace

double cfl_dt(fpsem::EvalContext& ctx, const HydroState& s,
              const std::vector<double>& cs, const std::vector<double>& q,
              double cfl, bool use_xor_swap) {
  fpsem::FpEnv env = ctx.fn(kCflDt);
  const std::size_t zones = s.e.size();
  std::vector<double> candidates(zones);
  for (std::size_t z = 0; z < zones; ++z) {
    const double dx = env.sub(s.x[z + 1], s.x[z]);
    // Signal speed includes the viscous contribution 2 q / (rho cs), as
    // in the production hydro codes -- which is how the Q-switch branch
    // flip of Sec. 3.4 perturbs the global time discretization.
    const double qc = env.div(env.mul(2.0, q[z]),
                              env.mul(s.rho[z], cs[z]));
    const double vmax = env.add(env.add(cs[z], qc),
                                env.sqrt(env.mul(s.v[z], s.v[z])));
    candidates[z] = env.div(dx, vmax);
  }
  const double smallest = min_reduce(ctx, std::move(candidates), use_xor_swap);
  return env.mul(cfl, smallest);
}

void move_nodes(fpsem::EvalContext& ctx, double dt,
                const std::vector<double>& force, HydroState& s) {
  fpsem::FpEnv env = ctx.fn(kMoveNodes);
  const std::size_t nodes = s.x.size();
  // Nodal masses: half the adjacent zone masses.
  for (std::size_t i = 0; i < nodes; ++i) {
    double nm = 0.0;
    if (i > 0) nm = env.mul_add(0.5, s.m[i - 1], nm);
    if (i < s.m.size()) nm = env.mul_add(0.5, s.m[i], nm);
    const double accel = env.div(force[i], nm);
    s.v[i] = env.mul_add(dt, accel, s.v[i]);
  }
  // Fixed walls.
  s.v.front() = 0.0;
  s.v.back() = 0.0;
  for (std::size_t i = 0; i < nodes; ++i) {
    s.x[i] = env.mul_add(dt, s.v[i], s.x[i]);
  }
  detail::update_zone_geometry(ctx, s);
}

namespace detail {

void update_zone_geometry(fpsem::EvalContext& ctx, HydroState& s) {
  fpsem::FpEnv env = ctx.fn(kUpdateGeom);
  for (std::size_t z = 0; z < s.e.size(); ++z) {
    const double dx = env.sub(s.x[z + 1], s.x[z]);
    s.rho[z] = env.div(s.m[z], dx);
  }
}

}  // namespace detail

}  // namespace flit::laghos
