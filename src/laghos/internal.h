#pragma once

// Internal interfaces between the mini-Laghos translation units.

#include "laghos/hydro.h"

namespace flit::laghos {

/// Advances node velocities/positions and refreshes zone densities.
void move_nodes(fpsem::EvalContext& ctx, double dt,
                const std::vector<double>& force, HydroState& s);

/// Nodal forces from zone pressures + viscosities.
void corner_forces(fpsem::EvalContext& ctx, const HydroState& s,
                   const std::vector<double>& p, const std::vector<double>& q,
                   std::vector<double>& force);

/// pdV work: updates zone energies.
void energy_update(fpsem::EvalContext& ctx, double dt,
                   const std::vector<double>& p, const std::vector<double>& q,
                   HydroState& s);

namespace detail {
void update_zone_geometry(fpsem::EvalContext& ctx, HydroState& s);
}

}  // namespace flit::laghos
