#pragma once

// mini-Laghos: a 1D Lagrangian compressible-gas-dynamics proxy in the
// spirit of Laghos [Dobrev, Kolev, Rieben 2012], self-contained (its own
// registered kernels; Bisect scope = the laghos/ files).
//
// It carries the two real defects FLiT root-caused in the paper (Sec. 3.4):
//  * the undefined-behaviour XOR-swap macro (#define xsw(a,b) a^=b^=a^=b)
//    used by two visible utility symbols -- an optimizer that exploits UB
//    (xlc++ -O3) turns every result into NaN;
//  * an exact `== 0.0` comparison in the artificial-viscosity kernel: the
//    compared velocity jump carries tiny compiler-induced variability, and
//    the branch flip produces a macroscopic energy difference (the 11.2%
//    relative l2 jump of the introduction).  The epsilon-compare fix
//    restores agreement even under value-unsafe optimization.

#include <cstddef>
#include <string>
#include <vector>

#include "core/test_base.h"
#include "fpsem/env.h"

namespace flit::laghos {

struct HydroOptions {
  std::size_t zones = 60;
  int steps = 1000;
  double cfl = 0.25;
  double gamma = 1.4;  ///< ideal-gas ratio of specific heats

  /// Historical bug 1: the UB XOR-swap macro in the utility sorters.
  bool use_xor_swap_bug = false;

  /// Historical bug 2 fix: epsilon-based zero compare in the viscosity
  /// (false reproduces the buggy exact `== 0.0` branch).
  bool epsilon_zero_compare = false;
};

/// Lagrangian state: node positions/velocities, zone energies/densities.
struct HydroState {
  std::vector<double> x;    ///< node positions (zones + 1)
  std::vector<double> v;    ///< node velocities (zones + 1)
  std::vector<double> e;    ///< zone specific internal energies
  std::vector<double> rho;  ///< zone densities
  std::vector<double> m;    ///< zone masses (constant in Lagrangian frame)

  /// Q-switch hysteresis: once a zone's shock detector fires it stays
  /// flagged (and keeps the stabilization floor) for the rest of the run.
  /// This is what lets a single early branch flip grow into the
  /// macroscopic energy divergence of Sec. 3.4.
  std::vector<char> shocked;

  double t = 0.0;
  double last_dt = 0.0;
};

/// Sod-like shock tube initial condition on [0, 1].
HydroState initial_state(std::size_t zones);

/// Advances `steps` Lagrangian time steps.
HydroState simulate(fpsem::EvalContext& ctx, const HydroOptions& opts);

/// The paper's comparison metric: l2 norm of the energy over the mesh.
double energy_norm(fpsem::EvalContext& ctx, const HydroState& s);

/// The source files of the mini-Laghos application (Bisect scope).
std::vector<std::string> laghos_source_files();

/// FLiT test: runs the shock tube and returns the energy l2 norm.
class LaghosTest final : public core::TestBase {
 public:
  explicit LaghosTest(HydroOptions opts = {}) : opts_(opts) {}

  [[nodiscard]] std::string name() const override { return "Laghos"; }
  [[nodiscard]] std::size_t getInputsPerRun() const override { return 0; }
  [[nodiscard]] std::vector<double> getDefaultInput() const override {
    return {};
  }
  [[nodiscard]] core::TestResult run_impl(
      const std::vector<double>&, fpsem::EvalContext& ctx) const override {
    return static_cast<long double>(
        energy_norm(ctx, simulate(ctx, opts_)));
  }
  using core::TestBase::compare;
  [[nodiscard]] long double compare(long double baseline,
                                    long double test) const override;

 private:
  HydroOptions opts_;
};

// ---- individual kernels (exposed for unit testing) ----------------------

/// Ideal-gas EOS: p = (gamma - 1) rho e per zone.
void eos_pressure(fpsem::EvalContext& ctx, double gamma,
                  const std::vector<double>& rho, const std::vector<double>& e,
                  std::vector<double>& p);

/// Zone sound speeds cs = sqrt(gamma p / rho).
void sound_speed(fpsem::EvalContext& ctx, double gamma,
                 const std::vector<double>& p, const std::vector<double>& rho,
                 std::vector<double>& cs);

/// Artificial viscosity with the (optionally fixed) zero-compare branch.
/// Updates the state's Q-switch hysteresis flags.
void artificial_viscosity(fpsem::EvalContext& ctx, HydroState& s,
                          const std::vector<double>& cs,
                          const std::vector<double>& p,
                          bool epsilon_zero_compare, std::vector<double>& q);

/// CFL time step; the viscosity contributes to the signal speed (as in
/// the real codes), and the zone scan goes through the utility sorters
/// (the XOR-swap site).
double cfl_dt(fpsem::EvalContext& ctx, const HydroState& s,
              const std::vector<double>& cs, const std::vector<double>& q,
              double cfl, bool use_xor_swap);

/// In-place utility sorters built on the swap idiom (laghos/utils.cpp).
/// With `use_xor_swap` they go through the UB macro emulation.
double min_reduce(fpsem::EvalContext& ctx, std::vector<double> values,
                  bool use_xor_swap);
double max_reduce(fpsem::EvalContext& ctx, std::vector<double> values,
                  bool use_xor_swap);

}  // namespace flit::laghos
