// laghos/hydro.cpp -- the Lagrangian driver: forces, energy update, the
// main time loop and the FLiT adapter.

#include <cmath>

#include "fpsem/code_model.h"
#include "laghos/hydro.h"
#include "laghos/internal.h"

namespace flit::laghos {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kCornerForces = register_fn({
    .name = "Hydro::CornerForces",
    .file = "laghos/hydro.cpp",
});
const fpsem::FunctionId kEnergyUpdate = register_fn({
    .name = "Hydro::EnergyUpdate",
    .file = "laghos/hydro.cpp",
});
const fpsem::FunctionId kEnergyNorm = register_fn({
    .name = "Hydro::EnergyNorm",
    .file = "laghos/hydro.cpp",
});

}  // namespace

HydroState initial_state(std::size_t zones) {
  HydroState s;
  s.x.resize(zones + 1);
  s.v.assign(zones + 1, 0.0);
  s.e.resize(zones);
  s.rho.resize(zones);
  s.m.resize(zones);
  const double h = 1.0 / static_cast<double>(zones);
  for (std::size_t i = 0; i <= zones; ++i) {
    s.x[i] = h * static_cast<double>(i);
  }
  for (std::size_t z = 0; z < zones; ++z) {
    const bool left = (z < zones / 2);  // Sod: high-pressure left half
    s.rho[z] = left ? 1.0 : 0.125;
    s.e[z] = left ? 2.5 : 2.0;
    s.m[z] = s.rho[z] * h;
  }
  return s;
}

void corner_forces(fpsem::EvalContext& ctx, const HydroState& s,
                   const std::vector<double>& p, const std::vector<double>& q,
                   std::vector<double>& force) {
  fpsem::FpEnv env = ctx.fn(kCornerForces);
  const std::size_t nodes = s.x.size();
  force.assign(nodes, 0.0);
  for (std::size_t i = 0; i < nodes; ++i) {
    const double left =
        i > 0 ? env.add(p[i - 1], q[i - 1]) : env.add(p[0], q[0]);
    const double right = i < s.e.size() ? env.add(p[i], q[i])
                                        : env.add(p[s.e.size() - 1],
                                                  q[s.e.size() - 1]);
    force[i] = env.sub(left, right);
  }
}

void energy_update(fpsem::EvalContext& ctx, double dt,
                   const std::vector<double>& p, const std::vector<double>& q,
                   HydroState& s) {
  fpsem::FpEnv env = ctx.fn(kEnergyUpdate);
  for (std::size_t z = 0; z < s.e.size(); ++z) {
    const double dv = env.sub(s.v[z + 1], s.v[z]);
    const double work =
        env.mul(env.add(p[z], q[z]), env.div(dv, s.m[z]));
    s.e[z] = env.mul_add(-dt, work, s.e[z]);
    if (s.e[z] < 1e-12) s.e[z] = 1e-12;  // positivity floor
  }
}

HydroState simulate(fpsem::EvalContext& ctx, const HydroOptions& opts) {
  HydroState s = initial_state(opts.zones);
  std::vector<double> p, cs, q, force;
  for (int step = 0; step < opts.steps; ++step) {
    eos_pressure(ctx, opts.gamma, s.rho, s.e, p);
    sound_speed(ctx, opts.gamma, p, s.rho, cs);
    artificial_viscosity(ctx, s, cs, p, opts.epsilon_zero_compare, q);
    const double dt =
        cfl_dt(ctx, s, cs, q, opts.cfl, opts.use_xor_swap_bug);
    corner_forces(ctx, s, p, q, force);
    move_nodes(ctx, dt, force, s);
    energy_update(ctx, dt, p, q, s);
    s.t += dt;
    s.last_dt = dt;
    if (std::isnan(dt)) break;  // the xsw bug: everything is NaN already
  }
  return s;
}

double energy_norm(fpsem::EvalContext& ctx, const HydroState& s) {
  fpsem::FpEnv env = ctx.fn(kEnergyNorm);
  return env.norm2(std::span<const double>(s.e.data(), s.e.size()));
}

std::vector<std::string> laghos_source_files() {
  return {"laghos/utils.cpp", "laghos/qupdate.cpp", "laghos/timestep.cpp",
          "laghos/hydro.cpp"};
}

long double LaghosTest::compare(long double baseline,
                                long double test) const {
  if (std::isnan(static_cast<double>(baseline)) !=
      std::isnan(static_cast<double>(test))) {
    return HUGE_VALL;
  }
  if (std::isnan(static_cast<double>(baseline))) return 0.0L;
  return fabsl(baseline - test);
}

}  // namespace flit::laghos
