// laghos/utils.cpp -- utility reductions built on an exchange sort whose
// swap is (optionally) the historical `#define xsw(a,b) a^=b^=a^=b` macro.
//
// The macro sequences unsequenced modifications of `a`, which is undefined
// behaviour in C++; IBM's xlc++ at -O3 optimized it into garbage, turning
// every Laghos result into NaN (Sec. 3.4).  We model the consequence
// deterministically: when the containing function was compiled by an
// optimizer that exploits UB (FpSemantics::exploits_ub), the swap corrupts
// the exchanged lanes to NaN.  With the macro replaced by a proper swap
// (use_xor_swap = false), every compilation behaves.

#include <algorithm>
#include <cmath>
#include <limits>

#include "fpsem/code_model.h"
#include "laghos/hydro.h"

namespace flit::laghos {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kMinReduce = register_fn({
    .name = "Utils::MinReduce",
    .file = "laghos/utils.cpp",
});
const fpsem::FunctionId kMaxReduce = register_fn({
    .name = "Utils::MaxReduce",
    .file = "laghos/utils.cpp",
});

/// The xsw macro's observable behaviour under this function's compilation.
void xsw(const fpsem::FpEnv& env, double& a, double& b, bool use_xor_swap) {
  if (use_xor_swap && env.sem().exploits_ub) {
    // The optimizer reordered the unsequenced XOR chain: both lanes die.
    a = std::numeric_limits<double>::quiet_NaN();
    b = std::numeric_limits<double>::quiet_NaN();
    return;
  }
  std::swap(a, b);
}

/// Exchange sort used by both reductions (the macro's two call sites).
void exchange_sort(const fpsem::FpEnv& env, std::vector<double>& v,
                   bool use_xor_swap) {
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    for (std::size_t j = 0; j + 1 < v.size() - i; ++j) {
      if (v[j] > v[j + 1]) xsw(env, v[j], v[j + 1], use_xor_swap);
    }
  }
}

}  // namespace

double min_reduce(fpsem::EvalContext& ctx, std::vector<double> values,
                  bool use_xor_swap) {
  fpsem::FpEnv env = ctx.fn(kMinReduce);
  if (values.empty()) return std::numeric_limits<double>::infinity();
  exchange_sort(env, values, use_xor_swap);
  return values.front();
}

double max_reduce(fpsem::EvalContext& ctx, std::vector<double> values,
                  bool use_xor_swap) {
  fpsem::FpEnv env = ctx.fn(kMaxReduce);
  if (values.empty()) return -std::numeric_limits<double>::infinity();
  exchange_sort(env, values, use_xor_swap);
  return values.back();
}

}  // namespace flit::laghos
