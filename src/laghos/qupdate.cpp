// laghos/qupdate.cpp -- quadrature-point physics: equation of state,
// sound speed, and the artificial viscosity containing the historical
// exact-zero comparison.

#include <stdexcept>

#include "fpsem/code_model.h"
#include "laghos/hydro.h"

namespace flit::laghos {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kEos = register_fn({
    .name = "QUpdate::EosPressure",
    .file = "laghos/qupdate.cpp",
});
const fpsem::FunctionId kSoundSpeed = register_fn({
    .name = "QUpdate::SoundSpeed",
    .file = "laghos/qupdate.cpp",
});
const fpsem::FunctionId kViscosity = register_fn({
    .name = "QUpdate::ArtificialViscosity",
    .file = "laghos/qupdate.cpp",
});

}  // namespace

void eos_pressure(fpsem::EvalContext& ctx, double gamma,
                  const std::vector<double>& rho, const std::vector<double>& e,
                  std::vector<double>& p) {
  if (rho.size() != e.size()) throw std::invalid_argument("eos sizes");
  fpsem::FpEnv env = ctx.fn(kEos);
  p.resize(rho.size());
  const double gm1 = env.sub(gamma, 1.0);
  for (std::size_t z = 0; z < rho.size(); ++z) {
    p[z] = env.mul(gm1, env.mul(rho[z], e[z]));
  }
}

void sound_speed(fpsem::EvalContext& ctx, double gamma,
                 const std::vector<double>& p, const std::vector<double>& rho,
                 std::vector<double>& cs) {
  fpsem::FpEnv env = ctx.fn(kSoundSpeed);
  cs.resize(p.size());
  for (std::size_t z = 0; z < p.size(); ++z) {
    cs[z] = env.sqrt(env.div(env.mul(gamma, p[z]), rho[z]));
  }
}

void artificial_viscosity(fpsem::EvalContext& ctx, HydroState& s,
                          const std::vector<double>& cs,
                          const std::vector<double>& p,
                          bool epsilon_zero_compare, std::vector<double>& q) {
  fpsem::FpEnv env = ctx.fn(kViscosity);
  const std::size_t zones = s.e.size();
  q.assign(zones, 0.0);
  if (s.shocked.size() != zones) s.shocked.assign(zones, 0);
  constexpr double q1 = 0.7;     // linear viscosity coefficient
  constexpr double q2 = 2.0;     // quadratic viscosity coefficient
  constexpr double z_ref = 1.3;  // reference acoustic impedance
  constexpr double eps = 1e-12;

  // The paper's root-caused defect (Sec. 3.4): the Q calibration checks
  // that the direct and reciprocal-table normalizations of its linear
  // coefficient agree, via an exact comparison against 0.0, and engages a
  // conservative stabilization floor when they do not.  Under precise
  // division the two forms differ in the last ulp, so the floor is active
  // -- and has always been part of the trusted answers.  Value-unsafe
  // division (xlc++ -O3) folds both forms into the reciprocal one, the
  // probe compares exactly equal, and the floor silently vanishes: the
  // shock heating changes at the percent level.  The confirmed fix is an
  // epsilon-based comparison, under which every compilation agrees that
  // ulp-level residue means "equal".
  const double probe = env.sub(env.div(q1, z_ref),
                               env.mul(q1, env.div(1.0, z_ref)));
  const bool floor_active =
      epsilon_zero_compare ? (env.sqrt(env.mul(probe, probe)) > eps)
                           : !(probe == 0.0);

  for (std::size_t z = 0; z < zones; ++z) {
    const double dv = env.sub(s.v[z + 1], s.v[z]);
    if (dv == 0.0) {  // genuinely quiescent zone
      q[z] = 0.0;
      continue;
    }
    s.shocked[z] = 1;
    if (dv < 0.0) {  // compression: standard Q (+ the calibration floor)
      const double lin = env.mul(q1, env.mul(cs[z], env.mul(s.rho[z], -dv)));
      const double quad = env.mul(q2, env.mul(s.rho[z], env.mul(dv, dv)));
      q[z] = env.add(lin, quad);
      if (floor_active) q[z] = env.add(q[z], env.mul(0.3, p[z]));
    } else {
      q[z] = 0.0;  // expansion: no viscosity
    }
  }
}

}  // namespace flit::laghos
