#include "linalg/densemat.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace flit::linalg {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kMult = register_fn({
    .name = "DenseMatrix::Mult",
    .file = "linalg/densemat.cpp",
});
const fpsem::FunctionId kMultTranspose = register_fn({
    .name = "DenseMatrix::MultTranspose",
    .file = "linalg/densemat.cpp",
});
const fpsem::FunctionId kAddMultAAt = register_fn({
    .name = "DenseMatrix::AddMult_aAAt",
    .file = "linalg/densemat.cpp",
});
const fpsem::FunctionId kMatMul = register_fn({
    .name = "DenseMatrix::MatMul",
    .file = "linalg/densemat.cpp",
});
const fpsem::FunctionId kLuSolve = register_fn({
    .name = "DenseMatrix::LUSolve",
    .file = "linalg/densemat.cpp",
});
// LU pivot selection is a static helper, only reachable through LUSolve.
const fpsem::FunctionId kLuPivot = register_fn({
    .name = "detail::lu_pivot",
    .file = "linalg/densemat.cpp",
    .exported = false,
    .host_symbol = "DenseMatrix::LUSolve",
});
const fpsem::FunctionId kDet = register_fn({
    .name = "DenseMatrix::Det",
    .file = "linalg/densemat.cpp",
});
const fpsem::FunctionId kFrobenius = register_fn({
    .name = "DenseMatrix::FrobeniusNorm",
    .file = "linalg/densemat.cpp",
    .inline_candidate = true,
});
const fpsem::FunctionId kPowerStep = register_fn({
    .name = "DenseMatrix::PowerStep",
    .file = "linalg/densemat.cpp",
});

/// Partial-pivoting scan: returns the row with the largest |column| entry.
/// Internal function -- Bisect can only find it through LUSolve.
std::size_t lu_pivot(fpsem::EvalContext& ctx, const DenseMatrix& lu,
                     std::size_t col) {
  fpsem::FpEnv env = ctx.fn(kLuPivot);
  std::size_t best = col;
  double best_mag = std::fabs(lu(col, col));
  for (std::size_t r = col + 1; r < lu.rows(); ++r) {
    // |x| as sqrt(x*x) keeps the scan inside the semantics model.
    const double mag = env.sqrt(env.mul(lu(r, col), lu(r, col)));
    if (mag > best_mag) {
      best_mag = mag;
      best = r;
    }
  }
  return best;
}

}  // namespace

void mult(fpsem::EvalContext& ctx, const DenseMatrix& a, const Vector& x,
          Vector& y) {
  if (a.cols() != x.size()) throw std::invalid_argument("Mult: size");
  y.resize(a.rows());
  fpsem::FpEnv env = ctx.fn(kMult);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    y[i] = env.dot(a.row(i), x.span());
  }
}

void mult_transpose(fpsem::EvalContext& ctx, const DenseMatrix& a,
                    const Vector& x, Vector& y) {
  if (a.rows() != x.size()) throw std::invalid_argument("MultTranspose");
  y.assign(a.cols(), 0.0);
  fpsem::FpEnv env = ctx.fn(kMultTranspose);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    env.axpy(x[i], a.row(i), y.span());
  }
}

void add_mult_aAAt(fpsem::EvalContext& ctx, double alpha,
                   const DenseMatrix& a, DenseMatrix& m) {
  const std::size_t n = a.rows();
  if (a.cols() != n || m.rows() != n || m.cols() != n) {
    throw std::invalid_argument("AddMult_aAAt: square matrices required");
  }
  fpsem::FpEnv env = ctx.fn(kAddMultAAt);
  // Straightforward nested loops, as the paper describes the MFEM
  // original: M_{ij} += alpha * sum_k A_{ik} A_{jk}.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double aat = env.dot(a.row(i), a.row(j));
      m(i, j) = env.mul_add(alpha, aat, m(i, j));
    }
  }
}

void matmul(fpsem::EvalContext& ctx, const DenseMatrix& a,
            const DenseMatrix& b, DenseMatrix& c) {
  if (a.cols() != b.rows()) throw std::invalid_argument("MatMul: size");
  c = DenseMatrix(a.rows(), b.cols());
  fpsem::FpEnv env = ctx.fn(kMatMul);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        acc = env.mul_add(a(i, k), b(k, j), acc);
      }
      c(i, j) = acc;
    }
  }
}

void lu_solve(fpsem::EvalContext& ctx, const DenseMatrix& a, const Vector& b,
              Vector& x) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::invalid_argument("LUSolve: size");
  }
  DenseMatrix lu = a;
  x = b;
  fpsem::FpEnv env = ctx.fn(kLuSolve);
  for (std::size_t c = 0; c < n; ++c) {
    const std::size_t p = lu_pivot(ctx, lu, c);
    if (p != c) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu(c, j), lu(p, j));
      std::swap(x[c], x[p]);
    }
    if (lu(c, c) == 0.0) throw std::domain_error("LUSolve: singular");
    for (std::size_t r = c + 1; r < n; ++r) {
      const double f = env.div(lu(r, c), lu(c, c));
      lu(r, c) = f;
      for (std::size_t j = c + 1; j < n; ++j) {
        lu(r, j) = env.mul_add(-f, lu(c, j), lu(r, j));
      }
      x[r] = env.mul_add(-f, x[c], x[r]);
    }
  }
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = x[ri];
    for (std::size_t j = ri + 1; j < n; ++j) {
      acc = env.mul_add(-lu(ri, j), x[j], acc);
    }
    x[ri] = env.div(acc, lu(ri, ri));
  }
}

double det(fpsem::EvalContext& ctx, const DenseMatrix& a) {
  const std::size_t n = a.rows();
  if (a.cols() != n) throw std::invalid_argument("Det: square required");
  DenseMatrix lu = a;
  fpsem::FpEnv env = ctx.fn(kDet);
  double d = 1.0;
  for (std::size_t c = 0; c < n; ++c) {
    const std::size_t p = lu_pivot(ctx, lu, c);
    if (p != c) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu(c, j), lu(p, j));
      d = -d;
    }
    if (lu(c, c) == 0.0) return 0.0;
    for (std::size_t r = c + 1; r < n; ++r) {
      const double f = env.div(lu(r, c), lu(c, c));
      for (std::size_t j = c + 1; j < n; ++j) {
        lu(r, j) = env.mul_add(-f, lu(c, j), lu(r, j));
      }
    }
    d = env.mul(d, lu(c, c));
  }
  return d;
}

double frobenius_norm(fpsem::EvalContext& ctx, const DenseMatrix& a) {
  fpsem::FpEnv env = ctx.fn(kFrobenius);
  double acc = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    acc = env.add(acc, env.dot(a.row(i), a.row(i)));
  }
  return env.sqrt(acc);
}

double power_step(fpsem::EvalContext& ctx, const DenseMatrix& a,
                  const Vector& x, Vector& y) {
  fpsem::FpEnv env = ctx.fn(kPowerStep);
  mult(ctx, a, x, y);
  const double rayleigh = env.dot(x.span(), y.span());
  const double n = env.norm2(y.span());
  if (n != 0.0) env.scal(env.div(1.0, n), y.span());
  return rayleigh;
}

}  // namespace flit::linalg
