#pragma once

// Dense matrix type and semantics-parameterized kernels (source file
// "linalg/densemat.cpp" of the simulated application).  Includes
// AddMult_aAAt -- the M += a * A * A^T kernel that FLiT root-caused as the
// single function behind MFEM example 13's 180-197% relative error
// (Finding 2 of the paper).

#include <cstddef>
#include <initializer_list>

#include "fpsem/env.h"
#include "linalg/vector.h"

namespace flit::linalg {

/// Row-major dense matrix.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double value = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  const double& operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    return {data_.data() + i * cols_, cols_};
  }
  [[nodiscard]] std::span<double> row(std::size_t i) {
    return {data_.data() + i * cols_, cols_};
  }

  friend bool operator==(const DenseMatrix&, const DenseMatrix&) = default;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  Vector data_;
};

// ---- registered kernels (file "linalg/densemat.cpp") -------------------

/// y = A x.
void mult(fpsem::EvalContext& ctx, const DenseMatrix& a, const Vector& x,
          Vector& y);

/// y = A^T x.
void mult_transpose(fpsem::EvalContext& ctx, const DenseMatrix& a,
                    const Vector& x, Vector& y);

/// M += alpha * A * A^T (square A); the paper's Finding 2 kernel.
void add_mult_aAAt(fpsem::EvalContext& ctx, double alpha,
                   const DenseMatrix& a, DenseMatrix& m);

/// C = A * B.
void matmul(fpsem::EvalContext& ctx, const DenseMatrix& a,
            const DenseMatrix& b, DenseMatrix& c);

/// Solves A x = b in place via LU with partial pivoting (A is copied).
void lu_solve(fpsem::EvalContext& ctx, const DenseMatrix& a, const Vector& b,
              Vector& x);

/// Determinant via LU factorization.
double det(fpsem::EvalContext& ctx, const DenseMatrix& a);

/// Frobenius norm.
double frobenius_norm(fpsem::EvalContext& ctx, const DenseMatrix& a);

/// One step of the power iteration: y = A x / ||A x||_2; returns the
/// Rayleigh estimate x . A x.
double power_step(fpsem::EvalContext& ctx, const DenseMatrix& a,
                  const Vector& x, Vector& y);

}  // namespace flit::linalg
