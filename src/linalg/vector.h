#pragma once

// Dense vector type and semantics-parameterized vector kernels.
//
// Each kernel below is a registered function of the simulated
// application's code model (source file "linalg/vector.cpp"): it fetches
// its own floating-point semantics from the EvalContext, so a linked
// binary can run Vector::dot under one compiler's behaviour and
// Vector::axpy under another's -- the substrate FLiT Bisect searches over.
//
// Serialization helpers (hexfloat, lossless) let tests return whole
// vectors as the paper's std::string test results.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "fpsem/env.h"

namespace flit::linalg {

class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double value = 0.0) : data_(n, value) {}
  Vector(std::initializer_list<double> init) : data_(init) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator[](std::size_t i) { return data_[i]; }
  const double& operator[](std::size_t i) const { return data_[i]; }

  [[nodiscard]] std::span<double> span() { return data_; }
  [[nodiscard]] std::span<const double> span() const { return data_; }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  void assign(std::size_t n, double value) { data_.assign(n, value); }
  void resize(std::size_t n) { data_.resize(n); }

  friend bool operator==(const Vector&, const Vector&) = default;

 private:
  std::vector<double> data_;
};

// ---- registered kernels (file "linalg/vector.cpp") ---------------------

/// Inner product a . b.
double dot(fpsem::EvalContext& ctx, const Vector& a, const Vector& b);

/// Euclidean norm ||v||_2.
double norml2(fpsem::EvalContext& ctx, const Vector& v);

/// Sum of entries.
double sum(fpsem::EvalContext& ctx, const Vector& v);

/// y += x (elementwise).
void add(fpsem::EvalContext& ctx, const Vector& x, Vector& y);

/// y += alpha * x.
void axpy(fpsem::EvalContext& ctx, double alpha, const Vector& x, Vector& y);

/// v *= alpha.
void scale(fpsem::EvalContext& ctx, double alpha, Vector& v);

/// out = a - b.
void subtract(fpsem::EvalContext& ctx, const Vector& a, const Vector& b,
              Vector& out);

/// ||a - b||_2.
double distance(fpsem::EvalContext& ctx, const Vector& a, const Vector& b);

/// Weighted mean (sum w_i v_i) / (sum w_i).
double weighted_mean(fpsem::EvalContext& ctx, const Vector& v,
                     const Vector& w);

// ---- plain helpers (not part of the simulated application) -------------

/// Lossless hexfloat serialization, for std::string-valued test results.
[[nodiscard]] std::string serialize(const Vector& v);
[[nodiscard]] Vector deserialize(const std::string& s);

/// Host-arithmetic l2 norm of the difference of two serialized vectors
/// (the MFEM study's ||baseline - actual||_2 comparison function); returns
/// the norm relativized by ||baseline||_2 when `relative` is set.
[[nodiscard]] long double l2_string_metric(const std::string& baseline,
                                           const std::string& test,
                                           bool relative = false);

}  // namespace flit::linalg
