#pragma once

// Compressed-sparse-row matrix and kernels (source file
// "linalg/sparsemat.cpp" of the simulated application): SpMV, smoothers
// and row utilities used by the mini-MFEM assembly and solvers.

#include <cstddef>
#include <vector>

#include "fpsem/env.h"
#include "linalg/vector.h"

namespace flit::linalg {

/// CSR sparse matrix, built from triplets.
class SparseMatrix {
 public:
  SparseMatrix() = default;
  SparseMatrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {
    row_start_.assign(rows + 1, 0);
  }

  /// Triplet staging; call finalize() before using the kernels.
  void add(std::size_t i, std::size_t j, double v);
  void finalize();

  [[nodiscard]] bool finalized() const { return finalized_; }
  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

  [[nodiscard]] const std::vector<std::size_t>& row_start() const {
    return row_start_;
  }
  [[nodiscard]] const std::vector<std::size_t>& col_index() const {
    return col_index_;
  }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

 private:
  struct Triplet {
    std::size_t i, j;
    double v;
  };

  std::size_t rows_ = 0, cols_ = 0;
  bool finalized_ = false;
  std::vector<Triplet> staging_;
  std::vector<std::size_t> row_start_;
  std::vector<std::size_t> col_index_;
  std::vector<double> values_;
};

// ---- registered kernels (file "linalg/sparsemat.cpp") ------------------

/// y = A x.
void mult(fpsem::EvalContext& ctx, const SparseMatrix& a, const Vector& x,
          Vector& y);

/// One forward Gauss-Seidel sweep on A x = b.
void gauss_seidel(fpsem::EvalContext& ctx, const SparseMatrix& a,
                  const Vector& b, Vector& x);

/// One weighted-Jacobi sweep on A x = b: x += w D^{-1} (b - A x).
void jacobi_smooth(fpsem::EvalContext& ctx, const SparseMatrix& a,
                   const Vector& b, double weight, Vector& x);

/// Diagonal extraction.
void diag(fpsem::EvalContext& ctx, const SparseMatrix& a, Vector& d);

/// Residual r = b - A x.
void residual(fpsem::EvalContext& ctx, const SparseMatrix& a, const Vector& b,
              const Vector& x, Vector& r);

/// Row sums (used for lumped mass matrices).
void row_sums(fpsem::EvalContext& ctx, const SparseMatrix& a, Vector& s);

}  // namespace flit::linalg
