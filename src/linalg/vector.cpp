#include "linalg/vector.h"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace flit::linalg {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kDot = register_fn({
    .name = "Vector::dot",
    .file = "linalg/vector.cpp",
    .inline_candidate = true,
});
const fpsem::FunctionId kNorml2 = register_fn({
    .name = "Vector::norml2",
    .file = "linalg/vector.cpp",
});
const fpsem::FunctionId kSum = register_fn({
    .name = "Vector::sum",
    .file = "linalg/vector.cpp",
    .inline_candidate = true,
});
const fpsem::FunctionId kAdd = register_fn({
    .name = "Vector::add",
    .file = "linalg/vector.cpp",
    .inline_candidate = true,
});
const fpsem::FunctionId kAxpy = register_fn({
    .name = "Vector::axpy",
    .file = "linalg/vector.cpp",
});
const fpsem::FunctionId kScale = register_fn({
    .name = "Vector::scale",
    .file = "linalg/vector.cpp",
    .inline_candidate = true,
});
const fpsem::FunctionId kSubtract = register_fn({
    .name = "Vector::subtract",
    .file = "linalg/vector.cpp",
});
const fpsem::FunctionId kDistance = register_fn({
    .name = "Vector::distance",
    .file = "linalg/vector.cpp",
});
const fpsem::FunctionId kWeightedMean = register_fn({
    .name = "Vector::weighted_mean",
    .file = "linalg/vector.cpp",
});

void check_same_size(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("vector size mismatch");
  }
}

}  // namespace

double dot(fpsem::EvalContext& ctx, const Vector& a, const Vector& b) {
  check_same_size(a, b);
  fpsem::FpEnv env = ctx.fn(kDot);
  return env.dot(a.span(), b.span());
}

double norml2(fpsem::EvalContext& ctx, const Vector& v) {
  fpsem::FpEnv env = ctx.fn(kNorml2);
  return env.norm2(v.span());
}

double sum(fpsem::EvalContext& ctx, const Vector& v) {
  fpsem::FpEnv env = ctx.fn(kSum);
  return env.sum(v.span());
}

void add(fpsem::EvalContext& ctx, const Vector& x, Vector& y) {
  check_same_size(x, y);
  fpsem::FpEnv env = ctx.fn(kAdd);
  env.axpy(1.0, x.span(), y.span());
}

void axpy(fpsem::EvalContext& ctx, double alpha, const Vector& x, Vector& y) {
  check_same_size(x, y);
  fpsem::FpEnv env = ctx.fn(kAxpy);
  env.axpy(alpha, x.span(), y.span());
}

void scale(fpsem::EvalContext& ctx, double alpha, Vector& v) {
  fpsem::FpEnv env = ctx.fn(kScale);
  env.scal(alpha, v.span());
}

void subtract(fpsem::EvalContext& ctx, const Vector& a, const Vector& b,
              Vector& out) {
  check_same_size(a, b);
  out.resize(a.size());
  fpsem::FpEnv env = ctx.fn(kSubtract);
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = env.sub(a[i], b[i]);
  }
}

double distance(fpsem::EvalContext& ctx, const Vector& a, const Vector& b) {
  check_same_size(a, b);
  fpsem::FpEnv env = ctx.fn(kDistance);
  Vector diff(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff[i] = env.sub(a[i], b[i]);
  }
  return env.norm2(diff.span());
}

double weighted_mean(fpsem::EvalContext& ctx, const Vector& v,
                     const Vector& w) {
  check_same_size(v, w);
  fpsem::FpEnv env = ctx.fn(kWeightedMean);
  const double num = env.dot(v.span(), w.span());
  const double den = env.sum(w.span());
  return env.div(num, den);
}

std::string serialize(const Vector& v) {
  std::ostringstream os;
  os << v.size();
  char buf[40];
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::snprintf(buf, sizeof buf, " %a", v[i]);
    os << buf;
  }
  return os.str();
}

Vector deserialize(const std::string& s) {
  std::istringstream is(s);
  std::size_t n = 0;
  is >> n;
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string tok;
    is >> tok;
    v[i] = std::strtod(tok.c_str(), nullptr);
  }
  if (!is) throw std::invalid_argument("malformed serialized vector");
  return v;
}

long double l2_string_metric(const std::string& baseline,
                             const std::string& test, bool relative) {
  if (baseline == test) return 0.0L;  // bitwise equal (covers NaN == NaN)
  const Vector b = deserialize(baseline);
  const Vector t = deserialize(test);
  if (b.size() != t.size()) return HUGE_VALL;
  long double acc = 0.0L;
  long double bnorm = 0.0L;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const long double d =
        static_cast<long double>(b[i]) - static_cast<long double>(t[i]);
    // A NaN/Inf on either side is a crash-grade difference, never "equal".
    if (!std::isfinite(static_cast<double>(d))) return HUGE_VALL;
    acc += d * d;
    bnorm += static_cast<long double>(b[i]) * static_cast<long double>(b[i]);
  }
  const long double norm = sqrtl(acc);
  if (!relative) return norm;
  return bnorm > 0.0L ? norm / sqrtl(bnorm) : norm;
}

}  // namespace flit::linalg
