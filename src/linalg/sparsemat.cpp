#include "linalg/sparsemat.h"

#include <algorithm>
#include <stdexcept>

namespace flit::linalg {

namespace {

using fpsem::register_fn;

const fpsem::FunctionId kMult = register_fn({
    .name = "SparseMatrix::Mult",
    .file = "linalg/sparsemat.cpp",
});
const fpsem::FunctionId kGaussSeidel = register_fn({
    .name = "SparseMatrix::GaussSeidel",
    .file = "linalg/sparsemat.cpp",
});
const fpsem::FunctionId kJacobi = register_fn({
    .name = "SparseMatrix::JacobiSmooth",
    .file = "linalg/sparsemat.cpp",
});
const fpsem::FunctionId kDiag = register_fn({
    .name = "SparseMatrix::GetDiag",
    .file = "linalg/sparsemat.cpp",
    .inline_candidate = true,
});
const fpsem::FunctionId kResidual = register_fn({
    .name = "SparseMatrix::Residual",
    .file = "linalg/sparsemat.cpp",
});
const fpsem::FunctionId kRowSums = register_fn({
    .name = "SparseMatrix::RowSums",
    .file = "linalg/sparsemat.cpp",
    .inline_candidate = true,
});

void require_finalized(const SparseMatrix& a) {
  if (!a.finalized()) throw std::logic_error("SparseMatrix not finalized");
}

}  // namespace

void SparseMatrix::add(std::size_t i, std::size_t j, double v) {
  if (finalized_) throw std::logic_error("add after finalize");
  if (i >= rows_ || j >= cols_) throw std::out_of_range("triplet index");
  staging_.push_back(Triplet{i, j, v});
}

void SparseMatrix::finalize() {
  if (finalized_) return;
  // Sort triplets by (row, col) and merge duplicates (deterministically,
  // in plain host arithmetic: assembly accumulation order is part of the
  // application's structure, not of its compiled FP semantics).
  std::stable_sort(staging_.begin(), staging_.end(),
                   [](const Triplet& a, const Triplet& b) {
                     return a.i != b.i ? a.i < b.i : a.j < b.j;
                   });
  row_start_.assign(rows_ + 1, 0);
  for (std::size_t k = 0; k < staging_.size();) {
    std::size_t m = k + 1;
    double v = staging_[k].v;
    while (m < staging_.size() && staging_[m].i == staging_[k].i &&
           staging_[m].j == staging_[k].j) {
      v += staging_[m].v;
      ++m;
    }
    col_index_.push_back(staging_[k].j);
    values_.push_back(v);
    ++row_start_[staging_[k].i + 1];
    k = m;
  }
  for (std::size_t r = 0; r < rows_; ++r) row_start_[r + 1] += row_start_[r];
  staging_.clear();
  staging_.shrink_to_fit();
  finalized_ = true;
}

void mult(fpsem::EvalContext& ctx, const SparseMatrix& a, const Vector& x,
          Vector& y) {
  require_finalized(a);
  if (a.cols() != x.size()) throw std::invalid_argument("SpMV: size");
  y.assign(a.rows(), 0.0);
  fpsem::FpEnv env = ctx.fn(kMult);
  const auto& rs = a.row_start();
  const auto& ci = a.col_index();
  const auto& v = a.values();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    for (std::size_t k = rs[r]; k < rs[r + 1]; ++k) {
      acc = env.mul_add(v[k], x[ci[k]], acc);
    }
    y[r] = acc;
  }
}

void gauss_seidel(fpsem::EvalContext& ctx, const SparseMatrix& a,
                  const Vector& b, Vector& x) {
  require_finalized(a);
  fpsem::FpEnv env = ctx.fn(kGaussSeidel);
  const auto& rs = a.row_start();
  const auto& ci = a.col_index();
  const auto& v = a.values();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double acc = b[r];
    double diag_v = 0.0;
    for (std::size_t k = rs[r]; k < rs[r + 1]; ++k) {
      if (ci[k] == r) {
        diag_v = v[k];
      } else {
        acc = env.mul_add(-v[k], x[ci[k]], acc);
      }
    }
    if (diag_v == 0.0) throw std::domain_error("GaussSeidel: zero diagonal");
    x[r] = env.div(acc, diag_v);
  }
}

void jacobi_smooth(fpsem::EvalContext& ctx, const SparseMatrix& a,
                   const Vector& b, double weight, Vector& x) {
  require_finalized(a);
  fpsem::FpEnv env = ctx.fn(kJacobi);
  Vector r;
  residual(ctx, a, b, x, r);
  Vector d;
  diag(ctx, a, d);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = env.mul_add(weight, env.div(r[i], d[i]), x[i]);
  }
}

void diag(fpsem::EvalContext& ctx, const SparseMatrix& a, Vector& d) {
  require_finalized(a);
  (void)ctx.fn(kDiag);  // structural kernel: no FP arithmetic of its own
  d.assign(a.rows(), 0.0);
  const auto& rs = a.row_start();
  const auto& ci = a.col_index();
  const auto& v = a.values();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t k = rs[r]; k < rs[r + 1]; ++k) {
      if (ci[k] == r) d[r] = v[k];
    }
  }
}

void residual(fpsem::EvalContext& ctx, const SparseMatrix& a, const Vector& b,
              const Vector& x, Vector& r) {
  require_finalized(a);
  fpsem::FpEnv env = ctx.fn(kResidual);
  Vector ax;
  mult(ctx, a, x, ax);
  r.resize(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    r[i] = env.sub(b[i], ax[i]);
  }
}

void row_sums(fpsem::EvalContext& ctx, const SparseMatrix& a, Vector& s) {
  require_finalized(a);
  fpsem::FpEnv env = ctx.fn(kRowSums);
  s.assign(a.rows(), 0.0);
  const auto& rs = a.row_start();
  const auto& v = a.values();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const std::span<const double> row{v.data() + rs[r], rs[r + 1] - rs[r]};
    s[r] = env.sum(row);
  }
}

}  // namespace flit::linalg
