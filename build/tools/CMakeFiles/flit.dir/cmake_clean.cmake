file(REMOVE_RECURSE
  "CMakeFiles/flit.dir/flit_cli.cpp.o"
  "CMakeFiles/flit.dir/flit_cli.cpp.o.d"
  "flit"
  "flit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
