# Empty compiler generated dependencies file for flit.
# This may be replaced when dependencies are built.
