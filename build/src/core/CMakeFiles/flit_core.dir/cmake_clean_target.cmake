file(REMOVE_RECURSE
  "libflit_core.a"
)
