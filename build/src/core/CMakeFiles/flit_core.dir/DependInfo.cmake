
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/explorer.cpp" "src/core/CMakeFiles/flit_core.dir/explorer.cpp.o" "gcc" "src/core/CMakeFiles/flit_core.dir/explorer.cpp.o.d"
  "/root/repo/src/core/hierarchy.cpp" "src/core/CMakeFiles/flit_core.dir/hierarchy.cpp.o" "gcc" "src/core/CMakeFiles/flit_core.dir/hierarchy.cpp.o.d"
  "/root/repo/src/core/injection.cpp" "src/core/CMakeFiles/flit_core.dir/injection.cpp.o" "gcc" "src/core/CMakeFiles/flit_core.dir/injection.cpp.o.d"
  "/root/repo/src/core/mixer.cpp" "src/core/CMakeFiles/flit_core.dir/mixer.cpp.o" "gcc" "src/core/CMakeFiles/flit_core.dir/mixer.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/flit_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/flit_core.dir/registry.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/flit_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/flit_core.dir/report.cpp.o.d"
  "/root/repo/src/core/resultsdb.cpp" "src/core/CMakeFiles/flit_core.dir/resultsdb.cpp.o" "gcc" "src/core/CMakeFiles/flit_core.dir/resultsdb.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/core/CMakeFiles/flit_core.dir/runner.cpp.o" "gcc" "src/core/CMakeFiles/flit_core.dir/runner.cpp.o.d"
  "/root/repo/src/core/workflow.cpp" "src/core/CMakeFiles/flit_core.dir/workflow.cpp.o" "gcc" "src/core/CMakeFiles/flit_core.dir/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fpsem/CMakeFiles/flit_fpsem.dir/DependInfo.cmake"
  "/root/repo/build/src/toolchain/CMakeFiles/flit_toolchain.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
