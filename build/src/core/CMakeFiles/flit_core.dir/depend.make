# Empty dependencies file for flit_core.
# This may be replaced when dependencies are built.
