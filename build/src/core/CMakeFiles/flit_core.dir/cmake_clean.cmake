file(REMOVE_RECURSE
  "CMakeFiles/flit_core.dir/explorer.cpp.o"
  "CMakeFiles/flit_core.dir/explorer.cpp.o.d"
  "CMakeFiles/flit_core.dir/hierarchy.cpp.o"
  "CMakeFiles/flit_core.dir/hierarchy.cpp.o.d"
  "CMakeFiles/flit_core.dir/injection.cpp.o"
  "CMakeFiles/flit_core.dir/injection.cpp.o.d"
  "CMakeFiles/flit_core.dir/mixer.cpp.o"
  "CMakeFiles/flit_core.dir/mixer.cpp.o.d"
  "CMakeFiles/flit_core.dir/registry.cpp.o"
  "CMakeFiles/flit_core.dir/registry.cpp.o.d"
  "CMakeFiles/flit_core.dir/report.cpp.o"
  "CMakeFiles/flit_core.dir/report.cpp.o.d"
  "CMakeFiles/flit_core.dir/resultsdb.cpp.o"
  "CMakeFiles/flit_core.dir/resultsdb.cpp.o.d"
  "CMakeFiles/flit_core.dir/runner.cpp.o"
  "CMakeFiles/flit_core.dir/runner.cpp.o.d"
  "CMakeFiles/flit_core.dir/workflow.cpp.o"
  "CMakeFiles/flit_core.dir/workflow.cpp.o.d"
  "libflit_core.a"
  "libflit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
