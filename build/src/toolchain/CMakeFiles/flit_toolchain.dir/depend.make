# Empty dependencies file for flit_toolchain.
# This may be replaced when dependencies are built.
