file(REMOVE_RECURSE
  "libflit_toolchain.a"
)
