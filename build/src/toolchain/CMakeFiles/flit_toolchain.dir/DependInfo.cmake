
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/toolchain/build.cpp" "src/toolchain/CMakeFiles/flit_toolchain.dir/build.cpp.o" "gcc" "src/toolchain/CMakeFiles/flit_toolchain.dir/build.cpp.o.d"
  "/root/repo/src/toolchain/compiler.cpp" "src/toolchain/CMakeFiles/flit_toolchain.dir/compiler.cpp.o" "gcc" "src/toolchain/CMakeFiles/flit_toolchain.dir/compiler.cpp.o.d"
  "/root/repo/src/toolchain/linker.cpp" "src/toolchain/CMakeFiles/flit_toolchain.dir/linker.cpp.o" "gcc" "src/toolchain/CMakeFiles/flit_toolchain.dir/linker.cpp.o.d"
  "/root/repo/src/toolchain/semantics_rules.cpp" "src/toolchain/CMakeFiles/flit_toolchain.dir/semantics_rules.cpp.o" "gcc" "src/toolchain/CMakeFiles/flit_toolchain.dir/semantics_rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fpsem/CMakeFiles/flit_fpsem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
