file(REMOVE_RECURSE
  "CMakeFiles/flit_toolchain.dir/build.cpp.o"
  "CMakeFiles/flit_toolchain.dir/build.cpp.o.d"
  "CMakeFiles/flit_toolchain.dir/compiler.cpp.o"
  "CMakeFiles/flit_toolchain.dir/compiler.cpp.o.d"
  "CMakeFiles/flit_toolchain.dir/linker.cpp.o"
  "CMakeFiles/flit_toolchain.dir/linker.cpp.o.d"
  "CMakeFiles/flit_toolchain.dir/semantics_rules.cpp.o"
  "CMakeFiles/flit_toolchain.dir/semantics_rules.cpp.o.d"
  "libflit_toolchain.a"
  "libflit_toolchain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flit_toolchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
