file(REMOVE_RECURSE
  "libflit_geom.a"
)
