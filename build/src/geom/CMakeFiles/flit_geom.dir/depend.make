# Empty dependencies file for flit_geom.
# This may be replaced when dependencies are built.
