file(REMOVE_RECURSE
  "CMakeFiles/flit_geom.dir/hull.cpp.o"
  "CMakeFiles/flit_geom.dir/hull.cpp.o.d"
  "CMakeFiles/flit_geom.dir/predicates.cpp.o"
  "CMakeFiles/flit_geom.dir/predicates.cpp.o.d"
  "libflit_geom.a"
  "libflit_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flit_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
