
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/densemat.cpp" "src/linalg/CMakeFiles/flit_linalg.dir/densemat.cpp.o" "gcc" "src/linalg/CMakeFiles/flit_linalg.dir/densemat.cpp.o.d"
  "/root/repo/src/linalg/sparsemat.cpp" "src/linalg/CMakeFiles/flit_linalg.dir/sparsemat.cpp.o" "gcc" "src/linalg/CMakeFiles/flit_linalg.dir/sparsemat.cpp.o.d"
  "/root/repo/src/linalg/vector.cpp" "src/linalg/CMakeFiles/flit_linalg.dir/vector.cpp.o" "gcc" "src/linalg/CMakeFiles/flit_linalg.dir/vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fpsem/CMakeFiles/flit_fpsem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
