file(REMOVE_RECURSE
  "CMakeFiles/flit_linalg.dir/densemat.cpp.o"
  "CMakeFiles/flit_linalg.dir/densemat.cpp.o.d"
  "CMakeFiles/flit_linalg.dir/sparsemat.cpp.o"
  "CMakeFiles/flit_linalg.dir/sparsemat.cpp.o.d"
  "CMakeFiles/flit_linalg.dir/vector.cpp.o"
  "CMakeFiles/flit_linalg.dir/vector.cpp.o.d"
  "libflit_linalg.a"
  "libflit_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flit_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
