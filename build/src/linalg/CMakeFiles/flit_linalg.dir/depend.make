# Empty dependencies file for flit_linalg.
# This may be replaced when dependencies are built.
