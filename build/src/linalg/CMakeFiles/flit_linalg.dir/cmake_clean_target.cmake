file(REMOVE_RECURSE
  "libflit_linalg.a"
)
