# Empty dependencies file for flit_mfemini.
# This may be replaced when dependencies are built.
