
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mfemini/bilinearform.cpp" "src/mfemini/CMakeFiles/flit_mfemini.dir/bilinearform.cpp.o" "gcc" "src/mfemini/CMakeFiles/flit_mfemini.dir/bilinearform.cpp.o.d"
  "/root/repo/src/mfemini/bilininteg.cpp" "src/mfemini/CMakeFiles/flit_mfemini.dir/bilininteg.cpp.o" "gcc" "src/mfemini/CMakeFiles/flit_mfemini.dir/bilininteg.cpp.o.d"
  "/root/repo/src/mfemini/coefficients.cpp" "src/mfemini/CMakeFiles/flit_mfemini.dir/coefficients.cpp.o" "gcc" "src/mfemini/CMakeFiles/flit_mfemini.dir/coefficients.cpp.o.d"
  "/root/repo/src/mfemini/eltrans.cpp" "src/mfemini/CMakeFiles/flit_mfemini.dir/eltrans.cpp.o" "gcc" "src/mfemini/CMakeFiles/flit_mfemini.dir/eltrans.cpp.o.d"
  "/root/repo/src/mfemini/examples.cpp" "src/mfemini/CMakeFiles/flit_mfemini.dir/examples.cpp.o" "gcc" "src/mfemini/CMakeFiles/flit_mfemini.dir/examples.cpp.o.d"
  "/root/repo/src/mfemini/fe.cpp" "src/mfemini/CMakeFiles/flit_mfemini.dir/fe.cpp.o" "gcc" "src/mfemini/CMakeFiles/flit_mfemini.dir/fe.cpp.o.d"
  "/root/repo/src/mfemini/gridfunc.cpp" "src/mfemini/CMakeFiles/flit_mfemini.dir/gridfunc.cpp.o" "gcc" "src/mfemini/CMakeFiles/flit_mfemini.dir/gridfunc.cpp.o.d"
  "/root/repo/src/mfemini/linearform.cpp" "src/mfemini/CMakeFiles/flit_mfemini.dir/linearform.cpp.o" "gcc" "src/mfemini/CMakeFiles/flit_mfemini.dir/linearform.cpp.o.d"
  "/root/repo/src/mfemini/mesh.cpp" "src/mfemini/CMakeFiles/flit_mfemini.dir/mesh.cpp.o" "gcc" "src/mfemini/CMakeFiles/flit_mfemini.dir/mesh.cpp.o.d"
  "/root/repo/src/mfemini/quadrature.cpp" "src/mfemini/CMakeFiles/flit_mfemini.dir/quadrature.cpp.o" "gcc" "src/mfemini/CMakeFiles/flit_mfemini.dir/quadrature.cpp.o.d"
  "/root/repo/src/mfemini/solvers.cpp" "src/mfemini/CMakeFiles/flit_mfemini.dir/solvers.cpp.o" "gcc" "src/mfemini/CMakeFiles/flit_mfemini.dir/solvers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/flit_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/flit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/toolchain/CMakeFiles/flit_toolchain.dir/DependInfo.cmake"
  "/root/repo/build/src/fpsem/CMakeFiles/flit_fpsem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
