file(REMOVE_RECURSE
  "libflit_mfemini.a"
)
