file(REMOVE_RECURSE
  "CMakeFiles/flit_mfemini.dir/bilinearform.cpp.o"
  "CMakeFiles/flit_mfemini.dir/bilinearform.cpp.o.d"
  "CMakeFiles/flit_mfemini.dir/bilininteg.cpp.o"
  "CMakeFiles/flit_mfemini.dir/bilininteg.cpp.o.d"
  "CMakeFiles/flit_mfemini.dir/coefficients.cpp.o"
  "CMakeFiles/flit_mfemini.dir/coefficients.cpp.o.d"
  "CMakeFiles/flit_mfemini.dir/eltrans.cpp.o"
  "CMakeFiles/flit_mfemini.dir/eltrans.cpp.o.d"
  "CMakeFiles/flit_mfemini.dir/examples.cpp.o"
  "CMakeFiles/flit_mfemini.dir/examples.cpp.o.d"
  "CMakeFiles/flit_mfemini.dir/fe.cpp.o"
  "CMakeFiles/flit_mfemini.dir/fe.cpp.o.d"
  "CMakeFiles/flit_mfemini.dir/gridfunc.cpp.o"
  "CMakeFiles/flit_mfemini.dir/gridfunc.cpp.o.d"
  "CMakeFiles/flit_mfemini.dir/linearform.cpp.o"
  "CMakeFiles/flit_mfemini.dir/linearform.cpp.o.d"
  "CMakeFiles/flit_mfemini.dir/mesh.cpp.o"
  "CMakeFiles/flit_mfemini.dir/mesh.cpp.o.d"
  "CMakeFiles/flit_mfemini.dir/quadrature.cpp.o"
  "CMakeFiles/flit_mfemini.dir/quadrature.cpp.o.d"
  "CMakeFiles/flit_mfemini.dir/solvers.cpp.o"
  "CMakeFiles/flit_mfemini.dir/solvers.cpp.o.d"
  "libflit_mfemini.a"
  "libflit_mfemini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flit_mfemini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
