# Empty dependencies file for flit_fpsem.
# This may be replaced when dependencies are built.
