file(REMOVE_RECURSE
  "libflit_fpsem.a"
)
