file(REMOVE_RECURSE
  "CMakeFiles/flit_fpsem.dir/code_model.cpp.o"
  "CMakeFiles/flit_fpsem.dir/code_model.cpp.o.d"
  "libflit_fpsem.a"
  "libflit_fpsem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flit_fpsem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
