# Empty compiler generated dependencies file for flit_laghos.
# This may be replaced when dependencies are built.
