file(REMOVE_RECURSE
  "CMakeFiles/flit_laghos.dir/hydro.cpp.o"
  "CMakeFiles/flit_laghos.dir/hydro.cpp.o.d"
  "CMakeFiles/flit_laghos.dir/qupdate.cpp.o"
  "CMakeFiles/flit_laghos.dir/qupdate.cpp.o.d"
  "CMakeFiles/flit_laghos.dir/timestep.cpp.o"
  "CMakeFiles/flit_laghos.dir/timestep.cpp.o.d"
  "CMakeFiles/flit_laghos.dir/utils.cpp.o"
  "CMakeFiles/flit_laghos.dir/utils.cpp.o.d"
  "libflit_laghos.a"
  "libflit_laghos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flit_laghos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
