file(REMOVE_RECURSE
  "libflit_laghos.a"
)
