# Empty compiler generated dependencies file for flit_lulesh.
# This may be replaced when dependencies are built.
