file(REMOVE_RECURSE
  "libflit_lulesh.a"
)
