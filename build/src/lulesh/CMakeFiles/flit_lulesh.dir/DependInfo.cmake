
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lulesh/domain.cpp" "src/lulesh/CMakeFiles/flit_lulesh.dir/domain.cpp.o" "gcc" "src/lulesh/CMakeFiles/flit_lulesh.dir/domain.cpp.o.d"
  "/root/repo/src/lulesh/eos.cpp" "src/lulesh/CMakeFiles/flit_lulesh.dir/eos.cpp.o" "gcc" "src/lulesh/CMakeFiles/flit_lulesh.dir/eos.cpp.o.d"
  "/root/repo/src/lulesh/force.cpp" "src/lulesh/CMakeFiles/flit_lulesh.dir/force.cpp.o" "gcc" "src/lulesh/CMakeFiles/flit_lulesh.dir/force.cpp.o.d"
  "/root/repo/src/lulesh/lagrange.cpp" "src/lulesh/CMakeFiles/flit_lulesh.dir/lagrange.cpp.o" "gcc" "src/lulesh/CMakeFiles/flit_lulesh.dir/lagrange.cpp.o.d"
  "/root/repo/src/lulesh/q.cpp" "src/lulesh/CMakeFiles/flit_lulesh.dir/q.cpp.o" "gcc" "src/lulesh/CMakeFiles/flit_lulesh.dir/q.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/flit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/flit_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/toolchain/CMakeFiles/flit_toolchain.dir/DependInfo.cmake"
  "/root/repo/build/src/fpsem/CMakeFiles/flit_fpsem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
