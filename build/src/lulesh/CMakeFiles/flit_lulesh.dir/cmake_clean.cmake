file(REMOVE_RECURSE
  "CMakeFiles/flit_lulesh.dir/domain.cpp.o"
  "CMakeFiles/flit_lulesh.dir/domain.cpp.o.d"
  "CMakeFiles/flit_lulesh.dir/eos.cpp.o"
  "CMakeFiles/flit_lulesh.dir/eos.cpp.o.d"
  "CMakeFiles/flit_lulesh.dir/force.cpp.o"
  "CMakeFiles/flit_lulesh.dir/force.cpp.o.d"
  "CMakeFiles/flit_lulesh.dir/lagrange.cpp.o"
  "CMakeFiles/flit_lulesh.dir/lagrange.cpp.o.d"
  "CMakeFiles/flit_lulesh.dir/q.cpp.o"
  "CMakeFiles/flit_lulesh.dir/q.cpp.o.d"
  "libflit_lulesh.a"
  "libflit_lulesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flit_lulesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
