# Empty dependencies file for flit_par.
# This may be replaced when dependencies are built.
