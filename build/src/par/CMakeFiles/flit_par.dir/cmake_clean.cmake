file(REMOVE_RECURSE
  "CMakeFiles/flit_par.dir/comm.cpp.o"
  "CMakeFiles/flit_par.dir/comm.cpp.o.d"
  "CMakeFiles/flit_par.dir/study.cpp.o"
  "CMakeFiles/flit_par.dir/study.cpp.o.d"
  "libflit_par.a"
  "libflit_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flit_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
