file(REMOVE_RECURSE
  "libflit_par.a"
)
