file(REMOVE_RECURSE
  "CMakeFiles/test_laghos_bisect.dir/integration/test_laghos_bisect.cpp.o"
  "CMakeFiles/test_laghos_bisect.dir/integration/test_laghos_bisect.cpp.o.d"
  "test_laghos_bisect"
  "test_laghos_bisect.pdb"
  "test_laghos_bisect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_laghos_bisect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
