# Empty compiler generated dependencies file for test_laghos_bisect.
# This may be replaced when dependencies are built.
