file(REMOVE_RECURSE
  "CMakeFiles/test_toolchain_linker.dir/toolchain/test_linker.cpp.o"
  "CMakeFiles/test_toolchain_linker.dir/toolchain/test_linker.cpp.o.d"
  "test_toolchain_linker"
  "test_toolchain_linker.pdb"
  "test_toolchain_linker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_toolchain_linker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
