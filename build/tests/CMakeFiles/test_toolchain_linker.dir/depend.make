# Empty dependencies file for test_toolchain_linker.
# This may be replaced when dependencies are built.
