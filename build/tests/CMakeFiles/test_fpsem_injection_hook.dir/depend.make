# Empty dependencies file for test_fpsem_injection_hook.
# This may be replaced when dependencies are built.
