file(REMOVE_RECURSE
  "CMakeFiles/test_fpsem_injection_hook.dir/fpsem/test_injection_hook.cpp.o"
  "CMakeFiles/test_fpsem_injection_hook.dir/fpsem/test_injection_hook.cpp.o.d"
  "test_fpsem_injection_hook"
  "test_fpsem_injection_hook.pdb"
  "test_fpsem_injection_hook[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpsem_injection_hook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
