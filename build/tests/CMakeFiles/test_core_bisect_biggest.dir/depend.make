# Empty dependencies file for test_core_bisect_biggest.
# This may be replaced when dependencies are built.
