file(REMOVE_RECURSE
  "CMakeFiles/test_core_bisect_biggest.dir/core/test_bisect_biggest.cpp.o"
  "CMakeFiles/test_core_bisect_biggest.dir/core/test_bisect_biggest.cpp.o.d"
  "test_core_bisect_biggest"
  "test_core_bisect_biggest.pdb"
  "test_core_bisect_biggest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_bisect_biggest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
