# Empty compiler generated dependencies file for test_lulesh.
# This may be replaced when dependencies are built.
