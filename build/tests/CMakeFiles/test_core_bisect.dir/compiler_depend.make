# Empty compiler generated dependencies file for test_core_bisect.
# This may be replaced when dependencies are built.
