file(REMOVE_RECURSE
  "CMakeFiles/test_core_bisect.dir/core/test_bisect.cpp.o"
  "CMakeFiles/test_core_bisect.dir/core/test_bisect.cpp.o.d"
  "test_core_bisect"
  "test_core_bisect.pdb"
  "test_core_bisect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_bisect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
