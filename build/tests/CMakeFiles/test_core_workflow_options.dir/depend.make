# Empty dependencies file for test_core_workflow_options.
# This may be replaced when dependencies are built.
