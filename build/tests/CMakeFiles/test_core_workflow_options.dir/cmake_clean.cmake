file(REMOVE_RECURSE
  "CMakeFiles/test_core_workflow_options.dir/core/test_workflow_options.cpp.o"
  "CMakeFiles/test_core_workflow_options.dir/core/test_workflow_options.cpp.o.d"
  "test_core_workflow_options"
  "test_core_workflow_options.pdb"
  "test_core_workflow_options[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_workflow_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
