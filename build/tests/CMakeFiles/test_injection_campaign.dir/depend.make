# Empty dependencies file for test_injection_campaign.
# This may be replaced when dependencies are built.
