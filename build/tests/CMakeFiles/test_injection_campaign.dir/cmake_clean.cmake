file(REMOVE_RECURSE
  "CMakeFiles/test_injection_campaign.dir/integration/test_injection.cpp.o"
  "CMakeFiles/test_injection_campaign.dir/integration/test_injection.cpp.o.d"
  "test_injection_campaign"
  "test_injection_campaign.pdb"
  "test_injection_campaign[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_injection_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
