# Empty dependencies file for test_core_resultsdb.
# This may be replaced when dependencies are built.
