file(REMOVE_RECURSE
  "CMakeFiles/test_core_resultsdb.dir/core/test_resultsdb.cpp.o"
  "CMakeFiles/test_core_resultsdb.dir/core/test_resultsdb.cpp.o.d"
  "test_core_resultsdb"
  "test_core_resultsdb.pdb"
  "test_core_resultsdb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_resultsdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
