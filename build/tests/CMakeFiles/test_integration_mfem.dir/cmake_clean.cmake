file(REMOVE_RECURSE
  "CMakeFiles/test_integration_mfem.dir/integration/test_mfem_study.cpp.o"
  "CMakeFiles/test_integration_mfem.dir/integration/test_mfem_study.cpp.o.d"
  "test_integration_mfem"
  "test_integration_mfem.pdb"
  "test_integration_mfem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_mfem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
