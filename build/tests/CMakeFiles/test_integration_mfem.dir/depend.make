# Empty dependencies file for test_integration_mfem.
# This may be replaced when dependencies are built.
