# Empty compiler generated dependencies file for test_toolchain_rules.
# This may be replaced when dependencies are built.
