file(REMOVE_RECURSE
  "CMakeFiles/test_toolchain_rules.dir/toolchain/test_semantics_rules.cpp.o"
  "CMakeFiles/test_toolchain_rules.dir/toolchain/test_semantics_rules.cpp.o.d"
  "test_toolchain_rules"
  "test_toolchain_rules.pdb"
  "test_toolchain_rules[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_toolchain_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
