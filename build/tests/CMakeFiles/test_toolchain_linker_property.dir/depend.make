# Empty dependencies file for test_toolchain_linker_property.
# This may be replaced when dependencies are built.
