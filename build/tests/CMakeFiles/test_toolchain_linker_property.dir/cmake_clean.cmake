file(REMOVE_RECURSE
  "CMakeFiles/test_toolchain_linker_property.dir/toolchain/test_linker_property.cpp.o"
  "CMakeFiles/test_toolchain_linker_property.dir/toolchain/test_linker_property.cpp.o.d"
  "test_toolchain_linker_property"
  "test_toolchain_linker_property.pdb"
  "test_toolchain_linker_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_toolchain_linker_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
