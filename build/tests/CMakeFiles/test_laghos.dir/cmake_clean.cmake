file(REMOVE_RECURSE
  "CMakeFiles/test_laghos.dir/laghos/test_conservation.cpp.o"
  "CMakeFiles/test_laghos.dir/laghos/test_conservation.cpp.o.d"
  "CMakeFiles/test_laghos.dir/laghos/test_hydro.cpp.o"
  "CMakeFiles/test_laghos.dir/laghos/test_hydro.cpp.o.d"
  "test_laghos"
  "test_laghos.pdb"
  "test_laghos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_laghos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
