# Empty compiler generated dependencies file for test_laghos.
# This may be replaced when dependencies are built.
