# Empty compiler generated dependencies file for test_fpsem_env.
# This may be replaced when dependencies are built.
