file(REMOVE_RECURSE
  "CMakeFiles/test_fpsem_env.dir/fpsem/test_env_ops.cpp.o"
  "CMakeFiles/test_fpsem_env.dir/fpsem/test_env_ops.cpp.o.d"
  "test_fpsem_env"
  "test_fpsem_env.pdb"
  "test_fpsem_env[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpsem_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
