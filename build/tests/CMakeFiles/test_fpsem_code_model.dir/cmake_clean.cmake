file(REMOVE_RECURSE
  "CMakeFiles/test_fpsem_code_model.dir/fpsem/test_code_model.cpp.o"
  "CMakeFiles/test_fpsem_code_model.dir/fpsem/test_code_model.cpp.o.d"
  "test_fpsem_code_model"
  "test_fpsem_code_model.pdb"
  "test_fpsem_code_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpsem_code_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
