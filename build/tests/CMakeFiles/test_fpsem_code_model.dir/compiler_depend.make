# Empty compiler generated dependencies file for test_fpsem_code_model.
# This may be replaced when dependencies are built.
