# Empty compiler generated dependencies file for test_core_hierarchy_property.
# This may be replaced when dependencies are built.
