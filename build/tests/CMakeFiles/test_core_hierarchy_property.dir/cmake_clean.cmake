file(REMOVE_RECURSE
  "CMakeFiles/test_core_hierarchy_property.dir/core/test_hierarchy_property.cpp.o"
  "CMakeFiles/test_core_hierarchy_property.dir/core/test_hierarchy_property.cpp.o.d"
  "test_core_hierarchy_property"
  "test_core_hierarchy_property.pdb"
  "test_core_hierarchy_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_hierarchy_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
