file(REMOVE_RECURSE
  "CMakeFiles/test_toolchain_compiler.dir/toolchain/test_compiler.cpp.o"
  "CMakeFiles/test_toolchain_compiler.dir/toolchain/test_compiler.cpp.o.d"
  "test_toolchain_compiler"
  "test_toolchain_compiler.pdb"
  "test_toolchain_compiler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_toolchain_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
