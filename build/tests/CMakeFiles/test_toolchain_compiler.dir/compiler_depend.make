# Empty compiler generated dependencies file for test_toolchain_compiler.
# This may be replaced when dependencies are built.
