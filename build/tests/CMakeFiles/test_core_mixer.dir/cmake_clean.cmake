file(REMOVE_RECURSE
  "CMakeFiles/test_core_mixer.dir/core/test_mixer.cpp.o"
  "CMakeFiles/test_core_mixer.dir/core/test_mixer.cpp.o.d"
  "test_core_mixer"
  "test_core_mixer.pdb"
  "test_core_mixer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_mixer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
