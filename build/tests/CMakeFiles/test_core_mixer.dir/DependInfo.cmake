
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_mixer.cpp" "tests/CMakeFiles/test_core_mixer.dir/core/test_mixer.cpp.o" "gcc" "tests/CMakeFiles/test_core_mixer.dir/core/test_mixer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/flit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/toolchain/CMakeFiles/flit_toolchain.dir/DependInfo.cmake"
  "/root/repo/build/src/fpsem/CMakeFiles/flit_fpsem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
