# Empty compiler generated dependencies file for test_core_mixer.
# This may be replaced when dependencies are built.
