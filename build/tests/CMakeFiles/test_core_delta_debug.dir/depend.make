# Empty dependencies file for test_core_delta_debug.
# This may be replaced when dependencies are built.
