file(REMOVE_RECURSE
  "CMakeFiles/test_core_delta_debug.dir/core/test_delta_debug.cpp.o"
  "CMakeFiles/test_core_delta_debug.dir/core/test_delta_debug.cpp.o.d"
  "test_core_delta_debug"
  "test_core_delta_debug.pdb"
  "test_core_delta_debug[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_delta_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
