file(REMOVE_RECURSE
  "CMakeFiles/test_fpsem_bulk_injection.dir/fpsem/test_bulk_injection.cpp.o"
  "CMakeFiles/test_fpsem_bulk_injection.dir/fpsem/test_bulk_injection.cpp.o.d"
  "test_fpsem_bulk_injection"
  "test_fpsem_bulk_injection.pdb"
  "test_fpsem_bulk_injection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpsem_bulk_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
