# Empty dependencies file for test_fpsem_bulk_injection.
# This may be replaced when dependencies are built.
