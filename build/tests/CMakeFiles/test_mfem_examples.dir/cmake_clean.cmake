file(REMOVE_RECURSE
  "CMakeFiles/test_mfem_examples.dir/mfemini/test_examples.cpp.o"
  "CMakeFiles/test_mfem_examples.dir/mfemini/test_examples.cpp.o.d"
  "test_mfem_examples"
  "test_mfem_examples.pdb"
  "test_mfem_examples[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mfem_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
