# Empty dependencies file for test_core_hierarchy_paths.
# This may be replaced when dependencies are built.
