file(REMOVE_RECURSE
  "CMakeFiles/test_core_hierarchy_paths.dir/core/test_hierarchy_paths.cpp.o"
  "CMakeFiles/test_core_hierarchy_paths.dir/core/test_hierarchy_paths.cpp.o.d"
  "test_core_hierarchy_paths"
  "test_core_hierarchy_paths.pdb"
  "test_core_hierarchy_paths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_hierarchy_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
