
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mfemini/test_convergence.cpp" "tests/CMakeFiles/test_mfemini.dir/mfemini/test_convergence.cpp.o" "gcc" "tests/CMakeFiles/test_mfemini.dir/mfemini/test_convergence.cpp.o.d"
  "/root/repo/tests/mfemini/test_fe.cpp" "tests/CMakeFiles/test_mfemini.dir/mfemini/test_fe.cpp.o" "gcc" "tests/CMakeFiles/test_mfemini.dir/mfemini/test_fe.cpp.o.d"
  "/root/repo/tests/mfemini/test_gridfunc.cpp" "tests/CMakeFiles/test_mfemini.dir/mfemini/test_gridfunc.cpp.o" "gcc" "tests/CMakeFiles/test_mfemini.dir/mfemini/test_gridfunc.cpp.o.d"
  "/root/repo/tests/mfemini/test_integrators.cpp" "tests/CMakeFiles/test_mfemini.dir/mfemini/test_integrators.cpp.o" "gcc" "tests/CMakeFiles/test_mfemini.dir/mfemini/test_integrators.cpp.o.d"
  "/root/repo/tests/mfemini/test_mesh.cpp" "tests/CMakeFiles/test_mfemini.dir/mfemini/test_mesh.cpp.o" "gcc" "tests/CMakeFiles/test_mfemini.dir/mfemini/test_mesh.cpp.o.d"
  "/root/repo/tests/mfemini/test_quadrature.cpp" "tests/CMakeFiles/test_mfemini.dir/mfemini/test_quadrature.cpp.o" "gcc" "tests/CMakeFiles/test_mfemini.dir/mfemini/test_quadrature.cpp.o.d"
  "/root/repo/tests/mfemini/test_solvers.cpp" "tests/CMakeFiles/test_mfemini.dir/mfemini/test_solvers.cpp.o" "gcc" "tests/CMakeFiles/test_mfemini.dir/mfemini/test_solvers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/flit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/toolchain/CMakeFiles/flit_toolchain.dir/DependInfo.cmake"
  "/root/repo/build/src/fpsem/CMakeFiles/flit_fpsem.dir/DependInfo.cmake"
  "/root/repo/build/src/mfemini/CMakeFiles/flit_mfemini.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/flit_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
