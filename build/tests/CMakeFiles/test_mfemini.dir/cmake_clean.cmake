file(REMOVE_RECURSE
  "CMakeFiles/test_mfemini.dir/mfemini/test_convergence.cpp.o"
  "CMakeFiles/test_mfemini.dir/mfemini/test_convergence.cpp.o.d"
  "CMakeFiles/test_mfemini.dir/mfemini/test_fe.cpp.o"
  "CMakeFiles/test_mfemini.dir/mfemini/test_fe.cpp.o.d"
  "CMakeFiles/test_mfemini.dir/mfemini/test_gridfunc.cpp.o"
  "CMakeFiles/test_mfemini.dir/mfemini/test_gridfunc.cpp.o.d"
  "CMakeFiles/test_mfemini.dir/mfemini/test_integrators.cpp.o"
  "CMakeFiles/test_mfemini.dir/mfemini/test_integrators.cpp.o.d"
  "CMakeFiles/test_mfemini.dir/mfemini/test_mesh.cpp.o"
  "CMakeFiles/test_mfemini.dir/mfemini/test_mesh.cpp.o.d"
  "CMakeFiles/test_mfemini.dir/mfemini/test_quadrature.cpp.o"
  "CMakeFiles/test_mfemini.dir/mfemini/test_quadrature.cpp.o.d"
  "CMakeFiles/test_mfemini.dir/mfemini/test_solvers.cpp.o"
  "CMakeFiles/test_mfemini.dir/mfemini/test_solvers.cpp.o.d"
  "test_mfemini"
  "test_mfemini.pdb"
  "test_mfemini[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mfemini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
