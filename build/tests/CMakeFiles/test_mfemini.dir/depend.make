# Empty dependencies file for test_mfemini.
# This may be replaced when dependencies are built.
