# Empty dependencies file for geometry_hull.
# This may be replaced when dependencies are built.
