file(REMOVE_RECURSE
  "CMakeFiles/geometry_hull.dir/geometry_hull.cpp.o"
  "CMakeFiles/geometry_hull.dir/geometry_hull.cpp.o.d"
  "geometry_hull"
  "geometry_hull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geometry_hull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
