# Empty compiler generated dependencies file for mfem_port_audit.
# This may be replaced when dependencies are built.
