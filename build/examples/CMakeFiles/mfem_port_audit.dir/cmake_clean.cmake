file(REMOVE_RECURSE
  "CMakeFiles/mfem_port_audit.dir/mfem_port_audit.cpp.o"
  "CMakeFiles/mfem_port_audit.dir/mfem_port_audit.cpp.o.d"
  "mfem_port_audit"
  "mfem_port_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfem_port_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
