file(REMOVE_RECURSE
  "CMakeFiles/laghos_debug_session.dir/laghos_debug_session.cpp.o"
  "CMakeFiles/laghos_debug_session.dir/laghos_debug_session.cpp.o.d"
  "laghos_debug_session"
  "laghos_debug_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laghos_debug_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
