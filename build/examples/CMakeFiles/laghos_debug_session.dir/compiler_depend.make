# Empty compiler generated dependencies file for laghos_debug_session.
# This may be replaced when dependencies are built.
