file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_fastest.dir/bench_fig5_fastest.cpp.o"
  "CMakeFiles/bench_fig5_fastest.dir/bench_fig5_fastest.cpp.o.d"
  "bench_fig5_fastest"
  "bench_fig5_fastest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fastest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
