# Empty dependencies file for bench_table4_laghos.
# This may be replaced when dependencies are built.
