file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_laghos.dir/bench_table4_laghos.cpp.o"
  "CMakeFiles/bench_table4_laghos.dir/bench_table4_laghos.cpp.o.d"
  "bench_table4_laghos"
  "bench_table4_laghos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_laghos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
