file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_bisect.dir/bench_table2_bisect.cpp.o"
  "CMakeFiles/bench_table2_bisect.dir/bench_table2_bisect.cpp.o.d"
  "bench_table2_bisect"
  "bench_table2_bisect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_bisect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
