file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_profiles.dir/bench_fig4_profiles.cpp.o"
  "CMakeFiles/bench_fig4_profiles.dir/bench_fig4_profiles.cpp.o.d"
  "bench_fig4_profiles"
  "bench_fig4_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
