file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_injection.dir/bench_table5_injection.cpp.o"
  "CMakeFiles/bench_table5_injection.dir/bench_table5_injection.cpp.o.d"
  "bench_table5_injection"
  "bench_table5_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
