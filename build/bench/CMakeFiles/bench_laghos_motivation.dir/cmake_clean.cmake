file(REMOVE_RECURSE
  "CMakeFiles/bench_laghos_motivation.dir/bench_laghos_motivation.cpp.o"
  "CMakeFiles/bench_laghos_motivation.dir/bench_laghos_motivation.cpp.o.d"
  "bench_laghos_motivation"
  "bench_laghos_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_laghos_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
