# Empty compiler generated dependencies file for bench_laghos_motivation.
# This may be replaced when dependencies are built.
