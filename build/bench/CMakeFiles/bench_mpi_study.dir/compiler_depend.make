# Empty compiler generated dependencies file for bench_mpi_study.
# This may be replaced when dependencies are built.
