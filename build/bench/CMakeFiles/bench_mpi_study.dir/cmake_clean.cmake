file(REMOVE_RECURSE
  "CMakeFiles/bench_mpi_study.dir/bench_mpi_study.cpp.o"
  "CMakeFiles/bench_mpi_study.dir/bench_mpi_study.cpp.o.d"
  "bench_mpi_study"
  "bench_mpi_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mpi_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
