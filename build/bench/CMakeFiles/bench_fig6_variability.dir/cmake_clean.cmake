file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_variability.dir/bench_fig6_variability.cpp.o"
  "CMakeFiles/bench_fig6_variability.dir/bench_fig6_variability.cpp.o.d"
  "bench_fig6_variability"
  "bench_fig6_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
