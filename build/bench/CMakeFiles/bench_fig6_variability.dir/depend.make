# Empty dependencies file for bench_fig6_variability.
# This may be replaced when dependencies are built.
