# Empty dependencies file for bench_bisect_complexity.
# This may be replaced when dependencies are built.
