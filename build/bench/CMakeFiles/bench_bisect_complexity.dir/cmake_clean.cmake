file(REMOVE_RECURSE
  "CMakeFiles/bench_bisect_complexity.dir/bench_bisect_complexity.cpp.o"
  "CMakeFiles/bench_bisect_complexity.dir/bench_bisect_complexity.cpp.o.d"
  "bench_bisect_complexity"
  "bench_bisect_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bisect_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
