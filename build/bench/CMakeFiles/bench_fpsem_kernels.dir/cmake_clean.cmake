file(REMOVE_RECURSE
  "CMakeFiles/bench_fpsem_kernels.dir/bench_fpsem_kernels.cpp.o"
  "CMakeFiles/bench_fpsem_kernels.dir/bench_fpsem_kernels.cpp.o.d"
  "bench_fpsem_kernels"
  "bench_fpsem_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fpsem_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
