# Empty dependencies file for bench_fpsem_kernels.
# This may be replaced when dependencies are built.
