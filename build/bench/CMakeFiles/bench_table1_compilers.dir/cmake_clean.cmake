file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_compilers.dir/bench_table1_compilers.cpp.o"
  "CMakeFiles/bench_table1_compilers.dir/bench_table1_compilers.cpp.o.d"
  "bench_table1_compilers"
  "bench_table1_compilers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_compilers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
