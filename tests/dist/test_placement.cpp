// The placement pass: every policy must produce a disjoint exact cover
// of the space (property-checked across shard counts and spaces), Static
// must reproduce the contiguous split verbatim, LPT must balance within
// its greedy bound, Affinity must keep every reasonably-sized
// fingerprint group on one rank and split only oversized ones -- and
// none of it may move a single merged byte: the sharded study, report
// CSV and converged database stay bitwise-identical across policies x
// shards x jobs x steal on/off, under injected faults, and through
// kill-then-resume with the placement policy changed mid-flight.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/explorer.h"
#include "core/faults.h"
#include "core/report.h"
#include "core/resultsdb.h"
#include "dist/coordinator.h"
#include "dist/placement.h"
#include "mfemini/examples.h"
#include "toolchain/compile_cache.h"
#include "toolchain/compiler.h"

namespace {

using namespace flit;
using core::FaultInjector;
using core::FaultSite;
using dist::CostModel;
using dist::CostProfile;
using dist::Placement;
using dist::PlacementPolicy;
using toolchain::Compilation;
using toolchain::OptLevel;

namespace fs = std::filesystem;

constexpr PlacementPolicy kPolicies[] = {
    PlacementPolicy::Static, PlacementPolicy::Cost, PlacementPolicy::Affinity};

/// The skewed space of the stealing tests: three slabs of anchor-reused
/// baseline copies plus six fresh compilations in the tail slice.
std::vector<Compilation> skewed_space() {
  std::vector<Compilation> space(18, toolchain::mfem_baseline());
  space.push_back({toolchain::gcc(), OptLevel::O3, ""});
  space.push_back({toolchain::gcc(), OptLevel::O2, "-mavx2 -mfma"});
  space.push_back(
      {toolchain::gcc(), OptLevel::O2, "-funsafe-math-optimizations"});
  space.push_back({toolchain::clang(), OptLevel::O3, "-ffast-math"});
  space.push_back({toolchain::icpc(), OptLevel::O2, ""});
  space.push_back({toolchain::icpc(), OptLevel::O2, "-fp-model precise"});
  return space;
}

CostModel plain_model() {
  return CostModel(toolchain::mfem_baseline(),
                   toolchain::mfem_speed_reference());
}

dist::ShardCoordinator make_coordinator(dist::ShardOptions opts) {
  return dist::ShardCoordinator(&fpsem::global_code_model(),
                                toolchain::mfem_baseline(),
                                toolchain::mfem_speed_reference(),
                                std::move(opts));
}

core::StudyResult reference_study(const core::TestBase& test,
                                  const std::vector<Compilation>& space) {
  core::SpaceExplorer explorer(&fpsem::global_code_model(),
                               toolchain::mfem_baseline(),
                               toolchain::mfem_speed_reference(), 1);
  return explorer.explore(test, space);
}

void expect_identical_studies(const core::StudyResult& a,
                              const core::StudyResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  EXPECT_EQ(a.test_name, b.test_name);
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].comp, b.outcomes[i].comp) << i;
    EXPECT_EQ(a.outcomes[i].variability, b.outcomes[i].variability) << i;
    EXPECT_EQ(a.outcomes[i].cycles, b.outcomes[i].cycles) << i;
    EXPECT_EQ(a.outcomes[i].speedup, b.outcomes[i].speedup) << i;
    EXPECT_EQ(a.outcomes[i].status, b.outcomes[i].status) << i;
    EXPECT_EQ(a.outcomes[i].attempts, b.outcomes[i].attempts) << i;
    EXPECT_EQ(a.outcomes[i].reason, b.outcomes[i].reason) << i;
  }
}

std::string file_bytes(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Exhaustive partition check: per-rank indices ascending, globally
/// disjoint, covering [0, n) exactly -- the invariant the index-addressed
/// merge leans on.
void expect_exact_cover(const Placement& p, std::size_t n, int shards) {
  ASSERT_EQ(p.shards(), static_cast<std::size_t>(shards));
  std::vector<bool> seen(n, false);
  std::size_t covered = 0;
  for (const auto& idx : p.rank_indices) {
    for (std::size_t k = 0; k < idx.size(); ++k) {
      ASSERT_LT(idx[k], n);
      if (k > 0) EXPECT_LT(idx[k - 1], idx[k]);  // ascending, no repeats
      EXPECT_FALSE(seen[idx[k]]) << "index " << idx[k] << " double-owned";
      seen[idx[k]] = true;
      ++covered;
    }
  }
  EXPECT_EQ(covered, n);
}

TEST(PlaceSpace, RejectsNonPositiveShardCounts) {
  const auto space = skewed_space();
  EXPECT_THROW(
      dist::place_space(space, 0, PlacementPolicy::Static, plain_model()),
      std::invalid_argument);
  EXPECT_THROW(
      dist::place_space(space, -2, PlacementPolicy::Cost, plain_model()),
      std::invalid_argument);
}

TEST(PlaceSpace, EveryPolicyCoversEverySpaceExactlyOnce) {
  const CostModel model = plain_model();
  for (const auto& space :
       {toolchain::mfem_study_space(), skewed_space(),
        std::vector<Compilation>{}}) {
    for (int shards : {1, 2, 3, 4, 5, 7}) {
      for (PlacementPolicy policy : kPolicies) {
        SCOPED_TRACE(std::string(to_string(policy)) + " x " +
                     std::to_string(shards) + " shards x " +
                     std::to_string(space.size()) + " items");
        const Placement p = dist::place_space(space, shards, policy, model);
        expect_exact_cover(p, space.size(), shards);

        // The bin loads must account for exactly the items they own.
        ASSERT_EQ(p.predicted.size(), static_cast<std::size_t>(shards));
        for (int r = 0; r < shards; ++r) {
          double sum = 0.0;
          for (std::size_t i : p.rank_indices[static_cast<std::size_t>(r)]) {
            sum += model.predict(space[i]);
          }
          EXPECT_NEAR(p.predicted[static_cast<std::size_t>(r)], sum,
                      1e-9 * (1.0 + sum))
              << "rank " << r;
        }
      }
    }
  }
}

TEST(PlaceSpace, StaticReproducesTheContiguousSplitVerbatim) {
  const auto space = toolchain::mfem_study_space();
  for (int shards : {1, 3, 4}) {
    const Placement p = dist::place_space(space, shards,
                                          PlacementPolicy::Static,
                                          plain_model());
    EXPECT_TRUE(p.contiguous);
    const dist::ShardComm comm(shards);
    const auto ranges = comm.scatter_ranges(space.size());
    for (int r = 0; r < shards; ++r) {
      const auto& idx = p.rank_indices[static_cast<std::size_t>(r)];
      ASSERT_EQ(idx.size(), ranges[static_cast<std::size_t>(r)].size());
      for (std::size_t k = 0; k < idx.size(); ++k) {
        EXPECT_EQ(idx[k], ranges[static_cast<std::size_t>(r)].begin + k);
      }
    }
  }
}

TEST(PlaceSpace, PlacementIsDeterministic) {
  const auto space = skewed_space();
  const CostModel model = plain_model();
  for (PlacementPolicy policy : kPolicies) {
    const Placement a = dist::place_space(space, 4, policy, model);
    const Placement b = dist::place_space(space, 4, policy, model);
    EXPECT_EQ(a.rank_indices, b.rank_indices) << to_string(policy);
    EXPECT_EQ(a.predicted, b.predicted) << to_string(policy);
    EXPECT_EQ(a.duplicated_groups, b.duplicated_groups) << to_string(policy);
  }
}

TEST(PlaceSpace, CostPlacementHonoursTheGreedyBalanceBound) {
  // List scheduling's invariant: a bin receives a unit only while it is
  // the least loaded, so max load <= min load + the heaviest single item.
  const auto space = toolchain::mfem_study_space();
  const CostModel model = plain_model();
  double max_item = 0.0;
  for (const Compilation& c : space) {
    max_item = std::max(max_item, model.predict(c));
  }
  for (int shards : {2, 4, 8}) {
    const Placement p =
        dist::place_space(space, shards, PlacementPolicy::Cost, model);
    const auto [lo, hi] =
        std::minmax_element(p.predicted.begin(), p.predicted.end());
    EXPECT_LE(*hi, *lo + max_item * (1.0 + 1e-12)) << shards << " shards";
  }
}

TEST(PlaceSpace, AffinityDuplicatesOnlyOversizedGroups) {
  // Affinity's contract: a fingerprint group spans more than one rank
  // only when its predicted cost exceeds the split cap (half the ideal
  // per-shard share); every other group lives on exactly one rank, and
  // the placement still avoids residencies versus the static split.
  const auto space = toolchain::mfem_study_space();
  const CostModel model = plain_model();
  double total = 0.0;
  std::map<std::uint64_t, double> group_cost;
  std::vector<std::uint64_t> group_of(space.size());
  for (std::size_t i = 0; i < space.size(); ++i) {
    group_of[i] = toolchain::CompilationCache::semantics_group(space[i]);
    const double c = model.predict(space[i]);
    group_cost[group_of[i]] += c;
    total += c;
  }

  for (int shards : {2, 4}) {
    const Placement p =
        dist::place_space(space, shards, PlacementPolicy::Affinity, model);
    const double cap = total / (2.0 * shards);

    std::map<std::uint64_t, std::size_t> residencies;
    for (const auto& idx : p.rank_indices) {
      std::set<std::uint64_t> resident;
      for (std::size_t i : idx) resident.insert(group_of[i]);
      for (std::uint64_t g : resident) ++residencies[g];
    }
    EXPECT_EQ(residencies.size(), p.total_groups);
    for (const auto& [g, n] : residencies) {
      if (group_cost[g] <= cap) {
        EXPECT_EQ(n, 1u) << "group cost " << group_cost[g] << " vs cap "
                         << cap << " at " << shards << " shards";
      }
    }
    // Affinity never duplicates more than the static split; with enough
    // boundaries (4 shards) it strictly beats it.
    EXPECT_GE(p.static_duplicated_groups, p.duplicated_groups)
        << shards << " shards";
    if (shards >= 4) {
      EXPECT_GT(p.avoided_group_compiles(), 0u) << shards << " shards";
    }
  }
}

TEST(PlaceSpace, AffinitySplitsAGroupTooCostlyForOneShard) {
  // Twelve copies of one compilation at profiled cost 100 each dominate
  // four cheap singletons: the group's 1200 exceeds the ideal share, so
  // affinity must split it across ranks instead of pinning the critical
  // path -- and the split group is the *only* duplicated residency.
  // The heavy group must not be anchor-equal (anchor items collapse to
  // the near-zero reuse cost, profile or not), so it is a vectorized
  // variant rather than a baseline slab.
  std::vector<Compilation> space(12, Compilation{toolchain::gcc(),
                                                 OptLevel::O2,
                                                 "-mavx2 -mfma"});
  space.push_back({toolchain::gcc(), OptLevel::O3, ""});
  space.push_back({toolchain::clang(), OptLevel::O2, ""});
  space.push_back({toolchain::clang(), OptLevel::O3, ""});
  space.push_back({toolchain::icpc(), OptLevel::O2, ""});

  CostModel model = plain_model();
  CostProfile profile;
  profile.add(space.front().str(), 100.0);
  for (std::size_t i = 12; i < space.size(); ++i) {
    profile.add(space[i].str(), 1.0);
  }
  model.set_profile(std::move(profile));

  const Placement p =
      dist::place_space(space, 2, PlacementPolicy::Affinity, model);
  expect_exact_cover(p, space.size(), 2);
  EXPECT_GE(p.duplicated_groups, 1u);
  // Both bins carry a share of the heavy group: neither may hold all of
  // its 1200 predicted cost.
  const double total = p.predicted[0] + p.predicted[1];
  EXPECT_LT(*std::max_element(p.predicted.begin(), p.predicted.end()),
            0.75 * total);
}

// --- integration: placement never moves a merged byte --------------------

class PlacementStudyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::global().disarm();
    dir_ = fs::temp_directory_path() /
           ("flit_placement_" + std::string(::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::global().disarm();
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

TEST_F(PlacementStudyTest, MergedBytesAreIdenticalAcrossEveryScheduleKnob) {
  const auto space = skewed_space();
  mfemini::MfemExampleTest test(5);
  const auto reference = reference_study(test, space);
  const std::string reference_csv = core::study_csv(reference);

  for (PlacementPolicy policy : kPolicies) {
    for (int shards : {1, 2, 4}) {
      for (unsigned jobs : {1u, 4u}) {
        for (bool steal : {false, true}) {
          SCOPED_TRACE(std::string(to_string(policy)) + " x " +
                       std::to_string(shards) + " shards x " +
                       std::to_string(jobs) + " jobs x steal=" +
                       (steal ? "on" : "off"));
          dist::ShardOptions opts;
          opts.shards = shards;
          opts.jobs = jobs;
          opts.steal = steal;
          opts.steal_grain = 2;
          opts.placement = policy;
          const auto sharded = make_coordinator(opts).run(test, space);
          expect_identical_studies(sharded.study, reference);
          EXPECT_EQ(core::study_csv(sharded.study), reference_csv);
        }
      }
    }
  }
}

TEST_F(PlacementStudyTest, FaultedStudiesAreIdenticalAcrossPolicies) {
  const auto space = skewed_space();
  mfemini::MfemExampleTest test(5);

  std::optional<core::StudyResult> reference;
  std::uint64_t seed = 0;
  for (; seed < 100; ++seed) {
    FaultInjector::global().disarm();
    FaultInjector::global().arm(FaultSite::Run, 0.3, seed);
    try {
      auto r = reference_study(test, space);
      if (r.failed_count() > 0) {
        reference = std::move(r);
        break;
      }
    } catch (const core::StudyAbort&) {
    }
  }
  ASSERT_TRUE(reference.has_value())
      << "no seed in [0,100) quarantined an item with live anchors";

  for (PlacementPolicy policy : kPolicies) {
    FaultInjector::global().disarm();
    FaultInjector::global().arm(FaultSite::Run, 0.3, seed);
    dist::ShardOptions opts;
    opts.shards = 4;
    opts.steal_grain = 2;
    opts.placement = policy;
    const auto sharded = make_coordinator(opts).run(test, space);
    expect_identical_studies(sharded.study, *reference);
    EXPECT_GT(sharded.study.failed_count(), 0u) << to_string(policy);
  }
}

TEST_F(PlacementStudyTest, ProfiledAffinityRunKeepsBytesAndLiftsHitRate) {
  const auto space = skewed_space();
  mfemini::MfemExampleTest test(5);

  // Prior run: static partition, converged database on disk -- both the
  // in-memory profile and the --cost-profile file path below feed off it.
  const fs::path prior_db = dir_ / "prior.tsv";
  dist::ShardedStudy prior;
  {
    core::ResultsDb db(prior_db);
    dist::ShardOptions opts;
    opts.shards = 4;
    opts.db = &db;
    prior = make_coordinator(opts).run(test, space);
  }

  dist::ShardOptions opts;
  opts.shards = 4;
  opts.serial_shards = true;
  opts.placement = PlacementPolicy::Affinity;
  opts.profile = CostProfile::from_study(prior.study);
  const auto affine = make_coordinator(opts).run(test, space);
  expect_identical_studies(affine.study, prior.study);

  // The skewed space scatters the baseline fingerprint across three
  // static slices; affinity re-unites it, so the fleet re-misses fewer
  // objects and the report must say so.
  EXPECT_GT(affine.placement.avoided_group_compiles(), 0u);
  EXPECT_GE(affine.aggregate_cache().hit_rate(),
            prior.aggregate_cache().hit_rate());
  const std::string report = dist::shard_report_text(affine);
  EXPECT_NE(report.find("placement: affinity"), std::string::npos) << report;
  EXPECT_NE(report.find("redundant compiles avoided"), std::string::npos)
      << report;
  EXPECT_NE(report.find("fleet cache"), std::string::npos) << report;

  // The file-backed profile route (the --cost-profile flag) must load
  // the same observations and keep the same bytes.
  dist::ShardOptions file_opts;
  file_opts.shards = 4;
  file_opts.placement = PlacementPolicy::Cost;
  file_opts.cost_profile = prior_db;
  const auto placed = make_coordinator(file_opts).run(test, space);
  expect_identical_studies(placed.study, prior.study);
  EXPECT_TRUE(placed.placement.profiled);
}

TEST_F(PlacementStudyTest, ResumeStitchesAcrossAPolicyChange) {
  // A run killed under the static partition must resume to the same
  // converged bytes under affinity placement: checkpoints are keyed by
  // (test, compilation), not by which rank once owned the row.
  const auto space = skewed_space();
  mfemini::MfemExampleTest test(5);
  const int shards = 4;

  const fs::path ref_conv = dir_ / "ref-converged.tsv";
  {
    core::ResultsDb conv(ref_conv);
    dist::ShardOptions opts;
    opts.shards = shards;
    opts.shard_db_dir = dir_ / "ref-shards";
    opts.db = &conv;
    (void)make_coordinator(opts).run(test, space);
  }

  // "Killed" static-partition run: every shard checkpointed only the
  // first half of its slice.
  const fs::path part_dir = dir_ / "part-shards";
  fs::create_directories(part_dir);
  const dist::ShardComm comm(shards);
  for (int r = 0; r < shards; ++r) {
    const auto rg = comm.range(r, space.size());
    const std::size_t half = rg.size() / 2;
    if (half == 0) continue;
    core::ResultsDb shard_db(
        dist::ShardCoordinator::shard_db_path(part_dir, r, shards));
    core::SpaceExplorer explorer(&fpsem::global_code_model(),
                                 toolchain::mfem_baseline(),
                                 toolchain::mfem_speed_reference(), 1);
    core::ExploreOptions eo;
    eo.db = &shard_db;
    const std::vector<Compilation> prefix(space.begin() + rg.begin,
                                          space.begin() + rg.begin + half);
    (void)explorer.explore(test, prefix, eo);
  }

  for (PlacementPolicy policy :
       {PlacementPolicy::Cost, PlacementPolicy::Affinity}) {
    const fs::path resume_dir =
        dir_ / ("resume-" + std::string(to_string(policy)));
    fs::create_directories(resume_dir);
    for (int r = 0; r < shards; ++r) {
      const auto src =
          dist::ShardCoordinator::shard_db_path(part_dir, r, shards);
      if (fs::exists(src)) {
        fs::copy_file(src, dist::ShardCoordinator::shard_db_path(
                               resume_dir, r, shards));
      }
    }
    const fs::path conv_path =
        dir_ / ("resumed-" + std::string(to_string(policy)) + ".tsv");
    core::ResultsDb conv(conv_path);
    dist::ShardOptions opts;
    opts.shards = shards;
    opts.shard_db_dir = resume_dir;
    opts.db = &conv;
    opts.placement = policy;
    const auto resumed = make_coordinator(opts).resume(test, space);
    std::size_t prefilled = 0;
    for (const auto& rep : resumed.shards) prefilled += rep.prefilled;
    EXPECT_GT(prefilled, 0u) << to_string(policy);
    EXPECT_EQ(file_bytes(conv_path), file_bytes(ref_conv))
        << to_string(policy);
  }
}

}  // namespace
