// Unit: the typed scatter/gather substrate.  ShardComm inherits the
// DeterministicComm partition contract verbatim; scatter must slice and
// gather_ordered must reassemble by global index -- exact inverses at any
// rank/item-count combination, including empty ranges -- and a shard
// vector that disagrees with the partition must be rejected, never
// silently misplaced.  StealQueue must grant disjoint contiguous claims
// that jointly cover the space exactly once, prefer own work, steal from
// the most-loaded started slot, and keep exact stolen/donated accounting.

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "dist/comm.h"

namespace {

using flit::dist::ShardComm;
using flit::dist::ShardRange;
using flit::dist::StealQueue;

TEST(ShardComm, RejectsNonPositiveRankCounts) {
  EXPECT_THROW(ShardComm(0), std::invalid_argument);
  EXPECT_THROW(ShardComm(-3), std::invalid_argument);
}

TEST(ShardComm, ScatterRangesPartitionTheIndexSpace) {
  const ShardComm comm(5);
  const auto ranges = comm.scatter_ranges(23);
  ASSERT_EQ(ranges.size(), 5u);
  std::size_t prev_end = 0, covered = 0;
  for (const ShardRange& rg : ranges) {
    EXPECT_EQ(rg.begin, prev_end);
    prev_end = rg.end;
    covered += rg.size();
  }
  EXPECT_EQ(covered, 23u);
  EXPECT_EQ(prev_end, 23u);
  // 23 = 5*4 + 3: the remainder goes to the first three ranks.
  EXPECT_EQ(ranges[0].size(), 5u);
  EXPECT_EQ(ranges[1].size(), 5u);
  EXPECT_EQ(ranges[2].size(), 5u);
  EXPECT_EQ(ranges[3].size(), 4u);
  EXPECT_EQ(ranges[4].size(), 4u);
}

TEST(ShardComm, MoreRanksThanItemsYieldsEmptyTrailingRanges) {
  const ShardComm comm(8);
  const auto ranges = comm.scatter_ranges(3);
  ASSERT_EQ(ranges.size(), 8u);
  for (int r = 0; r < 3; ++r) EXPECT_EQ(ranges[r].size(), 1u) << r;
  for (int r = 3; r < 8; ++r) EXPECT_EQ(ranges[r].size(), 0u) << r;
}

TEST(ShardComm, ZeroItemsYieldsAllEmptyRanges) {
  const ShardComm comm(4);
  for (const ShardRange& rg : comm.scatter_ranges(0)) {
    EXPECT_EQ(rg.size(), 0u);
    EXPECT_EQ(rg.begin, 0u);
  }
}

TEST(ShardComm, GatherOrderedInvertsScatter) {
  for (int nranks : {1, 2, 3, 7, 16}) {
    for (std::size_t n : {0u, 1u, 5u, 16u, 23u}) {
      const ShardComm comm(nranks);
      std::vector<int> items(n);
      std::iota(items.begin(), items.end(), 100);
      const auto gathered =
          comm.gather_ordered(n, comm.scatter(std::span<const int>(items)));
      EXPECT_EQ(gathered, items) << nranks << " ranks, " << n << " items";
    }
  }
}

TEST(ShardComm, GatherOrderedPlacesByGlobalIndex) {
  const ShardComm comm(3);
  // 7 = 3*2 + 1: rank 0 owns [0,3), rank 1 [3,5), rank 2 [5,7).
  std::vector<std::vector<std::string>> shards{
      {"a0", "a1", "a2"}, {"b3", "b4"}, {"c5", "c6"}};
  const auto out = comm.gather_ordered(std::size_t{7}, std::move(shards));
  const std::vector<std::string> expected{"a0", "a1", "a2", "b3",
                                          "b4", "c5", "c6"};
  EXPECT_EQ(out, expected);
}

TEST(ShardComm, GatherOrderedRejectsMismatchedShardCounts) {
  const ShardComm comm(3);
  std::vector<std::vector<int>> two_shards{{1, 2}, {3, 4}};
  EXPECT_THROW(
      (void)comm.gather_ordered(std::size_t{4}, std::move(two_shards)),
      std::invalid_argument);
}

TEST(ShardComm, GatherOrderedRejectsMismatchedShardSizes) {
  const ShardComm comm(2);
  // Rank 0 owns [0,3) of 6 items but claims 2 elements.
  std::vector<std::vector<int>> shards{{1, 2}, {3, 4, 5, 6}};
  EXPECT_THROW((void)comm.gather_ordered(std::size_t{6}, std::move(shards)),
               std::invalid_argument);
}

// ---- gather_indexed -------------------------------------------------------

TEST(ShardComm, GatherIndexedReassemblesAPermutedPartition) {
  const ShardComm comm(3);
  // A deliberately non-contiguous ownership: round-robin by index.
  const std::vector<std::vector<std::size_t>> owners{
      {0, 3, 6}, {1, 4, 7}, {2, 5}};
  std::vector<std::vector<int>> shards(3);
  for (std::size_t r = 0; r < owners.size(); ++r) {
    for (std::size_t i : owners[r]) {
      shards[r].push_back(static_cast<int>(100 + i));
    }
  }
  const auto gathered =
      comm.gather_indexed(std::size_t{8}, owners, std::move(shards));
  ASSERT_EQ(gathered.size(), 8u);
  for (std::size_t i = 0; i < gathered.size(); ++i) {
    EXPECT_EQ(gathered[i], static_cast<int>(100 + i)) << i;
  }
}

TEST(ShardComm, GatherIndexedMatchesGatherOrderedOnContiguousRanges) {
  const ShardComm comm(3);
  const std::size_t n = 7;
  std::vector<std::vector<std::size_t>> owners(3);
  const auto ranges = comm.scatter_ranges(n);
  for (std::size_t r = 0; r < ranges.size(); ++r) {
    for (std::size_t i = ranges[r].begin; i < ranges[r].end; ++i) {
      owners[r].push_back(i);
    }
  }
  std::vector<int> items(n);
  std::iota(items.begin(), items.end(), 42);
  const auto shards = comm.scatter(std::span<const int>(items));
  EXPECT_EQ(comm.gather_indexed(n, owners, shards), items);
}

TEST(ShardComm, GatherIndexedRejectsDoubleOwnership) {
  const ShardComm comm(2);
  const std::vector<std::vector<std::size_t>> owners{{0, 1}, {1, 2}};
  std::vector<std::vector<int>> shards{{10, 11}, {11, 12}};
  EXPECT_THROW(
      (void)comm.gather_indexed(std::size_t{3}, owners, std::move(shards)),
      std::invalid_argument);
}

TEST(ShardComm, GatherIndexedRejectsUncoveredIndices) {
  const ShardComm comm(2);
  const std::vector<std::vector<std::size_t>> owners{{0}, {2}};  // 1 orphaned
  std::vector<std::vector<int>> shards{{10}, {12}};
  EXPECT_THROW(
      (void)comm.gather_indexed(std::size_t{3}, owners, std::move(shards)),
      std::invalid_argument);
}

TEST(ShardComm, GatherIndexedRejectsOutOfSpaceIndices) {
  const ShardComm comm(2);
  const std::vector<std::vector<std::size_t>> owners{{0, 1}, {5}};
  std::vector<std::vector<int>> shards{{10, 11}, {15}};
  EXPECT_THROW(
      (void)comm.gather_indexed(std::size_t{3}, owners, std::move(shards)),
      std::invalid_argument);
}

TEST(ShardComm, GatherIndexedRejectsShardAndOwnerSizeMismatches) {
  const ShardComm comm(2);
  const std::vector<std::vector<std::size_t>> owners{{0, 1}, {2}};
  std::vector<std::vector<int>> short_shard{{10}, {12}};
  EXPECT_THROW((void)comm.gather_indexed(std::size_t{3}, owners,
                                         std::move(short_shard)),
               std::invalid_argument);
  const std::vector<std::vector<std::size_t>> one_owner{{0, 1, 2}};
  std::vector<std::vector<int>> shards{{10, 11}, {12}};
  EXPECT_THROW((void)comm.gather_indexed(std::size_t{3}, one_owner,
                                         std::move(shards)),
               std::invalid_argument);
}

// ---- StealQueue -----------------------------------------------------------

TEST(StealQueue, OwnersClaimGrainChunksFromTheFrontInOrder) {
  const ShardComm comm(2);
  StealQueue q(comm.scatter_ranges(10), 2);  // rank 0: [0,5), rank 1: [5,10)
  const auto c1 = q.claim(0);
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(c1->range.begin, 0u);
  EXPECT_EQ(c1->range.end, 2u);
  EXPECT_FALSE(c1->stolen);
  EXPECT_EQ(c1->victim, 0);
  const auto c2 = q.claim(0);
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->range.begin, 2u);
  EXPECT_EQ(c2->range.end, 4u);
  const auto c3 = q.claim(0);  // remainder smaller than the grain
  ASSERT_TRUE(c3.has_value());
  EXPECT_EQ(c3->range.begin, 4u);
  EXPECT_EQ(c3->range.end, 5u);
}

TEST(StealQueue, ClaimsCoverTheSpaceExactlyOnceUnderStealing) {
  for (std::size_t grain : {1u, 2u, 3u, 16u}) {
    const ShardComm comm(4);
    const std::size_t n = 23;
    StealQueue q(comm.scatter_ranges(n), grain);
    std::vector<int> hits(n, 0);
    // Round-robin claimants: every rank exhausts its own slot and then
    // steals, so the full space must be covered without overlap.
    bool any = true;
    while (any) {
      any = false;
      for (int r = 0; r < 4; ++r) {
        const auto c = q.claim(r);
        if (!c.has_value()) continue;
        any = true;
        for (std::size_t i = c->range.begin; i < c->range.end; ++i) {
          ++hits[i];
        }
      }
    }
    EXPECT_TRUE(q.drained());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i], 1) << "grain " << grain << ", index " << i;
    }
  }
}

TEST(StealQueue, ExhaustedRankStealsTrailingChunkFromMostLoadedStartedSlot) {
  const ShardComm comm(3);
  StealQueue q(comm.scatter_ranges(12), 2);  // slots [0,4) [4,8) [8,12)
  // Start every slot (one own claim each), then drain rank 0.
  (void)q.claim(0);  // [0,2)
  (void)q.claim(1);  // [4,6)
  (void)q.claim(2);  // [8,10)
  (void)q.claim(0);  // [2,4) -- rank 0's slot is now empty
  // Ranks 1 and 2 both have 2 unclaimed items; the tie breaks to rank 1,
  // and the steal takes the *tail* of its slot.
  const auto s = q.claim(0);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->stolen);
  EXPECT_EQ(s->victim, 1);
  EXPECT_EQ(s->range.begin, 6u);
  EXPECT_EQ(s->range.end, 8u);

  const auto stats0 = q.stats(0);
  EXPECT_EQ(stats0.claims, 3u);
  EXPECT_EQ(stats0.steals, 1u);
  EXPECT_EQ(stats0.stolen, 2u);
  EXPECT_EQ(stats0.donated, 0u);
  const auto stats1 = q.stats(1);
  EXPECT_EQ(stats1.donated, 2u);
  EXPECT_EQ(stats1.stolen, 0u);
}

TEST(StealQueue, UnstartedSlotsAreNotStealable) {
  const ShardComm comm(4);
  // 2 items over 4 ranks: ranks 2 and 3 own empty slots.
  StealQueue q(comm.scatter_ranges(2), 16);
  // Before any owner starts, a thief finds nothing claimable...
  EXPECT_FALSE(q.claim(3).has_value());
  EXPECT_FALSE(q.drained());  // ...but the queue is not drained.
  // Owners claim their whole slots (item count <= grain), leaving no
  // stealable tail; idle ranks never execute anything.
  EXPECT_TRUE(q.claim(0).has_value());
  EXPECT_TRUE(q.claim(1).has_value());
  EXPECT_FALSE(q.claim(2).has_value());
  EXPECT_TRUE(q.drained());
  EXPECT_EQ(q.stats(2).claims, 0u);
  EXPECT_EQ(q.stats(3).claims, 0u);
}

TEST(StealQueue, GrainIsClampedToAtLeastOne) {
  const ShardComm comm(1);
  StealQueue q(comm.scatter_ranges(3), 0);
  const auto c = q.claim(0);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->range.size(), 1u);
}

TEST(StealQueue, RejectsOutOfRangeRanks) {
  const ShardComm comm(2);
  StealQueue q(comm.scatter_ranges(4), 1);
  EXPECT_THROW((void)q.claim(2), std::invalid_argument);
}

}  // namespace
