// Unit: the typed scatter/gather substrate.  ShardComm inherits the
// DeterministicComm partition contract verbatim; scatter must slice and
// gather_ordered must reassemble by global index -- exact inverses at any
// rank/item-count combination, including empty ranges -- and a shard
// vector that disagrees with the partition must be rejected, never
// silently misplaced.

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "dist/comm.h"

namespace {

using flit::dist::ShardComm;
using flit::dist::ShardRange;

TEST(ShardComm, RejectsNonPositiveRankCounts) {
  EXPECT_THROW(ShardComm(0), std::invalid_argument);
  EXPECT_THROW(ShardComm(-3), std::invalid_argument);
}

TEST(ShardComm, ScatterRangesPartitionTheIndexSpace) {
  const ShardComm comm(5);
  const auto ranges = comm.scatter_ranges(23);
  ASSERT_EQ(ranges.size(), 5u);
  std::size_t prev_end = 0, covered = 0;
  for (const ShardRange& rg : ranges) {
    EXPECT_EQ(rg.begin, prev_end);
    prev_end = rg.end;
    covered += rg.size();
  }
  EXPECT_EQ(covered, 23u);
  EXPECT_EQ(prev_end, 23u);
  // 23 = 5*4 + 3: the remainder goes to the first three ranks.
  EXPECT_EQ(ranges[0].size(), 5u);
  EXPECT_EQ(ranges[1].size(), 5u);
  EXPECT_EQ(ranges[2].size(), 5u);
  EXPECT_EQ(ranges[3].size(), 4u);
  EXPECT_EQ(ranges[4].size(), 4u);
}

TEST(ShardComm, MoreRanksThanItemsYieldsEmptyTrailingRanges) {
  const ShardComm comm(8);
  const auto ranges = comm.scatter_ranges(3);
  ASSERT_EQ(ranges.size(), 8u);
  for (int r = 0; r < 3; ++r) EXPECT_EQ(ranges[r].size(), 1u) << r;
  for (int r = 3; r < 8; ++r) EXPECT_EQ(ranges[r].size(), 0u) << r;
}

TEST(ShardComm, ZeroItemsYieldsAllEmptyRanges) {
  const ShardComm comm(4);
  for (const ShardRange& rg : comm.scatter_ranges(0)) {
    EXPECT_EQ(rg.size(), 0u);
    EXPECT_EQ(rg.begin, 0u);
  }
}

TEST(ShardComm, GatherOrderedInvertsScatter) {
  for (int nranks : {1, 2, 3, 7, 16}) {
    for (std::size_t n : {0u, 1u, 5u, 16u, 23u}) {
      const ShardComm comm(nranks);
      std::vector<int> items(n);
      std::iota(items.begin(), items.end(), 100);
      const auto gathered =
          comm.gather_ordered(n, comm.scatter(std::span<const int>(items)));
      EXPECT_EQ(gathered, items) << nranks << " ranks, " << n << " items";
    }
  }
}

TEST(ShardComm, GatherOrderedPlacesByGlobalIndex) {
  const ShardComm comm(3);
  // 7 = 3*2 + 1: rank 0 owns [0,3), rank 1 [3,5), rank 2 [5,7).
  std::vector<std::vector<std::string>> shards{
      {"a0", "a1", "a2"}, {"b3", "b4"}, {"c5", "c6"}};
  const auto out = comm.gather_ordered(std::size_t{7}, std::move(shards));
  const std::vector<std::string> expected{"a0", "a1", "a2", "b3",
                                          "b4", "c5", "c6"};
  EXPECT_EQ(out, expected);
}

TEST(ShardComm, GatherOrderedRejectsMismatchedShardCounts) {
  const ShardComm comm(3);
  std::vector<std::vector<int>> two_shards{{1, 2}, {3, 4}};
  EXPECT_THROW(
      (void)comm.gather_ordered(std::size_t{4}, std::move(two_shards)),
      std::invalid_argument);
}

TEST(ShardComm, GatherOrderedRejectsMismatchedShardSizes) {
  const ShardComm comm(2);
  // Rank 0 owns [0,3) of 6 items but claims 2 elements.
  std::vector<std::vector<int>> shards{{1, 2}, {3, 4, 5, 6}};
  EXPECT_THROW((void)comm.gather_ordered(std::size_t{6}, std::move(shards)),
               std::invalid_argument);
}

}  // namespace
