// Unit: the predicted-cost model feeding the placement pass.  The
// profile must reject non-positive/non-finite observations and average
// repeats; from_study/from_results_db must skip rows without a usable
// timing; predict() must be finite and strictly positive for every
// compilation, collapse anchor-equal items to the near-zero reuse cost
// (profile or not), and prefer a profile observation over the static
// seed.  All of it is a pure function of its inputs -- the determinism
// the placement pass leans on.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <stdexcept>

#include "core/explorer.h"
#include "core/resultsdb.h"
#include "dist/cost_model.h"
#include "toolchain/compiler.h"

namespace {

using namespace flit;
using core::CompilationOutcome;
using core::OutcomeStatus;
using core::StudyResult;
using dist::CostModel;
using dist::CostProfile;
using toolchain::Compilation;
using toolchain::OptLevel;

namespace fs = std::filesystem;

Compilation o0() { return {toolchain::gcc(), OptLevel::O0, ""}; }
Compilation o3() { return {toolchain::gcc(), OptLevel::O3, ""}; }

TEST(CostProfile, RejectsNonPositiveAndNonFiniteObservations) {
  CostProfile p;
  EXPECT_THROW(p.add("c", 0.0), std::invalid_argument);
  EXPECT_THROW(p.add("c", -1.0), std::invalid_argument);
  EXPECT_THROW(p.add("c", std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(p.add("c", std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_TRUE(p.empty());
}

TEST(CostProfile, AveragesRepeatedObservationsPerKey) {
  CostProfile p;
  p.add("a", 10.0);
  p.add("a", 30.0);
  p.add("b", 5.0);
  EXPECT_EQ(p.size(), 2u);
  ASSERT_TRUE(p.cost("a").has_value());
  EXPECT_DOUBLE_EQ(*p.cost("a"), 20.0);
  EXPECT_DOUBLE_EQ(*p.cost("b"), 5.0);
  EXPECT_FALSE(p.cost("missing").has_value());
}

TEST(CostProfile, FromStudyKeepsOnlyOkOutcomesWithCycles) {
  StudyResult study;
  study.test_name = "t";
  CompilationOutcome ok;
  ok.comp = o3();
  ok.cycles = 123.0;
  CompilationOutcome crashed;
  crashed.comp = o0();
  crashed.cycles = 456.0;
  crashed.status = OutcomeStatus::Crashed;
  CompilationOutcome cycleless;
  cycleless.comp = {toolchain::clang(), OptLevel::O2, ""};
  cycleless.cycles = 0.0;
  study.outcomes = {ok, crashed, cycleless};

  const CostProfile p = CostProfile::from_study(study);
  EXPECT_EQ(p.size(), 1u);
  ASSERT_TRUE(p.cost(o3().str()).has_value());
  EXPECT_DOUBLE_EQ(*p.cost(o3().str()), 123.0);
}

TEST(CostProfile, FromResultsDbUsesInverseSpeedupAndSkipsFailures) {
  const fs::path path =
      fs::temp_directory_path() / "flit_cost_profile_roundtrip.tsv";
  fs::remove(path);
  {
    StudyResult study;
    study.test_name = "t";
    CompilationOutcome fast;
    fast.comp = o3();
    fast.speedup = 2.0;
    CompilationOutcome failed;
    failed.comp = o0();
    failed.speedup = 0.0;
    failed.status = OutcomeStatus::BuildFailed;
    study.outcomes = {fast, failed};
    core::ResultsDb db(path);
    db.record(study);
  }
  const CostProfile p = CostProfile::from_results_db(path);
  EXPECT_EQ(p.size(), 1u);
  ASSERT_TRUE(p.cost(o3().str()).has_value());
  EXPECT_DOUBLE_EQ(*p.cost(o3().str()), 0.5);  // 1 / speedup
  fs::remove(path);
}

TEST(CostProfile, FromResultsDbThrowsWhenTheFileIsMissing) {
  EXPECT_THROW(CostProfile::from_results_db(
                   fs::temp_directory_path() / "flit_no_such_profile.tsv"),
               std::runtime_error);
}

TEST(CostModel, PredictsFinitePositiveCostForTheWholeStudySpace) {
  const CostModel model(toolchain::mfem_baseline(),
                        toolchain::mfem_speed_reference());
  for (const Compilation& c : toolchain::mfem_study_space()) {
    const double cost = model.predict(c);
    EXPECT_TRUE(std::isfinite(cost)) << c.str();
    EXPECT_GT(cost, 0.0) << c.str();
  }
}

TEST(CostModel, StaticEstimateOrdersUnoptimizedAboveOptimized) {
  // O0 compilations pay the largest time scale and no vector width; the
  // static seed must rank them above an optimized build of the same
  // compiler, or the partitioner would balance skew backwards.
  EXPECT_GT(CostModel::static_estimate(o0()), CostModel::static_estimate(o3()));
}

TEST(CostModel, AnchorEqualItemsCollapseToTheReuseCost) {
  CostModel model(toolchain::mfem_baseline(),
                  toolchain::mfem_speed_reference());
  EXPECT_DOUBLE_EQ(model.predict(toolchain::mfem_baseline()),
                   CostModel::kAnchorReuseCost);
  EXPECT_DOUBLE_EQ(model.predict(toolchain::mfem_speed_reference()),
                   CostModel::kAnchorReuseCost);

  // Even a profile observation for the anchor's string must not undo the
  // collapse: the explorer answers those items from the memoized anchor
  // run, whatever a prior study measured for the compilation itself.
  CostProfile p;
  p.add(toolchain::mfem_baseline().str(), 1e9);
  model.set_profile(std::move(p));
  EXPECT_DOUBLE_EQ(model.predict(toolchain::mfem_baseline()),
                   CostModel::kAnchorReuseCost);
}

TEST(CostModel, ProfileObservationOverridesTheStaticSeed) {
  CostModel model(toolchain::mfem_baseline(),
                  toolchain::mfem_speed_reference());
  const Compilation vec{toolchain::gcc(), OptLevel::O2, "-mavx2 -mfma"};
  const double seed = model.predict(vec);
  EXPECT_DOUBLE_EQ(seed, CostModel::static_estimate(vec));
  CostProfile p;
  p.add(vec.str(), seed * 7.0);
  model.set_profile(std::move(p));
  EXPECT_TRUE(model.has_profile());
  EXPECT_DOUBLE_EQ(model.predict(vec), seed * 7.0);
  // Unprofiled compilations keep the static seed.
  const Compilation other{toolchain::clang(), OptLevel::O3, ""};
  EXPECT_DOUBLE_EQ(model.predict(other), CostModel::static_estimate(other));
}

TEST(CostErrorBuckets, AreGeometricAndStrictlyIncreasing) {
  const auto& b = dist::cost_error_buckets();
  ASSERT_EQ(b.size(), 16u);
  EXPECT_DOUBLE_EQ(b.front(), 0.125);
  for (std::size_t i = 1; i < b.size(); ++i) {
    EXPECT_DOUBLE_EQ(b[i], b[i - 1] * 2.0) << i;
  }
}

}  // namespace
