// The fleet supervisor suite (ctest label "supervisor"): rank-level fault
// containment over the sharded engine.
//
// Contracts under test:
//   * StealQueue's orphan protocol: released and dead-rank work is
//     re-claimable by any rank, stealing on or off, and claimable() is an
//     exact introspection of claim().
//   * The supervised virtual-clock loop's unfaulted bytes are identical
//     to the single-process explorer at every placement policy x shards x
//     jobs x steal setting (force_supervised).
//   * With FLIT_FAULTS=shard/stall armed, the supervisor recovers and the
//     merged study / CSV / converged database are byte-identical to an
//     unfaulted run -- and deterministic across repeated faulted runs.
//   * Budget exhaustion throws FleetAbort by default; allow_partial marks
//     the unrecoverable cells Degraded in the study, CSV and database,
//     and a later resume re-runs them, converging to unfaulted bytes.
//   * A supervised checkpointed run resumes from its shard databases to
//     the same converged bytes.
//   * ShardCoordinator rejects an unusable --shard-db-dir at
//     construction, not at the first checkpoint.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/explorer.h"
#include "core/faults.h"
#include "core/report.h"
#include "core/resultsdb.h"
#include "dist/comm.h"
#include "dist/supervisor.h"
#include "mfemini/examples.h"
#include "toolchain/compiler.h"

namespace {

using namespace flit;
using core::FaultInjector;
using core::FaultSite;
using core::OutcomeStatus;
using dist::ShardRange;
using dist::StealQueue;
using toolchain::Compilation;
using toolchain::OptLevel;

namespace fs = std::filesystem;

std::vector<Compilation> small_space() {
  return {
      {toolchain::gcc(), OptLevel::O0, ""},
      {toolchain::gcc(), OptLevel::O2, ""},
      {toolchain::gcc(), OptLevel::O3, ""},
      {toolchain::gcc(), OptLevel::O2, "-mavx2 -mfma"},
      {toolchain::gcc(), OptLevel::O2, "-funsafe-math-optimizations"},
      {toolchain::clang(), OptLevel::O3, "-ffast-math"},
      {toolchain::icpc(), OptLevel::O2, ""},
      {toolchain::icpc(), OptLevel::O2, "-fp-model precise"},
  };
}

dist::FleetSupervisor make_supervisor(dist::SupervisorOptions opts) {
  return dist::FleetSupervisor(&fpsem::global_code_model(),
                               toolchain::mfem_baseline(),
                               toolchain::mfem_speed_reference(),
                               std::move(opts));
}

core::StudyResult reference_study(const core::TestBase& test,
                                  const std::vector<Compilation>& space) {
  core::SpaceExplorer explorer(&fpsem::global_code_model(),
                               toolchain::mfem_baseline(),
                               toolchain::mfem_speed_reference(), 1);
  return explorer.explore(test, space);
}

void expect_identical(const core::StudyResult& a, const core::StudyResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  EXPECT_EQ(core::study_csv(a), core::study_csv(b));
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const auto& x = a.outcomes[i];
    const auto& y = b.outcomes[i];
    EXPECT_EQ(x.comp.str(), y.comp.str()) << "index " << i;
    EXPECT_EQ(x.status, y.status) << "index " << i;
    EXPECT_EQ(x.variability, y.variability) << "index " << i;
    EXPECT_EQ(x.speedup, y.speedup) << "index " << i;
  }
}

std::string file_bytes(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Every test runs with the global injector disarmed on entry and exit.
class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::global().disarm(); }
  void TearDown() override {
    FaultInjector::global().disarm();
    if (!dir_.empty()) fs::remove_all(dir_);
  }

  const fs::path& temp_dir() {
    dir_ = fs::temp_directory_path() /
           ("flit_supervisor_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    return dir_;
  }

  fs::path dir_;
};

// ---- StealQueue orphan protocol -------------------------------------------

TEST_F(SupervisorTest, ReleasedClaimIsReassignedFifo) {
  StealQueue q({{0, 4}, {4, 8}}, 2);
  const auto c0 = q.claim(0);
  ASSERT_TRUE(c0.has_value());
  EXPECT_EQ(c0->range.begin, 0u);
  EXPECT_EQ(c0->range.end, 2u);
  EXPECT_FALSE(c0->reassigned);

  // Rank 0 died mid-claim: the range returns to the orphan pool and rank
  // 1 -- its own slot still full -- drains its own work first, then the
  // orphan, flagged reassigned with the original owner as victim.
  q.release(c0->range, 0);
  q.mark_dead(0);
  std::size_t reassigned_items = 0;
  while (const auto c = q.claim(1)) {
    if (c->reassigned) {
      reassigned_items += c->range.size();
      EXPECT_EQ(c->victim, 0);
      EXPECT_FALSE(c->stolen);
    }
  }
  // The released claim (2 items) plus the dead rank's unclaimed tail
  // (positions 2..4).
  EXPECT_EQ(reassigned_items, 4u);
  EXPECT_EQ(q.stats(1).reassigned, 4u);
  EXPECT_TRUE(q.drained());
}

TEST_F(SupervisorTest, OrphansClaimableWithStealingDisabled) {
  StealQueue q({{0, 4}, {4, 8}}, 4, /*steal_enabled=*/false);
  // With stealing off, rank 1 cannot touch rank 0's live slot...
  ASSERT_TRUE(q.claim(1).has_value());   // own work
  EXPECT_FALSE(q.claim(1).has_value());  // no steal
  EXPECT_FALSE(q.claimable(1));
  // ...but a dead rank's work is recovery, not load balancing.
  q.mark_dead(0);
  EXPECT_TRUE(q.claimable(1));
  const auto c = q.claim(1);
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(c->reassigned);
  EXPECT_EQ(c->range.begin, 0u);
  EXPECT_EQ(c->range.end, 4u);
  EXPECT_TRUE(q.drained());
}

TEST_F(SupervisorTest, DrainedAccountsForOrphans) {
  StealQueue q({{0, 2}}, 2);
  const auto c = q.claim(0);
  ASSERT_TRUE(c.has_value());
  EXPECT_TRUE(q.drained());
  q.release(c->range, 0);
  EXPECT_FALSE(q.drained());  // orphaned work is still work
  ASSERT_TRUE(q.claim(0).has_value());
  EXPECT_TRUE(q.drained());
}

// ---- supervised loop, unfaulted: byte-identity ----------------------------

TEST_F(SupervisorTest, ForceSupervisedUnfaultedBytesMatchReference) {
  mfemini::MfemExampleTest test(5);
  const auto space = small_space();
  const core::StudyResult ref = reference_study(test, space);
  const std::string ref_csv = core::study_csv(ref);

  for (const auto policy :
       {dist::PlacementPolicy::Static, dist::PlacementPolicy::Cost,
        dist::PlacementPolicy::Affinity}) {
    for (const int shards : {1, 2, 4}) {
      for (const unsigned jobs : {1u, 4u}) {
        for (const bool steal : {true, false}) {
          dist::SupervisorOptions opts;
          opts.shard.shards = shards;
          opts.shard.jobs = jobs;
          opts.shard.steal = steal;
          opts.shard.steal_grain = 2;
          opts.shard.placement = policy;
          opts.force_supervised = true;
          const auto fleet = make_supervisor(opts);
          const dist::ShardedStudy s = fleet.run(test, space);
          EXPECT_TRUE(s.supervisor.enabled);
          EXPECT_EQ(s.supervisor.rank_faults, 0u);
          EXPECT_EQ(s.supervisor.degraded_cells, 0u);
          EXPECT_EQ(core::study_csv(s.study), ref_csv)
              << "policy " << to_string(policy) << " shards " << shards
              << " jobs " << jobs << " steal " << steal;
        }
      }
    }
  }
}

TEST_F(SupervisorTest, UnarmedRunDelegatesToCoordinator) {
  mfemini::MfemExampleTest test(5);
  const auto space = small_space();
  dist::SupervisorOptions opts;
  opts.shard.shards = 2;
  const auto fleet = make_supervisor(opts);
  const dist::ShardedStudy s = fleet.run(test, space);
  // No rank-level site armed: the fast path ran and the report carries no
  // supervisor lines (the historical bytes).
  EXPECT_FALSE(s.supervisor.enabled);
  EXPECT_EQ(dist::shard_report_text(s).find("supervisor"), std::string::npos);
  expect_identical(s.study, reference_study(test, space));
}

// ---- shard/stall fault recovery -------------------------------------------

TEST_F(SupervisorTest, ShardFaultRecoveryConvergesToUnfaultedBytes) {
  mfemini::MfemExampleTest test(5);
  const auto space = small_space();
  const std::string ref_csv =
      core::study_csv(reference_study(test, space));

  dist::SupervisorOptions opts;
  opts.shard.shards = 2;
  opts.shard.steal_grain = 2;
  opts.max_restarts = 8;  // ample budget: recovery must succeed

  FaultInjector::global().configure("shard:0.3:1");
  const auto fleet = make_supervisor(opts);
  const dist::ShardedStudy a = fleet.run(test, space);
  EXPECT_TRUE(a.supervisor.enabled);
  EXPECT_GT(a.supervisor.rank_faults, 0u);
  EXPECT_GT(a.supervisor.restarts, 0u);
  EXPECT_GT(a.supervisor.backoff_cycles, 0.0);
  EXPECT_EQ(a.supervisor.degraded_cells, 0u);
  EXPECT_EQ(core::study_csv(a.study), ref_csv);

  // Deterministic under faults: the same seed replays the same schedule,
  // fault decisions and accounting.
  const dist::ShardedStudy b = fleet.run(test, space);
  EXPECT_EQ(core::study_csv(b.study), ref_csv);
  EXPECT_EQ(b.supervisor.rank_faults, a.supervisor.rank_faults);
  EXPECT_EQ(b.supervisor.restarts, a.supervisor.restarts);
  EXPECT_EQ(b.supervisor.reassigned_claims, a.supervisor.reassigned_claims);
  EXPECT_EQ(b.supervisor.backoff_cycles, a.supervisor.backoff_cycles);
  EXPECT_EQ(b.supervisor.fleet_cycles, a.supervisor.fleet_cycles);
  EXPECT_EQ(dist::shard_report_text(b), dist::shard_report_text(a));
}

TEST_F(SupervisorTest, StallRecoveryChargesDeadlineAndConverges) {
  mfemini::MfemExampleTest test(5);
  const auto space = small_space();
  const std::string ref_csv =
      core::study_csv(reference_study(test, space));

  dist::SupervisorOptions opts;
  opts.shard.shards = 2;
  opts.shard.steal_grain = 2;
  opts.max_restarts = 8;
  opts.stall_deadline = 4096.0;

  FaultInjector::global().configure("stall:0.3:3");
  const auto fleet = make_supervisor(opts);
  const dist::ShardedStudy s = fleet.run(test, space);
  EXPECT_GT(s.supervisor.stalls, 0u);
  EXPECT_EQ(s.supervisor.rank_faults, 0u);
  EXPECT_EQ(core::study_csv(s.study), ref_csv);

  // The stalled rank paid the detection deadline plus its backoff on the
  // virtual clock, so the fleet clock exceeds an unfaulted supervised
  // run's.
  FaultInjector::global().disarm();
  dist::SupervisorOptions clean = opts;
  clean.force_supervised = true;
  const dist::ShardedStudy unfaulted = make_supervisor(clean).run(test, space);
  EXPECT_GT(s.supervisor.fleet_cycles, unfaulted.supervisor.fleet_cycles);
}

TEST_F(SupervisorTest, StealDisabledStillRecovers) {
  mfemini::MfemExampleTest test(5);
  const auto space = small_space();
  const std::string ref_csv =
      core::study_csv(reference_study(test, space));

  dist::SupervisorOptions opts;
  opts.shard.shards = 2;
  opts.shard.steal = false;  // recovery must not depend on load balancing
  opts.shard.steal_grain = 2;
  opts.max_restarts = 8;

  FaultInjector::global().configure("shard:0.3:1");
  const dist::ShardedStudy s = make_supervisor(opts).run(test, space);
  EXPECT_GT(s.supervisor.rank_faults, 0u);
  EXPECT_EQ(core::study_csv(s.study), ref_csv);
}

// ---- budget exhaustion: FleetAbort and degraded mode ----------------------

TEST_F(SupervisorTest, BudgetExhaustionThrowsFleetAbortByDefault) {
  mfemini::MfemExampleTest test(5);
  const auto space = small_space();
  dist::SupervisorOptions opts;
  opts.shard.shards = 2;
  opts.max_restarts = 0;
  FaultInjector::global().configure("shard:1.0:1");
  const auto fleet = make_supervisor(opts);
  EXPECT_THROW((void)fleet.run(test, space), dist::FleetAbort);
}

TEST_F(SupervisorTest, AllowPartialMarksDegradedEverywhere) {
  mfemini::MfemExampleTest test(5);
  const auto space = small_space();
  const fs::path db_path = temp_dir() / "converged.tsv";
  fs::create_directories(db_path.parent_path());
  core::ResultsDb db(db_path);

  dist::SupervisorOptions opts;
  opts.shard.shards = 2;
  opts.max_restarts = 0;
  opts.allow_partial = true;
  opts.shard.db = &db;
  FaultInjector::global().configure("shard:1.0:1");
  const dist::ShardedStudy s = make_supervisor(opts).run(test, space);

  // Every cell degraded: rate 1.0 kills each rank on its first claim.
  EXPECT_EQ(s.supervisor.degraded_cells, space.size());
  EXPECT_EQ(s.supervisor.dead_ranks, 2u);
  EXPECT_EQ(s.study.degraded_count(), space.size());
  EXPECT_EQ(s.study.failed_count(), space.size());

  // The degraded marking shows up in every artifact: CSV status column,
  // failure report, summary, merge report, and the converged database.
  EXPECT_NE(core::study_csv(s.study).find(",degraded,"), std::string::npos);
  EXPECT_NE(core::failure_report(s.study).find("DEGRADED"),
            std::string::npos);
  EXPECT_NE(core::study_summary(s.study).find("degraded"),
            std::string::npos);
  EXPECT_NE(dist::shard_report_text(s).find("cell(s) degraded"),
            std::string::npos);
  db.reload();
  ASSERT_EQ(db.size(), space.size());
  for (const core::ResultRow& row : db.rows()) {
    EXPECT_EQ(row.status, OutcomeStatus::Degraded);
  }
}

TEST_F(SupervisorTest, ResumeRerunsDegradedRowsAndConverges) {
  mfemini::MfemExampleTest test(5);
  const auto space = small_space();
  const fs::path dir = temp_dir();
  fs::create_directories(dir);

  // A partially degraded database: rate 1.0, budget 0, no checkpoints.
  {
    core::ResultsDb db(dir / "study.tsv");
    dist::SupervisorOptions opts;
    opts.shard.shards = 2;
    opts.max_restarts = 0;
    opts.allow_partial = true;
    opts.shard.db = &db;
    FaultInjector::global().configure("shard:1.0:1");
    (void)make_supervisor(opts).run(test, space);
  }
  FaultInjector::global().disarm();

  // Degraded rows are infrastructure failures: unlike quarantined rows, a
  // resume re-runs them, converging to the bytes an unfaulted run writes.
  core::ResultsDb db(dir / "study.tsv");
  core::SpaceExplorer explorer(&fpsem::global_code_model(),
                               toolchain::mfem_baseline(),
                               toolchain::mfem_speed_reference(), 1);
  core::ExploreOptions eo;
  eo.db = &db;
  eo.resume = true;
  const core::StudyResult resumed = explorer.explore(test, space, eo);
  EXPECT_EQ(resumed.degraded_count(), 0u);
  expect_identical(resumed, reference_study(test, space));

  core::ResultsDb ref_db(dir / "ref.tsv");
  ref_db.record(reference_study(test, space));
  EXPECT_EQ(file_bytes(dir / "study.tsv"), file_bytes(dir / "ref.tsv"));
}

// ---- supervised checkpoint/resume stitching -------------------------------

TEST_F(SupervisorTest, SupervisedCheckpointsResumeToConvergedBytes) {
  mfemini::MfemExampleTest test(5);
  const auto space = small_space();
  const fs::path dir = temp_dir();

  dist::SupervisorOptions opts;
  opts.shard.shards = 2;
  opts.shard.steal_grain = 2;
  opts.shard.checkpoint_batch = 2;
  opts.shard.shard_db_dir = dir / "shards";
  opts.max_restarts = 8;

  // Faulted, supervised, checkpointed run writes the converged database.
  core::ResultsDb db_a(dir / "a.tsv");
  {
    dist::SupervisorOptions o = opts;
    o.shard.db = &db_a;
    FaultInjector::global().configure("shard:0.3:1");
    const dist::ShardedStudy s = make_supervisor(o).run(test, space);
    EXPECT_GT(s.supervisor.rank_faults, 0u);
  }
  FaultInjector::global().disarm();

  // A resume over the shard checkpoints (faults disarmed: fast path)
  // prefills everything and converges to the same bytes.
  core::ResultsDb db_b(dir / "b.tsv");
  {
    dist::SupervisorOptions o = opts;
    o.shard.db = &db_b;
    const dist::ShardedStudy s = make_supervisor(o).resume(test, space);
    EXPECT_FALSE(s.supervisor.enabled);
    std::size_t prefilled = 0;
    for (const auto& rep : s.shards) prefilled += rep.prefilled;
    EXPECT_EQ(prefilled, space.size());
  }
  EXPECT_EQ(file_bytes(dir / "a.tsv"), file_bytes(dir / "b.tsv"));
}

// ---- option and directory validation --------------------------------------

TEST_F(SupervisorTest, RejectsInvalidPolicyOptions) {
  dist::SupervisorOptions opts;
  opts.max_restarts = -1;
  EXPECT_THROW((void)make_supervisor(opts), std::invalid_argument);
  opts.max_restarts = 2;
  opts.backoff_base = 0.0;
  EXPECT_THROW((void)make_supervisor(opts), std::invalid_argument);
  opts.backoff_base = 1024.0;
  opts.stall_deadline = -1.0;
  EXPECT_THROW((void)make_supervisor(opts), std::invalid_argument);
}

TEST_F(SupervisorTest, ShardDbDirValidatedAtConstruction) {
  const fs::path dir = temp_dir();
  fs::create_directories(dir);
  // A plain file where the directory should be: create_directories cannot
  // succeed, and the coordinator must say so up front with an actionable
  // message -- not a raw stream exception at the first checkpoint.
  const fs::path clash = dir / "not-a-directory";
  { std::ofstream(clash) << "occupied\n"; }
  dist::SupervisorOptions opts;
  opts.shard.shards = 2;
  opts.shard.shard_db_dir = clash;
  try {
    (void)make_supervisor(opts);
    FAIL() << "unusable shard-db-dir accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("shard-db directory"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
