// The parallel substrate: ThreadPool index coverage, deterministic
// index-ordered results, serial-equivalent exception propagation, pool
// reuse across batches, and the FLIT_JOBS override of default_jobs().

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/parallel.h"

namespace {

using flit::core::ThreadPool;
using flit::core::default_jobs;

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (unsigned jobs : {1u, 2u, 8u}) {
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                          std::size_t{100}}) {
      std::vector<std::atomic<int>> hits(n);
      ThreadPool pool(jobs);
      pool.parallel_for(n, [&](std::size_t i) { ++hits[i]; });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
      }
    }
  }
}

TEST(ThreadPool, IndexAddressedResultsMatchSerialBitwise) {
  const std::size_t n = 257;
  std::vector<double> serial(n);
  for (std::size_t i = 0; i < n; ++i) {
    serial[i] = 1.0 / (static_cast<double>(i) + 0.25);
  }
  for (unsigned jobs : {2u, 8u}) {
    std::vector<double> parallel(n);
    ThreadPool pool(jobs);
    pool.parallel_for(n, [&](std::size_t i) {
      parallel[i] = 1.0 / (static_cast<double>(i) + 0.25);
    });
    EXPECT_EQ(parallel, serial) << "jobs=" << jobs;
  }
}

TEST(ThreadPool, RethrowsTheLowestIndexException) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(64, [](std::size_t i) {
      if (i == 11 || i == 40) {
        throw std::runtime_error(std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // A serial loop would have thrown at index 11 first.
    EXPECT_STREQ(e.what(), "11");
  }
}

TEST(ThreadPool, ExceptionStillCompletesEveryIndex) {
  std::vector<std::atomic<int>> hits(32);
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(32,
                                 [&](std::size_t i) {
                                   ++hits[i];
                                   if (i == 5) throw std::logic_error("x");
                                 }),
               std::logic_error);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    std::vector<int> out(50, -1);
    pool.parallel_for(out.size(),
                      [&](std::size_t i) { out[i] = static_cast<int>(i); });
    std::vector<int> expect(50);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(out, expect) << "round " << round;
  }
}

TEST(DefaultJobs, HonoursFlitJobsEnvironment) {
  const char* saved = std::getenv("FLIT_JOBS");
  const std::string saved_value = saved ? saved : "";

  ::setenv("FLIT_JOBS", "5", 1);
  EXPECT_EQ(default_jobs(), 5u);

  ::setenv("FLIT_JOBS", "0", 1);  // invalid: fall back to hardware
  EXPECT_GE(default_jobs(), 1u);

  ::setenv("FLIT_JOBS", "banana", 1);  // unparsable: fall back
  EXPECT_GE(default_jobs(), 1u);

  ::unsetenv("FLIT_JOBS");
  EXPECT_GE(default_jobs(), 1u);

  if (saved) ::setenv("FLIT_JOBS", saved_value.c_str(), 1);
}

}  // namespace
