// ddmin reference implementation: minimality, agreement with bisect_all
// under the paper's assumptions, and the execution-cost gap that
// motivates Bisect.

#include <cmath>
#include <random>
#include <set>

#include <gtest/gtest.h>

#include "core/delta_debug.h"

namespace {

using flit::core::MemoizedTest;
using flit::core::bisect_all;
using flit::core::ddmin;

MemoizedTest<int> weighted_test(const std::set<int>& culprits) {
  return MemoizedTest<int>([culprits](const std::vector<int>& items) {
    double v = 0.0;
    for (int e : items) {
      if (culprits.contains(e)) v += std::ldexp(1.0, e % 50);
    }
    return v;
  });
}

std::vector<int> universe(int n) {
  std::vector<int> u(n);
  for (int i = 0; i < n; ++i) u[i] = i;
  return u;
}

TEST(Ddmin, EmptyWhenNothingFails) {
  auto test = weighted_test({});
  const auto out = ddmin(test, universe(16));
  EXPECT_TRUE(out.minimal.empty());
}

TEST(Ddmin, SingleCulpritIsFoundExactly) {
  for (int culprit : {0, 5, 15}) {
    auto test = weighted_test({culprit});
    const auto out = ddmin(test, universe(16));
    EXPECT_EQ(out.minimal, std::vector<int>{culprit});
  }
}

class DdminPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, unsigned>> {};

TEST_P(DdminPropertyTest, MatchesBisectAllUnderUniqueErrorAssumption) {
  const auto [n, k, seed] = GetParam();
  std::mt19937 rng(seed);
  std::set<int> culprits;
  while (static_cast<int>(culprits.size()) < k) {
    culprits.insert(static_cast<int>(rng() % static_cast<unsigned>(n)));
  }
  auto t1 = weighted_test(culprits);
  const auto dd = ddmin(t1, universe(n));
  EXPECT_EQ(std::set<int>(dd.minimal.begin(), dd.minimal.end()), culprits);

  auto t2 = weighted_test(culprits);
  const auto bis = bisect_all(t2, universe(n));
  EXPECT_EQ(std::set<int>(dd.minimal.begin(), dd.minimal.end()),
            std::set<int>(bis.found.begin(), bis.found.end()));
}

INSTANTIATE_TEST_SUITE_P(
    Universes, DdminPropertyTest,
    ::testing::Combine(::testing::Values(16, 64, 100),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(7u, 11u)));

TEST(Ddmin, ResultIsOneMinimal) {
  std::set<int> culprits{3, 17, 40};
  auto test = weighted_test(culprits);
  const auto out = ddmin(test, universe(64));
  // Removing any single element from the result must make Test drop.
  auto check = weighted_test(culprits);
  const double full = check(out.minimal);
  EXPECT_GT(full, 0.0);
  for (std::size_t i = 0; i < out.minimal.size(); ++i) {
    std::vector<int> reduced = out.minimal;
    reduced.erase(reduced.begin() + static_cast<std::ptrdiff_t>(i));
    EXPECT_NE(check(reduced), full);
  }
}

TEST(Ddmin, HandlesCoupledCulpritsThatBreakBisect) {
  // Two elements failing only jointly: ddmin still returns the pair
  // (Bisect would flag an assumption violation instead).
  MemoizedTest<int> coupled([](const std::vector<int>& items) {
    const bool a = std::find(items.begin(), items.end(), 4) != items.end();
    const bool b = std::find(items.begin(), items.end(), 11) != items.end();
    return a && b ? 1.0 : 0.0;
  });
  const auto out = ddmin(coupled, universe(16));
  EXPECT_EQ(std::set<int>(out.minimal.begin(), out.minimal.end()),
            (std::set<int>{4, 11}));
}

TEST(Ddmin, CostsMoreThanBisectForManyCulprits) {
  std::mt19937 rng(3);
  std::set<int> culprits;
  while (culprits.size() < 6) {
    culprits.insert(static_cast<int>(rng() % 256u));
  }
  auto t1 = weighted_test(culprits);
  const auto dd = ddmin(t1, universe(256));
  auto t2 = weighted_test(culprits);
  const auto bis = bisect_all(t2, universe(256));
  EXPECT_EQ(std::set<int>(dd.minimal.begin(), dd.minimal.end()),
            std::set<int>(bis.found.begin(), bis.found.end()));
  // The complexity gap of Sec. 2.4: O(k^2 log N) vs O(k log N).
  EXPECT_GT(dd.executions, bis.executions);
}

}  // namespace
