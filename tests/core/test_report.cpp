// Report emitters: CSV shape, summaries, blame rendering.

#include <gtest/gtest.h>

#include "core/report.h"

namespace {

using namespace flit;
using namespace flit::core;

StudyResult sample_study() {
  StudyResult r;
  r.test_name = "T";
  CompilationOutcome a;
  a.comp = {toolchain::gcc(), toolchain::OptLevel::O2, ""};
  a.variability = 0.0L;
  a.speedup = 1.0;
  CompilationOutcome b;
  b.comp = {toolchain::gcc(), toolchain::OptLevel::O3,
            "-funsafe-math-optimizations"};
  b.variability = 1e-12L;
  b.speedup = 1.2;
  r.outcomes = {a, b};
  return r;
}

TEST(Report, StudyCsvHasHeaderAndOneRowPerOutcome) {
  const std::string csv = study_csv(sample_study());
  EXPECT_NE(csv.find("compilation,speedup,variability,bitwise_equal"),
            std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("\"g++ -O2\",1,0,1"), std::string::npos);
}

TEST(Report, StudySummaryNamesBothCategories) {
  const std::string s = study_summary(sample_study());
  EXPECT_NE(s.find("1 variable"), std::string::npos);
  EXPECT_NE(s.find("fastest bitwise-equal g++ -O2"), std::string::npos);
  EXPECT_NE(s.find("fastest variable g++ -O3"), std::string::npos);
}

TEST(Report, BisectReportRendersBlameAndStatus) {
  HierarchicalOutcome out;
  out.executions = 14;
  FileFinding ff;
  ff.file = "a.cpp";
  ff.value = 0.5;
  ff.status = FileFinding::SymbolStatus::Found;
  ff.symbols.push_back(SymbolFinding{"f", 0.5});
  out.findings.push_back(ff);
  const std::string s = bisect_report(out);
  EXPECT_NE(s.find("14 program executions"), std::string::npos);
  EXPECT_NE(s.find("a.cpp"), std::string::npos);
  EXPECT_NE(s.find("    f"), std::string::npos);
  EXPECT_NE(s.find("assumptions verified"), std::string::npos);
}

TEST(Report, BisectReportCrash) {
  HierarchicalOutcome out;
  out.crashed = true;
  out.crash_reason = "SIGSEGV";
  out.executions = 3;
  const std::string s = bisect_report(out);
  EXPECT_NE(s.find("FAILED"), std::string::npos);
  EXPECT_NE(s.find("SIGSEGV"), std::string::npos);
}

TEST(Report, BisectReportLinkStepOnly) {
  HierarchicalOutcome out;
  out.executions = 5;
  const std::string s = bisect_report(out);
  EXPECT_NE(s.find("link step"), std::string::npos);
}

TEST(Report, WorkflowReportIncludesRecommendation) {
  WorkflowReport r;
  r.study = sample_study();
  r.fastest_reproducible = &r.study.outcomes[0];
  const std::string s = workflow_report_text(r);
  EXPECT_NE(s.find("recommendation: g++ -O2"), std::string::npos);
}

TEST(Report, WorkflowReportWithoutReproducibleCompilation) {
  WorkflowReport r;
  r.study = sample_study();
  r.fastest_reproducible = nullptr;
  const std::string s = workflow_report_text(r);
  EXPECT_NE(s.find("no reproducible compilation"), std::string::npos);
}

}  // namespace
