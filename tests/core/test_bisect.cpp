// Algorithm 1 (BisectAll / BisectOne): exactness, dynamic verification of
// the two assumptions, memoization accounting, and the O(k log N)
// execution bound -- property-tested over randomized synthetic universes.

#include <cmath>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/bisect.h"

namespace {

using flit::core::BisectOutcome;
using flit::core::MemoizedTest;
using flit::core::bisect_all;

/// A synthetic Test function under the paper's two assumptions: each
/// culprit element e contributes a distinct magnitude w(e), and Test(S) is
/// the sum of the weights of culprits present in S (distinct subset sums
/// guaranteed by powers of two).
MemoizedTest<int> weighted_test(const std::set<int>& culprits) {
  return MemoizedTest<int>([culprits](const std::vector<int>& items) {
    double v = 0.0;
    for (int e : items) {
      if (culprits.contains(e)) {
        v += std::ldexp(1.0, (e % 50));  // distinct power of two per element
      }
    }
    return v;
  });
}

std::vector<int> universe(int n) {
  std::vector<int> u(n);
  for (int i = 0; i < n; ++i) u[i] = i;
  return u;
}

TEST(BisectAll, EmptyCulpritSetFindsNothing) {
  auto test = weighted_test({});
  const auto out = bisect_all(test, universe(32));
  EXPECT_TRUE(out.found.empty());
  EXPECT_TRUE(out.assumptions_verified);
  // One probe of the whole set + the two (memoized) verification calls.
  EXPECT_LE(out.executions, 2);
}

TEST(BisectAll, SingleCulpritAnywhere) {
  for (int culprit : {0, 7, 15, 16, 31}) {
    auto test = weighted_test({culprit});
    const auto out = bisect_all(test, universe(32));
    ASSERT_EQ(out.found.size(), 1u) << culprit;
    EXPECT_EQ(out.found[0], culprit);
    EXPECT_TRUE(out.assumptions_verified);
  }
}

TEST(BisectAll, PaperWorkedExample) {
  // Figure 2: universe {1..10}, culprits {2, 8, 9}.
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto test = weighted_test({2, 8, 9});
  const auto out = bisect_all(test, items);
  EXPECT_EQ(std::set<int>(out.found.begin(), out.found.end()),
            (std::set<int>{2, 8, 9}));
  EXPECT_TRUE(out.assumptions_verified);
}

class BisectPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, unsigned>> {};

TEST_P(BisectPropertyTest, FindsExactlyTheCulpritSet) {
  const auto [n, k, seed] = GetParam();
  std::mt19937 rng(seed);
  std::vector<int> u = universe(n);
  std::shuffle(u.begin(), u.end(), rng);
  std::set<int> culprits;
  while (static_cast<int>(culprits.size()) < k) {
    culprits.insert(static_cast<int>(rng() % static_cast<unsigned>(n)));
  }
  auto test = weighted_test(culprits);
  const auto out = bisect_all(test, u);
  EXPECT_EQ(std::set<int>(out.found.begin(), out.found.end()), culprits);
  EXPECT_TRUE(out.assumptions_verified) << out.diagnostic;
}

TEST_P(BisectPropertyTest, ExecutionsAreWithinTheKLogNBound) {
  const auto [n, k, seed] = GetParam();
  std::mt19937 rng(seed ^ 0x9e3779b9u);
  std::set<int> culprits;
  while (static_cast<int>(culprits.size()) < k) {
    culprits.insert(static_cast<int>(rng() % static_cast<unsigned>(n)));
  }
  auto test = weighted_test(culprits);
  const auto out = bisect_all(test, universe(n));
  // Generous constant: c * (k+1) * (log2(n)+2) real executions.
  const double bound =
      3.0 * (k + 1) * (std::log2(static_cast<double>(n)) + 2.0);
  EXPECT_LE(out.executions, static_cast<int>(bound)) << "n=" << n
                                                     << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Universes, BisectPropertyTest,
    ::testing::Combine(::testing::Values(8, 16, 33, 64, 100),
                       ::testing::Values(1, 2, 3, 5),
                       ::testing::Values(1u, 2u, 3u)));

TEST(BisectAll, MemoizationAvoidsReexecution) {
  auto test = weighted_test({3});
  (void)test({0, 1, 2, 3});
  const int execs = test.executions();
  (void)test({3, 2, 1, 0});  // same set, different order
  EXPECT_EQ(test.executions(), execs);
  EXPECT_EQ(test.calls(), 2);
}

TEST(BisectAll, CoupledCulpritsTripTheSingletonAssertion) {
  // Two elements that only misbehave together violate Assumption 2: the
  // algorithm must flag possible false negatives instead of lying.
  MemoizedTest<int> coupled([](const std::vector<int>& items) {
    const bool has3 = std::find(items.begin(), items.end(), 3) != items.end();
    const bool has12 =
        std::find(items.begin(), items.end(), 12) != items.end();
    return has3 && has12 ? 1.0 : 0.0;
  });
  const auto out = bisect_all(coupled, universe(16));
  EXPECT_FALSE(out.assumptions_verified);
  EXPECT_FALSE(out.diagnostic.empty());
}

TEST(BisectAll, NonUniqueErrorMagnitudesAreDetected) {
  // Two culprits with identical magnitudes violate Assumption 1 in the
  // final verification whenever one of them is dropped along the way.
  MemoizedTest<int> same_weight([](const std::vector<int>& items) {
    // max-style metric: any culprit present gives the same Test value
    const bool any = std::find(items.begin(), items.end(), 2) != items.end() ||
                     std::find(items.begin(), items.end(), 9) != items.end();
    return any ? 0.5 : 0.0;
  });
  const auto out = bisect_all(same_weight, universe(12));
  // With a max metric, removing the found element 2's half still tests
  // positive through 9, so both are found OR the verification flags it.
  const std::set<int> found(out.found.begin(), out.found.end());
  if (found != std::set<int>{2, 9}) {
    EXPECT_FALSE(out.assumptions_verified);
  }
  // No false positives ever: every found element is a real culprit.
  for (int e : out.found) EXPECT_TRUE(e == 2 || e == 9);
}

TEST(BisectAll, NoFalsePositivesEvenUnderAssumptionViolations) {
  std::mt19937 rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::set<int> culprits;
    const int k = 1 + static_cast<int>(rng() % 4u);
    while (static_cast<int>(culprits.size()) < k) {
      culprits.insert(static_cast<int>(rng() % 40u));
    }
    // Max metric (violates Assumption 1 for multiple culprits).
    MemoizedTest<int> max_test([culprits](const std::vector<int>& items) {
      double v = 0.0;
      for (int e : items) {
        if (culprits.contains(e)) v = std::max(v, 1.0 + (e % 7));
      }
      return v;
    });
    const auto out = bisect_all(max_test, universe(40));
    for (int e : out.found) {
      EXPECT_TRUE(culprits.contains(e)) << "false positive " << e;
    }
  }
}

TEST(BisectAll, SingletonUniverse) {
  auto pos = weighted_test({0});
  const auto out = bisect_all(pos, universe(1));
  EXPECT_EQ(out.found, std::vector<int>{0});
  auto neg = weighted_test({});
  const auto out2 = bisect_all(neg, universe(1));
  EXPECT_TRUE(out2.found.empty());
}

TEST(BisectAll, EmptyUniverse) {
  auto test = weighted_test({});
  const auto out = bisect_all(test, std::vector<int>{});
  EXPECT_TRUE(out.found.empty());
}

TEST(BisectAll, WorksWithStringElements) {
  MemoizedTest<std::string> test([](const std::vector<std::string>& items) {
    return std::find(items.begin(), items.end(), "culprit.cpp") != items.end()
               ? 2.5
               : 0.0;
  });
  std::vector<std::string> files{"a.cpp", "b.cpp", "culprit.cpp", "d.cpp",
                                 "e.cpp"};
  const auto out = bisect_all(test, files);
  ASSERT_EQ(out.found.size(), 1u);
  EXPECT_EQ(out.found[0], "culprit.cpp");
}

TEST(BisectAll, VerificationCostsAtMostOneExtraExecution) {
  // Test(items) is memoized from the loop; only Test(found) is new.
  auto test = weighted_test({5, 21});
  const auto out = bisect_all(test, universe(32));
  EXPECT_TRUE(out.assumptions_verified);
  EXPECT_GT(out.test_calls, out.executions);  // memoization did save calls
}

}  // namespace
