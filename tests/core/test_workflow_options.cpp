// WorkflowOptions knobs: bisect opt-out, the max_bisects cap, and the
// k/digits pass-through into the Level 3 searches.

#include <gtest/gtest.h>

#include "core/workflow.h"
#include "fpsem/env.h"
#include "toolchain/compiler.h"

namespace {

using namespace flit;

const fpsem::FunctionId kWf = fpsem::register_fn({
    .name = "wfopt::reduce",
    .file = "wfopt/reduce.cpp",
});

class WfTest final : public core::TestBase {
 public:
  std::string name() const override { return "WfTest"; }
  std::size_t getInputsPerRun() const override { return 0; }
  std::vector<double> getDefaultInput() const override { return {}; }
  core::TestResult run_impl(const std::vector<double>&,
                            fpsem::EvalContext& ctx) const override {
    std::vector<double> v(48);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = 0.3 * static_cast<double>(i + 1) + 1.0 / (i + 2.0);
    }
    fpsem::FpEnv env = ctx.fn(kWf);
    return static_cast<long double>(env.sum(v));
  }
};

std::vector<toolchain::Compilation> space() {
  return {
      toolchain::mfem_baseline(),
      {toolchain::gcc(), toolchain::OptLevel::O2, ""},
      {toolchain::gcc(), toolchain::OptLevel::O2,
       "-funsafe-math-optimizations"},
      {toolchain::gcc(), toolchain::OptLevel::O3,
       "-funsafe-math-optimizations"},
      {toolchain::clang(), toolchain::OptLevel::O3, "-ffast-math"},
  };
}

core::WorkflowOptions base_opts() {
  core::WorkflowOptions o;
  o.baseline = toolchain::mfem_baseline();
  o.speed_reference = toolchain::mfem_speed_reference();
  return o;
}

TEST(WorkflowOptions, BisectOptOutSkipsLevel3) {
  WfTest t;
  auto o = base_opts();
  o.run_bisect = false;
  const auto s = space();
  const auto r = core::run_workflow(&fpsem::global_code_model(), t, s, o);
  EXPECT_EQ(r.study.variable_count(), 3u);
  EXPECT_TRUE(r.bisects.empty());
}

TEST(WorkflowOptions, MaxBisectsCapsLevel3) {
  WfTest t;
  auto o = base_opts();
  o.max_bisects = 2;
  const auto s = space();
  const auto r = core::run_workflow(&fpsem::global_code_model(), t, s, o);
  EXPECT_EQ(r.bisects.size(), 2u);
}

TEST(WorkflowOptions, ZeroMaxMeansAll) {
  WfTest t;
  auto o = base_opts();
  o.max_bisects = 0;
  const auto s = space();
  const auto r = core::run_workflow(&fpsem::global_code_model(), t, s, o);
  EXPECT_EQ(r.bisects.size(), 3u);
}

TEST(WorkflowOptions, DigitsPassThroughSilencesTinyVariability) {
  WfTest t;
  auto o = base_opts();
  o.digits = 3;  // reassociation noise invisible at 3 significant digits
  const auto s = space();
  const auto r = core::run_workflow(&fpsem::global_code_model(), t, s, o);
  for (const auto& vb : r.bisects) {
    EXPECT_TRUE(vb.bisect.nothing_found());
  }
}

TEST(WorkflowOptions, FastestPointersLiveInTheStudy) {
  WfTest t;
  auto o = base_opts();
  o.run_bisect = false;
  const auto s = space();
  const auto r = core::run_workflow(&fpsem::global_code_model(), t, s, o);
  ASSERT_NE(r.fastest_reproducible, nullptr);
  ASSERT_NE(r.fastest_any, nullptr);
  EXPECT_GE(r.fastest_any->speedup, r.fastest_reproducible->speedup);
  // Pointers must point into the returned study's outcome vector.
  const auto* begin = r.study.outcomes.data();
  const auto* end = begin + r.study.outcomes.size();
  EXPECT_TRUE(r.fastest_reproducible >= begin &&
              r.fastest_reproducible < end);
}

}  // namespace
