// ResultsDb: round-trip persistence, merge-on-record semantics, queries,
// malformed-file rejection.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/resultsdb.h"

namespace {

using namespace flit;
using core::ResultsDb;
using core::StudyResult;

namespace fs = std::filesystem;

class ResultsDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = fs::temp_directory_path() /
            ("flit_resultsdb_test_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove(path_);
  }
  void TearDown() override { fs::remove(path_); }

  StudyResult study(const std::string& name, double speedup,
                    long double var) {
    StudyResult r;
    r.test_name = name;
    core::CompilationOutcome o;
    o.comp = {toolchain::gcc(), toolchain::OptLevel::O2, ""};
    o.speedup = speedup;
    o.variability = var;
    r.outcomes.push_back(o);
    core::CompilationOutcome o2;
    o2.comp = {toolchain::icpc(), toolchain::OptLevel::O3,
               "-fp-model fast=2"};
    o2.speedup = speedup * 1.1;
    o2.variability = 1e-9L;
    r.outcomes.push_back(o2);
    return r;
  }

  fs::path path_;
};

TEST_F(ResultsDbTest, EmptyOnFirstOpen) {
  ResultsDb db(path_);
  EXPECT_EQ(db.size(), 0u);
  EXPECT_TRUE(db.tests().empty());
}

TEST_F(ResultsDbTest, RecordPersistsAcrossReopen) {
  {
    ResultsDb db(path_);
    db.record(study("T1", 1.25, 0.0L));
  }
  ResultsDb db2(path_);
  EXPECT_EQ(db2.size(), 2u);
  const auto row = db2.find("T1", "g++ -O2");
  ASSERT_TRUE(row.has_value());
  EXPECT_DOUBLE_EQ(row->speedup, 1.25);
  EXPECT_TRUE(row->bitwise_equal());
  const auto vrow = db2.find("T1", "icpc -O3 -fp-model fast=2");
  ASSERT_TRUE(vrow.has_value());
  EXPECT_FALSE(vrow->bitwise_equal());
}

TEST_F(ResultsDbTest, RecordMergesByKey) {
  ResultsDb db(path_);
  db.record(study("T1", 1.0, 0.0L));
  db.record(study("T1", 2.0, 0.0L));  // same keys, new values
  EXPECT_EQ(db.size(), 2u);
  EXPECT_DOUBLE_EQ(db.find("T1", "g++ -O2")->speedup, 2.0);
}

TEST_F(ResultsDbTest, MultipleTestsCoexist) {
  ResultsDb db(path_);
  db.record(study("T1", 1.0, 0.0L));
  db.record(study("T2", 1.5, 1e-12L));
  EXPECT_EQ(db.size(), 4u);
  EXPECT_EQ(db.tests(), (std::vector<std::string>{"T1", "T2"}));
  EXPECT_EQ(db.rows_for("T2").size(), 2u);
  EXPECT_TRUE(db.rows_for("T3").empty());
}

TEST_F(ResultsDbTest, VariabilityRoundTripsAtFullPrecision) {
  const long double v = 1.234567890123456789e-13L;
  {
    ResultsDb db(path_);
    db.record(study("T1", 1.0, v));
  }
  ResultsDb db2(path_);
  EXPECT_EQ(db2.find("T1", "g++ -O2")->variability, v);
}

TEST_F(ResultsDbTest, RejectsForeignFiles) {
  {
    std::ofstream out(path_);
    out << "not a results db\n";
  }
  EXPECT_THROW(ResultsDb{path_}, std::runtime_error);
}

TEST_F(ResultsDbTest, ReloadDiscardsUnsavedExternalChanges) {
  ResultsDb db(path_);
  db.record(study("T1", 1.0, 0.0L));
  {
    ResultsDb other(path_);
    other.record(study("T2", 3.0, 0.0L));
  }
  db.reload();
  EXPECT_EQ(db.tests().size(), 2u);
}

}  // namespace
