// ResultsDb: round-trip persistence, merge-on-record semantics, queries,
// malformed-file rejection.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/resultsdb.h"

namespace {

using namespace flit;
using core::ResultsDb;
using core::StudyResult;

namespace fs = std::filesystem;

class ResultsDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = fs::temp_directory_path() /
            ("flit_resultsdb_test_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove(path_);
  }
  void TearDown() override { fs::remove(path_); }

  StudyResult study(const std::string& name, double speedup,
                    long double var) {
    StudyResult r;
    r.test_name = name;
    core::CompilationOutcome o;
    o.comp = {toolchain::gcc(), toolchain::OptLevel::O2, ""};
    o.speedup = speedup;
    o.variability = var;
    r.outcomes.push_back(o);
    core::CompilationOutcome o2;
    o2.comp = {toolchain::icpc(), toolchain::OptLevel::O3,
               "-fp-model fast=2"};
    o2.speedup = speedup * 1.1;
    o2.variability = 1e-9L;
    r.outcomes.push_back(o2);
    return r;
  }

  fs::path path_;
};

TEST_F(ResultsDbTest, EmptyOnFirstOpen) {
  ResultsDb db(path_);
  EXPECT_EQ(db.size(), 0u);
  EXPECT_TRUE(db.tests().empty());
}

TEST_F(ResultsDbTest, RecordPersistsAcrossReopen) {
  {
    ResultsDb db(path_);
    db.record(study("T1", 1.25, 0.0L));
  }
  ResultsDb db2(path_);
  EXPECT_EQ(db2.size(), 2u);
  const auto row = db2.find("T1", "g++ -O2");
  ASSERT_TRUE(row.has_value());
  EXPECT_DOUBLE_EQ(row->speedup, 1.25);
  EXPECT_TRUE(row->bitwise_equal());
  const auto vrow = db2.find("T1", "icpc -O3 -fp-model fast=2");
  ASSERT_TRUE(vrow.has_value());
  EXPECT_FALSE(vrow->bitwise_equal());
}

TEST_F(ResultsDbTest, RecordMergesByKey) {
  ResultsDb db(path_);
  db.record(study("T1", 1.0, 0.0L));
  db.record(study("T1", 2.0, 0.0L));  // same keys, new values
  EXPECT_EQ(db.size(), 2u);
  EXPECT_DOUBLE_EQ(db.find("T1", "g++ -O2")->speedup, 2.0);
}

TEST_F(ResultsDbTest, MultipleTestsCoexist) {
  ResultsDb db(path_);
  db.record(study("T1", 1.0, 0.0L));
  db.record(study("T2", 1.5, 1e-12L));
  EXPECT_EQ(db.size(), 4u);
  EXPECT_EQ(db.tests(), (std::vector<std::string>{"T1", "T2"}));
  EXPECT_EQ(db.rows_for("T2").size(), 2u);
  EXPECT_TRUE(db.rows_for("T3").empty());
}

TEST_F(ResultsDbTest, VariabilityRoundTripsAtFullPrecision) {
  const long double v = 1.234567890123456789e-13L;
  {
    ResultsDb db(path_);
    db.record(study("T1", 1.0, v));
  }
  ResultsDb db2(path_);
  EXPECT_EQ(db2.find("T1", "g++ -O2")->variability, v);
}

TEST_F(ResultsDbTest, RejectsForeignFiles) {
  {
    std::ofstream out(path_);
    out << "not a results db\n";
  }
  EXPECT_THROW(ResultsDb{path_}, std::runtime_error);
}

TEST_F(ResultsDbTest, ReloadDiscardsUnsavedExternalChanges) {
  ResultsDb db(path_);
  db.record(study("T1", 1.0, 0.0L));
  {
    ResultsDb other(path_);
    other.record(study("T2", 3.0, 0.0L));
  }
  db.reload();
  EXPECT_EQ(db.tests().size(), 2u);
}

TEST_F(ResultsDbTest, CrashStatusRowsRoundTrip) {
  StudyResult r = study("T1", 0.0, 0.0L);
  r.outcomes[0].status = core::OutcomeStatus::Crashed;
  r.outcomes[0].reason = "injected fault: simulated signal";
  r.outcomes[0].speedup = 0.0;
  r.outcomes[1].status = core::OutcomeStatus::Retried;
  r.outcomes[1].reason = "recovered from:\ta\ttransient";  // tabs stripped
  {
    ResultsDb db(path_);
    db.record(r);
  }
  ResultsDb db2(path_);
  const auto crashed = db2.find("T1", "g++ -O2");
  ASSERT_TRUE(crashed.has_value());
  EXPECT_EQ(crashed->status, core::OutcomeStatus::Crashed);
  EXPECT_EQ(crashed->reason, "injected fault: simulated signal");
  EXPECT_FALSE(crashed->ok());
  EXPECT_FALSE(crashed->bitwise_equal())
      << "zero variability on a crashed row must not read as reproducible";
  const auto retried = db2.find("T1", "icpc -O3 -fp-model fast=2");
  ASSERT_TRUE(retried.has_value());
  EXPECT_EQ(retried->status, core::OutcomeStatus::Retried);
  EXPECT_EQ(retried->reason, "recovered from: a transient");
  EXPECT_TRUE(retried->ok());
}

TEST_F(ResultsDbTest, TruncatedTrailingRowIsDroppedNotFatal) {
  {
    ResultsDb db(path_);
    db.record(study("T1", 1.0, 0.0L));
  }
  {
    // Simulate a crash mid-append: a final row missing most of its fields.
    std::ofstream out(path_, std::ios::app);
    out << "T1\tclang++ -O3";
  }
  ResultsDb db(path_);  // must not throw
  EXPECT_EQ(db.size(), 2u);
  EXPECT_FALSE(db.find("T1", "clang++ -O3").has_value());
  // Re-saving heals the file.
  db.record(study("T2", 1.0, 0.0L));
  EXPECT_EQ(ResultsDb(path_).size(), 4u);
}

TEST_F(ResultsDbTest, MalformedMidFileRowIsStillFatal) {
  {
    ResultsDb db(path_);
    db.record(study("T1", 1.0, 0.0L));
  }
  // Corrupt the *first* data row; unlike a truncated tail this is not a
  // crash artifact, so it must be surfaced.
  std::ifstream in(path_);
  std::string header, rest, line;
  std::getline(in, header);
  std::getline(in, line);  // dropped
  while (std::getline(in, line)) rest += line + "\n";
  in.close();
  {
    std::ofstream out(path_, std::ios::trunc);
    out << header << "\nT1\tgarbage row\n" << rest;
  }
  EXPECT_THROW(ResultsDb{path_}, std::runtime_error);
}

TEST_F(ResultsDbTest, MergeRowsUpsertsInMemoryWithoutSaving) {
  ResultsDb db(path_);
  db.record(study("T1", 1.0, 0.0L));

  core::ResultRow fresh;
  fresh.test_name = "T2";
  fresh.compilation = "clang++ -O3";
  fresh.speedup = 2.0;
  core::ResultRow update;
  update.test_name = "T1";
  update.compilation = "g++ -O2";
  update.speedup = 9.0;
  db.merge_rows({fresh, update});

  // In memory: the new row is visible and the existing one was replaced.
  EXPECT_EQ(db.size(), 3u);
  EXPECT_DOUBLE_EQ(db.find("T2", "clang++ -O3")->speedup, 2.0);
  EXPECT_DOUBLE_EQ(db.find("T1", "g++ -O2")->speedup, 9.0);
  // On disk: nothing until the next record() persists the merged state.
  EXPECT_EQ(ResultsDb(path_).size(), 2u);
  db.record(study("T3", 1.0, 0.0L));
  EXPECT_EQ(ResultsDb(path_).size(), 5u);
}

TEST_F(ResultsDbTest, CorruptedNumericFieldIsFatalMidFile) {
  {
    ResultsDb db(path_);
    db.record(study("T1", 1.0, 0.0L));
  }
  // A speedup with trailing garbage parses as a number under a lax
  // strtod check ("1.5junk" -> 1.5); it must be rejected as corruption,
  // not silently loaded with a plausible value.
  std::ifstream in(path_);
  std::string header, rest, line;
  std::getline(in, header);
  std::getline(in, line);  // dropped
  while (std::getline(in, line)) rest += line + "\n";
  in.close();
  {
    std::ofstream out(path_, std::ios::trunc);
    out << header << "\nT1\tg++ -O2\t1.5junk\t0\tok\t\n" << rest;
  }
  EXPECT_THROW(ResultsDb{path_}, std::runtime_error);

  // Same for the variability column.
  {
    std::ofstream out(path_, std::ios::trunc);
    out << header << "\nT1\tg++ -O2\t1.5\t1e-12x\tok\t\n" << rest;
  }
  EXPECT_THROW(ResultsDb{path_}, std::runtime_error);

  // An entirely empty numeric field is corruption too.
  {
    std::ofstream out(path_, std::ios::trunc);
    out << header << "\nT1\tg++ -O2\t\t0\tok\t\n" << rest;
  }
  EXPECT_THROW(ResultsDb{path_}, std::runtime_error);
}

TEST_F(ResultsDbTest, CorruptedNumericFieldInTrailingRowIsDropped) {
  {
    ResultsDb db(path_);
    db.record(study("T1", 1.0, 0.0L));
  }
  {
    // A crash can also truncate mid-number; as the *last* row this is a
    // crash artifact and gets dropped, like any truncated tail.
    std::ofstream out(path_, std::ios::app);
    out << "T1\tclang++ -O3\t1.5junk\t0\tok\t\n";
  }
  ResultsDb db(path_);  // must not throw
  EXPECT_EQ(db.size(), 2u);
  EXPECT_FALSE(db.find("T1", "clang++ -O3").has_value());
}

TEST_F(ResultsDbTest, LoadsPreStatusV1Databases) {
  {
    std::ofstream out(path_);
    out << "test\tcompilation\tspeedup\tvariability\n"
        << "T1\tg++ -O2\t1.5\t0\n"
        << "T1\ticpc -O3\t2\t1e-12\n";
  }
  ResultsDb db(path_);
  EXPECT_EQ(db.size(), 2u);
  const auto row = db.find("T1", "g++ -O2");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->status, core::OutcomeStatus::Ok);
  EXPECT_TRUE(row->reason.empty());
  EXPECT_TRUE(row->bitwise_equal());
  // A save upgrades the file to the v2 header in place.
  db.record(study("T2", 1.0, 0.0L));
  std::ifstream in(path_);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "test\tcompilation\tspeedup\tvariability\tstatus\treason");
}

TEST_F(ResultsDbTest, SaveLeavesNoTemporaryBehind) {
  ResultsDb db(path_);
  db.record(study("T1", 1.0, 0.0L));
  EXPECT_TRUE(fs::exists(path_));
  EXPECT_FALSE(fs::exists(path_.string() + ".tmp"));
}

}  // namespace
