// The fast-math mixer (Sec. 5 outlook): maximal safe mixes, tolerance
// semantics, and the speed/precision tradeoff on a synthetic app with one
// tolerant and one intolerant translation unit.

#include <gtest/gtest.h>

#include "core/mixer.h"
#include "toolchain/build.h"
#include "toolchain/linker.h"
#include "fpsem/env.h"
#include "toolchain/semantics_rules.h"

namespace {

using namespace flit;

// mixer/cheap.cpp: a short reduction (tiny reassociation error).
// mixer/hot.cpp:   a long cancellation-heavy reduction (large error, and
//                  most of the runtime).
const fpsem::FunctionId kCheap = fpsem::register_fn({
    .name = "mixer::cheap_sum",
    .file = "mixer/cheap.cpp",
});
const fpsem::FunctionId kHot = fpsem::register_fn({
    .name = "mixer::hot_sum",
    .file = "mixer/hot.cpp",
});

class MixTest final : public core::TestBase {
 public:
  std::string name() const override { return "MixTest"; }
  std::size_t getInputsPerRun() const override { return 0; }
  std::vector<double> getDefaultInput() const override { return {}; }
  core::TestResult run_impl(const std::vector<double>&,
                            fpsem::EvalContext& ctx) const override {
    long double acc = 0.0L;
    {
      std::vector<double> v(64);
      for (std::size_t i = 0; i < v.size(); ++i) {
        v[i] = 0.1 * static_cast<double>(i + 1) + 1.0 / (i + 3.0);
      }
      fpsem::FpEnv env = ctx.fn(kCheap);
      acc += env.sum(v);
    }
    {
      // cancellation-heavy: reassociation changes this one at ~1e-2
      std::vector<double> v;
      for (int i = 0; i < 400; ++i) {
        v.push_back(1e14);
        v.push_back(3.14159);
        v.push_back(-1e14);
      }
      fpsem::FpEnv env = ctx.fn(kHot);
      acc += env.sum(v);
    }
    return acc;
  }
};

core::MixerConfig config(long double tol) {
  core::MixerConfig cfg;
  cfg.baseline = toolchain::mfem_baseline();
  cfg.aggressive = {toolchain::gcc(), toolchain::OptLevel::O3,
                    "-funsafe-math-optimizations"};
  cfg.tolerance = tol;
  cfg.scope = {"mixer/cheap.cpp", "mixer/hot.cpp"};
  return cfg;
}

TEST(Mixer, ZeroToleranceKeepsEverythingPrecise) {
  MixTest t;
  const auto rec = core::recommend_fast_math_mix(
      &fpsem::global_code_model(), t, config(0.0L));
  EXPECT_TRUE(rec.fast_files.empty());
  EXPECT_EQ(rec.precise_files.size(), 2u);
  EXPECT_EQ(rec.variability, 0.0L);
}

TEST(Mixer, ModerateToleranceAdmitsOnlyTheCheapFile) {
  MixTest t;
  const auto rec = core::recommend_fast_math_mix(
      &fpsem::global_code_model(), t, config(1e-8L));
  ASSERT_EQ(rec.fast_files.size(), 1u);
  EXPECT_EQ(rec.fast_files[0], "mixer/cheap.cpp");
  ASSERT_EQ(rec.precise_files.size(), 1u);
  EXPECT_EQ(rec.precise_files[0], "mixer/hot.cpp");
  EXPECT_LE(rec.variability, 1e-8L);
  EXPECT_GE(rec.speedup(), 1.0);
}

TEST(Mixer, LooseToleranceAdmitsEverything) {
  MixTest t;
  const auto rec = core::recommend_fast_math_mix(
      &fpsem::global_code_model(), t, config(1.0L));
  EXPECT_EQ(rec.fast_files.size(), 2u);
  EXPECT_TRUE(rec.precise_files.empty());
  // The all-fast shortcut costs just two runs (baseline + all-fast).
  EXPECT_EQ(rec.executions, 2);
}

TEST(Mixer, RecommendationIsSound) {
  // Re-run the recommended mix independently: its metric must actually be
  // within tolerance.
  MixTest t;
  const long double tol = 1e-8L;
  const auto rec = core::recommend_fast_math_mix(
      &fpsem::global_code_model(), t, config(tol));
  auto* model = &fpsem::global_code_model();
  toolchain::BuildSystem build(model);
  toolchain::Linker linker(model);
  core::Runner runner(model);
  const auto base = toolchain::mfem_baseline();
  std::vector<toolchain::ObjectFile> objs;
  for (const auto& f : model->files()) {
    const bool fast = std::find(rec.fast_files.begin(), rec.fast_files.end(),
                                f) != rec.fast_files.end();
    objs.push_back(build.compile(
        f, fast ? config(tol).aggressive : base));
  }
  const auto base_out =
      runner.run(t, linker.link(build.compile_all(base), base.compiler));
  const auto mix_out = runner.run(t, linker.link(objs, base.compiler));
  EXPECT_LE(core::Runner::compare_outputs(t, base_out, mix_out), tol);
}

TEST(Mixer, CyclesAccountingIsConsistent) {
  MixTest t;
  const auto rec = core::recommend_fast_math_mix(
      &fpsem::global_code_model(), t, config(1.0L));
  EXPECT_GT(rec.baseline_cycles, 0.0);
  EXPECT_GT(rec.mixed_cycles, 0.0);
  EXPECT_GT(rec.speedup(), 1.0);  // O3-fast vs O0 baseline is far faster
}

}  // namespace
