// BisectBiggest (Sec. 2.5): top-k search order, early exit, and agreement
// with BisectAll when k = all.

#include <set>

#include <gtest/gtest.h>

#include "core/bisect_biggest.h"

namespace {

using flit::core::MemoizedTest;
using flit::core::bisect_all;
using flit::core::bisect_biggest;

/// Additive test with per-culprit weights.
MemoizedTest<int> weighted(const std::map<int, double>& w) {
  return MemoizedTest<int>([w](const std::vector<int>& items) {
    double v = 0.0;
    for (int e : items) {
      if (auto it = w.find(e); it != w.end()) v += it->second;
    }
    return v;
  });
}

std::vector<int> universe(int n) {
  std::vector<int> u(n);
  for (int i = 0; i < n; ++i) u[i] = i;
  return u;
}

TEST(BisectBiggest, FindsTheSingleBiggest) {
  auto test = weighted({{4, 1.0}, {11, 8.0}, {27, 2.0}});
  const auto out = bisect_biggest(test, universe(32), 1);
  ASSERT_EQ(out.found.size(), 1u);
  EXPECT_EQ(out.found[0].element, 11);
  EXPECT_DOUBLE_EQ(out.found[0].value, 8.0);
}

TEST(BisectBiggest, TopTwoInDecreasingOrder) {
  auto test = weighted({{4, 1.0}, {11, 8.0}, {27, 2.0}});
  const auto out = bisect_biggest(test, universe(32), 2);
  ASSERT_EQ(out.found.size(), 2u);
  EXPECT_EQ(out.found[0].element, 11);
  EXPECT_EQ(out.found[1].element, 27);
  EXPECT_GT(out.found[0].value, out.found[1].value);
}

TEST(BisectBiggest, KAllMatchesBisectAll) {
  const std::map<int, double> w{{3, 4.0}, {9, 1.0}, {20, 16.0}, {31, 0.25}};
  auto test_b = weighted(w);
  const auto biggest = bisect_biggest(test_b, universe(32), 0);
  auto test_a = weighted(w);
  const auto all = bisect_all(test_a, universe(32));

  std::set<int> from_biggest, from_all(all.found.begin(), all.found.end());
  for (const auto& f : biggest.found) from_biggest.insert(f.element);
  EXPECT_EQ(from_biggest, from_all);
  // Decreasing order by contribution.
  for (std::size_t i = 1; i < biggest.found.size(); ++i) {
    EXPECT_GE(biggest.found[i - 1].value, biggest.found[i].value);
  }
}

TEST(BisectBiggest, EarlyExitSavesExecutionsForSmallK) {
  const std::map<int, double> w{{1, 64.0},  {7, 32.0}, {13, 16.0},
                                {22, 8.0},  {40, 4.0}, {51, 2.0},
                                {60, 1.0}};
  auto t1 = weighted(w);
  const auto top1 = bisect_biggest(t1, universe(64), 1);
  auto tall = weighted(w);
  const auto all = bisect_biggest(tall, universe(64), 0);
  ASSERT_EQ(top1.found.size(), 1u);
  EXPECT_EQ(top1.found[0].element, 1);
  EXPECT_LT(top1.executions, all.executions);
}

TEST(BisectBiggest, NoVariabilityFindsNothing) {
  auto test = weighted({});
  const auto out = bisect_biggest(test, universe(16), 3);
  EXPECT_TRUE(out.found.empty());
  EXPECT_LE(out.executions, 1);  // a single whole-set probe suffices
}

TEST(BisectBiggest, KLargerThanCulpritCount) {
  auto test = weighted({{2, 1.0}, {5, 2.0}});
  const auto out = bisect_biggest(test, universe(8), 10);
  ASSERT_EQ(out.found.size(), 2u);
  EXPECT_EQ(out.found[0].element, 5);
  EXPECT_EQ(out.found[1].element, 2);
}

TEST(BisectBiggest, EmptyUniverse) {
  auto test = weighted({{1, 1.0}});
  const auto out = bisect_biggest(test, std::vector<int>{}, 2);
  EXPECT_TRUE(out.found.empty());
  EXPECT_EQ(out.executions, 0);
}

TEST(BisectBiggest, SingletonValuesAreTheTrueSingletonTests) {
  const std::map<int, double> w{{6, 3.5}, {14, 7.25}};
  auto test = weighted(w);
  const auto out = bisect_biggest(test, universe(16), 0);
  for (const auto& f : out.found) {
    EXPECT_DOUBLE_EQ(f.value, w.at(f.element));
  }
}

TEST(BisectBiggest, StringElements) {
  MemoizedTest<std::string> test([](const std::vector<std::string>& items) {
    double v = 0.0;
    for (const auto& s : items) {
      if (s == "big.cpp") v += 10.0;
      if (s == "small.cpp") v += 1.0;
    }
    return v;
  });
  std::vector<std::string> files{"a.cpp", "big.cpp", "c.cpp", "small.cpp"};
  const auto out = bisect_biggest(test, files, 1);
  ASSERT_EQ(out.found.size(), 1u);
  EXPECT_EQ(out.found[0].element, "big.cpp");
}

}  // namespace
