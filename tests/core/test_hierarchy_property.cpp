// End-to-end property test of the hierarchical driver: for random subsets
// of reduction kernels (each in its own file), a reassociating variable
// compilation must be blamed on exactly the files whose kernels the test
// exercises -- no false positives, no false negatives -- as long as the
// hash-fate hazards spare the run.

#include <random>
#include <set>

#include <gtest/gtest.h>

#include "core/hierarchy.h"
#include "linalg/vector.h"
#include "toolchain/semantics_rules.h"

namespace {

using namespace flit;

constexpr int kPoolSize = 8;

std::vector<std::pair<fpsem::FunctionId, std::string>>& prop_pool() {
  static auto pool = [] {
    std::vector<std::pair<fpsem::FunctionId, std::string>> p;
    for (int i = 0; i < kPoolSize; ++i) {
      const std::string file = "hprop/file" + std::to_string(i) + ".cpp";
      p.emplace_back(fpsem::register_fn({
                         .name = "hprop::sum" + std::to_string(i),
                         .file = file,
                     }),
                     file);
    }
    return p;
  }();
  return pool;
}

/// Exercises exactly the pool kernels whose indices are in `active`.
class SubsetTest final : public core::TestBase {
 public:
  explicit SubsetTest(std::set<int> active) : active_(std::move(active)) {}
  std::string name() const override { return "SubsetTest"; }
  std::size_t getInputsPerRun() const override { return 0; }
  std::vector<double> getDefaultInput() const override { return {}; }
  core::TestResult run_impl(const std::vector<double>&,
                            fpsem::EvalContext& ctx) const override {
    // One entry per exercised kernel (a mesh-like structured result, so
    // per-kernel deltas cannot cancel in a scalar total).
    linalg::Vector out(active_.size());
    std::size_t n = 0;
    for (int i : active_) {
      std::vector<double> v(21 + static_cast<std::size_t>(i));
      for (std::size_t j = 0; j < v.size(); ++j) {
        v[j] = 0.17 * static_cast<double>(j + 1) + 1.0 / (j + 2.0 + i);
      }
      fpsem::FpEnv env = ctx.fn(prop_pool()[static_cast<std::size_t>(i)].first);
      out[n++] = env.sum(v);
    }
    return linalg::serialize(out);
  }
  using core::TestBase::compare;
  long double compare(const std::string& a,
                      const std::string& b) const override {
    return linalg::l2_string_metric(a, b);
  }

 private:
  std::set<int> active_;
};

class HierarchyPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(HierarchyPropertyTest, BlamesExactlyTheExercisedFiles) {
  std::mt19937 rng(GetParam());
  std::set<int> active;
  const int n_active = 1 + static_cast<int>(rng() % 4u);
  while (static_cast<int>(active.size()) < n_active) {
    active.insert(static_cast<int>(rng() % kPoolSize));
  }

  const toolchain::Compilation variable{
      toolchain::gcc(), toolchain::OptLevel::O2,
      "-funsafe-math-optimizations"};

  SubsetTest t(active);
  core::BisectConfig cfg;
  cfg.baseline = toolchain::mfem_baseline();
  cfg.variable = variable;
  for (const auto& [fn, file] : prop_pool()) cfg.scope.push_back(file);
  core::BisectDriver driver(&fpsem::global_code_model(), &t, cfg);
  const auto out = driver.run();
  ASSERT_FALSE(out.crashed) << out.crash_reason;

  // Ground truth: among the exercised kernels, exactly those whose sum
  // actually changes under the variable semantics (a particular input can
  // coincidentally round identically under lane reassociation).
  std::set<std::string> expected;
  for (int i : active) {
    const auto run_one = [&](fpsem::FpSemantics sem) {
      auto ctx = fpsem::uniform_context(fpsem::FnBinding{sem, {}});
      SubsetTest single(std::set<int>{i});
      return std::get<std::string>(single.run_impl({}, ctx));
    };
    if (run_one({}) != run_one(toolchain::derive_semantics(variable))) {
      expected.insert(prop_pool()[static_cast<std::size_t>(i)].second);
    }
  }
  std::set<std::string> found;
  for (const auto& ff : out.findings) found.insert(ff.file);
  EXPECT_EQ(found, expected);
  EXPECT_TRUE(out.assumptions_verified) << out.diagnostic;

  // Symbol level: wherever the search went deeper, the blamed symbol is
  // the file's (only) kernel.
  for (const auto& ff : out.findings) {
    if (ff.status != core::FileFinding::SymbolStatus::Found) continue;
    ASSERT_EQ(ff.symbols.size(), 1u) << ff.file;
    EXPECT_EQ(ff.symbols[0].symbol.rfind("hprop::sum", 0), 0u) << ff.file;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchyPropertyTest,
                         ::testing::Range(100u, 116u));

}  // namespace
