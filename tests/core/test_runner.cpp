// Runner, TestBase, registry, digit truncation, explorer and workflow over
// a tiny self-contained synthetic application (registered only in this
// test binary).

#include <gtest/gtest.h>

#include "core/explorer.h"
#include "core/hierarchy.h"
#include "core/registry.h"
#include "core/runner.h"
#include "core/workflow.h"
#include "toolchain/semantics_rules.h"

namespace {

using namespace flit;
using core::RunOutput;
using core::Runner;
using core::TestResult;

// ---- a 2-file synthetic application ------------------------------------

const fpsem::FunctionId kSummer = fpsem::register_fn({
    .name = "tiny::summer",
    .file = "tiny/summer.cpp",
});
const fpsem::FunctionId kScaler = fpsem::register_fn({
    .name = "tiny::scaler",
    .file = "tiny/scaler.cpp",
});

double tiny_app(fpsem::EvalContext& ctx, const std::vector<double>& input) {
  std::vector<double> v = input;
  {
    fpsem::FpEnv env = ctx.fn(kScaler);
    env.scal(1.0 / 3.0, v);
  }
  fpsem::FpEnv env = ctx.fn(kSummer);
  return env.sum(v);
}

class TinyTest final : public core::TestBase {
 public:
  [[nodiscard]] std::string name() const override { return "TinyTest"; }
  [[nodiscard]] std::size_t getInputsPerRun() const override { return 6; }
  [[nodiscard]] std::vector<double> getDefaultInput() const override {
    std::vector<double> v(12);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = 0.1 * static_cast<double>(i + 1) + 1.0 / (i + 2.0);
    }
    return v;
  }
  [[nodiscard]] TestResult run_impl(const std::vector<double>& input,
                                    fpsem::EvalContext& ctx) const override {
    return static_cast<long double>(tiny_app(ctx, input));
  }
};

FLIT_REGISTER_TEST(TinyTest);

toolchain::Compilation base() { return {toolchain::gcc(), toolchain::OptLevel::O0, ""}; }
toolchain::Compilation unsafe() {
  return {toolchain::gcc(), toolchain::OptLevel::O2,
          "-funsafe-math-optimizations"};
}

toolchain::Executable build_exe(const toolchain::Compilation& c) {
  auto& model = fpsem::global_code_model();
  toolchain::BuildSystem build(&model);
  toolchain::Linker linker(&model);
  return linker.link(build.compile_all(c), c.compiler);
}

// ---- registry ------------------------------------------------------------

TEST(Registry, MacroRegistrationWorks) {
  auto& reg = core::global_test_registry();
  ASSERT_TRUE(reg.contains("TinyTest"));
  auto t = reg.create("TinyTest");
  EXPECT_EQ(t->name(), "TinyTest");
  EXPECT_THROW((void)reg.create("NoSuchTest"), std::out_of_range);
}

TEST(Registry, DuplicateRegistrationRejected) {
  auto& reg = core::global_test_registry();
  EXPECT_THROW(
      reg.add("TinyTest", [] { return std::make_unique<TinyTest>(); }),
      std::invalid_argument);
}

// ---- runner ----------------------------------------------------------------

TEST(Runner, DataDrivenSplitting) {
  TinyTest t;
  Runner runner(&fpsem::global_code_model());
  const RunOutput out = runner.run(t, build_exe(base()));
  EXPECT_EQ(out.results.size(), 2u);  // 12 inputs / 6 per run
  EXPECT_GT(out.cycles, 0.0);
}

TEST(Runner, DeterministicAcrossRuns) {
  TinyTest t;
  Runner runner(&fpsem::global_code_model());
  const RunOutput a = runner.run(t, build_exe(unsafe()));
  const RunOutput b = runner.run(t, build_exe(unsafe()));
  EXPECT_EQ(Runner::compare_outputs(t, a, b), 0.0L);
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(Runner, UnsafeCompilationChangesTheResult) {
  TinyTest t;
  Runner runner(&fpsem::global_code_model());
  const RunOutput a = runner.run(t, build_exe(base()));
  const RunOutput b = runner.run(t, build_exe(unsafe()));
  EXPECT_GT(Runner::compare_outputs(t, a, b), 0.0L);
}

TEST(Runner, CrashingBinaryThrows) {
  TinyTest t;
  Runner runner(&fpsem::global_code_model());
  toolchain::Executable exe = build_exe(base());
  exe.crashes = true;
  exe.crash_reason = "SIGSEGV";
  EXPECT_THROW((void)runner.run(t, exe), core::ExecutionCrash);
}

TEST(Runner, MismatchedChunkCountsAreMaximalDifference) {
  TinyTest t;
  RunOutput a, b;
  a.results.push_back(1.0L);
  b.results.push_back(1.0L);
  b.results.push_back(2.0L);
  EXPECT_EQ(Runner::compare_outputs(t, a, b), HUGE_VALL);
}

TEST(TestBase, MixedVariantTypesAreMaximalDifference) {
  TinyTest t;
  EXPECT_EQ(t.compare_results(TestResult{1.0L}, TestResult{std::string{"x"}}),
            HUGE_VALL);
}

// ---- digit truncation --------------------------------------------------------

TEST(TruncateDigits, RoundsToSignificantDigits) {
  using core::truncate_digits;
  EXPECT_EQ(truncate_digits(123456.789L, 3), 123000.0L);
  EXPECT_EQ(truncate_digits(0.0012345L, 2), 0.0012L);
  EXPECT_EQ(truncate_digits(-98765.0L, 2), -99000.0L);
}

TEST(TruncateDigits, NonPositiveDigitsAndZeroAreNoOps) {
  using core::truncate_digits;
  EXPECT_EQ(truncate_digits(1.2345L, 0), 1.2345L);
  EXPECT_EQ(truncate_digits(1.2345L, -3), 1.2345L);
  EXPECT_EQ(truncate_digits(0.0L, 4), 0.0L);
}

TEST(TruncateDigits, EqualUpToDigitsCompareEqual) {
  using core::truncate_digits;
  const long double a = 129664.9L;
  const long double b = 129664.2L;
  EXPECT_EQ(truncate_digits(a, 3), truncate_digits(b, 3));
  EXPECT_NE(truncate_digits(a, 7), truncate_digits(b, 7));
}

// ---- explorer -------------------------------------------------------------------

TEST(Explorer, ClassifiesEqualAndVariableCompilations) {
  TinyTest t;
  core::SpaceExplorer explorer(&fpsem::global_code_model(), base(),
                               toolchain::mfem_speed_reference());
  const std::vector<toolchain::Compilation> space{
      base(),
      {toolchain::gcc(), toolchain::OptLevel::O2, ""},
      unsafe(),
  };
  const auto result = explorer.explore(t, space);
  ASSERT_EQ(result.outcomes.size(), 3u);
  EXPECT_TRUE(result.outcomes[0].bitwise_equal());   // baseline vs itself
  EXPECT_TRUE(result.outcomes[1].bitwise_equal());   // plain -O2 is strict
  EXPECT_FALSE(result.outcomes[2].bitwise_equal());  // unsafe math differs
  EXPECT_GT(result.outcomes[2].speedup, result.outcomes[0].speedup);
  EXPECT_EQ(result.variable_count(), 1u);
}

TEST(Explorer, FastestSelectorsRespectCategories) {
  TinyTest t;
  core::SpaceExplorer explorer(&fpsem::global_code_model(), base(),
                               toolchain::mfem_speed_reference());
  const std::vector<toolchain::Compilation> space{
      base(),
      {toolchain::gcc(), toolchain::OptLevel::O3, ""},
      unsafe(),
  };
  const auto result = explorer.explore(t, space);
  const auto* fe = result.fastest_equal();
  const auto* fv = result.fastest_variable();
  ASSERT_NE(fe, nullptr);
  ASSERT_NE(fv, nullptr);
  EXPECT_TRUE(fe->bitwise_equal());
  EXPECT_FALSE(fv->bitwise_equal());
  EXPECT_EQ(fe->comp.opt, toolchain::OptLevel::O3);
}

// ---- hierarchical bisect over the synthetic app ------------------------------

TEST(Hierarchy, RootCausesTheSummerFile) {
  TinyTest t;
  core::BisectConfig cfg;
  cfg.baseline = base();
  cfg.variable = {toolchain::clang(), toolchain::OptLevel::O3,
                  "-ffast-math"};  // reassociates the sum
  core::BisectDriver driver(&fpsem::global_code_model(), &t, cfg);
  const auto out = driver.run();
  ASSERT_FALSE(out.crashed) << out.crash_reason;
  ASSERT_EQ(out.findings.size(), 1u);
  EXPECT_EQ(out.findings[0].file, "tiny/summer.cpp");
  EXPECT_GT(out.whole_value, 0.0);
  if (out.findings[0].status ==
      core::FileFinding::SymbolStatus::Found) {
    ASSERT_EQ(out.findings[0].symbols.size(), 1u);
    EXPECT_EQ(out.findings[0].symbols[0].symbol, "tiny::summer");
  }
  EXPECT_GT(out.executions, 0);
  EXPECT_LT(out.executions, 20);
}

TEST(Hierarchy, NoVariabilityMeansNothingFound) {
  TinyTest t;
  core::BisectConfig cfg;
  cfg.baseline = base();
  cfg.variable = {toolchain::gcc(), toolchain::OptLevel::O2, "-mavx"};
  core::BisectDriver driver(&fpsem::global_code_model(), &t, cfg);
  const auto out = driver.run();
  EXPECT_TRUE(out.nothing_found());
  EXPECT_EQ(out.whole_value, 0.0);
}

// ---- workflow -----------------------------------------------------------------

TEST(Workflow, EndToEndOverASmallSpace) {
  TinyTest t;
  core::WorkflowOptions opts;
  opts.baseline = base();
  opts.speed_reference = toolchain::mfem_speed_reference();
  const std::vector<toolchain::Compilation> space{
      base(),
      {toolchain::gcc(), toolchain::OptLevel::O3, ""},
      unsafe(),
      {toolchain::clang(), toolchain::OptLevel::O3, "-ffast-math"},
  };
  const auto report =
      core::run_workflow(&fpsem::global_code_model(), t, space, opts);
  ASSERT_NE(report.fastest_reproducible, nullptr);
  EXPECT_TRUE(report.fastest_reproducible->bitwise_equal());
  EXPECT_EQ(report.bisects.size(), 2u);  // the two variable compilations
  for (const auto& vb : report.bisects) {
    EXPECT_FALSE(vb.outcome.bitwise_equal());
    ASSERT_FALSE(vb.bisect.findings.empty());
    EXPECT_EQ(vb.bisect.findings[0].file, "tiny/summer.cpp");
  }
}

}  // namespace
