// Hierarchy driver edge paths, exercised through a purpose-built
// synthetic application: the -fPIC vanish case of Sec. 2.3, symbol-level
// interposition crashes, link-step-only variability, digit truncation at
// the symbol level, and the BisectBiggest early exit.

#include <gtest/gtest.h>

#include "core/explorer.h"
#include "core/hierarchy.h"
#include "core/runner.h"
#include "toolchain/semantics_rules.h"

namespace {

using namespace flit;

// Synthetic app: three files.
//  * paths/inline.cpp : an inline-candidate reducer (fPIC-vanish target)
//  * paths/plain.cpp  : a plain reducer
//  * paths/libm.cpp   : a transcendental user (link-step target)
const fpsem::FunctionId kInline = fpsem::register_fn({
    .name = "paths::inline_sum",
    .file = "paths/inline.cpp",
    .inline_candidate = true,
});
// A pool of inline-candidate reducers in separate files, so the hash-fate
// scans below can find every wanted combination of -fPIC-vanish and
// symbol-interposition-crash outcomes.
std::vector<std::pair<fpsem::FunctionId, std::string>> inline_pool() {
  static const auto pool = [] {
    std::vector<std::pair<fpsem::FunctionId, std::string>> p;
    for (int i = 0; i < 10; ++i) {
      const std::string file =
          "paths/pool" + std::to_string(i) + ".cpp";
      p.emplace_back(fpsem::register_fn({
                         .name = "paths::pool_sum" + std::to_string(i),
                         .file = file,
                         .inline_candidate = true,
                     }),
                     file);
    }
    return p;
  }();
  return pool;
}
const fpsem::FunctionId kPlain = fpsem::register_fn({
    .name = "paths::plain_sum",
    .file = "paths/plain.cpp",
});
const fpsem::FunctionId kLibm = fpsem::register_fn({
    .name = "paths::libm_eval",
    .file = "paths/libm.cpp",
    .uses_libm = true,
});

std::vector<double> ramp() {
  std::vector<double> v(33);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = 0.1 * static_cast<double>(i + 1) + 1.0 / (i + 3.0);
  }
  return v;
}

/// Test value: inline_sum(v) + plain_sum(v) + libm_eval(x).
class PathsTest final : public core::TestBase {
 public:
  explicit PathsTest(bool use_inline = true, bool use_plain = true,
                     bool use_libm = true)
      : use_inline_(use_inline), use_plain_(use_plain), use_libm_(use_libm) {}

  std::string name() const override { return "PathsTest"; }
  std::size_t getInputsPerRun() const override { return 0; }
  std::vector<double> getDefaultInput() const override { return {}; }
  core::TestResult run_impl(const std::vector<double>&,
                            fpsem::EvalContext& ctx) const override {
    const auto v = ramp();
    long double acc = 0.0L;
    if (use_inline_) {
      fpsem::FpEnv env = ctx.fn(kInline);
      acc += env.sum(v);
    }
    if (use_plain_) {
      fpsem::FpEnv env = ctx.fn(kPlain);
      acc += env.sum(v);
    }
    if (use_libm_) {
      fpsem::FpEnv env = ctx.fn(kLibm);
      acc += env.exp(1.2345);
    }
    return acc;
  }

 private:
  bool use_inline_, use_plain_, use_libm_;
};

std::vector<std::string> scope() {
  return {"paths/inline.cpp", "paths/plain.cpp", "paths/libm.cpp"};
}

core::HierarchicalOutcome drive(const core::TestBase& t,
                                const toolchain::Compilation& variable,
                                int k = 0, int digits = 0) {
  core::BisectConfig cfg;
  cfg.baseline = toolchain::mfem_baseline();
  cfg.variable = variable;
  cfg.scope = scope();
  cfg.k = k;
  cfg.digits = digits;
  core::BisectDriver driver(&fpsem::global_code_model(), &t, cfg);
  return driver.run();
}

struct FateMatch {
  toolchain::Compilation comp;
  fpsem::FunctionId fn = fpsem::kInvalidFunction;
  std::string file;
};

/// Scans reassociating gcc compilations x the inline pool for a pair with
/// the wanted hazard fates.
FateMatch find_fate(bool want_inline_vanish,
                    bool want_symbol_crash_inline_file) {
  auto& model = fpsem::global_code_model();
  const auto base = toolchain::mfem_baseline();
  for (const char* flag : {"-funsafe-math-optimizations"}) {
    for (auto opt : {toolchain::OptLevel::O1, toolchain::OptLevel::O2,
                     toolchain::OptLevel::O3}) {
      const toolchain::Compilation c{toolchain::gcc(), opt, flag};
      if (toolchain::derive_semantics(c).reassoc_width <= 1) continue;
      for (const auto& [fn, file] : inline_pool()) {
        const bool vanish =
            toolchain::derive_binding(c, model.info(fn), /*fpic=*/true)
                .sem.strict();
        const bool crash = toolchain::symbol_mix_toxic(file, base, c);
        if (vanish == want_inline_vanish &&
            crash == want_symbol_crash_inline_file) {
          return FateMatch{c, fn, file};
        }
      }
    }
  }
  return {};  // not found; tests skip
}

/// Runs one pool reducer (the hash-fate-selected culprit).
class PoolTest final : public core::TestBase {
 public:
  explicit PoolTest(fpsem::FunctionId fn) : fn_(fn) {}
  std::string name() const override { return "PoolTest"; }
  std::size_t getInputsPerRun() const override { return 0; }
  std::vector<double> getDefaultInput() const override { return {}; }
  core::TestResult run_impl(const std::vector<double>&,
                            fpsem::EvalContext& ctx) const override {
    fpsem::FpEnv env = ctx.fn(fn_);
    return static_cast<long double>(env.sum(ramp()));
  }

 private:
  fpsem::FunctionId fn_;
};

core::HierarchicalOutcome drive_pool(const FateMatch& m) {
  PoolTest t(m.fn);
  core::BisectConfig cfg;
  cfg.baseline = toolchain::mfem_baseline();
  cfg.variable = m.comp;
  cfg.scope = {m.file, "paths/plain.cpp"};
  core::BisectDriver driver(&fpsem::global_code_model(), &t, cfg);
  return driver.run();
}

TEST(HierarchyPaths, FpicVanishReportsFileLevelOnly) {
  const auto m = find_fate(/*vanish=*/true, /*crash=*/false);
  if (m.fn == fpsem::kInvalidFunction) GTEST_SKIP() << "no hash fate";
  const auto out = drive_pool(m);
  ASSERT_FALSE(out.crashed) << out.crash_reason;
  ASSERT_EQ(out.findings.size(), 1u);
  EXPECT_EQ(out.findings[0].file, m.file);
  EXPECT_EQ(out.findings[0].status,
            core::FileFinding::SymbolStatus::VanishedUnderFpic);
  EXPECT_TRUE(out.findings[0].symbols.empty());
}

TEST(HierarchyPaths, SymbolInterpositionCrashIsRecordedPerFile) {
  const auto m = find_fate(/*vanish=*/false, /*crash=*/true);
  if (m.fn == fpsem::kInvalidFunction) GTEST_SKIP() << "no hash fate";
  const auto out = drive_pool(m);
  ASSERT_FALSE(out.crashed);  // File Bisect itself survived
  ASSERT_EQ(out.findings.size(), 1u);
  EXPECT_EQ(out.findings[0].status,
            core::FileFinding::SymbolStatus::Crashed);
}

TEST(HierarchyPaths, SymbolLevelSuccessOnPlainFile) {
  PathsTest t(/*use_inline=*/false, /*use_plain=*/true, /*use_libm=*/false);
  // Pick a reassociating compilation whose interposition hash fate is
  // clean for this file.
  toolchain::Compilation comp;
  for (auto opt : {toolchain::OptLevel::O1, toolchain::OptLevel::O2,
                   toolchain::OptLevel::O3}) {
    const toolchain::Compilation c{toolchain::gcc(), opt,
                                   "-funsafe-math-optimizations"};
    if (!toolchain::symbol_mix_toxic("paths/plain.cpp",
                                     toolchain::mfem_baseline(), c)) {
      comp = c;
      break;
    }
  }
  if (comp.compiler.name.empty()) GTEST_SKIP() << "no clean hash fate";
  const auto out = drive(t, comp);
  ASSERT_FALSE(out.crashed);
  ASSERT_EQ(out.findings.size(), 1u);
  EXPECT_EQ(out.findings[0].status, core::FileFinding::SymbolStatus::Found);
  ASSERT_EQ(out.findings[0].symbols.size(), 1u);
  EXPECT_EQ(out.findings[0].symbols[0].symbol, "paths::plain_sum");
}

TEST(HierarchyPaths, LinkStepOnlyVariabilityFindsNothing) {
  // icpc -O0 compiles strictly, but the Intel link step substitutes the
  // fast libm; whole-program runs are variable, yet File Bisect (which
  // links with the baseline toolchain) attributes nothing.
  PathsTest t(/*inline=*/false, /*plain=*/false, /*libm=*/true);
  const toolchain::Compilation icpc_o0{toolchain::icpc(),
                                       toolchain::OptLevel::O0, ""};
  // Whole-program comparison (explorer-style) shows variability...
  core::SpaceExplorer explorer(&fpsem::global_code_model(),
                               toolchain::mfem_baseline(),
                               toolchain::mfem_speed_reference());
  const std::vector<toolchain::Compilation> space{icpc_o0};
  const auto study = explorer.explore(t, space);
  EXPECT_FALSE(study.outcomes[0].bitwise_equal());
  // ...but the bisect run finds no file to blame.
  const auto out = drive(t, icpc_o0);
  EXPECT_TRUE(out.nothing_found());
  EXPECT_EQ(out.whole_value, 0.0);
}

TEST(HierarchyPaths, DigitTruncationSilencesSmallVariability) {
  PathsTest t(/*inline=*/false, /*plain=*/true, /*libm=*/false);
  const toolchain::Compilation comp{toolchain::gcc(), toolchain::OptLevel::O2,
                                    "-funsafe-math-optimizations"};
  // Reassociation-level variability (~1e-15 relative) disappears when the
  // comparison only keeps 3 significant digits.
  const auto out = drive(t, comp, /*k=*/0, /*digits=*/3);
  EXPECT_TRUE(out.nothing_found());
}

TEST(HierarchyPaths, BiggestKOneStopsAfterTheDominantFile) {
  PathsTest t(/*use_inline=*/true, /*use_plain=*/true, /*use_libm=*/false);
  const toolchain::Compilation comp{toolchain::gcc(),
                                    toolchain::OptLevel::O2,
                                    "-funsafe-math-optimizations"};
  const auto all = drive(t, comp, /*k=*/0);
  const auto one = drive(t, comp, /*k=*/1);
  ASSERT_FALSE(one.crashed);
  EXPECT_LE(one.findings.size(), all.findings.size());
  EXPECT_LE(one.executions, all.executions);
}

}  // namespace
