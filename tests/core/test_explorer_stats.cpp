// StudyResult statistics (median parity for even/odd sample sizes) and the
// SpaceExplorer anchor-run dedupe: baseline and speed-reference runs are
// executed once each -- or once total when they coincide -- and reused for
// space entries equal to them.

#include <gtest/gtest.h>

#include <atomic>

#include "core/explorer.h"
#include "fpsem/env.h"
#include "toolchain/compiler.h"

namespace {

using namespace flit;

core::StudyResult with_variabilities(std::initializer_list<long double> vs) {
  core::StudyResult r;
  for (long double v : vs) {
    core::CompilationOutcome o;
    o.variability = v;
    r.outcomes.push_back(o);
  }
  return r;
}

TEST(VariabilityStats, OddSampleTakesTheMiddleElement) {
  const auto r = with_variabilities({3.0L, 1.0L, 2.0L});
  const auto s = r.variability_stats();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->min, 1.0L);
  EXPECT_EQ(s->median, 2.0L);
  EXPECT_EQ(s->max, 3.0L);
}

TEST(VariabilityStats, EvenSampleAveragesTheMiddleTwo) {
  const auto r = with_variabilities({4.0L, 1.0L, 3.0L, 2.0L});
  const auto s = r.variability_stats();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->min, 1.0L);
  EXPECT_EQ(s->median, 2.5L);  // (2 + 3) / 2, not the upper-middle 3
  EXPECT_EQ(s->max, 4.0L);
}

TEST(VariabilityStats, SingleAndPairSamples) {
  EXPECT_EQ(with_variabilities({7.0L}).variability_stats()->median, 7.0L);
  EXPECT_EQ(with_variabilities({1.0L, 2.0L}).variability_stats()->median,
            1.5L);
  // Bitwise-equal outcomes are excluded; all-equal -> no stats.
  EXPECT_FALSE(with_variabilities({}).variability_stats().has_value());
}

// ---- anchor-run dedupe ----------------------------------------------------

const fpsem::FunctionId kStat = fpsem::register_fn({
    .name = "explorerstats::kernel",
    .file = "explorerstats/kernel.cpp",
});

/// Counts real executions so the dedupe is observable.
class CountingTest final : public core::TestBase {
 public:
  std::string name() const override { return "CountingTest"; }
  std::size_t getInputsPerRun() const override { return 0; }
  std::vector<double> getDefaultInput() const override { return {}; }
  core::TestResult run_impl(const std::vector<double>&,
                            fpsem::EvalContext& ctx) const override {
    ++runs;
    std::vector<double> v(32);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = 1.0 / (static_cast<double>(i) + 3.0);
    }
    fpsem::FpEnv env = ctx.fn(kStat);
    return static_cast<long double>(env.sum(v));
  }

  mutable std::atomic<int> runs{0};
};

TEST(ExploreDedupe, AnchorCompilationsInsideTheSpaceAreNotRerun) {
  const toolchain::Compilation base = toolchain::mfem_baseline();
  const toolchain::Compilation ref = toolchain::mfem_speed_reference();
  const std::vector<toolchain::Compilation> space = {
      base,  // == baseline: reused
      ref,   // == speed reference: reused
      {toolchain::gcc(), toolchain::OptLevel::O3, ""},
      {toolchain::clang(), toolchain::OptLevel::O2, ""},
  };
  CountingTest t;
  core::SpaceExplorer explorer(&fpsem::global_code_model(), base, ref);
  const auto r = explorer.explore(t, space);
  ASSERT_EQ(r.outcomes.size(), 4u);
  // baseline + reference + the two non-anchor compilations.
  EXPECT_EQ(t.runs.load(), 4);
}

TEST(ExploreDedupe, IdenticalBaselineAndReferenceRunOnce) {
  const toolchain::Compilation base = toolchain::mfem_baseline();
  const std::vector<toolchain::Compilation> space = {
      base,
      {toolchain::gcc(), toolchain::OptLevel::O2, ""},
  };
  CountingTest t;
  core::SpaceExplorer explorer(&fpsem::global_code_model(), base, base);
  const auto r = explorer.explore(t, space);
  ASSERT_EQ(r.outcomes.size(), 2u);
  // One shared anchor run + one space compilation.
  EXPECT_EQ(t.runs.load(), 2);
  // The baseline entry is bitwise-equal with speedup 1 by construction.
  EXPECT_TRUE(r.outcomes[0].bitwise_equal());
  EXPECT_DOUBLE_EQ(r.outcomes[0].speedup, 1.0);
}

TEST(ExploreDedupe, DedupeIsInvisibleInTheOutcomes) {
  const toolchain::Compilation base = toolchain::mfem_baseline();
  const toolchain::Compilation ref = toolchain::mfem_speed_reference();
  const std::vector<toolchain::Compilation> space = {base, ref};
  CountingTest t;
  core::SpaceExplorer explorer(&fpsem::global_code_model(), base, ref);
  const auto r = explorer.explore(t, space);
  // Reused runs must classify exactly as fresh ones would: the baseline
  // compares equal to itself, the reference's speedup is exactly 1.
  EXPECT_TRUE(r.outcomes[0].bitwise_equal());
  EXPECT_TRUE(r.outcomes[1].bitwise_equal());
  EXPECT_DOUBLE_EQ(r.outcomes[1].speedup, 1.0);
}

}  // namespace
