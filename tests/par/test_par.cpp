// The deterministic message-passing substrate and the Sec. 3.6 MPI study:
// run-to-run determinism, rank-count sensitivity, and Bisect stability
// under parallelism.

#include <gtest/gtest.h>

#include "core/hierarchy.h"
#include "mfemini/examples.h"
#include "par/study.h"
#include "toolchain/semantics_rules.h"

namespace {

using namespace flit;
using par::DeterministicComm;

fpsem::EvalContext strict() { return fpsem::strict_context(); }

TEST(Comm, RejectsNonPositiveRankCounts) {
  EXPECT_THROW(DeterministicComm(0), std::invalid_argument);
  EXPECT_THROW(DeterministicComm(-2), std::invalid_argument);
}

TEST(Comm, RangePartitionCoversWithoutOverlap) {
  const DeterministicComm comm(5);
  std::size_t covered = 0;
  std::size_t prev_end = 0;
  for (int r = 0; r < comm.size(); ++r) {
    const auto rg = comm.range(r, 23);
    EXPECT_EQ(rg.begin, prev_end);
    prev_end = rg.end;
    covered += rg.size();
  }
  EXPECT_EQ(covered, 23u);
  EXPECT_EQ(prev_end, 23u);
}

TEST(Comm, RangeSpreadsTheRemainderOverTheFirstRanks) {
  // 23 = 5*4 + 3: ranks 0-2 take the extra element, ranks 3-4 do not.
  const DeterministicComm comm(5);
  EXPECT_EQ(comm.range(0, 23).size(), 5u);
  EXPECT_EQ(comm.range(1, 23).size(), 5u);
  EXPECT_EQ(comm.range(2, 23).size(), 5u);
  EXPECT_EQ(comm.range(3, 23).size(), 4u);
  EXPECT_EQ(comm.range(4, 23).size(), 4u);
}

TEST(Comm, RangeWithFewerItemsThanRanksLeavesTrailingRanksEmpty) {
  const DeterministicComm comm(8);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(comm.range(r, 3).size(), 1u) << r;
  }
  for (int r = 3; r < 8; ++r) {
    const auto rg = comm.range(r, 3);
    EXPECT_EQ(rg.size(), 0u) << r;
    EXPECT_EQ(rg.begin, rg.end) << r;
    EXPECT_LE(rg.end, 3u) << r;  // empty ranges stay inside the space
  }
}

TEST(Comm, RangeOfZeroItemsIsEmptyOnEveryRank) {
  const DeterministicComm comm(4);
  for (int r = 0; r < comm.size(); ++r) {
    const auto rg = comm.range(r, 0);
    EXPECT_EQ(rg.begin, 0u) << r;
    EXPECT_EQ(rg.end, 0u) << r;
    EXPECT_EQ(rg.size(), 0u) << r;
  }
}

TEST(Comm, AllreduceSumMatchesSequentialForOneRank) {
  auto ctx = strict();
  const DeterministicComm comm(1);
  std::vector<double> partials{1.25};
  EXPECT_EQ(comm.allreduce_sum(ctx, partials), 1.25);
}

TEST(Comm, TreeReductionIsDeterministicButOrderSensitive) {
  auto ctx = strict();
  const DeterministicComm comm(7);
  std::vector<double> partials{0.1, 0.2, 0.3, 1e16, -1e16, 0.4, 0.7};
  const double a = comm.allreduce_sum(ctx, partials);
  const double b = comm.allreduce_sum(ctx, partials);
  EXPECT_EQ(a, b);
  double seq = 0.0;
  for (double p : partials) seq += p;
  EXPECT_NE(a, seq);  // the tree groups the cancelling pair differently
}

TEST(Comm, AllreduceMin) {
  auto ctx = strict();
  const DeterministicComm comm(3);
  std::vector<double> partials{3.0, -1.0, 2.0};
  EXPECT_EQ(comm.allreduce_min(ctx, partials), -1.0);
}

TEST(Comm, DistributedDotEqualsSequentialDotForOneRank) {
  auto ctx = strict();
  const DeterministicComm comm(1);
  std::vector<double> a{1.0, 2.0, 3.0}, b{0.5, 0.25, 2.0};
  double seq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) seq += a[i] * b[i];
  EXPECT_EQ(par::distributed_dot(ctx, comm, a, b), seq);
}

TEST(ParStudy, HundredRunsAreBitwiseIdentical) {
  // The paper's first MPI step: 100 executions checked for bitwise
  // equality to establish determinism.  (Scaled-down here but the same
  // check; the full sweep lives in bench_mpi_study.)
  par::ParallelPoissonTest t(4, 4);
  auto first = [&] {
    auto ctx = strict();
    return std::get<std::string>(t.run_impl({}, ctx));
  }();
  for (int i = 0; i < 20; ++i) {
    auto ctx = strict();
    EXPECT_EQ(std::get<std::string>(t.run_impl({}, ctx)), first);
  }
}

TEST(ParStudy, RankCountChangesTheResult) {
  // Sec. 3.6: increasing parallelism changed the MFEM results (domain
  // decomposition changes grid density).
  auto c1 = strict();
  auto c24 = strict();
  const auto v1 = par::parallel_poisson(c1, DeterministicComm(1), 8);
  const auto v24 = par::parallel_poisson(c24, DeterministicComm(24), 8);
  EXPECT_NE(v1.size(), v24.size());
}

TEST(ParStudy, SameRankCountSameDecompositionIsReproducible) {
  auto c1 = strict();
  auto c2 = strict();
  const auto a = par::parallel_poisson(c1, DeterministicComm(24), 4);
  const auto b = par::parallel_poisson(c2, DeterministicComm(24), 4);
  EXPECT_EQ(a, b);
}

TEST(ParStudy, BisectFindsTheSameFilesUnderMpi) {
  // The Sec. 3.6 conclusion: Bisect isolates the same culprits regardless
  // of the parallelism.  Compare sequential (1 rank) and 24-rank searches
  // for a reassociating compilation.
  const auto found_files = [&](int nranks, std::size_t elems_per_rank) {
    par::ParallelPoissonTest t(nranks, elems_per_rank);
    core::BisectConfig cfg;
    cfg.baseline = toolchain::mfem_baseline();
    cfg.variable = {toolchain::gcc(), toolchain::OptLevel::O2,
                    "-funsafe-math-optimizations"};
    core::BisectDriver driver(&fpsem::global_code_model(), &t, cfg);
    const auto out = driver.run();
    EXPECT_FALSE(out.crashed) << out.crash_reason;
    std::vector<std::string> files;
    for (const auto& ff : out.findings) files.push_back(ff.file);
    std::sort(files.begin(), files.end());
    return files;
  };
  // Comparable global problem sizes: 32 elements sequentially, 24x4 = 96
  // under MPI.
  const auto seq = found_files(1, 32);
  const auto mpi = found_files(24, 4);
  EXPECT_FALSE(seq.empty());
  EXPECT_EQ(seq, mpi);
}

}  // namespace
