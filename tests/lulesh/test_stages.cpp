// Stage-level properties of the mini-LULESH kernels: viscosity limiter
// bounds, EOS predictor-corrector behaviour, cutoff semantics, and the
// time-constraint interplay.

#include <cmath>

#include <gtest/gtest.h>

#include "lulesh/domain.h"

namespace {

using namespace flit;
using lulesh::Domain;
using lulesh::LuleshOptions;

fpsem::EvalContext strict() { return fpsem::strict_context(); }

Domain evolved(int cycles) {
  auto ctx = strict();
  LuleshOptions o;
  o.stop_cycle = cycles;
  return lulesh::run_lulesh(ctx, o);
}

TEST(LuleshStages, ViscosityIsNonNegativeAndCompressionOnly) {
  const Domain d = evolved(40);
  for (std::size_t k = 0; k < d.numElem(); ++k) {
    EXPECT_GE(d.q[k], 0.0) << k;
    if (d.vdov[k] >= 0.0) EXPECT_EQ(d.q[k], 0.0) << k;
    EXPECT_GE(d.qq[k], 0.0) << k;
    EXPECT_GE(d.ql[k], 0.0) << k;
  }
}

TEST(LuleshStages, PressureStaysNonNegativeAndTracksEnergy) {
  const Domain d = evolved(40);
  for (std::size_t k = 0; k < d.numElem(); ++k) {
    EXPECT_GE(d.p[k], 0.0) << k;
    if (d.e[k] <= 1e-9) EXPECT_LE(d.p[k], 1e-6) << k;
  }
  // The shocked region has both energy and pressure.
  EXPECT_GT(d.p[0] + d.p[1], 0.0);
}

TEST(LuleshStages, EnergyFloorAndCutoffsHold) {
  const Domain d = evolved(60);
  for (std::size_t k = 0; k < d.numElem(); ++k) {
    EXPECT_GE(d.e[k], 1e-9) << k;  // emin floor
  }
}

TEST(LuleshStages, SoundSpeedIsPositiveEverywhere) {
  const Domain d = evolved(40);
  for (std::size_t k = 0; k < d.numElem(); ++k) {
    EXPECT_GT(d.ss[k], 0.0) << k;
    EXPECT_TRUE(std::isfinite(d.ss[k])) << k;
  }
}

TEST(LuleshStages, TimeConstraintsBoundTheStep) {
  auto ctx = strict();
  Domain d = lulesh::build_domain({});
  lulesh::calc_time_constraints(ctx, d);
  EXPECT_GT(d.dtcourant, 0.0);
  EXPECT_LT(d.dtcourant, 1e20);
  lulesh::time_increment(ctx, d);
  EXPECT_LE(d.deltatime, d.dtcourant + 1e-18);
}

TEST(LuleshStages, VelocityCutoffSnapsTinyVelocities) {
  auto ctx = strict();
  Domain d = lulesh::build_domain({});
  lulesh::calc_time_constraints(ctx, d);
  // One step: nodes far from the origin get force 0 -> velocity exactly 0
  // (thanks to the u_cut snap, even tiny accelerations cannot creep in).
  lulesh::time_step(ctx, d);
  EXPECT_EQ(d.xd[d.numNode() - 2], 0.0);
}

TEST(LuleshStages, TotalEnergyIsBoundedByTheDeposit) {
  const Domain initial = lulesh::build_domain({});
  double deposit = 0.0;
  for (std::size_t k = 0; k < initial.numElem(); ++k) {
    deposit += initial.elem_mass[k] * initial.e[k];
  }
  const Domain d = evolved(80);
  double internal = 0.0;
  for (std::size_t k = 0; k < d.numElem(); ++k) {
    internal += d.elem_mass[k] * d.e[k];
  }
  double kinetic = 0.0;
  for (std::size_t i = 0; i < d.numNode(); ++i) {
    kinetic += 0.5 * d.nodal_mass[i] * d.xd[i] * d.xd[i];
  }
  EXPECT_GT(internal + kinetic, 0.1 * deposit);
  EXPECT_LT(internal + kinetic, 1.5 * deposit);
}

TEST(LuleshStages, MoreElementsMoreInjectionSurface) {
  // The static instruction count is size-independent (same code), but a
  // larger domain must still run and stay finite -- guard against
  // size-dependent indexing bugs.
  auto ctx = strict();
  LuleshOptions o;
  o.num_elems = 64;
  o.stop_cycle = 20;
  const Domain d = lulesh::run_lulesh(ctx, o);
  EXPECT_EQ(d.numElem(), 64u);
  for (double e : d.e) EXPECT_TRUE(std::isfinite(e));
}

TEST(LuleshStages, ExtendedPrecisionChangesButDoesNotBreak) {
  fpsem::FpSemantics sem;
  sem.extended_precision = true;
  auto ctx = fpsem::uniform_context(fpsem::FnBinding{sem, {}});
  LuleshOptions o;
  o.stop_cycle = 60;
  const Domain d = lulesh::run_lulesh(ctx, o);
  for (double e : d.e) {
    EXPECT_TRUE(std::isfinite(e));
    EXPECT_GE(e, 0.0);
  }
}

}  // namespace
