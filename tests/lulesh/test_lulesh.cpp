// mini-LULESH: structure, physics sanity, determinism, cutoff behaviour.

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/vector.h"
#include "lulesh/domain.h"

namespace {

using namespace flit;
using lulesh::Domain;
using lulesh::LuleshOptions;

fpsem::EvalContext strict() { return fpsem::strict_context(); }

TEST(LuleshDomain, BuildIsConsistent) {
  const Domain d = lulesh::build_domain({});
  EXPECT_EQ(d.numElem(), 32u);
  EXPECT_EQ(d.numNode(), 33u);
  EXPECT_GT(d.e[0], 0.0);  // Sedov energy deposit at the origin
  for (std::size_t k = 1; k < d.numElem(); ++k) EXPECT_EQ(d.e[k], 0.0);
  double mass = 0.0;
  for (double m : d.elem_mass) mass += m;
  double nmass = 0.0;
  for (double m : d.nodal_mass) nmass += m;
  EXPECT_NEAR(mass, nmass, 1e-12);
}

TEST(LuleshRun, AdvancesAndStaysFinite) {
  auto ctx = strict();
  const Domain d = lulesh::run_lulesh(ctx, {});
  EXPECT_EQ(d.cycle, 30);
  EXPECT_GT(d.time, 0.0);
  for (double e : d.e) {
    EXPECT_TRUE(std::isfinite(e));
    EXPECT_GE(e, 0.0);
  }
  for (double v : d.v) EXPECT_GT(v, 0.0);
}

TEST(LuleshRun, ShockExpandsFromOrigin) {
  auto ctx = strict();
  LuleshOptions opts;
  opts.stop_cycle = 60;
  const Domain d = lulesh::run_lulesh(ctx, opts);
  // Energy leaks from element 0 into its neighbours.
  EXPECT_GT(d.e[1], 0.0);
  EXPECT_GT(d.e[2], 0.0);
  // And the origin element has expanded (relative volume > 1).
  EXPECT_GT(d.v[0], 1.0);
}

TEST(LuleshRun, TimeStepsArePositiveAndBounded) {
  auto ctx = strict();
  Domain d = lulesh::build_domain({});
  lulesh::calc_time_constraints(ctx, d);
  const double dt0 = d.deltatime;
  for (int i = 0; i < 10; ++i) {
    const double prev = d.deltatime;
    lulesh::time_step(ctx, d);
    EXPECT_GT(d.deltatime, 0.0);
    EXPECT_LE(d.deltatime, 1.1 * prev + 1e-18);  // growth clamp
  }
  EXPECT_GT(dt0, 0.0);
}

TEST(LuleshRun, DeterministicUnderAggressiveSemantics) {
  fpsem::FpSemantics sem;
  sem.contract_fma = true;
  sem.reassoc_width = 4;
  sem.unsafe_math = true;
  const auto run = [&] {
    auto ctx = fpsem::uniform_context(fpsem::FnBinding{sem, {}});
    const Domain d = lulesh::run_lulesh(ctx, {});
    return d.e;
  };
  EXPECT_EQ(run(), run());
}

TEST(LuleshRun, FmaContractionChangesTheAnswer) {
  const auto energy = [&](fpsem::FpSemantics sem) {
    auto ctx = fpsem::uniform_context(fpsem::FnBinding{sem, {}});
    LuleshOptions opts;
    opts.stop_cycle = 150;
    return lulesh::run_lulesh(ctx, opts).e;
  };
  fpsem::FpSemantics fma_sem;
  fma_sem.contract_fma = true;
  EXPECT_NE(energy({}), energy(fma_sem));
  fpsem::FpSemantics unsafe_sem;
  unsafe_sem.unsafe_math = true;
  unsafe_sem.reassoc_width = 4;
  EXPECT_NE(energy({}), energy(unsafe_sem));
}

TEST(LuleshAdapter, TestRoundTripAndCompare) {
  lulesh::LuleshTest t;
  auto ctx = strict();
  const auto r = t.run_impl({}, ctx);
  ASSERT_TRUE(std::holds_alternative<std::string>(r));
  const auto& s = std::get<std::string>(r);
  EXPECT_EQ(t.compare(s, s), 0.0L);
  const linalg::Vector v = linalg::deserialize(s);
  EXPECT_EQ(v.size(), 32u + 2u);  // energies + origin energy + time
}

TEST(LuleshAdapter, SourceFilesMatchTheModel) {
  const auto files = lulesh::lulesh_source_files();
  EXPECT_EQ(files.size(), 5u);
  for (const auto& f : files) {
    EXPECT_FALSE(fpsem::global_code_model().functions_in(f).empty()) << f;
  }
}

TEST(LuleshModel, HasInternalFunctionsForIndirectFinds) {
  // Table 5's "indirect find" category needs internal functions whose
  // host symbol Bisect reports instead.
  auto& model = fpsem::global_code_model();
  int internal = 0, exported = 0;
  for (const auto& f : lulesh::lulesh_source_files()) {
    for (auto id : model.functions_in(f)) {
      (model.info(id).exported ? exported : internal) += 1;
    }
  }
  EXPECT_GE(internal, 4);
  EXPECT_GE(exported, 12);
}

}  // namespace
