// Geometry substrate (the Sec. 5 CGAL case study): predicate correctness,
// hull invariants, and the headline phenomenon -- compiler-induced
// variability changing a *discrete* answer (the hull vertex count).

#include <cmath>

#include <gtest/gtest.h>

#include "core/hierarchy.h"
#include "geom/predicates.h"
#include "toolchain/semantics_rules.h"

namespace {

using namespace flit;
using geom::Point;

fpsem::EvalContext strict() { return fpsem::strict_context(); }

TEST(Orient2D, SignConventions) {
  auto c = strict();
  const Point a{0, 0}, b{1, 0};
  EXPECT_GT(geom::orient2d(c, a, b, Point{0, 1}), 0.0);   // left turn
  EXPECT_LT(geom::orient2d(c, a, b, Point{0, -1}), 0.0);  // right turn
  EXPECT_EQ(geom::orient2d(c, a, b, Point{2, 0}), 0.0);   // collinear
}

TEST(Orient2D, SignFlipsUnderFmaOnNearCollinearInput) {
  // The CGAL phenomenon in miniature: among the near-collinear cloud's
  // consecutive triples, at least one orientation sign must differ
  // between strict and FMA evaluation.
  fpsem::FpSemantics fma_sem;
  fma_sem.contract_fma = true;
  const auto pts = geom::near_collinear_cloud(48);
  int flips = 0;
  for (std::size_t i = 4; i + 2 < pts.size(); ++i) {
    auto cs = strict();
    auto cf = fpsem::uniform_context(fpsem::FnBinding{fma_sem, {}});
    const double s = geom::orient2d(cs, pts[i], pts[i + 1], pts[i + 2]);
    const double f = geom::orient2d(cf, pts[i], pts[i + 1], pts[i + 2]);
    if ((s > 0.0) != (f > 0.0) || (s < 0.0) != (f < 0.0)) ++flips;
  }
  EXPECT_GT(flips, 0);
}

TEST(InCircle, SignConventions) {
  auto c = strict();
  const Point a{0, 0}, b{2, 0}, cc{0, 2};
  EXPECT_GT(geom::incircle(c, a, b, cc, Point{0.8, 0.8}), 0.0);  // inside
  EXPECT_LT(geom::incircle(c, a, b, cc, Point{5, 5}), 0.0);      // outside
}

TEST(ConvexHull, SquareWithInteriorPoints) {
  auto c = strict();
  std::vector<Point> pts{{0, 0}, {4, 0}, {4, 4}, {0, 4},
                         {2, 2}, {1, 3}, {3, 1}};
  const auto hull = geom::convex_hull(c, pts);
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_NEAR(geom::polygon_area2(c, hull), 32.0, 1e-12);  // 2 * 16
}

TEST(ConvexHull, DegenerateInputs) {
  auto c = strict();
  EXPECT_EQ(geom::convex_hull(c, {{1, 1}}).size(), 1u);
  EXPECT_EQ(geom::convex_hull(c, {{1, 1}, {2, 2}}).size(), 2u);
  // Duplicate points collapse.
  EXPECT_EQ(geom::convex_hull(c, {{1, 1}, {1, 1}, {2, 2}}).size(), 2u);
}

TEST(ConvexHull, HullVerticesAreInputPoints) {
  auto c = strict();
  const auto pts = geom::near_collinear_cloud(32);
  const auto hull = geom::convex_hull(c, pts);
  for (const Point& h : hull) {
    EXPECT_NE(std::find(pts.begin(), pts.end(), h), pts.end());
  }
}

TEST(ConvexHull, DiscreteAnswerChangesUnderFma) {
  const auto size_under = [&](fpsem::FpSemantics sem) {
    auto ctx = fpsem::uniform_context(fpsem::FnBinding{sem, {}});
    return geom::convex_hull(ctx, geom::near_collinear_cloud(48)).size();
  };
  fpsem::FpSemantics fma_sem;
  fma_sem.contract_fma = true;
  const auto s = size_under({});
  const auto f = size_under(fma_sem);
  EXPECT_NE(s, f) << "hull vertex count should be compilation-dependent";
}

TEST(ConvexHull, DeterministicPerSemantics) {
  fpsem::FpSemantics fma_sem;
  fma_sem.contract_fma = true;
  const auto run = [&] {
    auto ctx = fpsem::uniform_context(fpsem::FnBinding{fma_sem, {}});
    return geom::convex_hull(ctx, geom::near_collinear_cloud(48));
  };
  EXPECT_EQ(run(), run());
}

TEST(HullTest, AdapterRoundTrip) {
  geom::HullTest t;
  auto ctx = strict();
  const auto r = t.run_impl({}, ctx);
  ASSERT_TRUE(std::holds_alternative<std::string>(r));
  const auto& s = std::get<std::string>(r);
  EXPECT_EQ(t.compare(s, s), 0.0L);
}

TEST(HullBisect, RootCausesThePredicateFile) {
  geom::HullTest t;
  core::BisectConfig cfg;
  cfg.baseline = toolchain::mfem_baseline();
  cfg.variable = {toolchain::gcc(), toolchain::OptLevel::O2, "-mavx2 -mfma"};
  cfg.scope = geom::geom_source_files();
  core::BisectDriver driver(&fpsem::global_code_model(), &t, cfg);
  const auto out = driver.run();
  ASSERT_FALSE(out.crashed) << out.crash_reason;
  ASSERT_FALSE(out.findings.empty());
  EXPECT_EQ(out.findings[0].file, "geom/predicates.cpp");
  if (out.findings[0].status == core::FileFinding::SymbolStatus::Found) {
    ASSERT_FALSE(out.findings[0].symbols.empty());
    EXPECT_EQ(out.findings[0].symbols[0].symbol, "Geom::Orient2D");
  }
}

}  // namespace
